// Quickstart: compile one model for a simulated GPU and compare a cold start
// under every evaluated scheme (paper §IV), printing the paper's headline
// quantities — end-to-end time, speedup over the reactive baseline, GPU
// utilization, code objects loaded, and PASK's reuse statistics.
//
// Run with:
//
//	go run ./examples/quickstart [model] [device]
package main

import (
	"fmt"
	"log"
	"os"

	"pask"
)

func main() {
	model, devName := "res", "MI100"
	if len(os.Args) > 1 {
		model = os.Args[1]
	}
	if len(os.Args) > 2 {
		devName = os.Args[2]
	}

	sys, err := pask.NewSystem(pask.Config{Model: model, Device: devName})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s on %s: %d instructions, %d distinct primitive problems\n\n",
		model, devName, sys.Instructions(), sys.PrimitiveLayers())

	base, err := sys.RunScheme(pask.Baseline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-9s %10s %9s %6s %6s %8s %8s\n",
		"scheme", "cold start", "speedup", "util", "loads", "queries", "hits")
	for _, scheme := range pask.Schemes() {
		rep, err := sys.RunScheme(scheme)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %9.1fms %8.2fx %5.1f%% %6d %8d %8d\n",
			scheme, rep.Seconds()*1000,
			base.Seconds()/rep.Seconds(),
			100*rep.Utilization(), rep.Loads, rep.ReuseQueries, rep.ReuseHits)
	}

	cold, hot, err := sys.ColdHot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst inference (cold, incl. process start): %.1fms\n", cold.Seconds()*1000)
	fmt.Printf("steady-state iteration (hot):                %.2fms\n", hot.Seconds()*1000)
	fmt.Printf("cold start slowdown:                         %.1fx (paper Fig 1a)\n",
		cold.Seconds()/hot.Seconds())
}
