// Functional: the correctness premise of PASK's kernel reuse, demonstrated
// numerically. A small CNN is executed twice on real tensors — once with the
// statically optimal specialized solutions (what the compiler picks) and
// once with the most generic applicable solutions (what PASK's cache
// substitutes when specialists are absent). The outputs agree to floating-
// point tolerance, which is why skipping a specialist's load never changes
// results (paper §II-B, Fig 2).
//
// Run with:
//
//	go run ./examples/functional
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pask/internal/device"
	"pask/internal/graphx"
	"pask/internal/miopen"
	"pask/internal/onnx"
	"pask/internal/tensor"
)

func main() {
	b := onnx.NewBuilder("demo", tensor.Shape{N: 1, C: 3, H: 32, W: 32}, tensor.F32)
	x := b.Conv("conv1", b.Input(), 16, 3, 1, 1, 1)
	x = b.Relu("relu1", x)
	x = b.MaxPool("pool1", x, 2, 2, 0)
	x = b.Conv("conv2", x, 32, 3, 1, 1, 1)
	x = b.Relu("relu2", x)
	x = b.Conv("conv3", x, 32, 1, 1, 0, 1)
	x = b.GlobalAvgPool("gap", x)
	x = b.Flatten("flat", x)
	x = b.FC("fc", x, 10)
	g, err := b.Finish(x)
	if err != nil {
		log.Fatal(err)
	}

	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	rng := rand.New(rand.NewSource(1))
	in := tensor.New(g.InputShape, tensor.NCHW)
	in.Fill(func(int) float32 { return rng.Float32()*2 - 1 })

	fmt.Println("per-layer solution selection:")
	db := miopen.NewPerfDB(reg)
	compiled, err := graphx.Compile(g, db, graphx.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i := range compiled.Instrs {
		in := &compiled.Instrs[i]
		if in.Kind == graphx.KindPrimitive {
			fmt.Printf("  %-8s -> %-26s (pattern %s)\n",
				in.Name, in.SolutionID, in.Problem.Primitive)
		}
	}

	best, err := graphx.FunctionalRun(g, reg, graphx.BestPicker(reg), in, 99)
	if err != nil {
		log.Fatal(err)
	}
	generic, err := graphx.FunctionalRun(g, reg, graphx.GenericPicker(reg), in, 99)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nlogits (specialized solutions):", head(best.Data, 5))
	fmt.Println("logits (generic substitutes):  ", head(generic.Data, 5))
	fmt.Printf("\nmax |difference| = %.2e — reuse preserves results\n",
		tensor.MaxAbsDiff(best, generic))
}

func head(v []float32, n int) []float32 {
	if len(v) < n {
		return v
	}
	return v[:n]
}
