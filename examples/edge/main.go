// Edge: resource-constrained devices suspend inference services and evict
// their loaded kernels under memory pressure (paper §I), so every wake-up
// pays the cold path again. The example serves a request trace where the
// instance is evicted every few requests and also models spot preemption,
// where the whole process is replaced.
//
// Run with:
//
//	go run ./examples/edge [model]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/serving"
)

func main() {
	model := "alex"
	if len(os.Args) > 1 {
		model = os.Args[1]
	}
	// The consumer-grade profile matches the edge setting.
	ms, err := experiments.PrepareModel(model, 1, device.RX6900XT())
	if err != nil {
		log.Fatal(err)
	}
	trace := serving.PoissonTrace(12, 400*time.Millisecond, 7)

	fmt.Printf("== edge suspend/evict: %s on 6900XT, evicted every 3 requests ==\n", model)
	for _, scheme := range []core.Scheme{core.SchemeBaseline, core.SchemePaSK} {
		stats, err := serving.ServeTrace(ms, serving.Policy{Scheme: scheme}, trace, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s cold starts=%d  mean=%7.2fms  p99=%7.2fms\n",
			scheme, stats.ColdStarts, ms2(stats.Mean()), ms2(stats.Percentile(0.99)))
	}

	fmt.Printf("\n== spot preemption: migrated every 4 requests ==\n")
	for _, scheme := range []core.Scheme{core.SchemeBaseline, core.SchemePaSK} {
		stats, migrations, err := serving.SpotPreemption(ms, serving.Policy{Scheme: scheme}, trace, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s migrations=%d  cold starts=%d  mean=%7.2fms  p99=%7.2fms\n",
			scheme, migrations, stats.ColdStarts, ms2(stats.Mean()), ms2(stats.Percentile(0.99)))
	}
}

func ms2(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
