// Serverless: the scale-out scenario that motivates the paper (§I). A
// request spike forces N fresh instances to cold start simultaneously; the
// example compares the per-instance cold latency under Baseline vs PASK,
// then serves a Poisson trace on one instance with §VI background loading
// filling the idle gaps.
//
// Run with:
//
//	go run ./examples/serverless [model]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/serving"
)

func main() {
	model := "res"
	if len(os.Args) > 1 {
		model = os.Args[1]
	}
	ms, err := experiments.PrepareModel(model, 1, device.MI100())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== serverless scale-out: 8 cold instances of %s ==\n", model)
	for _, scheme := range []core.Scheme{core.SchemeBaseline, core.SchemeNNV12, core.SchemePaSK} {
		stats, err := serving.ScaleOut(ms, serving.Policy{Scheme: scheme}, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s cold start p50=%7.1fms p99=%7.1fms (x%d instances)\n",
			scheme, ms2(stats.Percentile(0.5)), ms2(stats.Percentile(0.99)), stats.ColdStarts)
	}

	fmt.Printf("\n== autoscaled fleet: 30-request trace, keep-alive 2s, max 4 instances ==\n")
	fleetTrace := serving.PoissonTrace(30, 250*time.Millisecond, 9)
	for _, scheme := range []core.Scheme{core.SchemeBaseline, core.SchemePaSK} {
		stats, err := serving.ServeFleet(ms, serving.FleetConfig{
			Policy:       serving.Policy{Scheme: scheme},
			KeepAlive:    2 * time.Second,
			MaxInstances: 4,
		}, fleetTrace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s spawned=%d reaped=%d cold=%d  p50=%7.2fms  p99=%7.2fms\n",
			scheme, stats.Spawned, stats.Reaped, stats.ColdStarts,
			ms2(stats.Percentile(0.5)), ms2(stats.Percentile(0.99)))
	}

	fmt.Printf("\n== 20-request Poisson trace (mean gap 800ms), one instance ==\n")
	trace := serving.PoissonTrace(20, 800*time.Millisecond, 42)
	for _, bg := range []bool{false, true} {
		stats, err := serving.ServeTrace(ms, serving.Policy{Scheme: core.SchemePaSK, BackgroundLoad: bg}, trace, 0)
		if err != nil {
			log.Fatal(err)
		}
		label := "PaSK"
		if bg {
			label = "PaSK+bg-load"
		}
		fmt.Printf("%-13s cold=%7.1fms  warm p50=%6.2fms  p99=%6.2fms  bg loads=%d\n",
			label, ms2(stats.Latencies[0]), ms2(stats.Percentile(0.5)),
			ms2(stats.Percentile(0.99)), stats.BGLoads)
	}
}

func ms2(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
