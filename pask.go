// Package pask is the public API of the PASK reproduction: a kernel loading
// and reusing middleware that mitigates DNN inference cold start (Huang et
// al., "PASK: Cold Start Mitigation for Inference with Proactive and
// Selective Kernel Loading on GPUs", DAC 2025), together with the full
// simulated GPU serving stack it runs on.
//
// A System bundles one model compiled for one device at one batch size.
// RunScheme executes a cold start under any of the paper's evaluated
// schemes and reports timing, GPU utilization, loading activity and PASK's
// cache statistics:
//
//	sys, err := pask.NewSystem(pask.Config{Model: "res", Batch: 1})
//	...
//	base, _ := sys.RunScheme(pask.Baseline)
//	fast, _ := sys.RunScheme(pask.PaSK)
//	fmt.Printf("cold start speedup: %.2fx\n", base.Seconds()/fast.Seconds())
package pask

import (
	"errors"
	"fmt"
	"io"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/metrics"
	"pask/internal/onnx/zoo"
	"pask/internal/tensor"
	"pask/internal/trace"
	"pask/internal/warmup"
)

// Scheme selects the execution strategy for a cold start.
type Scheme string

// The evaluated schemes (paper §IV).
const (
	// Baseline is the reactive default workflow: parse everything, then
	// launch layer by layer with lazy on-demand code-object loading.
	Baseline Scheme = Scheme(core.SchemeBaseline)
	// NNV12 selects kernels in one uniform layout (no interchange kernels)
	// and pipelines loading with execution.
	NNV12 Scheme = Scheme(core.SchemeNNV12)
	// Ideal runs with every code object already resident.
	Ideal Scheme = Scheme(core.SchemeIdeal)
	// PaSK is the full design: proactive interleaved execution plus
	// selective reuse through the categorical solution cache.
	PaSK Scheme = Scheme(core.SchemePaSK)
	// PaSKI is the interleaving-only ablation.
	PaSKI Scheme = Scheme(core.SchemePaSKI)
	// PaSKR is the reuse-only ablation with the naive exhaustive cache.
	PaSKR Scheme = Scheme(core.SchemePaSKR)
)

// Schemes returns all schemes in presentation order.
func Schemes() []Scheme {
	out := make([]Scheme, 0, len(core.Schemes()))
	for _, s := range core.Schemes() {
		out = append(out, Scheme(s))
	}
	return out
}

// Config describes the system to build.
type Config struct {
	// Model is a zoo abbreviation (see Models): "alex", "vgg", "res", ...
	Model string
	// Batch is the inference batch size (default 1).
	Batch int
	// Device is a built-in profile name: "MI100" (default), "A100", "6900XT".
	Device string
	// DType is the element type: "f32" (default), "f16" or "i8".
	DType string
}

// Option configures one RunScheme call. Options are built with the With*
// constructors:
//
//	rep, err := sys.RunScheme(pask.PaSK, pask.WithBlasScope(), pask.WithTrace(f))
type Option interface {
	applyOption(*runConfig)
}

// runConfig is the resolved per-run configuration all Options write into.
type runConfig struct {
	opts       core.Options
	traceW     io.Writer
	warmupPath string
	recordPath string
}

type optionFunc func(*runConfig)

func (f optionFunc) applyOption(c *runConfig) { f(c) }

// WithBlasScope extends PASK's management to the BLAS library's GEMM kernels
// (paper §VI "Library supporting"; helps transformer models).
func WithBlasScope() Option {
	return optionFunc(func(c *runConfig) { c.opts.BlasScope = true })
}

// WithPrecisionPreference serves reduced-precision layers with resident
// full-precision kernels instead of loading low-precision specialists
// (paper §VI "More factors for kernel specialization").
func WithPrecisionPreference() Option {
	return optionFunc(func(c *runConfig) { c.opts.PrecisionPreference = true })
}

// WithTrace records the run's full timeline — per-thread spans, counters,
// registry events — and writes it to w as Chrome trace_event JSON (loadable
// in chrome://tracing and ui.perfetto.dev) when the run completes.
func WithTrace(w io.Writer) Option {
	return optionFunc(func(c *runConfig) { c.traceW = w })
}

// PressureLevel is the serving layer's overload signal, re-exported from the
// executor. Under Elevated pressure PASK forces reuse of already-resident
// generic solutions on categorical misses; under Severe it prefers residents
// even when a specialist load would otherwise be taken.
type PressureLevel = core.PressureLevel

// The pressure levels, least to most aggressive.
const (
	PressureNominal  = core.PressureNominal
	PressureElevated = core.PressureElevated
	PressureSevere   = core.PressureSevere
)

// WithPressure pins the run's overload-pressure level (brownout mode). In
// the serving stack the level moves with queue depth; pinning it here lets a
// single cold start demonstrate the same load-shedding reuse: fewer module
// loads, with the shortfall reported in Report.PressureReuse.
func WithPressure(level PressureLevel) Option {
	return optionFunc(func(c *runConfig) { c.opts.Pressure = core.StaticPressure(level) })
}

// WithWarmupProfile replays the load profile recorded at path: a prefetcher
// thread loads the manifest's code objects concurrently with process
// bring-up, so the pipeline finds them resident. A missing, corrupt or
// stale manifest never fails the run — the run degrades to a plain cold
// start and the Report's Warmup* fields say what happened.
func WithWarmupProfile(path string) Option {
	return optionFunc(func(c *runConfig) { c.warmupPath = path })
}

// WithProfileRecording captures the run's realized load profile — the code
// objects it used, in first-use order, with checksums — and writes it to
// path as a versioned JSON manifest for WithWarmupProfile to replay.
func WithProfileRecording(path string) Option {
	return optionFunc(func(c *runConfig) { c.recordPath = path })
}

// Options toggles the paper's §VI extensions on PASK runs.
//
// Deprecated: pass functional options instead — Options{BlasScope: true}
// becomes WithBlasScope(). The struct remains an Option so existing
// RunScheme(scheme, Options{...}) calls keep compiling.
type Options struct {
	// BlasScope extends PASK's management to the BLAS library's GEMM
	// kernels (helps transformer models).
	BlasScope bool
	// PrecisionPreference serves reduced-precision layers with resident
	// full-precision kernels instead of loading low-precision specialists.
	PrecisionPreference bool
}

func (o Options) applyOption(c *runConfig) {
	c.opts.BlasScope = c.opts.BlasScope || o.BlasScope
	c.opts.PrecisionPreference = c.opts.PrecisionPreference || o.PrecisionPreference
}

// Category labels one kind of activity in a Report.Breakdown. It is the
// metrics package's category type re-exported, so the constants below and
// plain string literals both index the map.
type Category = metrics.Category

// The breakdown categories (paper Fig 1b / Fig 7).
const (
	CatParse     = metrics.CatParse     // model deserialization
	CatLoad      = metrics.CatLoad      // code-object loading
	CatLaunch    = metrics.CatLaunch    // kernel submission
	CatExec      = metrics.CatExec      // GPU computing
	CatCopy      = metrics.CatCopy      // host<->device parameter transfer
	CatOverhead  = metrics.CatOverhead  // PASK cache queries / applicability checks
	CatSync      = metrics.CatSync      // host-device synchronization
	CatTransform = metrics.CatTransform // layout interchange kernels
	CatRecovery  = metrics.CatRecovery  // fault handling
	CatOther     = metrics.CatOther
)

// Categories returns the breakdown categories in attribution-priority order.
func Categories() []Category {
	return append(metrics.DefaultPriority(), metrics.CatOther)
}

// Report summarizes one cold-start run.
type Report struct {
	Scheme Scheme
	Model  string
	Batch  int

	// Total is the end-to-end cold-start wall time (virtual).
	Total time.Duration
	// GPUBusy is the union of GPU-active intervals inside the run.
	GPUBusy time.Duration
	// Loads counts code objects loaded during the run.
	Loads int
	// LoadedBytes counts container bytes read and relocated.
	LoadedBytes int64

	// PASK cache statistics (zero for non-PASK schemes).
	ReuseQueries int
	ReuseHits    int
	Lookups      int
	SkippedLoads int
	Milestone    int

	// PressureReuse counts layers served by pressure-forced substitutes —
	// nonzero only when WithPressure (or the serving layer's brownout
	// controller) raised the level above nominal.
	PressureReuse int

	// Warmup replay statistics (zero unless WithWarmupProfile was used and
	// the manifest was readable).
	WarmupEntries    int // manifest entries the prefetcher considered
	WarmupPrefetched int // objects made resident ahead of demand
	WarmupHits       int // used objects the replay covered
	WarmupMisses     int // used objects the replay did not cover
	WarmupStale      int // entries skipped on checksum mismatch or read error

	// Breakdown attributes every instant of the run to one Category. The
	// key type is an alias of the metrics category, so both the exported
	// constants (CatLoad, CatExec, ...) and string literals index it.
	Breakdown map[Category]time.Duration
}

// Seconds returns the total wall time in seconds.
func (r *Report) Seconds() float64 { return r.Total.Seconds() }

// Utilization returns the GPU-active fraction of the run (paper Fig 6b).
func (r *Report) Utilization() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.GPUBusy) / float64(r.Total)
}

// HitRate returns the cache-query hit fraction (paper Fig 9a).
func (r *Report) HitRate() float64 {
	if r.ReuseQueries == 0 {
		return 0
	}
	return float64(r.ReuseHits) / float64(r.ReuseQueries)
}

// ModelInfo describes one zoo model.
type ModelInfo struct {
	Name string // torchvision-style name
	Abbr string // paper abbreviation
	Type string // workload category
}

// Models lists the twelve models of the paper's Table I.
func Models() []ModelInfo {
	var out []ModelInfo
	for _, s := range zoo.Models() {
		out = append(out, ModelInfo{Name: s.Name, Abbr: s.Abbr, Type: s.Type})
	}
	return out
}

// Devices lists the built-in device profile names.
func Devices() []string {
	var out []string
	for _, p := range device.Profiles() {
		out = append(out, p.Name)
	}
	return out
}

// System is one model compiled for one device, ready to run cold starts.
type System struct {
	cfg Config
	ms  *experiments.ModelSetup
}

// NewSystem compiles the configured model for the configured device and
// materializes every code object it can load.
// NewSystem validates the whole Config before acting on any field —
// Batch < 0 is rejected before the Batch == 0 default applies — and reports
// every invalid field at once via errors.Join.
func NewSystem(cfg Config) (*System, error) {
	var errs []error
	if cfg.Model == "" {
		errs = append(errs, fmt.Errorf("pask: Config.Model is required (one of %v)", abbrs()))
	} else if _, err := zoo.ByAbbr(cfg.Model); err != nil {
		errs = append(errs, fmt.Errorf("pask: %w", err))
	}
	if cfg.Batch < 0 {
		errs = append(errs, fmt.Errorf("pask: invalid batch %d", cfg.Batch))
	}
	if cfg.Device == "" {
		cfg.Device = "MI100"
	}
	prof, ok := device.ProfileByName(cfg.Device)
	if !ok {
		errs = append(errs, fmt.Errorf("pask: unknown device %q (one of %v)", cfg.Device, Devices()))
	}
	dt := tensor.F32
	if cfg.DType != "" {
		var err error
		dt, err = tensor.ParseDType(cfg.DType)
		if err != nil {
			errs = append(errs, fmt.Errorf("pask: %w", err))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if cfg.Batch == 0 {
		cfg.Batch = 1
	}
	ms, err := experiments.PrepareModelTyped(cfg.Model, cfg.Batch, prof, dt)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, ms: ms}, nil
}

func abbrs() []string { return experiments.AllModelAbbrs() }

// Instructions returns the compiled model's instruction count.
func (s *System) Instructions() int { return s.ms.Model.NumInstructions() }

// PrimitiveLayers returns the number of distinct primitive-library problems
// (the paper's Table I axis).
func (s *System) PrimitiveLayers() int { return s.ms.Model.DistinctPrimitiveProblems() }

// RunScheme executes one cold start under the scheme in a fresh simulated
// process and returns its report. Options configure the run:
//
//	rep, err := sys.RunScheme(pask.PaSK, pask.WithBlasScope())
//
// The deprecated Options struct is still accepted in the same position.
func (s *System) RunScheme(scheme Scheme, opts ...Option) (*Report, error) {
	var rc runConfig
	for _, o := range opts {
		o.applyOption(&rc)
	}
	var rec *trace.Recorder
	if rc.traceW != nil {
		rec = trace.New()
	}
	var man *warmup.Manifest
	if rc.warmupPath != "" {
		// A missing or corrupt manifest is "no profile yet": the run
		// proceeds cold, matching the prefetcher's never-fail contract.
		man, _ = warmup.ReadFile(rc.warmupPath)
	}
	wr, err := s.ms.RunSchemeWarm(core.Scheme(scheme), rc.opts, rec, man, rc.recordPath != "")
	if err != nil {
		return nil, err
	}
	if rc.recordPath != "" {
		if werr := warmup.WriteFile(rc.recordPath, wr.Profile); werr != nil {
			return nil, fmt.Errorf("pask: writing profile: %w", werr)
		}
	}
	if rc.traceW != nil {
		if werr := rec.WriteChrome(rc.traceW); werr != nil {
			return nil, fmt.Errorf("pask: writing trace: %w", werr)
		}
	}
	return convertReport(scheme, wr.Rep), nil
}

// ColdHot measures the first-inference cold time (including process
// initialization) and the steady-state hot iteration time — the paper's
// Fig 1(a) quantities.
func (s *System) ColdHot() (cold, hot time.Duration, err error) {
	cold, hot, _, err = s.ms.RunColdHot()
	return cold, hot, err
}

func convertReport(scheme Scheme, rep *metrics.Report) *Report {
	bd := make(map[Category]time.Duration, len(rep.Breakdown))
	for k, v := range rep.Breakdown {
		bd[k] = v
	}
	return &Report{
		Scheme:        scheme,
		Model:         rep.Model,
		Batch:         rep.Batch,
		Total:         rep.Total,
		GPUBusy:       rep.GPUBusy,
		Loads:         rep.Loads,
		LoadedBytes:   rep.LoadedBytes,
		ReuseQueries:  rep.ReuseQueries,
		ReuseHits:     rep.ReuseHits,
		Lookups:       rep.Lookups,
		SkippedLoads:  rep.SkippedLoads,
		Milestone:     rep.Milestone,
		PressureReuse: rep.PressureReuse,

		WarmupEntries:    rep.WarmupEntries,
		WarmupPrefetched: rep.WarmupPrefetched,
		WarmupHits:       rep.WarmupHits,
		WarmupMisses:     rep.WarmupMisses,
		WarmupStale:      rep.WarmupStale,

		Breakdown: bd,
	}
}
