// Package pask is the public API of the PASK reproduction: a kernel loading
// and reusing middleware that mitigates DNN inference cold start (Huang et
// al., "PASK: Cold Start Mitigation for Inference with Proactive and
// Selective Kernel Loading on GPUs", DAC 2025), together with the full
// simulated GPU serving stack it runs on.
//
// A System bundles one model compiled for one device at one batch size.
// RunScheme executes a cold start under any of the paper's evaluated
// schemes and reports timing, GPU utilization, loading activity and PASK's
// cache statistics:
//
//	sys, err := pask.NewSystem(pask.Config{Model: "res", Batch: 1})
//	...
//	base, _ := sys.RunScheme(pask.Baseline)
//	fast, _ := sys.RunScheme(pask.PaSK)
//	fmt.Printf("cold start speedup: %.2fx\n", base.Seconds()/fast.Seconds())
package pask

import (
	"fmt"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/metrics"
	"pask/internal/onnx/zoo"
	"pask/internal/tensor"
)

// Scheme selects the execution strategy for a cold start.
type Scheme string

// The evaluated schemes (paper §IV).
const (
	// Baseline is the reactive default workflow: parse everything, then
	// launch layer by layer with lazy on-demand code-object loading.
	Baseline Scheme = Scheme(core.SchemeBaseline)
	// NNV12 selects kernels in one uniform layout (no interchange kernels)
	// and pipelines loading with execution.
	NNV12 Scheme = Scheme(core.SchemeNNV12)
	// Ideal runs with every code object already resident.
	Ideal Scheme = Scheme(core.SchemeIdeal)
	// PaSK is the full design: proactive interleaved execution plus
	// selective reuse through the categorical solution cache.
	PaSK Scheme = Scheme(core.SchemePaSK)
	// PaSKI is the interleaving-only ablation.
	PaSKI Scheme = Scheme(core.SchemePaSKI)
	// PaSKR is the reuse-only ablation with the naive exhaustive cache.
	PaSKR Scheme = Scheme(core.SchemePaSKR)
)

// Schemes returns all schemes in presentation order.
func Schemes() []Scheme {
	out := make([]Scheme, 0, len(core.Schemes()))
	for _, s := range core.Schemes() {
		out = append(out, Scheme(s))
	}
	return out
}

// Config describes the system to build.
type Config struct {
	// Model is a zoo abbreviation (see Models): "alex", "vgg", "res", ...
	Model string
	// Batch is the inference batch size (default 1).
	Batch int
	// Device is a built-in profile name: "MI100" (default), "A100", "6900XT".
	Device string
	// DType is the element type: "f32" (default), "f16" or "i8".
	DType string
}

// Options toggles the paper's §VI extensions on PASK runs.
type Options struct {
	// BlasScope extends PASK's management to the BLAS library's GEMM
	// kernels (helps transformer models).
	BlasScope bool
	// PrecisionPreference serves reduced-precision layers with resident
	// full-precision kernels instead of loading low-precision specialists.
	PrecisionPreference bool
}

// Report summarizes one cold-start run.
type Report struct {
	Scheme Scheme
	Model  string
	Batch  int

	// Total is the end-to-end cold-start wall time (virtual).
	Total time.Duration
	// GPUBusy is the union of GPU-active intervals inside the run.
	GPUBusy time.Duration
	// Loads counts code objects loaded during the run.
	Loads int
	// LoadedBytes counts container bytes read and relocated.
	LoadedBytes int64

	// PASK cache statistics (zero for non-PASK schemes).
	ReuseQueries int
	ReuseHits    int
	Lookups      int
	SkippedLoads int
	Milestone    int

	// Breakdown attributes every instant of the run to one category.
	Breakdown map[string]time.Duration
}

// Seconds returns the total wall time in seconds.
func (r *Report) Seconds() float64 { return r.Total.Seconds() }

// Utilization returns the GPU-active fraction of the run (paper Fig 6b).
func (r *Report) Utilization() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.GPUBusy) / float64(r.Total)
}

// HitRate returns the cache-query hit fraction (paper Fig 9a).
func (r *Report) HitRate() float64 {
	if r.ReuseQueries == 0 {
		return 0
	}
	return float64(r.ReuseHits) / float64(r.ReuseQueries)
}

// ModelInfo describes one zoo model.
type ModelInfo struct {
	Name string // torchvision-style name
	Abbr string // paper abbreviation
	Type string // workload category
}

// Models lists the twelve models of the paper's Table I.
func Models() []ModelInfo {
	var out []ModelInfo
	for _, s := range zoo.Models() {
		out = append(out, ModelInfo{Name: s.Name, Abbr: s.Abbr, Type: s.Type})
	}
	return out
}

// Devices lists the built-in device profile names.
func Devices() []string {
	var out []string
	for _, p := range device.Profiles() {
		out = append(out, p.Name)
	}
	return out
}

// System is one model compiled for one device, ready to run cold starts.
type System struct {
	cfg Config
	ms  *experiments.ModelSetup
}

// NewSystem compiles the configured model for the configured device and
// materializes every code object it can load.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Model == "" {
		return nil, fmt.Errorf("pask: Config.Model is required (one of %v)", abbrs())
	}
	if cfg.Batch == 0 {
		cfg.Batch = 1
	}
	if cfg.Batch < 0 {
		return nil, fmt.Errorf("pask: invalid batch %d", cfg.Batch)
	}
	if cfg.Device == "" {
		cfg.Device = "MI100"
	}
	prof, ok := device.ProfileByName(cfg.Device)
	if !ok {
		return nil, fmt.Errorf("pask: unknown device %q (one of %v)", cfg.Device, Devices())
	}
	dt := tensor.F32
	if cfg.DType != "" {
		var err error
		dt, err = tensor.ParseDType(cfg.DType)
		if err != nil {
			return nil, fmt.Errorf("pask: %w", err)
		}
	}
	ms, err := experiments.PrepareModelTyped(cfg.Model, cfg.Batch, prof, dt)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, ms: ms}, nil
}

func abbrs() []string { return experiments.AllModelAbbrs() }

// Instructions returns the compiled model's instruction count.
func (s *System) Instructions() int { return s.ms.Model.NumInstructions() }

// PrimitiveLayers returns the number of distinct primitive-library problems
// (the paper's Table I axis).
func (s *System) PrimitiveLayers() int { return s.ms.Model.DistinctPrimitiveProblems() }

// RunScheme executes one cold start under the scheme in a fresh simulated
// process and returns its report.
func (s *System) RunScheme(scheme Scheme, opts ...Options) (*Report, error) {
	var o core.Options
	if len(opts) > 0 {
		o = core.Options{BlasScope: opts[0].BlasScope, PrecisionPreference: opts[0].PrecisionPreference}
	}
	rep, _, err := s.ms.RunScheme(core.Scheme(scheme), o)
	if err != nil {
		return nil, err
	}
	return convertReport(scheme, rep), nil
}

// ColdHot measures the first-inference cold time (including process
// initialization) and the steady-state hot iteration time — the paper's
// Fig 1(a) quantities.
func (s *System) ColdHot() (cold, hot time.Duration, err error) {
	cold, hot, _, err = s.ms.RunColdHot()
	return cold, hot, err
}

func convertReport(scheme Scheme, rep *metrics.Report) *Report {
	bd := make(map[string]time.Duration, len(rep.Breakdown))
	for k, v := range rep.Breakdown {
		bd[string(k)] = v
	}
	return &Report{
		Scheme:       scheme,
		Model:        rep.Model,
		Batch:        rep.Batch,
		Total:        rep.Total,
		GPUBusy:      rep.GPUBusy,
		Loads:        rep.Loads,
		LoadedBytes:  rep.LoadedBytes,
		ReuseQueries: rep.ReuseQueries,
		ReuseHits:    rep.ReuseHits,
		Lookups:      rep.Lookups,
		SkippedLoads: rep.SkippedLoads,
		Milestone:    rep.Milestone,
		Breakdown:    bd,
	}
}
