package pask

import (
	"bytes"
	"strings"
	"testing"

	"pask/internal/trace"
)

// TestFunctionalOptionsMatchLegacyStruct pins the compatibility contract: the
// With* constructors and the deprecated Options struct configure identical
// runs.
func TestFunctionalOptionsMatchLegacyStruct(t *testing.T) {
	sys, err := NewSystem(Config{Model: "swin"})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := sys.RunScheme(PaSK, WithBlasScope())
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := sys.RunScheme(PaSK, Options{BlasScope: true})
	if err != nil {
		t.Fatal(err)
	}
	if modern.Total != legacy.Total || modern.Loads != legacy.Loads {
		t.Fatalf("WithBlasScope() and Options{BlasScope} diverge: %+v vs %+v", modern, legacy)
	}
	// Options merge: the struct cannot clear a flag another option set.
	merged, err := sys.RunScheme(PaSK, WithBlasScope(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Total != modern.Total {
		t.Fatalf("empty Options cleared WithBlasScope: %v vs %v", merged.Total, modern.Total)
	}
}

// TestWithTrace pins the trace export path of the public API: the run writes
// valid Chrome trace_event JSON covering the pipeline's tracks, and the
// traced run's numbers match an untraced one.
func TestWithTrace(t *testing.T) {
	sys, err := NewSystem(Config{Model: "res"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	traced, err := sys.RunScheme(PaSK, WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := trace.ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("WithTrace output invalid: %v", err)
	}
	if len(sum.Tracks) < 4 {
		t.Fatalf("trace tracks %v, want >= 4", sum.Tracks)
	}
	plain, err := sys.RunScheme(PaSK)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Total != traced.Total || plain.Loads != traced.Loads {
		t.Fatalf("tracing perturbed the run: %+v vs %+v", plain, traced)
	}
}

// TestValidationCollectsAllErrors pins the errors.Join behavior: every
// invalid Config field is reported at once, and Batch < 0 is rejected even
// though 0 defaults to 1.
func TestValidationCollectsAllErrors(t *testing.T) {
	_, err := NewSystem(Config{Model: "bert", Batch: -2, Device: "H100", DType: "f64"})
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	msg := err.Error()
	for _, want := range []string{"bert", "-2", "H100", "f64"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error does not mention %q: %v", want, msg)
		}
	}
	// Batch == 0 still defaults rather than erroring.
	if _, err := NewSystem(Config{Model: "alex", Batch: 0}); err != nil {
		t.Fatalf("Batch 0 should default to 1: %v", err)
	}
}

// TestCategoryConstantsIndexBreakdown pins the typed-key promotion: the
// exported Category constants and raw string literals address the same map
// entries.
func TestCategoryConstantsIndexBreakdown(t *testing.T) {
	sys, err := NewSystem(Config{Model: "alex"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunScheme(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breakdown[CatLoad] == 0 {
		t.Fatal("no load time attributed on a cold start")
	}
	if rep.Breakdown[CatLoad] != rep.Breakdown["load"] {
		t.Fatal("CatLoad and \"load\" index different entries")
	}
	if got := len(Categories()); got != 10 {
		t.Fatalf("Categories() = %d entries, want 10", got)
	}
}
