package pask

import (
	"os"
	"path/filepath"
	"testing"
)

// TestWarmRestartRoundTrip records a profile on a cold run, replays it in a
// fresh run and checks the replay both helps (prefetch hits, lower total)
// and surfaces its accounting in the Report.
func TestWarmRestartRoundTrip(t *testing.T) {
	sys, err := NewSystem(Config{Model: "alex"})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	dir := t.TempDir()
	profile := filepath.Join(dir, "alex.profile.json")

	cold, err := sys.RunScheme(PaSK, WithProfileRecording(profile))
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	if cold.WarmupEntries != 0 {
		t.Fatalf("recording run must not report replay stats: %+v", cold)
	}
	if _, err := os.Stat(profile); err != nil {
		t.Fatalf("profile not written: %v", err)
	}

	warm, err := sys.RunScheme(PaSK, WithWarmupProfile(profile))
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	// Report.Total windows out process bring-up — exactly where the replay
	// hides load time — and selective reuse already keeps in-window loads
	// near zero, so the contract here is coverage: the replay engaged,
	// made objects resident ahead of demand, and covered most of what the
	// run used. (Time-to-first-inference, measured from process start, is
	// asserted strictly lower on every device in the experiments test.)
	if warm.WarmupEntries == 0 || warm.WarmupPrefetched == 0 {
		t.Fatalf("replay did not engage: %+v", warm)
	}
	if warm.WarmupHits <= warm.WarmupMisses {
		t.Errorf("replay covered %d used objects but missed %d", warm.WarmupHits, warm.WarmupMisses)
	}
	if warm.WarmupStale != 0 {
		t.Errorf("fresh profile reported %d stale entries", warm.WarmupStale)
	}
}

// TestWarmupCorruptManifestFallsBackCold writes garbage where the manifest
// should be: the run must succeed as a plain cold start.
func TestWarmupCorruptManifestFallsBackCold(t *testing.T) {
	sys, err := NewSystem(Config{Model: "alex"})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	bad := filepath.Join(t.TempDir(), "broken.json")
	if err := os.WriteFile(bad, []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunScheme(PaSK, WithWarmupProfile(bad))
	if err != nil {
		t.Fatalf("corrupt manifest must not fail the run: %v", err)
	}
	if rep.WarmupEntries != 0 || rep.WarmupPrefetched != 0 {
		t.Fatalf("corrupt manifest must be ignored entirely: %+v", rep)
	}
	// A missing file behaves the same way.
	rep, err = sys.RunScheme(PaSK, WithWarmupProfile(filepath.Join(t.TempDir(), "nope.json")))
	if err != nil {
		t.Fatalf("missing manifest must not fail the run: %v", err)
	}
	if rep.WarmupEntries != 0 {
		t.Fatalf("missing manifest must be ignored: %+v", rep)
	}
}
