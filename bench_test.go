package pask

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the experiment on the simulated stack and reports
// the headline quantity the paper plots as a custom benchmark metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation and prints paper-comparable numbers.

import (
	"testing"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
)

// fastModels is a representative subset used by the heavier sweeps to keep
// -bench runtimes moderate; run paskbench for the full twelve-model tables.
var fastModels = []string{"alex", "vgg", "res", "eff", "vit"}

func BenchmarkFig1aColdHotSlowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig1a(fastModels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Average["MI100"], "cold/hot-MI100")
		b.ReportMetric(res.Average["A100"], "cold/hot-A100")
		b.ReportMetric(res.Average["6900XT"], "cold/hot-6900XT")
	}
}

func BenchmarkFig1bBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig1b(fastModels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Avg["code loading"], "loading-%")
		b.ReportMetric(100*res.Avg["GPU execution"], "exec-%")
	}
}

func BenchmarkFig4SolutionLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6aSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, res, err := experiments.Fig6(experiments.AllModelAbbrs())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgSpeedup[core.SchemeNNV12], "NNV12-x")
		b.ReportMetric(res.AvgSpeedup[core.SchemePaSK], "PaSK-x")
		b.ReportMetric(res.AvgSpeedup[core.SchemeIdeal], "Ideal-x")
	}
}

func BenchmarkFig6bUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, res, err := experiments.Fig6(fastModels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.AvgUtil[core.SchemePaSK], "PaSK-util-%")
		b.ReportMetric(100*res.AvgUtil[core.SchemeIdeal], "Ideal-util-%")
	}
}

func BenchmarkTable2BatchSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Table2(fastModels, []int{1, 16, 128})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup[1][core.SchemePaSK], "PaSK-b1-x")
		b.ReportMetric(res.Speedup[128][core.SchemePaSK], "PaSK-b128-x")
	}
}

func BenchmarkFig7PaSKBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig7(fastModels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Avg["solution loading"], "loading-%")
		b.ReportMetric(100*res.Avg["PASK overhead"], "overhead-%")
	}
}

func BenchmarkFig8Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig8(fastModels)
		if err != nil {
			b.Fatal(err)
		}
		var sumI, sumR float64
		for _, m := range fastModels {
			sumI += res.Normalized[m][core.SchemePaSKI]
			sumR += res.Normalized[m][core.SchemePaSKR]
		}
		b.ReportMetric(sumI/float64(len(fastModels)), "PaSK-I-norm")
		b.ReportMetric(sumR/float64(len(fastModels)), "PaSK-R-norm")
	}
}

func BenchmarkFig9CacheStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, res, err := experiments.Fig9(experiments.ConvModelAbbrs())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.AvgHitRate, "hit-%")
		b.ReportMetric(res.AvgCatLookups, "cat-lookups")
		b.ReportMetric(res.AvgNaive, "naive-lookups")
	}
}

func BenchmarkExtBlasScope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtBlasScope(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtPrecisionPreference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtPrecision([]string{"alex", "res"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtBackgroundLoading(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtBackground([]string{"vgg", "res"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartPerScheme measures one ResNet34 cold start per scheme —
// the microbenchmark form of Fig 6a.
func BenchmarkColdStartPerScheme(b *testing.B) {
	sys, err := NewSystem(Config{Model: "res"})
	if err != nil {
		b.Fatal(err)
	}
	for _, scheme := range Schemes() {
		scheme := scheme
		b.Run(string(scheme), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				rep, err := sys.RunScheme(scheme)
				if err != nil {
					b.Fatal(err)
				}
				total += rep.Seconds() * 1000
			}
			b.ReportMetric(total/float64(b.N), "virtual-ms/coldstart")
		})
	}
}

// BenchmarkExtCrossModelReuse measures the multi-tenant corollary: a second
// model's cold start inside a process whose cache was warmed by another.
func BenchmarkExtCrossModelReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CrossModelReuse("res", "vgg", device.MI100())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FreshMs/res.SharedMs, "warm-process-x")
	}
}
