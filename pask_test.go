package pask

import (
	"testing"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Config{Model: "alex"})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Instructions() == 0 || sys.PrimitiveLayers() == 0 {
		t.Fatalf("empty system: %d instrs, %d layers", sys.Instructions(), sys.PrimitiveLayers())
	}
}

func TestNewSystemValidation(t *testing.T) {
	cases := []Config{
		{},                              // missing model
		{Model: "bert"},                 // unknown model
		{Model: "alex", Device: "H100"}, // unknown device
		{Model: "alex", DType: "f64"},   // unknown dtype
		{Model: "alex", Batch: -1},      // bad batch
	}
	for _, cfg := range cases {
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("NewSystem(%+v) should fail", cfg)
		}
	}
}

func TestSchemeOrderingOnResNet(t *testing.T) {
	sys, err := NewSystem(Config{Model: "res"})
	if err != nil {
		t.Fatal(err)
	}
	reports := map[Scheme]*Report{}
	for _, sch := range []Scheme{Baseline, NNV12, PaSK, Ideal} {
		rep, err := sys.RunScheme(sch)
		if err != nil {
			t.Fatal(err)
		}
		reports[sch] = rep
	}
	// The paper's ordering: Ideal < PaSK < NNV12 < Baseline in time.
	if !(reports[Ideal].Total < reports[PaSK].Total &&
		reports[PaSK].Total < reports[NNV12].Total &&
		reports[NNV12].Total < reports[Baseline].Total) {
		t.Fatalf("ordering violated: ideal=%v pask=%v nnv12=%v base=%v",
			reports[Ideal].Total, reports[PaSK].Total, reports[NNV12].Total, reports[Baseline].Total)
	}
	if reports[PaSK].SkippedLoads == 0 || reports[PaSK].HitRate() == 0 {
		t.Fatalf("PaSK reuse inactive: %+v", reports[PaSK])
	}
	if reports[Baseline].Loads <= reports[PaSK].Loads {
		t.Fatalf("baseline loads (%d) should exceed PaSK loads (%d)",
			reports[Baseline].Loads, reports[PaSK].Loads)
	}
	// Utilization rises from Baseline to PaSK to Ideal (paper Fig 6b).
	if !(reports[Baseline].Utilization() < reports[PaSK].Utilization() &&
		reports[PaSK].Utilization() < reports[Ideal].Utilization()) {
		t.Fatalf("utilization ordering violated: base=%.3f pask=%.3f ideal=%.3f",
			reports[Baseline].Utilization(), reports[PaSK].Utilization(), reports[Ideal].Utilization())
	}
}

func TestColdHotSlowdownBand(t *testing.T) {
	sys, err := NewSystem(Config{Model: "res"})
	if err != nil {
		t.Fatal(err)
	}
	cold, hot, err := sys.ColdHot()
	if err != nil {
		t.Fatal(err)
	}
	ratio := cold.Seconds() / hot.Seconds()
	// Paper Fig 1a: slowdowns in the tens.
	if ratio < 5 || ratio > 120 {
		t.Fatalf("cold/hot = %.1f, outside plausible band (cold=%v hot=%v)", ratio, cold, hot)
	}
}

func TestModelsAndDevices(t *testing.T) {
	if len(Models()) != 12 {
		t.Fatalf("Models() = %d entries", len(Models()))
	}
	if len(Devices()) != 3 {
		t.Fatalf("Devices() = %d entries", len(Devices()))
	}
	if len(Schemes()) != 6 {
		t.Fatalf("Schemes() = %d entries", len(Schemes()))
	}
}

func TestBlasScopeOption(t *testing.T) {
	sys, err := NewSystem(Config{Model: "swin"})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.RunScheme(PaSK)
	if err != nil {
		t.Fatal(err)
	}
	scoped, err := sys.RunScheme(PaSK, Options{BlasScope: true})
	if err != nil {
		t.Fatal(err)
	}
	if scoped.Total > plain.Total {
		t.Fatalf("BLAS scope slowed swin down: %v vs %v", scoped.Total, plain.Total)
	}
}

func TestReportDerivedValues(t *testing.T) {
	sys, err := NewSystem(Config{Model: "vgg"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunScheme(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds() <= 0 {
		t.Fatal("non-positive run time")
	}
	if rep.Utilization() <= 0 || rep.Utilization() >= 1 {
		t.Fatalf("utilization = %v", rep.Utilization())
	}
	if rep.Loads == 0 || rep.LoadedBytes == 0 {
		t.Fatal("baseline cold start must load code objects")
	}
	var sum int64
	for _, v := range rep.Breakdown {
		sum += int64(v)
	}
	if sum != int64(rep.Total) {
		t.Fatalf("breakdown sums to %d, total %d", sum, rep.Total)
	}
}

func TestWithPressureOption(t *testing.T) {
	sys, err := NewSystem(Config{Model: "res"})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.RunScheme(PaSK)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PressureReuse != 0 {
		t.Fatalf("nominal run reported PressureReuse = %d", plain.PressureReuse)
	}
	severe, err := sys.RunScheme(PaSK, WithPressure(PressureSevere))
	if err != nil {
		t.Fatal(err)
	}
	if severe.PressureReuse == 0 {
		t.Fatal("severe pressure produced no forced reuse")
	}
	if severe.Loads >= plain.Loads {
		t.Fatalf("severe pressure loads %d not below nominal %d", severe.Loads, plain.Loads)
	}
}
