package pask_test

import (
	"fmt"
	"log"

	"pask"
)

// ExampleNewSystem compiles ResNet-34 for the MI100 profile and compares a
// reactive cold start against PASK. Virtual times are deterministic, so the
// derived facts below always hold.
func ExampleNewSystem() {
	sys, err := pask.NewSystem(pask.Config{Model: "res", Device: "MI100"})
	if err != nil {
		log.Fatal(err)
	}
	base, err := sys.RunScheme(pask.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := sys.RunScheme(pask.PaSK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PaSK faster than Baseline:", fast.Total < base.Total)
	fmt.Println("PaSK loads fewer objects:", fast.Loads < base.Loads)
	fmt.Println("every reuse query hit:", fast.ReuseHits == fast.ReuseQueries && fast.ReuseQueries > 0)
	// Output:
	// PaSK faster than Baseline: true
	// PaSK loads fewer objects: true
	// every reuse query hit: true
}

// ExampleSystem_ColdHot measures the paper's Fig 1(a) quantities: the first
// inference of a fresh process versus a steady-state iteration.
func ExampleSystem_ColdHot() {
	sys, err := pask.NewSystem(pask.Config{Model: "alex"})
	if err != nil {
		log.Fatal(err)
	}
	cold, hot, err := sys.ColdHot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cold start slower than 10x hot:", cold > 10*hot)
	// Output:
	// cold start slower than 10x hot: true
}

// ExampleSystem_RunScheme_options shows the §VI extensions: PASK managing
// the BLAS library's GEMM kernels for a transformer model.
func ExampleSystem_RunScheme_options() {
	sys, err := pask.NewSystem(pask.Config{Model: "swin"})
	if err != nil {
		log.Fatal(err)
	}
	plain, err := sys.RunScheme(pask.PaSK)
	if err != nil {
		log.Fatal(err)
	}
	scoped, err := sys.RunScheme(pask.PaSK, pask.Options{BlasScope: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BLAS scope helps transformers:", scoped.Total < plain.Total)
	// Output:
	// BLAS scope helps transformers: true
}
