// Package onnx implements the exchange-format model graph the serving
// framework receives (paper Fig 3): a canonical-operator DAG with shape
// inference, a builder API used by the model zoo, and JSON import/export.
//
// Activation tensors are tracked as 4-D shapes. Convolutional nets use the
// natural (N, C, H, W) interpretation; transformer blocks view the same
// container as (batch, heads, rows, cols) with the matrix in (H, W).
//
// Paper anchor: the exchange-format model graph of Fig 3.
package onnx

import (
	"encoding/json"
	"fmt"

	"pask/internal/tensor"
)

// Op enumerates the canonical operator set.
type Op string

const (
	OpConv       Op = "Conv"
	OpBatchNorm  Op = "BatchNormalization"
	OpRelu       Op = "Relu"
	OpLeakyRelu  Op = "LeakyRelu"
	OpSigmoid    Op = "Sigmoid"
	OpTanh       Op = "Tanh"
	OpGelu       Op = "Gelu"
	OpMaxPool    Op = "MaxPool"
	OpAvgPool    Op = "AveragePool"
	OpGlobalPool Op = "GlobalAveragePool"
	OpGemm       Op = "Gemm"
	OpMatMul     Op = "MatMul"
	OpAdd        Op = "Add"
	OpMul        Op = "Mul"
	OpConcat     Op = "Concat"
	OpFlatten    Op = "Flatten"
	OpSoftmax    Op = "Softmax"
	OpLayerNorm  Op = "LayerNormalization"
	OpResize     Op = "Resize"
	OpIdentity   Op = "Identity"
	// OpTokens reshapes a feature map (N,C,H,W) into a token matrix
	// (N,1,H*W,C) after patch embedding.
	OpTokens Op = "Tokens"
	// OpPatchMerge merges 2x2 token neighborhoods: (N,1,S,C) -> (N,1,S/4,4C).
	OpPatchMerge Op = "PatchMerge"
)

// Node is one operator instance. Attribute maps follow the ONNX convention
// of free-form named attributes; the Attr* helpers fetch them with defaults.
type Node struct {
	Name   string         `json:"name"`
	Op     Op             `json:"op"`
	Inputs []string       `json:"inputs"`
	Output string         `json:"output"`
	Ints   map[string]int `json:"ints,omitempty"`
}

// AttrInt returns the named integer attribute or def when absent.
func (n *Node) AttrInt(key string, def int) int {
	if v, ok := n.Ints[key]; ok {
		return v
	}
	return def
}

// Init is a weight/parameter tensor declaration (shape only; values are
// generated deterministically when running functionally).
type Init struct {
	Name  string       `json:"name"`
	Shape tensor.Shape `json:"shape"`
}

// Graph is a model: one input, a node list in topological order, and the
// parameter table.
type Graph struct {
	Name       string       `json:"name"`
	Input      string       `json:"input"`
	InputShape tensor.Shape `json:"input_shape"`
	DType      tensor.DType `json:"dtype"`
	Nodes      []Node       `json:"nodes"`
	Output     string       `json:"output"`
	Inits      []Init       `json:"inits"`
}

// InitShape returns the declared shape of a parameter tensor.
func (g *Graph) InitShape(name string) (tensor.Shape, bool) {
	for _, in := range g.Inits {
		if in.Name == name {
			return in.Shape, true
		}
	}
	return tensor.Shape{}, false
}

// ParamBytes returns the total parameter size of the model for its dtype —
// the payload the executor copies host-to-device during cold start.
func (g *Graph) ParamBytes() int64 {
	var n int64
	for _, in := range g.Inits {
		n += in.Shape.Bytes(g.DType)
	}
	return n
}

// NumOps returns the node count.
func (g *Graph) NumOps() int { return len(g.Nodes) }

// MarshalJSON / Unmarshal round-trip the graph through the interchange form.

// ToJSON serializes the graph.
func (g *Graph) ToJSON() ([]byte, error) { return json.MarshalIndent(g, "", "  ") }

// FromJSON parses a serialized graph and validates it.
func FromJSON(data []byte) (*Graph, error) {
	var g Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("onnx: %w", err)
	}
	if _, err := g.InferShapes(); err != nil {
		return nil, err
	}
	return &g, nil
}

// InferShapes computes the shape of every tensor in the graph, validating
// operator legality along the way. The returned map covers the input, all
// node outputs and all initializers.
func (g *Graph) InferShapes() (map[string]tensor.Shape, error) {
	shapes := map[string]tensor.Shape{g.Input: g.InputShape}
	if !g.InputShape.Valid() {
		return nil, fmt.Errorf("onnx: %s: invalid input shape %v", g.Name, g.InputShape)
	}
	for _, in := range g.Inits {
		if !in.Shape.Valid() {
			return nil, fmt.Errorf("onnx: %s: invalid init shape %v for %q", g.Name, in.Shape, in.Name)
		}
		shapes[in.Name] = in.Shape
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		out, err := inferNode(n, shapes)
		if err != nil {
			return nil, fmt.Errorf("onnx: %s: node %q: %w", g.Name, n.Name, err)
		}
		if n.Output == "" {
			return nil, fmt.Errorf("onnx: %s: node %q has no output", g.Name, n.Name)
		}
		if _, dup := shapes[n.Output]; dup {
			return nil, fmt.Errorf("onnx: %s: tensor %q written twice", g.Name, n.Output)
		}
		shapes[n.Output] = out
	}
	if _, ok := shapes[g.Output]; !ok {
		return nil, fmt.Errorf("onnx: %s: output tensor %q never produced", g.Name, g.Output)
	}
	return shapes, nil
}

func inputShapes(n *Node, shapes map[string]tensor.Shape, want int) ([]tensor.Shape, error) {
	if len(n.Inputs) < want {
		return nil, fmt.Errorf("%s needs %d inputs, has %d", n.Op, want, len(n.Inputs))
	}
	out := make([]tensor.Shape, len(n.Inputs))
	for i, name := range n.Inputs {
		s, ok := shapes[name]
		if !ok {
			return nil, fmt.Errorf("input tensor %q undefined", name)
		}
		out[i] = s
	}
	return out, nil
}

func inferNode(n *Node, shapes map[string]tensor.Shape) (tensor.Shape, error) {
	switch n.Op {
	case OpConv:
		in, err := inputShapes(n, shapes, 2)
		if err != nil {
			return tensor.Shape{}, err
		}
		x, w := in[0], in[1]
		groups := n.AttrInt("groups", 1)
		if groups < 1 || x.C%groups != 0 {
			return tensor.Shape{}, fmt.Errorf("bad groups %d for C=%d", groups, x.C)
		}
		if w.C != x.C/groups {
			return tensor.Shape{}, fmt.Errorf("weight C %d != input C/groups %d", w.C, x.C/groups)
		}
		sh := n.AttrInt("stride_h", n.AttrInt("stride", 1))
		sw := n.AttrInt("stride_w", n.AttrInt("stride", 1))
		ph := n.AttrInt("pad_h", n.AttrInt("pad", 0))
		pw := n.AttrInt("pad_w", n.AttrInt("pad", 0))
		dh := n.AttrInt("dil_h", n.AttrInt("dil", 1))
		dw := n.AttrInt("dil_w", n.AttrInt("dil", 1))
		nh := x.H + 2*ph - ((w.H-1)*dh + 1)
		nw := x.W + 2*pw - ((w.W-1)*dw + 1)
		if nh < 0 || nw < 0 {
			return tensor.Shape{}, fmt.Errorf("filter exceeds padded input (%dx%d)", x.H, x.W)
		}
		oh := nh/sh + 1
		ow := nw/sw + 1
		return tensor.Shape{N: x.N, C: w.N, H: oh, W: ow}, nil

	case OpBatchNorm:
		in, err := inputShapes(n, shapes, 1)
		if err != nil {
			return tensor.Shape{}, err
		}
		return in[0], nil

	case OpRelu, OpLeakyRelu, OpSigmoid, OpTanh, OpGelu, OpSoftmax, OpLayerNorm, OpIdentity:
		in, err := inputShapes(n, shapes, 1)
		if err != nil {
			return tensor.Shape{}, err
		}
		return in[0], nil

	case OpMaxPool, OpAvgPool:
		in, err := inputShapes(n, shapes, 1)
		if err != nil {
			return tensor.Shape{}, err
		}
		x := in[0]
		win := n.AttrInt("win", 2)
		winH := n.AttrInt("win_h", win)
		winW := n.AttrInt("win_w", win)
		sh := n.AttrInt("stride_h", n.AttrInt("stride", winH))
		sw := n.AttrInt("stride_w", n.AttrInt("stride", winW))
		ph := n.AttrInt("pad_h", n.AttrInt("pad", 0))
		pw := n.AttrInt("pad_w", n.AttrInt("pad", 0))
		nh := x.H + 2*ph - winH
		nw := x.W + 2*pw - winW
		if nh < 0 || nw < 0 {
			return tensor.Shape{}, fmt.Errorf("pool window exceeds padded input (%dx%d)", x.H, x.W)
		}
		oh := nh/sh + 1
		ow := nw/sw + 1
		return tensor.Shape{N: x.N, C: x.C, H: oh, W: ow}, nil

	case OpGlobalPool:
		in, err := inputShapes(n, shapes, 1)
		if err != nil {
			return tensor.Shape{}, err
		}
		x := in[0]
		return tensor.Shape{N: x.N, C: x.C, H: 1, W: 1}, nil

	case OpFlatten:
		in, err := inputShapes(n, shapes, 1)
		if err != nil {
			return tensor.Shape{}, err
		}
		x := in[0]
		return tensor.Shape{N: x.N, C: 1, H: 1, W: x.C * x.H * x.W}, nil

	case OpGemm:
		// A(N,1,1,K) x W(K,M): the fully-connected layer form.
		in, err := inputShapes(n, shapes, 2)
		if err != nil {
			return tensor.Shape{}, err
		}
		x, w := in[0], in[1]
		if x.W != w.H {
			return tensor.Shape{}, fmt.Errorf("gemm inner dims %d vs %d", x.W, w.H)
		}
		return tensor.Shape{N: x.N, C: x.C, H: x.H, W: w.W}, nil

	case OpMatMul:
		// A(B,h,m,k) x B(...,k,n), with optional trans_b. The second operand
		// is either a parameter (1,1,k,n) or another activation.
		in, err := inputShapes(n, shapes, 2)
		if err != nil {
			return tensor.Shape{}, err
		}
		a, b := in[0], in[1]
		bk, bn := b.H, b.W
		if n.AttrInt("trans_b", 0) == 1 {
			bk, bn = b.W, b.H
		}
		if a.W != bk {
			return tensor.Shape{}, fmt.Errorf("matmul inner dims %d vs %d", a.W, bk)
		}
		if b.N != 1 && b.N != a.N {
			return tensor.Shape{}, fmt.Errorf("matmul batch mismatch %d vs %d", a.N, b.N)
		}
		return tensor.Shape{N: a.N, C: a.C, H: a.H, W: bn}, nil

	case OpAdd, OpMul:
		in, err := inputShapes(n, shapes, 2)
		if err != nil {
			return tensor.Shape{}, err
		}
		a, b := in[0], in[1]
		if a != b && !broadcastable(b, a) {
			return tensor.Shape{}, fmt.Errorf("%s shape mismatch %v vs %v", n.Op, a, b)
		}
		return a, nil

	case OpConcat:
		in, err := inputShapes(n, shapes, 2)
		if err != nil {
			return tensor.Shape{}, err
		}
		out := in[0]
		flat := out.C == 1 && out.H == 1
		for _, s := range in[1:] {
			if flat && s.C == 1 && s.H == 1 && s.N == out.N {
				out.W += s.W // flattened vectors join along W
				continue
			}
			if s.N != out.N || s.H != out.H || s.W != out.W {
				return tensor.Shape{}, fmt.Errorf("concat spatial mismatch %v vs %v", out, s)
			}
			out.C += s.C
		}
		return out, nil

	case OpResize:
		in, err := inputShapes(n, shapes, 1)
		if err != nil {
			return tensor.Shape{}, err
		}
		x := in[0]
		scale := n.AttrInt("scale", 2)
		if scale < 1 {
			return tensor.Shape{}, fmt.Errorf("bad resize scale %d", scale)
		}
		return tensor.Shape{N: x.N, C: x.C, H: x.H * scale, W: x.W * scale}, nil

	case OpTokens:
		in, err := inputShapes(n, shapes, 1)
		if err != nil {
			return tensor.Shape{}, err
		}
		x := in[0]
		return tensor.Shape{N: x.N, C: 1, H: x.H * x.W, W: x.C}, nil

	case OpPatchMerge:
		in, err := inputShapes(n, shapes, 1)
		if err != nil {
			return tensor.Shape{}, err
		}
		x := in[0]
		if x.H%4 != 0 {
			return tensor.Shape{}, fmt.Errorf("patch merge needs seq %% 4 == 0, got %d", x.H)
		}
		return tensor.Shape{N: x.N, C: x.C, H: x.H / 4, W: x.W * 4}, nil
	}
	return tensor.Shape{}, fmt.Errorf("unknown op %q", n.Op)
}

// broadcastable reports whether shape b broadcasts onto a under the limited
// rules the zoo needs (per-channel bias / SE gating).
func broadcastable(b, a tensor.Shape) bool {
	if b.N == 1 && b.C == a.C && b.H == 1 && b.W == 1 {
		return true
	}
	if b == a {
		return true
	}
	// SE gate: (N, C, 1, 1) scaling (N, C, H, W)
	return b.N == a.N && b.C == a.C && b.H == 1 && b.W == 1
}
