package onnx

import (
	"strings"
	"testing"

	"pask/internal/tensor"
)

func sh(n, c, h, w int) tensor.Shape { return tensor.Shape{N: n, C: c, H: h, W: w} }

func smallCNN(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("small", sh(1, 3, 32, 32), tensor.F32)
	x := b.Conv("c1", b.Input(), 8, 3, 1, 1, 1)
	x = b.Relu("r1", x)
	x = b.MaxPool("p1", x, 2, 2, 0)
	x = b.Conv("c2", x, 16, 3, 1, 1, 1)
	x = b.Relu("r2", x)
	x = b.GlobalAvgPool("gap", x)
	x = b.Flatten("flat", x)
	x = b.FC("fc", x, 10)
	g, err := b.Finish(x)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderShapeTracking(t *testing.T) {
	b := NewBuilder("m", sh(2, 3, 64, 64), tensor.F32)
	x := b.Conv("c1", b.Input(), 32, 7, 2, 3, 1)
	if got := b.Shape(x); got != sh(2, 32, 32, 32) {
		t.Fatalf("conv shape = %v", got)
	}
	x = b.MaxPool("p1", x, 3, 2, 1)
	if got := b.Shape(x); got != sh(2, 32, 16, 16) {
		t.Fatalf("pool shape = %v", got)
	}
	x = b.Flatten("f", x)
	if got := b.Shape(x); got != sh(2, 1, 1, 32*16*16) {
		t.Fatalf("flatten shape = %v", got)
	}
	x = b.FC("fc", x, 10)
	if got := b.Shape(x); got != sh(2, 1, 1, 10) {
		t.Fatalf("fc shape = %v", got)
	}
}

func TestBuilderErrorPropagates(t *testing.T) {
	b := NewBuilder("bad", sh(1, 3, 8, 8), tensor.F32)
	x := b.Conv("c1", b.Input(), 8, 3, 1, 1, 2) // 3 % 2 != 0
	x = b.Relu("r1", x)                         // must not panic after error
	if _, err := b.Finish(x); err == nil {
		t.Fatal("expected builder error")
	}
	if !strings.Contains(b.Err().Error(), "groups") {
		t.Fatalf("err = %v", b.Err())
	}
}

func TestBuilderUnknownInput(t *testing.T) {
	b := NewBuilder("bad", sh(1, 3, 8, 8), tensor.F32)
	b.Conv("c1", "nope", 8, 3, 1, 1, 1)
	if b.Err() == nil {
		t.Fatal("expected unknown-input error")
	}
}

func TestInferShapesCoversAllTensors(t *testing.T) {
	g := smallCNN(t)
	shapes, err := g.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if _, ok := shapes[n.Output]; !ok {
			t.Fatalf("no shape for %q", n.Output)
		}
		for _, in := range n.Inputs {
			if _, ok := shapes[in]; !ok {
				t.Fatalf("no shape for input %q", in)
			}
		}
	}
}

func TestInferRejectsDoubleWrite(t *testing.T) {
	g := smallCNN(t)
	g.Nodes = append(g.Nodes, Node{Name: "dup", Op: OpRelu, Inputs: []string{g.Input}, Output: g.Nodes[0].Output})
	if _, err := g.InferShapes(); err == nil {
		t.Fatal("expected double-write error")
	}
}

func TestInferRejectsUnknownOp(t *testing.T) {
	g := smallCNN(t)
	g.Nodes[0].Op = "Bogus"
	if _, err := g.InferShapes(); err == nil {
		t.Fatal("expected unknown-op error")
	}
}

func TestInferRejectsMissingOutput(t *testing.T) {
	g := smallCNN(t)
	g.Output = "ghost"
	if _, err := g.InferShapes(); err == nil {
		t.Fatal("expected missing-output error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := smallCNN(t)
	data, err := g.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || back.NumOps() != g.NumOps() || back.Output != g.Output {
		t.Fatalf("round trip mismatch: %s/%d vs %s/%d", back.Name, back.NumOps(), g.Name, g.NumOps())
	}
	if back.ParamBytes() != g.ParamBytes() {
		t.Fatalf("params %d vs %d", back.ParamBytes(), g.ParamBytes())
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Fatal("expected parse error")
	}
	g := smallCNN(t)
	g.Nodes[0].Inputs[0] = "ghost"
	data, _ := g.ToJSON()
	if _, err := FromJSON(data); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestTokensAndPatchMergeShapes(t *testing.T) {
	b := NewBuilder("t", sh(1, 3, 224, 224), tensor.F32)
	x := b.Conv("patch", b.Input(), 96, 4, 4, 0, 1)
	x = b.Tokens("tok", x)
	if got := b.Shape(x); got != sh(1, 1, 56*56, 96) {
		t.Fatalf("tokens shape = %v", got)
	}
	x = b.PatchMerge("pm", x)
	if got := b.Shape(x); got != sh(1, 1, 784, 384) {
		t.Fatalf("merge shape = %v", got)
	}
}

func TestMatMulShapes(t *testing.T) {
	b := NewBuilder("t", sh(2, 3, 64, 64), tensor.F32)
	x := b.Conv("patch", b.Input(), 32, 16, 16, 0, 1)
	x = b.Tokens("tok", x) // (2,1,16,32)
	q := b.MatMulParam("q", x, 32)
	k := b.MatMulParam("k", x, 32)
	s := b.MatMul("qk", q, k, true)
	if got := b.Shape(s); got != sh(2, 1, 16, 16) {
		t.Fatalf("scores shape = %v", got)
	}
	v := b.MatMulParam("v", x, 32)
	c := b.MatMul("ctx", s, v, false)
	if got := b.Shape(c); got != sh(2, 1, 16, 32) {
		t.Fatalf("context shape = %v", got)
	}
}

func TestMatMulDimensionError(t *testing.T) {
	b := NewBuilder("t", sh(1, 3, 64, 64), tensor.F32)
	x := b.Conv("patch", b.Input(), 32, 16, 16, 0, 1)
	x = b.Tokens("tok", x)
	q := b.MatMulParam("q", x, 32)
	k := b.MatMulParam("k", x, 48)
	b.MatMul("qk", q, k, false) // 32 vs 48 inner dims
	if b.Err() == nil {
		t.Fatal("expected inner-dim error")
	}
}

func TestBroadcastAddForSE(t *testing.T) {
	b := NewBuilder("t", sh(1, 8, 16, 16), tensor.F32)
	x := b.Conv("c", b.Input(), 8, 3, 1, 1, 1)
	g := b.GlobalAvgPool("gap", x)
	out := b.Mul("gate", x, g)
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	if got := b.Shape(out); got != sh(1, 8, 16, 16) {
		t.Fatalf("gated shape = %v", got)
	}
}

func TestConcatChannelAndFlat(t *testing.T) {
	b := NewBuilder("t", sh(1, 4, 8, 8), tensor.F32)
	a := b.Conv("a", b.Input(), 4, 3, 1, 1, 1)
	c := b.Concat("cat", a, b.Input())
	if got := b.Shape(c); got != sh(1, 8, 8, 8) {
		t.Fatalf("channel concat = %v", got)
	}
	f1 := b.Flatten("f1", a)
	f2 := b.Flatten("f2", c)
	fc := b.Concat("fcat", f1, f2)
	if got := b.Shape(fc); got != sh(1, 1, 1, 4*64+8*64) {
		t.Fatalf("flat concat = %v", got)
	}
}

func TestParamBytesMatchesInits(t *testing.T) {
	g := smallCNN(t)
	var want int64
	for _, in := range g.Inits {
		want += in.Shape.Bytes(g.DType)
	}
	if g.ParamBytes() != want || want == 0 {
		t.Fatalf("ParamBytes = %d, want %d", g.ParamBytes(), want)
	}
	if _, ok := g.InitShape("c1.weight"); !ok {
		t.Fatal("c1.weight missing")
	}
	if _, ok := g.InitShape("ghost"); ok {
		t.Fatal("ghost init found")
	}
}

// TestInferNodeErrorPaths drives the per-op validation errors.
func TestInferNodeErrorPaths(t *testing.T) {
	in := sh(1, 4, 8, 8)
	shapes := map[string]tensor.Shape{
		"x":    in,
		"w":    sh(8, 4, 3, 3),
		"wbad": sh(8, 3, 3, 3),
		"wbig": sh(8, 4, 9, 9),
		"tok":  sh(1, 1, 10, 4), // seq 10: not divisible by 4
		"flat": sh(1, 1, 1, 16),
		"m":    sh(1, 1, 4, 6),
	}
	cases := []struct {
		name string
		node Node
	}{
		{"conv bad groups", Node{Op: OpConv, Inputs: []string{"x", "w"}, Ints: map[string]int{"groups": 3}}},
		{"conv weight mismatch", Node{Op: OpConv, Inputs: []string{"x", "wbad"}}},
		{"conv filter exceeds input", Node{Op: OpConv, Inputs: []string{"x", "wbig"}}},
		{"conv missing input", Node{Op: OpConv, Inputs: []string{"x"}}},
		{"conv unknown tensor", Node{Op: OpConv, Inputs: []string{"ghost", "w"}}},
		{"pool shrinks away", Node{Op: OpMaxPool, Inputs: []string{"x"}, Ints: map[string]int{"win": 30}}},
		{"gemm inner mismatch", Node{Op: OpGemm, Inputs: []string{"flat", "m"}}},
		{"matmul inner mismatch", Node{Op: OpMatMul, Inputs: []string{"m", "m"}}},
		{"matmul batch mismatch", Node{Op: OpMatMul, Inputs: []string{"m", "badbatch"}}},
		{"add shape mismatch", Node{Op: OpAdd, Inputs: []string{"x", "m"}}},
		{"concat mismatch", Node{Op: OpConcat, Inputs: []string{"x", "m"}}},
		{"resize bad scale", Node{Op: OpResize, Inputs: []string{"x"}, Ints: map[string]int{"scale": 0}}},
		{"patchmerge indivisible", Node{Op: OpPatchMerge, Inputs: []string{"tok"}}},
		{"unknown op", Node{Op: "Bogus", Inputs: []string{"x"}}},
	}
	shapes["badbatch"] = sh(3, 2, 6, 5)
	for _, c := range cases {
		n := c.node
		n.Name = c.name
		if _, err := inferNode(&n, shapes); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestBuilderLayerNormAndFCOnUnknown(t *testing.T) {
	b := NewBuilder("bad", sh(1, 3, 8, 8), tensor.F32)
	b.FC("fc", "ghost", 10)
	if b.Err() == nil {
		t.Fatal("FC on unknown tensor must fail")
	}
	b2 := NewBuilder("bad2", sh(1, 3, 8, 8), tensor.F32)
	b2.MatMulParam("mm", "ghost", 10)
	if b2.Err() == nil {
		t.Fatal("MatMulParam on unknown tensor must fail")
	}
}

func TestGraphValidationRejectsBadInits(t *testing.T) {
	g := smallCNN(t)
	g.Inits = append(g.Inits, Init{Name: "broken", Shape: tensor.Shape{}})
	if _, err := g.InferShapes(); err == nil {
		t.Fatal("invalid init shape must fail")
	}
	g2 := smallCNN(t)
	g2.InputShape = tensor.Shape{}
	if _, err := g2.InferShapes(); err == nil {
		t.Fatal("invalid input shape must fail")
	}
	g3 := smallCNN(t)
	g3.Nodes[2].Output = ""
	if _, err := g3.InferShapes(); err == nil {
		t.Fatal("empty node output must fail")
	}
}
