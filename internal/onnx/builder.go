package onnx

import (
	"fmt"

	"pask/internal/tensor"
)

// Builder assembles a Graph with automatic tensor naming, parameter
// registration and incremental shape tracking. All zoo models are written
// against this API.
type Builder struct {
	g      *Graph
	shapes map[string]tensor.Shape
	nextID int
	err    error
}

// NewBuilder starts a model with the given input shape and element type.
func NewBuilder(name string, input tensor.Shape, dt tensor.DType) *Builder {
	g := &Graph{Name: name, Input: "input", InputShape: input, DType: dt}
	return &Builder{g: g, shapes: map[string]tensor.Shape{"input": input}}
}

// Input returns the graph input tensor name.
func (b *Builder) Input() string { return "input" }

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Shape returns the tracked shape of a tensor built so far.
func (b *Builder) Shape(t string) tensor.Shape { return b.shapes[t] }

func (b *Builder) fail(format string, args ...any) string {
	if b.err == nil {
		b.err = fmt.Errorf("onnx builder %s: %s", b.g.Name, fmt.Sprintf(format, args...))
	}
	return "!error"
}

func (b *Builder) addInit(name string, s tensor.Shape) string {
	b.g.Inits = append(b.g.Inits, Init{Name: name, Shape: s})
	b.shapes[name] = s
	return name
}

func (b *Builder) add(op Op, name string, inputs []string, ints map[string]int) string {
	if b.err != nil {
		return "!error"
	}
	if name == "" {
		b.nextID++
		name = fmt.Sprintf("%s_%d", op, b.nextID)
	}
	n := Node{Name: name, Op: op, Inputs: inputs, Output: name + ":0", Ints: ints}
	out, err := inferNode(&n, b.shapes)
	if err != nil {
		return b.fail("node %s: %v", name, err)
	}
	b.g.Nodes = append(b.g.Nodes, n)
	b.shapes[n.Output] = out
	return n.Output
}

// Conv adds a 2-D convolution with square kernel k, plus its weight and bias
// parameters.
func (b *Builder) Conv(name, x string, outC, k, stride, pad, groups int) string {
	if b.err != nil {
		return "!error"
	}
	xs, ok := b.shapes[x]
	if !ok {
		return b.fail("conv %s: unknown input %q", name, x)
	}
	if groups < 1 || xs.C%groups != 0 {
		return b.fail("conv %s: bad groups %d for C=%d", name, groups, xs.C)
	}
	w := b.addInit(name+".weight", tensor.Shape{N: outC, C: xs.C / groups, H: k, W: k})
	bias := b.addInit(name+".bias", tensor.Shape{N: outC, C: 1, H: 1, W: 1})
	return b.add(OpConv, name, []string{x, w, bias},
		map[string]int{"stride": stride, "pad": pad, "groups": groups})
}

// ConvRect adds a convolution with distinct kernel/stride/pad per axis.
func (b *Builder) ConvRect(name, x string, outC, kh, kw, sh, sw, ph, pw, groups int) string {
	if b.err != nil {
		return "!error"
	}
	xs, ok := b.shapes[x]
	if !ok {
		return b.fail("conv %s: unknown input %q", name, x)
	}
	w := b.addInit(name+".weight", tensor.Shape{N: outC, C: xs.C / groups, H: kh, W: kw})
	bias := b.addInit(name+".bias", tensor.Shape{N: outC, C: 1, H: 1, W: 1})
	return b.add(OpConv, name, []string{x, w, bias}, map[string]int{
		"stride_h": sh, "stride_w": sw, "pad_h": ph, "pad_w": pw, "groups": groups})
}

// DilatedConv adds a dilated convolution (FCN heads).
func (b *Builder) DilatedConv(name, x string, outC, k, stride, pad, dil int) string {
	if b.err != nil {
		return "!error"
	}
	xs, ok := b.shapes[x]
	if !ok {
		return b.fail("conv %s: unknown input %q", name, x)
	}
	w := b.addInit(name+".weight", tensor.Shape{N: outC, C: xs.C, H: k, W: k})
	bias := b.addInit(name+".bias", tensor.Shape{N: outC, C: 1, H: 1, W: 1})
	return b.add(OpConv, name, []string{x, w, bias},
		map[string]int{"stride": stride, "pad": pad, "dil": dil, "groups": 1})
}

// BatchNorm adds a batch-normalization node (folded into the preceding conv
// by the engine's optimizer).
func (b *Builder) BatchNorm(name, x string) string {
	if b.err != nil {
		return "!error"
	}
	xs := b.shapes[x]
	b.addInit(name+".scale", tensor.Shape{N: xs.C, C: 1, H: 1, W: 1})
	b.addInit(name+".shift", tensor.Shape{N: xs.C, C: 1, H: 1, W: 1})
	return b.add(OpBatchNorm, name, []string{x}, nil)
}

// Relu, LeakyRelu, Sigmoid, Tanh, Gelu add elementwise activations.
func (b *Builder) Relu(name, x string) string { return b.add(OpRelu, name, []string{x}, nil) }
func (b *Builder) LeakyRelu(name, x string) string {
	return b.add(OpLeakyRelu, name, []string{x}, nil)
}
func (b *Builder) Sigmoid(name, x string) string { return b.add(OpSigmoid, name, []string{x}, nil) }
func (b *Builder) Tanh(name, x string) string    { return b.add(OpTanh, name, []string{x}, nil) }
func (b *Builder) Gelu(name, x string) string    { return b.add(OpGelu, name, []string{x}, nil) }

// MaxPool and AvgPool add square-window pooling.
func (b *Builder) MaxPool(name, x string, win, stride, pad int) string {
	return b.add(OpMaxPool, name, []string{x}, map[string]int{"win": win, "stride": stride, "pad": pad})
}
func (b *Builder) AvgPool(name, x string, win, stride, pad int) string {
	return b.add(OpAvgPool, name, []string{x}, map[string]int{"win": win, "stride": stride, "pad": pad})
}

// GlobalAvgPool reduces spatial dims to 1x1.
func (b *Builder) GlobalAvgPool(name, x string) string {
	return b.add(OpGlobalPool, name, []string{x}, nil)
}

// Flatten collapses (C,H,W) into the W axis for FC layers.
func (b *Builder) Flatten(name, x string) string { return b.add(OpFlatten, name, []string{x}, nil) }

// FC adds a fully-connected layer via Gemm with weight (K, M).
func (b *Builder) FC(name, x string, outF int) string {
	if b.err != nil {
		return "!error"
	}
	xs, ok := b.shapes[x]
	if !ok {
		return b.fail("fc %s: unknown input %q", name, x)
	}
	w := b.addInit(name+".weight", tensor.Shape{N: 1, C: 1, H: xs.W, W: outF})
	return b.add(OpGemm, name, []string{x, w}, nil)
}

// MatMulParam multiplies by a parameter matrix (K, M) on the last axis.
func (b *Builder) MatMulParam(name, x string, outF int) string {
	if b.err != nil {
		return "!error"
	}
	xs, ok := b.shapes[x]
	if !ok {
		return b.fail("matmul %s: unknown input %q", name, x)
	}
	w := b.addInit(name+".weight", tensor.Shape{N: 1, C: 1, H: xs.W, W: outF})
	return b.add(OpMatMul, name, []string{x, w}, nil)
}

// MatMul multiplies two activations, optionally transposing the second.
func (b *Builder) MatMul(name, a, c string, transB bool) string {
	ints := map[string]int{}
	if transB {
		ints["trans_b"] = 1
	}
	return b.add(OpMatMul, name, []string{a, c}, ints)
}

// Add and Mul add elementwise binary nodes (residuals, SE gates).
func (b *Builder) Add(name, x, y string) string { return b.add(OpAdd, name, []string{x, y}, nil) }
func (b *Builder) Mul(name, x, y string) string { return b.add(OpMul, name, []string{x, y}, nil) }

// Concat joins tensors along channels.
func (b *Builder) Concat(name string, xs ...string) string { return b.add(OpConcat, name, xs, nil) }

// Softmax normalizes the last axis.
func (b *Builder) Softmax(name, x string) string { return b.add(OpSoftmax, name, []string{x}, nil) }

// LayerNorm normalizes the last axis with learned scale/shift.
func (b *Builder) LayerNorm(name, x string) string {
	if b.err != nil {
		return "!error"
	}
	xs := b.shapes[x]
	b.addInit(name+".scale", tensor.Shape{N: 1, C: 1, H: 1, W: xs.W})
	return b.add(OpLayerNorm, name, []string{x}, nil)
}

// Tokens reshapes a patch-embedded feature map into a token matrix.
func (b *Builder) Tokens(name, x string) string { return b.add(OpTokens, name, []string{x}, nil) }

// PatchMerge merges 2x2 token neighborhoods (Swin stage transitions).
func (b *Builder) PatchMerge(name, x string) string {
	return b.add(OpPatchMerge, name, []string{x}, nil)
}

// Resize upsamples spatially by an integer scale (decoder paths).
func (b *Builder) Resize(name, x string, scale int) string {
	return b.add(OpResize, name, []string{x}, map[string]int{"scale": scale})
}

// Finish seals the graph with the given output tensor and validates it.
func (b *Builder) Finish(output string) (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.g.Output = output
	if _, err := b.g.InferShapes(); err != nil {
		return nil, err
	}
	return b.g, nil
}
