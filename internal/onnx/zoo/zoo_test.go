package zoo

import (
	"testing"

	"pask/internal/onnx"
)

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, s := range Models() {
		s := s
		t.Run(s.Abbr, func(t *testing.T) {
			g, err := s.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.InferShapes(); err != nil {
				t.Fatal(err)
			}
			if g.NumOps() == 0 {
				t.Fatal("empty model")
			}
		})
	}
}

func TestModelCountAndAbbrs(t *testing.T) {
	ms := Models()
	if len(ms) != 12 {
		t.Fatalf("zoo has %d models, want 12", len(ms))
	}
	want := []string{"alex", "vgg", "res", "reg", "eff", "rcnn", "ssd", "fcn", "unet", "vit", "swin", "swin2"}
	for i, abbr := range want {
		if ms[i].Abbr != abbr {
			t.Fatalf("model %d abbr = %s, want %s", i, ms[i].Abbr, abbr)
		}
		if _, err := ByAbbr(abbr); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByAbbr("bert"); err == nil {
		t.Fatal("unknown abbr should fail")
	}
}

func TestBatchParametrization(t *testing.T) {
	for _, batch := range []int{1, 4, 16} {
		g, err := ResNet34(batch)
		if err != nil {
			t.Fatal(err)
		}
		if g.InputShape.N != batch {
			t.Fatalf("input batch = %d, want %d", g.InputShape.N, batch)
		}
		shapes, err := g.InferShapes()
		if err != nil {
			t.Fatal(err)
		}
		if shapes[g.Output].N != batch {
			t.Fatalf("output batch = %d", shapes[g.Output].N)
		}
	}
}

// TestParamSizesMatchTorchvision checks the zoo reproduces the well-known
// checkpoint sizes (fp32 MB) of the torchvision implementations within 15%.
func TestParamSizesMatchTorchvision(t *testing.T) {
	want := map[string]float64{
		"alex": 244, // 61.1M params
		"vgg":  553, // 138.4M
		"res":  87,  // 21.8M
		"vit":  346, // 86.6M
	}
	for abbr, mb := range want {
		s, err := ByAbbr(abbr)
		if err != nil {
			t.Fatal(err)
		}
		g, err := s.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(g.ParamBytes()) / 1e6
		if got < mb*0.85 || got > mb*1.15 {
			t.Errorf("%s params = %.1fMB, want ~%.0fMB", abbr, got, mb)
		}
	}
}

func TestTransformersHaveExactlyOneConv(t *testing.T) {
	for _, abbr := range []string{"vit", "swin", "swin2"} {
		s, _ := ByAbbr(abbr)
		g, err := s.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		convs := 0
		matmuls := 0
		for _, n := range g.Nodes {
			switch n.Op {
			case onnx.OpConv:
				convs++
			case onnx.OpMatMul:
				matmuls++
			}
		}
		if convs != 1 {
			t.Errorf("%s has %d convs, want exactly 1 (patch embed)", abbr, convs)
		}
		if matmuls < 20 {
			t.Errorf("%s has only %d matmuls", abbr, matmuls)
		}
	}
}

func TestCNNsAreConvDominated(t *testing.T) {
	for _, abbr := range []string{"alex", "vgg", "res", "reg", "eff", "rcnn", "ssd", "fcn", "unet"} {
		s, _ := ByAbbr(abbr)
		g, err := s.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", abbr, err)
		}
		convs := 0
		for _, n := range g.Nodes {
			if n.Op == onnx.OpConv {
				convs++
			}
		}
		if convs < 5 {
			t.Errorf("%s has only %d convs", abbr, convs)
		}
	}
}

func TestModelsAreDeterministic(t *testing.T) {
	a, err := EfficientNetB7(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EfficientNetB7(1)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.ToJSON()
	jb, _ := b.ToJSON()
	if string(ja) != string(jb) {
		t.Fatal("two builds of the same model differ")
	}
}

func TestSwinVariantsDiffer(t *testing.T) {
	a, err := SwinB(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SwinV2B(1)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.ToJSON()
	jb, _ := b.ToJSON()
	if string(ja) == string(jb) {
		t.Fatal("Swin and SwinV2 should differ (pre vs post norm)")
	}
}

// TestZooJSONRoundTrip: every zoo model survives ONNX-JSON export/import
// with validation (the interchange path of cmd/modelzoo -export).
func TestZooJSONRoundTrip(t *testing.T) {
	for _, s := range Models() {
		g, err := s.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		data, err := g.ToJSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := onnx.FromJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", s.Abbr, err)
		}
		if back.NumOps() != g.NumOps() || back.ParamBytes() != g.ParamBytes() {
			t.Fatalf("%s: round trip mismatch (%d/%d ops, %d/%d bytes)",
				s.Abbr, back.NumOps(), g.NumOps(), back.ParamBytes(), g.ParamBytes())
		}
	}
}
