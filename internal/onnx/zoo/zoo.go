// Package zoo builds the twelve DNN models of the paper's Table I as onnx
// graphs: five image-recognition CNNs, two object detectors, two semantic
// segmentation nets and three vision transformers. Architectures follow the
// torchvision implementations in structure and channel geometry at ImageNet
// input settings; transformer blocks are expressed with explicit MatMul /
// Softmax / LayerNorm operators so their GEMMs lower to the BLAS library,
// exactly the property that limits PASK's benefit on them (paper §VI).
//
// Paper anchor: the twelve Table I models at the paper's input settings.
package zoo

import (
	"fmt"

	"pask/internal/onnx"
	"pask/internal/tensor"
)

// Spec describes one zoo model.
type Spec struct {
	Name  string // torchvision-style name
	Abbr  string // paper abbreviation (Table I)
	Type  string // workload category
	Build func(batch int) (*onnx.Graph, error)
}

// Models returns the twelve models in the paper's Table I order.
func Models() []Spec {
	return []Spec{
		{"AlexNet", "alex", "Img. Rec.", AlexNet},
		{"VGG16", "vgg", "Img. Rec.", VGG16},
		{"ResNet34", "res", "Img. Rec.", ResNet34},
		{"RegNet_Y_800MF", "reg", "Img. Rec.", RegNetY800MF},
		{"EfficientNet_B7", "eff", "Img. Rec.", EfficientNetB7},
		{"Faster_R-CNN", "rcnn", "Obj. Det.", FasterRCNN},
		{"SSD300", "ssd", "Obj. Det.", SSD300},
		{"FCN", "fcn", "Sem. Seg.", FCN},
		{"UNet", "unet", "Sem. Seg.", UNet},
		{"VIT_B_16", "vit", "ViT", ViTB16},
		{"Swin_B", "swin", "ViT", SwinB},
		{"Swin_V2_B", "swin2", "ViT", SwinV2B},
	}
}

// ByAbbr returns the spec with the given paper abbreviation.
func ByAbbr(abbr string) (Spec, error) {
	for _, s := range Models() {
		if s.Abbr == abbr {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("zoo: unknown model %q", abbr)
}

func imageInput(batch, size int) tensor.Shape {
	return tensor.Shape{N: batch, C: 3, H: size, W: size}
}

// AlexNet is the 5-conv classifier of Krizhevsky et al.
func AlexNet(batch int) (*onnx.Graph, error) {
	b := onnx.NewBuilder("AlexNet", imageInput(batch, 224), tensor.F32)
	x := b.ConvRect("conv1", b.Input(), 64, 11, 11, 4, 4, 2, 2, 1)
	x = b.Relu("relu1", x)
	x = b.MaxPool("pool1", x, 3, 2, 0)
	x = b.Conv("conv2", x, 192, 5, 1, 2, 1)
	x = b.Relu("relu2", x)
	x = b.MaxPool("pool2", x, 3, 2, 0)
	x = b.Conv("conv3", x, 384, 3, 1, 1, 1)
	x = b.Relu("relu3", x)
	x = b.Conv("conv4", x, 256, 3, 1, 1, 1)
	x = b.Relu("relu4", x)
	x = b.Conv("conv5", x, 256, 3, 1, 1, 1)
	x = b.Relu("relu5", x)
	x = b.MaxPool("pool5", x, 3, 2, 0)
	x = b.Flatten("flat", x)
	x = b.FC("fc6", x, 4096)
	x = b.Relu("relu6", x)
	x = b.FC("fc7", x, 4096)
	x = b.Relu("relu7", x)
	x = b.FC("fc8", x, 1000)
	return b.Finish(x)
}

// VGG16 is the 13-conv + 3-FC classifier of Simonyan & Zisserman.
func VGG16(batch int) (*onnx.Graph, error) {
	b := onnx.NewBuilder("VGG16", imageInput(batch, 224), tensor.F32)
	x := b.Input()
	cfg := []struct {
		convs, ch int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	for si, stage := range cfg {
		for ci := 0; ci < stage.convs; ci++ {
			name := fmt.Sprintf("conv%d_%d", si+1, ci+1)
			x = b.Conv(name, x, stage.ch, 3, 1, 1, 1)
			x = b.Relu(name+"_relu", x)
		}
		x = b.MaxPool(fmt.Sprintf("pool%d", si+1), x, 2, 2, 0)
	}
	x = b.Flatten("flat", x)
	x = b.FC("fc1", x, 4096)
	x = b.Relu("fc1_relu", x)
	x = b.FC("fc2", x, 4096)
	x = b.Relu("fc2_relu", x)
	x = b.FC("fc3", x, 1000)
	return b.Finish(x)
}

// basicBlock appends a ResNet basic block (two 3x3 convs + shortcut).
func basicBlock(b *onnx.Builder, name, x string, ch, stride int) string {
	id := x
	y := b.Conv(name+"_conv1", x, ch, 3, stride, 1, 1)
	y = b.BatchNorm(name+"_bn1", y)
	y = b.Relu(name+"_relu1", y)
	y = b.Conv(name+"_conv2", y, ch, 3, 1, 1, 1)
	y = b.BatchNorm(name+"_bn2", y)
	if stride != 1 || b.Shape(x).C != ch {
		id = b.Conv(name+"_down", x, ch, 1, stride, 0, 1)
		id = b.BatchNorm(name+"_downbn", id)
	}
	y = b.Add(name+"_add", y, id)
	return b.Relu(name+"_relu2", y)
}

// ResNet34 is the 34-layer residual network.
func ResNet34(batch int) (*onnx.Graph, error) {
	b := onnx.NewBuilder("ResNet34", imageInput(batch, 224), tensor.F32)
	x := b.Conv("conv1", b.Input(), 64, 7, 2, 3, 1)
	x = b.BatchNorm("bn1", x)
	x = b.Relu("relu1", x)
	x = b.MaxPool("pool1", x, 3, 2, 1)
	depths := []int{3, 4, 6, 3}
	widths := []int{64, 128, 256, 512}
	for si, d := range depths {
		for bi := 0; bi < d; bi++ {
			stride := 1
			if bi == 0 && si > 0 {
				stride = 2
			}
			x = basicBlock(b, fmt.Sprintf("layer%d_%d", si+1, bi), x, widths[si], stride)
		}
	}
	x = b.GlobalAvgPool("gap", x)
	x = b.Flatten("flat", x)
	x = b.FC("fc", x, 1000)
	return b.Finish(x)
}

// seBlock appends a squeeze-and-excitation gate over x.
func seBlock(b *onnx.Builder, name, x string, reduced int) string {
	c := b.Shape(x).C
	s := b.GlobalAvgPool(name+"_squeeze", x)
	s = b.Conv(name+"_fc1", s, reduced, 1, 1, 0, 1)
	s = b.Relu(name+"_relu", s)
	s = b.Conv(name+"_fc2", s, c, 1, 1, 0, 1)
	s = b.Sigmoid(name+"_gate", s)
	return b.Mul(name+"_scale", x, s)
}

// RegNetY800MF follows the RegNet-Y 800MF design: four stages of grouped
// bottlenecks with SE.
func RegNetY800MF(batch int) (*onnx.Graph, error) {
	b := onnx.NewBuilder("RegNet_Y_800MF", imageInput(batch, 224), tensor.F32)
	x := b.Conv("stem", b.Input(), 32, 3, 2, 1, 1)
	x = b.BatchNorm("stem_bn", x)
	x = b.Relu("stem_relu", x)
	widths := []int{64, 128, 320, 768}
	depths := []int{1, 3, 8, 2}
	const groupWidth = 16
	for si, d := range depths {
		for bi := 0; bi < d; bi++ {
			stride := 1
			if bi == 0 {
				stride = 2
			}
			w := widths[si]
			name := fmt.Sprintf("s%d_b%d", si+1, bi)
			id := x
			y := b.Conv(name+"_1x1a", x, w, 1, 1, 0, 1)
			y = b.BatchNorm(name+"_bna", y)
			y = b.Relu(name+"_relua", y)
			y = b.Conv(name+"_3x3", y, w, 3, stride, 1, w/groupWidth)
			y = b.BatchNorm(name+"_bnb", y)
			y = b.Relu(name+"_relub", y)
			y = seBlock(b, name+"_se", y, w/4)
			y = b.Conv(name+"_1x1b", y, w, 1, 1, 0, 1)
			y = b.BatchNorm(name+"_bnc", y)
			if stride != 1 || b.Shape(x).C != w {
				id = b.Conv(name+"_down", x, w, 1, stride, 0, 1)
				id = b.BatchNorm(name+"_downbn", id)
			}
			y = b.Add(name+"_add", y, id)
			x = b.Relu(name+"_reluc", y)
		}
	}
	x = b.GlobalAvgPool("gap", x)
	x = b.Flatten("flat", x)
	x = b.FC("fc", x, 1000)
	return b.Finish(x)
}

// mbConv appends an EfficientNet MBConv block.
func mbConv(b *onnx.Builder, name, x string, outC, k, stride, expand int) string {
	inC := b.Shape(x).C
	id := x
	y := x
	if expand != 1 {
		y = b.Conv(name+"_expand", y, inC*expand, 1, 1, 0, 1)
		y = b.BatchNorm(name+"_ebn", y)
		y = b.Sigmoid(name+"_eswish", y) // SiLU approximated by its sigmoid gate cost
	}
	mid := b.Shape(y).C
	y = b.Conv(name+"_dw", y, mid, k, stride, k/2, mid)
	y = b.BatchNorm(name+"_dwbn", y)
	y = b.Sigmoid(name+"_dwswish", y)
	y = seBlock(b, name+"_se", y, inC/4)
	y = b.Conv(name+"_project", y, outC, 1, 1, 0, 1)
	y = b.BatchNorm(name+"_pbn", y)
	if stride == 1 && inC == outC {
		y = b.Add(name+"_add", y, id)
	}
	return y
}

// EfficientNetB7 follows the B7 stage layout at ImageNet resolution.
func EfficientNetB7(batch int) (*onnx.Graph, error) {
	b := onnx.NewBuilder("EfficientNet_B7", imageInput(batch, 224), tensor.F32)
	x := b.Conv("stem", b.Input(), 64, 3, 2, 1, 1)
	x = b.BatchNorm("stem_bn", x)
	x = b.Sigmoid("stem_swish", x)
	stages := []struct {
		expand, ch, k, stride, repeat int
	}{
		{1, 32, 3, 1, 4},
		{6, 48, 3, 2, 7},
		{6, 80, 5, 2, 7},
		{6, 160, 3, 2, 10},
		{6, 224, 5, 1, 10},
		{6, 384, 5, 2, 13},
		{6, 640, 3, 1, 4},
	}
	for si, st := range stages {
		for r := 0; r < st.repeat; r++ {
			stride := 1
			if r == 0 {
				stride = st.stride
			}
			x = mbConv(b, fmt.Sprintf("s%d_b%d", si+1, r), x, st.ch, st.k, stride, st.expand)
		}
	}
	x = b.Conv("head", x, 2560, 1, 1, 0, 1)
	x = b.BatchNorm("head_bn", x)
	x = b.Sigmoid("head_swish", x)
	x = b.GlobalAvgPool("gap", x)
	x = b.Flatten("flat", x)
	x = b.FC("fc", x, 1000)
	return b.Finish(x)
}

// bottleneck appends a ResNet bottleneck block (1x1, 3x3, 1x1).
func bottleneck(b *onnx.Builder, name, x string, ch, stride, dil int) string {
	id := x
	y := b.Conv(name+"_1x1a", x, ch, 1, 1, 0, 1)
	y = b.BatchNorm(name+"_bna", y)
	y = b.Relu(name+"_relua", y)
	if dil > 1 {
		y = b.DilatedConv(name+"_3x3", y, ch, 3, stride, dil, dil)
	} else {
		y = b.Conv(name+"_3x3", y, ch, 3, stride, 1, 1)
	}
	y = b.BatchNorm(name+"_bnb", y)
	y = b.Relu(name+"_relub", y)
	y = b.Conv(name+"_1x1b", y, ch*4, 1, 1, 0, 1)
	y = b.BatchNorm(name+"_bnc", y)
	if stride != 1 || b.Shape(x).C != ch*4 {
		id = b.Conv(name+"_down", x, ch*4, 1, stride, 0, 1)
		id = b.BatchNorm(name+"_downbn", id)
	}
	y = b.Add(name+"_add", y, id)
	return b.Relu(name+"_reluc", y)
}

// FasterRCNN models the detector's dense path: a bottleneck backbone, an FPN
// lateral layer and the RPN head (the region-proposal stage dominating the
// primitive-layer mix).
func FasterRCNN(batch int) (*onnx.Graph, error) {
	b := onnx.NewBuilder("Faster_R-CNN", imageInput(batch, 224), tensor.F32)
	x := b.Conv("conv1", b.Input(), 64, 7, 2, 3, 1)
	x = b.BatchNorm("bn1", x)
	x = b.Relu("relu1", x)
	x = b.MaxPool("pool1", x, 3, 2, 1)
	depths := []int{2, 2, 2, 2}
	widths := []int{64, 128, 256, 512}
	for si, d := range depths {
		for bi := 0; bi < d; bi++ {
			stride := 1
			if bi == 0 && si > 0 {
				stride = 2
			}
			x = bottleneck(b, fmt.Sprintf("layer%d_%d", si+1, bi), x, widths[si], stride, 1)
		}
	}
	// FPN lateral + output convs.
	lat := b.Conv("fpn_lateral", x, 256, 1, 1, 0, 1)
	fpn := b.Conv("fpn_output", lat, 256, 3, 1, 1, 1)
	// RPN head: shared 3x3 then objectness and box regression 1x1s.
	h := b.Conv("rpn_conv", fpn, 256, 3, 1, 1, 1)
	h = b.Relu("rpn_relu", h)
	cls := b.Conv("rpn_cls", h, 3, 1, 1, 0, 1)
	cls = b.Sigmoid("rpn_sig", cls)
	reg := b.Conv("rpn_reg", h, 12, 1, 1, 0, 1)
	out := b.Concat("rpn_out", cls, reg)
	return b.Finish(out)
}

// SSD300 is the single-shot detector: a VGG backbone, extra feature layers
// and per-source multibox heads at 300x300 input.
func SSD300(batch int) (*onnx.Graph, error) {
	b := onnx.NewBuilder("SSD300", imageInput(batch, 300), tensor.F32)
	x := b.Input()
	type headSrc struct {
		tensor string
		boxes  int
	}
	var srcs []headSrc
	cfg := []struct {
		convs, ch int
		pool      bool
	}{{2, 64, true}, {2, 128, true}, {3, 256, true}, {3, 512, true}, {3, 512, false}}
	for si, stage := range cfg {
		for ci := 0; ci < stage.convs; ci++ {
			name := fmt.Sprintf("conv%d_%d", si+1, ci+1)
			x = b.Conv(name, x, stage.ch, 3, 1, 1, 1)
			x = b.Relu(name+"_relu", x)
		}
		if si == 3 {
			srcs = append(srcs, headSrc{x, 4}) // conv4_3 feature map
		}
		if stage.pool {
			x = b.MaxPool(fmt.Sprintf("pool%d", si+1), x, 2, 2, 0)
		}
	}
	x = b.MaxPool("pool5", x, 3, 1, 1)
	x = b.DilatedConv("conv6", x, 1024, 3, 1, 6, 6)
	x = b.Relu("conv6_relu", x)
	x = b.Conv("conv7", x, 1024, 1, 1, 0, 1)
	x = b.Relu("conv7_relu", x)
	srcs = append(srcs, headSrc{x, 6})
	extras := []struct {
		mid, out, stride, pad int
	}{{256, 512, 2, 1}, {128, 256, 2, 1}, {128, 256, 1, 0}, {128, 256, 1, 0}}
	for ei, e := range extras {
		name := fmt.Sprintf("extra%d", ei+8)
		x = b.Conv(name+"_1", x, e.mid, 1, 1, 0, 1)
		x = b.Relu(name+"_1relu", x)
		x = b.Conv(name+"_2", x, e.out, 3, e.stride, e.pad, 1)
		x = b.Relu(name+"_2relu", x)
		srcs = append(srcs, headSrc{x, 6})
	}
	// Multibox heads: loc (4 coords) and conf (21 classes) per source.
	var heads []string
	for i, s := range srcs {
		loc := b.Conv(fmt.Sprintf("loc%d", i), s.tensor, s.boxes*4, 3, 1, 1, 1)
		conf := b.Conv(fmt.Sprintf("conf%d", i), s.tensor, s.boxes*21, 3, 1, 1, 1)
		heads = append(heads, b.Flatten(fmt.Sprintf("loc%d_flat", i), loc))
		heads = append(heads, b.Flatten(fmt.Sprintf("conf%d_flat", i), conf))
	}
	out := heads[0]
	for i := 1; i < len(heads); i++ {
		out = b.Concat(fmt.Sprintf("cat%d", i), out, heads[i])
	}
	return b.Finish(out)
}

// FCN is the fully-convolutional segmenter: a dilated bottleneck backbone
// with a dense prediction head and bilinear upsampling.
func FCN(batch int) (*onnx.Graph, error) {
	b := onnx.NewBuilder("FCN", imageInput(batch, 224), tensor.F32)
	x := b.Conv("conv1", b.Input(), 64, 7, 2, 3, 1)
	x = b.BatchNorm("bn1", x)
	x = b.Relu("relu1", x)
	x = b.MaxPool("pool1", x, 3, 2, 1)
	x = bottleneck(b, "layer1_0", x, 64, 1, 1)
	x = bottleneck(b, "layer2_0", x, 128, 2, 1)
	x = bottleneck(b, "layer3_0", x, 256, 1, 2) // dilated, stride kept
	x = bottleneck(b, "layer4_0", x, 512, 1, 4)
	x = b.Conv("head_conv", x, 512, 3, 1, 1, 1)
	x = b.BatchNorm("head_bn", x)
	x = b.Relu("head_relu", x)
	x = b.Conv("classifier", x, 21, 1, 1, 0, 1)
	x = b.Resize("upsample", x, 8)
	return b.Finish(x)
}

// UNet is the encoder-decoder segmenter with skip connections.
func UNet(batch int) (*onnx.Graph, error) {
	b := onnx.NewBuilder("UNet", tensor.Shape{N: batch, C: 3, H: 256, W: 256}, tensor.F32)
	double := func(name, x string, ch int) string {
		y := b.Conv(name+"_conv1", x, ch, 3, 1, 1, 1)
		y = b.BatchNorm(name+"_bn1", y)
		y = b.Relu(name+"_relu1", y)
		y = b.Conv(name+"_conv2", y, ch, 3, 1, 1, 1)
		y = b.BatchNorm(name+"_bn2", y)
		return b.Relu(name+"_relu2", y)
	}
	enc1 := double("enc1", b.Input(), 64)
	x := b.MaxPool("pool1", enc1, 2, 2, 0)
	enc2 := double("enc2", x, 128)
	x = b.MaxPool("pool2", enc2, 2, 2, 0)
	enc3 := double("enc3", x, 256)
	x = b.MaxPool("pool3", enc3, 2, 2, 0)
	enc4 := double("enc4", x, 512)
	x = b.MaxPool("pool4", enc4, 2, 2, 0)
	x = double("bottleneck", x, 1024)
	skips := []string{enc4, enc3, enc2, enc1}
	chans := []int{512, 256, 128, 64}
	for i, skip := range skips {
		name := fmt.Sprintf("dec%d", i+1)
		x = b.Resize(name+"_up", x, 2)
		x = b.Conv(name+"_upconv", x, chans[i], 1, 1, 0, 1)
		x = b.Concat(name+"_cat", skip, x)
		x = double(name, x, chans[i])
	}
	x = b.Conv("final", x, 2, 1, 1, 0, 1)
	return b.Finish(x)
}

// encoderBlock appends one transformer encoder block over tokens
// (N, 1, seq, dim). preNorm selects pre-LN (ViT/Swin) vs post-LN (SwinV2).
func encoderBlock(b *onnx.Builder, name, x string, dim int, preNorm bool) string {
	attnIn := x
	if preNorm {
		attnIn = b.LayerNorm(name+"_ln1", x)
	}
	q := b.MatMulParam(name+"_q", attnIn, dim)
	k := b.MatMulParam(name+"_k", attnIn, dim)
	v := b.MatMulParam(name+"_v", attnIn, dim)
	scores := b.MatMul(name+"_qk", q, k, true)
	probs := b.Softmax(name+"_softmax", scores)
	ctx := b.MatMul(name+"_ctxv", probs, v, false)
	proj := b.MatMulParam(name+"_proj", ctx, dim)
	if !preNorm {
		proj = b.LayerNorm(name+"_ln1", proj)
	}
	x = b.Add(name+"_attnadd", x, proj)
	mlpIn := x
	if preNorm {
		mlpIn = b.LayerNorm(name+"_ln2", x)
	}
	h := b.MatMulParam(name+"_mlp1", mlpIn, dim*4)
	h = b.Gelu(name+"_gelu", h)
	h = b.MatMulParam(name+"_mlp2", h, dim)
	if !preNorm {
		h = b.LayerNorm(name+"_ln2", h)
	}
	return b.Add(name+"_mlpadd", x, h)
}

// ViTB16 is the base vision transformer with 16x16 patches: exactly one
// primitive-library layer (the patch-embedding convolution), everything else
// BLAS GEMMs.
func ViTB16(batch int) (*onnx.Graph, error) {
	b := onnx.NewBuilder("VIT_B_16", imageInput(batch, 224), tensor.F32)
	const dim = 768
	x := b.Conv("patch_embed", b.Input(), dim, 16, 16, 0, 1)
	x = b.Tokens("tokens", x)
	for i := 0; i < 12; i++ {
		x = encoderBlock(b, fmt.Sprintf("block%d", i), x, dim, true)
	}
	x = b.LayerNorm("final_ln", x)
	x = b.MatMulParam("head", x, 1000)
	return b.Finish(x)
}

func swinLike(name string, batch int, preNorm bool) (*onnx.Graph, error) {
	b := onnx.NewBuilder(name, imageInput(batch, 224), tensor.F32)
	x := b.Conv("patch_embed", b.Input(), 128, 4, 4, 0, 1)
	x = b.Tokens("tokens", x)
	dims := []int{128, 256, 512, 1024}
	depths := []int{2, 2, 6, 2} // shortened 3rd stage keeps simulation nimble
	for si, d := range depths {
		for bi := 0; bi < d; bi++ {
			x = encoderBlock(b, fmt.Sprintf("s%d_b%d", si+1, bi), x, dims[si], preNorm)
		}
		if si < len(depths)-1 {
			x = b.PatchMerge(fmt.Sprintf("merge%d", si+1), x)
			x = b.MatMulParam(fmt.Sprintf("merge%d_proj", si+1), x, dims[si+1])
		}
	}
	x = b.LayerNorm("final_ln", x)
	x = b.MatMulParam("head", x, 1000)
	return b.Finish(x)
}

// SwinB is the hierarchical windowed transformer (pre-norm).
func SwinB(batch int) (*onnx.Graph, error) { return swinLike("Swin_B", batch, true) }

// SwinV2B is the V2 variant (post-norm residual blocks).
func SwinV2B(batch int) (*onnx.Graph, error) { return swinLike("Swin_V2_B", batch, false) }
