package graphx

import (
	"testing"
	"time"

	"pask/internal/blas"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/hip"
	"pask/internal/metrics"
	"pask/internal/miopen"
	"pask/internal/onnx"
	"pask/internal/onnx/zoo"
	"pask/internal/sim"
	"pask/internal/tensor"
)

func compileZoo(t *testing.T, abbr string, batch int, reg *miopen.Registry, opts CompileOptions) *CompiledModel {
	t.Helper()
	spec, err := zoo.ByAbbr(abbr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(batch)
	if err != nil {
		t.Fatal(err)
	}
	db := miopen.NewPerfDB(reg)
	m, err := Compile(g, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompileAllZooModels(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	for _, spec := range zoo.Models() {
		spec := spec
		t.Run(spec.Abbr, func(t *testing.T) {
			m := compileZoo(t, spec.Abbr, 1, reg, CompileOptions{})
			if m.NumInstructions() == 0 {
				t.Fatal("no instructions")
			}
			if m.PrimitiveCount() == 0 {
				t.Fatal("no primitive instructions")
			}
			paths, err := m.DistinctObjects(reg)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) == 0 {
				t.Fatal("no code objects in plan")
			}
		})
	}
}

func TestTransformersHaveOnePrimitiveConv(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	for _, abbr := range []string{"vit", "swin", "swin2"} {
		m := compileZoo(t, abbr, 1, reg, CompileOptions{})
		convs := 0
		gemms := 0
		for i := range m.Instrs {
			switch m.Instrs[i].Kind {
			case KindPrimitive:
				if m.Instrs[i].Problem.Primitive == miopen.Convolution {
					convs++
				}
			case KindGemm:
				gemms++
			}
		}
		if convs != 1 {
			t.Errorf("%s: %d primitive convs, want 1", abbr, convs)
		}
		if gemms < 20 {
			t.Errorf("%s: only %d gemms", abbr, gemms)
		}
	}
}

func TestDefaultModeInsertsTransforms(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	m := compileZoo(t, "res", 1, reg, CompileOptions{})
	transforms := 0
	for i := range m.Instrs {
		if m.Instrs[i].Kind == KindTransform {
			transforms++
		}
	}
	if transforms == 0 {
		t.Fatal("default selection should mix layouts and insert transforms")
	}
}

func TestUniformModeHasNoTransforms(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	for _, abbr := range []string{"res", "reg", "eff", "vgg"} {
		m := compileZoo(t, abbr, 1, reg, CompileOptions{Mode: SelectUniformLayout, Uniform: tensor.NCHW})
		for i := range m.Instrs {
			if m.Instrs[i].Kind == KindTransform {
				t.Fatalf("%s: uniform-layout plan contains transform %s", abbr, m.Instrs[i].Name)
			}
		}
	}
}

func TestCompiledModelEncodeDecode(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	m := compileZoo(t, "alex", 1, reg, CompileOptions{})
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name || back.NumInstructions() != m.NumInstructions() || back.ParamBytes != m.ParamBytes {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	// Instances still resolve after decoding.
	for i := range back.Instrs {
		if back.Instrs[i].Kind == KindPrimitive {
			if _, err := back.Instrs[i].Instance(reg); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Corruption is detected.
	data[len(data)/2] ^= 0xff
	if _, err := DecodeModel(data); err == nil {
		t.Fatal("corrupt model decoded")
	}
	if _, err := DecodeModel(data[:4]); err == nil {
		t.Fatal("truncated model decoded")
	}
}

func TestOptimizePasses(t *testing.T) {
	b := onnx.NewBuilder("p", tensor.Shape{N: 1, C: 3, H: 16, W: 16}, tensor.F32)
	x := b.Conv("c1", b.Input(), 8, 3, 1, 1, 1)
	x = b.BatchNorm("bn1", x) // foldable
	x = b.Relu("r1", x)
	// Two identical convs from the same input: CSE should merge them.
	y1 := b.Conv("dup_a", x, 8, 1, 1, 0, 1)
	_ = b.Conv("dead", x, 4, 1, 1, 0, 1) // dead: never used
	g, err := b.Finish(y1)
	if err != nil {
		t.Fatal(err)
	}
	before := g.NumOps()
	stats := Optimize(g)
	if stats.FoldedBatchNorm != 1 {
		t.Fatalf("bn folds = %d", stats.FoldedBatchNorm)
	}
	if stats.DeadNodes < 1 {
		t.Fatalf("dead nodes = %d", stats.DeadNodes)
	}
	if stats.DeadInits < 2 {
		t.Fatalf("dead inits = %d", stats.DeadInits)
	}
	if g.NumOps() >= before {
		t.Fatal("optimize did not shrink the graph")
	}
	if _, err := g.InferShapes(); err != nil {
		t.Fatalf("optimized graph invalid: %v", err)
	}
}

func TestCSEMergesDuplicateBranches(t *testing.T) {
	b := onnx.NewBuilder("p", tensor.Shape{N: 1, C: 4, H: 8, W: 8}, tensor.F32)
	a1 := b.Relu("r1", b.Input())
	a2 := b.Relu("r2", b.Input()) // identical computation
	out := b.Add("sum", a1, a2)
	g, err := b.Finish(out)
	if err != nil {
		t.Fatal(err)
	}
	stats := Optimize(g)
	if stats.MergedCommonSubexp != 1 {
		t.Fatalf("cse merges = %d, want 1", stats.MergedCommonSubexp)
	}
	if _, err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
}

// newProcess builds a full simulated process around a shared store.
func newProcess(t *testing.T, store *codeobj.Store, reg *miopen.Registry) (*sim.Env, *Runner, *metrics.Tracer) {
	t.Helper()
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)
	lib := miopen.NewLibrary(reg, rt)
	bl := blas.NewLibrary(rt)
	tracer := &metrics.Tracer{}
	return env, NewRunner(rt, lib, bl, tracer), tracer
}

func TestBaselineRunsAllModelsEndToEnd(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	for _, spec := range zoo.Models() {
		spec := spec
		t.Run(spec.Abbr, func(t *testing.T) {
			m := compileZoo(t, spec.Abbr, 1, reg, CompileOptions{})
			store := codeobj.NewStore()
			if err := MaterializeModel(store, reg, m); err != nil {
				t.Fatal(err)
			}
			env, runner, _ := newProcess(t, store, reg)
			if err := runner.Blas.Materialize(store, m.GemmProblems()); err != nil {
				t.Fatal(err)
			}
			var runErr error
			env.Spawn("host", func(p *sim.Proc) {
				defer runner.RT.GPU().CloseAll()
				runErr = runner.RunBaseline(p, m)
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
			if runErr != nil {
				t.Fatal(runErr)
			}
			if runner.RT.Stats().ModuleLoads == 0 {
				t.Fatal("cold baseline must load code objects")
			}
			if runner.RT.GPU().BusyTime() <= 0 {
				t.Fatal("GPU never ran")
			}
		})
	}
}

func TestHotRunMuchFasterThanCold(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	m := compileZoo(t, "res", 1, reg, CompileOptions{})
	store := codeobj.NewStore()
	if err := MaterializeModel(store, reg, m); err != nil {
		t.Fatal(err)
	}
	env, runner, _ := newProcess(t, store, reg)
	if err := runner.Blas.Materialize(store, m.GemmProblems()); err != nil {
		t.Fatal(err)
	}
	var cold, hot time.Duration
	env.Spawn("host", func(p *sim.Proc) {
		defer runner.RT.GPU().CloseAll()
		t0 := p.Now()
		if err := runner.RunBaseline(p, m); err != nil {
			t.Error(err)
			return
		}
		cold = p.Now() - t0
		t1 := p.Now()
		if err := runner.RunHot(p, m); err != nil {
			t.Error(err)
			return
		}
		hot = p.Now() - t1
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(cold) / float64(hot)
	if ratio < 5 {
		t.Fatalf("cold/hot = %.1f, expected a large cold-start penalty (cold=%v hot=%v)", ratio, cold, hot)
	}
}

func TestIdealPreloadRemovesLoadTime(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	m := compileZoo(t, "res", 1, reg, CompileOptions{})
	store := codeobj.NewStore()
	if err := MaterializeModel(store, reg, m); err != nil {
		t.Fatal(err)
	}
	env, runner, tracer := newProcess(t, store, reg)
	if err := runner.Blas.Materialize(store, m.GemmProblems()); err != nil {
		t.Fatal(err)
	}
	var idealTime time.Duration
	env.Spawn("host", func(p *sim.Proc) {
		defer runner.RT.GPU().CloseAll()
		if err := runner.PreloadAll(p, m); err != nil {
			t.Error(err)
			return
		}
		loadsBefore := runner.RT.Stats().ModuleLoads
		t0 := p.Now()
		if err := runner.RunBaseline(p, m); err != nil {
			t.Error(err)
			return
		}
		idealTime = p.Now() - t0
		if runner.RT.Stats().ModuleLoads != loadsBefore {
			t.Errorf("ideal run still loaded %d objects", runner.RT.Stats().ModuleLoads-loadsBefore)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if idealTime <= 0 {
		t.Fatal("no time measured")
	}
	_ = tracer
}

func TestTracerCollectsAllCategories(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	m := compileZoo(t, "alex", 1, reg, CompileOptions{})
	store := codeobj.NewStore()
	if err := MaterializeModel(store, reg, m); err != nil {
		t.Fatal(err)
	}
	env, runner, tracer := newProcess(t, store, reg)
	if err := runner.Blas.Materialize(store, m.GemmProblems()); err != nil {
		t.Fatal(err)
	}
	env.Spawn("host", func(p *sim.Proc) {
		defer runner.RT.GPU().CloseAll()
		if err := runner.RunBaseline(p, m); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, cat := range []metrics.Category{metrics.CatParse, metrics.CatLoad, metrics.CatExec, metrics.CatCopy, metrics.CatLaunch, metrics.CatSync} {
		if tracer.Count(cat) == 0 {
			t.Errorf("no %s spans recorded", cat)
		}
	}
	// In a reactive cold start, loading dominates execution (paper Fig 1b).
	if tracer.CategoryTotal(metrics.CatLoad) < 5*tracer.CategoryTotal(metrics.CatExec) {
		t.Errorf("load (%v) should dominate exec (%v) at batch 1",
			tracer.CategoryTotal(metrics.CatLoad), tracer.CategoryTotal(metrics.CatExec))
	}
}

func TestDistinctObjectsStable(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	m := compileZoo(t, "vgg", 1, reg, CompileOptions{})
	a, err := m.DistinctObjects(reg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.DistinctObjects(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("DistinctObjects not deterministic")
	}
	seen := map[string]bool{}
	for _, p := range a {
		if seen[p] {
			t.Fatalf("duplicate path %s", p)
		}
		seen[p] = true
	}
}

func TestModelRegistryRoundTrip(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	m := compileZoo(t, "alex", 1, reg, CompileOptions{})
	mr := NewModelRegistry()
	if mr.Has(m.Name) || len(mr.Names()) != 0 {
		t.Fatal("fresh registry should be empty")
	}
	if err := mr.Save(m); err != nil {
		t.Fatal(err)
	}
	if !mr.Has(m.Name) || mr.Size(m.Name) == 0 {
		t.Fatal("saved model not visible")
	}
	back, err := mr.Load(m.Name)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInstructions() != m.NumInstructions() || back.ParamBytes != m.ParamBytes {
		t.Fatal("registry round trip lost data")
	}
	if _, err := mr.Load("ghost"); err == nil {
		t.Fatal("missing model must fail")
	}
	if !mr.Delete(m.Name) || mr.Delete(m.Name) {
		t.Fatal("delete semantics wrong")
	}
}

func TestRegistryStoresMultipleModels(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	mr := NewModelRegistry()
	for _, abbr := range []string{"alex", "res"} {
		if err := mr.Save(compileZoo(t, abbr, 1, reg, CompileOptions{})); err != nil {
			t.Fatal(err)
		}
	}
	names := mr.Names()
	if len(names) != 2 || names[0] != "AlexNet" || names[1] != "ResNet34" {
		t.Fatalf("Names = %v", names)
	}
}

// TestLoweringStatisticsPinned pins the zoo's lowering statistics: any
// change to the solution ladder, the passes or the zoo architectures that
// shifts these numbers should be a conscious decision (they calibrate the
// reproduction against the paper's Table I).
func TestLoweringStatisticsPinned(t *testing.T) {
	want := map[string]struct{ instrs, primitive, distinct int }{
		"alex":  {19, 18, 16},
		"vgg":   {37, 36, 23},
		"res":   {93, 72, 19},
		"reg":   {192, 162, 52},
		"eff":   {738, 548, 105},
		"rcnn":  {80, 62, 45},
		"ssd":   {84, 63, 51},
		"fcn":   {43, 34, 29},
		"unet":  {53, 45, 28},
		"vit":   {172, 1, 1},
		"swin":  {178, 1, 1},
		"swin2": {178, 1, 1},
	}
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	for abbr, w := range want {
		m := compileZoo(t, abbr, 1, reg, CompileOptions{})
		if m.NumInstructions() != w.instrs || m.PrimitiveCount() != w.primitive ||
			m.DistinctPrimitiveProblems() != w.distinct {
			t.Errorf("%s: instrs/primitive/distinct = %d/%d/%d, pinned %d/%d/%d",
				abbr, m.NumInstructions(), m.PrimitiveCount(), m.DistinctPrimitiveProblems(),
				w.instrs, w.primitive, w.distinct)
		}
	}
}
