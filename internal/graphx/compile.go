package graphx

import (
	"fmt"

	"pask/internal/blas"
	"pask/internal/codeobj"
	"pask/internal/kernels"
	"pask/internal/miopen"
	"pask/internal/onnx"
	"pask/internal/tensor"
)

// BuiltinObjectPath is the engine's own kernel object (elementwise, shuffle
// and normalization kernels), loaded once per process.
const BuiltinObjectPath = "graphx_builtin.pko"

// builtinOps lists the symbols bundled in the builtin object.
var builtinOps = []string{
	"add", "mul", "concat", "softmax", "layernorm", "gelu",
	"resize", "tokens", "patchmerge", "batchnorm",
}

// SelectMode chooses the solution-selection policy during lowering.
type SelectMode int

const (
	// SelectDefault picks the fastest applicable solution per layer — the
	// vendor-library policy that mixes layouts and maximizes specialization
	// (and therefore loads).
	SelectDefault SelectMode = iota
	// SelectUniformLayout restricts selection to solutions that run in one
	// uniform layout, eliminating inter-layer transforms — the NNV12
	// selection policy.
	SelectUniformLayout
)

// CompileOptions configures lowering.
type CompileOptions struct {
	Mode    SelectMode
	Uniform tensor.Layout // uniform layout for SelectUniformLayout (default NCHW)
	// SkipOptimize disables the graph passes (for pass-effect experiments).
	SkipOptimize bool
	// FuseConvActivation merges exclusive Conv+ReLU pairs (design ablation:
	// fewer activation instructions and code objects).
	FuseConvActivation bool
}

// Compile lowers an onnx graph into a compiled model: graph passes, then
// per-layer solution selection against the performance database with layout
// planning (paper Fig 3 "offline preparation"). The input graph is mutated
// by the optimization passes.
func Compile(g *onnx.Graph, db *miopen.PerfDB, opts CompileOptions) (*CompiledModel, error) {
	if !opts.SkipOptimize {
		Optimize(g)
	}
	if opts.FuseConvActivation {
		FuseConvActivation(g)
	}
	shapes, err := g.InferShapes()
	if err != nil {
		return nil, err
	}
	c := &compiler{
		g: g, db: db, opts: opts, shapes: shapes,
		layouts: map[string]tensor.Layout{g.Input: tensor.NCHW},
		m: &CompiledModel{
			Name:       g.Name,
			Batch:      g.InputShape.N,
			DType:      g.DType,
			InputShape: g.InputShape,
			ParamBytes: g.ParamBytes(),
		},
	}
	for _, init := range g.Inits {
		c.layouts[init.Name] = tensor.NCHW
	}
	for i := range g.Nodes {
		if err := c.lower(&g.Nodes[i]); err != nil {
			return nil, err
		}
	}
	return c.m, nil
}

type compiler struct {
	g       *onnx.Graph
	db      *miopen.PerfDB
	opts    CompileOptions
	shapes  map[string]tensor.Shape
	layouts map[string]tensor.Layout
	m       *CompiledModel
}

func (c *compiler) emit(in Instruction) *Instruction {
	in.Index = len(c.m.Instrs)
	c.m.Instrs = append(c.m.Instrs, in)
	return &c.m.Instrs[in.Index]
}

// layoutOf returns the planned layout of a tensor (NCHW for parameters and
// anything untracked).
func (c *compiler) layoutOf(t string) tensor.Layout {
	if l, ok := c.layouts[t]; ok {
		return l
	}
	return tensor.NCHW
}

// transformPath names the JIT-compiled layout-interchange object — one
// distinct code object per (direction, tensor geometry, dtype), mirroring
// how the engine emits a dedicated interchange kernel for every shape it
// plans (the loads NNV12's uniform-layout selection eliminates).
func transformPath(from, to tensor.Layout, s tensor.Shape, dt tensor.DType) string {
	return fmt.Sprintf("xform_%s2%s_n%dc%dh%dw%d_%s.pko", from, to, s.N, s.C, s.H, s.W, dt)
}

// ensureLayout inserts a layout-interchange instruction when tensor t is not
// yet available in the wanted layout.
func (c *compiler) ensureLayout(t string, want tensor.Layout) {
	c.ensureLayoutFor(t, want, false)
}

// ensureLayoutFor is ensureLayout with control over whether the emitted
// transform feeds the immediately following primitive instruction.
func (c *compiler) ensureLayoutFor(t string, want tensor.Layout, forNext bool) {
	cur := c.layoutOf(t)
	if cur == want {
		return
	}
	if c.opts.Mode == SelectUniformLayout {
		// Uniform selection must never need a transform; reaching here is a
		// planner bug, so fail loudly in tests via panic-free accounting.
		panic(fmt.Sprintf("graphx: transform required for %q under uniform layout", t))
	}
	s := c.shapes[t]
	if s.H == 1 && s.W == 1 {
		// A 1x1-spatial tensor has identical NCHW and NHWC layouts: the
		// interchange is a no-op and no kernel is planned.
		c.layouts[t] = want
		return
	}
	c.emit(Instruction{
		Name:         fmt.Sprintf("xform(%s:%s->%s)", t, cur, want),
		Kind:         KindTransform,
		XformPath:    transformPath(cur, want, s, c.m.DType),
		XformSrc:     cur,
		XformDst:     want,
		XformForNext: forNext,
		Work:         kernels.TransformWorkload(s, c.m.DType),
		Eff:          0.35,
		OutShape:     s,
	})
	c.layouts[t] = want
}

// selectSolution picks the solution instance for a primitive problem under
// the compile mode.
func (c *compiler) selectSolution(p *miopen.Problem) (miopen.Ranked, error) {
	ranked := c.db.Find(p)
	if len(ranked) == 0 {
		return miopen.Ranked{}, fmt.Errorf("graphx: no applicable solution for %s", p.Key())
	}
	if c.opts.Mode == SelectUniformLayout {
		for _, r := range ranked {
			pref, agnostic := r.Inst.Sol.PreferredLayout(p)
			if agnostic || pref == c.opts.Uniform {
				return r, nil
			}
		}
		return miopen.Ranked{}, fmt.Errorf("graphx: no %v-layout solution for %s", c.opts.Uniform, p.Key())
	}
	return ranked[0], nil
}

// lowerPrimitive emits a primitive-library instruction, planning layouts.
func (c *compiler) lowerPrimitive(n *onnx.Node, input string, build func(layout tensor.Layout) miopen.Problem) error {
	cur := c.layoutOf(input)
	prob := build(cur)
	r, err := c.selectSolution(&prob)
	if err != nil {
		return fmt.Errorf("node %q: %w", n.Name, err)
	}
	pref, agnostic := r.Inst.Sol.PreferredLayout(&prob)
	runLayout := cur
	if c.opts.Mode == SelectUniformLayout {
		runLayout = c.opts.Uniform
	} else if !agnostic && pref != cur {
		c.ensureLayoutFor(input, pref, true)
		runLayout = pref
	}
	if runLayout != prob.Layout {
		prob = build(runLayout)
	}
	c.emit(Instruction{
		Name:       n.Name,
		Kind:       KindPrimitive,
		Problem:    prob,
		SolutionID: r.Inst.Sol.ID(),
		Binding:    r.Inst.Binding,
		OutShape:   prob.OutShape(),
	})
	c.layouts[n.Output] = runLayout
	return nil
}

// lowerBuiltin emits an engine-kernel instruction with a memory-bound
// workload proportional to the touched bytes.
func (c *compiler) lowerBuiltin(n *onnx.Node, op string, trafficScale float64) {
	// Binary ops need operands in one layout.
	target := c.layoutOf(n.Inputs[0])
	for _, in := range n.Inputs[1:] {
		if _, isParam := c.g.InitShape(in); !isParam {
			c.ensureLayout(in, target)
		}
	}
	out := c.shapes[n.Output]
	w := kernels.TransformWorkload(out, c.m.DType).Scale(trafficScale)
	c.emit(Instruction{
		Name:     n.Name,
		Kind:     KindBuiltin,
		Builtin:  op,
		Work:     w,
		Eff:      0.35,
		OutShape: out,
	})
	c.layouts[n.Output] = target
}

func (c *compiler) lower(n *onnx.Node) error {
	switch n.Op {
	case onnx.OpConv:
		x := n.Inputs[0]
		xs := c.shapes[x]
		ws := c.shapes[n.Inputs[1]]
		groups := n.AttrInt("groups", 1)
		conv := kernels.Conv2DParams{
			StrideH: n.AttrInt("stride_h", n.AttrInt("stride", 1)),
			StrideW: n.AttrInt("stride_w", n.AttrInt("stride", 1)),
			PadH:    n.AttrInt("pad_h", n.AttrInt("pad", 0)),
			PadW:    n.AttrInt("pad_w", n.AttrInt("pad", 0)),
			DilH:    n.AttrInt("dil_h", n.AttrInt("dil", 1)),
			DilW:    n.AttrInt("dil_w", n.AttrInt("dil", 1)),
		}
		return c.lowerPrimitive(n, x, func(l tensor.Layout) miopen.Problem {
			return miopen.NewConvProblem(xs, ws.N, ws.H, ws.W, conv, groups, c.m.DType, l)
		})

	case onnx.OpMaxPool, onnx.OpAvgPool, onnx.OpGlobalPool:
		x := n.Inputs[0]
		xs := c.shapes[x]
		var pool kernels.Pool2DParams
		mode := kernels.MaxPool
		if n.Op == onnx.OpGlobalPool {
			pool = kernels.Pool2DParams{WinH: xs.H, WinW: xs.W, StrideH: xs.H, StrideW: xs.W}
			mode = kernels.AvgPool
		} else {
			win := n.AttrInt("win", 2)
			pool = kernels.Pool2DParams{
				WinH: n.AttrInt("win_h", win), WinW: n.AttrInt("win_w", win),
				StrideH: n.AttrInt("stride_h", n.AttrInt("stride", win)),
				StrideW: n.AttrInt("stride_w", n.AttrInt("stride", win)),
				PadH:    n.AttrInt("pad_h", n.AttrInt("pad", 0)),
				PadW:    n.AttrInt("pad_w", n.AttrInt("pad", 0)),
			}
			if n.Op == onnx.OpAvgPool {
				mode = kernels.AvgPool
			}
		}
		return c.lowerPrimitive(n, x, func(l tensor.Layout) miopen.Problem {
			return miopen.NewPoolProblem(xs, pool, mode, c.m.DType, l)
		})

	case onnx.OpRelu, onnx.OpLeakyRelu, onnx.OpSigmoid, onnx.OpTanh:
		x := n.Inputs[0]
		xs := c.shapes[x]
		kind := map[onnx.Op]kernels.ActKind{
			onnx.OpRelu: kernels.ReLU, onnx.OpLeakyRelu: kernels.LeakyReLU,
			onnx.OpSigmoid: kernels.Sigmoid, onnx.OpTanh: kernels.Tanh,
		}[n.Op]
		alpha := float32(0)
		if kind == kernels.LeakyReLU {
			alpha = 0.01
		}
		return c.lowerPrimitive(n, x, func(l tensor.Layout) miopen.Problem {
			return miopen.NewActProblem(xs, kind, alpha, c.m.DType, l)
		})

	case onnx.OpGemm:
		// Fully-connected layers lower to 1x1 convolutions over a 1x1
		// spatial map, as serving frameworks do — keeping dense classifier
		// heads inside the primitive library (and PASK's reach), unlike the
		// transformer MatMuls that go to BLAS.
		a := c.shapes[n.Inputs[0]]
		w := c.shapes[n.Inputs[1]]
		fcIn := tensor.Shape{N: a.N * a.C * a.H, C: a.W, H: 1, W: 1}
		return c.lowerPrimitive(n, n.Inputs[0], func(l tensor.Layout) miopen.Problem {
			return miopen.NewConvProblem(fcIn, w.W, 1, 1, kernels.Default1x1(), 1, c.m.DType, l)
		})

	case onnx.OpMatMul:
		a := c.shapes[n.Inputs[0]]
		b := c.shapes[n.Inputs[1]]
		transB := n.AttrInt("trans_b", 0) == 1
		nDim := b.W
		if transB {
			nDim = b.H
		}
		c.emit(Instruction{
			Name: n.Name,
			Kind: KindGemm,
			Gemm: blas.Problem{
				M: a.H, N: nDim, K: a.W, Batch: a.N * a.C, TransB: transB, DType: c.m.DType,
			},
			OutShape: c.shapes[n.Output],
		})
		c.layouts[n.Output] = tensor.NCHW
		return nil

	case onnx.OpAdd:
		c.lowerBuiltin(n, "add", 1.5)
	case onnx.OpMul:
		c.lowerBuiltin(n, "mul", 1.5)
	case onnx.OpConcat:
		c.lowerBuiltin(n, "concat", 1)
	case onnx.OpSoftmax:
		c.lowerBuiltin(n, "softmax", 2)
	case onnx.OpLayerNorm:
		c.lowerBuiltin(n, "layernorm", 2)
	case onnx.OpGelu:
		c.lowerBuiltin(n, "gelu", 1)
	case onnx.OpResize:
		c.lowerBuiltin(n, "resize", 1)
	case onnx.OpTokens:
		c.lowerBuiltin(n, "tokens", 1)
		c.layouts[n.Output] = tensor.NCHW
	case onnx.OpPatchMerge:
		c.lowerBuiltin(n, "patchmerge", 1)
		c.layouts[n.Output] = tensor.NCHW
	case onnx.OpBatchNorm:
		// Unfolded BN (non-conv producer) runs as an engine kernel.
		c.lowerBuiltin(n, "batchnorm", 2)
	case onnx.OpFlatten, onnx.OpIdentity:
		// Pure view changes: no kernel, inherit layout.
		c.layouts[n.Output] = c.layoutOf(n.Inputs[0])
	default:
		return fmt.Errorf("graphx: cannot lower op %q (node %q)", n.Op, n.Name)
	}
	return nil
}

// GemmProblems returns the distinct BLAS problems of the model (for offline
// materialization of the BLAS kernel objects).
func (m *CompiledModel) GemmProblems() []blas.Problem {
	seen := make(map[string]bool)
	var out []blas.Problem
	for i := range m.Instrs {
		if m.Instrs[i].Kind != KindGemm {
			continue
		}
		p := m.Instrs[i].Gemm
		if !seen[p.Key()] {
			seen[p.Key()] = true
			out = append(out, p)
		}
	}
	return out
}

// MaterializeModel builds every code object the compiled model's static plan
// references (selected primitive solutions, layout transforms, the engine
// builtin object) into the store, plus the library's resident generic
// kernels. BLAS objects are materialized separately by the BLAS library,
// which owns their naming.
func MaterializeModel(store *codeobj.Store, reg *miopen.Registry, m *CompiledModel) error {
	arch := reg.Ctx().Dev.Arch
	if err := miopen.MaterializeObjects(store, arch, reg.Residents()); err != nil {
		return err
	}
	for i := range m.Instrs {
		in := &m.Instrs[i]
		switch in.Kind {
		case KindPrimitive:
			inst, err := in.Instance(reg)
			if err != nil {
				return err
			}
			if err := miopen.MaterializeObjects(store, arch, []miopen.Instance{inst}); err != nil {
				return err
			}
		case KindTransform:
			if store.Has(in.XformPath) {
				continue
			}
			spec := []codeobj.KernelSpec{{
				Name:     "xform_main",
				Pattern:  "Transform",
				CodeSize: 220 << 10,
				Meta:     map[string]string{"path": in.XformPath},
			}}
			if err := store.PutBuilt(in.XformPath, arch, spec); err != nil {
				return err
			}
		case KindBuiltin:
			if store.Has(BuiltinObjectPath) {
				continue
			}
			var specs []codeobj.KernelSpec
			for _, op := range builtinOps {
				specs = append(specs, codeobj.KernelSpec{
					Name: "builtin_" + op, Pattern: "Builtin", CodeSize: 44 << 10,
				})
			}
			if err := store.PutBuilt(BuiltinObjectPath, arch, specs); err != nil {
				return err
			}
		}
	}
	return nil
}
