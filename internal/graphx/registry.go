package graphx

import (
	"fmt"
	"slices"
)

// ModelRegistry is the serving framework's model repository (paper §II-A):
// lowered, solution-annotated models are stored in their serialized binary
// form after offline preparation and fetched by name when a request arrives,
// avoiding repeated lowering. The registry stores opaque encoded bytes — the
// per-request deserialization cost is what the executors charge as parsing.
type ModelRegistry struct {
	blobs map[string][]byte
}

// NewModelRegistry returns an empty repository.
func NewModelRegistry() *ModelRegistry {
	return &ModelRegistry{blobs: make(map[string][]byte)}
}

// Save serializes and stores a compiled model under its name.
func (r *ModelRegistry) Save(m *CompiledModel) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	r.blobs[m.Name] = data
	return nil
}

// Load fetches and decodes the model stored under name.
func (r *ModelRegistry) Load(name string) (*CompiledModel, error) {
	data, ok := r.blobs[name]
	if !ok {
		return nil, fmt.Errorf("graphx: model %q not in registry", name)
	}
	return DecodeModel(data)
}

// Has reports whether a model is stored under name.
func (r *ModelRegistry) Has(name string) bool {
	_, ok := r.blobs[name]
	return ok
}

// Size returns the stored byte size of a model, or 0 if absent.
func (r *ModelRegistry) Size(name string) int { return len(r.blobs[name]) }

// Names lists stored models in sorted order.
func (r *ModelRegistry) Names() []string {
	out := make([]string, 0, len(r.blobs))
	for n := range r.blobs {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// Delete removes a model; it reports whether one was present.
func (r *ModelRegistry) Delete(name string) bool {
	if _, ok := r.blobs[name]; !ok {
		return false
	}
	delete(r.blobs, name)
	return true
}
