package graphx

import (
	"time"

	"fmt"

	"pask/internal/backend"
	"pask/internal/blas"
	"pask/internal/device"
	"pask/internal/metrics"
	"pask/internal/miopen"
	"pask/internal/sim"
	"pask/internal/trace"
)

// Runner binds one process's runtime, libraries and tracer together and
// provides the building blocks every scheme's executor is made of: parse
// steps, the parameter copy, per-instruction execution and synchronization.
type Runner struct {
	RT     backend.Backend
	Lib    *miopen.Library
	Blas   *blas.Library
	Tracer *metrics.Tracer
	Stream *device.Stream

	// Rec, when non-nil, receives the counter series and instants the span
	// tracer cannot express (queue depths, cache sizes, milestones). All
	// trace.Recorder methods are nil-safe, so executors use it unguarded.
	Rec *trace.Recorder

	// paramsResident tracks models whose weights are already on the device:
	// a warm process serving a second request does not copy them again.
	paramsResident map[string]bool
}

// NewRunner wires the runtime's load events and the GPU's kernel events into
// the tracer and returns a runner using the device's default stream.
func NewRunner(rt backend.Backend, lib *miopen.Library, blasLib *blas.Library, tracer *metrics.Tracer) *Runner {
	r := &Runner{
		RT: rt, Lib: lib, Blas: blasLib, Tracer: tracer,
		Stream:         rt.GPU().DefaultStream(),
		paramsResident: make(map[string]bool),
	}
	rt.SetOnLoad(func(path string, start, end time.Duration, err error) {
		s := metrics.Span{Cat: metrics.CatLoad, Name: path, Thread: "loader", Start: start, End: end}
		if err == nil {
			s.Attrs = append(s.Attrs, metrics.Attr{Key: "bytes", Value: fmt.Sprint(rt.ModuleBytes(path))})
		} else {
			s.Attrs = append(s.Attrs, metrics.Attr{Key: "error", Value: err.Error()})
		}
		tracer.AddSpan(s)
	})
	// The GPU carries a single kernel hook. When several tenant runners share
	// one device (multi-tenant serving), only the first attaches its tracer:
	// kernel spans are a device-level event stream, not a per-tenant one.
	if rt.GPU().OnKernel == nil {
		rt.GPU().OnKernel = func(name string, start, end time.Duration) {
			tracer.Add(metrics.CatExec, name, "gpu", start, end)
		}
	}
	return r
}

// OpenModel charges the cost of opening and mapping the compiled model file.
func (r *Runner) OpenModel(p *sim.Proc) {
	start := p.Now()
	p.Sleep(r.RT.Host().ModelOpen)
	r.Tracer.Add(metrics.CatParse, "model-open", p.Name(), start, p.Now())
}

// ParseOne charges the deserialization of one instruction.
func (r *Runner) ParseOne(p *sim.Proc, in *Instruction) {
	start := p.Now()
	p.Sleep(r.RT.Host().ParseInstr)
	r.Tracer.Add(metrics.CatParse, "parse:"+in.Name, p.Name(), start, p.Now())
}

// CopyParams transfers the model's parameters host-to-device and waits.
// Weights stay resident, so only the first request of a process pays this.
func (r *Runner) CopyParams(p *sim.Proc, m *CompiledModel) {
	if r.paramsResident[m.Name] {
		return
	}
	start := p.Now()
	r.Stream.Copy(p, "weights-h2d", m.ParamBytes).Wait(p)
	r.Tracer.Add(metrics.CatCopy, "weights-h2d", p.Name(), start, p.Now())
	r.paramsResident[m.Name] = true
}

// EvictParams marks a model's weights as no longer resident (suspend/evict
// scenarios).
func (r *Runner) EvictParams(name string) { delete(r.paramsResident, name) }

// ExecPrimitive runs a primitive instruction with the given instance (the
// statically selected one, or a substitute chosen by PASK). Kernels are
// launched asynchronously; absent code objects load lazily here.
func (r *Runner) ExecPrimitive(p *sim.Proc, in *Instruction, inst miopen.Instance) (*sim.Signal, error) {
	return r.ExecPrimitiveAs(p, in.Name, &in.Problem, inst)
}

// ExecPrimitiveAs runs a primitive problem (possibly rewritten by a PASK
// policy, e.g. the precision-preference extension) with the given instance.
func (r *Runner) ExecPrimitiveAs(p *sim.Proc, name string, prob *miopen.Problem, inst miopen.Instance) (*sim.Signal, error) {
	start := p.Now()
	sig, err := r.Lib.RunSolution(p, r.Stream, inst, prob)
	if err != nil {
		return nil, err
	}
	r.Tracer.AddSpan(metrics.Span{
		Cat: metrics.CatLaunch, Name: "issue:" + name, Thread: p.Name(),
		Start: start, End: p.Now(),
		Attrs: []metrics.Attr{{Key: "solution", Value: inst.Key()}},
	})
	return sig, nil
}

// ExecInstr runs one instruction with its static plan.
func (r *Runner) ExecInstr(p *sim.Proc, in *Instruction) (*sim.Signal, error) {
	switch in.Kind {
	case KindPrimitive:
		inst, err := in.Instance(r.Lib.Reg)
		if err != nil {
			return nil, err
		}
		return r.ExecPrimitive(p, in, inst)

	case KindGemm:
		start := p.Now()
		sig, err := r.Blas.Run(p, r.Stream, &in.Gemm)
		if err != nil {
			return nil, err
		}
		r.Tracer.Add(metrics.CatLaunch, "issue:"+in.Name, p.Name(), start, p.Now())
		return sig, nil

	case KindBuiltin:
		start := p.Now()
		fn, err := r.RT.GetFunction(p, BuiltinObjectPath, "builtin_"+in.Builtin)
		if err != nil {
			return nil, err
		}
		sig := r.Stream.LaunchWorkload(p, fn.Name(), in.Work, in.Eff)
		r.Tracer.Add(metrics.CatLaunch, "issue:"+in.Name, p.Name(), start, p.Now())
		return sig, nil

	case KindTransform:
		start := p.Now()
		fn, err := r.RT.GetFunction(p, in.XformPath, "xform_main")
		if err != nil {
			return nil, err
		}
		sig := r.Stream.LaunchWorkload(p, fn.Name(), in.Work, in.Eff)
		r.Tracer.Add(metrics.CatLaunch, "issue:"+in.Name, p.Name(), start, p.Now())
		return sig, nil
	}
	return nil, fmt.Errorf("graphx: unknown instruction kind %v", in.Kind)
}

// Sync drains the stream and charges the host synchronization cost.
func (r *Runner) Sync(p *sim.Proc) {
	start := p.Now()
	r.Stream.Synchronize(p)
	p.Sleep(r.RT.Host().SyncOverhead)
	r.Tracer.Add(metrics.CatSync, "sync", p.Name(), start, p.Now())
}

// RunBaseline executes the reactive default workflow (paper "Baseline"):
// parse every instruction, copy parameters, then launch layer by layer with
// lazy on-demand code loading.
func (r *Runner) RunBaseline(p *sim.Proc, m *CompiledModel) error {
	p.Sleep(r.RT.Host().IterOverhead)
	r.OpenModel(p)
	for i := range m.Instrs {
		r.ParseOne(p, &m.Instrs[i])
	}
	r.CopyParams(p, m)
	for i := range m.Instrs {
		if _, err := r.ExecInstr(p, &m.Instrs[i]); err != nil {
			return err
		}
	}
	r.Sync(p)
	return nil
}

// RunHot executes a steady-state iteration: everything already parsed and
// loaded, only launches and GPU execution remain (the denominator of the
// paper's Fig 1a slowdowns).
func (r *Runner) RunHot(p *sim.Proc, m *CompiledModel) error {
	p.Sleep(r.RT.Host().IterOverhead)
	for i := range m.Instrs {
		if _, err := r.ExecInstr(p, &m.Instrs[i]); err != nil {
			return err
		}
	}
	r.Sync(p)
	return nil
}

// PreloadAll loads every code object the model's static plan references
// (realizing the paper's Ideal scheme before the timed window).
func (r *Runner) PreloadAll(p *sim.Proc, m *CompiledModel) error {
	paths, err := m.DistinctObjects(r.Lib.Reg)
	if err != nil {
		return err
	}
	if err := r.RT.Preload(p, paths); err != nil {
		return err
	}
	// BLAS objects load through their own library paths.
	gemms := m.GemmProblems()
	if len(gemms) > 0 {
		if err := r.Blas.EnsureCore(p); err != nil {
			return err
		}
	}
	for _, gp := range gemms {
		gp := gp
		ranked := r.Blas.Find(&gp)
		if len(ranked) > 0 {
			if _, err := r.RT.ModuleLoad(p, ranked[0].Inst.Path()); err != nil {
				return err
			}
		}
	}
	return nil
}
