package graphx

import (
	"fmt"
	"slices"
	"strings"

	"pask/internal/onnx"
)

// PassStats reports what the optimizer did to a graph.
type PassStats struct {
	FoldedBatchNorm    int
	RemovedIdentity    int
	MergedCommonSubexp int
	DeadNodes          int
	DeadInits          int
	FusedActivations   int
}

func (s PassStats) String() string {
	return fmt.Sprintf("bn-fold=%d identity=%d cse=%d dce-nodes=%d dce-inits=%d fused=%d",
		s.FoldedBatchNorm, s.RemovedIdentity, s.MergedCommonSubexp, s.DeadNodes, s.DeadInits, s.FusedActivations)
}

// Optimize runs the hardware-independent graph passes (paper Fig 3:
// "multiple optimizations on the requested model") to fixpoint, mutating g.
func Optimize(g *onnx.Graph) PassStats {
	var total PassStats
	for i := 0; i < 8; i++ {
		var round PassStats
		round.FoldedBatchNorm = foldBatchNorm(g)
		round.RemovedIdentity = eliminateIdentity(g)
		round.MergedCommonSubexp = eliminateCommonSubexpr(g)
		round.DeadNodes, round.DeadInits = eliminateDead(g)
		total.FoldedBatchNorm += round.FoldedBatchNorm
		total.RemovedIdentity += round.RemovedIdentity
		total.MergedCommonSubexp += round.MergedCommonSubexp
		total.DeadNodes += round.DeadNodes
		total.DeadInits += round.DeadInits
		if round == (PassStats{}) {
			break
		}
	}
	return total
}

// FuseConvActivation merges a ReLU that exclusively consumes a Conv output
// into the convolution (the epilogue fusion engines apply): the activation
// node disappears, so no activation kernel — and no activation code object —
// is needed for that pair. Opt-in: it changes the primitive-layer population
// and is evaluated as a design ablation rather than enabled by default.
func FuseConvActivation(g *onnx.Graph) int {
	prod := producer(g)
	cons := consumers(g)
	fused := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Op != onnx.OpRelu {
			continue
		}
		pi, ok := prod[n.Inputs[0]]
		if !ok || g.Nodes[pi].Op != onnx.OpConv {
			continue
		}
		if len(cons[n.Inputs[0]]) != 1 {
			continue
		}
		if g.Nodes[pi].AttrInt("fused_relu", 0) == 1 {
			continue
		}
		if g.Nodes[pi].Ints == nil {
			g.Nodes[pi].Ints = map[string]int{}
		}
		g.Nodes[pi].Ints["fused_relu"] = 1
		n.Op = onnx.OpIdentity
		n.Ints = nil
		fused++
	}
	if fused > 0 {
		eliminateIdentity(g)
	}
	return fused
}

// consumers maps each tensor to the indices of nodes reading it.
func consumers(g *onnx.Graph) map[string][]int {
	m := make(map[string][]int)
	for i := range g.Nodes {
		for _, in := range g.Nodes[i].Inputs {
			m[in] = append(m[in], i)
		}
	}
	return m
}

// producer maps each tensor to the index of the node writing it.
func producer(g *onnx.Graph) map[string]int {
	m := make(map[string]int)
	for i := range g.Nodes {
		m[g.Nodes[i].Output] = i
	}
	return m
}

// foldBatchNorm converts BatchNorm nodes that exclusively follow a Conv into
// Identity: inference-time BN is an affine transform absorbable into the
// convolution's weights and bias.
func foldBatchNorm(g *onnx.Graph) int {
	prod := producer(g)
	cons := consumers(g)
	folded := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Op != onnx.OpBatchNorm {
			continue
		}
		pi, ok := prod[n.Inputs[0]]
		if !ok || g.Nodes[pi].Op != onnx.OpConv {
			continue
		}
		// The conv output must feed only this BN, or folding would change
		// the other consumers' inputs.
		if len(cons[n.Inputs[0]]) != 1 {
			continue
		}
		n.Op = onnx.OpIdentity
		n.Ints = nil
		folded++
	}
	return folded
}

// eliminateIdentity removes Identity nodes by rewiring their consumers.
func eliminateIdentity(g *onnx.Graph) int {
	removed := 0
	rewrite := make(map[string]string)
	var kept []onnx.Node
	for _, n := range g.Nodes {
		if n.Op == onnx.OpIdentity {
			src := n.Inputs[0]
			for rewrite[src] != "" {
				src = rewrite[src]
			}
			rewrite[n.Output] = src
			removed++
			continue
		}
		kept = append(kept, n)
	}
	if removed == 0 {
		return 0
	}
	resolve := func(t string) string {
		for rewrite[t] != "" {
			t = rewrite[t]
		}
		return t
	}
	for i := range kept {
		for j, in := range kept[i].Inputs {
			kept[i].Inputs[j] = resolve(in)
		}
	}
	g.Output = resolve(g.Output)
	g.Nodes = kept
	return removed
}

// cseKey canonicalizes a node's semantics for common-subexpression matching.
func cseKey(n *onnx.Node) string {
	var b strings.Builder
	b.WriteString(string(n.Op))
	b.WriteByte('|')
	b.WriteString(strings.Join(n.Inputs, ","))
	b.WriteByte('|')
	keys := make([]string, 0, len(n.Ints))
	for k := range n.Ints {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, n.Ints[k])
	}
	return b.String()
}

// eliminateCommonSubexpr merges nodes computing the same value from the same
// inputs.
func eliminateCommonSubexpr(g *onnx.Graph) int {
	seen := make(map[string]string) // cse key -> surviving output
	rewrite := make(map[string]string)
	merged := 0
	var kept []onnx.Node
	for _, n := range g.Nodes {
		for j, in := range n.Inputs {
			if r, ok := rewrite[in]; ok {
				n.Inputs[j] = r
			}
		}
		key := cseKey(&n)
		if prev, ok := seen[key]; ok {
			rewrite[n.Output] = prev
			merged++
			continue
		}
		seen[key] = n.Output
		kept = append(kept, n)
	}
	if merged == 0 {
		return 0
	}
	if r, ok := rewrite[g.Output]; ok {
		g.Output = r
	}
	g.Nodes = kept
	return merged
}

// eliminateDead drops nodes and initializers that do not reach the output.
func eliminateDead(g *onnx.Graph) (nodes, inits int) {
	prod := producer(g)
	live := map[string]bool{g.Output: true}
	queue := []string{g.Output}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		pi, ok := prod[t]
		if !ok {
			continue
		}
		for _, in := range g.Nodes[pi].Inputs {
			if !live[in] {
				live[in] = true
				queue = append(queue, in)
			}
		}
	}
	var keptNodes []onnx.Node
	for _, n := range g.Nodes {
		if live[n.Output] {
			keptNodes = append(keptNodes, n)
		} else {
			nodes++
		}
	}
	var keptInits []onnx.Init
	for _, in := range g.Inits {
		if live[in.Name] {
			keptInits = append(keptInits, in)
		} else {
			inits++
		}
	}
	g.Nodes = keptNodes
	g.Inits = keptInits
	return nodes, inits
}
