// Package graphx reimplements the serving-framework layer of the stack (the
// MIGraphX analogue): graph optimization passes, lowering of onnx models to
// an instruction stream with per-layer solution selection against the
// primitive library's performance database, a binary compiled-model format
// (the ".mgx file" of paper Fig 3), and the reactive baseline executor whose
// lazy loading causes the cold-start problem.
//
// Paper anchor: the Fig 3 serving framework (MIGraphX analogue) and the §II-A reactive baseline executor.
package graphx

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"pask/internal/blas"
	"pask/internal/kernels"
	"pask/internal/miopen"
	"pask/internal/tensor"
)

// Kind classifies a lowered instruction by the backend that executes it.
type Kind uint8

const (
	// KindPrimitive runs on the primitive library (conv/pool/activation) —
	// the instructions PASK manages.
	KindPrimitive Kind = iota
	// KindGemm runs on the BLAS library (outside PASK's default scope).
	KindGemm
	// KindBuiltin runs one of the engine's own elementwise/shuffle kernels.
	KindBuiltin
	// KindTransform is a layout-interchange kernel inserted between layers
	// whose selected solutions want different layouts (what NNV12 removes).
	KindTransform
)

var kindNames = [...]string{"primitive", "gemm", "builtin", "transform"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Instruction is one lowered operation of a compiled model.
type Instruction struct {
	Index int
	Name  string
	Kind  Kind

	// KindPrimitive
	Problem    miopen.Problem
	SolutionID string // statically selected solution family (s*)
	Binding    string // its template binding

	// KindGemm
	Gemm blas.Problem

	// KindBuiltin
	Builtin string

	// KindTransform
	XformPath string
	// XformSrc/XformDst are the layouts the transform converts between.
	XformSrc, XformDst tensor.Layout
	// XformForNext marks a transform that exists only to feed the next
	// primitive instruction's preferred layout; PASK drops it when it reuses
	// a layout-agnostic substitute for that primitive.
	XformForNext bool

	// Execution metadata for builtin/transform kernels.
	Work kernels.Workload
	Eff  float64

	OutShape tensor.Shape
}

// Instance resolves the statically selected solution instance against a
// registry. Only valid for KindPrimitive.
func (in *Instruction) Instance(reg *miopen.Registry) (miopen.Instance, error) {
	if in.Kind != KindPrimitive {
		return miopen.Instance{}, fmt.Errorf("graphx: instruction %d (%s) has no solution", in.Index, in.Kind)
	}
	sol, ok := reg.ByID(in.SolutionID)
	if !ok {
		return miopen.Instance{}, fmt.Errorf("graphx: unknown solution %q in instruction %d", in.SolutionID, in.Index)
	}
	return miopen.Instance{Sol: sol, Binding: in.Binding}, nil
}

// CompiledModel is the lowered, solution-annotated model the serving
// framework stores in its registry and deserializes on every cold start.
type CompiledModel struct {
	Name       string
	Batch      int
	DType      tensor.DType
	InputShape tensor.Shape
	ParamBytes int64
	Instrs     []Instruction
}

// NumInstructions returns the instruction count (what the parser walks).
func (m *CompiledModel) NumInstructions() int { return len(m.Instrs) }

// PrimitiveCount returns the number of primitive-library instructions.
func (m *CompiledModel) PrimitiveCount() int {
	n := 0
	for i := range m.Instrs {
		if m.Instrs[i].Kind == KindPrimitive {
			n++
		}
	}
	return n
}

// DistinctPrimitiveProblems returns the number of unique primitive problems
// — the "# Primitive Layers" axis of the paper's Table I.
func (m *CompiledModel) DistinctPrimitiveProblems() int {
	seen := make(map[string]bool)
	for i := range m.Instrs {
		if m.Instrs[i].Kind == KindPrimitive {
			seen[m.Instrs[i].Problem.Key()] = true
		}
	}
	return len(seen)
}

// DistinctObjects returns the set of code-object paths the statically
// selected plan will load on a cold start.
func (m *CompiledModel) DistinctObjects(reg *miopen.Registry) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	addPath := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for i := range m.Instrs {
		in := &m.Instrs[i]
		switch in.Kind {
		case KindPrimitive:
			inst, err := in.Instance(reg)
			if err != nil {
				return nil, err
			}
			addPath(inst.Path())
		case KindTransform:
			addPath(in.XformPath)
		case KindBuiltin:
			addPath(BuiltinObjectPath)
		}
	}
	return out, nil
}

// Binary compiled-model container: magic + gob payload + CRC trailer.

const modelMagic = "PMX1"

// Encode serializes the compiled model.
func (m *CompiledModel) Encode() ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		return nil, fmt.Errorf("graphx: encode %s: %w", m.Name, err)
	}
	var buf bytes.Buffer
	buf.WriteString(modelMagic)
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(payload.Len()))
	buf.Write(lenb[:])
	buf.Write(payload.Bytes())
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crcb[:])
	return buf.Bytes(), nil
}

// DecodeModel parses a serialized compiled model, validating framing and
// checksum.
func DecodeModel(data []byte) (*CompiledModel, error) {
	if len(data) < len(modelMagic)+8 {
		return nil, fmt.Errorf("graphx: compiled model truncated (%d bytes)", len(data))
	}
	if string(data[:len(modelMagic)]) != modelMagic {
		return nil, fmt.Errorf("graphx: bad compiled-model magic")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("graphx: compiled-model checksum mismatch")
	}
	n := binary.LittleEndian.Uint32(data[len(modelMagic) : len(modelMagic)+4])
	payload := data[len(modelMagic)+4 : len(data)-4]
	if int(n) != len(payload) {
		return nil, fmt.Errorf("graphx: compiled-model length %d != payload %d", n, len(payload))
	}
	var m CompiledModel
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("graphx: decode: %w", err)
	}
	return &m, nil
}
