package graphx

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"pask/internal/kernels"
	"pask/internal/miopen"
	"pask/internal/onnx"
	"pask/internal/tensor"
)

// SolutionPicker chooses which library solution implements a primitive
// problem during functional execution. The default picker mirrors the
// compiler (fastest applicable); a reuse-style picker substitutes generic
// solutions — functional equivalence between the two is the correctness
// premise of PASK's kernel reuse.
type SolutionPicker func(p *miopen.Problem) (miopen.Instance, error)

// BestPicker picks the statically optimal solution, like the compiler.
func BestPicker(reg *miopen.Registry) SolutionPicker {
	return func(p *miopen.Problem) (miopen.Instance, error) {
		r, err := reg.FindBest(p)
		if err != nil {
			return miopen.Instance{}, err
		}
		return r.Inst, nil
	}
}

// GenericPicker picks the most generic applicable solution — the kind of
// substitute PASK's cache returns when the specialist is absent.
func GenericPicker(reg *miopen.Registry) SolutionPicker {
	return func(p *miopen.Problem) (miopen.Instance, error) {
		ranked := reg.Find(p)
		if len(ranked) == 0 {
			return miopen.Instance{}, fmt.Errorf("graphx: no applicable solution for %s", p.Key())
		}
		best := ranked[0]
		for _, r := range ranked[1:] {
			if r.Inst.Sol.Specificity() < best.Inst.Sol.Specificity() {
				best = r
			}
		}
		return best.Inst, nil
	}
}

// FunctionalRun executes an onnx graph numerically on host tensors: weights
// are generated deterministically from seed, primitives run through the
// picked library solutions' reference implementations, and the graph output
// tensor is returned. Intended for small inputs (tests, examples).
func FunctionalRun(g *onnx.Graph, reg *miopen.Registry, pick SolutionPicker, input *tensor.Tensor, seed int64) (*tensor.Tensor, error) {
	shapes, err := g.InferShapes()
	if err != nil {
		return nil, err
	}
	if input.Shape != g.InputShape {
		return nil, fmt.Errorf("graphx: input shape %v, model wants %v", input.Shape, g.InputShape)
	}
	vals := map[string]*tensor.Tensor{g.Input: input}
	for _, init := range g.Inits {
		vals[init.Name] = paramTensor(init.Name, init.Shape, seed)
	}
	f := &funcExec{g: g, reg: reg, pick: pick, shapes: shapes, vals: vals}
	for i := range g.Nodes {
		if err := f.eval(&g.Nodes[i]); err != nil {
			return nil, fmt.Errorf("graphx: functional node %q: %w", g.Nodes[i].Name, err)
		}
	}
	out, ok := vals[g.Output]
	if !ok {
		return nil, fmt.Errorf("graphx: output %q never produced", g.Output)
	}
	return out, nil
}

// paramTensor generates a deterministic small-valued parameter tensor.
func paramTensor(name string, s tensor.Shape, seed int64) *tensor.Tensor {
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	t := tensor.New(s, tensor.NCHW)
	scale := float32(1.0 / math.Sqrt(float64(s.C*s.H*s.W)+1))
	t.Fill(func(int) float32 { return (rng.Float32()*2 - 1) * scale })
	return t
}

type funcExec struct {
	g      *onnx.Graph
	reg    *miopen.Registry
	pick   SolutionPicker
	shapes map[string]tensor.Shape
	vals   map[string]*tensor.Tensor
}

func (f *funcExec) in(n *onnx.Node, i int) (*tensor.Tensor, error) {
	t, ok := f.vals[n.Inputs[i]]
	if !ok {
		return nil, fmt.Errorf("input %q not computed", n.Inputs[i])
	}
	return t, nil
}

func (f *funcExec) runPrimitive(n *onnx.Node, prob miopen.Problem, x, w, bias *tensor.Tensor) error {
	inst, err := f.pick(&prob)
	if err != nil {
		return err
	}
	out := tensor.New(prob.OutShape(), tensor.NCHW)
	if err := inst.Sol.RunFunctional(&prob, x, w, bias, out); err != nil {
		return err
	}
	f.vals[n.Output] = out
	return nil
}

func (f *funcExec) eval(n *onnx.Node) error {
	switch n.Op {
	case onnx.OpConv:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		w, err := f.in(n, 1)
		if err != nil {
			return err
		}
		var bias *tensor.Tensor
		if len(n.Inputs) > 2 {
			bias = f.vals[n.Inputs[2]]
		}
		conv := kernels.Conv2DParams{
			StrideH: n.AttrInt("stride_h", n.AttrInt("stride", 1)),
			StrideW: n.AttrInt("stride_w", n.AttrInt("stride", 1)),
			PadH:    n.AttrInt("pad_h", n.AttrInt("pad", 0)),
			PadW:    n.AttrInt("pad_w", n.AttrInt("pad", 0)),
			DilH:    n.AttrInt("dil_h", n.AttrInt("dil", 1)),
			DilW:    n.AttrInt("dil_w", n.AttrInt("dil", 1)),
		}
		prob := miopen.NewConvProblem(x.Shape, w.Shape.N, w.Shape.H, w.Shape.W, conv,
			n.AttrInt("groups", 1), f.g.DType, tensor.NCHW)
		if err := f.runPrimitive(n, prob, x, w, bias); err != nil {
			return err
		}
		if n.AttrInt("fused_relu", 0) == 1 {
			out := f.vals[n.Output]
			for i, v := range out.Data {
				if v < 0 {
					out.Data[i] = 0
				}
			}
		}
		return nil

	case onnx.OpMaxPool, onnx.OpAvgPool, onnx.OpGlobalPool:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		var pool kernels.Pool2DParams
		mode := kernels.MaxPool
		if n.Op == onnx.OpGlobalPool {
			pool = kernels.Pool2DParams{WinH: x.Shape.H, WinW: x.Shape.W, StrideH: x.Shape.H, StrideW: x.Shape.W}
			mode = kernels.AvgPool
		} else {
			win := n.AttrInt("win", 2)
			pool = kernels.Pool2DParams{
				WinH: n.AttrInt("win_h", win), WinW: n.AttrInt("win_w", win),
				StrideH: n.AttrInt("stride_h", n.AttrInt("stride", win)),
				StrideW: n.AttrInt("stride_w", n.AttrInt("stride", win)),
				PadH:    n.AttrInt("pad_h", n.AttrInt("pad", 0)),
				PadW:    n.AttrInt("pad_w", n.AttrInt("pad", 0)),
			}
			if n.Op == onnx.OpAvgPool {
				mode = kernels.AvgPool
			}
		}
		prob := miopen.NewPoolProblem(x.Shape, pool, mode, f.g.DType, tensor.NCHW)
		return f.runPrimitive(n, prob, x, nil, nil)

	case onnx.OpRelu, onnx.OpLeakyRelu, onnx.OpSigmoid, onnx.OpTanh:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		kind := map[onnx.Op]kernels.ActKind{
			onnx.OpRelu: kernels.ReLU, onnx.OpLeakyRelu: kernels.LeakyReLU,
			onnx.OpSigmoid: kernels.Sigmoid, onnx.OpTanh: kernels.Tanh,
		}[n.Op]
		alpha := float32(0)
		if kind == kernels.LeakyReLU {
			alpha = 0.01
		}
		prob := miopen.NewActProblem(x.Shape, kind, alpha, f.g.DType, tensor.NCHW)
		return f.runPrimitive(n, prob, x, nil, nil)

	case onnx.OpGelu:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		out := tensor.New(x.Shape, tensor.NCHW)
		if err := kernels.Activation(x, out, kernels.GELU, 0); err != nil {
			return err
		}
		f.vals[n.Output] = out
		return nil

	case onnx.OpBatchNorm, onnx.OpIdentity:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		// Inference-time BN with unit scale and zero shift (the optimizer
		// folds real statistics into the conv).
		f.vals[n.Output] = x
		return nil

	case onnx.OpFlatten:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		out := tensor.New(f.shapes[n.Output], tensor.NCHW)
		copy(out.Data, x.Data) // NCHW flatten is a pure view change
		f.vals[n.Output] = out
		return nil

	case onnx.OpTokens:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		s := x.Shape
		out := tensor.New(f.shapes[n.Output], tensor.NCHW)
		for b := 0; b < s.N; b++ {
			for c := 0; c < s.C; c++ {
				for h := 0; h < s.H; h++ {
					for w := 0; w < s.W; w++ {
						out.Set(b, 0, h*s.W+w, c, x.At(b, c, h, w))
					}
				}
			}
		}
		f.vals[n.Output] = out
		return nil

	case onnx.OpPatchMerge:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		s := x.Shape
		out := tensor.New(f.shapes[n.Output], tensor.NCHW)
		for b := 0; b < s.N; b++ {
			for tok := 0; tok < s.H/4; tok++ {
				for g := 0; g < 4; g++ {
					for d := 0; d < s.W; d++ {
						out.Set(b, 0, tok, g*s.W+d, x.At(b, 0, tok*4+g, d))
					}
				}
			}
		}
		f.vals[n.Output] = out
		return nil

	case onnx.OpGemm, onnx.OpMatMul:
		a, err := f.in(n, 0)
		if err != nil {
			return err
		}
		b, err := f.in(n, 1)
		if err != nil {
			return err
		}
		transB := n.AttrInt("trans_b", 0) == 1
		as, bs := a.Shape, b.Shape
		m, k := as.H, as.W
		nDim := bs.W
		if transB {
			nDim = bs.H
		}
		out := tensor.New(f.shapes[n.Output], tensor.NCHW)
		batch := as.N * as.C
		aPer, bPer, cPer := m*k, bs.H*bs.W, m*nDim
		for bi := 0; bi < batch; bi++ {
			aSlice := a.Data[bi*aPer : (bi+1)*aPer]
			bOff := 0
			if bs.N*bs.C == batch {
				bOff = bi * bPer
			}
			bSlice := b.Data[bOff : bOff+bPer]
			cSlice := out.Data[bi*cPer : (bi+1)*cPer]
			if err := kernels.Gemm(false, transB, m, nDim, k, 1, aSlice, bSlice, 0, cSlice); err != nil {
				return err
			}
		}
		f.vals[n.Output] = out
		return nil

	case onnx.OpSoftmax:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		out := x.Clone()
		rows := x.Shape.N * x.Shape.C * x.Shape.H
		if err := kernels.Softmax(out.Data, rows, x.Shape.W); err != nil {
			return err
		}
		f.vals[n.Output] = out
		return nil

	case onnx.OpLayerNorm:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		out := x.Clone()
		rows := x.Shape.N * x.Shape.C * x.Shape.H
		w := x.Shape.W
		for r := 0; r < rows; r++ {
			row := out.Data[r*w : (r+1)*w]
			var mean float64
			for _, v := range row {
				mean += float64(v)
			}
			mean /= float64(w)
			var variance float64
			for _, v := range row {
				d := float64(v) - mean
				variance += d * d
			}
			variance /= float64(w)
			inv := 1 / math.Sqrt(variance+1e-5)
			for i, v := range row {
				row[i] = float32((float64(v) - mean) * inv)
			}
		}
		f.vals[n.Output] = out
		return nil

	case onnx.OpAdd, onnx.OpMul:
		a, err := f.in(n, 0)
		if err != nil {
			return err
		}
		b, err := f.in(n, 1)
		if err != nil {
			return err
		}
		out := tensor.New(a.Shape, tensor.NCHW)
		s := a.Shape
		for n4 := 0; n4 < s.N; n4++ {
			for c := 0; c < s.C; c++ {
				for h := 0; h < s.H; h++ {
					for w := 0; w < s.W; w++ {
						av := a.At(n4, c, h, w)
						var bv float32
						if b.Shape == a.Shape {
							bv = b.At(n4, c, h, w)
						} else {
							// Broadcast (N|1, C, 1, 1) gates and biases.
							bn := n4
							if b.Shape.N == 1 {
								bn = 0
							}
							bv = b.At(bn, c, 0, 0)
						}
						if n.Op == onnx.OpAdd {
							out.Set(n4, c, h, w, av+bv)
						} else {
							out.Set(n4, c, h, w, av*bv)
						}
					}
				}
			}
		}
		f.vals[n.Output] = out
		return nil

	case onnx.OpConcat:
		outShape := f.shapes[n.Output]
		out := tensor.New(outShape, tensor.NCHW)
		first, err := f.in(n, 0)
		if err != nil {
			return err
		}
		if first.Shape.C == 1 && first.Shape.H == 1 {
			// Flat concat along W.
			off := 0
			for i := range n.Inputs {
				t, err := f.in(n, i)
				if err != nil {
					return err
				}
				copy(out.Data[off:], t.Data)
				off += len(t.Data)
			}
		} else {
			cOff := 0
			for i := range n.Inputs {
				t, err := f.in(n, i)
				if err != nil {
					return err
				}
				s := t.Shape
				for n4 := 0; n4 < s.N; n4++ {
					for c := 0; c < s.C; c++ {
						for h := 0; h < s.H; h++ {
							for w := 0; w < s.W; w++ {
								out.Set(n4, cOff+c, h, w, t.At(n4, c, h, w))
							}
						}
					}
				}
				cOff += s.C
			}
		}
		f.vals[n.Output] = out
		return nil

	case onnx.OpResize:
		x, err := f.in(n, 0)
		if err != nil {
			return err
		}
		scale := n.AttrInt("scale", 2)
		out := tensor.New(f.shapes[n.Output], tensor.NCHW)
		s := out.Shape
		for n4 := 0; n4 < s.N; n4++ {
			for c := 0; c < s.C; c++ {
				for h := 0; h < s.H; h++ {
					for w := 0; w < s.W; w++ {
						out.Set(n4, c, h, w, x.At(n4, c, h/scale, w/scale))
					}
				}
			}
		}
		f.vals[n.Output] = out
		return nil
	}
	return fmt.Errorf("unsupported op %q", n.Op)
}
