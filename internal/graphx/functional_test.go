package graphx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pask/internal/device"
	"pask/internal/miopen"
	"pask/internal/onnx"
	"pask/internal/tensor"
)

// tinyCNN builds a small but structurally rich CNN: conv ladder, pooling,
// SE-style gating, residual add, FC head.
func tinyCNN(t *testing.T) *onnx.Graph {
	t.Helper()
	b := onnx.NewBuilder("tiny", tensor.Shape{N: 1, C: 3, H: 24, W: 24}, tensor.F32)
	x := b.Conv("c1", b.Input(), 16, 3, 1, 1, 1)
	x = b.Relu("r1", x)
	x = b.MaxPool("p1", x, 2, 2, 0)
	y := b.Conv("c2", x, 16, 3, 1, 1, 1)
	y = b.Relu("r2", y)
	g := b.GlobalAvgPool("se_gap", y)
	g = b.Conv("se_fc", g, 16, 1, 1, 0, 1)
	g = b.Sigmoid("se_sig", g)
	y = b.Mul("se_mul", y, g)
	x = b.Add("res", x, y)
	x = b.Conv("c3", x, 32, 1, 1, 0, 1)
	x = b.GlobalAvgPool("gap", x)
	x = b.Flatten("flat", x)
	x = b.FC("fc", x, 10)
	graph, err := b.Finish(x)
	if err != nil {
		t.Fatal(err)
	}
	return graph
}

// tinyTransformer builds a one-block transformer over small token counts.
func tinyTransformer(t *testing.T) *onnx.Graph {
	t.Helper()
	b := onnx.NewBuilder("tinyvit", tensor.Shape{N: 1, C: 3, H: 16, W: 16}, tensor.F32)
	x := b.Conv("patch", b.Input(), 8, 4, 4, 0, 1)
	x = b.Tokens("tok", x) // (1,1,16,8)
	ln := b.LayerNorm("ln1", x)
	q := b.MatMulParam("q", ln, 8)
	k := b.MatMulParam("k", ln, 8)
	v := b.MatMulParam("v", ln, 8)
	sc := b.MatMul("qk", q, k, true)
	pr := b.Softmax("sm", sc)
	ctx := b.MatMul("ctx", pr, v, false)
	x = b.Add("attn_add", x, ctx)
	h := b.MatMulParam("mlp1", x, 16)
	h = b.Gelu("gelu", h)
	h = b.MatMulParam("mlp2", h, 8)
	x = b.Add("mlp_add", x, h)
	x = b.PatchMerge("merge", x)
	x = b.MatMulParam("head", x, 4)
	graph, err := b.Finish(x)
	if err != nil {
		t.Fatal(err)
	}
	return graph
}

func randomInput(s tensor.Shape, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(s, tensor.NCHW)
	in.Fill(func(int) float32 { return rng.Float32()*2 - 1 })
	return in
}

func TestFunctionalRunProducesFiniteOutput(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	for _, build := range []func(*testing.T) *onnx.Graph{tinyCNN, tinyTransformer} {
		g := build(t)
		out, err := FunctionalRun(g, reg, BestPicker(reg), randomInput(g.InputShape, 1), 42)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s output[%d] = %v", g.Name, i, v)
			}
		}
	}
}

// TestReusePreservesResults is the end-to-end correctness theorem of PASK:
// executing every layer with the most generic applicable solution (what the
// cache substitutes) produces the same numbers as the statically optimal
// specialists.
func TestReusePreservesResults(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	for _, build := range []func(*testing.T) *onnx.Graph{tinyCNN, tinyTransformer} {
		g := build(t)
		in := randomInput(g.InputShape, 7)
		best, err := FunctionalRun(g, reg, BestPicker(reg), in, 42)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := FunctionalRun(build(t), reg, GenericPicker(reg), in, 42)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(best, gen); d > 1e-3 {
			t.Fatalf("%s: generic substitution changed results by %v", g.Name, d)
		}
	}
}

func TestFunctionalRunDeterministic(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	g1 := tinyCNN(t)
	g2 := tinyCNN(t)
	in := randomInput(g1.InputShape, 3)
	a, err := FunctionalRun(g1, reg, BestPicker(reg), in, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FunctionalRun(g2, reg, BestPicker(reg), in, 42)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed, same input, different output")
	}
	c, err := FunctionalRun(tinyCNN(t), reg, BestPicker(reg), in, 43)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(a, c) == 0 {
		t.Fatal("different weight seeds produced identical output")
	}
}

func TestFunctionalRejectsBadInput(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	g := tinyCNN(t)
	wrong := tensor.New(tensor.Shape{N: 1, C: 3, H: 8, W: 8}, tensor.NCHW)
	if _, err := FunctionalRun(g, reg, BestPicker(reg), wrong, 1); err == nil {
		t.Fatal("wrong input shape must fail")
	}
}

// TestOptimizePreservesSemantics: the graph passes (BN fold, CSE, DCE) must
// not change the computed function.
func TestOptimizePreservesSemantics(t *testing.T) {
	build := func() *onnx.Graph {
		b := onnx.NewBuilder("opt", tensor.Shape{N: 1, C: 3, H: 16, W: 16}, tensor.F32)
		x := b.Conv("c1", b.Input(), 8, 3, 1, 1, 1)
		x = b.BatchNorm("bn1", x)
		x = b.Relu("r1", x)
		a := b.Relu("dup1", x)
		bdup := b.Relu("dup2", x) // CSE candidate
		x = b.Add("add", a, bdup)
		_ = b.Conv("dead", x, 4, 1, 1, 0, 1)
		x = b.GlobalAvgPool("gap", x)
		g, err := b.Finish(x)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	in := randomInput(tensor.Shape{N: 1, C: 3, H: 16, W: 16}, 5)
	plain := build()
	raw, err := FunctionalRun(plain, reg, BestPicker(reg), in, 9)
	if err != nil {
		t.Fatal(err)
	}
	optimized := build()
	Optimize(optimized)
	opt, err := FunctionalRun(optimized, reg, BestPicker(reg), in, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(raw, opt); d > 1e-5 {
		t.Fatalf("optimization changed results by %v", d)
	}
}

// Property: for random tiny CNNs, best-vs-generic picking agrees.
func TestReuseEquivalenceProperty(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := onnx.NewBuilder("rand", tensor.Shape{N: 1, C: 3, H: 16, W: 16}, tensor.F32)
		x := b.Input()
		layers := rng.Intn(3) + 1
		for i := 0; i < layers; i++ {
			ch := []int{4, 8, 16}[rng.Intn(3)]
			k := []int{1, 3}[rng.Intn(2)]
			x = b.Conv(convName("c", i), x, ch, k, 1, k/2, 1)
			if rng.Intn(2) == 0 {
				x = b.Relu(convName("r", i), x)
			}
		}
		x = b.GlobalAvgPool("gap", x)
		g, err := b.Finish(x)
		if err != nil {
			return false
		}
		in := randomInput(g.InputShape, seed)
		best, err := FunctionalRun(g, reg, BestPicker(reg), in, seed)
		if err != nil {
			return false
		}
		gen, err := FunctionalRun(g, reg, GenericPicker(reg), in, seed)
		if err != nil {
			return false
		}
		return tensor.MaxAbsDiff(best, gen) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func convName(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

// TestFusionPreservesSemantics: the opt-in Conv+ReLU fusion must compute
// the same function while removing the activation nodes.
func TestFusionPreservesSemantics(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	in := randomInput(tensor.Shape{N: 1, C: 3, H: 24, W: 24}, 4)
	plain := tinyCNN(t)
	ref, err := FunctionalRun(plain, reg, BestPicker(reg), in, 11)
	if err != nil {
		t.Fatal(err)
	}
	fused := tinyCNN(t)
	n := FuseConvActivation(fused)
	if n == 0 {
		t.Fatal("no conv+relu pairs fused")
	}
	relus := 0
	for _, node := range fused.Nodes {
		if node.Op == onnx.OpRelu {
			relus++
		}
	}
	plainRelus := 0
	for _, node := range plain.Nodes {
		if node.Op == onnx.OpRelu {
			plainRelus++
		}
	}
	if relus >= plainRelus {
		t.Fatalf("fusion removed no relus: %d vs %d", relus, plainRelus)
	}
	got, err := FunctionalRun(fused, reg, BestPicker(reg), in, 11)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref, got); d > 1e-5 {
		t.Fatalf("fusion changed results by %v", d)
	}
}

func TestFusionReducesPrimitiveInstructions(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	plain := compileZoo(t, "vgg", 1, reg, CompileOptions{})
	fused := compileZoo(t, "vgg", 1, reg, CompileOptions{FuseConvActivation: true})
	if fused.PrimitiveCount() >= plain.PrimitiveCount() {
		t.Fatalf("fusion did not shrink the plan: %d vs %d",
			fused.PrimitiveCount(), plain.PrimitiveCount())
	}
}
