package serving

import (
	"fmt"
	"time"

	"pask/internal/backend"
	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/metrics"
)

// MultitenantConfig parameterizes the shared-vs-isolated runtime
// comparison. The zero value compares ResNet34 and VGG16 on MI100 under an
// interleaved deterministic trace.
type MultitenantConfig struct {
	Models    []string       // zoo abbreviations, one tenant each (default res, vgg)
	Batch     int            // default 1
	Profile   device.Profile // default MI100
	PerTenant int            // requests per model (default 4)
	Interval  time.Duration  // fixed inter-arrival gap (default 2ms)
	KeepAlive time.Duration  // fleet keep-alive (default 1s: no reaping mid-trace)
}

// Fill applies the documented defaults to unset fields. Multitenant calls it
// internally; callers that need the effective configuration (e.g. for
// reporting) may call it themselves.
func (c *MultitenantConfig) Fill() {
	if len(c.Models) == 0 {
		c.Models = []string{"res", "vgg"}
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Profile.Name == "" {
		c.Profile = device.MI100()
	}
	if c.PerTenant <= 0 {
		c.PerTenant = 4
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.KeepAlive <= 0 {
		c.KeepAlive = time.Second
	}
}

// MultitenantResult carries the raw outcomes of both arms plus the store
// fingerprints proving the comparison ran against byte-identical state.
type MultitenantResult struct {
	Models   []string
	Isolated *FleetStats
	Shared   *FleetStats

	// Store fingerprints taken before the isolated arm, between the arms
	// and after the shared arm. All three must be equal: serving must never
	// mutate the code-object store, and both arms must read the same bytes.
	FingerprintBefore  uint32
	FingerprintBetween uint32
	FingerprintAfter   uint32
}

// StoreUntouched reports whether all three fingerprints agree.
func (r *MultitenantResult) StoreUntouched() bool {
	return r.FingerprintBefore == r.FingerprintBetween && r.FingerprintBetween == r.FingerprintAfter
}

// FirstCold returns a model's first cold-start latency in the given arm's
// stats (0 if the model never cold-started).
func FirstCold(fs *FleetStats, model string) time.Duration {
	if lat := fs.ColdByModel[model]; len(lat) > 0 {
		return lat[0]
	}
	return 0
}

// Multitenant runs the multi-tenancy experiment: the same deterministic
// interleaved trace over the same models, once with every instance owning a
// private runtime (today's one-runtime-per-process serving) and once with
// all instances attached to one shared GPU runtime and cross-model cache.
// The table reports each tenant's first cold start under both arms — on the
// shared runtime every tenant after the first starts on a GPU that already
// holds a context, the mapped residents and every previously loaded module,
// so its cold start is strictly lower — plus the per-tenant attribution of
// who paid for which loads.
func Multitenant(cfg MultitenantConfig) (*experiments.Table, *MultitenantResult, error) {
	cfg.Fill()
	setups, err := experiments.PrepareModelsShared(cfg.Models, cfg.Batch, cfg.Profile)
	if err != nil {
		return nil, nil, err
	}
	def := cfg.Models[0]
	store := setups[def].Store
	trace := InterleavedTrace(cfg.Models, cfg.PerTenant, cfg.Interval)
	fleetCfg := FleetConfig{
		Policy:    Policy{Scheme: core.SchemePaSK},
		KeepAlive: cfg.KeepAlive,
	}

	res := &MultitenantResult{Models: cfg.Models, FingerprintBefore: store.Fingerprint()}

	fleetCfg.Shared = false
	res.Isolated, err = ServeFleetModels(setups, def, fleetCfg, trace)
	if err != nil {
		return nil, nil, fmt.Errorf("serving: multitenant isolated arm: %w", err)
	}
	res.FingerprintBetween = store.Fingerprint()

	fleetCfg.Shared = true
	res.Shared, err = ServeFleetModels(setups, def, fleetCfg, trace)
	if err != nil {
		return nil, nil, fmt.Errorf("serving: multitenant shared arm: %w", err)
	}
	res.FingerprintAfter = store.Fingerprint()

	table := &experiments.Table{
		ID: "multitenant",
		Title: fmt.Sprintf("shared vs isolated GPU runtime, %d tenants (%s) b%d on %s, %d requests each",
			len(cfg.Models), join(cfg.Models), cfg.Batch, cfg.Profile.Name, cfg.PerTenant),
		Headers: []string{"tenant", "isolated_cold_ms", "shared_cold_ms", "saved"},
		Notes: []string{
			fmt.Sprintf("module loads: isolated=%d shared=%d (same trace, same store)",
				res.Isolated.ModuleLoads, res.Shared.ModuleLoads),
			fmt.Sprintf("store fingerprint %08x byte-identical across both arms: %v",
				res.FingerprintBefore, res.StoreUntouched()),
		},
	}
	for _, m := range cfg.Models {
		iso := FirstCold(res.Isolated, m)
		sh := FirstCold(res.Shared, m)
		saved := "-"
		if iso > 0 {
			saved = fmt.Sprintf("%.1f%%", 100*(1-float64(sh)/float64(iso)))
		}
		table.Rows = append(table.Rows, []string{m, ms(iso), ms(sh), saved})
	}
	for _, ts := range res.Shared.TenantLoads {
		if ts.Tenant == "" { // root view: no tenant activity of its own
			continue
		}
		table.Notes = append(table.Notes, "shared-arm "+formatTenantLoad(ts))
	}
	return table, res, nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "+"
		}
		out += s
	}
	return out
}

// formatTenantLoad renders one tenant attribution line using the metrics
// row format.
func formatTenantLoad(ts backend.TenantStats) string {
	row := metrics.TenantLoadRow(metrics.TenantLoad{
		Tenant: ts.Tenant, Loads: ts.Loads, BytesLoaded: ts.BytesLoaded,
		LoadTime: ts.LoadTime, SharedHits: ts.SharedHits, CoalescedWaits: ts.CoalescedWaits,
	})
	hdr := metrics.TenantLoadHeaders()
	out := ""
	for i := range hdr {
		if i > 0 {
			out += " "
		}
		out += hdr[i] + "=" + row[i]
	}
	return out
}
