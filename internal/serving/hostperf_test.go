package serving

import (
	"testing"

	"pask/internal/experiments"
)

// TestHostPerfStages runs the throughput probe at test-sized request counts
// and checks every hot-path stage reports sane per-request metrics.
func TestHostPerfStages(t *testing.T) {
	cfg := HostPerfConfig{Requests: 500, DispatchRequests: 8, Quick: true}
	tbl, res, err := HostPerf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"cache_query", "registry_hit", "codeobj_parse", "fleet_dispatch"}
	if len(res.Stages) != len(wantStages) {
		t.Fatalf("got %d stages, want %d", len(res.Stages), len(wantStages))
	}
	for i, st := range res.Stages {
		if st.Stage != wantStages[i] {
			t.Errorf("stage %d = %q, want %q", i, st.Stage, wantStages[i])
		}
		if st.Requests <= 0 {
			t.Errorf("stage %s: requests = %d, want > 0", st.Stage, st.Requests)
		}
		if st.NsPerRequest <= 0 {
			t.Errorf("stage %s: ns/request = %v, want > 0", st.Stage, st.NsPerRequest)
		}
		if st.AllocsPerRequest < 0 {
			t.Errorf("stage %s: allocs/request = %v, want >= 0", st.Stage, st.AllocsPerRequest)
		}
	}
	if len(tbl.Rows) != len(wantStages) {
		t.Fatalf("table has %d rows, want %d", len(tbl.Rows), len(wantStages))
	}
	for i, row := range tbl.Rows {
		if row[0] != wantStages[i] {
			t.Errorf("row %d stage = %q, want %q", i, row[0], wantStages[i])
		}
	}
	// The micro stages honor the configured request count; dispatch is
	// capped separately and the cap must be spelled out in the notes.
	for _, st := range res.Stages[:3] {
		if st.Requests != cfg.Requests {
			t.Errorf("stage %s: requests = %d, want %d", st.Stage, st.Requests, cfg.Requests)
		}
	}
	if len(tbl.Notes) == 0 {
		t.Error("expected a note recording the fleet_dispatch cap")
	}
}

// TestHostPerfRegistered checks the experiment is on the shared menu with a
// bench payload, so `paskbench -exp hostperf` emits the standard envelope.
func TestHostPerfRegistered(t *testing.T) {
	exp, ok := experiments.Lookup("hostperf")
	if !ok {
		t.Fatal("hostperf not registered")
	}
	if !exp.Bench {
		t.Error("hostperf must declare a bench payload")
	}
	if exp.InAll {
		t.Error("hostperf reports nondeterministic wall-clock numbers and must stay out of -exp all")
	}
}
