package serving

import (
	"testing"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/warmup"
)

func setup(t *testing.T, abbr string) *experiments.ModelSetup {
	t.Helper()
	ms, err := experiments.PrepareModel(abbr, 1, device.MI100())
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestPoissonTraceDeterministicAndMonotonic(t *testing.T) {
	a := PoissonTrace(50, 100*time.Millisecond, 7)
	b := PoissonTrace(50, 100*time.Millisecond, 7)
	if len(a) != 50 {
		t.Fatalf("trace length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatal("arrivals not monotonic")
		}
	}
	c := PoissonTrace(50, 100*time.Millisecond, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestBurstTraceAllAtZero(t *testing.T) {
	tr := BurstTrace(5)
	if len(tr) != 5 {
		t.Fatalf("burst length %d", len(tr))
	}
	for _, r := range tr {
		if r.At != 0 {
			t.Fatal("burst arrivals must be simultaneous")
		}
	}
}

// TestPoissonTraceSeeds pins the generator's seed contract across a grid of
// (n, interval, seed): equal seeds replay the identical trace, different
// seeds diverge, and the empirical mean inter-arrival stays within a factor
// of two of the requested one (a loose sanity bound, not a statistics test).
func TestPoissonTraceSeeds(t *testing.T) {
	cases := []struct {
		name     string
		n        int
		interval time.Duration
		seed     int64
	}{
		{"short fast", 20, time.Millisecond, 1},
		{"short slow", 20, 50 * time.Millisecond, 2},
		{"long", 200, 5 * time.Millisecond, 3},
		{"seed zero", 50, 10 * time.Millisecond, 0},
		{"negative seed", 50, 10 * time.Millisecond, -9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := PoissonTrace(c.n, c.interval, c.seed)
			b := PoissonTrace(c.n, c.interval, c.seed)
			if len(a) != c.n {
				t.Fatalf("length %d, want %d", len(a), c.n)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("same seed diverged at request %d", i)
				}
				if i > 0 && a[i].At < a[i-1].At {
					t.Fatalf("arrivals not monotonic at %d", i)
				}
			}
			diff := PoissonTrace(c.n, c.interval, c.seed+1)
			same := true
			for i := range a {
				if a[i] != diff[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("adjacent seeds produced identical traces")
			}
			mean := a[c.n-1].At / time.Duration(c.n)
			if mean < c.interval/2 || mean > 2*c.interval {
				t.Fatalf("empirical mean interval %v implausible for %v", mean, c.interval)
			}
		})
	}
}

// TestTraceGeneratorShapes is the table-driven ordering contract for the
// deterministic generators: lengths, monotonic arrival times, and for the
// interleaved trace strict round-robin model assignment.
func TestTraceGeneratorShapes(t *testing.T) {
	models := []string{"res", "vgg", "bert"}
	cases := []struct {
		name string
		tr   Trace
		n    int
	}{
		{"burst empty", BurstTrace(0), 0},
		{"burst", BurstTrace(7), 7},
		{"interleaved empty", InterleavedTrace(nil, 3, time.Millisecond), 0},
		{"interleaved", InterleavedTrace(models, 4, 2*time.Millisecond), 12},
		{"poisson", PoissonTrace(30, time.Millisecond, 5), 30},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if len(c.tr) != c.n {
				t.Fatalf("length %d, want %d", len(c.tr), c.n)
			}
			for i := 1; i < len(c.tr); i++ {
				if c.tr[i].At < c.tr[i-1].At {
					t.Fatalf("arrivals not monotonic at %d", i)
				}
			}
		})
	}
	// Round-robin: request i carries models[i%len] at exactly i×interval.
	iv := 2 * time.Millisecond
	tr := InterleavedTrace(models, 4, iv)
	counts := make(map[string]int)
	for i, r := range tr {
		if r.Model != models[i%len(models)] {
			t.Fatalf("request %d model %q breaks round-robin", i, r.Model)
		}
		if r.At != time.Duration(i)*iv {
			t.Fatalf("request %d at %v, want %v", i, r.At, time.Duration(i)*iv)
		}
		counts[r.Model]++
	}
	for _, m := range models {
		if counts[m] != 4 {
			t.Fatalf("model %s got %d requests, want 4", m, counts[m])
		}
	}
}

func TestStatsPercentiles(t *testing.T) {
	s := &Stats{Latencies: []time.Duration{4, 1, 3, 2, 5}}
	if s.Percentile(0.5) != 3 {
		t.Fatalf("p50 = %v", s.Percentile(0.5))
	}
	if s.Percentile(1.0) != 5 {
		t.Fatalf("p100 = %v", s.Percentile(1.0))
	}
	if s.Percentile(0.01) != 1 {
		t.Fatalf("p1 = %v", s.Percentile(0.01))
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	empty := &Stats{}
	if empty.Percentile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty stats must be zero")
	}
}

func TestServeTraceWarmRequestsFaster(t *testing.T) {
	ms := setup(t, "alex")
	trace := PoissonTrace(4, 500*time.Millisecond, 1)
	stats, err := ServeTrace(ms, Policy{Scheme: core.SchemePaSK}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ColdStarts != 1 {
		t.Fatalf("cold starts = %d, want 1", stats.ColdStarts)
	}
	if len(stats.Latencies) != 4 {
		t.Fatalf("latencies = %d", len(stats.Latencies))
	}
	cold := stats.Latencies[0]
	for i, warm := range stats.Latencies[1:] {
		if warm >= cold {
			t.Fatalf("warm request %d (%v) not faster than cold (%v)", i+1, warm, cold)
		}
	}
}

func TestBackgroundLoadingImprovesSecondRequest(t *testing.T) {
	ms := setup(t, "vgg")
	trace := PoissonTrace(3, 2*time.Second, 2)
	with, err := ServeTrace(ms, Policy{Scheme: core.SchemePaSK, BackgroundLoad: true}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	without, err := ServeTrace(ms, Policy{Scheme: core.SchemePaSK}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if with.BGLoads == 0 {
		t.Fatal("background loader idle despite gaps")
	}
	if without.BGLoads != 0 {
		t.Fatal("background loads without the policy")
	}
	if with.Latencies[1] > without.Latencies[1] {
		t.Fatalf("background loading should not slow request 2: %v vs %v",
			with.Latencies[1], without.Latencies[1])
	}
}

func TestEvictionForcesColdPath(t *testing.T) {
	ms := setup(t, "alex")
	trace := PoissonTrace(4, 300*time.Millisecond, 3)
	stats, err := ServeTrace(ms, Policy{Scheme: core.SchemePaSK}, trace, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ColdStarts != 2 {
		t.Fatalf("cold starts = %d, want 2 (evicted after request 2)", stats.ColdStarts)
	}
	// Request 3 (first after eviction) is slower than request 2 (warm).
	if stats.Latencies[2] <= stats.Latencies[1] {
		t.Fatalf("post-eviction request (%v) should be slower than warm (%v)",
			stats.Latencies[2], stats.Latencies[1])
	}
}

func TestScaleOutColdStartsAcrossSchemes(t *testing.T) {
	ms := setup(t, "res")
	base, err := ScaleOut(ms, Policy{Scheme: core.SchemeBaseline}, 3)
	if err != nil {
		t.Fatal(err)
	}
	pask, err := ScaleOut(ms, Policy{Scheme: core.SchemePaSK}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if base.ColdStarts != 3 || pask.ColdStarts != 3 {
		t.Fatal("every scale-out instance must cold start")
	}
	if pask.Mean() >= base.Mean() {
		t.Fatalf("PaSK scale-out (%v) not faster than baseline (%v)", pask.Mean(), base.Mean())
	}
	// Instances are independent: cold latencies are identical per scheme.
	for _, l := range base.Latencies[1:] {
		if l != base.Latencies[0] {
			t.Fatal("independent instances should have identical cold latency")
		}
	}
}

func TestSpotPreemptionCausesRepeatedColdStarts(t *testing.T) {
	ms := setup(t, "alex")
	trace := PoissonTrace(6, 200*time.Millisecond, 4)
	stats, migrations, err := SpotPreemption(ms, Policy{Scheme: core.SchemePaSK}, trace, 2)
	if err != nil {
		t.Fatal(err)
	}
	if migrations != 2 {
		t.Fatalf("migrations = %d, want 2", migrations)
	}
	if stats.ColdStarts != 3 {
		t.Fatalf("cold starts = %d, want 3 (initial + per migration)", stats.ColdStarts)
	}
	if _, _, err := SpotPreemption(ms, Policy{Scheme: core.SchemePaSK}, trace, 0); err == nil {
		t.Fatal("preemptEvery=0 must error")
	}
}

func TestIdealInstanceServesFastestColdStart(t *testing.T) {
	ms := setup(t, "alex")
	trace := BurstTrace(1)
	var results = map[core.Scheme]time.Duration{}
	for _, sch := range []core.Scheme{core.SchemeBaseline, core.SchemePaSK, core.SchemeIdeal} {
		stats, err := ServeTrace(ms, Policy{Scheme: sch}, trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		results[sch] = stats.Latencies[0]
	}
	if !(results[core.SchemeIdeal] <= results[core.SchemePaSK] &&
		results[core.SchemePaSK] < results[core.SchemeBaseline]) {
		t.Fatalf("ordering violated: %v", results)
	}
}

func TestFleetReusesWarmInstance(t *testing.T) {
	ms := setup(t, "alex")
	// Sparse arrivals: one instance handles everything warm.
	trace := PoissonTrace(5, time.Second, 11)
	stats, err := ServeFleet(ms, FleetConfig{Policy: Policy{Scheme: core.SchemePaSK}, KeepAlive: time.Minute}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spawned != 1 || stats.ColdStarts != 1 {
		t.Fatalf("spawned=%d cold=%d, want 1/1", stats.Spawned, stats.ColdStarts)
	}
	if stats.Reaped != 0 {
		t.Fatalf("reaped=%d, want 0 under long keep-alive", stats.Reaped)
	}
	for i, l := range stats.Latencies[1:] {
		if l >= stats.Latencies[0] {
			t.Fatalf("warm request %d (%v) not faster than cold (%v)", i+1, l, stats.Latencies[0])
		}
	}
}

func TestFleetScalesOutOnBurst(t *testing.T) {
	ms := setup(t, "alex")
	stats, err := ServeFleet(ms, FleetConfig{Policy: Policy{Scheme: core.SchemePaSK}}, BurstTrace(4))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spawned != 4 || stats.ColdStarts != 4 || stats.MaxConcurrent != 4 {
		t.Fatalf("burst should spawn one instance per request: %+v", stats)
	}
}

func TestFleetKeepAliveExpiryCausesColdStart(t *testing.T) {
	ms := setup(t, "alex")
	trace := Trace{{At: 0}, {At: 3 * time.Second}}
	stats, err := ServeFleet(ms, FleetConfig{
		Policy: Policy{Scheme: core.SchemePaSK}, KeepAlive: time.Second,
	}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reaped != 1 || stats.Spawned != 2 || stats.ColdStarts != 2 {
		t.Fatalf("keep-alive expiry should force a new cold instance: %+v", stats)
	}
}

func TestFleetCapQueuesRequests(t *testing.T) {
	ms := setup(t, "alex")
	stats, err := ServeFleet(ms, FleetConfig{
		Policy: Policy{Scheme: core.SchemeBaseline}, MaxInstances: 1,
	}, BurstTrace(3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spawned != 1 || stats.MaxConcurrent != 1 {
		t.Fatalf("cap violated: %+v", stats)
	}
	// Queued requests wait: later latencies strictly exceed earlier ones.
	if !(stats.Latencies[0] < stats.Latencies[1] && stats.Latencies[1] < stats.Latencies[2]) {
		t.Fatalf("queueing not reflected in latencies: %v", stats.Latencies)
	}
	// Only the first request is cold; the rest are served warm in order.
	if stats.ColdStarts != 1 {
		t.Fatalf("cold starts = %d, want 1", stats.ColdStarts)
	}
}

func TestFleetPaSKBeatsBaselineOnBurst(t *testing.T) {
	ms := setup(t, "res")
	base, err := ServeFleet(ms, FleetConfig{Policy: Policy{Scheme: core.SchemeBaseline}}, BurstTrace(3))
	if err != nil {
		t.Fatal(err)
	}
	pask, err := ServeFleet(ms, FleetConfig{Policy: Policy{Scheme: core.SchemePaSK}}, BurstTrace(3))
	if err != nil {
		t.Fatal(err)
	}
	if pask.Percentile(0.99) >= base.Percentile(0.99) {
		t.Fatalf("PaSK fleet p99 (%v) not better than baseline (%v)",
			pask.Percentile(0.99), base.Percentile(0.99))
	}
}

// TestPolicyWarmupReplaysOnSpawn records a load profile once, hands it to the
// serving policy and checks a fresh instance replays it and banks the
// accounting into Stats. (Request latency is measured after process bring-up,
// where the replay's benefit lands — the time-to-first-inference win is
// asserted in experiments.TestWarmupBeatsColdOnAllDevices.)
func TestPolicyWarmupReplaysOnSpawn(t *testing.T) {
	ms := setup(t, "alex")
	rec, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, nil, true)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if rec.Profile == nil || len(rec.Profile.Entries) == 0 {
		t.Fatal("recording produced no profile")
	}

	trace := PoissonTrace(2, 500*time.Millisecond, 1)
	cold, err := ServeTrace(ms, Policy{Scheme: core.SchemePaSK}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmupReplays != 0 || cold.WarmupLoads != 0 {
		t.Fatalf("policy without warmup reported replays: %+v", cold)
	}

	pol := Policy{Scheme: core.SchemePaSK,
		Warmup: map[string]*warmup.Manifest{"alex": rec.Profile}}
	warm, err := ServeTrace(ms, pol, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmupReplays != 1 {
		t.Fatalf("WarmupReplays = %d, want 1", warm.WarmupReplays)
	}
	if warm.WarmupLoads == 0 {
		t.Fatalf("replay loaded nothing: %+v", warm)
	}
	if warm.WarmupStale != 0 {
		t.Errorf("fresh profile reported %d stale entries", warm.WarmupStale)
	}
	if len(warm.Latencies) != len(cold.Latencies) {
		t.Errorf("warmed arm served %d requests, cold served %d",
			len(warm.Latencies), len(cold.Latencies))
	}
}

// TestPolicyWarmupStaleNeverFails poisons every checksum in the policy's
// manifest: serving must proceed exactly as cold, counting the stale entries.
func TestPolicyWarmupStaleNeverFails(t *testing.T) {
	ms := setup(t, "alex")
	rec, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, nil, true)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	man := rec.Profile
	for i := range man.Entries {
		man.Entries[i].Checksum++
	}
	pol := Policy{Scheme: core.SchemePaSK,
		Warmup: map[string]*warmup.Manifest{"alex": man}}
	stats, err := ServeTrace(ms, pol, PoissonTrace(2, 500*time.Millisecond, 1), 0)
	if err != nil {
		t.Fatalf("stale manifest must not fail serving: %v", err)
	}
	if stats.WarmupStale != len(man.Entries) {
		t.Fatalf("WarmupStale = %d, want %d", stats.WarmupStale, len(man.Entries))
	}
	if stats.WarmupLoads != 0 {
		t.Fatalf("stale replay must load nothing: %+v", stats)
	}
}
