package serving

import (
	"fmt"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/trace"
)

// OverloadConfig parameterizes the overload-protection experiment.
type OverloadConfig struct {
	Model string // zoo abbreviation (default "res")
	Batch int    // default 1
	// Requests is the Poisson trace length (default 40).
	Requests int
	// MeanInterval is the Poisson mean inter-arrival (default 12ms — about
	// 60% utilization of MaxInstances warm instances).
	MeanInterval time.Duration
	// Burst is the size of the simultaneous-arrival spike, injected through
	// the fault plan's request flood (default 36).
	Burst int
	// MaxInstances caps the fleet (default 3) — the cap is what turns a
	// burst into queueing.
	MaxInstances int
	// SLO is the end-to-end objective served requests are judged against
	// (default 240ms).
	SLO time.Duration
	// QueueDeadline is the admission bound the protected arms shed on
	// (default 200ms — roughly SLO minus a warm service time, so admitted
	// requests can still make the objective).
	QueueDeadline time.Duration
	// FTDeadline is the per-request service deadline on the Poisson cells:
	// above a warm serve, below a post-reset reload — the overruns it
	// creates are what trip the breaker (default 45ms).
	FTDeadline time.Duration
	// SlowExtra is the slow-loader storage brownout added to module loads:
	// for the whole burst cell, and in a window after the Poisson cell's
	// device reset — the fault storms the reuse-heavy arm dodges by not
	// loading (default 15ms).
	SlowExtra time.Duration
	// Seed drives the Poisson trace and all deterministic jitter.
	Seed int64
	// Rec, when set, captures the first device's brownout-arm cells: the
	// Poisson cell contributes the breaker state counter, the burst cell
	// the brownout pressure counter.
	Rec *trace.Recorder
	// Quick shrinks the traces for CI smoke runs.
	Quick bool
}

func (c *OverloadConfig) fill() {
	if c.Model == "" {
		c.Model = "res"
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Requests <= 0 {
		c.Requests = 40
	}
	if c.MeanInterval <= 0 {
		c.MeanInterval = 12 * time.Millisecond
	}
	if c.Burst <= 0 {
		c.Burst = 36
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = 3
	}
	if c.SLO <= 0 {
		c.SLO = 265 * time.Millisecond
	}
	if c.QueueDeadline <= 0 {
		c.QueueDeadline = 240 * time.Millisecond
	}
	if c.FTDeadline <= 0 {
		c.FTDeadline = 55 * time.Millisecond
	}
	if c.SlowExtra <= 0 {
		c.SlowExtra = 25 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Quick {
		c.Requests = min(c.Requests, 24)
		c.Burst = min(c.Burst, 20)
	}
}

// Filled returns the config with all defaults applied — what OverloadRun
// actually executes. Callers reporting effective parameters use this.
func (c OverloadConfig) Filled() OverloadConfig {
	c.fill()
	return c
}

// OverloadArm is one protection level of the comparison.
type OverloadArm struct {
	Name     string
	Shedding bool // admission control + circuit breakers
	Brownout bool // pressure-adaptive selective reuse on top
}

// OverloadArms returns the compared arms: unprotected, shed-only, and shed
// plus brownout.
func OverloadArms() []OverloadArm {
	return []OverloadArm{
		{Name: "none"},
		{Name: "shed", Shedding: true},
		{Name: "brownout", Shedding: true, Brownout: true},
	}
}

// OverloadCell is one (device, trace, arm) measurement.
type OverloadCell struct {
	Trace    string `json:"trace"`
	Arm      string `json:"arm"`
	Requests int    `json:"requests"`
	Served   int    `json:"served"`
	// Shed/BreakerRejected requests never reached an instance; Failed ones
	// did and lost; SLOMisses completed but too late. LossRate is the
	// experiment's generalized shed rate: the fraction of requests that
	// were dropped, rejected, failed or late — the user-visible damage an
	// unprotected fleet spreads over everyone and a protected fleet
	// concentrates on deliberate sheds.
	Shed              int     `json:"shed"`
	BreakerRejected   int     `json:"breaker_rejected"`
	Failed            int     `json:"failed"`
	SLOMisses         int     `json:"slo_misses"`
	LossRate          float64 `json:"loss_rate"`
	P50Ms             float64 `json:"p50_ms"`
	P99Ms             float64 `json:"p99_ms"`
	MeanMs            float64 `json:"mean_ms"`
	ColdStarts        int     `json:"cold_starts"`
	BreakerTrips      int     `json:"breaker_trips"`
	BreakerRecoveries int     `json:"breaker_recoveries"`
	BrownoutEnters    int     `json:"brownout_enters"`
	PressurePeak      int     `json:"pressure_peak"`
	PressureReuse     int     `json:"pressure_reuse"`
	ModuleLoads       int     `json:"module_loads"`
}

// OverloadDeviceResult groups one device profile's cells.
type OverloadDeviceResult struct {
	Device string         `json:"device"`
	Cells  []OverloadCell `json:"cells"`
}

// OverloadBench is the machine-readable result emitted as
// BENCH_overload.json. Fully deterministic: a fixed config (seed) produces
// byte-identical JSON.
type OverloadBench struct {
	Experiment string                 `json:"experiment"`
	Model      string                 `json:"model"`
	Batch      int                    `json:"batch"`
	Seed       int64                  `json:"seed"`
	Devices    []OverloadDeviceResult `json:"devices"`
}

// overloadPolicy builds one arm's policy for one trace kind.
func overloadPolicy(cfg OverloadConfig, arm OverloadArm, poisson bool, rec *trace.Recorder) Policy {
	pol := Policy{
		Scheme: core.SchemePaSK,
		FT:     FaultTolerance{ContinueOnError: true, BackoffSeed: cfg.Seed},
		SLO:    cfg.SLO,
		Rec:    rec,
	}
	if poisson {
		// The service deadline is what turns slow cold starts into the
		// consecutive failures that trip the breaker.
		pol.FT.Deadline = cfg.FTDeadline
	}
	if arm.Shedding {
		pol.Admission = AdmissionConfig{QueueDeadline: cfg.QueueDeadline}
		pol.Breaker = BreakerConfig{Threshold: 3, Cooldown: 25 * time.Millisecond, Seed: cfg.Seed}
	}
	if arm.Brownout {
		pol.Brownout = BrownoutConfig{Enabled: true, EnterDepth: 2, SevereDepth: 4}
	}
	return pol
}

// overloadPlan builds the cell's fault plan — identical across arms so the
// comparison is fair. Burst cells pair the request flood with a sustained
// slow loader (the §I fault storm: a spike arriving while storage is
// degraded). Poisson cells fire a mid-trace device reset with a slow-loader
// window over the reload: the first post-reset serve on each instance
// overruns FTDeadline, and those consecutive overruns trip the breaker.
func overloadPlan(cfg OverloadConfig, poisson bool) faults.Plan {
	plan := faults.Plan{Seed: cfg.Seed, SlowLoadExtra: cfg.SlowExtra}
	if poisson {
		reset := time.Duration(cfg.Requests/2) * cfg.MeanInterval
		plan.DeviceResetAt = reset
		plan.SlowFrom = reset
		plan.SlowUntil = reset + 8*cfg.MeanInterval
	} else {
		plan.FloodN = cfg.Burst
	}
	return plan
}

// OverloadArmByName resolves an arm label ("none", "shed", "brownout").
func OverloadArmByName(name string) (OverloadArm, bool) {
	for _, arm := range OverloadArms() {
		if arm.Name == name {
			return arm, true
		}
	}
	return OverloadArm{}, false
}

// OverloadRun measures the given arms of one (device, trace-kind) overload
// cell on an already-prepared model. traceKind is "poisson" or "burst"; every
// arm faces the identical seeded trace and fault plan. rec, when non-nil, is
// attached to brownout arms so breaker and pressure counters land in the
// timeline. This is the building block Overload sweeps and POST /v1/overload
// serves directly.
func OverloadRun(ms *experiments.ModelSetup, cfg OverloadConfig, traceKind string, arms []OverloadArm, rec *trace.Recorder) ([]OverloadCell, error) {
	cfg.fill()
	poisson := traceKind == "poisson"
	if !poisson && traceKind != "burst" {
		return nil, fmt.Errorf("serving: unknown overload trace kind %q", traceKind)
	}
	var tr Trace
	total := cfg.Burst
	if poisson {
		tr = PoissonTrace(cfg.Requests, cfg.MeanInterval, cfg.Seed)
		total = cfg.Requests
	}
	var cells []OverloadCell
	for _, arm := range arms {
		var armRec *trace.Recorder
		if arm.Brownout {
			armRec = rec
		}
		pol := overloadPolicy(cfg, arm, poisson, armRec)
		pol.Faults = faults.New(overloadPlan(cfg, poisson))
		// Poisson cells run on a shared GPU host: the fault plan's
		// device reset is armed against the host root, so all
		// instances lose their modules at once and their coalesced
		// slow reloads produce the consecutive deadline overruns
		// that trip the breaker. Burst cells run isolated instances:
		// each cold start pays its own loads, which is what the
		// slow-loader storm amplifies and the brownout arm's forced
		// reuse avoids.
		fc := FleetConfig{Policy: pol, MaxInstances: cfg.MaxInstances, Shared: poisson}
		stats, err := ServeFleet(ms, fc, tr)
		if err != nil {
			return nil, fmt.Errorf("overload %s/%s: %w", traceKind, arm.Name, err)
		}
		cells = append(cells, overloadCell(traceKind, arm.Name, total, stats))
	}
	return cells, nil
}

// Overload runs the overload-protection comparison: on every device
// profile, a Poisson trace and a burst trace each cross the three arms
// (no protection, admission+breaker shedding, shedding+brownout). Each
// cell runs the same seeded trace and fault plan on a capped shared-GPU
// fleet, so differences are purely the protection policy. Returns the
// rendered table and the machine-readable bench.
func Overload(cfg OverloadConfig) (*experiments.Table, *OverloadBench, error) {
	cfg.fill()
	table := &experiments.Table{
		ID: "Overload",
		Title: fmt.Sprintf("overload protection: %s b%d, %d-request Poisson + %d-request burst, %d instances",
			cfg.Model, cfg.Batch, cfg.Requests, cfg.Burst, cfg.MaxInstances),
		Headers: []string{"device", "trace", "arm", "served", "shed", "rejected", "failed",
			"slo_miss", "loss", "p50_ms", "p99_ms", "cold", "trips", "reuse", "loads"},
		Notes: []string{
			"loss = (shed + rejected + failed + slo misses) / requests — the generalized shed rate",
			"burst cells add a slow-loader storage brownout; all arms of a cell face the identical plan",
			fmt.Sprintf("seed=%d; the bench JSON is byte-identical across runs", cfg.Seed),
		},
	}
	bench := &OverloadBench{Experiment: "overload", Model: cfg.Model, Batch: cfg.Batch, Seed: cfg.Seed}

	for devIdx, prof := range device.Profiles() {
		ms, err := experiments.PrepareModel(cfg.Model, cfg.Batch, prof)
		if err != nil {
			return nil, nil, err
		}
		dr := OverloadDeviceResult{Device: prof.Name}
		for _, traceKind := range []string{"poisson", "burst"} {
			var rec *trace.Recorder
			if devIdx == 0 {
				rec = cfg.Rec
			}
			cells, err := OverloadRun(ms, cfg, traceKind, OverloadArms(), rec)
			if err != nil {
				return nil, nil, fmt.Errorf("overload %s: %w", prof.Name, err)
			}
			for _, cell := range cells {
				dr.Cells = append(dr.Cells, cell)
				table.Rows = append(table.Rows, []string{
					prof.Name, traceKind, cell.Arm,
					fmt.Sprintf("%d/%d", cell.Served, cell.Requests),
					fmt.Sprintf("%d", cell.Shed),
					fmt.Sprintf("%d", cell.BreakerRejected),
					fmt.Sprintf("%d", cell.Failed),
					fmt.Sprintf("%d", cell.SLOMisses),
					fmt.Sprintf("%.0f%%", 100*cell.LossRate),
					fmt.Sprintf("%.2f", cell.P50Ms),
					fmt.Sprintf("%.2f", cell.P99Ms),
					fmt.Sprintf("%d", cell.ColdStarts),
					fmt.Sprintf("%d", cell.BreakerTrips),
					fmt.Sprintf("%d", cell.PressureReuse),
					fmt.Sprintf("%d", cell.ModuleLoads),
				})
			}
		}
		bench.Devices = append(bench.Devices, dr)
	}
	return table, bench, nil
}

func overloadCell(traceKind, arm string, total int, stats *FleetStats) OverloadCell {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	cell := OverloadCell{
		Trace:             traceKind,
		Arm:               arm,
		Requests:          total,
		Served:            len(stats.Latencies),
		Shed:              stats.Shed,
		BreakerRejected:   stats.BreakerRejected,
		Failed:            stats.Failed,
		SLOMisses:         stats.SLOMisses,
		P50Ms:             ms(stats.Percentile(0.5)),
		P99Ms:             ms(stats.Percentile(0.99)),
		MeanMs:            ms(stats.Mean()),
		ColdStarts:        stats.ColdStarts,
		BreakerTrips:      stats.BreakerTrips,
		BreakerRecoveries: stats.BreakerRecoveries,
		BrownoutEnters:    stats.BrownoutEnters,
		PressurePeak:      stats.PressurePeak,
		PressureReuse:     stats.PressureReuse,
		ModuleLoads:       stats.ModuleLoads,
	}
	if total > 0 {
		cell.LossRate = float64(cell.Shed+cell.BreakerRejected+cell.Failed+cell.SLOMisses) / float64(total)
	}
	return cell
}
