package serving

import (
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pask/internal/codeobj"
	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/graphx"
	"pask/internal/sim"
	"pask/internal/warmup"
)

var (
	resOnce sync.Once
	resMS   *experiments.ModelSetup
	resErr  error
)

// resSetup builds the shared ResNet34 setup once: fault tests only install
// injector hooks, never mutate the store, so sharing is safe.
func resSetup(t *testing.T) *experiments.ModelSetup {
	t.Helper()
	resOnce.Do(func() {
		resMS, resErr = experiments.PrepareModel("res", 1, device.MI100())
	})
	if resErr != nil {
		t.Fatal(resErr)
	}
	return resMS
}

// probeLoadedChosen runs one clean cold PASK request and returns the
// statically chosen, non-protected primitive objects that run actually
// loaded. Only corrupting one of these can force the degradation ladder —
// objects absorbed by ordinary selective reuse are never read at all.
func probeLoadedChosen(t *testing.T, ms *experiments.ModelSetup) []string {
	t.Helper()
	protected := make(map[string]bool)
	for _, p := range ProtectedPaths(ms) {
		protected[p] = true
	}
	chosen := make(map[string]bool)
	for i := range ms.Model.Instrs {
		in := &ms.Model.Instrs[i]
		if in.Kind != graphx.KindPrimitive {
			continue
		}
		inst, err := in.Instance(ms.Reg)
		if err != nil {
			t.Fatal(err)
		}
		if p := inst.Path(); !protected[p] {
			chosen[p] = true
		}
	}
	env := sim.NewEnv()
	inst := NewInstance(env, ms, Policy{Scheme: core.SchemePaSK})
	var loaded []string
	env.Spawn("probe", func(p *sim.Proc) {
		defer inst.pr.GPU.CloseAll()
		if _, err := inst.Serve(p); err != nil {
			t.Error(err)
			return
		}
		for path := range chosen {
			if inst.pr.RT.Loaded(path) {
				loaded = append(loaded, path)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(loaded) == 0 {
		t.Fatal("clean cold run loaded no chosen objects")
	}
	sort.Strings(loaded)
	return loaded
}

// findHostileSeed returns a seed whose permanent-corruption roll damages at
// least one chosen primitive object that a clean cold run really loads — so
// both fail-fast and resilient policies must face the fault — while leaving
// BLAS objects alone (their single-kernel ladders make some problems
// unrecoverable by construction, which is not what this sweep measures).
func findHostileSeed(t *testing.T, ms *experiments.ModelSetup, plan faults.Plan) int64 {
	t.Helper()
	loaded := probeLoadedChosen(t, ms)
	for seed := int64(1); seed < 500; seed++ {
		plan.Seed = seed
		inj := faults.New(plan)
		inj.Exempt(ProtectedPaths(ms)...)
		hit, blasHit := false, false
		for _, p := range loaded {
			if inj.PermanentlyCorrupt(p) {
				hit = true
			}
		}
		for _, p := range ms.Store.Paths() {
			if strings.HasPrefix(p, "blas_") && inj.PermanentlyCorrupt(p) {
				blasHit = true
			}
		}
		if hit && !blasHit {
			return seed
		}
	}
	t.Fatal("no hostile seed found in 500 tries")
	return 0
}

// storeDigest hashes every object in the store — fault injection must never
// mutate the shared "disk" copies.
func storeDigest(t *testing.T, store *codeobj.Store) uint64 {
	t.Helper()
	h := fnv.New64a()
	for _, path := range store.Paths() {
		data, err := store.Get(path)
		if err != nil {
			t.Fatalf("digest %s: %v", path, err)
		}
		fmt.Fprintf(h, "%s|%d|", path, len(data))
		h.Write(data)
	}
	return h.Sum64()
}

// TestChaosAcceptanceResNet is the PR's acceptance criterion: with 10%
// transient and 2% permanent fault rates on ResNet34, resilient PASK serves
// at least 99% of the trace while the fail-fast baseline aborts.
func TestChaosAcceptanceResNet(t *testing.T) {
	ms := resSetup(t)
	plan := faults.Plan{TransientRate: 0.1, PermanentRate: 0.02}
	plan.Seed = findHostileSeed(t, ms, plan)
	const n = 100
	trace := PoissonTrace(n, 2*time.Millisecond, 11)

	ff := Policy{Scheme: core.SchemeBaseline, Faults: faults.New(plan)}
	if _, err := ServeTrace(ms, ff, trace, 10); err == nil {
		t.Fatal("fail-fast baseline survived a permanently corrupt chosen object")
	}

	res := Policy{
		Scheme: core.SchemePaSK,
		FT:     FaultTolerance{MaxRetries: 2, ContinueOnError: true},
		Faults: faults.New(plan),
	}
	stats, err := ServeTrace(ms, res, trace, 10)
	if err != nil {
		t.Fatalf("resilient trace aborted: %v", err)
	}
	if served := len(stats.Latencies); served < 99 {
		t.Fatalf("resilient PASK served %d/%d; failures: %v", served, n, stats.FailedRequests)
	}
	if stats.DegradedLayers == 0 {
		t.Fatal("a corrupt chosen object must force at least one degraded layer")
	}
}

// TestFaultedServingNeverSilentlyFails is the property test: under any
// seeded fault plan every request either completes or is recorded with a
// typed error — the env never deadlocks or panics, accounting always adds
// up, and the shared store is bit-identical afterwards (injected corruption
// must stay confined to the read path). Numeric preservation under forced
// substitution is proven separately by graphx's functional-equivalence
// tests plus the applicability assertions in core's recovery tests.
func TestFaultedServingNeverSilentlyFails(t *testing.T) {
	ms := resSetup(t)
	snap := storeDigest(t, ms.Store)
	for _, seed := range []int64{1, 2, 3} {
		plan := faults.Plan{Seed: seed, TransientRate: 0.2, PermanentRate: 0.05, SpikeRate: 0.05}
		pol := Policy{
			Scheme: core.SchemePaSK,
			FT:     FaultTolerance{MaxRetries: 1, ContinueOnError: true},
			Faults: faults.New(plan),
		}
		const n = 30
		stats, err := ServeTrace(ms, pol, PoissonTrace(n, 2*time.Millisecond, seed), 7)
		if err != nil {
			t.Fatalf("seed %d: trace aborted: %v", seed, err)
		}
		if got := len(stats.Latencies) + stats.Failed; got != n {
			t.Fatalf("seed %d: %d served + %d failed != %d requests", seed, len(stats.Latencies), stats.Failed, n)
		}
		for idx, ferr := range stats.FailedRequests {
			if !errors.Is(ferr, ErrInstanceCrashed) && !errors.Is(ferr, ErrDeadlineExceeded) {
				t.Fatalf("seed %d: request %d failed with untyped error: %v", seed, idx, ferr)
			}
		}
		if d := storeDigest(t, ms.Store); d != snap {
			t.Fatalf("seed %d: fault injection mutated the shared store", seed)
		}
	}
}

func TestDeadlineExceededTyped(t *testing.T) {
	ms := resSetup(t)
	pol := Policy{
		Scheme: core.SchemePaSK,
		FT:     FaultTolerance{Deadline: time.Microsecond, ContinueOnError: true},
	}
	const n = 5
	stats, err := ServeTrace(ms, pol, PoissonTrace(n, time.Millisecond, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadlineMisses != n || stats.Failed != n || len(stats.Latencies) != 0 {
		t.Fatalf("misses=%d failed=%d served=%d, want all %d missed",
			stats.DeadlineMisses, stats.Failed, len(stats.Latencies), n)
	}
	for idx, ferr := range stats.FailedRequests {
		if !errors.Is(ferr, ErrDeadlineExceeded) {
			t.Fatalf("request %d: %v does not wrap ErrDeadlineExceeded", idx, ferr)
		}
	}
}

// TestDeviceResetRecovery fires the plan's device reset mid-trace: every
// module is dropped, and the instance must reload its way back without
// losing requests (the store is pristine in this plan).
func TestDeviceResetRecovery(t *testing.T) {
	ms := resSetup(t)
	inj := faults.New(faults.Plan{DeviceResetAt: 5 * time.Millisecond})
	pol := Policy{
		Scheme: core.SchemePaSK,
		FT:     FaultTolerance{MaxRetries: 1, ContinueOnError: true},
		Faults: inj,
	}
	const n = 20
	stats, err := ServeTrace(ms, pol, PoissonTrace(n, 2*time.Millisecond, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Stats().Resets != 1 {
		t.Fatalf("resets = %d, want 1", inj.Stats().Resets)
	}
	if got := len(stats.Latencies) + stats.Failed; got != n {
		t.Fatalf("%d served + %d failed != %d", len(stats.Latencies), stats.Failed, n)
	}
	if len(stats.Latencies) != n {
		t.Fatalf("reset with a pristine store lost %d requests: %v", stats.Failed, stats.FailedRequests)
	}
}

func TestScaleOutWithFaults(t *testing.T) {
	ms := resSetup(t)
	pol := Policy{
		Scheme: core.SchemePaSK,
		FT:     FaultTolerance{MaxRetries: 1, ContinueOnError: true},
		Faults: faults.New(faults.Plan{Seed: 2, TransientRate: 0.3}),
	}
	const n = 4
	stats, err := ScaleOut(ms, pol, n)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(stats.Latencies) + stats.Failed; got != n {
		t.Fatalf("%d served + %d failed != %d", len(stats.Latencies), stats.Failed, n)
	}
	if len(stats.Latencies) != n {
		t.Fatalf("pure-transient storm lost requests: %v", stats.FailedRequests)
	}
}

func TestChaosDeterministic(t *testing.T) {
	cfg := ChaosConfig{
		Model:      "alex",
		Requests:   10,
		Transients: []float64{0.1},
		Permanents: []float64{0.02},
		Seed:       3,
	}
	t1, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1.Rows, t2.Rows) {
		t.Fatalf("chaos table not deterministic:\n%v\nvs\n%v", t1.Rows, t2.Rows)
	}
	if len(t1.Rows) != 3 {
		t.Fatalf("rows = %d, want one per policy", len(t1.Rows))
	}
}

// TestRecordFailureIdempotent pins the per-request failure accounting: a
// request index recorded twice (e.g. by a future code path that re-reports
// a replacement's error) must count one failure, keeping the
// served+failed==requests identity intact.
func TestRecordFailureIdempotent(t *testing.T) {
	s := &Stats{}
	s.recordFailure(3, ErrDeadlineExceeded)
	s.recordFailure(3, ErrInstanceCrashed)
	if s.Failed != 1 {
		t.Fatalf("Failed = %d after double report, want 1", s.Failed)
	}
	if len(s.FailedRequests) != 1 {
		t.Fatalf("FailedRequests = %v", s.FailedRequests)
	}
	if !errors.Is(s.FailedRequests[3], ErrInstanceCrashed) {
		t.Fatal("second report must keep the latest error")
	}
}

// TestReplacementAccountingSingleCounted is the spot-preemption audit
// regression: instances are preempted mid-trace AND crash on a permanently
// corrupt object, every replacement runs a warmup replay whose manifest is
// entirely stale — and the Stats must still single-count everything. Each
// instance folds its replay exactly once, each failed request counts once,
// and served+failed covers the trace.
func TestReplacementAccountingSingleCounted(t *testing.T) {
	ms := resSetup(t)
	rec, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, nil, true)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	man := rec.Profile
	if man == nil || len(man.Entries) == 0 {
		t.Fatal("recording produced no profile")
	}
	for i := range man.Entries {
		man.Entries[i].Checksum++ // every replay entry is stale
	}

	plan := faults.Plan{PermanentRate: 0.05}
	plan.Seed = findHostileSeed(t, ms, plan)
	pol := Policy{
		Scheme: core.SchemePaSK,
		FT:     FaultTolerance{MaxRetries: 1, ContinueOnError: true},
		Warmup: map[string]*warmup.Manifest{"res": man},
		Faults: faults.New(plan),
	}
	const n = 12
	trace := PoissonTrace(n, 2*time.Millisecond, 3)
	stats, migrations, err := SpotPreemption(ms, pol, trace, 3)
	if err != nil {
		t.Fatal(err)
	}
	if migrations == 0 {
		t.Fatal("preemption points produced no migrations")
	}
	if got := len(stats.Latencies) + stats.Failed; got != n {
		t.Fatalf("served %d + failed %d != %d requests", len(stats.Latencies), stats.Failed, n)
	}
	if stats.Failed != len(stats.FailedRequests) {
		t.Fatalf("Failed = %d but FailedRequests holds %d entries", stats.Failed, len(stats.FailedRequests))
	}
	// One replay fold per instance: the initial one, one per preemption
	// replacement, one per crash replacement. A double fold would overshoot.
	instances := 1 + migrations + stats.Crashes
	if stats.WarmupReplays != instances {
		t.Fatalf("WarmupReplays = %d, want %d (1 initial + %d migrations + %d crashes)",
			stats.WarmupReplays, instances, migrations, stats.Crashes)
	}
	// Every replay saw the same all-stale manifest; a re-folded prefetcher
	// would double the stale count.
	if want := instances * len(man.Entries); stats.WarmupStale != want {
		t.Fatalf("WarmupStale = %d, want %d", stats.WarmupStale, want)
	}
	if stats.WarmupLoads != 0 {
		t.Fatalf("stale replays must load nothing, got %d", stats.WarmupLoads)
	}
}
