package serving

import (
	"pask/internal/core"
	"pask/internal/trace"

	"time"
)

// BrownoutConfig governs the pressure-adaptive reuse mode: when the request
// queue deepens (or shedding starts), the controller raises the pressure
// level PASK's per-layer decision consults, so layers run on already-loaded
// generic solutions instead of issuing new code-object loads — the paper's
// §III-B reuse trade pushed further while the fleet is drowning, relaxed
// again as the queue drains. The zero value disables brownout.
type BrownoutConfig struct {
	// Enabled turns the controller on.
	Enabled bool
	// EnterDepth is the backlog at which pressure rises to Elevated
	// (default 3).
	EnterDepth int
	// SevereDepth is the backlog at which pressure rises to Severe
	// (default 2×EnterDepth).
	SevereDepth int
	// ExitDepth relaxes pressure one level once the backlog falls to it or
	// below (default EnterDepth/2) — the hysteresis band between ExitDepth
	// and EnterDepth prevents the controller from flapping on every arrival.
	ExitDepth int
	// ShedTrip forces pressure at least one level up whenever this many
	// requests have been shed since the last relax (default 0: depth only).
	ShedTrip int
}

func (c BrownoutConfig) enterDepth() int {
	if c.EnterDepth > 0 {
		return c.EnterDepth
	}
	return 3
}

func (c BrownoutConfig) severeDepth() int {
	if c.SevereDepth > 0 {
		return c.SevereDepth
	}
	return 2 * c.enterDepth()
}

func (c BrownoutConfig) exitDepth() int {
	if c.ExitDepth > 0 {
		return c.ExitDepth
	}
	return c.enterDepth() / 2
}

// brownout implements core.PressureSource over queue-depth and shed
// observations made at the scenarios' dispatch points. Levels rise as far as
// the observation demands immediately, but relax only one level per
// observation below ExitDepth — draining a severe brownout passes through
// elevated first, so the load-avoidance that is emptying the queue is not
// switched off the moment the first gap appears.
type brownout struct {
	cfg   BrownoutConfig
	stats *Stats
	rec   *trace.Recorder

	level core.PressureLevel
	sheds int // sheds since the last relax (drives ShedTrip)
}

func newBrownout(cfg BrownoutConfig, stats *Stats, rec *trace.Recorder) *brownout {
	return &brownout{cfg: cfg, stats: stats, rec: rec}
}

// Pressure implements core.PressureSource.
func (b *brownout) Pressure() core.PressureLevel { return b.level }

// observeDepth folds one backlog observation into the controller.
func (b *brownout) observeDepth(now time.Duration, depth int) {
	target := b.level
	switch {
	case depth >= b.cfg.severeDepth():
		target = core.PressureSevere
	case depth >= b.cfg.enterDepth():
		if target < core.PressureElevated {
			target = core.PressureElevated
		}
	case depth <= b.cfg.exitDepth():
		if target > core.PressureNominal {
			target--
			b.sheds = 0
		}
	}
	if b.cfg.ShedTrip > 0 && b.sheds >= b.cfg.ShedTrip && target < core.PressureElevated {
		target = core.PressureElevated
	}
	b.setLevel(now, target)
}

// observeShed notes a shed request — sustained shedding is pressure even
// when the instantaneous backlog looks shallow.
func (b *brownout) observeShed(now time.Duration) {
	b.sheds++
	if b.cfg.ShedTrip > 0 && b.sheds >= b.cfg.ShedTrip && b.level < core.PressureElevated {
		b.setLevel(now, core.PressureElevated)
	}
}

func (b *brownout) setLevel(now time.Duration, to core.PressureLevel) {
	if to == b.level {
		return
	}
	if b.level == core.PressureNominal && to > core.PressureNominal {
		b.stats.BrownoutEnters++
	}
	b.level = to
	if int(to) > b.stats.PressurePeak {
		b.stats.PressurePeak = int(to)
	}
	b.rec.Count("brownout_pressure", now, float64(to))
	b.rec.Instant("overload", "pressure:"+to.String(), now)
}
