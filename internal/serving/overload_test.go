package serving

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"pask/internal/core"
	"pask/internal/faults"
)

// TestBreakerStateMachine walks the closed→open→half-open→closed cycle with
// explicit virtual times and checks every transition and its accounting.
func TestBreakerStateMachine(t *testing.T) {
	stats := &Stats{}
	cfg := BreakerConfig{Threshold: 3, Cooldown: 2 * time.Millisecond, HalfOpenProbes: 2, Seed: 1}
	b := newBreaker(cfg, "res", stats, nil)
	fail := errors.New("boom")

	if b.state != BreakerClosed {
		t.Fatalf("initial state = %v", b.state)
	}
	// Two failures, a success, two more failures: the success resets the
	// consecutive count, so the breaker must still be closed.
	b.observe(0, fail)
	b.observe(1, fail)
	b.observe(2, nil)
	b.observe(3, fail)
	b.observe(4, fail)
	if b.state != BreakerClosed {
		t.Fatalf("state after interleaved success = %v", b.state)
	}
	// Third consecutive failure trips it.
	b.observe(5, fail)
	if b.state != BreakerOpen {
		t.Fatalf("state after %d consecutive failures = %v", cfg.Threshold, b.state)
	}
	if stats.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d", stats.BreakerTrips)
	}
	if b.allow(5) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	// The cooldown is deterministic: base 2ms (attempt 0) with ±25% jitter.
	cool := b.reopenAt - 5
	if want := expBackoff(2*time.Millisecond, 16*time.Millisecond, 0, 1, "res"); cool != want {
		t.Fatalf("cooldown = %v, want %v", cool, want)
	}
	if cool < 1500*time.Microsecond || cool > 2500*time.Microsecond {
		t.Fatalf("cooldown %v outside the ±25%% jitter band", cool)
	}
	// After the cooldown the next request is a half-open probe.
	if !b.allow(b.reopenAt) {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	if b.state != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v", b.state)
	}
	// One probe success is not enough with HalfOpenProbes=2...
	b.observe(b.reopenAt+1, nil)
	if b.state != BreakerHalfOpen {
		t.Fatalf("state after first probe success = %v", b.state)
	}
	// ...the second closes it.
	b.observe(b.reopenAt+2, nil)
	if b.state != BreakerClosed {
		t.Fatalf("state after probe successes = %v", b.state)
	}
	if stats.BreakerRecoveries != 1 {
		t.Fatalf("BreakerRecoveries = %d", stats.BreakerRecoveries)
	}
}

// TestBreakerHalfOpenFailureBacksOff verifies a failed probe reopens the
// breaker immediately and that repeated trips stretch the cooldown
// exponentially until the cap.
func TestBreakerHalfOpenFailureBacksOff(t *testing.T) {
	stats := &Stats{}
	cfg := BreakerConfig{Threshold: 1, Cooldown: time.Millisecond, MaxCooldown: 4 * time.Millisecond, Seed: 9}
	b := newBreaker(cfg, "m", stats, nil)
	fail := errors.New("boom")

	now := time.Duration(0)
	var cooldowns []time.Duration
	for i := 0; i < 5; i++ {
		b.observe(now, fail) // trips (threshold 1; in half-open any failure)
		if b.state != BreakerOpen {
			t.Fatalf("trip %d: state = %v", i, b.state)
		}
		cooldowns = append(cooldowns, b.reopenAt-now)
		now = b.reopenAt
		if !b.allow(now) || b.state != BreakerHalfOpen {
			t.Fatalf("trip %d: breaker did not half-open", i)
		}
	}
	// Cooldowns grow while uncapped...
	if cooldowns[1] <= cooldowns[0] || cooldowns[2] <= cooldowns[1] {
		t.Fatalf("cooldowns not growing: %v", cooldowns)
	}
	// ...and settle at the cap (±25% jitter of MaxCooldown).
	last := cooldowns[len(cooldowns)-1]
	if last < 3*time.Millisecond || last > 5*time.Millisecond {
		t.Fatalf("capped cooldown %v outside the jittered cap band", last)
	}
	if stats.BreakerTrips != 5 {
		t.Fatalf("BreakerTrips = %d", stats.BreakerTrips)
	}
	// A probe success after all that closes it and resets the streak.
	b.observe(now, nil)
	if b.state != BreakerClosed || b.streak != 0 {
		t.Fatalf("state=%v streak=%d after recovery", b.state, b.streak)
	}
}

// TestExpBackoff pins the deterministic-jitter contract: same inputs, same
// wait; distinct keys desynchronize; the cap holds under jitter on attempt
// growth; zero base disables it.
func TestExpBackoff(t *testing.T) {
	if expBackoff(0, time.Second, 3, 1, "k") != 0 {
		t.Fatal("zero base must yield zero backoff")
	}
	a := expBackoff(time.Millisecond, 8*time.Millisecond, 2, 42, "res")
	b := expBackoff(time.Millisecond, 8*time.Millisecond, 2, 42, "res")
	if a != b {
		t.Fatalf("backoff not deterministic: %v vs %v", a, b)
	}
	if c := expBackoff(time.Millisecond, 8*time.Millisecond, 2, 42, "vgg"); c == a {
		t.Fatal("distinct keys should draw distinct jitter")
	}
	// attempt 2 doubles twice: 4ms ±25%.
	if a < 3*time.Millisecond || a > 5*time.Millisecond {
		t.Fatalf("attempt-2 backoff %v outside [3ms,5ms]", a)
	}
	// Far past the cap the value stays inside the jittered cap band.
	d := expBackoff(time.Millisecond, 8*time.Millisecond, 30, 42, "res")
	if d < 6*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("capped backoff %v outside [6ms,10ms]", d)
	}
}

func TestAdmissionShouldShed(t *testing.T) {
	tr := Trace{{At: 0}, {At: 1 * time.Millisecond}, {At: 2 * time.Millisecond}, {At: 3 * time.Millisecond}, {At: 90 * time.Millisecond}}
	cases := []struct {
		name  string
		adm   AdmissionConfig
		i     int
		now   time.Duration
		shed  bool
		depth int
	}{
		// Depth is reported even with no bounds set — the guard's queue
		// counter and the brownout controller read it.
		{"disabled", AdmissionConfig{}, 0, 50 * time.Millisecond, false, 3},
		// Backlog behind request 0 at t=5ms: requests 1..3 have arrived.
		{"queue under", AdmissionConfig{MaxQueue: 4}, 0, 5 * time.Millisecond, false, 3},
		{"queue at", AdmissionConfig{MaxQueue: 3}, 0, 5 * time.Millisecond, true, 3},
		// Request 4 hasn't arrived by 5ms, so it never counts.
		{"future excluded", AdmissionConfig{MaxQueue: 4}, 0, 5 * time.Millisecond, false, 3},
		// Staleness: request 0 admitted late.
		{"deadline ok", AdmissionConfig{QueueDeadline: 60 * time.Millisecond}, 0, 50 * time.Millisecond, false, 3},
		{"deadline over", AdmissionConfig{QueueDeadline: 40 * time.Millisecond}, 0, 50 * time.Millisecond, true, 3},
	}
	for _, c := range cases {
		shed, depth := c.adm.shouldShed(tr, c.i, c.now)
		if shed != c.shed || depth != c.depth {
			t.Errorf("%s: shouldShed = (%v,%d), want (%v,%d)", c.name, shed, depth, c.shed, c.depth)
		}
	}
}

func TestApplyFlood(t *testing.T) {
	base := Trace{{At: 0}, {At: 10 * time.Millisecond}}
	out := ApplyFlood(base, faults.Plan{FloodN: 3, FloodAt: 4 * time.Millisecond, FloodGap: time.Millisecond})
	if len(out) != 5 {
		t.Fatalf("flooded trace length %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].At < out[i-1].At {
			t.Fatalf("flooded trace not time-sorted: %v", out)
		}
	}
	// The three flood arrivals land at 4,5,6ms between the base requests.
	var floodAts []time.Duration
	for _, r := range out {
		if r.At >= 4*time.Millisecond && r.At <= 6*time.Millisecond {
			floodAts = append(floodAts, r.At)
		}
	}
	if len(floodAts) != 3 {
		t.Fatalf("flood arrivals = %v", floodAts)
	}
	// No flood in the plan: the trace passes through untouched.
	if same := ApplyFlood(base, faults.Plan{}); len(same) != len(base) {
		t.Fatalf("plan without flood changed the trace: %d requests", len(same))
	}
}

// TestBrownoutHysteresis drives the controller through rise and relax and
// checks the one-level-per-observation drain plus the shed trip.
func TestBrownoutHysteresis(t *testing.T) {
	stats := &Stats{}
	b := newBrownout(BrownoutConfig{Enabled: true, EnterDepth: 3, SevereDepth: 6, ExitDepth: 1}, stats, nil)

	b.observeDepth(0, 2) // below enter, above exit: no change
	if b.Pressure() != core.PressureNominal {
		t.Fatalf("pressure at depth 2 = %v", b.Pressure())
	}
	b.observeDepth(1, 3)
	if b.Pressure() != core.PressureElevated {
		t.Fatalf("pressure at enter depth = %v", b.Pressure())
	}
	b.observeDepth(2, 9)
	if b.Pressure() != core.PressureSevere {
		t.Fatalf("pressure at severe depth = %v", b.Pressure())
	}
	// In the hysteresis band nothing moves.
	b.observeDepth(3, 2)
	if b.Pressure() != core.PressureSevere {
		t.Fatalf("pressure inside hysteresis band = %v", b.Pressure())
	}
	// At or below exit depth: one level per observation, not a cliff.
	b.observeDepth(4, 1)
	if b.Pressure() != core.PressureElevated {
		t.Fatalf("first relax = %v", b.Pressure())
	}
	b.observeDepth(5, 0)
	if b.Pressure() != core.PressureNominal {
		t.Fatalf("second relax = %v", b.Pressure())
	}
	if stats.BrownoutEnters != 1 || stats.PressurePeak != int(core.PressureSevere) {
		t.Fatalf("enters=%d peak=%d", stats.BrownoutEnters, stats.PressurePeak)
	}

	// Sustained shedding raises pressure even with a shallow queue.
	sh := newBrownout(BrownoutConfig{Enabled: true, ShedTrip: 2}, stats, nil)
	sh.observeShed(6)
	if sh.Pressure() != core.PressureNominal {
		t.Fatalf("pressure after one shed = %v", sh.Pressure())
	}
	sh.observeShed(7)
	if sh.Pressure() != core.PressureElevated {
		t.Fatalf("pressure after shed trip = %v", sh.Pressure())
	}
}

// TestServeTraceSheddingInvariant floods a single instance beyond a tight
// queue bound and checks the accounting identity: every request is exactly
// one of served, failed, shed or breaker-rejected.
func TestServeTraceSheddingInvariant(t *testing.T) {
	ms := resSetup(t)
	pol := Policy{
		Scheme:    core.SchemePaSK,
		FT:        FaultTolerance{ContinueOnError: true},
		Admission: AdmissionConfig{MaxQueue: 2},
	}
	const n = 16
	stats, err := ServeTrace(ms, pol, BurstTrace(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shed == 0 {
		t.Fatal("a 16-request burst against MaxQueue=2 must shed")
	}
	got := len(stats.Latencies) + stats.Failed + stats.Shed + stats.BreakerRejected + stats.Evacuated
	if got != n {
		t.Fatalf("served+failed+shed+rejected+evacuated = %d, want %d (served=%d failed=%d shed=%d rejected=%d evacuated=%d)",
			got, n, len(stats.Latencies), stats.Failed, stats.Shed, stats.BreakerRejected, stats.Evacuated)
	}
	for idx, ferr := range stats.FailedRequests {
		if !errors.Is(ferr, ErrShed) {
			t.Fatalf("request %d: %v is not ErrShed", idx, ferr)
		}
	}
	// Drop-head: the shed requests are the oldest waiters, so the tail of
	// the burst (the newest arrivals) is what got served.
	if _, shedLast := stats.FailedRequests[n-1]; shedLast {
		t.Fatal("drop-head admission shed the newest arrival")
	}
}

// TestFleetOverloadInvariant runs the protected fleet on a burst and checks
// the same identity under breakers and brownout.
func TestFleetOverloadInvariant(t *testing.T) {
	ms := resSetup(t)
	pol := Policy{
		Scheme:    core.SchemePaSK,
		FT:        FaultTolerance{ContinueOnError: true},
		Admission: AdmissionConfig{QueueDeadline: 150 * time.Millisecond},
		Breaker:   BreakerConfig{Threshold: 3},
		Brownout:  BrownoutConfig{Enabled: true},
	}
	const n = 24
	stats, err := ServeFleet(ms, FleetConfig{Policy: pol, MaxInstances: 2}, BurstTrace(n))
	if err != nil {
		t.Fatal(err)
	}
	got := len(stats.Latencies) + stats.Failed + stats.Shed + stats.BreakerRejected + stats.Evacuated
	if got != n {
		t.Fatalf("served+failed+shed+rejected+evacuated = %d, want %d", got, n)
	}
	if stats.Shed == 0 {
		t.Fatal("deadline admission must shed under a 24-request burst on 2 instances")
	}
	if stats.PressurePeak == 0 {
		t.Fatal("brownout never raised pressure under a saturating burst")
	}
	if stats.PressureReuse == 0 {
		t.Fatal("severe pressure produced no forced reuse on cold starts")
	}
}

// TestOverloadDeterministic runs the quick experiment twice and requires
// byte-identical bench JSON — the acceptance bar for reproducibility.
func TestOverloadDeterministic(t *testing.T) {
	_, b1, err := Overload(OverloadConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	_, b2, err := Overload(OverloadConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(b1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(b2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("overload bench JSON differs across identical runs")
	}
}

// TestOverloadAcceptance runs the full experiment and checks the headline
// claims on every device profile: on the burst trace the brownout arm beats
// the unprotected arm on both p99 and loss rate, and on the Poisson trace
// the protected arms' breakers both trip and recover.
func TestOverloadAcceptance(t *testing.T) {
	_, bench, err := Overload(OverloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range bench.Devices {
		cells := make(map[string]OverloadCell)
		for _, c := range dev.Cells {
			cells[c.Trace+"/"+c.Arm] = c
		}
		none, brown := cells["burst/none"], cells["burst/brownout"]
		if brown.P99Ms >= none.P99Ms {
			t.Errorf("%s burst: brownout p99 %.2fms not below none %.2fms", dev.Device, brown.P99Ms, none.P99Ms)
		}
		if brown.LossRate >= none.LossRate {
			t.Errorf("%s burst: brownout loss %.2f not below none %.2f", dev.Device, brown.LossRate, none.LossRate)
		}
		if brown.PressureReuse == 0 {
			t.Errorf("%s burst: brownout arm recorded no pressure-forced reuse", dev.Device)
		}
		if brown.ModuleLoads >= none.ModuleLoads {
			t.Errorf("%s burst: brownout loads %d not below none %d", dev.Device, brown.ModuleLoads, none.ModuleLoads)
		}
		for _, arm := range []string{"shed", "brownout"} {
			c := cells["poisson/"+arm]
			if c.BreakerTrips == 0 || c.BreakerRecoveries == 0 {
				t.Errorf("%s poisson/%s: trips=%d recoveries=%d, want both > 0", dev.Device, arm, c.BreakerTrips, c.BreakerRecoveries)
			}
			if c.BreakerRejected == 0 {
				t.Errorf("%s poisson/%s: open breaker rejected nothing", dev.Device, arm)
			}
		}
		// Each cell's accounting identity.
		for key, c := range cells {
			if got := c.Served + c.Failed + c.Shed + c.BreakerRejected; got != c.Requests {
				t.Errorf("%s %s: served+failed+shed+rejected = %d, want %d", dev.Device, key, got, c.Requests)
			}
		}
	}
}
