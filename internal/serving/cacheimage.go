package serving

import (
	"fmt"
	"math"
	"os"
	"time"

	"pask/internal/cacheimg"
	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/sim"
	"pask/internal/trace"
	"pask/internal/warmup"
)

// TransferModel is the virtual-time cost of pulling one cache image to a
// node: a fixed per-pull setup latency plus the payload at a sustained
// bandwidth. The zero value gets registry-ish defaults (400µs setup,
// 1 GiB/s).
type TransferModel struct {
	Latency     time.Duration
	BytesPerSec float64
}

func (tm TransferModel) filled() TransferModel {
	if tm.Latency <= 0 {
		tm.Latency = 400 * time.Microsecond
	}
	if tm.BytesPerSec <= 0 {
		tm.BytesPerSec = float64(1 << 30)
	}
	return tm
}

// duration returns the virtual time one pull of `bytes` payload takes.
func (tm TransferModel) duration(bytes int64) time.Duration {
	tm = tm.filled()
	return tm.Latency + time.Duration(float64(bytes)/tm.BytesPerSec*float64(time.Second))
}

// CacheImageConfig parameterizes the cache-image distribution experiment.
type CacheImageConfig struct {
	Model string // zoo abbreviation (default "res"; quick "alex")
	Batch int    // default 1
	// Nodes is the fleet sizes to sweep (default [4, 8]).
	Nodes []int
	// Coverages is the fraction of each fleet pre-seeded with the image
	// (default [0, 0.5, 1]). Coverage 0 is the all-cold baseline.
	Coverages []float64
	// MaxPullAttempts bounds per-node transfer attempts (truncated pulls
	// retry with the fleet's capped-jitter backoff) before the node
	// abandons seeding and serves cold (default 3).
	MaxPullAttempts int
	// Transfer models the pull cost.
	Transfer TransferModel
	// ChaosCorrupt / ChaosTruncate / ChaosKill are the chaos arm's fault
	// rates: per-pull corruption, per-attempt truncation, per-node death
	// (defaults 0.35 / 0.35 / 0.25). The sweep cells run fault-free.
	ChaosCorrupt  float64
	ChaosTruncate float64
	ChaosKill     float64
	// Seed drives the fault streams and backoff jitter.
	Seed int64
	// Rec, when set, captures the first device's chaos-arm attach/reject
	// counters on the timeline.
	Rec *trace.Recorder
	// Quick shrinks the sweep for CI smoke runs.
	Quick bool
}

func (c *CacheImageConfig) fill() {
	if c.Quick && c.Model == "" {
		c.Model = "alex"
	}
	if c.Model == "" {
		c.Model = "res"
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if len(c.Nodes) == 0 {
		c.Nodes = []int{4, 8}
	}
	if len(c.Coverages) == 0 {
		c.Coverages = []float64{0, 0.5, 1}
	}
	if c.MaxPullAttempts <= 0 {
		c.MaxPullAttempts = 3
	}
	if c.ChaosCorrupt <= 0 {
		c.ChaosCorrupt = 0.35
	}
	if c.ChaosTruncate <= 0 {
		c.ChaosTruncate = 0.35
	}
	if c.ChaosKill <= 0 {
		c.ChaosKill = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 13
	}
	if c.Quick {
		c.Nodes = []int{3}
		c.Coverages = []float64{0, 1}
	}
}

// Filled returns the config with all defaults applied.
func (c CacheImageConfig) Filled() CacheImageConfig {
	c.fill()
	return c
}

// CacheImageCell is one (device, fleet size, coverage) measurement.
type CacheImageCell struct {
	Nodes    int     `json:"nodes"`
	Coverage float64 `json:"coverage"`
	// Seeded nodes were targeted by the distributor; Attached ones ended up
	// serving from a validated image. The difference is the degradation the
	// chaos arm measures: every non-attached node served cold, correctly.
	Seeded   int `json:"seeded"`
	Attached int `json:"attached"`
	// Pull-side fault accounting.
	PullRetries int `json:"pull_retries"`
	PullCorrupt int `json:"pull_corrupt"`
	NodesKilled int `json:"nodes_killed"`
	// Attach-side validation-ladder accounting, summed over node stores.
	Quarantined     int `json:"quarantined"`
	RejectedProfile int `json:"rejected_profile"`
	StaleRejects    int `json:"stale_rejects"`
	// Serve outcomes. WarmMeanMs averages attached nodes' first-request
	// TTFI, ColdMeanMs the rest; Speedup is cold/warm when both exist.
	Served     int     `json:"served"`
	Failed     int     `json:"failed"`
	WarmMeanMs float64 `json:"warm_mean_ms,omitempty"`
	ColdMeanMs float64 `json:"cold_mean_ms,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
	// StoreUntouched asserts the shared code-object store's fingerprint
	// survived the cell unchanged — distribution faults never write back.
	StoreUntouched bool `json:"store_untouched"`
}

// CacheImageDeviceResult groups one device profile's cells.
type CacheImageDeviceResult struct {
	Device     string           `json:"device"`
	ImageID    string           `json:"image_id"`
	ImageBytes int              `json:"image_bytes"`
	Objects    int              `json:"objects"`
	RecordMs   float64          `json:"record_ms"` // the one cold run that paid for the image
	Cells      []CacheImageCell `json:"cells"`
	Chaos      *CacheImageCell  `json:"chaos"`
}

// CacheImageBench is the machine-readable result emitted as
// BENCH_cacheimage.json.
type CacheImageBench struct {
	Experiment string                   `json:"experiment"`
	Model      string                   `json:"model"`
	Batch      int                      `json:"batch"`
	Seed       int64                    `json:"seed"`
	Devices    []CacheImageDeviceResult `json:"devices"`
}

// cacheImageFleet is the per-cell distribution state shared by node procs.
type cacheImageFleet struct {
	cfg     CacheImageConfig
	ms      *experiments.ModelSetup
	img     *cacheimg.Image
	raw     []byte
	id      string
	inj     *faults.Injector
	baseDir string
	// rec is cfg.Rec on the first device only (the overload experiment's
	// convention): one device's chaos arm lands on the timeline.
	rec *trace.Recorder
}

// nodeResult is one node's distribution + first-serve outcome.
type nodeResult struct {
	attached bool
	lat      time.Duration
	err      error
	store    *cacheimg.Store
	retries  int
	killed   bool
	corrupt  bool
}

// pull distributes the image to one node over the transfer model,
// consulting the fault injector per attempt: truncated transfers retry
// with the fleet's capped-jitter backoff (expBackoff — the same policy
// request retries and breaker cooldowns use), a killed node abandons
// distribution entirely, and a corrupt transfer lands damaged bytes under
// the advertised ID (atomically — torn writes are the store's problem,
// corruption the attach ladder's). Returns whether any bytes landed.
func (f *cacheImageFleet) pull(p *sim.Proc, node string, res *nodeResult) bool {
	for attempt := 0; attempt < f.cfg.MaxPullAttempts; attempt++ {
		p.Sleep(f.cfg.Transfer.duration(int64(len(f.raw))))
		switch f.inj.PullFault(node, attempt) {
		case faults.PullKilled:
			res.killed = true
			return false
		case faults.PullTruncated:
			res.retries++
			p.Sleep(expBackoff(500*time.Microsecond, 4*time.Millisecond, attempt, f.cfg.Seed, node))
			continue
		case faults.PullCorrupt:
			res.corrupt = true
			bad := make([]byte, len(f.raw))
			copy(bad, f.raw)
			bad[len(bad)/2] ^= 0x01
			res.err = res.store.PublishBytes(f.id, bad)
			return res.err == nil
		default:
			res.err = res.store.PublishBytes(f.id, f.raw)
			return res.err == nil
		}
	}
	return false
}

// runCell distributes the image to `seeded` of `nodes` nodes and serves one
// request per node. decoys, when true (chaos arm), additionally plants a
// wrong-device image on node 0 and a stale-fingerprint image on node 1 —
// both structurally valid, so they exercise the typed-reject rungs of the
// attach ladder rather than quarantine.
func (f *cacheImageFleet) runCell(nodes int, coverage float64, decoys bool) (CacheImageCell, error) {
	cell := CacheImageCell{Nodes: nodes, Coverage: coverage}
	cell.Seeded = int(math.Round(coverage * float64(nodes)))
	fpBefore := f.ms.Store.Fingerprint()

	env := sim.NewEnv()
	results := make([]nodeResult, nodes)
	for i := 0; i < nodes; i++ {
		dir, err := os.MkdirTemp(f.baseDir, "node-*")
		if err != nil {
			return cell, fmt.Errorf("serving: cacheimage node dir: %w", err)
		}
		store, err := cacheimg.Open(dir)
		if err != nil {
			return cell, err
		}
		results[i].store = store
	}
	if decoys && nodes >= 2 {
		if err := f.plantDecoys(results[0].store, results[1].store); err != nil {
			return cell, err
		}
	}

	for i := 0; i < nodes; i++ {
		i := i
		node := fmt.Sprintf("node-%d-of-%d", i, nodes)
		env.Spawn(node, func(p *sim.Proc) {
			res := &results[i]
			landed := false
			if i < cell.Seeded && !(decoys && i < 2) {
				landed = f.pull(p, node, res)
			}
			pol := Policy{Scheme: core.SchemePaSK, Rec: f.rec}
			if landed || (decoys && i < 2) {
				if att, err := res.store.Attach(f.ms.Spec.Abbr, f.ms.Profile, f.ms.Store.Fingerprint()); err == nil {
					res.attached = true
					pol.Warmup = map[string]*warmup.Manifest{f.ms.Spec.Abbr: att.Image.Manifest}
				}
			}
			// TTFI is measured from instance creation: process bring-up is
			// included, because that is the window manifest replay overlaps
			// (the same clock WarmupRun.TTFI uses, unlike Serve's internal
			// latency, which starts after context init).
			t0 := p.Now()
			srv := newFTServer(env, f.ms, pol, &Stats{})
			defer srv.close()
			_, res.err = srv.serve(p, i)
			res.lat = p.Now() - t0
		})
	}
	if err := env.Run(); err != nil {
		return cell, err
	}

	var warmSum, coldSum time.Duration
	var warmN, coldN int
	for i := range results {
		res := &results[i]
		st := res.store.Stats()
		cell.Quarantined += st.Quarantined
		cell.RejectedProfile += st.RejectedProfile
		cell.StaleRejects += st.Stale
		cell.PullRetries += res.retries
		if res.killed {
			cell.NodesKilled++
		}
		if res.corrupt {
			cell.PullCorrupt++
		}
		if res.attached {
			cell.Attached++
		}
		if res.err != nil {
			cell.Failed++
			continue
		}
		cell.Served++
		if res.attached {
			warmSum += res.lat
			warmN++
		} else {
			coldSum += res.lat
			coldN++
		}
	}
	msOf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if warmN > 0 {
		cell.WarmMeanMs = msOf(warmSum / time.Duration(warmN))
	}
	if coldN > 0 {
		cell.ColdMeanMs = msOf(coldSum / time.Duration(coldN))
	}
	if warmN > 0 && coldN > 0 && cell.WarmMeanMs > 0 {
		cell.Speedup = cell.ColdMeanMs / cell.WarmMeanMs
	}
	cell.StoreUntouched = f.ms.Store.Fingerprint() == fpBefore
	if decoys && f.rec != nil {
		emitCounters(f.rec, env.Now(), cell)
	}
	return cell, nil
}

// plantDecoys publishes two structurally valid but unattachable images:
// one built for a different device profile, one sealed against a different
// store fingerprint. Their targets never receive the real image, so their
// attaches must walk the typed-reject rungs and serve cold.
func (f *cacheImageFleet) plantDecoys(profileStore, staleStore *cacheimg.Store) error {
	wrong := *f.img
	for _, prof := range device.Profiles() {
		if prof.Name != f.ms.Profile.Name {
			wrong.Device, wrong.Arch = prof.Name, prof.Arch
			break
		}
	}
	if _, err := profileStore.Publish(&wrong); err != nil {
		return err
	}
	stale := *f.img
	stale.StoreFingerprint++
	if _, err := staleStore.Publish(&stale); err != nil {
		return err
	}
	return nil
}

// emitCounters lands the chaos arm's distribution and validation counters
// on the timeline so rejects and quarantines are observable (they also
// surface as pask_cacheimg_* in /metrics through the same recorder).
func emitCounters(rec *trace.Recorder, at time.Duration, cell CacheImageCell) {
	rec.Count("cacheimg_attach_ok", at, float64(cell.Attached))
	rec.Count("cacheimg_quarantined", at, float64(cell.Quarantined))
	rec.Count("cacheimg_reject_profile", at, float64(cell.RejectedProfile))
	rec.Count("cacheimg_reject_stale", at, float64(cell.StaleRejects))
	rec.Count("cacheimg_pull_retries", at, float64(cell.PullRetries))
	rec.Count("cacheimg_pull_corrupt", at, float64(cell.PullCorrupt))
	rec.Count("cacheimg_nodes_killed", at, float64(cell.NodesKilled))
}

// CacheImage runs the cache-image distribution experiment: on every device
// profile, one recorded cold run is sealed into a content-addressed image,
// a seeder distributes it to N-node fleets at varying coverage over the
// transfer model, and every node serves its first request — attached nodes
// replay the image's manifest, the rest start cold. A chaos arm then
// re-runs the largest fleet at full coverage under corruption, truncation
// and node-death injection plus two planted decoy images, proving every
// failure mode degrades to a correct cold start (zero failed requests,
// shared store untouched) with the rejections counted.
func CacheImage(cfg CacheImageConfig) (*experiments.Table, *CacheImageBench, error) {
	cfg.fill()
	table := &experiments.Table{
		ID: "CacheImage",
		Title: fmt.Sprintf("cache-image distribution: %s b%d, fleets %v, coverage %v",
			cfg.Model, cfg.Batch, cfg.Nodes, cfg.Coverages),
		Headers: []string{"device", "arm", "nodes", "cover", "seeded", "attached",
			"warm_ms", "cold_ms", "speedup", "retries", "quar", "rejects", "killed", "failed"},
		Notes: []string{
			"warm_ms averages first-request TTFI on nodes serving from a validated image; cold_ms the rest",
			"chaos arm injects pull corruption/truncation/node death + planted decoy images; failed must stay 0",
			fmt.Sprintf("seed=%d; the bench JSON is byte-identical across runs", cfg.Seed),
		},
	}
	bench := &CacheImageBench{Experiment: "cacheimage", Model: cfg.Model, Batch: cfg.Batch, Seed: cfg.Seed}

	baseDir, err := os.MkdirTemp("", "pask-cacheimage-*")
	if err != nil {
		return nil, nil, fmt.Errorf("serving: cacheimage workdir: %w", err)
	}
	defer os.RemoveAll(baseDir)

	for devIdx, prof := range device.Profiles() {
		ms, err := experiments.PrepareModel(cfg.Model, cfg.Batch, prof)
		if err != nil {
			return nil, nil, err
		}
		img, wr, err := ms.BuildCacheImage()
		if err != nil {
			return nil, nil, fmt.Errorf("cacheimage %s: %w", prof.Name, err)
		}
		raw, err := img.Encode()
		if err != nil {
			return nil, nil, err
		}
		dr := CacheImageDeviceResult{
			Device: prof.Name, ImageID: cacheimg.ID(raw), ImageBytes: len(raw),
			Objects:  len(img.Objects),
			RecordMs: float64(wr.TTFI) / float64(time.Millisecond),
		}
		fleet := &cacheImageFleet{cfg: cfg, ms: ms, img: img, raw: raw, id: dr.ImageID, baseDir: baseDir}
		if devIdx == 0 {
			fleet.rec = cfg.Rec
		}

		row := func(arm string, cell CacheImageCell) {
			table.Rows = append(table.Rows, []string{
				prof.Name, arm, fmt.Sprintf("%d", cell.Nodes), fmt.Sprintf("%.0f%%", 100*cell.Coverage),
				fmt.Sprintf("%d", cell.Seeded), fmt.Sprintf("%d", cell.Attached),
				fmt.Sprintf("%.2f", cell.WarmMeanMs), fmt.Sprintf("%.2f", cell.ColdMeanMs),
				fmt.Sprintf("%.2f", cell.Speedup), fmt.Sprintf("%d", cell.PullRetries),
				fmt.Sprintf("%d", cell.Quarantined), fmt.Sprintf("%d", cell.RejectedProfile+cell.StaleRejects),
				fmt.Sprintf("%d", cell.NodesKilled), fmt.Sprintf("%d", cell.Failed),
			})
		}

		// Sweep cells run distribution fault-free: coverage is the variable.
		fleet.inj = faults.New(faults.Plan{Seed: cfg.Seed})
		for _, nodes := range cfg.Nodes {
			for _, cov := range cfg.Coverages {
				cell, err := fleet.runCell(nodes, cov, false)
				if err != nil {
					return nil, nil, fmt.Errorf("cacheimage %s n=%d c=%.2f: %w", prof.Name, nodes, cov, err)
				}
				dr.Cells = append(dr.Cells, cell)
				row("sweep", cell)
			}
		}

		// Chaos arm: largest fleet, full coverage, the full fault menu.
		fleet.inj = faults.New(faults.Plan{
			Seed:            cfg.Seed,
			ImgCorruptRate:  cfg.ChaosCorrupt,
			ImgTruncateRate: cfg.ChaosTruncate,
			NodeKillRate:    cfg.ChaosKill,
		})
		chaosNodes := cfg.Nodes[len(cfg.Nodes)-1]
		chaos, err := fleet.runCell(chaosNodes, 1, true)
		if err != nil {
			return nil, nil, fmt.Errorf("cacheimage %s chaos: %w", prof.Name, err)
		}
		dr.Chaos = &chaos
		row("chaos", chaos)
		bench.Devices = append(bench.Devices, dr)
	}
	return table, bench, nil
}
