package serving

import (
	"testing"

	"pask/internal/trace"
)

// TestPredictiveBeatsReplay is the experiment's headline claim: under a
// shifting Zipfian trace (popularity re-ranked mid-run, flash crowd on the
// new head model), online prediction beats replaying a prior run's profile
// on BOTH prefetch hit rate and mean time-to-first-inference, on every
// device profile — and wasted prefetches are tracked, not hidden.
func TestPredictiveBeatsReplay(t *testing.T) {
	rec := trace.New()
	tbl, bench, err := Predictive(PredictiveConfig{Quick: true, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(bench.Devices) != 3 {
		t.Fatalf("want 3 devices, got %d", len(bench.Devices))
	}
	for _, dev := range bench.Devices {
		cells := make(map[string]PredictiveCell, len(dev.Cells))
		for _, c := range dev.Cells {
			cells[c.Arm] = c
		}
		cold, replay, pred := cells[PredArmCold], cells[PredArmReplay], cells[PredArmPredictive]
		for arm, c := range cells {
			if c.Failed != 0 {
				t.Errorf("%s/%s: %d failed serves", dev.Device, arm, c.Failed)
			}
			if c.Served == 0 {
				t.Errorf("%s/%s: nothing served", dev.Device, arm)
			}
		}
		// The cold arm never prefetches: all demand loads are misses.
		if cold.PrefetchHits != 0 || cold.PrefetchMisses == 0 {
			t.Errorf("%s/cold: hits=%d misses=%d, want 0 hits and some misses",
				dev.Device, cold.PrefetchHits, cold.PrefetchMisses)
		}
		// Replay prefetches the stale pre-shift profile: it must both hit
		// (the old ranking is right before the shift) and waste (wrong after).
		if replay.PrefetchHits == 0 || replay.PrefetchWasted == 0 {
			t.Errorf("%s/replay: hits=%d wasted=%d, want both nonzero",
				dev.Device, replay.PrefetchHits, replay.PrefetchWasted)
		}
		// Headline: predictive beats replay on hit rate AND mean TTFI.
		if pred.HitRate <= replay.HitRate {
			t.Errorf("%s: predictive hit rate %.3f <= replay %.3f",
				dev.Device, pred.HitRate, replay.HitRate)
		}
		if pred.MeanTTFIMs >= replay.MeanTTFIMs {
			t.Errorf("%s: predictive mean TTFI %.3fms >= replay %.3fms",
				dev.Device, pred.MeanTTFIMs, replay.MeanTTFIMs)
		}
		// Predictive must beat the no-prefetch baseline outright. Replay is
		// NOT asserted against cold: with a stale profile its wasted loads
		// compete with demand for the driver lock, and on slow-load devices
		// that can be net-negative — which is the point of being selective.
		if pred.MeanTTFIMs >= cold.MeanTTFIMs {
			t.Errorf("%s: predictive mean TTFI %.3fms >= cold %.3fms",
				dev.Device, pred.MeanTTFIMs, cold.MeanTTFIMs)
		}
		if pred.Nodes == 0 || pred.Prewarmed == 0 {
			t.Errorf("%s: predictive spawned %d nodes, %d prewarmed; want prewarming to fire",
				dev.Device, pred.Nodes, pred.Prewarmed)
		}
	}
	t.Logf("table:\n%s", tbl.String())

	// Wasted prefetches must surface on the shared counter series.
	found := false
	for _, c := range rec.Counters() {
		if c.Name == "warmup_prefetch_wasted" {
			found = true
		}
	}
	if !found {
		t.Error("warmup_prefetch_wasted counter not emitted on the trace")
	}
}

// TestPredictiveDeterministic pins seeded reproducibility: two runs with
// the same config produce identical cells.
func TestPredictiveDeterministic(t *testing.T) {
	cfg := PredictiveConfig{Quick: true, Seed: 99}
	_, a, err := Predictive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Predictive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, dev := range a.Devices {
		for j, cell := range dev.Cells {
			if cell != b.Devices[i].Cells[j] {
				t.Fatalf("%s/%s differs across runs:\n  %+v\n  %+v",
					dev.Device, cell.Arm, cell, b.Devices[i].Cells[j])
			}
		}
	}
}
