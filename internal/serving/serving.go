// Package serving models the deployment scenarios that make DNN cold start
// unavoidable (paper §I): serverless scale-out, preemptible spot instances
// and resource-constrained edge devices. An Instance is one warm process
// serving inference requests for a model; a Fleet manages instances under a
// keep-alive policy and routes a request trace to them, spawning cold
// instances on demand.
//
// Paper anchor: the §I deployment scenarios (serverless, spot, edge) that make cold start unavoidable.
package serving

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"time"

	"pask/internal/core"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/metrics"
	"pask/internal/sim"
	"pask/internal/trace"
	"pask/internal/warmup"
)

// ErrDeadlineExceeded marks a request whose service time overran the
// policy's per-request deadline. The work completed, just too late to be
// useful to the caller.
var ErrDeadlineExceeded = errors.New("serving: request deadline exceeded")

// ErrInstanceCrashed marks a request that exhausted its retries on one
// instance; the instance was torn down and replaced. The wrapped cause is
// the last serve error observed before the teardown.
var ErrInstanceCrashed = errors.New("serving: instance crashed")

// Policy configures how instances execute requests.
type Policy struct {
	// Scheme is the cold-start execution strategy.
	Scheme core.Scheme
	// Options passes the PASK §VI extensions through.
	Options core.Options
	// BackgroundLoad uses idle gaps between requests to load previously
	// skipped solutions (paper §VI).
	BackgroundLoad bool
	// FT bounds per-request fault tolerance (deadline, retries, crash
	// recovery). The zero value keeps the historical fail-fast behavior.
	FT FaultTolerance
	// Faults, when set, injects the plan's faults into every instance this
	// policy creates: store-read faults, module-load latency spikes and the
	// device reset. Scenario entry points install the store hook and the
	// find-path outage set for the duration of the run.
	Faults *faults.Injector
	// Rec, when set, records one span per request (track "serving", or
	// "serving:<tenant>" on shared GPUs) with model / index / cold / error
	// attributes, plus every instance's pipeline activity. All recorder
	// methods are nil-safe.
	Rec *trace.Recorder
	// Warmup maps model abbreviations to recorded load profiles. Every
	// instance spawned for a mapped model — including crash-recovery
	// replacements — starts a prefetcher thread replaying the manifest, so
	// its first request finds modules resident. Stale or partial manifests
	// degrade the instance to a plain cold start; they never fail it.
	Warmup map[string]*warmup.Manifest
	// Admission bounds the request queue in front of the instances; excess
	// load is shed with ErrShed. The zero value admits everything.
	Admission AdmissionConfig
	// Breaker trips a per-model circuit breaker on consecutive request
	// failures; requests arriving while it is open are rejected with
	// ErrBreakerOpen. The zero value disables breakers.
	Breaker BreakerConfig
	// Brownout raises PASK's reuse aggressiveness (core pressure signal)
	// when the queue deepens, so layers run on already-loaded generic
	// solutions instead of issuing new loads. Zero value disables it.
	Brownout BrownoutConfig
	// SLO is the end-to-end latency objective (queueing + service): served
	// requests slower than it count in Stats.SLOMisses but stay in the
	// latency distribution. 0 means no objective.
	SLO time.Duration
}

// FaultTolerance is the degradation contract a serving scenario applies per
// request: an optional latency deadline, bounded same-instance retries with
// doubling backoff, and — once retries are exhausted — crash recovery that
// tears the instance down and retries once on a fresh process (the same
// machinery spot preemption uses). The zero value disables all of it.
type FaultTolerance struct {
	// Deadline fails a request with ErrDeadlineExceeded when its service
	// time exceeds it. Zero means no deadline.
	Deadline time.Duration
	// MaxRetries re-runs a failed request on the same instance up to this
	// many extra times before declaring the instance crashed.
	MaxRetries int
	// RetryBackoff is the virtual-time wait before the first retry, growing
	// exponentially per attempt (default 500µs).
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential retry backoff (default 4×RetryBackoff
	// — the historical cap).
	MaxBackoff time.Duration
	// BackoffSeed selects the deterministic jitter stream applied to every
	// backoff step: waits get a seeded ±25% perturbation so co-failing
	// servers do not retry in lockstep, while identical configurations
	// still replay identical virtual-time schedules.
	BackoffSeed int64
	// ContinueOnError records failed requests in Stats.FailedRequests and
	// keeps serving the rest of the trace instead of aborting it.
	ContinueOnError bool
}

func (ft FaultTolerance) enabled() bool {
	return ft.Deadline > 0 || ft.MaxRetries > 0 || ft.ContinueOnError
}

func (ft FaultTolerance) backoff() time.Duration {
	if ft.RetryBackoff > 0 {
		return ft.RetryBackoff
	}
	return 500 * time.Microsecond
}

func (ft FaultTolerance) maxBackoff() time.Duration {
	if ft.MaxBackoff > 0 {
		return ft.MaxBackoff
	}
	return 4 * ft.backoff()
}

// backoffFor returns the wait before retry attempt (0-based): capped
// exponential growth from RetryBackoff with deterministic seeded jitter.
// The circuit breakers reuse the same policy (expBackoff) for their
// open→half-open cooldowns.
func (ft FaultTolerance) backoffFor(attempt int, key string) time.Duration {
	return expBackoff(ft.backoff(), ft.maxBackoff(), attempt, ft.BackoffSeed, key)
}

// Instance is one process serving one model. The first request on a fresh
// (or evicted) instance is a cold start; later requests reuse the warm
// state.
type Instance struct {
	ms     *experiments.ModelSetup
	pr     *experiments.Process
	policy Policy

	// host and tenant are set for instances attached to a shared GPU
	// (NewTenantInstance): the process is a refcounted view of the host's
	// runtime and the cache a tenant view of the host's shared cache.
	host   *GPUHost
	tenant string

	cache       core.Cache
	initialized bool
	served      int
	skipped     []SkippedLoad
	lastResult  *core.Result

	// prefetch replays the policy's warmup manifest for this model, when
	// one is configured. It runs concurrently with (and usually completes
	// before) the first request's cold path.
	prefetch *warmup.Prefetcher
}

// SkippedLoad records one avoided solution load for background loading.
type SkippedLoad struct {
	Key string
}

// NewInstance creates a cold instance inside env. A policy with a fault
// injector wires it into the new process's runtime (load-latency spikes)
// and arms the plan's device reset against the first instance created.
func NewInstance(env *sim.Env, ms *experiments.ModelSetup, policy Policy) *Instance {
	in := &Instance{ms: ms, pr: ms.NewProcessIn(env), policy: policy}
	if policy.Faults != nil {
		in.pr.RT.SetLoadFaults(policy.Faults)
		policy.Faults.ArmReset(env, in.pr.RT.UnloadAll)
	}
	if policy.Rec != nil {
		in.pr.Record(policy.Rec)
	}
	in.startWarmup(env)
	return in
}

// startWarmup spawns the manifest-replay thread when the policy carries a
// profile for this instance's model. Replay begins the moment the instance
// exists — overlapping whatever bring-up precedes the first request.
func (in *Instance) startWarmup(env *sim.Env) {
	if man := in.policy.Warmup[in.ms.Spec.Abbr]; man != nil && len(man.Entries) > 0 {
		in.prefetch = warmup.Start(env, in.pr.RT, man, in.policy.Rec)
	}
}

// Served returns the number of requests completed.
func (in *Instance) Served() int { return in.served }

// Warm reports whether the instance has completed its first request.
func (in *Instance) Warm() bool { return in.served > 0 }

// initProcess performs process bring-up (GPU context + library open) once.
func (in *Instance) initProcess(p *sim.Proc) error {
	if in.initialized {
		return nil
	}
	in.pr.Runner.RT.InitContext(p)
	if err := in.pr.Runner.Lib.LoadResidents(p); err != nil {
		return err
	}
	switch {
	case in.host != nil:
		// Shared GPU: every tenant consults the host's cross-model cache
		// through its own attributing view. The structure is always the
		// categorical one — a flat PaSK-R scan over every tenant's entries
		// would charge each tenant for the whole GPU's working set, so the
		// PaSK-R ablation is only meaningful on isolated instances.
		v := in.host.Cache.View(in.tenant)
		core.SeedResidents(v, in.pr.Runner.Lib)
		in.cache = v
	case in.policy.Scheme == core.SchemePaSKR:
		c := core.NewNaiveCache()
		core.SeedResidents(c, in.pr.Runner.Lib)
		in.cache = c
	default:
		c := core.NewCategoricalCache()
		core.SeedResidents(c, in.pr.Runner.Lib)
		in.cache = c
	}
	in.initialized = true
	return nil
}

// Serve executes one inference request and returns its latency.
func (in *Instance) Serve(p *sim.Proc) (time.Duration, error) {
	if err := in.initProcess(p); err != nil {
		return 0, err
	}
	model := in.ms.Model
	if in.policy.Scheme == core.SchemeNNV12 {
		model = in.ms.Uniform
	}
	start := p.Now()
	var err error
	switch {
	case in.Warm() && (in.policy.Scheme == core.SchemePaSK || in.policy.Scheme == core.SchemePaSKR):
		// Subsequent requests keep following Algorithm 1 against the warm
		// cache, with the parsed program retained (paper §VI).
		in.lastResult, err = core.RunWarmReuseOpts(p, in.pr.Runner, model, in.cache, in.policy.Options)
	case in.Warm():
		err = in.pr.Runner.RunHot(p, model)
	case in.policy.Scheme == core.SchemeBaseline:
		err = in.pr.Runner.RunBaseline(p, model)
	case in.policy.Scheme == core.SchemeIdeal:
		if err := in.pr.Runner.PreloadAll(p, model); err != nil {
			return 0, err
		}
		start = p.Now()
		_, err = core.RunInterleaved(p, in.pr.Runner, model, core.NewCategoricalCache(), false, core.Options{})
	case in.policy.Scheme == core.SchemeNNV12 || in.policy.Scheme == core.SchemePaSKI:
		_, err = core.RunInterleaved(p, in.pr.Runner, model, core.NewCategoricalCache(), false, in.policy.Options)
	case in.policy.Scheme == core.SchemePaSKR:
		in.lastResult, err = core.RunSequentialReuseOpts(p, in.pr.Runner, model, in.cache, in.policy.Options)
	default: // PaSK
		in.lastResult, err = core.RunInterleaved(p, in.pr.Runner, model, in.cache, true, in.policy.Options)
	}
	if err != nil {
		return 0, err
	}
	in.served++
	return p.Now() - start, nil
}

// Idle lets the instance use an idle interval. Under a background-loading
// policy it loads the solutions skipped by earlier requests (§VI); it
// returns the number of objects loaded.
func (in *Instance) Idle(p *sim.Proc, budget time.Duration) (int, error) {
	if !in.policy.BackgroundLoad || in.lastResult == nil {
		return 0, nil
	}
	n, err := core.BackgroundLoad(p, in.pr.Runner, in.cache, in.lastResult.Skipped, budget)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Evict models memory-pressure eviction on edge devices: every loaded code
// object and the model weights are dropped, but the process survives. The
// next request pays the cold path again.
func (in *Instance) Evict() {
	in.pr.RT.UnloadAll()
	in.pr.Runner.EvictParams(in.ms.Model.Name)
	in.pr.Runner.EvictParams(in.ms.Uniform.Name)
	in.served = 0
	in.initialized = false // reopening the library remaps residents
	in.lastResult = nil
}

// Request is one inference arrival. Model optionally names the zoo model
// the request targets ("" means the scenario's default model); multi-model
// fleets route on it.
type Request struct {
	At    time.Duration
	Model string
}

// Trace is a request arrival sequence.
type Trace []Request

// InterleavedTrace alternates requests over the given models round-robin,
// perModel requests each, at a fixed arrival interval — the deterministic
// heterogeneous workload the multitenant experiment replays against shared
// and isolated runtimes.
func InterleavedTrace(models []string, perModel int, interval time.Duration) Trace {
	var tr Trace
	for i := 0; i < perModel*len(models); i++ {
		tr = append(tr, Request{
			At:    time.Duration(i) * interval,
			Model: models[i%len(models)],
		})
	}
	return tr
}

// PoissonTrace draws arrivals with exponential inter-arrival times at the
// given mean interval, deterministically from seed.
func PoissonTrace(n int, meanInterval time.Duration, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += time.Duration(rng.ExpFloat64() * float64(meanInterval))
		tr = append(tr, Request{At: at})
	}
	return tr
}

// BurstTrace produces n simultaneous arrivals at time 0 — the serverless
// scale-out spike.
func BurstTrace(n int) Trace {
	tr := make(Trace, n)
	return tr
}

// Stats aggregates request latencies.
type Stats struct {
	Latencies  []time.Duration
	ColdStarts int
	BGLoads    int

	// Warmup accounting, populated when Policy.Warmup maps this model.
	WarmupReplays int // instances that ran a manifest replay
	WarmupLoads   int // objects replay made resident (paid + coalesced)
	WarmupStale   int // manifest entries skipped as stale

	// ColdLatencies are the latencies of the requests counted in
	// ColdStarts, kept separate so fault sweeps can report cold-path cost.
	ColdLatencies []time.Duration

	// Fault-tolerance accounting, populated when Policy.FT is enabled.
	Failed         int           // requests lost after retries and recovery
	Retries        int           // serve attempts repeated after an error
	Crashes        int           // instances declared crashed and replaced
	Recovered      int           // replacements that then served the request
	DeadlineMisses int           // requests completing past FT.Deadline
	DegradedLayers int           // layers served by a forced substitute
	FailedRequests map[int]error // request index -> final typed error

	// Failure-domain accounting, populated when a health monitor evacuates
	// tenants off a sick GPU. Evacuated requests are served — on a different
	// GPU than they arrived at, after the tenant re-placed and warm-respawned
	// — but counted apart from Latencies so failover sweeps can report the
	// relocation cost separately. EvacLatencies are their end-to-end times
	// (relocation included).
	Evacuated     int
	EvacLatencies []time.Duration

	// Overload-protection accounting, populated when the policy enables
	// admission control, breakers or brownout. Shed and BreakerRejected
	// requests never reach an instance and are counted apart from Failed:
	// the invariant is served + Failed + Shed + BreakerRejected + Evacuated
	// == requests.
	Shed              int // requests dropped by admission control (ErrShed)
	BreakerRejected   int // requests refused while a breaker was open
	SLOMisses         int // served requests whose end-to-end latency broke Policy.SLO
	BreakerTrips      int // closed/half-open → open transitions
	BreakerRecoveries int // half-open → closed transitions
	BrownoutEnters    int // pressure transitions out of nominal
	PressurePeak      int // highest pressure level reached (core.PressureLevel)
	PressureReuse     int // layers served by pressure-forced substitutes

	// sorted caches the ascending copy of Latencies for Percentile;
	// sortedN is the Latencies length it was computed at.
	sorted  []time.Duration
	sortedN int
}

// recordFailure indexes a request's final error. Idempotent per request
// index: crash recovery can surface the same request's failure through more
// than one path (replacement serve, deadline check), and the first recorded
// error must count it exactly once.
func (s *Stats) recordFailure(idx int, err error) {
	if s.FailedRequests == nil {
		s.FailedRequests = make(map[int]error)
	}
	if _, dup := s.FailedRequests[idx]; !dup {
		s.Failed++
	}
	s.FailedRequests[idx] = err
}

// recordShed indexes a request dropped by admission control. Shed requests
// carry their typed error in FailedRequests but are counted in Shed, not
// Failed — they were never attempted.
func (s *Stats) recordShed(idx int) {
	s.Shed++
	if s.FailedRequests == nil {
		s.FailedRequests = make(map[int]error)
	}
	s.FailedRequests[idx] = ErrShed
}

// recordEvacuated counts a request served after its tenant evacuated a sick
// GPU mid-flight: the request succeeded, but on a different device than it
// arrived at, and its latency includes the relocation. Counted in Evacuated
// instead of Latencies so the accounting invariant
// served+Failed+Shed+BreakerRejected+Evacuated == requests still partitions
// every request exactly once.
func (s *Stats) recordEvacuated(lat time.Duration) {
	s.Evacuated++
	s.EvacLatencies = append(s.EvacLatencies, lat)
}

// MeanEvac returns the average latency over EvacLatencies.
func (s *Stats) MeanEvac() time.Duration {
	if len(s.EvacLatencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range s.EvacLatencies {
		sum += l
	}
	return sum / time.Duration(len(s.EvacLatencies))
}

// Percentile returns the q-quantile latency. q is clamped into [0,1]
// (callers passing q outside the range get the min/max latency rather than
// an out-of-bounds index). Like Mean, it ranges over Latencies only —
// successfully served requests; failed requests never enter the latency
// distribution and are accounted in Failed/FailedRequests instead. The
// sorted copy is cached and reused until more latencies are recorded, so
// sweeps querying several quantiles sort once.
func (s *Stats) Percentile(q float64) time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	if s.sorted == nil || s.sortedN != len(s.Latencies) {
		s.sorted = append(s.sorted[:0], s.Latencies...)
		slices.Sort(s.sorted)
		s.sortedN = len(s.Latencies)
	}
	idx := int(math.Ceil(q*float64(len(s.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.sorted) {
		idx = len(s.sorted) - 1
	}
	return s.sorted[idx]
}

// Mean returns the average latency over Latencies — the same successful
// requests Percentile ranges over (failed requests are excluded from both).
func (s *Stats) Mean() time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range s.Latencies {
		sum += l
	}
	return sum / time.Duration(len(s.Latencies))
}

// ftServer owns the live instance of a serving scenario so crash recovery
// can replace it mid-trace, and funnels every request through the policy's
// fault-tolerance contract. Without fault tolerance it behaves exactly like
// calling Instance.Serve directly.
type ftServer struct {
	env    *sim.Env
	ms     *experiments.ModelSetup
	policy Policy
	stats  *Stats
	inst   *Instance

	// host/tenant are set for servers attached to a shared GPU; gen counts
	// tenant replacements so recovered views get distinguishable names.
	host   *GPUHost
	tenant string
	gen    int
}

func newFTServer(env *sim.Env, ms *experiments.ModelSetup, policy Policy, stats *Stats) *ftServer {
	return &ftServer{env: env, ms: ms, policy: policy, stats: stats, inst: NewInstance(env, ms, policy)}
}

// foldWarmup banks the live instance's replay accounting into the stats
// before the instance goes away. Idempotent per instance: the prefetch
// handle is cleared after folding.
func (s *ftServer) foldWarmup() {
	pf := s.inst.prefetch
	if pf == nil {
		return
	}
	s.inst.prefetch = nil
	st := pf.Stats()
	s.stats.WarmupReplays++
	s.stats.WarmupLoads += st.Loaded + st.Coalesced
	s.stats.WarmupStale += st.Stale
}

// close tears down the live instance. Isolated instances own their device
// and close it outright; tenants on a shared GPU only detach their runtime
// view — the device, its modules and the other tenants stay live.
func (s *ftServer) close() {
	s.foldWarmup()
	if s.host != nil {
		s.detachTenant()
		return
	}
	s.inst.pr.GPU.CloseAll()
}

// replace tears the live instance down and brings up a fresh cold one — the
// spot-preemption machinery reused for crash recovery. On a shared GPU the
// replacement must not destroy modules other tenants hold, so only the
// crashed tenant's view is swapped (see replaceTenant).
func (s *ftServer) replace() {
	s.foldWarmup()
	if s.host != nil {
		s.replaceTenant()
		return
	}
	s.inst.pr.GPU.CloseAll()
	s.inst = NewInstance(s.env, s.ms, s.policy)
}

// harvest folds a fresh run result into the degradation counters. prev is
// the result pointer observed before the serve: schemes that do not produce
// per-request results leave it unchanged.
func (s *ftServer) harvest(prev *core.Result) {
	if res := s.inst.lastResult; res != nil && res != prev {
		s.stats.DegradedLayers += res.Degraded()
		s.stats.PressureReuse += res.PressureReuse
	}
}

// serve executes request idx under the policy's fault tolerance, records the
// outcome in the stats and emits the request's span. The returned error is
// the request's final typed error after retries, recovery and the deadline
// check.
func (s *ftServer) serve(p *sim.Proc, idx int) (time.Duration, error) {
	start := p.Now()
	wasCold := !s.inst.Warm()
	lat, err := s.serveChecked(p, idx)
	if s.policy.Rec != nil {
		track := "serving"
		attrs := []metrics.Attr{
			{Key: "model", Value: s.ms.Model.Name},
			{Key: "request", Value: fmt.Sprint(idx)},
			{Key: "cold", Value: fmt.Sprint(wasCold)},
		}
		if s.tenant != "" {
			track = "serving:" + s.tenant
			attrs = append(attrs, metrics.Attr{Key: "tenant", Value: s.tenant})
		}
		if err != nil {
			attrs = append(attrs, metrics.Attr{Key: "error", Value: err.Error()})
		}
		s.policy.Rec.Span(track, metrics.CatOther, fmt.Sprintf("request-%d", idx), start, p.Now(), attrs...)
	}
	return lat, err
}

func (s *ftServer) serveChecked(p *sim.Proc, idx int) (time.Duration, error) {
	if !s.policy.FT.enabled() {
		prev := s.inst.lastResult
		lat, err := s.inst.Serve(p)
		if err == nil {
			s.harvest(prev)
		}
		return lat, err
	}
	lat, err := s.serveAttempts(p)
	if err == nil && s.policy.FT.Deadline > 0 && lat > s.policy.FT.Deadline {
		s.stats.DeadlineMisses++
		err = fmt.Errorf("%w: served in %v, deadline %v", ErrDeadlineExceeded, lat, s.policy.FT.Deadline)
	}
	if err != nil {
		s.stats.recordFailure(idx, err)
		return 0, err
	}
	return lat, nil
}

// serveAttempts retries a failing request on the live instance with capped
// exponential backoff (seeded jitter, see FaultTolerance.backoffFor), then
// declares the instance crashed, replaces it and makes one final attempt on
// the fresh process (which also starts with an empty negative load cache).
func (s *ftServer) serveAttempts(p *sim.Proc) (time.Duration, error) {
	ft := s.policy.FT
	var err error
	for attempt := 0; ; attempt++ {
		prev := s.inst.lastResult
		lat, serr := s.inst.Serve(p)
		if serr == nil {
			s.harvest(prev)
			return lat, nil
		}
		err = serr
		if attempt >= ft.MaxRetries {
			break
		}
		s.stats.Retries++
		p.Sleep(ft.backoffFor(attempt, s.ms.Spec.Abbr))
	}
	s.stats.Crashes++
	s.replace()
	lat, rerr := s.inst.Serve(p)
	if rerr != nil {
		return 0, fmt.Errorf("%w: %v (replacement failed: %w)", ErrInstanceCrashed, err, rerr)
	}
	s.stats.Recovered++
	s.harvest(nil)
	return lat, nil
}

// ServeTrace runs a single-instance scenario: requests arrive per the trace;
// the instance optionally background-loads in idle gaps. If evictEvery > 0,
// the instance is evicted after every evictEvery requests (edge memory
// pressure / suspend), forcing a fresh cold path. With fault tolerance and
// ContinueOnError set, per-request failures are recorded in the stats and
// the trace keeps going; otherwise the first failure aborts the run and the
// partial stats are returned alongside the error.
//
// A policy with overload protections changes admission, not execution:
// requests the admission bound sheds (or an open breaker rejects) are
// recorded in the stats and skipped — the trace always continues past them,
// because dropping load deliberately is the protection working, not a
// failure. A fault plan carrying a request flood is spliced into the trace
// before serving begins.
func ServeTrace(ms *experiments.ModelSetup, policy Policy, trace Trace, evictEvery int) (*Stats, error) {
	env := sim.NewEnv()
	restore := InstallFaults(ms, policy.Faults)
	defer restore()
	if policy.Faults != nil {
		trace = ApplyFlood(trace, policy.Faults.Plan())
	}
	stats := &Stats{}
	guard := newOverloadGuard(&policy, stats)
	srv := newFTServer(env, ms, policy, stats)
	var runErr error
	env.Spawn("server", func(p *sim.Proc) {
		defer func() { srv.close() }()
		for i, req := range trace {
			if req.At > p.Now() {
				// Idle until the next arrival; use the gap productively.
				if gap := req.At - p.Now(); gap > 0 {
					n, err := srv.inst.Idle(p, gap)
					if err != nil {
						runErr = err
						return
					}
					stats.BGLoads += n
				}
				p.SleepUntil(req.At)
			}
			if guard.admit(p.Now(), trace, i) != nil {
				continue
			}
			brk := guard.breaker(ms.Spec.Abbr)
			if brk != nil && !brk.allow(p.Now()) {
				guard.reject(p.Now(), i)
				continue
			}
			wasCold := !srv.inst.Warm()
			lat, err := srv.serve(p, i)
			brk.observe(p.Now(), err)
			if err != nil {
				if policy.FT.ContinueOnError {
					continue
				}
				runErr = fmt.Errorf("request %d: %w", i, err)
				return
			}
			stats.Latencies = append(stats.Latencies, lat)
			stats.observeSLO(p.Now()-req.At, policy.SLO)
			if wasCold {
				stats.ColdStarts++
				stats.ColdLatencies = append(stats.ColdLatencies, lat)
			}
			if evictEvery > 0 && (i+1)%evictEvery == 0 {
				srv.inst.Evict()
			}
		}
	})
	if err := env.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return stats, runErr
	}
	return stats, nil
}

// ScaleOut runs the serverless spike scenario: n requests arrive at once and
// every one lands on a fresh cold instance (its own process and device).
// It returns per-instance cold-start latencies.
func ScaleOut(ms *experiments.ModelSetup, policy Policy, n int) (*Stats, error) {
	env := sim.NewEnv()
	restore := InstallFaults(ms, policy.Faults)
	defer restore()
	stats := &Stats{ColdStarts: n}
	lat := make([]time.Duration, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		srv := newFTServer(env, ms, policy, stats)
		env.Spawn(fmt.Sprintf("instance-%d", i), func(p *sim.Proc) {
			defer srv.close()
			lat[i], errs[i] = srv.serve(p, i)
		})
	}
	if err := env.Run(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			if policy.FT.ContinueOnError {
				continue
			}
			return nil, fmt.Errorf("instance %d: %w", i, err)
		}
		stats.Latencies = append(stats.Latencies, lat[i])
		stats.ColdLatencies = append(stats.ColdLatencies, lat[i])
	}
	return stats, nil
}

// SpotPreemption runs the preemptible-instance scenario: a trace is served
// by one instance that is killed and replaced by a fresh process after each
// preemption point (a request index). Returns the stats and the number of
// migrations performed.
func SpotPreemption(ms *experiments.ModelSetup, policy Policy, trace Trace, preemptEvery int) (*Stats, int, error) {
	if preemptEvery <= 0 {
		return nil, 0, fmt.Errorf("serving: preemptEvery must be positive")
	}
	env := sim.NewEnv()
	restore := InstallFaults(ms, policy.Faults)
	defer restore()
	stats := &Stats{}
	migrations := 0
	var runErr error
	env.Spawn("spot", func(p *sim.Proc) {
		srv := newFTServer(env, ms, policy, stats)
		defer func() { srv.close() }()
		for i, req := range trace {
			p.SleepUntil(req.At)
			wasCold := !srv.inst.Warm()
			lat, err := srv.serve(p, i)
			if err != nil {
				if policy.FT.ContinueOnError {
					continue
				}
				runErr = fmt.Errorf("request %d: %w", i, err)
				return
			}
			stats.Latencies = append(stats.Latencies, lat)
			if wasCold {
				stats.ColdStarts++
				stats.ColdLatencies = append(stats.ColdLatencies, lat)
			}
			if (i+1)%preemptEvery == 0 && i != len(trace)-1 {
				// Preempted: the replacement instance starts from scratch.
				srv.replace()
				migrations++
			}
		}
	})
	if err := env.Run(); err != nil {
		return nil, 0, err
	}
	if runErr != nil {
		return nil, 0, runErr
	}
	return stats, migrations, nil
}
