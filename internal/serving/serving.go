// Package serving models the deployment scenarios that make DNN cold start
// unavoidable (paper §I): serverless scale-out, preemptible spot instances
// and resource-constrained edge devices. An Instance is one warm process
// serving inference requests for a model; a Fleet manages instances under a
// keep-alive policy and routes a request trace to them, spawning cold
// instances on demand.
package serving

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"pask/internal/core"
	"pask/internal/experiments"
	"pask/internal/sim"
)

// Policy configures how instances execute requests.
type Policy struct {
	// Scheme is the cold-start execution strategy.
	Scheme core.Scheme
	// Options passes the PASK §VI extensions through.
	Options core.Options
	// BackgroundLoad uses idle gaps between requests to load previously
	// skipped solutions (paper §VI).
	BackgroundLoad bool
}

// Instance is one process serving one model. The first request on a fresh
// (or evicted) instance is a cold start; later requests reuse the warm
// state.
type Instance struct {
	ms     *experiments.ModelSetup
	pr     *experiments.Process
	policy Policy

	cache       core.Cache
	initialized bool
	served      int
	skipped     []SkippedLoad
	lastResult  *core.Result
}

// SkippedLoad records one avoided solution load for background loading.
type SkippedLoad struct {
	Key string
}

// NewInstance creates a cold instance inside env.
func NewInstance(env *sim.Env, ms *experiments.ModelSetup, policy Policy) *Instance {
	return &Instance{ms: ms, pr: ms.NewProcessIn(env), policy: policy}
}

// Served returns the number of requests completed.
func (in *Instance) Served() int { return in.served }

// Warm reports whether the instance has completed its first request.
func (in *Instance) Warm() bool { return in.served > 0 }

// initProcess performs process bring-up (GPU context + library open) once.
func (in *Instance) initProcess(p *sim.Proc) error {
	if in.initialized {
		return nil
	}
	in.pr.Runner.RT.InitContext(p)
	if err := in.pr.Runner.Lib.LoadResidents(p); err != nil {
		return err
	}
	switch in.policy.Scheme {
	case core.SchemePaSKR:
		c := core.NewNaiveCache()
		core.SeedResidents(c, in.pr.Runner.Lib)
		in.cache = c
	default:
		c := core.NewCategoricalCache()
		core.SeedResidents(c, in.pr.Runner.Lib)
		in.cache = c
	}
	in.initialized = true
	return nil
}

// Serve executes one inference request and returns its latency.
func (in *Instance) Serve(p *sim.Proc) (time.Duration, error) {
	if err := in.initProcess(p); err != nil {
		return 0, err
	}
	model := in.ms.Model
	if in.policy.Scheme == core.SchemeNNV12 {
		model = in.ms.Uniform
	}
	start := p.Now()
	var err error
	switch {
	case in.Warm() && (in.policy.Scheme == core.SchemePaSK || in.policy.Scheme == core.SchemePaSKR):
		// Subsequent requests keep following Algorithm 1 against the warm
		// cache, with the parsed program retained (paper §VI).
		in.lastResult, err = core.RunWarmReuse(p, in.pr.Runner, model, in.cache)
	case in.Warm():
		err = in.pr.Runner.RunHot(p, model)
	case in.policy.Scheme == core.SchemeBaseline:
		err = in.pr.Runner.RunBaseline(p, model)
	case in.policy.Scheme == core.SchemeIdeal:
		if err := in.pr.Runner.PreloadAll(p, model); err != nil {
			return 0, err
		}
		start = p.Now()
		_, err = core.RunInterleaved(p, in.pr.Runner, model, core.NewCategoricalCache(), false, core.Options{})
	case in.policy.Scheme == core.SchemeNNV12 || in.policy.Scheme == core.SchemePaSKI:
		_, err = core.RunInterleaved(p, in.pr.Runner, model, core.NewCategoricalCache(), false, in.policy.Options)
	case in.policy.Scheme == core.SchemePaSKR:
		in.lastResult, err = core.RunSequentialReuse(p, in.pr.Runner, model, in.cache)
	default: // PaSK
		in.lastResult, err = core.RunInterleaved(p, in.pr.Runner, model, in.cache, true, in.policy.Options)
	}
	if err != nil {
		return 0, err
	}
	in.served++
	return p.Now() - start, nil
}

// Idle lets the instance use an idle interval. Under a background-loading
// policy it loads the solutions skipped by earlier requests (§VI); it
// returns the number of objects loaded.
func (in *Instance) Idle(p *sim.Proc, budget time.Duration) (int, error) {
	if !in.policy.BackgroundLoad || in.lastResult == nil {
		return 0, nil
	}
	n, err := core.BackgroundLoad(p, in.pr.Runner, in.cache, in.lastResult.Skipped, budget)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Evict models memory-pressure eviction on edge devices: every loaded code
// object and the model weights are dropped, but the process survives. The
// next request pays the cold path again.
func (in *Instance) Evict() {
	in.pr.RT.UnloadAll()
	in.pr.Runner.EvictParams(in.ms.Model.Name)
	in.pr.Runner.EvictParams(in.ms.Uniform.Name)
	in.served = 0
	in.initialized = false // reopening the library remaps residents
	in.lastResult = nil
}

// Request is one inference arrival.
type Request struct {
	At time.Duration
}

// Trace is a request arrival sequence.
type Trace []Request

// PoissonTrace draws arrivals with exponential inter-arrival times at the
// given mean interval, deterministically from seed.
func PoissonTrace(n int, meanInterval time.Duration, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += time.Duration(rng.ExpFloat64() * float64(meanInterval))
		tr = append(tr, Request{At: at})
	}
	return tr
}

// BurstTrace produces n simultaneous arrivals at time 0 — the serverless
// scale-out spike.
func BurstTrace(n int) Trace {
	tr := make(Trace, n)
	return tr
}

// Stats aggregates request latencies.
type Stats struct {
	Latencies  []time.Duration
	ColdStarts int
	BGLoads    int
}

// Percentile returns the q-quantile latency (q in [0,1]).
func (s *Stats) Percentile(q float64) time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the average latency.
func (s *Stats) Mean() time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range s.Latencies {
		sum += l
	}
	return sum / time.Duration(len(s.Latencies))
}

// ServeTrace runs a single-instance scenario: requests arrive per the trace;
// the instance optionally background-loads in idle gaps. If evictEvery > 0,
// the instance is evicted after every evictEvery requests (edge memory
// pressure / suspend), forcing a fresh cold path.
func ServeTrace(ms *experiments.ModelSetup, policy Policy, trace Trace, evictEvery int) (*Stats, error) {
	env := sim.NewEnv()
	inst := NewInstance(env, ms, policy)
	stats := &Stats{}
	var runErr error
	env.Spawn("server", func(p *sim.Proc) {
		defer inst.pr.GPU.CloseAll()
		for i, req := range trace {
			if req.At > p.Now() {
				// Idle until the next arrival; use the gap productively.
				if gap := req.At - p.Now(); gap > 0 {
					n, err := inst.Idle(p, gap)
					if err != nil {
						runErr = err
						return
					}
					stats.BGLoads += n
				}
				p.SleepUntil(req.At)
			}
			wasCold := !inst.Warm()
			lat, err := inst.Serve(p)
			if err != nil {
				runErr = fmt.Errorf("request %d: %w", i, err)
				return
			}
			stats.Latencies = append(stats.Latencies, lat)
			if wasCold {
				stats.ColdStarts++
			}
			if evictEvery > 0 && (i+1)%evictEvery == 0 {
				inst.Evict()
			}
		}
	})
	if err := env.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return stats, nil
}

// ScaleOut runs the serverless spike scenario: n requests arrive at once and
// every one lands on a fresh cold instance (its own process and device).
// It returns per-instance cold-start latencies.
func ScaleOut(ms *experiments.ModelSetup, policy Policy, n int) (*Stats, error) {
	env := sim.NewEnv()
	stats := &Stats{ColdStarts: n}
	lat := make([]time.Duration, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		inst := NewInstance(env, ms, policy)
		env.Spawn(fmt.Sprintf("instance-%d", i), func(p *sim.Proc) {
			defer inst.pr.GPU.CloseAll()
			lat[i], errs[i] = inst.Serve(p)
		})
	}
	if err := env.Run(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("instance %d: %w", i, err)
		}
	}
	stats.Latencies = lat
	return stats, nil
}

// SpotPreemption runs the preemptible-instance scenario: a trace is served
// by one instance that is killed and replaced by a fresh process after each
// preemption point (a request index). Returns the stats and the number of
// migrations performed.
func SpotPreemption(ms *experiments.ModelSetup, policy Policy, trace Trace, preemptEvery int) (*Stats, int, error) {
	if preemptEvery <= 0 {
		return nil, 0, fmt.Errorf("serving: preemptEvery must be positive")
	}
	env := sim.NewEnv()
	stats := &Stats{}
	migrations := 0
	var runErr error
	env.Spawn("spot", func(p *sim.Proc) {
		inst := NewInstance(env, ms, policy)
		defer func() { inst.pr.GPU.CloseAll() }()
		for i, req := range trace {
			p.SleepUntil(req.At)
			wasCold := !inst.Warm()
			lat, err := inst.Serve(p)
			if err != nil {
				runErr = fmt.Errorf("request %d: %w", i, err)
				return
			}
			stats.Latencies = append(stats.Latencies, lat)
			if wasCold {
				stats.ColdStarts++
			}
			if (i+1)%preemptEvery == 0 && i != len(trace)-1 {
				// Preempted: the replacement instance starts from scratch.
				inst.pr.GPU.CloseAll()
				inst = NewInstance(env, ms, policy)
				migrations++
			}
		}
	})
	if err := env.Run(); err != nil {
		return nil, 0, err
	}
	if runErr != nil {
		return nil, 0, runErr
	}
	return stats, migrations, nil
}
