package serving

import (
	"encoding/json"
	"testing"
	"time"

	"pask/internal/trace"
)

func TestTransferModelDuration(t *testing.T) {
	tm := TransferModel{Latency: time.Millisecond, BytesPerSec: 1000}
	if got := tm.duration(500); got != time.Millisecond+500*time.Millisecond {
		t.Fatalf("duration = %v", got)
	}
	// Zero value gets defaults rather than dividing by zero.
	if got := (TransferModel{}).duration(1 << 20); got <= 0 {
		t.Fatalf("zero-value duration = %v", got)
	}
}

func TestCacheImageDeterministic(t *testing.T) {
	_, b1, err := CacheImage(CacheImageConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	_, b2, err := CacheImage(CacheImageConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(b1)
	j2, _ := json.Marshal(b2)
	if string(j1) != string(j2) {
		t.Fatal("cacheimage bench JSON differs across identical runs")
	}
}

// TestCacheImageAcceptance runs the quick sweep and checks the headline
// claims on every device profile: full-coverage warm attach beats the
// all-cold baseline, and the chaos arm completes every request correctly
// via cold-start fallback with its rejections counted.
func TestCacheImageAcceptance(t *testing.T) {
	rec := trace.New()
	_, bench, err := CacheImage(CacheImageConfig{Quick: true, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Devices) != 3 {
		t.Fatalf("expected 3 device profiles, got %d", len(bench.Devices))
	}
	for _, dev := range bench.Devices {
		if dev.ImageID == "" || dev.ImageBytes == 0 || dev.Objects == 0 {
			t.Errorf("%s: empty image metadata: %+v", dev.Device, dev)
		}
		var cold, full *CacheImageCell
		for i := range dev.Cells {
			c := &dev.Cells[i]
			if c.Coverage == 0 {
				cold = c
			}
			if c.Coverage == 1 {
				full = c
			}
		}
		if cold == nil || full == nil {
			t.Fatalf("%s: sweep missing coverage endpoints: %+v", dev.Device, dev.Cells)
		}
		if cold.ColdMeanMs <= 0 || full.WarmMeanMs <= 0 {
			t.Fatalf("%s: missing TTFI means: cold %+v full %+v", dev.Device, cold, full)
		}
		if full.WarmMeanMs >= cold.ColdMeanMs {
			t.Errorf("%s: warm-attach TTFI %.3fms not below cold %.3fms",
				dev.Device, full.WarmMeanMs, cold.ColdMeanMs)
		}
		if full.Attached != full.Nodes {
			t.Errorf("%s: fault-free full coverage attached %d/%d", dev.Device, full.Attached, full.Nodes)
		}

		chaos := dev.Chaos
		if chaos == nil {
			t.Fatalf("%s: no chaos arm", dev.Device)
		}
		if chaos.Failed != 0 {
			t.Errorf("%s chaos: %d failed requests, want 0 (degradation must be cold, not wrong)", dev.Device, chaos.Failed)
		}
		if chaos.Served != chaos.Nodes {
			t.Errorf("%s chaos: served %d/%d", dev.Device, chaos.Served, chaos.Nodes)
		}
		if !chaos.StoreUntouched {
			t.Errorf("%s chaos: shared code-object store fingerprint changed", dev.Device)
		}
		// The planted decoys make the typed-reject rungs deterministic.
		if chaos.RejectedProfile == 0 {
			t.Errorf("%s chaos: no profile rejects despite planted decoy", dev.Device)
		}
		if chaos.StaleRejects == 0 {
			t.Errorf("%s chaos: no stale rejects despite planted decoy", dev.Device)
		}
		if chaos.Attached >= chaos.Nodes {
			t.Errorf("%s chaos: every node attached — fault injection did nothing", dev.Device)
		}
		// All cells: every request lands somewhere, and the store stays pristine.
		for _, c := range append(dev.Cells, *chaos) {
			if c.Served+c.Failed != c.Nodes {
				t.Errorf("%s n=%d c=%.2f: served+failed = %d, want %d", dev.Device, c.Nodes, c.Coverage, c.Served+c.Failed, c.Nodes)
			}
			if !c.StoreUntouched {
				t.Errorf("%s n=%d c=%.2f: store mutated", dev.Device, c.Nodes, c.Coverage)
			}
		}
	}
	// The chaos counters landed on the first device's timeline.
	for _, name := range []string{"cacheimg_attach_ok", "cacheimg_quarantined",
		"cacheimg_reject_profile", "cacheimg_reject_stale", "cacheimg_nodes_killed"} {
		if _, ok := rec.CounterLast(name); !ok {
			t.Errorf("counter %s never emitted", name)
		}
	}
}
