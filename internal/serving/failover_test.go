package serving

import (
	"testing"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/sim"
)

// The failover experiment's own acceptance bar — zero failed requests and
// warm evacuation strictly below cold respawn — must hold on every paper
// profile. Failover() already errors on violations; this test re-asserts the
// bar independently against the bench payload so a regression in the
// experiment's self-checks cannot silently pass.
func TestFailoverWarmBeatsColdOnAllProfiles(t *testing.T) {
	cfg := FailoverConfig{Quick: true}
	_, bench, err := Failover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Fleets) != len(device.Profiles()) {
		t.Fatalf("ran %d fleets, want one per paper profile (%d)", len(bench.Fleets), len(device.Profiles()))
	}
	for _, fleet := range bench.Fleets {
		for _, arm := range fleet.Arms {
			if arm.Failed != 0 {
				t.Errorf("%s/%s: %d failed requests, want 0", fleet.Primary, arm.Name, arm.Failed)
			}
			if arm.Served+arm.Evacuated+arm.Failed != bench.Tenants*bench.Requests {
				t.Errorf("%s/%s: served %d + evacuated %d + failed %d != %d requests",
					fleet.Primary, arm.Name, arm.Served, arm.Evacuated, arm.Failed, bench.Tenants*bench.Requests)
			}
			if arm.Evacuated == 0 {
				t.Errorf("%s/%s: no requests were served post-evacuation", fleet.Primary, arm.Name)
			}
		}
		cold, warm := fleet.Arm(armColdRespawn), fleet.Arm(armWarmFailover)
		if cold == nil || warm == nil {
			t.Fatalf("%s: missing death arms", fleet.Primary)
		}
		if warm.MeanEvacMs >= cold.MeanEvacMs {
			t.Errorf("%s: warm evacuation TTFI %.2fms not strictly below cold respawn %.2fms",
				fleet.Primary, warm.MeanEvacMs, cold.MeanEvacMs)
		}
		if warm.PeerFetches == 0 || warm.ImageAttaches == 0 {
			t.Errorf("%s: warm arm salvaged nothing (peer_fetches=%d image_attaches=%d)",
				fleet.Primary, warm.PeerFetches, warm.ImageAttaches)
		}
		if cold.PeerFetches != 0 {
			t.Errorf("%s: cold arm peer-fetched %d modules with peering off", fleet.Primary, cold.PeerFetches)
		}
		// The dead GPU must end dead; nothing may resurrect it.
		for _, arm := range []*FailoverArm{cold, warm} {
			if got := arm.GPUs[failoverVictim].FinalState; got != GPUDead.String() {
				t.Errorf("%s/%s: victim ended %q, want %q", fleet.Primary, arm.Name, got, GPUDead)
			}
		}
		if flap := fleet.Arm(armLinkFlap); flap.PeerFetchFails == 0 {
			t.Errorf("%s: link-flap arm saw no peer-fetch fallbacks", fleet.Primary)
		}
		if deg := fleet.Arm(armDegraded); deg.GPUs[failoverVictim].FinalState != GPUHealthy.String() {
			t.Errorf("%s: degraded GPU ended %q, want probation rejoin to %q",
				fleet.Primary, deg.GPUs[failoverVictim].FinalState, GPUHealthy)
		}
	}
}

// TestFailoverRegistered checks the experiment is on the shared menu as a
// single-run bench experiment (excluded from -exp all, like the other
// serving sweeps).
func TestFailoverRegistered(t *testing.T) {
	exp, ok := experiments.Lookup("failover")
	if !ok {
		t.Fatal("failover not registered")
	}
	if !exp.Bench {
		t.Error("failover must declare a bench payload")
	}
	if exp.InAll {
		t.Error("failover is a single-run robustness sweep and must stay out of -exp all")
	}
}

// failoverTestHost builds a minimal two-GPU host over a real prepared model
// store, without running any tenants — enough registry for the monitor to
// scrape.
func failoverTestHost(t *testing.T) (*sim.Env, *MultiGPUHost) {
	t.Helper()
	prof := device.MI100()
	setups, err := experiments.PrepareModelsShared([]string{"alex"}, 1, prof)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	topo := device.NewHost(env)
	topo.AddGPU(prof, 0)
	topo.AddGPU(prof, 1)
	mh := NewMultiGPUHost(env, topo, func(string) *codeobj.Store {
		return setups["alex"].Store
	}, 1, false)
	return env, mh
}

// The monitor's ladder: healthy → degraded on one bad tick, → quarantined on
// persistence, clean probation → rejoin; device loss is terminal and fires
// evacuation exactly once. Driven white-box through poll() with synthetic
// error deltas so every edge is deterministic.
func TestHealthMonitorLadder(t *testing.T) {
	_, mh := failoverTestHost(t)
	const probation = 20 * time.Millisecond
	hm := NewHealthMonitor(mh, HealthConfig{Probation: probation}, nil)
	var evacuated []int
	hm.OnEvacuate = func(gpu int, state GPUHealthState) { evacuated = append(evacuated, gpu) }

	if mh.health != HealthSource(hm) {
		t.Fatal("NewHealthMonitor did not install itself as the host's health source")
	}
	if hm.State(0) != GPUHealthy || !hm.Usable(0) {
		t.Fatalf("fresh GPU not healthy: %v", hm.State(0))
	}

	// A synthetic error delta: poll computes current-minus-last, so a
	// negative last is a positive delta without touching the registry.
	bump := func(i int) { hm.last[i].FailedLoads-- }

	now := time.Millisecond
	tick := func(bad bool) {
		if bad {
			bump(0)
		}
		now += 2 * time.Millisecond
		hm.poll(now, 0)
	}

	tick(true)
	if hm.State(0) != GPUDegraded {
		t.Fatalf("one bad tick → %v, want degraded", hm.State(0))
	}
	if !hm.Usable(0) {
		t.Fatal("a degraded GPU must stay usable")
	}
	// One clean tick is not enough to recover; a second bad tick resumes the
	// climb and the next one quarantines.
	tick(false)
	if hm.State(0) != GPUDegraded {
		t.Fatalf("one clean tick de-escalated to %v", hm.State(0))
	}
	tick(true)
	tick(true)
	if hm.State(0) != GPUQuarantined {
		t.Fatalf("persistent degradation → %v, want quarantined", hm.State(0))
	}
	if hm.Usable(0) {
		t.Fatal("a quarantined GPU must not be usable")
	}
	if len(evacuated) != 1 || evacuated[0] != 0 || hm.Evacuations() != 1 {
		t.Fatalf("quarantine evacuation: OnEvacuate=%v Evacuations=%d", evacuated, hm.Evacuations())
	}
	// Pick must route around the quarantined GPU.
	if g := mh.Pick(PlaceFirstFit, nil); g != 1 {
		t.Fatalf("Pick chose quarantined gpu%d", g)
	}
	// Clean ticks alone cannot rejoin before probation is served.
	quarAt := hm.quarAt[0]
	tick(false)
	tick(false)
	if hm.State(0) != GPUQuarantined {
		t.Fatalf("rejoined after %v, before the %v probation", hm.State(0), probation)
	}
	for i := 0; hm.State(0) == GPUQuarantined && i < 20; i++ {
		tick(false)
	}
	if hm.State(0) != GPUHealthy {
		t.Fatalf("clean probation → %v, want healthy rejoin", hm.State(0))
	}
	if now-quarAt < probation {
		t.Fatalf("rejoined %v after quarantine, inside the %v probation", now-quarAt, probation)
	}
	if !hm.Usable(0) || hm.Evacuations() != 1 {
		t.Fatal("rejoined GPU not usable, or rejoin miscounted as evacuation")
	}

	// Device loss is terminal: dead on the next poll, evacuated once, and
	// usability drops immediately — before the poll even runs.
	mh.Nodes[0].Root().MarkDeviceLost()
	if hm.Usable(0) {
		t.Fatal("driver-lost GPU still usable before the next poll")
	}
	tick(false)
	if hm.State(0) != GPUDead {
		t.Fatalf("device loss → %v, want dead", hm.State(0))
	}
	if len(evacuated) != 2 || hm.Evacuations() != 2 {
		t.Fatalf("death evacuation: OnEvacuate=%v Evacuations=%d", evacuated, hm.Evacuations())
	}
	tick(false)
	tick(false)
	tick(false)
	if hm.State(0) != GPUDead {
		t.Fatalf("dead GPU left the terminal state: %v", hm.State(0))
	}
	if len(evacuated) != 2 {
		t.Fatalf("dead GPU re-fired evacuation: %v", evacuated)
	}
	if hm.States()[1] != GPUHealthy {
		t.Fatal("the healthy neighbor was dragged along")
	}
}

// recordEvacuated must count apart from every other leg of the accounting
// invariant: not a served latency, not a failure, its own mean.
func TestStatsEvacuatedLeg(t *testing.T) {
	var s Stats
	s.Latencies = append(s.Latencies, 2*time.Millisecond)
	s.recordFailure(1, codeobj.ErrIO)
	s.recordEvacuated(30 * time.Millisecond)
	s.recordEvacuated(50 * time.Millisecond)

	if s.Evacuated != 2 || len(s.EvacLatencies) != 2 {
		t.Fatalf("Evacuated=%d EvacLatencies=%v", s.Evacuated, s.EvacLatencies)
	}
	if len(s.Latencies) != 1 || s.Failed != 1 {
		t.Fatalf("evacuated requests leaked into another leg: served=%d failed=%d", len(s.Latencies), s.Failed)
	}
	if got := len(s.Latencies) + s.Failed + s.Shed + s.BreakerRejected + s.Evacuated; got != 4 {
		t.Fatalf("invariant sum = %d, want 4", got)
	}
	if s.MeanEvac() != 40*time.Millisecond {
		t.Fatalf("MeanEvac = %v, want 40ms", s.MeanEvac())
	}
	if s.Mean() != 2*time.Millisecond {
		t.Fatalf("evacuation latencies polluted Mean: %v", s.Mean())
	}
	var empty Stats
	if empty.MeanEvac() != 0 {
		t.Fatalf("MeanEvac on empty stats = %v", empty.MeanEvac())
	}
}
