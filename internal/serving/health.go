package serving

import (
	"fmt"
	"time"

	"pask/internal/backend"
	"pask/internal/sim"
	"pask/internal/trace"
)

// GPUHealthState is one GPU's position on the failure ladder the health
// monitor walks: healthy → degraded → quarantined → dead, with probation
// and rejoin on recovery (DESIGN.md §17).
type GPUHealthState int

const (
	// GPUHealthy: the device serves normally and accepts placements.
	GPUHealthy GPUHealthState = iota
	// GPUDegraded: error or latency signals crossed the threshold this
	// tick. The device still serves and accepts placements, but persistent
	// degradation escalates to quarantine.
	GPUDegraded
	// GPUQuarantined: degradation persisted; tenants evacuate and placement
	// skips the device. A quarantined GPU that stays clean through its
	// probation rejoins as healthy — hardware brownouts often pass.
	GPUQuarantined
	// GPUDead: the device fell off the bus. Terminal.
	GPUDead
)

// String names the state for tables, traces and the health endpoint.
func (s GPUHealthState) String() string {
	switch s {
	case GPUHealthy:
		return "healthy"
	case GPUDegraded:
		return "degraded"
	case GPUQuarantined:
		return "quarantined"
	case GPUDead:
		return "dead"
	}
	return fmt.Sprintf("GPUHealthState(%d)", int(s))
}

// Usable reports whether placement and peering may use a GPU in this state.
func (s GPUHealthState) Usable() bool { return s == GPUHealthy || s == GPUDegraded }

// HealthConfig tunes the monitor's sampling cadence and thresholds. The
// zero value gets production-shaped defaults scaled for the experiments'
// millisecond timelines.
type HealthConfig struct {
	// Interval is the poll tick (default 2ms of virtual time) — the DCGM
	// sampling loop of a real host agent.
	Interval time.Duration
	// ErrThreshold is the per-tick error delta (failed loads + transient
	// retries) that marks a GPU degraded (default 1).
	ErrThreshold int
	// DegradeTicks is how many consecutive bad ticks escalate degraded to
	// quarantined (default 2).
	DegradeTicks int
	// CleanTicks is how many consecutive clean ticks de-escalate degraded
	// back to healthy, and (with probation served) rejoin a quarantined
	// GPU (default 2).
	CleanTicks int
	// Probation is the minimum quarantine dwell before a clean GPU may
	// rejoin (default 10ms).
	Probation time.Duration
}

func (c HealthConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 2 * time.Millisecond
}

func (c HealthConfig) errThreshold() int {
	if c.ErrThreshold > 0 {
		return c.ErrThreshold
	}
	return 1
}

func (c HealthConfig) degradeTicks() int {
	if c.DegradeTicks > 0 {
		return c.DegradeTicks
	}
	return 2
}

func (c HealthConfig) cleanTicks() int {
	if c.CleanTicks > 0 {
		return c.CleanTicks
	}
	return 2
}

func (c HealthConfig) probation() time.Duration {
	if c.Probation > 0 {
		return c.Probation
	}
	return 10 * time.Millisecond
}

// HealthMonitor is the per-host agent watching every GPU of a MultiGPUHost:
// a virtual-time polling loop (the shape of a DCGM/node-exporter sidecar)
// that reads each registry's error counters, walks the health ladder, and
// tells the serving layer when a device's tenants must evacuate. The
// monitor never moves a tenant itself — it flips the state that placement,
// peering and the failover serve loop consult, and fires OnEvacuate so the
// host can drain and re-place.
type HealthMonitor struct {
	mh  *MultiGPUHost
	cfg HealthConfig
	rec *trace.Recorder

	// OnEvacuate, if set, fires once per GPU transition into quarantined or
	// dead — the host's cue to drain and re-place that device's tenants.
	OnEvacuate func(gpu int, state GPUHealthState)

	states  []GPUHealthState
	bad     []int // consecutive bad ticks per GPU
	clean   []int // consecutive clean ticks per GPU
	quarAt  []time.Duration
	last    []backend.Stats
	evacs   int
	stopped bool
}

// NewHealthMonitor builds a monitor over mh and installs it as the host's
// health source, so Pick and peering skip quarantined and dead GPUs. Call
// Start to spawn the polling proc; rec may be nil.
func NewHealthMonitor(mh *MultiGPUHost, cfg HealthConfig, rec *trace.Recorder) *HealthMonitor {
	n := len(mh.Nodes)
	hm := &HealthMonitor{
		mh: mh, cfg: cfg, rec: rec,
		states: make([]GPUHealthState, n),
		bad:    make([]int, n),
		clean:  make([]int, n),
		quarAt: make([]time.Duration, n),
		last:   make([]backend.Stats, n),
	}
	mh.SetHealth(hm)
	return hm
}

// Start spawns the polling proc. The loop exits when Stop is called — the
// experiment driver stops the monitor before closing the host's streams.
func (hm *HealthMonitor) Start(env *sim.Env) {
	env.Spawn("health-monitor", func(p *sim.Proc) {
		for {
			p.Sleep(hm.cfg.interval())
			if hm.stopped {
				return
			}
			for i := range hm.mh.Nodes {
				hm.poll(p.Now(), i)
			}
		}
	})
}

// Stop ends the polling loop at its next tick.
func (hm *HealthMonitor) Stop() { hm.stopped = true }

// State returns GPU i's current health state.
func (hm *HealthMonitor) State(i int) GPUHealthState { return hm.states[i] }

// States returns a snapshot of every GPU's state, indexed like mh.Nodes.
func (hm *HealthMonitor) States() []GPUHealthState {
	out := make([]GPUHealthState, len(hm.states))
	copy(out, hm.states)
	return out
}

// Usable reports whether placement and peering may use GPU i right now. A
// device the driver already reports lost is unusable even before the next
// poll tick notices.
func (hm *HealthMonitor) Usable(i int) bool {
	return hm.states[i].Usable() && !hm.mh.Nodes[i].Root().DeviceLost()
}

// Evacuations counts GPU transitions into quarantined or dead.
func (hm *HealthMonitor) Evacuations() int { return hm.evacs }

// poll advances GPU i's state machine one tick. The error signal is the
// tick-over-tick delta of failed loads plus transient retries on the GPU's
// shared registry — the counters a real agent scrapes from the driver.
func (hm *HealthMonitor) poll(now time.Duration, i int) {
	root := hm.mh.Nodes[i].Root()
	if root.DeviceLost() {
		if hm.states[i] != GPUDead {
			hm.transition(now, i, GPUDead)
		}
		return
	}
	st := root.Stats()
	errDelta := (st.FailedLoads - hm.last[i].FailedLoads) +
		(st.TransientRetries - hm.last[i].TransientRetries)
	hm.last[i] = st
	bad := errDelta >= hm.cfg.errThreshold()

	switch hm.states[i] {
	case GPUHealthy:
		if bad {
			hm.bad[i], hm.clean[i] = 1, 0
			hm.transition(now, i, GPUDegraded)
		}
	case GPUDegraded:
		if bad {
			hm.clean[i] = 0
			if hm.bad[i]++; hm.bad[i] >= hm.cfg.degradeTicks() {
				hm.transition(now, i, GPUQuarantined)
			}
		} else if hm.clean[i]++; hm.clean[i] >= hm.cfg.cleanTicks() {
			hm.bad[i] = 0
			hm.transition(now, i, GPUHealthy)
		}
	case GPUQuarantined:
		if bad {
			hm.clean[i] = 0
			return
		}
		if hm.clean[i]++; hm.clean[i] >= hm.cfg.cleanTicks() &&
			now-hm.quarAt[i] >= hm.cfg.probation() {
			hm.bad[i] = 0
			hm.transition(now, i, GPUHealthy)
		}
	case GPUDead:
		// Terminal.
	}
}

// transition flips GPU i to next, emits the gpu_health_state counter, and —
// entering quarantined or dead — counts the evacuation and fires OnEvacuate.
func (hm *HealthMonitor) transition(now time.Duration, i int, next GPUHealthState) {
	hm.states[i] = next
	if next == GPUQuarantined {
		hm.quarAt[i] = now
	}
	if hm.rec != nil {
		hm.rec.Count(fmt.Sprintf("gpu%d_health_state", i), now, float64(next))
	}
	if next == GPUQuarantined || next == GPUDead {
		hm.evacs++
		if hm.rec != nil {
			hm.rec.Count("evacuations", now, float64(hm.evacs))
		}
		if hm.OnEvacuate != nil {
			hm.OnEvacuate(i, next)
		}
	}
}
