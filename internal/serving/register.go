package serving

import (
	"time"

	"pask/internal/experiments"
)

// This file registers the serving-layer experiments on the shared menu.
// The package's init runs after internal/experiments' own registrations
// (this package imports it), so the -exp all order stays figures first,
// then chaos and multitenant — the CLI's historical sweep order.

func init() {
	experiments.Register(experiments.Experiment{
		Name: "chaos", Description: "fault-injection sweep: fault rates x recovery policies", InAll: true,
		Run: func(o experiments.Options) (*experiments.Result, error) {
			tbl, err := Chaos(ChaosConfig{})
			if err != nil {
				return nil, err
			}
			return &experiments.Result{Tables: []*experiments.Table{tbl}}, nil
		},
	})
	experiments.Register(experiments.Experiment{
		Name: "multitenant", Description: "isolated per-instance runtimes vs one shared runtime per GPU", InAll: true,
		Run: func(o experiments.Options) (*experiments.Result, error) {
			cfg := MultitenantConfig{Models: o.Models}
			if o.Quick {
				cfg.PerTenant = 2
				cfg.Interval = 4 * time.Millisecond
			}
			tbl, res, err := Multitenant(cfg)
			if err != nil {
				return nil, err
			}
			return &experiments.Result{Tables: []*experiments.Table{tbl}, Bench: res}, nil
		},
	})
	experiments.Register(experiments.Experiment{
		Name:        "overload",
		Description: "unprotected vs shedding vs brownout arms under overload",
		Bench:       true,
		Run: func(o experiments.Options) (*experiments.Result, error) {
			cfg := OverloadConfig{Model: firstOr(o.Models, "res"), Batch: firstBatch(o.Batches), Quick: o.Quick, Rec: o.Trace}
			tbl, bench, err := Overload(cfg)
			if err != nil {
				return nil, err
			}
			return &experiments.Result{Tables: []*experiments.Table{tbl}, Bench: bench}, nil
		},
	})
	experiments.Register(experiments.Experiment{
		Name:        "cacheimage",
		Description: "pre-distributed kernel-cache images: warm attach vs cold start",
		Bench:       true,
		Run: func(o experiments.Options) (*experiments.Result, error) {
			cfg := CacheImageConfig{Model: firstOr(o.Models, ""), Batch: firstBatch(o.Batches), Quick: o.Quick, Rec: o.Trace}
			tbl, bench, err := CacheImage(cfg)
			if err != nil {
				return nil, err
			}
			return &experiments.Result{Tables: []*experiments.Table{tbl}, Bench: bench}, nil
		},
	})
	experiments.Register(experiments.Experiment{
		Name:        "placement",
		Description: "tenant-placement policies with and without cross-GPU cache peering",
		Bench:       true,
		Run: func(o experiments.Options) (*experiments.Result, error) {
			cfg := PlacementConfig{Models: o.Models, Batch: firstBatch(o.Batches), Quick: o.Quick, Rec: o.Trace}
			tbl, bench, err := Placement(cfg)
			if err != nil {
				return nil, err
			}
			return &experiments.Result{Tables: []*experiments.Table{tbl}, Bench: bench}, nil
		},
	})
	experiments.Register(experiments.Experiment{
		Name:        "predictive",
		Description: "cold vs replay vs predictive prefetch under shifting Zipf traffic",
		Bench:       true,
		Run: func(o experiments.Options) (*experiments.Result, error) {
			cfg := PredictiveConfig{Models: o.Models, Quick: o.Quick, Rec: o.Trace}
			if b := firstBatch(o.Batches); b > 1 {
				cfg.Batch = b
			}
			tbl, bench, err := Predictive(cfg)
			if err != nil {
				return nil, err
			}
			return &experiments.Result{Tables: []*experiments.Table{tbl}, Bench: bench}, nil
		},
	})
	experiments.Register(experiments.Experiment{
		Name:        "failover",
		Description: "GPU failure domains: health-monitored evacuation with warm failover",
		Bench:       true,
		Run: func(o experiments.Options) (*experiments.Result, error) {
			cfg := FailoverConfig{Models: o.Models, Batch: firstBatch(o.Batches), Quick: o.Quick, Rec: o.Trace}
			tbl, bench, err := Failover(cfg)
			if err != nil {
				return nil, err
			}
			return &experiments.Result{Tables: []*experiments.Table{tbl}, Bench: bench}, nil
		},
	})
	experiments.Register(experiments.Experiment{
		Name:        "hostperf",
		Description: "host-side ns/request and allocs/request across the serving hot paths",
		Bench:       true,
		Run: func(o experiments.Options) (*experiments.Result, error) {
			cfg := HostPerfConfig{Models: o.Models, Batch: firstBatch(o.Batches), Quick: o.Quick}
			tbl, bench, err := HostPerf(cfg)
			if err != nil {
				return nil, err
			}
			return &experiments.Result{Tables: []*experiments.Table{tbl}, Bench: bench}, nil
		},
	})
}

// firstOr picks the first explicit model, else def.
func firstOr(models []string, def string) string {
	if len(models) > 0 {
		return models[0]
	}
	return def
}

// firstBatch picks the first explicit batch, else 1.
func firstBatch(batches []int) int {
	if len(batches) > 0 {
		return batches[0]
	}
	return 1
}
