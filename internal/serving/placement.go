package serving

import (
	"fmt"
	"time"

	"pask/internal/backend"
	"pask/internal/codeobj"
	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/sim"
	"pask/internal/trace"
)

// PlacementPolicy selects which GPU of a multi-GPU host a newly arriving
// tenant attaches to. Placement decides cold-start cost before a single
// module loads: landing a model next to its resident kernels is the
// cheapest load there is (the serverless-LLM observation that locality
// dominates startup; PAPERS.md).
type PlacementPolicy string

const (
	// PlaceFirstFit picks the lowest-index GPU with a free tenant slot —
	// the naive scheduler that ignores residency entirely.
	PlaceFirstFit PlacementPolicy = "first-fit"
	// PlaceAffinity picks the free GPU whose resident modules overlap the
	// arriving model's object set the most: tenants land where their
	// kernels already are.
	PlaceAffinity PlacementPolicy = "residency-affinity"
	// PlaceBalanced picks the free GPU with the fewest active tenants,
	// spreading load evenly without looking at residency.
	PlaceBalanced PlacementPolicy = "load-balanced"
)

// PlacementPolicies returns all policies in presentation order.
func PlacementPolicies() []PlacementPolicy {
	return []PlacementPolicy{PlaceFirstFit, PlaceAffinity, PlaceBalanced}
}

// MultiGPUHost is a server with several GPUs — possibly of different
// vendors — each carrying its own shared tenant runtime (flavored per the
// device's ISA) and categorical cache, connected by the host's PCIe/NUMA
// link model. It adds two levers a single GPUHost cannot express: the
// placement policy (which GPU gets which tenant) and cross-GPU cache
// peering (a load miss served by a same-ISA neighbor's resident copy over
// the interconnect when that beats re-reading the store).
type MultiGPUHost struct {
	Env   *sim.Env
	Host  *device.Host
	Nodes []*GPUHost // one shared-runtime host per GPU, same index as Host

	slots  int   // tenant slots per GPU
	active []int // live tenants per GPU

	// health, when set, gates placement and peering on per-GPU health:
	// quarantined and dead devices take no new tenants and serve no peer
	// copies. links, when set, injects link faults into peer transfers.
	health HealthSource
	links  LinkFaultSource
}

// HealthSource answers per-GPU usability queries — implemented by
// HealthMonitor. Without one, only driver-reported device loss gates use.
type HealthSource interface {
	Usable(i int) bool
}

// LinkFaultSource rolls the fate of a peer transfer over the link between
// GPUs i and j starting at now: a positive stall stretches the transfer,
// down fails it after the stall. Implemented by *faults.Injector.
type LinkFaultSource interface {
	LinkFault(now time.Duration, i, j int) (stall time.Duration, down bool)
}

// NewMultiGPUHost builds a cold multi-GPU serving host over topo. Each GPU
// gets a tenancy over storeFor(arch) — same-ISA GPUs must share one store so
// peer copies are byte-identical to store loads. slotsPerGPU bounds how many
// tenants placement packs onto one device; peering installs the cross-GPU
// peer source on every runtime.
func NewMultiGPUHost(env *sim.Env, topo *device.Host, storeFor func(arch string) *codeobj.Store, slotsPerGPU int, peering bool) *MultiGPUHost {
	mh := &MultiGPUHost{
		Env:    env,
		Host:   topo,
		slots:  slotsPerGPU,
		active: make([]int, topo.NumGPUs()),
	}
	for i := 0; i < topo.NumGPUs(); i++ {
		gpu := topo.GPU(i)
		mh.Nodes = append(mh.Nodes, &GPUHost{
			Env:   env,
			Ten:   experiments.NewTenancyOn(env, gpu, storeFor(gpu.Profile.Arch)),
			Cache: core.NewSharedCache(),
		})
	}
	if peering {
		for i := range mh.Nodes {
			mh.Nodes[i].Root().SetPeers(&peerSource{mh: mh, idx: i})
		}
	}
	return mh
}

// SetHealth installs the host's health source (NewHealthMonitor calls it).
func (mh *MultiGPUHost) SetHealth(h HealthSource) { mh.health = h }

// SetLinkFaults installs the link-fault source peer transfers consult.
func (mh *MultiGPUHost) SetLinkFaults(lf LinkFaultSource) { mh.links = lf }

// Usable reports whether GPU i may take tenants and serve peer copies: not
// driver-lost, and — with a health source installed — not quarantined or
// dead on the health ladder.
func (mh *MultiGPUHost) Usable(i int) bool {
	if mh.Nodes[i].Root().DeviceLost() {
		return false
	}
	if mh.health != nil {
		return mh.health.Usable(i)
	}
	return true
}

// Active returns the number of live tenants on GPU i.
func (mh *MultiGPUHost) Active(i int) int { return mh.active[i] }

// Acquire claims a tenant slot on GPU i; Release frees it.
func (mh *MultiGPUHost) Acquire(i int) { mh.active[i]++ }

// Release frees a tenant slot on GPU i.
func (mh *MultiGPUHost) Release(i int) { mh.active[i]-- }

// CloseAll closes every stream of every GPU, including per-tenant streams.
// Call exactly once, after all tenants finished.
func (mh *MultiGPUHost) CloseAll() { mh.Host.CloseAll() }

// Pick chooses the GPU for an arriving tenant under the given policy.
// objectsByArch maps each ISA to the object paths the tenant's model loads
// when compiled for that ISA (residency-affinity scores candidates of
// different vendors against the right object set). Quarantined and dead
// GPUs are never candidates while any usable GPU survives. Usable GPUs
// with a free slot are preferred; when every usable slot is taken the
// policy ranks all usable GPUs, so arrival bursts overflow instead of
// blocking.
func (mh *MultiGPUHost) Pick(policy PlacementPolicy, objectsByArch map[string][]string) int {
	usable := make([]int, 0, len(mh.Nodes))
	for i := range mh.Nodes {
		if mh.Usable(i) {
			usable = append(usable, i)
		}
	}
	if len(usable) == 0 {
		// Every device is down: keep the historical deterministic answer
		// rather than deadlock — the caller's load will fail typed.
		for i := range mh.Nodes {
			usable = append(usable, i)
		}
	}
	candidates := make([]int, 0, len(usable))
	for _, i := range usable {
		if mh.active[i] < mh.slots {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		candidates = usable
	}
	best := candidates[0]
	switch policy {
	case PlaceAffinity:
		bestOverlap := -1
		for _, i := range candidates {
			root := mh.Nodes[i].Root()
			overlap := 0
			for _, path := range objectsByArch[root.GPU().Profile.Arch] {
				if root.Loaded(path) {
					overlap++
				}
			}
			if overlap > bestOverlap {
				bestOverlap, best = overlap, i
			}
		}
	case PlaceBalanced:
		for _, i := range candidates[1:] {
			if mh.active[i] < mh.active[best] {
				best = i
			}
		}
	default: // PlaceFirstFit: lowest index wins
	}
	return best
}

// peerSource implements backend.PeerSource for one GPU of a MultiGPUHost:
// a load miss may be served by the cheapest same-ISA neighbor holding the
// module resident, priced by the host's PCIe/NUMA link model.
type peerSource struct {
	mh  *MultiGPUHost
	idx int
}

// PeerLookup returns the cheapest same-ISA peer copy of path, if any.
// Quarantined and dead peers serve nothing (their registries may be empty
// or lying), and a link-faulted transfer is offered with its stall and —
// when the link is down — the error that makes the registry fall back to a
// local demand load.
func (ps *peerSource) PeerLookup(path string) (backend.PeerModule, bool) {
	arch := ps.mh.Host.GPU(ps.idx).Profile.Arch
	var best backend.PeerModule
	found := false
	for j := range ps.mh.Nodes {
		if j == ps.idx || ps.mh.Host.GPU(j).Profile.Arch != arch || !ps.mh.Usable(j) {
			continue
		}
		obj, ok := ps.mh.Nodes[j].Root().ResidentObject(path)
		if !ok {
			continue
		}
		cost := ps.mh.Host.PeerCopyTime(j, ps.idx, int64(obj.Size()))
		if !found || cost < best.Cost {
			best = backend.PeerModule{Object: obj, From: fmt.Sprintf("gpu%d", j), Cost: cost}
			found = true
			if ps.mh.links != nil {
				if stall, down := ps.mh.links.LinkFault(ps.mh.Env.Now(), j, ps.idx); down || stall > 0 {
					best.Stall = stall
					if down {
						best.Err = fmt.Errorf("serving: link gpu%d<->gpu%d down", j, ps.idx)
					}
				}
			}
		}
	}
	return best, found
}

// gpuObserver forwards one GPU's registry events into a shared recorder,
// prefixing gauge series with the GPU index so two same-flavor devices do
// not collapse into one series.
type gpuObserver struct {
	rec *trace.Recorder
	idx int
}

func (o gpuObserver) RegistryEvent(kind, path string, at time.Duration) {
	o.rec.RegistryEvent(kind, fmt.Sprintf("gpu%d:%s", o.idx, path), at)
}

func (o gpuObserver) RegistrySample(name string, at time.Duration, value float64) {
	o.rec.RegistrySample(fmt.Sprintf("gpu%d_%s", o.idx, name), at, value)
}
