package serving

import (
	"fmt"
	"hash/fnv"
	"time"

	"pask/internal/trace"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes requests through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets probe requests through; successes close the
	// breaker, one failure reopens it with a longer cooldown.
	BreakerHalfOpen
)

// String names the state for trace attributes.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig parameterizes the per-model circuit breakers. The zero value
// disables them.
type BreakerConfig struct {
	// Threshold is the number of consecutive request failures (serve errors
	// or deadline overruns from the FaultTolerance machinery) that trips the
	// breaker open. 0 disables the breaker.
	Threshold int
	// Cooldown is the base open→half-open wait (default 2ms). Repeated
	// trips back off exponentially from it, capped at MaxCooldown, with
	// deterministic seeded jitter — the same capped-backoff policy
	// FaultTolerance retries use.
	Cooldown time.Duration
	// MaxCooldown caps the trip backoff (default 8×Cooldown).
	MaxCooldown time.Duration
	// HalfOpenProbes is how many consecutive successes in half-open close
	// the breaker again (default 1).
	HalfOpenProbes int
	// Seed selects the deterministic jitter stream for cooldowns.
	Seed int64
}

func (c BreakerConfig) enabled() bool { return c.Threshold > 0 }

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 2 * time.Millisecond
}

func (c BreakerConfig) maxCooldown() time.Duration {
	if c.MaxCooldown > 0 {
		return c.MaxCooldown
	}
	return 8 * c.cooldown()
}

func (c BreakerConfig) probes() int {
	if c.HalfOpenProbes > 0 {
		return c.HalfOpenProbes
	}
	return 1
}

// expBackoff returns base·2^attempt capped at max, with a deterministic
// ±25% jitter drawn from (seed, key, attempt) — the same FNV construction
// the fault injector uses, so identical configurations replay identical
// waits in virtual time while distinct keys desynchronize (no thundering
// herd of simultaneous retries).
func expBackoff(base, max time.Duration, attempt int, seed int64, key string) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, key, attempt)
	frac := float64(h.Sum64()>>11) / float64(1<<53) // uniform in [0,1)
	return d + time.Duration((frac-0.5)*0.5*float64(d))
}

// breaker is one model's circuit over the shared runtime: closed→open on
// Threshold consecutive failures, open→half-open after a deterministic
// cooldown, half-open→closed after enough probe successes (or back to open
// on any probe failure, with a longer cooldown). All transitions happen at
// request-dispatch points, so breaker state is a pure function of the
// virtual-time request/outcome sequence — same seed, same transitions.
type breaker struct {
	cfg   BreakerConfig
	model string
	stats *Stats
	rec   *trace.Recorder

	state    BreakerState
	fails    int // consecutive failures while closed or half-open
	okProbes int // consecutive half-open successes
	streak   int // consecutive trips without an intervening close (backoff exponent)
	reopenAt time.Duration
}

func newBreaker(cfg BreakerConfig, model string, stats *Stats, rec *trace.Recorder) *breaker {
	return &breaker{cfg: cfg, model: model, stats: stats, rec: rec}
}

// transition moves the breaker and emits the counter/instant trail the
// Chrome trace and /metrics surfaces read.
func (b *breaker) transition(now time.Duration, to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	b.rec.Count("breaker_state:"+b.model, now, float64(to))
	b.rec.Instant("overload", "breaker:"+b.model+":"+to.String(), now)
	switch to {
	case BreakerOpen:
		b.stats.BreakerTrips++
	case BreakerClosed:
		b.stats.BreakerRecoveries++
	}
}

// allow reports whether a request may pass at now, performing the
// open→half-open transition when the cooldown has elapsed.
func (b *breaker) allow(now time.Duration) bool {
	if b == nil {
		return true
	}
	switch b.state {
	case BreakerOpen:
		if now < b.reopenAt {
			return false
		}
		b.okProbes = 0
		b.transition(now, BreakerHalfOpen)
		return true
	default:
		return true
	}
}

// observe folds one request outcome into the breaker.
func (b *breaker) observe(now time.Duration, err error) {
	if b == nil {
		return
	}
	if err == nil {
		b.fails = 0
		if b.state == BreakerHalfOpen {
			b.okProbes++
			if b.okProbes >= b.cfg.probes() {
				b.streak = 0
				b.transition(now, BreakerClosed)
			}
		}
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.cfg.Threshold {
		b.trip(now)
	}
}

// trip opens the breaker with the streak's capped-exponential cooldown.
func (b *breaker) trip(now time.Duration) {
	cool := expBackoff(b.cfg.cooldown(), b.cfg.maxCooldown(), b.streak, b.cfg.Seed, b.model)
	b.streak++
	b.fails = 0
	b.reopenAt = now + cool
	b.transition(now, BreakerOpen)
}
