package serving

import (
	"testing"
	"time"

	"pask/internal/core"
	"pask/internal/sim"
)

// The tentpole acceptance check: under the same deterministic interleaved
// trace, the second tenant's first cold start on a shared runtime is
// strictly lower than on an isolated one, the total module loads shrink, and
// the code-object store is byte-identical across both arms.
func TestMultitenantSharedImprovesSecondTenant(t *testing.T) {
	cfg := MultitenantConfig{PerTenant: 2, Interval: 4 * time.Millisecond}
	_, res, err := Multitenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoreUntouched() {
		t.Fatalf("store fingerprints diverged: %08x %08x %08x",
			res.FingerprintBefore, res.FingerprintBetween, res.FingerprintAfter)
	}
	second := res.Models[1]
	iso, sh := FirstCold(res.Isolated, second), FirstCold(res.Shared, second)
	if iso == 0 || sh == 0 {
		t.Fatalf("missing cold starts for %s: iso=%v shared=%v", second, iso, sh)
	}
	if sh >= iso {
		t.Fatalf("second tenant %s cold start not improved: shared %v vs isolated %v", second, sh, iso)
	}
	if res.Shared.ModuleLoads >= res.Isolated.ModuleLoads {
		t.Fatalf("shared arm loaded %d modules, isolated %d: sharing saved nothing",
			res.Shared.ModuleLoads, res.Isolated.ModuleLoads)
	}
	// Attribution covers every spawned tenant plus the root view.
	if len(res.Shared.TenantLoads) != res.Shared.Spawned+1 {
		t.Fatalf("tenant attribution rows = %d, want %d", len(res.Shared.TenantLoads), res.Shared.Spawned+1)
	}
}

// Two tenants cold-starting the same model at the same instant on a shared
// runtime coalesce onto single loads: each distinct .pko is loaded exactly
// once, and the laggard tenant records coalesced waits instead of loads.
func TestScaleOutSharedCoalescesSameModel(t *testing.T) {
	setups := setupSharedModels(t, "alex")
	models := []string{"alex", "alex"}
	pol := Policy{Scheme: core.SchemePaSK}
	iso, err := ScaleOutModels(setups, models, pol, false)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := ScaleOutModels(setups, models, pol, true)
	if err != nil {
		t.Fatal(err)
	}
	if 2*sh.ModuleLoads != iso.ModuleLoads {
		t.Fatalf("shared loads %d, isolated %d: each object must load exactly once shared",
			sh.ModuleLoads, iso.ModuleLoads)
	}
	coalesced, shared := 0, 0
	for _, ts := range sh.TenantLoads {
		coalesced += ts.CoalescedWaits
		shared += ts.SharedHits
	}
	if coalesced == 0 {
		t.Fatal("no coalesced waits: concurrent identical loads were not deduplicated")
	}
	if shared == 0 {
		t.Fatal("no shared hits recorded")
	}
}

// Crash recovery on a shared GPU replaces one tenant without touching the
// survivors: the dead view detaches, the negative cache clears, and every
// module a surviving tenant holds stays resident and referenced.
func TestReplaceTenantPreservesSurvivorModules(t *testing.T) {
	setups := setupSharedModels(t, "res", "vgg")
	env := sim.NewEnv()
	host := NewGPUHost(env, setups["res"].Profile, setups["res"].Store)
	var stats Stats
	pol := Policy{Scheme: core.SchemePaSK}
	a := newTenantFTServer(host, setups["res"], pol, &stats, "res/0")
	b := newTenantFTServer(host, setups["vgg"], pol, &stats, "vgg/0")
	env.Spawn("driver", func(p *sim.Proc) {
		defer host.Close()
		if _, err := a.serve(p, 0); err != nil {
			t.Errorf("tenant a serve: %v", err)
			return
		}
		if _, err := b.serve(p, 1); err != nil {
			t.Errorf("tenant b serve: %v", err)
			return
		}
		pinnedA := a.inst.pr.RT.PinnedPaths()
		if len(pinnedA) == 0 {
			t.Error("survivor holds no pinned modules")
			return
		}
		// Detached views stay on the runtime's roster for stats attribution,
		// so a replacement adds one view rather than swapping in place.
		views := host.Root().NumViews()
		b.replaceTenant()
		if got := host.Root().NumViews(); got != views+1 {
			t.Errorf("views = %d after replace, want %d", got, views+1)
		}
		for _, path := range pinnedA {
			if !host.Root().Loaded(path) {
				t.Errorf("survivor module %s evicted by tenant replacement", path)
			}
			if host.Root().Refs(path) == 0 {
				t.Errorf("survivor module %s lost its reference", path)
			}
		}
		if b.inst.Tenant() != "vgg/0#1" {
			t.Errorf("replacement tenant = %q, want generation suffix", b.inst.Tenant())
		}
		// The replacement serves — warm, since the dead tenant's modules are
		// still resident on the shared GPU.
		if _, err := b.serve(p, 2); err != nil {
			t.Errorf("replacement serve: %v", err)
		}
		a.close()
		b.close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
