package serving

import (
	"fmt"
	"runtime"
	"time"

	"pask/internal/codeobj"
	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/hip"
	"pask/internal/kernels"
	"pask/internal/miopen"
	"pask/internal/sim"
	"pask/internal/tensor"
)

// HostPerfConfig parameterizes the host-pipeline throughput probe. The zero
// value replays one million requests per micro stage and two thousand
// through the fleet dispatcher; Quick scales both down for CI smoke runs.
type HostPerfConfig struct {
	Requests         int            // per micro stage (default 1,000,000; quick 20,000)
	DispatchRequests int            // fleet-dispatch stage (default 2,000; quick 200)
	Models           []string       // dispatch-stage tenants (default res, vgg)
	Batch            int            // default 1
	Profile          device.Profile // default MI100
	Quick            bool           // CI-sized request counts
}

// Fill applies the documented defaults to unset fields.
func (c *HostPerfConfig) Fill() {
	if c.Requests <= 0 {
		if c.Quick {
			c.Requests = 20_000
		} else {
			c.Requests = 1_000_000
		}
	}
	if c.DispatchRequests <= 0 {
		if c.Quick {
			c.DispatchRequests = 200
		} else {
			c.DispatchRequests = 2_000
		}
	}
	if len(c.Models) == 0 {
		c.Models = []string{"res", "vgg"}
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Profile.Name == "" {
		c.Profile = device.MI100()
	}
}

// HostPerfStage is one measured hot path: host nanoseconds and heap
// allocations per request, averaged over the stage's request count.
type HostPerfStage struct {
	Stage            string  `json:"stage"`
	Requests         int     `json:"requests"`
	NsPerRequest     float64 `json:"ns_per_request"`
	AllocsPerRequest float64 `json:"allocs_per_request"`
}

// HostPerfResult is the machine-readable payload emitted under "bench" in
// the experiment envelope. Unlike every other experiment these numbers are
// host wall-clock measurements: they vary across machines and runs, while
// the simulation's virtual-time accounting stays byte-deterministic.
type HostPerfResult struct {
	Requests         int             `json:"requests"`
	DispatchRequests int             `json:"dispatch_requests"`
	Quick            bool            `json:"quick"`
	Stages           []HostPerfStage `json:"stages"`
}

// measureHost runs fn once and attributes its wall time and heap
// allocations evenly over n requests. ReadMemStats brackets keep the
// numbers comparable with `go test -bench -benchmem` output.
func measureHost(stage string, n int, fn func() error) (HostPerfStage, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m0 := ms.Mallocs
	t0 := time.Now()
	err := fn()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms)
	st := HostPerfStage{
		Stage:            stage,
		Requests:         n,
		NsPerRequest:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerRequest: float64(ms.Mallocs-m0) / float64(n),
	}
	return st, err
}

// hostPerfProblem returns a problem ConvBinWinogradFwdFixed binds at channel
// count c — distinct c values yield distinct bindings, so one pattern list
// holds many instances, the shape fleet traffic scans (paper §III-C).
func hostPerfProblem(c int) miopen.Problem {
	return miopen.NewConvProblem(tensor.Shape{N: 1, C: c, H: 14, W: 14}, c, 3, 3,
		kernels.Conv2DParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1},
		1, tensor.F32, tensor.NCHW)
}

// hostPerfCacheQuery replays n steady-state categorical-cache hits: a
// 16-entry pattern list with the winner at the MRU head, the per-request
// lookup every warm instance pays.
func hostPerfCacheQuery(prof device.Profile, n int) (HostPerfStage, error) {
	const entries = 16
	reg := miopen.NewRegistry(miopen.NewCtx(prof))
	sol, ok := reg.ByID("ConvBinWinogradFwdFixed")
	if !ok {
		return HostPerfStage{}, fmt.Errorf("serving: hostperf: ConvBinWinogradFwdFixed not registered")
	}
	insts := make([]miopen.Instance, 0, entries)
	probs := make([]miopen.Problem, 0, entries)
	for i := 0; i < entries; i++ {
		p := hostPerfProblem(16 + 8*i)
		probs = append(probs, p)
		insts = append(insts, miopen.Bind(sol, &p))
	}
	store := codeobj.NewStore()
	if err := miopen.MaterializeObjects(store, prof.Arch, insts); err != nil {
		return HostPerfStage{}, err
	}
	env := sim.NewEnv()
	gpu := device.NewGPU(env, prof)
	lib := miopen.NewLibrary(reg, hip.NewRuntime(env, gpu, device.DefaultHost(), store))
	cache := core.NewCategoricalCache()

	var st HostPerfStage
	var stageErr error
	env.Spawn("hostperf-cache", func(p *sim.Proc) {
		defer gpu.CloseAll()
		for _, inst := range insts {
			if err := lib.EnsureLoaded(p, inst); err != nil {
				stageErr = err
				return
			}
		}
		for _, inst := range insts {
			cache.Insert(inst)
		}
		want, prob := insts[0], probs[0]
		st, stageErr = measureHost("cache_query", n, func() error {
			for i := 0; i < n; i++ {
				if _, ok := cache.GetSub(p, lib, want, &prob); !ok {
					return fmt.Errorf("serving: hostperf: expected cache hit")
				}
			}
			return nil
		})
	})
	if err := env.Run(); err != nil {
		return st, err
	}
	return st, stageErr
}

// hostPerfRegistryHit replays n resident-module lookups through the backend
// registry — the loader fast path a warmed tenant hits per kernel launch.
func hostPerfRegistryHit(prof device.Profile, n int) (HostPerfStage, error) {
	const path = "hostperf.pko"
	store := codeobj.NewStore()
	specs := []codeobj.KernelSpec{
		{Name: "hostperf_main", Pattern: "GEMM", CodeSize: 8 << 10},
		{Name: "hostperf_helper", Pattern: "GEMM", CodeSize: 2 << 10},
	}
	if err := store.PutBuilt(path, prof.Arch, specs); err != nil {
		return HostPerfStage{}, err
	}
	env := sim.NewEnv()
	gpu := device.NewGPU(env, prof)
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)

	var st HostPerfStage
	var stageErr error
	env.Spawn("hostperf-registry", func(p *sim.Proc) {
		defer gpu.CloseAll()
		if _, err := rt.ModuleLoad(p, path); err != nil {
			stageErr = err
			return
		}
		st, stageErr = measureHost("registry_hit", n, func() error {
			for i := 0; i < n; i++ {
				if _, err := rt.ModuleLoad(p, path); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err := env.Run(); err != nil {
		return st, err
	}
	return st, stageErr
}

// hostPerfParse replays n full parses of a representative code object
// (four kernels, 2 KB of payload each) — the §III-A parser stage charged
// on every loader miss.
func hostPerfParse(prof device.Profile, n int) (HostPerfStage, error) {
	specs := make([]codeobj.KernelSpec, 4)
	for i := range specs {
		specs[i] = codeobj.KernelSpec{
			Name: fmt.Sprintf("hostperf_parse_%d", i), Pattern: "GEMM", CodeSize: 2 << 10,
		}
	}
	data, err := codeobj.Build("hostperf-parse", prof.Arch, specs)
	if err != nil {
		return HostPerfStage{}, err
	}
	return measureHost("codeobj_parse", n, func() error {
		for i := 0; i < n; i++ {
			if _, err := codeobj.Parse(data); err != nil {
				return err
			}
		}
		return nil
	})
}

// hostPerfDispatch replays a capped interleaved trace through the fleet
// dispatcher on a shared runtime — the end-to-end host cost per served
// request, every layer included. Returns the stage plus the fleet stats
// for the notes.
func hostPerfDispatch(cfg HostPerfConfig) (HostPerfStage, *FleetStats, error) {
	setups, err := experiments.PrepareModelsShared(cfg.Models, cfg.Batch, cfg.Profile)
	if err != nil {
		return HostPerfStage{}, nil, err
	}
	perModel := cfg.DispatchRequests / len(cfg.Models)
	if perModel < 1 {
		perModel = 1
	}
	trace := InterleavedTrace(cfg.Models, perModel, 2*time.Millisecond)
	fleetCfg := FleetConfig{
		Policy:    Policy{Scheme: core.SchemePaSK},
		KeepAlive: time.Second,
		Shared:    true,
	}
	var fs *FleetStats
	st, err := measureHost("fleet_dispatch", len(trace), func() error {
		var serveErr error
		fs, serveErr = ServeFleetModels(setups, cfg.Models[0], fleetCfg, trace)
		return serveErr
	})
	return st, fs, err
}

// countColds sums cold starts across every model in the fleet stats.
func countColds(fs *FleetStats) int {
	n := 0
	for _, lat := range fs.ColdByModel {
		n += len(lat)
	}
	return n
}

// HostPerf runs the host-pipeline throughput probe: three micro stages
// replaying cfg.Requests operations each through the categorical cache, the
// backend registry and the code-object parser, plus a capped replay through
// the fleet dispatcher. The table and bench payload report host-side
// ns/request and allocs/request per stage — the raw-speed counterpart to
// the committed `go test -bench` baseline (see docs/PERFORMANCE.md). Host
// wall-clock numbers vary across machines and runs by design; the
// simulation's virtual-time accounting is untouched.
func HostPerf(cfg HostPerfConfig) (*experiments.Table, *HostPerfResult, error) {
	cfg.Fill()
	res := &HostPerfResult{
		Requests:         cfg.Requests,
		DispatchRequests: cfg.DispatchRequests,
		Quick:            cfg.Quick,
	}

	stages := []func() (HostPerfStage, error){
		func() (HostPerfStage, error) { return hostPerfCacheQuery(cfg.Profile, cfg.Requests) },
		func() (HostPerfStage, error) { return hostPerfRegistryHit(cfg.Profile, cfg.Requests) },
		func() (HostPerfStage, error) { return hostPerfParse(cfg.Profile, cfg.Requests) },
	}
	for _, run := range stages {
		st, err := run()
		if err != nil {
			return nil, nil, fmt.Errorf("serving: hostperf stage %s: %w", st.Stage, err)
		}
		res.Stages = append(res.Stages, st)
	}
	dispatch, fs, err := hostPerfDispatch(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("serving: hostperf stage fleet_dispatch: %w", err)
	}
	res.Stages = append(res.Stages, dispatch)

	table := &experiments.Table{
		ID: "hostperf",
		Title: fmt.Sprintf("host-pipeline throughput, %d requests per micro stage (%s b%d on %s)",
			cfg.Requests, join(cfg.Models), cfg.Batch, cfg.Profile.Name),
		Headers: []string{"stage", "requests", "ns_per_request", "allocs_per_request"},
		Notes: []string{
			fmt.Sprintf("fleet_dispatch capped at %d requests (%d per tenant); micro stages replay %d each",
				dispatch.Requests, dispatch.Requests/len(cfg.Models), cfg.Requests),
			"host wall-clock metrics: values vary across machines and runs; virtual-time accounting is unaffected (docs/PERFORMANCE.md)",
			fmt.Sprintf("fleet_dispatch arm: %d module loads, %d cold starts",
				fs.ModuleLoads, countColds(fs)),
		},
	}
	for _, st := range res.Stages {
		table.Rows = append(table.Rows, []string{
			st.Stage,
			fmt.Sprintf("%d", st.Requests),
			fmt.Sprintf("%.1f", st.NsPerRequest),
			fmt.Sprintf("%.3f", st.AllocsPerRequest),
		})
	}
	return table, res, nil
}
