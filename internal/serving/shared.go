package serving

import (
	"fmt"

	"pask/internal/backend"
	"pask/internal/codeobj"
	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/sim"
)

// GPUHost is one physical GPU hosting multiple model tenants: the shared
// kernel runtime (one module registry, one negative cache, one driver lock)
// and the per-GPU categorical solution cache every tenant's executor
// consults. Instances created with NewTenantInstance attach refcounted
// views instead of owning a runtime, so a code object loaded while serving
// one model is immediately resident — and reusable — for every other model
// on the device.
type GPUHost struct {
	Env   *sim.Env
	Ten   *experiments.Tenancy
	Cache *core.SharedCache
}

// NewGPUHost brings up a cold shared GPU over the given store.
func NewGPUHost(env *sim.Env, prof device.Profile, store *codeobj.Store) *GPUHost {
	return &GPUHost{Env: env, Ten: experiments.NewTenancy(env, prof, store), Cache: core.NewSharedCache()}
}

// NewGPUHostOn brings up a cold shared GPU host on an existing device,
// selecting the backend flavor by the device's ISA (A100 nodes get the
// CUDA runtime, the ROCm profiles HIP). Elastic fleets that spawn nodes on
// demand use this so every node matches the experiment's device profile.
func NewGPUHostOn(env *sim.Env, gpu *device.GPU, store *codeobj.Store) *GPUHost {
	return &GPUHost{Env: env, Ten: experiments.NewTenancyOn(env, gpu, store), Cache: core.NewSharedCache()}
}

// Root returns the shared runtime's root view (GPU-level stats, failures,
// residency).
func (h *GPUHost) Root() backend.Backend { return h.Ten.Root }

// Close tears down the device: every stream, including the per-tenant ones,
// is closed. Call exactly once, after all tenants finished.
func (h *GPUHost) Close() { h.Ten.GPU.CloseAll() }

// NewTenantInstance creates an instance for ms that attaches to the shared
// GPU host as the named tenant instead of owning a private runtime. The
// policy's fault injector, if any, installs into the *shared* runtime: load
// faults on a shared GPU hit whichever tenant triggers the load.
func NewTenantInstance(host *GPUHost, ms *experiments.ModelSetup, policy Policy, tenant string) *Instance {
	in := &Instance{
		ms: ms, pr: ms.AttachIn(host.Ten, tenant), policy: policy,
		host: host, tenant: tenant,
	}
	if policy.Faults != nil {
		in.pr.RT.SetLoadFaults(policy.Faults)
		policy.Faults.ArmReset(host.Env, host.Root().UnloadAll)
	}
	if policy.Rec != nil {
		in.pr.Record(policy.Rec)
	}
	in.startWarmup(host.Env)
	return in
}

// Tenant returns the instance's tenant name ("" for isolated instances).
func (in *Instance) Tenant() string { return in.tenant }

// newTenantFTServer is newFTServer for instances attached to a shared host.
func newTenantFTServer(host *GPUHost, ms *experiments.ModelSetup, policy Policy, stats *Stats, tenant string) *ftServer {
	return &ftServer{
		env: host.Env, ms: ms, policy: policy, stats: stats,
		host: host, tenant: tenant,
		inst: NewTenantInstance(host, ms, policy, tenant),
	}
}

// detachTenant releases the live instance's view of the shared runtime:
// pins drop so eviction may reclaim the tenant's modules, but nothing is
// unloaded and no other tenant's stream or pinned module is touched.
func (s *ftServer) detachTenant() {
	s.inst.pr.RT.Detach()
}

// replaceTenant is crash recovery on a shared GPU: the crashed tenant's
// view detaches (its pins drop; modules other tenants reference stay put),
// the shared negative cache is cleared — a fresh isolated process starts
// with an empty one, and recovery must be able to retry loads the dead
// tenant poisoned — and a fresh view attaches under a generation-suffixed
// name. The GPU, its context and every surviving tenant remain live
// throughout; compare Instance close-and-restart in the isolated path,
// which tears down the whole device.
func (s *ftServer) replaceTenant() {
	s.detachTenant()
	s.host.Root().ClearFailures()
	s.gen++
	name := fmt.Sprintf("%s#%d", s.tenant, s.gen)
	s.inst = NewTenantInstance(s.host, s.ms, s.policy, name)
}
