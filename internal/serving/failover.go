package serving

import (
	"fmt"
	"os"
	"time"

	"pask/internal/backend"
	"pask/internal/cacheimg"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/sim"
	"pask/internal/trace"
	"pask/internal/warmup"
)

// FailoverConfig parameterizes the GPU failure-domain experiment: a
// heterogeneous 4-GPU fleet serving steady tenant request streams while one
// device dies (or degrades, or loses a link) mid-stream, with the health
// monitor driving tenant evacuation. The zero value runs three models, nine
// tenants and all three paper devices.
type FailoverConfig struct {
	Models   []string         // zoo abbreviations (default alex, res, vgg)
	Batch    int              // default 1
	Profiles []device.Profile // primary fleet devices (default all three paper profiles)
	Requests int              // requests per tenant (default 8)
	Interval time.Duration    // tenant arrival gap (default 4ms)
	Gap      time.Duration    // think time between a tenant's requests (default 6ms)
	KillAt   time.Duration    // when the victim GPU falls off the bus (default 45ms)
	FlapFor  time.Duration    // link-flap window length from KillAt (default 30ms)
	Degrade  time.Duration    // ECC-degradation window length (default 25ms)
	Settle   time.Duration    // post-stream dwell so quarantined GPUs can rejoin (default 40ms)
	Slots    int              // tenant slots per GPU (default len(Models)+1)
	Quick    bool             // CI smoke size: two models, five requests
	Rec      *trace.Recorder  // optional: records the first fleet's warm-failover arm
}

// Fill applies the documented defaults to unset fields.
func (c *FailoverConfig) Fill() {
	if c.Quick {
		if len(c.Models) == 0 {
			c.Models = []string{"alex", "res"}
		}
		if c.Requests <= 0 {
			c.Requests = 5
		}
	}
	if len(c.Models) == 0 {
		c.Models = []string{"alex", "res", "vgg"}
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if len(c.Profiles) == 0 {
		c.Profiles = device.Profiles()
	}
	if c.Requests <= 0 {
		c.Requests = 8
	}
	if c.Interval <= 0 {
		c.Interval = 4 * time.Millisecond
	}
	if c.Gap <= 0 {
		c.Gap = 6 * time.Millisecond
	}
	if c.KillAt <= 0 {
		c.KillAt = 45 * time.Millisecond
	}
	if c.FlapFor <= 0 {
		// Must cover the evacuees' first loads on the spare, which trail the
		// kill by a full context init (tens of ms on every profile).
		c.FlapFor = 150 * time.Millisecond
	}
	if c.Degrade <= 0 {
		// Long enough that the victim's first module loads — which start
		// only after tens of ms of context init (110ms on the 6900XT) —
		// fall inside the window on every profile with room for the error
		// cadence to trip the monitor.
		c.Degrade = 250 * time.Millisecond
	}
	if c.Settle <= 0 {
		c.Settle = 40 * time.Millisecond
	}
	if c.Slots <= 0 {
		c.Slots = len(c.Models) + 1
	}
}

// Tenants is the arrival count: one tenant per model on each of the three
// hosting GPUs (the spare starts empty by design).
func (c *FailoverConfig) Tenants() int { return 3 * len(c.Models) }

// FailoverGPU is one device's share of an arm's outcome, including where it
// ended on the health ladder.
type FailoverGPU struct {
	Driver         string `json:"driver"`
	Arch           string `json:"arch"`
	Node           int    `json:"node"`
	FinalState     string `json:"final_state"`
	ModuleLoads    int    `json:"module_loads"`
	PeerFetches    int    `json:"peer_fetches"`
	PeerFetchFails int    `json:"peer_fetch_fails"`
}

// FailoverArm is the outcome of one fault scenario on one fleet.
type FailoverArm struct {
	Name           string        `json:"name"`
	Peering        bool          `json:"peering"`
	Images         bool          `json:"images"`
	Served         int           `json:"served"`
	Evacuated      int           `json:"evacuated"`
	Failed         int           `json:"failed"`
	Evacuations    int           `json:"evacuations"`  // monitor transitions into quarantined/dead
	EvacTenants    int           `json:"evac_tenants"` // tenants that relocated at least once
	ImageAttaches  int           `json:"image_attaches"`
	MeanTTFIMs     float64       `json:"ttfi_mean_ms"`      // steady-state served requests
	MeanEvacMs     float64       `json:"mean_evac_ttfi_ms"` // relocation through first inference
	PeerFetches    int           `json:"peer_fetches"`
	PeerFetchFails int           `json:"peer_fetch_fails"`
	ModuleLoads    int           `json:"module_loads"`
	GPUs           []FailoverGPU `json:"gpus"`
}

// FailoverFleet is one heterogeneous fleet's full scenario sweep.
type FailoverFleet struct {
	Primary   string        `json:"primary"`
	Secondary string        `json:"secondary"`
	Arms      []FailoverArm `json:"arms"`
}

// Arm returns the named arm, or nil.
func (f *FailoverFleet) Arm(name string) *FailoverArm {
	for i := range f.Arms {
		if f.Arms[i].Name == name {
			return &f.Arms[i]
		}
	}
	return nil
}

// FailoverBench is the machine-readable payload of the experiment
// (BENCH_failover.json).
type FailoverBench struct {
	Models   []string        `json:"models"`
	Batch    int             `json:"batch"`
	Tenants  int             `json:"tenants"`
	Requests int             `json:"requests_per_tenant"`
	Fleets   []FailoverFleet `json:"fleets"`
}

// The four arms every fleet runs. Cold and warm share the same scheduled
// GPU death; they differ only in what the evacuated tenants can salvage.
const (
	armColdRespawn  = "gpu-death/cold"
	armWarmFailover = "gpu-death/warm"
	armLinkFlap     = "gpu-death/link-flap"
	armDegraded     = "ecc-degraded"
)

// failoverScenario describes one arm's fault plan and salvage levers.
type failoverScenario struct {
	name    string
	peering bool // cross-GPU cache peering on the fleet
	images  bool // cache-image attach + manifest replay on evacuation
	plan    func(cfg *FailoverConfig) faults.Plan
	flap    bool // install the injector as the host's link-fault source
}

func failoverScenarios() []failoverScenario {
	kill := func(cfg *FailoverConfig) faults.Plan {
		return faults.Plan{GPUKillAt: cfg.KillAt, GPUKillIdx: failoverVictim}
	}
	return []failoverScenario{
		{name: armColdRespawn, peering: false, images: false, plan: kill},
		{name: armWarmFailover, peering: true, images: true, plan: kill},
		{name: armLinkFlap, peering: true, images: true, flap: true,
			plan: func(cfg *FailoverConfig) faults.Plan {
				p := kill(cfg)
				p.LinkFlapFrom = cfg.KillAt
				p.LinkFlapUntil = cfg.KillAt + cfg.FlapFor
				p.LinkFlapGPU = failoverSpare
				return p
			}},
		{name: armDegraded, peering: true, images: true,
			plan: func(cfg *FailoverConfig) faults.Plan {
				// The window covers the victim's tenant bring-up loads: with
				// nothing resident anywhere yet those are local (peering has
				// nothing to offer), so the injected ECC faults land on the
				// registry counters the monitor scrapes. Rejoin does not wait
				// for the window — once the tenants evacuate, the idle GPU
				// polls clean and serves out its probation.
				return faults.Plan{Seed: 11, DegradeGPU: failoverVictim,
					DegradeFactor: 3, DegradeTransient: 0.9,
					DegradeUntil: cfg.Degrade}
			}},
	}
}

// Fleet roles: the victim dies in the death arms and degrades (then
// recovers) in the ECC arm; the twin carries same-ISA residency the warm
// arms peer-fetch from; the spare starts empty and absorbs evacuees; the
// cross GPU is the cross-vendor device that keeps the fleet heterogeneous.
const (
	failoverVictim = 0 // primary ISA, NUMA node 0
	failoverTwin   = 1 // primary ISA, NUMA node 0
	failoverSpare  = 2 // primary ISA, NUMA node 1
	failoverCross  = 3 // secondary ISA, NUMA node 1
)

// Failover runs the failure-domain sweep: for each primary profile, a
// four-GPU fleet (three primary + one cross-vendor secondary) serves steady
// per-tenant request streams while the health monitor watches. The cold and
// warm arms kill the victim GPU mid-stream and differ only in salvage —
// warm evacuees peer-refetch kernels still resident on the surviving twin
// and replay an attached cache image, cold evacuees demand-load everything
// from the store. The link-flap arm additionally fails the spare's links
// during the evacuation so peer transfers fall back to local loads, and the
// degraded arm walks the full ladder: ECC-style degradation on the twin,
// quarantine, evacuation, probation, rejoin. The experiment itself asserts
// zero failed requests everywhere and that warm evacuation TTFI is strictly
// below cold respawn on every fleet.
func Failover(cfg FailoverConfig) (*experiments.Table, *FailoverBench, error) {
	cfg.Fill()
	bench := &FailoverBench{Models: cfg.Models, Batch: cfg.Batch,
		Tenants: cfg.Tenants(), Requests: cfg.Requests}
	table := &experiments.Table{
		ID: "failover",
		Title: fmt.Sprintf("GPU failure domains: evacuation + warm failover on 4-GPU fleets (%s, %d tenants x %d requests)",
			join(cfg.Models), cfg.Tenants(), cfg.Requests),
		Headers: []string{"fleet", "arm", "served", "evac", "failed", "mean_evac_ms", "peer_fetches", "peer_fails", "health"},
	}

	imgDir, err := os.MkdirTemp("", "pask-failover-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(imgDir)

	for fi, primary := range cfg.Profiles {
		secondary := secondaryFor(primary)
		fleet := FailoverFleet{Primary: primary.Name, Secondary: secondary.Name}

		setups := map[string]map[string]*experiments.ModelSetup{}
		for _, prof := range []device.Profile{primary, secondary} {
			ss, err := experiments.PrepareModelsShared(cfg.Models, cfg.Batch, prof)
			if err != nil {
				return nil, nil, fmt.Errorf("serving: failover prepare %s: %w", prof.Name, err)
			}
			setups[prof.Arch] = ss
		}
		objects, err := distinctObjectsByArch(setups, cfg.Models)
		if err != nil {
			return nil, nil, err
		}

		// One image store per fleet, holding a pre-built image of every
		// primary-ISA model — what PR 4's fleet distribution would have
		// staged on the host before the failure.
		images, err := buildFailoverImages(imgDir, fi, setups[primary.Arch], cfg.Models)
		if err != nil {
			return nil, nil, err
		}

		for _, sc := range failoverScenarios() {
			var rec *trace.Recorder
			if fi == 0 && sc.name == armWarmFailover {
				rec = cfg.Rec
			}
			arm, err := runFailoverArm(&cfg, primary, secondary, setups, objects, images, sc, rec)
			if err != nil {
				return nil, nil, fmt.Errorf("serving: failover %s/%s: %w", primary.Name, sc.name, err)
			}
			fleet.Arms = append(fleet.Arms, *arm)
			states := ""
			for i, g := range arm.GPUs {
				if i > 0 {
					states += "/"
				}
				states += g.FinalState
			}
			table.Rows = append(table.Rows, []string{
				primary.Name + "+" + secondary.Name, sc.name,
				fmt.Sprint(arm.Served), fmt.Sprint(arm.Evacuated), fmt.Sprint(arm.Failed),
				fmt.Sprintf("%.2f", arm.MeanEvacMs),
				fmt.Sprint(arm.PeerFetches), fmt.Sprint(arm.PeerFetchFails), states,
			})
		}

		if err := checkFailoverFleet(&fleet); err != nil {
			return nil, nil, err
		}
		cold, warm := fleet.Arm(armColdRespawn), fleet.Arm(armWarmFailover)
		table.Notes = append(table.Notes, fmt.Sprintf(
			"%s fleet: warm failover %.2fms vs cold respawn %.2fms mean evacuation TTFI (%.1f%% lower), zero failed requests in all arms",
			primary.Name, warm.MeanEvacMs, cold.MeanEvacMs, 100*(1-warm.MeanEvacMs/cold.MeanEvacMs)))
		bench.Fleets = append(bench.Fleets, fleet)
	}
	return table, bench, nil
}

// checkFailoverFleet enforces the experiment's own acceptance bar on one
// fleet: no arm lost a request, warm evacuation strictly beats cold
// respawn, the flap arm actually exercised the peer fallback, and the
// degraded arm evacuated the twin and then let it rejoin.
func checkFailoverFleet(fleet *FailoverFleet) error {
	for i := range fleet.Arms {
		arm := &fleet.Arms[i]
		if arm.Failed != 0 {
			return fmt.Errorf("serving: failover %s/%s lost %d requests, want 0",
				fleet.Primary, arm.Name, arm.Failed)
		}
		if arm.Evacuated == 0 || arm.Evacuations == 0 {
			return fmt.Errorf("serving: failover %s/%s evacuated nothing (evacuated=%d evacuations=%d)",
				fleet.Primary, arm.Name, arm.Evacuated, arm.Evacuations)
		}
	}
	cold, warm := fleet.Arm(armColdRespawn), fleet.Arm(armWarmFailover)
	if warm.MeanEvacMs >= cold.MeanEvacMs {
		return fmt.Errorf("serving: failover %s warm evacuation %.2fms not below cold respawn %.2fms",
			fleet.Primary, warm.MeanEvacMs, cold.MeanEvacMs)
	}
	if flap := fleet.Arm(armLinkFlap); flap.PeerFetchFails == 0 {
		return fmt.Errorf("serving: failover %s link-flap arm saw no peer-fetch fallbacks", fleet.Primary)
	}
	if deg := fleet.Arm(armDegraded); deg.GPUs[failoverVictim].FinalState != GPUHealthy.String() {
		return fmt.Errorf("serving: failover %s degraded GPU ended %q, want rejoin to %q",
			fleet.Primary, deg.GPUs[failoverVictim].FinalState, GPUHealthy)
	}
	return nil
}

// buildFailoverImages pre-builds one cache image per primary-ISA model into
// a fresh store under dir (unique per fleet).
func buildFailoverImages(dir string, fleet int, setups map[string]*experiments.ModelSetup, models []string) (*cacheimg.Store, error) {
	sub, err := os.MkdirTemp(dir, fmt.Sprintf("fleet%d-*", fleet))
	if err != nil {
		return nil, err
	}
	store, err := cacheimg.Open(sub)
	if err != nil {
		return nil, err
	}
	for _, abbr := range models {
		img, _, err := setups[abbr].BuildCacheImage()
		if err != nil {
			return nil, fmt.Errorf("serving: failover image %s: %w", abbr, err)
		}
		if _, err := store.Publish(img); err != nil {
			return nil, fmt.Errorf("serving: failover publish %s: %w", abbr, err)
		}
	}
	return store, nil
}

// failoverTenant is one tenant's live serving state; relocation swaps its
// GPU, setup (per target ISA) and attached process.
type failoverTenant struct {
	idx   int
	name  string
	abbr  string
	gpu   int
	ms    *experiments.ModelSetup
	pr    *experiments.Process
	evacs int

	// mustMove is the monitor's drain order: set by OnEvacuate when the
	// tenant's GPU enters quarantined or dead, honored at the next request
	// boundary even if the device has rejoined by then — an operator drains
	// a quarantined GPU, it does not gamble on the brownout passing.
	mustMove bool
}

// runFailoverArm serves one deterministic tenant schedule on a fresh fleet
// under one fault scenario and aggregates serving stats, registry activity
// and final health states.
func runFailoverArm(cfg *FailoverConfig, primary, secondary device.Profile,
	setups map[string]map[string]*experiments.ModelSetup,
	objects map[string]map[string][]string,
	images *cacheimg.Store, sc failoverScenario, rec *trace.Recorder) (*FailoverArm, error) {

	env := sim.NewEnv()
	topo := device.NewHost(env)
	topo.AddGPU(primary, 0)   // failoverVictim
	topo.AddGPU(primary, 0)   // failoverTwin
	topo.AddGPU(primary, 1)   // failoverSpare
	topo.AddGPU(secondary, 1) // failoverCross

	mh := NewMultiGPUHost(env, topo, func(arch string) *codeobj.Store {
		return setups[arch][cfg.Models[0]].Store
	}, cfg.Slots, sc.peering)
	if rec != nil {
		for i := range mh.Nodes {
			mh.Nodes[i].Root().SetObserver(gpuObserver{rec: rec, idx: i})
		}
	}

	inj := faults.New(sc.plan(cfg))
	for i := range mh.Nodes {
		i := i
		mh.Nodes[i].Root().SetLoadFaults(inj.GPUView(i))
		inj.ArmGPUDeath(env, i, func() { mh.Nodes[i].Root().MarkDeviceLost() })
	}
	if sc.flap {
		mh.SetLinkFaults(inj)
	}
	var tenants []*failoverTenant
	// A 5ms poll matches the error cadence of degraded loads on the slowest
	// profile (each failed attempt costs a multi-ms fixed driver overhead),
	// so persistent degradation reliably yields consecutive bad ticks.
	hm := NewHealthMonitor(mh, HealthConfig{Interval: 5 * time.Millisecond}, rec)
	hm.OnEvacuate = func(gpu int, state GPUHealthState) {
		for _, ft := range tenants {
			if ft.gpu == gpu {
				ft.mustMove = true
			}
		}
	}
	hm.Start(env)

	stats := &Stats{}
	arm := &FailoverArm{Name: sc.name, Peering: sc.peering, Images: sc.images}

	// relocate drains a tenant off its sick GPU, re-places it through the
	// load-balanced policy (the empty spare wins deterministically), warm-arms
	// the new process from the fleet's cache images when the scenario allows,
	// and serves the pending request there. The whole move — detach through
	// first inference on the new device — is the evacuation TTFI.
	relocate := func(p *sim.Proc, ft *failoverTenant) error {
		t0 := p.Now()
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if attempt > 0 {
				stats.Retries++
				p.Sleep(expBackoff(200*time.Microsecond, 2*time.Millisecond, attempt, int64(ft.idx), ft.abbr))
			}
			ft.pr.RT.Detach()
			mh.Release(ft.gpu)
			g := mh.Pick(PlaceBalanced, objects[ft.abbr])
			mh.Acquire(g)
			ft.gpu = g
			ft.evacs++
			ft.ms = setups[topo.GPU(g).Profile.Arch][ft.abbr]
			ft.pr = ft.ms.AttachIn(mh.Nodes[g].Ten, fmt.Sprintf("%s~e%d", ft.name, ft.evacs))
			if sc.images && images != nil {
				if att, aerr := images.Attach(ft.ms.Spec.Abbr, topo.GPU(g).Profile, ft.ms.Store.Fingerprint()); aerr == nil {
					// Replay overlaps bring-up; demand loads coalesce with it.
					warmup.Start(env, ft.pr.RT, att.Image.Manifest, rec)
					arm.ImageAttaches++
				}
			}
			ft.pr.Runner.RT.InitContext(p)
			if err = ft.pr.Runner.Lib.LoadResidents(p); err != nil {
				continue
			}
			if err = ft.pr.Runner.RunBaseline(p, ft.ms.Model); err != nil {
				continue
			}
			lat := p.Now() - t0
			stats.recordEvacuated(lat)
			if rec != nil {
				rec.Count("evac_ttfi_ms", p.Now(), float64(lat)/1e6)
			}
			return nil
		}
		return err
	}

	// serveOnce runs one request (with bring-up on the first), retrying
	// transient faults the registry could not absorb. Device loss is not
	// retried here — the caller relocates instead.
	serveOnce := func(p *sim.Proc, ft *failoverTenant, bringup bool) error {
		t0 := p.Now()
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if attempt > 0 {
				stats.Retries++
				p.Sleep(expBackoff(200*time.Microsecond, 2*time.Millisecond, attempt, int64(ft.idx), ft.abbr))
			}
			if bringup {
				ft.pr.Runner.RT.InitContext(p)
				if err = ft.pr.Runner.Lib.LoadResidents(p); err != nil {
					if backend.IsDeviceLost(err) {
						return err
					}
					continue
				}
			}
			if err = ft.pr.Runner.RunBaseline(p, ft.ms.Model); err != nil {
				if backend.IsDeviceLost(err) {
					return err
				}
				continue
			}
			stats.Latencies = append(stats.Latencies, p.Now()-t0)
			return nil
		}
		return err
	}

	var doneSigs []*sim.Signal
	hosts := []int{failoverVictim, failoverTwin, failoverCross}
	env.Spawn("failover-driver", func(p *sim.Proc) {
		for t := 0; t < cfg.Tenants(); t++ {
			// Tenants arrive in model-set groups: the full zoo lands on the
			// victim, then the twin, then the cross-vendor GPU, so the twin
			// mirrors every model the victim hosts and the spare stays empty.
			ft := &failoverTenant{
				idx:  t,
				abbr: cfg.Models[t%len(cfg.Models)],
				gpu:  hosts[(t/len(cfg.Models))%len(hosts)],
			}
			ft.name = fmt.Sprintf("%s/%d", ft.abbr, t)
			ft.ms = setups[topo.GPU(ft.gpu).Profile.Arch][ft.abbr]
			mh.Acquire(ft.gpu)
			tenants = append(tenants, ft)
			sig := sim.NewSignal(env)
			doneSigs = append(doneSigs, sig)
			env.Spawn("tenant-"+ft.name, func(p *sim.Proc) {
				defer sig.Fire()
				defer func() {
					ft.pr.RT.Detach()
					mh.Release(ft.gpu)
				}()
				ft.pr = ft.ms.AttachIn(mh.Nodes[ft.gpu].Ten, ft.name)
				for r := 0; r < cfg.Requests; r++ {
					if r > 0 {
						p.Sleep(cfg.Gap)
					}
					reqIdx := ft.idx*cfg.Requests + r
					if ft.mustMove || !mh.Usable(ft.gpu) {
						// The monitor ordered a drain (or the driver lost the
						// device): evacuate, and serve this request over there.
						ft.mustMove = false
						if err := relocate(p, ft); err != nil {
							stats.recordFailure(reqIdx, err)
						}
						continue
					}
					if err := serveOnce(p, ft, r == 0); err != nil {
						if backend.IsDeviceLost(err) {
							// Death mid-request: the typed error arrives before
							// the next health poll. Same evacuation path.
							if rerr := relocate(p, ft); rerr != nil {
								stats.recordFailure(reqIdx, rerr)
							}
							continue
						}
						stats.recordFailure(reqIdx, err)
					}
				}
			})
			p.Sleep(cfg.Interval)
		}
		for _, s := range doneSigs {
			s.Wait(p)
		}
		// Dwell so a cleanly-probationed quarantined GPU can rejoin before
		// the final health snapshot.
		p.Sleep(cfg.Settle)
		hm.Stop()
		mh.CloseAll()
	})
	if err := env.Run(); err != nil {
		return nil, err
	}

	total := cfg.Tenants() * cfg.Requests
	served := len(stats.Latencies)
	if served+stats.Failed+stats.Evacuated != total {
		return nil, fmt.Errorf("serving: failover accounting broke: served %d + failed %d + evacuated %d != %d requests",
			served, stats.Failed, stats.Evacuated, total)
	}
	arm.Served = served
	arm.Evacuated = stats.Evacuated
	arm.Failed = stats.Failed
	arm.Evacuations = hm.Evacuations()
	arm.MeanTTFIMs = float64(stats.Mean()) / 1e6
	arm.MeanEvacMs = float64(stats.MeanEvac()) / 1e6
	for _, ft := range tenants {
		if ft.evacs > 0 {
			arm.EvacTenants++
		}
	}
	for i := range mh.Nodes {
		root := mh.Nodes[i].Root()
		st := root.Stats()
		arm.PeerFetches += st.PeerFetches
		arm.PeerFetchFails += st.PeerFetchFails
		arm.ModuleLoads += st.ModuleLoads
		arm.GPUs = append(arm.GPUs, FailoverGPU{
			Driver: root.Driver(), Arch: topo.GPU(i).Profile.Arch, Node: topo.Node(i),
			FinalState:  hm.State(i).String(),
			ModuleLoads: st.ModuleLoads, PeerFetches: st.PeerFetches, PeerFetchFails: st.PeerFetchFails,
		})
	}
	return arm, nil
}
