package serving

import (
	"testing"

	"pask/internal/device"
	"pask/internal/trace"
)

// The tentpole acceptance check: on every heterogeneous fleet,
// residency-affinity placement with cache peering beats naive first-fit
// without peering on mean time-to-first-inference, and peering converts
// store loads into cheaper cross-GPU fetches.
func TestPlacementAffinityPeeringBeatsFirstFit(t *testing.T) {
	_, bench, err := Placement(PlacementConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Fleets) != len(device.Profiles()) {
		t.Fatalf("got %d fleets, want one per device profile (%d)", len(bench.Fleets), len(device.Profiles()))
	}
	for _, fleet := range bench.Fleets {
		base := fleet.Arm(PlaceFirstFit, false)
		best := fleet.Arm(PlaceAffinity, true)
		if base == nil || best == nil {
			t.Fatalf("%s fleet: missing arms", fleet.Primary)
		}
		if best.TTFIMeanMs >= base.TTFIMeanMs {
			t.Errorf("%s fleet: affinity+peering mean TTFI %.2fms not below first-fit %.2fms",
				fleet.Primary, best.TTFIMeanMs, base.TTFIMeanMs)
		}
		if best.PeerFetches == 0 {
			t.Errorf("%s fleet: peering arm recorded no peer fetches", fleet.Primary)
		}
		if base.PeerFetches != 0 {
			t.Errorf("%s fleet: peering-off arm recorded %d peer fetches", fleet.Primary, base.PeerFetches)
		}
		if best.ModuleLoads >= base.ModuleLoads {
			t.Errorf("%s fleet: peering did not reduce store loads (%d vs %d)",
				fleet.Primary, best.ModuleLoads, base.ModuleLoads)
		}
	}
}

// Every fleet is genuinely heterogeneous: each arm's four GPUs span both the
// hip and cuda drivers and both NUMA nodes, and per-GPU tenant counts sum to
// the arrival count.
func TestPlacementFleetsAreHeterogeneous(t *testing.T) {
	_, bench, err := Placement(PlacementConfig{
		Quick:    true,
		Profiles: []device.Profile{device.MI100()},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fleet := range bench.Fleets {
		for _, arm := range fleet.Arms {
			drivers, nodes := map[string]bool{}, map[int]bool{}
			tenants := 0
			for _, g := range arm.GPUs {
				drivers[g.Driver] = true
				nodes[g.Node] = true
				tenants += g.Tenants
			}
			if !drivers["hip"] || !drivers["cuda"] {
				t.Fatalf("%s/%s/peering=%v: drivers %v, want hip and cuda",
					fleet.Primary, arm.Policy, arm.Peering, drivers)
			}
			if !nodes[0] || !nodes[1] {
				t.Fatalf("%s/%s/peering=%v: NUMA nodes %v, want 0 and 1",
					fleet.Primary, arm.Policy, arm.Peering, nodes)
			}
			if tenants != bench.Tenants {
				t.Fatalf("%s/%s/peering=%v: per-GPU tenants sum to %d, want %d",
					fleet.Primary, arm.Policy, arm.Peering, tenants, bench.Tenants)
			}
		}
	}
}

// The optional recorder captures the affinity+peering arm: peer fetch
// instants, per-GPU residency gauges and per-tenant TTFI counters all land
// in the trace.
func TestPlacementRecordsTrace(t *testing.T) {
	rec := trace.New()
	_, bench, err := Placement(PlacementConfig{
		Quick:    true,
		Profiles: []device.Profile{device.RX6900XT()},
		Rec:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	arm := bench.Fleets[0].Arm(PlaceAffinity, true)
	if arm.PeerFetches == 0 {
		t.Fatal("recorded arm has no peer fetches; trace assertions vacuous")
	}
	instants := 0
	for _, in := range rec.Instants() {
		if in.Track == "registry" && in.Name == "peer_fetch" {
			instants++
		}
	}
	if instants != arm.PeerFetches {
		t.Fatalf("trace has %d peer_fetch instants, arm counted %d", instants, arm.PeerFetches)
	}
	ttfis := 0
	for _, c := range rec.Counters() {
		if c.Name == "placement_ttfi_ms" {
			ttfis = len(c.Samples)
		}
	}
	// Identical consecutive TTFI values collapse, so samples ≤ tenants.
	if ttfis == 0 || ttfis > bench.Tenants {
		t.Fatalf("trace has %d placement_ttfi_ms samples, want 1..%d", ttfis, bench.Tenants)
	}
	if got, ok := rec.CounterLast("placement_peer_fetches"); !ok || int(got) != arm.PeerFetches {
		t.Fatalf("placement_peer_fetches gauge = %v (ok=%v), want %d", got, ok, arm.PeerFetches)
	}
}
