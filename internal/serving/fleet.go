package serving

import (
	"fmt"
	"time"

	"pask/internal/experiments"
	"pask/internal/sim"
)

// FleetConfig drives the autoscaling router.
type FleetConfig struct {
	Policy Policy
	// KeepAlive reaps instances idle longer than this (0: never reap) —
	// the keep-alive policy whose misses cause serverless cold starts.
	KeepAlive time.Duration
	// MaxInstances caps concurrent instances (0: unlimited). Requests
	// arriving with every instance busy at the cap wait for a free one.
	MaxInstances int
}

// FleetStats extends Stats with autoscaling activity.
type FleetStats struct {
	Stats
	Spawned       int // instances created (each pays a cold start)
	Reaped        int // instances destroyed by keep-alive expiry
	MaxConcurrent int
}

// fleetInstance wraps an instance server with scheduling state.
type fleetInstance struct {
	srv      *ftServer
	busy     bool
	idleFrom time.Duration
}

// ServeFleet routes a request trace across an autoscaled pool: each arrival
// goes to a warm idle instance when one exists, otherwise a fresh instance
// cold-starts (subject to MaxInstances); instances idle past KeepAlive are
// reaped. Request latencies include any wait for a free slot. The policy's
// fault tolerance applies per request; with ContinueOnError failed requests
// are recorded in the stats and dropped from the latency distribution.
func ServeFleet(ms *experiments.ModelSetup, cfg FleetConfig, trace Trace) (*FleetStats, error) {
	env := sim.NewEnv()
	restore := InstallFaults(ms, cfg.Policy.Faults)
	defer restore()
	stats := &FleetStats{}
	var pool []*fleetInstance
	freed := sim.NewSignal(env)
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	reap := func(now time.Duration) {
		if cfg.KeepAlive <= 0 {
			return
		}
		kept := pool[:0]
		for _, fi := range pool {
			if !fi.busy && fi.srv.inst.Warm() && now-fi.idleFrom > cfg.KeepAlive {
				fi.srv.close()
				stats.Reaped++
				continue
			}
			kept = append(kept, fi)
		}
		pool = kept
	}

	// pick returns an idle instance, spawning one if allowed; it blocks the
	// dispatcher (in virtual time) when the pool is saturated.
	pick := func(p *sim.Proc) *fleetInstance {
		for {
			for _, fi := range pool {
				if !fi.busy {
					return fi
				}
			}
			if cfg.MaxInstances <= 0 || len(pool) < cfg.MaxInstances {
				fi := &fleetInstance{srv: newFTServer(env, ms, cfg.Policy, &stats.Stats)}
				pool = append(pool, fi)
				stats.Spawned++
				if len(pool) > stats.MaxConcurrent {
					stats.MaxConcurrent = len(pool)
				}
				return fi
			}
			// Saturated: wait for a completion, then retry.
			sig := freed
			sig.Wait(p)
			if !freed.Fired() {
				continue
			}
			freed = sim.NewSignal(env)
		}
	}

	latencies := make([]time.Duration, len(trace))
	served := make([]bool, len(trace))
	pending := len(trace)
	done := sim.NewSignal(env)

	env.Spawn("dispatcher", func(p *sim.Proc) {
		for i, req := range trace {
			p.SleepUntil(req.At)
			reap(p.Now())
			fi := pick(p)
			if firstErr != nil {
				break
			}
			fi.busy = true
			wasCold := !fi.srv.inst.Warm()
			arrived := req.At
			i := i
			env.Spawn(fmt.Sprintf("req-%d", i), func(rp *sim.Proc) {
				defer func() {
					fi.busy = false
					fi.idleFrom = rp.Now()
					old := freed
					freed = sim.NewSignal(env)
					old.Fire()
					pending--
					if pending == 0 {
						done.Fire()
					}
				}()
				if _, err := fi.srv.serve(rp, i); err != nil {
					if !cfg.Policy.FT.ContinueOnError {
						fail(fmt.Errorf("request %d: %w", i, err))
					}
					return
				}
				// End-to-end latency from arrival: queueing + service.
				latencies[i] = rp.Now() - arrived
				served[i] = true
				if wasCold {
					stats.ColdStarts++
					stats.ColdLatencies = append(stats.ColdLatencies, latencies[i])
				}
			})
		}
	})
	env.Spawn("closer", func(p *sim.Proc) {
		done.Wait(p)
		for _, fi := range pool {
			fi.srv.close()
		}
	})
	if err := env.Run(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range trace {
		if served[i] {
			stats.Latencies = append(stats.Latencies, latencies[i])
		}
	}
	return stats, nil
}
