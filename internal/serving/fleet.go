package serving

import (
	"fmt"
	"time"

	"pask/internal/backend"
	"pask/internal/experiments"
	"pask/internal/sim"
)

// FleetConfig drives the autoscaling router.
type FleetConfig struct {
	Policy Policy
	// KeepAlive reaps instances idle longer than this (0: never reap) —
	// the keep-alive policy whose misses cause serverless cold starts.
	KeepAlive time.Duration
	// MaxInstances caps concurrent instances (0: unlimited). Requests
	// arriving with every instance busy at the cap wait for a free one,
	// unless an idle instance of another model can be swapped out.
	MaxInstances int
	// Shared attaches every instance to one per-GPU shared runtime and
	// cross-model cache instead of giving each its own device. Cold starts
	// then only pay for modules no earlier tenant loaded.
	Shared bool
}

// FleetStats extends Stats with autoscaling and attribution activity.
type FleetStats struct {
	Stats
	Spawned       int // instances created (each pays a cold start)
	Reaped        int // instances destroyed by keep-alive expiry
	Swapped       int // idle instances closed at the cap to admit another model
	MaxConcurrent int

	// ColdByModel records each model's cold-start latencies in arrival
	// order; index 0 is the model's first-ever cold start.
	ColdByModel map[string][]time.Duration

	// ModuleLoads/BytesLoaded total the kernel loading under the fleet. In
	// shared mode they come from the one GPU runtime and are exact; in
	// isolated mode they are summed per instance at teardown, so runtimes
	// discarded mid-flight by crash recovery are not counted.
	ModuleLoads int
	BytesLoaded int64

	// TenantLoads attributes shared-runtime loading per tenant view (only
	// populated in shared mode): who paid for each load, who hit modules
	// other tenants loaded, and who coalesced onto in-flight loads.
	TenantLoads []backend.TenantStats
}

// fleetInstance wraps an instance server with scheduling state.
type fleetInstance struct {
	srv      *ftServer
	model    string
	busy     bool
	idleFrom time.Duration
}

// ServeFleet routes a single-model trace across an autoscaled pool. It is
// ServeFleetModels with every request bound to one model.
func ServeFleet(ms *experiments.ModelSetup, cfg FleetConfig, trace Trace) (*FleetStats, error) {
	const def = "model"
	return ServeFleetModels(map[string]*experiments.ModelSetup{def: ms}, def, cfg, trace)
}

// ServeFleetModels routes a heterogeneous request trace across an
// autoscaled pool of model instances: each arrival goes to an idle instance
// of its model when one exists, otherwise a fresh instance cold-starts
// (subject to MaxInstances — at the cap an idle instance of another model
// is swapped out if possible, else the dispatcher waits); instances idle
// past KeepAlive are reaped whether or not they ever served successfully,
// so a permanently faulting instance cannot squat in the pool. Request
// latencies include any wait for a free slot.
//
// With cfg.Shared, instances are tenants of one GPUHost: one device, one
// module registry, one cross-model cache. The setups must then come from
// experiments.PrepareModelsShared (one registry and store); this is
// validated up front. The policy's fault tolerance applies per request;
// with ContinueOnError failed requests are recorded in the stats and
// dropped from the latency distribution.
func ServeFleetModels(setups map[string]*experiments.ModelSetup, def string, cfg FleetConfig, trace Trace) (*FleetStats, error) {
	defSetup, ok := setups[def]
	if !ok {
		return nil, fmt.Errorf("serving: fleet default model %q has no setup", def)
	}
	for abbr, ms := range setups {
		if ms.Store != defSetup.Store {
			return nil, fmt.Errorf("serving: fleet setups must share one code-object store (model %q differs; use PrepareModelsShared)", abbr)
		}
	}
	env := sim.NewEnv()
	restore := InstallFaults(defSetup, cfg.Policy.Faults)
	defer restore()
	if cfg.Policy.Faults != nil {
		trace = ApplyFlood(trace, cfg.Policy.Faults.Plan())
	}

	var host *GPUHost
	if cfg.Shared {
		host = NewGPUHost(env, defSetup.Profile, defSetup.Store)
	}

	stats := &FleetStats{ColdByModel: make(map[string][]time.Duration)}
	// The guard installs the brownout controller as the policy's pressure
	// source before any instance copies the policy.
	guard := newOverloadGuard(&cfg.Policy, &stats.Stats)
	var pool []*fleetInstance
	freed := sim.NewSignal(env)
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	// closeInst tears an instance down, folding its private runtime's load
	// totals into the fleet stats first (shared-mode totals come from the
	// host at the end instead).
	closeInst := func(fi *fleetInstance) {
		if !cfg.Shared {
			st := fi.srv.inst.pr.RT.Stats()
			stats.ModuleLoads += st.ModuleLoads
			stats.BytesLoaded += st.BytesLoaded
		}
		fi.srv.close()
	}

	reap := func(now time.Duration) {
		if cfg.KeepAlive <= 0 {
			return
		}
		kept := pool[:0]
		for _, fi := range pool {
			// Idle past the keep-alive wins a reap regardless of Warm():
			// an instance whose every serve failed must still age out.
			if !fi.busy && now-fi.idleFrom > cfg.KeepAlive {
				closeInst(fi)
				stats.Reaped++
				continue
			}
			kept = append(kept, fi)
		}
		pool = kept
	}

	spawn := func(model string, now time.Duration) *fleetInstance {
		ms := setups[model]
		var srv *ftServer
		if cfg.Shared {
			tenant := fmt.Sprintf("%s/%d", model, stats.Spawned)
			srv = newTenantFTServer(host, ms, cfg.Policy, &stats.Stats, tenant)
		} else {
			srv = newFTServer(env, ms, cfg.Policy, &stats.Stats)
		}
		fi := &fleetInstance{srv: srv, model: model, idleFrom: now}
		pool = append(pool, fi)
		stats.Spawned++
		if len(pool) > stats.MaxConcurrent {
			stats.MaxConcurrent = len(pool)
		}
		return fi
	}

	// pick returns an idle instance of the request's model, spawning (or
	// swapping an idle foreign-model instance out at the cap) if needed; it
	// blocks the dispatcher in virtual time when the pool is saturated.
	pick := func(p *sim.Proc, model string) *fleetInstance {
		for {
			for _, fi := range pool {
				if !fi.busy && fi.model == model {
					return fi
				}
			}
			if cfg.MaxInstances <= 0 || len(pool) < cfg.MaxInstances {
				return spawn(model, p.Now())
			}
			// At the cap: evict an idle instance of another model to make
			// room — the cross-model churn a shared runtime absorbs.
			swapped := false
			for i, fi := range pool {
				if !fi.busy {
					closeInst(fi)
					pool = append(pool[:i], pool[i+1:]...)
					stats.Swapped++
					swapped = true
					break
				}
			}
			if swapped {
				return spawn(model, p.Now())
			}
			// Saturated with busy instances: wait for a completion.
			sig := freed
			sig.Wait(p)
			if !freed.Fired() {
				continue
			}
			freed = sim.NewSignal(env)
		}
	}

	latencies := make([]time.Duration, len(trace))
	served := make([]bool, len(trace))
	pending := len(trace)
	done := sim.NewSignal(env)
	if pending == 0 {
		done.Fire()
	}

	var dispatchErr error
	env.Spawn("dispatcher", func(p *sim.Proc) {
		for i, req := range trace {
			model := req.Model
			if model == "" {
				model = def
			}
			if _, ok := setups[model]; !ok {
				dispatchErr = fmt.Errorf("serving: request %d targets unknown model %q", i, model)
				done.Fire()
				return
			}
			p.SleepUntil(req.At)
			// Admission is decided when the dispatcher reaches the request:
			// a deep backlog sheds the oldest waiters first (drop-head), and
			// a request that already outwaited its queue deadline while the
			// dispatcher was blocked on a saturated pool is dropped as stale
			// instead of occupying an instance.
			if guard.admit(p.Now(), trace, i) != nil {
				pending--
				if pending == 0 {
					done.Fire()
				}
				continue
			}
			brk := guard.breaker(model)
			if brk != nil && !brk.allow(p.Now()) {
				guard.reject(p.Now(), i)
				pending--
				if pending == 0 {
					done.Fire()
				}
				continue
			}
			reap(p.Now())
			fi := pick(p, model)
			if firstErr != nil {
				break
			}
			fi.busy = true
			wasCold := !fi.srv.inst.Warm()
			arrived := req.At
			i, model := i, model
			env.Spawn(fmt.Sprintf("req-%d", i), func(rp *sim.Proc) {
				// Scheduling state resets whether the serve succeeded or
				// not: a faulted instance returns to idle (and from there
				// to the reaper) instead of staying busy forever.
				defer func() {
					fi.busy = false
					fi.idleFrom = rp.Now()
					old := freed
					freed = sim.NewSignal(env)
					old.Fire()
					pending--
					if pending == 0 {
						done.Fire()
					}
				}()
				_, err := fi.srv.serve(rp, i)
				brk.observe(rp.Now(), err)
				if err != nil {
					if !cfg.Policy.FT.ContinueOnError {
						fail(fmt.Errorf("request %d (%s): %w", i, model, err))
					}
					return
				}
				// End-to-end latency from arrival: queueing + service.
				latencies[i] = rp.Now() - arrived
				served[i] = true
				stats.observeSLO(latencies[i], cfg.Policy.SLO)
				if wasCold {
					stats.ColdStarts++
					stats.ColdLatencies = append(stats.ColdLatencies, latencies[i])
					stats.ColdByModel[model] = append(stats.ColdByModel[model], latencies[i])
				}
			})
		}
	})
	env.Spawn("closer", func(p *sim.Proc) {
		done.Wait(p)
		for _, fi := range pool {
			closeInst(fi)
		}
		if host != nil {
			st := host.Root().Stats()
			stats.ModuleLoads = st.ModuleLoads
			stats.BytesLoaded = st.BytesLoaded
			stats.TenantLoads = host.Root().AllTenantStats()
			host.Close()
		}
	})
	if err := env.Run(); err != nil {
		return nil, err
	}
	if dispatchErr != nil {
		return nil, dispatchErr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range trace {
		if served[i] {
			stats.Latencies = append(stats.Latencies, latencies[i])
		}
	}
	return stats, nil
}

// ScaleOutModels runs the heterogeneous serverless spike: len(models)
// requests arrive at once, each for the named model, each on a fresh cold
// instance. With shared set, the instances are tenants of one GPU host —
// their concurrent loads of common objects coalesce into single driver
// loads — otherwise every instance owns a device, as ScaleOut always did.
func ScaleOutModels(setups map[string]*experiments.ModelSetup, models []string, policy Policy, shared bool) (*FleetStats, error) {
	if len(models) == 0 {
		return &FleetStats{ColdByModel: map[string][]time.Duration{}}, nil
	}
	var defSetup *experiments.ModelSetup
	for _, m := range models {
		ms, ok := setups[m]
		if !ok {
			return nil, fmt.Errorf("serving: scale-out model %q has no setup", m)
		}
		if defSetup == nil {
			defSetup = ms
		} else if ms.Store != defSetup.Store {
			return nil, fmt.Errorf("serving: scale-out setups must share one code-object store (use PrepareModelsShared)")
		}
	}
	env := sim.NewEnv()
	restore := InstallFaults(defSetup, policy.Faults)
	defer restore()

	var host *GPUHost
	if shared {
		host = NewGPUHost(env, defSetup.Profile, defSetup.Store)
	}
	stats := &FleetStats{ColdByModel: make(map[string][]time.Duration)}
	stats.ColdStarts = len(models)
	lat := make([]time.Duration, len(models))
	errs := make([]error, len(models))
	pending := len(models)
	done := sim.NewSignal(env)
	for i, m := range models {
		i, m := i, m
		var srv *ftServer
		if shared {
			srv = newTenantFTServer(host, setups[m], policy, &stats.Stats, fmt.Sprintf("%s/%d", m, i))
		} else {
			srv = newFTServer(env, setups[m], policy, &stats.Stats)
		}
		env.Spawn(fmt.Sprintf("instance-%d", i), func(p *sim.Proc) {
			defer func() {
				if !shared {
					st := srv.inst.pr.RT.Stats()
					stats.ModuleLoads += st.ModuleLoads
					stats.BytesLoaded += st.BytesLoaded
				}
				srv.close()
				pending--
				if pending == 0 {
					done.Fire()
				}
			}()
			lat[i], errs[i] = srv.serve(p, i)
		})
	}
	if host != nil {
		env.Spawn("closer", func(p *sim.Proc) {
			done.Wait(p)
			st := host.Root().Stats()
			stats.ModuleLoads = st.ModuleLoads
			stats.BytesLoaded = st.BytesLoaded
			stats.TenantLoads = host.Root().AllTenantStats()
			host.Close()
		})
	}
	if err := env.Run(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			if policy.FT.ContinueOnError {
				continue
			}
			return nil, fmt.Errorf("instance %d (%s): %w", i, models[i], err)
		}
		stats.Latencies = append(stats.Latencies, lat[i])
		stats.ColdLatencies = append(stats.ColdLatencies, lat[i])
		stats.ColdByModel[models[i]] = append(stats.ColdByModel[models[i]], lat[i])
	}
	return stats, nil
}
