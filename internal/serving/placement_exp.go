package serving

import (
	"fmt"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/sim"
	"pask/internal/trace"
)

// PlacementConfig parameterizes the placement × peering comparison on
// heterogeneous multi-GPU fleets. The zero value runs three models through
// 18 tenant arrivals per arm on all three paper devices.
type PlacementConfig struct {
	Models   []string         // zoo abbreviations cycled across arrivals (default alex, res, vgg)
	Batch    int              // default 1
	Profiles []device.Profile // primary fleet devices (default all three paper profiles)
	Tenants  int              // tenant arrivals per arm (default 18)
	Interval time.Duration    // arrival gap (default 100ms)
	Dwell    time.Duration    // how long a tenant holds its slot after TTFI (default 150ms)
	Slots    int              // tenant slots per GPU (default 1)
	Quick    bool             // CI smoke size: two models, nine arrivals
	Rec      *trace.Recorder  // optional: records the first fleet's affinity+peering arm
}

// Fill applies the documented defaults to unset fields.
func (c *PlacementConfig) Fill() {
	if c.Quick {
		if len(c.Models) == 0 {
			c.Models = []string{"alex", "res"}
		}
		if c.Tenants <= 0 {
			c.Tenants = 9
		}
	}
	if len(c.Models) == 0 {
		c.Models = []string{"alex", "res", "vgg"}
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if len(c.Profiles) == 0 {
		c.Profiles = device.Profiles()
	}
	if c.Tenants <= 0 {
		c.Tenants = 18
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.Dwell <= 0 {
		c.Dwell = 150 * time.Millisecond
	}
	if c.Slots <= 0 {
		c.Slots = 1
	}
}

// PlacementGPU is one device's share of an arm's outcome.
type PlacementGPU struct {
	Driver      string `json:"driver"`
	Arch        string `json:"arch"`
	Node        int    `json:"node"`
	Tenants     int    `json:"tenants"`
	ModuleLoads int    `json:"module_loads"`
	PeerFetches int    `json:"peer_fetches"`
}

// PlacementArm is the outcome of one policy × peering combination on one
// fleet.
type PlacementArm struct {
	Policy      string         `json:"policy"`
	Peering     bool           `json:"peering"`
	TTFIMeanMs  float64        `json:"ttfi_mean_ms"`
	TTFIMaxMs   float64        `json:"ttfi_max_ms"`
	ModuleLoads int            `json:"module_loads"`
	BytesLoaded int64          `json:"bytes_loaded"`
	PeerFetches int            `json:"peer_fetches"`
	PeerBytes   int64          `json:"peer_bytes"`
	LoadTimeMs  float64        `json:"load_time_ms"`
	GPUs        []PlacementGPU `json:"gpus"`
}

// PlacementFleet is one heterogeneous fleet's full comparison: the primary
// profile (×2) plus the cross-vendor secondary (×2), across every policy ×
// peering combination.
type PlacementFleet struct {
	Primary   string         `json:"primary"`
	Secondary string         `json:"secondary"`
	Arms      []PlacementArm `json:"arms"`
}

// Arm returns the arm for (policy, peering), or nil.
func (f *PlacementFleet) Arm(policy PlacementPolicy, peering bool) *PlacementArm {
	for i := range f.Arms {
		if f.Arms[i].Policy == string(policy) && f.Arms[i].Peering == peering {
			return &f.Arms[i]
		}
	}
	return nil
}

// PlacementBench is the machine-readable payload of the experiment
// (BENCH_placement.json).
type PlacementBench struct {
	Models   []string         `json:"models"`
	Batch    int              `json:"batch"`
	Tenants  int              `json:"tenants"`
	Slots    int              `json:"slots_per_gpu"`
	IntervMs float64          `json:"interval_ms"`
	DwellMs  float64          `json:"dwell_ms"`
	Fleets   []PlacementFleet `json:"fleets"`
}

// secondaryFor pairs each primary profile with a cross-vendor secondary so
// every fleet is heterogeneous (HIP+CUDA) while still giving each ISA a
// same-arch peering twin.
func secondaryFor(primary device.Profile) device.Profile {
	if primary.Name == "A100" {
		return device.MI100()
	}
	return device.A100()
}

// Placement runs the placement × peering comparison: for each primary
// profile, a four-GPU heterogeneous fleet (two primary + two secondary,
// split across NUMA nodes) serves a deterministic arrival sequence of model
// tenants under every placement policy with cache peering off and on.
// Time-to-first-inference is measured per tenant from arrival to the end of
// its first request, the fleet-level cold-start quantity placement
// controls.
func Placement(cfg PlacementConfig) (*experiments.Table, *PlacementBench, error) {
	cfg.Fill()
	bench := &PlacementBench{
		Models: cfg.Models, Batch: cfg.Batch, Tenants: cfg.Tenants, Slots: cfg.Slots,
		IntervMs: float64(cfg.Interval) / 1e6, DwellMs: float64(cfg.Dwell) / 1e6,
	}
	table := &experiments.Table{
		ID: "placement",
		Title: fmt.Sprintf("tenant placement × cache peering on heterogeneous 4-GPU fleets (%s, %d arrivals, %d slot/GPU)",
			join(cfg.Models), cfg.Tenants, cfg.Slots),
		Headers: []string{"fleet", "policy", "peering", "ttfi_mean_ms", "ttfi_max_ms", "loads", "peer_fetches"},
	}

	for fi, primary := range cfg.Profiles {
		secondary := secondaryFor(primary)
		fleet := PlacementFleet{Primary: primary.Name, Secondary: secondary.Name}

		// One setup per ISA: same-arch GPUs share a store (and therefore a
		// byte-identical object universe for peering); the cross-vendor pair
		// compiles the same zoo models against its own ISA.
		setups := map[string]map[string]*experiments.ModelSetup{}
		for _, prof := range []device.Profile{primary, secondary} {
			ss, err := experiments.PrepareModelsShared(cfg.Models, cfg.Batch, prof)
			if err != nil {
				return nil, nil, fmt.Errorf("serving: placement prepare %s: %w", prof.Name, err)
			}
			setups[prof.Arch] = ss
		}
		objects, err := distinctObjectsByArch(setups, cfg.Models)
		if err != nil {
			return nil, nil, err
		}

		for _, policy := range PlacementPolicies() {
			for _, peering := range []bool{false, true} {
				var rec *trace.Recorder
				if fi == 0 && policy == PlaceAffinity && peering {
					rec = cfg.Rec
				}
				arm, err := runPlacementArm(&cfg, primary, secondary, setups, objects, policy, peering, rec)
				if err != nil {
					return nil, nil, fmt.Errorf("serving: placement %s/%s/peering=%v: %w", primary.Name, policy, peering, err)
				}
				fleet.Arms = append(fleet.Arms, *arm)
				table.Rows = append(table.Rows, []string{
					primary.Name + "+" + secondary.Name, string(policy), fmt.Sprint(peering),
					fmt.Sprintf("%.2f", arm.TTFIMeanMs), fmt.Sprintf("%.2f", arm.TTFIMaxMs),
					fmt.Sprint(arm.ModuleLoads), fmt.Sprint(arm.PeerFetches),
				})
			}
		}

		base := fleet.Arm(PlaceFirstFit, false)
		best := fleet.Arm(PlaceAffinity, true)
		table.Notes = append(table.Notes, fmt.Sprintf(
			"%s fleet: residency-affinity+peering %.2fms vs first-fit %.2fms mean TTFI (%.1f%% lower)",
			primary.Name, best.TTFIMeanMs, base.TTFIMeanMs, 100*(1-best.TTFIMeanMs/base.TTFIMeanMs)))
		bench.Fleets = append(bench.Fleets, fleet)
	}
	return table, bench, nil
}

// distinctObjectsByArch precomputes each model's loadable object paths per
// ISA — the overlap sets residency-affinity scores candidates against.
func distinctObjectsByArch(setups map[string]map[string]*experiments.ModelSetup, models []string) (map[string]map[string][]string, error) {
	out := map[string]map[string][]string{}
	for arch, ss := range setups {
		for _, abbr := range models {
			ms := ss[abbr]
			paths, err := ms.Model.DistinctObjects(ms.Reg)
			if err != nil {
				return nil, fmt.Errorf("serving: placement objects %s/%s: %w", arch, abbr, err)
			}
			if out[abbr] == nil {
				out[abbr] = map[string][]string{}
			}
			out[abbr][arch] = paths
		}
	}
	return out, nil
}

// runPlacementArm serves one deterministic arrival sequence on a fresh
// fleet under one policy × peering combination and aggregates TTFI and
// registry activity.
func runPlacementArm(cfg *PlacementConfig, primary, secondary device.Profile,
	setups map[string]map[string]*experiments.ModelSetup,
	objects map[string]map[string][]string,
	policy PlacementPolicy, peering bool, rec *trace.Recorder) (*PlacementArm, error) {

	env := sim.NewEnv()
	topo := device.NewHost(env)
	// Two primary GPUs and two secondary GPUs, each vendor pair split across
	// the host's NUMA nodes: every ISA has a peering twin, and twin traffic
	// exercises the cross-node link discount.
	topo.AddGPU(primary, 0)
	topo.AddGPU(primary, 1)
	topo.AddGPU(secondary, 0)
	topo.AddGPU(secondary, 1)

	mh := NewMultiGPUHost(env, topo, func(arch string) *codeobj.Store {
		return setups[arch][cfg.Models[0]].Store
	}, cfg.Slots, peering)
	if rec != nil {
		for i := range mh.Nodes {
			mh.Nodes[i].Root().SetObserver(gpuObserver{rec: rec, idx: i})
		}
	}

	var (
		ttfis     []time.Duration
		perGPU    = make([]int, topo.NumGPUs())
		firstErr  error
		doneSigs  []*sim.Signal
		recordErr = func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
	)
	env.Spawn("placement-driver", func(p *sim.Proc) {
		for t := 0; t < cfg.Tenants; t++ {
			abbr := cfg.Models[t%len(cfg.Models)]
			g := mh.Pick(policy, objects[abbr])
			mh.Acquire(g)
			perGPU[g]++
			node := mh.Nodes[g]
			ms := setups[topo.GPU(g).Profile.Arch][abbr]
			name := fmt.Sprintf("%s/%d", abbr, t)
			sig := sim.NewSignal(env)
			doneSigs = append(doneSigs, sig)
			gi := g
			env.Spawn("tenant-"+name, func(p *sim.Proc) {
				defer sig.Fire()
				defer mh.Release(gi)
				pr := ms.AttachIn(node.Ten, name)
				defer pr.RT.Detach()
				t0 := p.Now()
				pr.Runner.RT.InitContext(p)
				if err := pr.Runner.Lib.LoadResidents(p); err != nil {
					recordErr(err)
					return
				}
				if err := pr.Runner.RunBaseline(p, ms.Model); err != nil {
					recordErr(err)
					return
				}
				ttfi := p.Now() - t0
				ttfis = append(ttfis, ttfi)
				if rec != nil {
					rec.Count("placement_ttfi_ms", p.Now(), float64(ttfi)/1e6)
				}
				p.Sleep(cfg.Dwell)
			})
			p.Sleep(cfg.Interval)
		}
		for _, s := range doneSigs {
			s.Wait(p)
		}
		mh.CloseAll()
	})
	if err := env.Run(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if len(ttfis) != cfg.Tenants {
		return nil, fmt.Errorf("serving: placement arm finished %d/%d tenants", len(ttfis), cfg.Tenants)
	}

	arm := &PlacementArm{Policy: string(policy), Peering: peering}
	var sum, max time.Duration
	for _, d := range ttfis {
		sum += d
		if d > max {
			max = d
		}
	}
	arm.TTFIMeanMs = float64(sum) / float64(len(ttfis)) / 1e6
	arm.TTFIMaxMs = float64(max) / 1e6
	for i := range mh.Nodes {
		root := mh.Nodes[i].Root()
		st := root.Stats()
		arm.ModuleLoads += st.ModuleLoads
		arm.BytesLoaded += st.BytesLoaded
		arm.PeerFetches += st.PeerFetches
		arm.PeerBytes += st.PeerBytes
		arm.LoadTimeMs += float64(st.LoadTimeTotal) / 1e6
		arm.GPUs = append(arm.GPUs, PlacementGPU{
			Driver: root.Driver(), Arch: topo.GPU(i).Profile.Arch, Node: topo.Node(i),
			Tenants: perGPU[i], ModuleLoads: st.ModuleLoads, PeerFetches: st.PeerFetches,
		})
	}
	if rec != nil {
		rec.Count("placement_peer_fetches", env.Now(), float64(arm.PeerFetches))
		rec.Count("placement_module_loads", env.Now(), float64(arm.ModuleLoads))
	}
	return arm, nil
}
