package serving

import (
	"errors"
	"slices"
	"time"

	"pask/internal/faults"
	"pask/internal/trace"
)

// ErrShed marks a request rejected by admission control before it reached an
// instance: the queue it would have joined was over its depth bound, or the
// request had already waited past its queue deadline. Mapped to HTTP 429 by
// internal/httpapi.
var ErrShed = errors.New("serving: request shed by admission control")

// ErrBreakerOpen marks a request rejected because its model's circuit
// breaker was open — the model's instances were failing consecutively and
// the fleet is giving them a cooldown instead of new work. Mapped to HTTP
// 503 by internal/httpapi.
var ErrBreakerOpen = errors.New("serving: circuit breaker open")

// AdmissionConfig bounds the virtual-time request queue in front of a
// scenario's instances. The zero value admits everything (the historical
// behavior).
type AdmissionConfig struct {
	// MaxQueue bounds how many arrived requests may wait behind the one
	// being dispatched. When the backlog exceeds it, the oldest waiting
	// requests are shed first (drop-head): they have waited longest and are
	// the closest to staleness. 0 means unbounded.
	MaxQueue int
	// QueueDeadline sheds any request that has waited longer than this
	// before reaching an instance. 0 means no deadline.
	QueueDeadline time.Duration
}

func (a AdmissionConfig) enabled() bool {
	return a.MaxQueue > 0 || a.QueueDeadline > 0
}

// backlog reports how many requests after index i have arrived by now — the
// queue standing behind the request being dispatched. Traces are sorted by
// arrival time, so the scan stops at the first future arrival.
func backlog(tr Trace, i int, now time.Duration) int {
	n := 0
	for j := i + 1; j < len(tr); j++ {
		if tr[j].At > now {
			break
		}
		n++
	}
	return n
}

// shouldShed applies the admission config to request i considered for
// dispatch at now, returning the shed verdict and the backlog it observed.
func (a AdmissionConfig) shouldShed(tr Trace, i int, now time.Duration) (bool, int) {
	depth := backlog(tr, i, now)
	if a.MaxQueue > 0 && depth >= a.MaxQueue {
		return true, depth
	}
	if a.QueueDeadline > 0 && now-tr[i].At > a.QueueDeadline {
		return true, depth
	}
	return false, depth
}

// ApplyFlood splices the plan's synthetic request flood into a trace: FloodN
// extra arrivals for the default model starting at FloodAt, FloodGap apart.
// The result is re-sorted by arrival time (stable, so the original requests
// keep their relative order among equal timestamps). Scenario entry points
// call this when the policy carries a fault plan with a flood.
func ApplyFlood(tr Trace, plan faults.Plan) Trace {
	if plan.FloodN <= 0 {
		return tr
	}
	out := make(Trace, 0, len(tr)+plan.FloodN)
	out = append(out, tr...)
	for i := 0; i < plan.FloodN; i++ {
		out = append(out, Request{At: plan.FloodAt + time.Duration(i)*plan.FloodGap})
	}
	slices.SortStableFunc(out, func(a, b Request) int {
		switch {
		case a.At < b.At:
			return -1
		case a.At > b.At:
			return 1
		}
		return 0
	})
	return out
}

// overloadGuard bundles a scenario run's overload protections: admission
// bounds, per-model circuit breakers and the brownout controller. A nil
// guard (policy with no overload config) is inert on every method, so the
// serving loops stay zero-cost for existing callers.
type overloadGuard struct {
	adm      AdmissionConfig
	brkCfg   BreakerConfig
	breakers map[string]*breaker
	ctrl     *brownout
	stats    *Stats
	rec      *trace.Recorder
}

// newOverloadGuard builds the guard for one scenario run and — when brownout
// is enabled — installs the controller as the policy's pressure source. The
// policy is mutated in place, so callers must construct the guard before any
// instance is created from the policy.
func newOverloadGuard(policy *Policy, stats *Stats) *overloadGuard {
	if !policy.Admission.enabled() && !policy.Breaker.enabled() && !policy.Brownout.Enabled {
		return nil
	}
	g := &overloadGuard{
		adm:      policy.Admission,
		brkCfg:   policy.Breaker,
		breakers: make(map[string]*breaker),
		stats:    stats,
		rec:      policy.Rec,
	}
	if policy.Brownout.Enabled {
		g.ctrl = newBrownout(policy.Brownout, stats, policy.Rec)
		policy.Options.Pressure = g.ctrl
	}
	return g
}

// admit decides request i's fate at dispatch time: nil to proceed, ErrShed
// when admission control drops it. The backlog observation also feeds the
// brownout controller, shed or not.
func (g *overloadGuard) admit(now time.Duration, tr Trace, i int) error {
	if g == nil {
		return nil
	}
	shed, depth := false, 0
	if g.adm.enabled() {
		shed, depth = g.adm.shouldShed(tr, i, now)
	} else {
		depth = backlog(tr, i, now)
	}
	g.rec.Count("overload_queue_depth", now, float64(depth))
	if g.ctrl != nil {
		g.ctrl.observeDepth(now, depth)
	}
	if !shed {
		return nil
	}
	g.stats.recordShed(i)
	if g.ctrl != nil {
		g.ctrl.observeShed(now)
	}
	g.rec.Instant("overload", "shed", now)
	return ErrShed
}

// breaker returns the circuit breaker guarding the given model, creating it
// on first use. Nil when breakers are disabled.
func (g *overloadGuard) breaker(model string) *breaker {
	if g == nil || !g.brkCfg.enabled() {
		return nil
	}
	b, ok := g.breakers[model]
	if !ok {
		b = newBreaker(g.brkCfg, model, g.stats, g.rec)
		g.breakers[model] = b
	}
	return b
}

// reject records a breaker-open rejection for request idx.
func (g *overloadGuard) reject(now time.Duration, idx int) {
	g.stats.BreakerRejected++
	if g.stats.FailedRequests == nil {
		g.stats.FailedRequests = make(map[int]error)
	}
	g.stats.FailedRequests[idx] = ErrBreakerOpen
	g.rec.Instant("overload", "breaker_reject", now)
}

// observeSLO checks a served request's end-to-end latency against the
// policy's objective.
func (s *Stats) observeSLO(e2e, slo time.Duration) {
	if slo > 0 && e2e > slo {
		s.SLOMisses++
	}
}
