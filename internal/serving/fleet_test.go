package serving

import (
	"testing"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/faults"
)

func setupSharedModels(t *testing.T, models ...string) map[string]*experiments.ModelSetup {
	t.Helper()
	setups, err := experiments.PrepareModelsShared(models, 1, device.MI100())
	if err != nil {
		t.Fatal(err)
	}
	return setups
}

// A permanently faulting instance must not squat in the pool: after its
// keep-alive expires it is reaped like any idle instance, even though it
// never served a request successfully (Warm() stays false forever).
func TestFleetReapsFaultedInstance(t *testing.T) {
	ms := setup(t, "alex")
	inj := faults.New(faults.Plan{PermanentRate: 1, Seed: 3})
	trace := Trace{{At: 0}, {At: 3 * time.Second}}
	stats, err := ServeFleet(ms, FleetConfig{
		Policy: Policy{
			Scheme: core.SchemePaSK, Faults: inj,
			// Fail fast: with the recovery ladder on, the resident generics
			// would serve every layer degraded and the instance would warm up.
			Options: core.Options{NoDegradation: true},
			FT:      FaultTolerance{ContinueOnError: true},
		},
		KeepAlive: time.Second,
	}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 2 {
		t.Fatalf("failed = %d, want 2 under total corruption", stats.Failed)
	}
	if stats.Reaped != 1 {
		t.Fatalf("reaped = %d, want 1: faulted cold instance must age out", stats.Reaped)
	}
	if stats.Spawned != 2 {
		t.Fatalf("spawned = %d, want 2 (fresh instance after the reap)", stats.Spawned)
	}
}

// At the cap, a request for another model swaps out an idle foreign-model
// instance instead of waiting forever.
func TestFleetSwapsIdleForeignModelAtCap(t *testing.T) {
	setups := setupSharedModels(t, "alex", "res")
	trace := Trace{{At: 0, Model: "alex"}, {At: time.Second, Model: "res"}}
	stats, err := ServeFleetModels(setups, "alex", FleetConfig{
		Policy: Policy{Scheme: core.SchemePaSK}, MaxInstances: 1,
	}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Swapped != 1 || stats.Spawned != 2 || stats.MaxConcurrent != 1 {
		t.Fatalf("swapped=%d spawned=%d maxConcurrent=%d, want 1/2/1",
			stats.Swapped, stats.Spawned, stats.MaxConcurrent)
	}
	if len(stats.Latencies) != 2 {
		t.Fatalf("served %d of 2", len(stats.Latencies))
	}
}

// A request arriving at the cap with every instance busy waits for a
// completion; its end-to-end latency includes the queueing delay.
func TestFleetModelsWaitAtCapWhenAllBusy(t *testing.T) {
	setups := setupSharedModels(t, "alex", "res")
	trace := Trace{{At: 0, Model: "alex"}, {At: 0, Model: "res"}}
	stats, err := ServeFleetModels(setups, "alex", FleetConfig{
		Policy: Policy{Scheme: core.SchemePaSK}, MaxInstances: 1,
	}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxConcurrent != 1 {
		t.Fatalf("cap violated: maxConcurrent=%d", stats.MaxConcurrent)
	}
	if len(stats.Latencies) != 2 {
		t.Fatalf("served %d of 2", len(stats.Latencies))
	}
	if stats.Latencies[1] <= stats.Latencies[0] {
		t.Fatalf("queued request (%v) should wait out the first (%v)",
			stats.Latencies[1], stats.Latencies[0])
	}
	// Once the first request frees the slot, its idle instance is swapped
	// out for the second model.
	if stats.Swapped != 1 {
		t.Fatalf("swapped = %d, want 1", stats.Swapped)
	}
}

// Requests for a model without a setup fail the whole trace with a clear
// error rather than panicking mid-dispatch.
func TestFleetModelsRejectsUnknownModel(t *testing.T) {
	setups := setupSharedModels(t, "alex")
	_, err := ServeFleetModels(setups, "alex", FleetConfig{
		Policy: Policy{Scheme: core.SchemePaSK},
	}, Trace{{At: 0, Model: "nope"}})
	if err == nil {
		t.Fatal("expected error for unknown model")
	}
}

// Percentile clamps out-of-range and NaN quantiles instead of panicking on a
// slice index, and repeated calls reuse the cached sorted order.
func TestStatsPercentileGuards(t *testing.T) {
	s := &Stats{Latencies: []time.Duration{4, 1, 3, 2, 5}}
	if got := s.Percentile(-0.5); got != 1 {
		t.Fatalf("q<0 should clamp to min, got %v", got)
	}
	if got := s.Percentile(1.5); got != 5 {
		t.Fatalf("q>1 should clamp to max, got %v", got)
	}
	nan := 0.0
	if got := s.Percentile(nan / nan); got != 1 {
		t.Fatalf("NaN q should clamp to min, got %v", got)
	}
	// Appending after a query invalidates the cached sorted slice.
	s.Latencies = append(s.Latencies, 10)
	if got := s.Percentile(1.0); got != 10 {
		t.Fatalf("cache not refreshed after append: p100 = %v", got)
	}
}
