package serving

import (
	"fmt"
	"time"

	"pask/internal/blas"
	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/graphx"
)

// ProtectedPaths lists the code objects a fault plan must never damage:
// the objects that ship inside the engine and library binaries (builtin
// elementwise kernels, the BLAS core archive, the resident generics) rather
// than crossing storage. Corrupting them would model a broken install, not
// a loading-pipeline fault.
func ProtectedPaths(ms *experiments.ModelSetup) []string {
	paths := []string{graphx.BuiltinObjectPath, blas.CoreObjectPath}
	for _, inst := range ms.Reg.Residents() {
		paths = append(paths, inst.Path())
	}
	return paths
}

// InstallFaults wires an injector into the shared model setup for one
// scenario run: the store read hook, the find-path outage set, and the
// exemptions for binary-shipped objects. The returned func restores the
// setup — the store and registry are shared across scenarios and policies.
func InstallFaults(ms *experiments.ModelSetup, inj *faults.Injector) func() {
	if inj == nil {
		return func() {}
	}
	inj.Exempt(ProtectedPaths(ms)...)
	ms.Store.SetFaultHook(inj)
	ctx := ms.Reg.Ctx()
	var ids []string
	for _, s := range ms.Reg.Solutions() {
		ids = append(ids, s.ID())
	}
	disabled := inj.DisabledIDs(ids)
	for _, id := range disabled {
		ctx.Disable(id)
	}
	return func() {
		ms.Store.SetFaultHook(nil)
		for _, id := range disabled {
			ctx.Enable(id)
		}
	}
}

// ChaosConfig parameterizes the fault-injection sweep.
type ChaosConfig struct {
	Model        string         // zoo abbreviation (default "res")
	Batch        int            // default 1
	Profile      device.Profile // default MI100
	Requests     int            // trace length (default 60)
	MeanInterval time.Duration  // Poisson mean inter-arrival (default 2ms)
	EvictEvery   int            // eviction period, repeated cold paths (default 10)
	Seed         int64          // fault and trace seed (0: a default that hits loaded objects)
	Transients   []float64      // transient I/O rates to sweep (default 0, 0.1, 0.3)
	Permanents   []float64      // permanent corruption rates (default 0, 0.02)
	Spike        float64        // load-latency spike rate
	SpikeExtra   time.Duration  // spike magnitude (0: plan default)
	ResetAt      time.Duration  // device reset time (0: none)
}

func (c *ChaosConfig) fill() {
	if c.Model == "" {
		c.Model = "res"
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Profile.Name == "" {
		c.Profile = device.MI100()
	}
	if c.Requests <= 0 {
		c.Requests = 60
	}
	if c.MeanInterval <= 0 {
		c.MeanInterval = 2 * time.Millisecond
	}
	if c.EvictEvery == 0 {
		c.EvictEvery = 10
	}
	if c.Seed == 0 {
		// A seed whose permanent roll damages objects the default model's
		// cold path really loads, so the sweep shows the cliff-vs-graceful
		// contrast instead of faults that selective reuse never touches.
		c.Seed = 43
	}
	if c.Transients == nil {
		c.Transients = []float64{0, 0.1, 0.3}
	}
	if c.Permanents == nil {
		c.Permanents = []float64{0, 0.02}
	}
}

// ChaosPolicy is one policy column of the sweep.
type ChaosPolicy struct {
	Name   string
	Policy Policy // Faults is filled in per sweep cell
}

// DefaultChaosPolicies returns the compared policies: the fail-fast
// baseline, PASK with degradation disabled (the regression arm), and PASK
// with the full ladder plus per-request retries and crash recovery.
func DefaultChaosPolicies() []ChaosPolicy {
	return []ChaosPolicy{
		{Name: "baseline/failfast", Policy: Policy{Scheme: core.SchemeBaseline}},
		{Name: "pask/failfast", Policy: Policy{
			Scheme:  core.SchemePaSK,
			Options: core.Options{NoDegradation: true},
		}},
		{Name: "pask/resilient", Policy: Policy{
			Scheme: core.SchemePaSK,
			FT:     FaultTolerance{MaxRetries: 2, ContinueOnError: true},
		}},
	}
}

// Chaos runs the sweep: every (transient, permanent) rate pair crosses every
// policy, each cell facing the same seeded fault plan, and reports how many
// requests each policy served with what latency. The table is deterministic
// for a fixed config.
func Chaos(cfg ChaosConfig) (*experiments.Table, error) {
	cfg.fill()
	ms, err := experiments.PrepareModel(cfg.Model, cfg.Batch, cfg.Profile)
	if err != nil {
		return nil, err
	}
	table := &experiments.Table{
		ID:    "chaos",
		Title: fmt.Sprintf("fault-injection sweep, %s b%d on %s, %d requests", cfg.Model, cfg.Batch, cfg.Profile.Name, cfg.Requests),
		Headers: []string{"policy", "transient", "permanent", "served", "success",
			"cold_ms", "p99_ms", "crashes", "retries", "degraded", "outcome"},
		Notes: []string{
			"binary-shipped objects (builtins, BLAS core, residents) are exempt from corruption",
			fmt.Sprintf("seed=%d; identical plans replay identical faults across policies", cfg.Seed),
		},
	}
	trace := PoissonTrace(cfg.Requests, cfg.MeanInterval, cfg.Seed)
	for _, tr := range cfg.Transients {
		for _, pr := range cfg.Permanents {
			for _, cp := range DefaultChaosPolicies() {
				plan := faults.Plan{
					Seed:          cfg.Seed,
					TransientRate: tr,
					PermanentRate: pr,
					SpikeRate:     cfg.Spike,
					SpikeExtra:    cfg.SpikeExtra,
					DeviceResetAt: cfg.ResetAt,
				}
				pol := cp.Policy
				pol.Faults = faults.New(plan)
				stats, err := ServeTrace(ms, pol, trace, cfg.EvictEvery)
				outcome := "completed"
				if err != nil {
					outcome = "aborted"
				}
				if stats == nil {
					stats = &Stats{}
				}
				served := len(stats.Latencies)
				table.Rows = append(table.Rows, []string{
					cp.Name,
					fmt.Sprintf("%.0f%%", 100*tr),
					fmt.Sprintf("%.0f%%", 100*pr),
					fmt.Sprintf("%d/%d", served, cfg.Requests),
					fmt.Sprintf("%.1f%%", 100*float64(served)/float64(cfg.Requests)),
					chaosMS(meanDuration(stats.ColdLatencies)),
					chaosMS(stats.Percentile(0.99)),
					fmt.Sprintf("%d", stats.Crashes),
					fmt.Sprintf("%d", stats.Retries),
					fmt.Sprintf("%d", stats.DegradedLayers),
					outcome,
				})
			}
		}
	}
	return table, nil
}

func chaosMS(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
