package serving

import (
	"fmt"
	"slices"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/predict"
	"pask/internal/sim"
	"pask/internal/trace"
	"pask/internal/traffic"
	"pask/internal/warmup"
)

// Predictive arm names.
const (
	PredArmCold       = "cold"
	PredArmReplay     = "replay"
	PredArmPredictive = "predictive"
)

// PredictiveArms returns the comparison's arm names in run order.
func PredictiveArms() []string {
	return []string{PredArmCold, PredArmReplay, PredArmPredictive}
}

// PredictiveConfig parameterizes the predictive-prefetch experiment: an
// elastic fleet of shared-GPU nodes serving a shifting Zipfian trace with
// a post-shift flash crowd, compared across three proactive-loading arms.
type PredictiveConfig struct {
	// Models is the zoo subset traffic draws from, in initial popularity
	// order (default alex, res, vgg).
	Models []string
	Batch  int
	// Requests is the trace length (default 240; quick 110).
	Requests int
	// MeanInterval is the baseline mean inter-arrival time (default 25ms).
	MeanInterval time.Duration
	// Exponent is the Zipf skew (default 1.3).
	Exponent float64
	// ShiftFrac places the popularity re-rank (the initial ranking
	// reversed) as a fraction of the trace duration (default 0.45).
	ShiftFrac float64
	// CrowdPeak is the post-shift flash crowd's rate multiplier, targeted
	// at the new head model (default 4).
	CrowdPeak float64
	// Slots is each node's concurrent-request capacity; arrivals beyond
	// the fleet's capacity spawn new nodes (default 2).
	Slots int
	// KeepAlive reaps nodes idle longer than this (default 300ms).
	KeepAlive time.Duration
	// Budget caps what the replay and predictive arms may prefetch per
	// node (default 36 entries, about two models' manifests).
	Budget warmup.Budget
	// Confidence is the predictor's minimum confidence (default 0.45: a
	// prediction must be better than a coin flip before it may spend
	// budget — lower thresholds let weak Markov transitions prefetch the
	// whole zoo onto every node, and the contention erases the win).
	Confidence float64
	Seed       int64
	// Rec, when set, captures the first device's predictive-arm timeline
	// and aggregate prefetch counters.
	Rec   *trace.Recorder
	Quick bool
}

func (c *PredictiveConfig) fill() {
	if len(c.Models) == 0 {
		c.Models = []string{"alex", "res", "vgg"}
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Requests <= 0 {
		c.Requests = 240
		if c.Quick {
			c.Requests = 110
		}
	}
	if c.MeanInterval <= 0 {
		c.MeanInterval = 25 * time.Millisecond
	}
	if c.Exponent == 0 {
		c.Exponent = 1.3
	}
	if c.ShiftFrac <= 0 || c.ShiftFrac >= 1 {
		c.ShiftFrac = 0.45
	}
	if c.CrowdPeak <= 1 {
		c.CrowdPeak = 4
	}
	if c.Slots <= 0 {
		c.Slots = 2
	}
	if c.KeepAlive <= 0 {
		c.KeepAlive = 300 * time.Millisecond
	}
	if c.Budget.Entries <= 0 {
		// Roughly two models' manifests: proactive loading must choose
		// which models to cover, it cannot cover the whole zoo.
		c.Budget.Entries = 36
	}
	if c.Confidence <= 0 {
		c.Confidence = 0.45
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
}

// Filled returns the config with all defaults applied.
func (c PredictiveConfig) Filled() PredictiveConfig {
	c.fill()
	return c
}

// PredictiveCell is one (device, arm) measurement.
type PredictiveCell struct {
	Arm      string `json:"arm"`
	Requests int    `json:"requests"`
	Served   int    `json:"served"`
	Failed   int    `json:"failed"`
	// Nodes counts every node the elastic fleet spawned; Prewarmed the
	// subset the predictive arm brought up ahead of demand on the
	// estimator's onset signal.
	Nodes     int `json:"nodes"`
	Prewarmed int `json:"prewarmed"`
	// MeanTTFIMs is the mean time-to-first-inference over every served
	// request: arrival to inference completion, including any node
	// bring-up or instance initialization the request had to wait out.
	// ColdServes counts requests that landed on a fresh instance and
	// ColdMs averages just those — the cold-start tail the prefetchers
	// attack. Prewarming moves requests out of the cold bucket entirely,
	// so the headline is the all-requests mean.
	MeanTTFIMs float64 `json:"mean_ttfi_ms"`
	P95Ms      float64 `json:"p95_ms"`
	ColdServes int     `json:"cold_serves"`
	ColdMs     float64 `json:"cold_ms"`
	// Prefetch accounting, summed over per-node prefetchers on the shared
	// warmup scheme: hits (prefetched and used), misses (used, not
	// prefetched), wasted (prefetched, never used).
	PrefetchLoaded int     `json:"prefetch_loaded"`
	PrefetchHits   int     `json:"prefetch_hits"`
	PrefetchMisses int     `json:"prefetch_misses"`
	PrefetchWasted int     `json:"prefetch_wasted"`
	HitRate        float64 `json:"hit_rate"`
}

// PredictiveDeviceResult groups one device profile's cells.
type PredictiveDeviceResult struct {
	Device string           `json:"device"`
	Cells  []PredictiveCell `json:"cells"`
}

// PredictiveBench is the machine-readable result for BENCH_predictive.json.
type PredictiveBench struct {
	Experiment string                   `json:"experiment"`
	Models     []string                 `json:"models"`
	Batch      int                      `json:"batch"`
	Seed       int64                    `json:"seed"`
	Requests   int                      `json:"requests"`
	ShiftAtMs  float64                  `json:"shift_at_ms"`
	Devices    []PredictiveDeviceResult `json:"devices"`
}

// predictiveArrivals builds the shifting-Zipf trace every arm and device
// replays: diurnal-modulated Zipfian arrivals whose popularity ranking
// reverses at the shift, followed by a flash crowd on the new head model.
func predictiveArrivals(cfg PredictiveConfig) ([]traffic.Request, time.Duration, error) {
	total := time.Duration(cfg.Requests) * cfg.MeanInterval
	shiftAt := time.Duration(cfg.ShiftFrac * float64(total))
	reversed := make([]int, len(cfg.Models))
	for i := range reversed {
		reversed[i] = len(cfg.Models) - 1 - i
	}
	gen, err := traffic.New(traffic.Config{
		Models:   cfg.Models,
		Exponent: cfg.Exponent,
		Rate:     float64(time.Second) / float64(cfg.MeanInterval),
		Diurnal:  traffic.Diurnal{Period: total / 2, Amplitude: 0.3},
		Shifts:   []traffic.Shift{{At: shiftAt, Rank: reversed}},
		Crowds: []traffic.FlashCrowd{{
			Onset: shiftAt + total*15/100,
			Ramp:  total * 8 / 100,
			Hold:  total * 12 / 100,
			Decay: total * 8 / 100,
			Peak:  cfg.CrowdPeak,
			Model: cfg.Models[len(cfg.Models)-1],
		}},
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, 0, err
	}
	return gen.Generate(cfg.Requests), shiftAt, nil
}

// predNode is one elastic fleet member: a shared-GPU host whose tenants
// are the model instances routed to it, plus the arm's prefetcher.
type predNode struct {
	id    int
	host  *GPUHost
	used  *warmup.Recorder // object paths this node's tenants actually used
	insts map[string]*Instance
	busy  map[string]bool // per-instance in-flight flag
	load  int             // in-flight requests on this node
	idle  time.Duration   // when the node last went idle
	made  time.Duration   // when the node was spawned
	pf    *warmup.Prefetcher
	ppf   *warmup.PredictivePrefetcher
	gone  bool
}

// predMaxPrewarms caps onset-triggered node prewarms per run: prewarming
// is speculative spend, so it is budgeted like prefetch entries.
// predOnsetStreak is how many consecutive arrivals the rate estimator must
// report an onset before the cluster acts on it.
const (
	predMaxPrewarms = 6
	predOnsetStreak = 3
)

// predCluster runs one arm of the experiment: an elastic fleet in one
// virtual-time environment.
type predCluster struct {
	env       *sim.Env
	cfg       PredictiveConfig
	prof      device.Profile
	setups    map[string]*experiments.ModelSetup
	manifests map[string]*warmup.Manifest
	prior     *warmup.Manifest
	arm       string
	rec       *trace.Recorder // predictive arm of the first device only

	pred        *predict.Predictor
	est         *traffic.RateEstimator
	onsetStreak int
	prewarms    int

	nodes    []*predNode
	inflight int
	freed    *sim.Signal

	cell    PredictiveCell
	lats    []time.Duration
	coldSum time.Duration
}

// newNode spawns a fresh shared-GPU node and starts the arm's bring-up
// prefetch: the replay arm replays the prior run's (pre-shift) profile,
// the predictive arm prefetches the models currently predicted hot.
func (c *predCluster) newNode() *predNode {
	n := &predNode{
		id:    len(c.nodes),
		host:  NewGPUHostOn(c.env, device.NewGPU(c.env, c.prof), c.setups[c.cfg.Models[0]].Store),
		used:  warmup.NewRecorder(),
		insts: make(map[string]*Instance),
		busy:  make(map[string]bool),
		idle:  c.env.Now(),
		made:  c.env.Now(),
	}
	switch c.arm {
	case PredArmReplay:
		if len(c.prior.Entries) > 0 {
			n.pf = warmup.Start(c.env, n.host.Root(), c.prior, nil)
		}
	case PredArmPredictive:
		n.ppf = warmup.StartPredictive(c.env, n.host.Root(), c.manifests, c.cfg.Budget, nil)
		n.ppf.Prefetch(c.bringup()...)
	}
	c.nodes = append(c.nodes, n)
	c.cell.Nodes++
	return n
}

// hotModels returns the k models the predictor currently ranks hottest,
// falling back to the head of the initial ranking before any traffic was
// observed (the same prior knowledge the replay arm starts from).
func (c *predCluster) hotModels(k int) []string {
	hot := c.pred.Hot(k)
	if len(hot) == 0 {
		return slices.Clone(c.cfg.Models[:min(k, len(c.cfg.Models))])
	}
	out := make([]string, len(hot))
	for i, h := range hot {
		out[i] = h.Item
	}
	return out
}

// bringup returns the models a fresh predictive node prefetches: the two
// models the live ranking puts on top — the same breadth the replay arm's
// prior profile has, but ranked by what is hot NOW rather than what was
// hot when the prior run recorded its profile. Loads hold the driver lock
// for milliseconds each, so breadth beyond the budget is not attempted;
// the Markov follow-ups fill in the rest on demand evidence.
func (c *predCluster) bringup() []string { return c.hotModels(2) }

// instance creates the node's tenant instance for model, wiring the
// node's used-object recorder into the executor's profile seam so
// prefetch accounting knows what the node really consumed.
func (c *predCluster) instance(n *predNode, model string) *Instance {
	pol := Policy{Scheme: core.SchemePaSK, Rec: c.rec}
	pol.Options.Profile = n.used
	in := NewTenantInstance(n.host, c.setups[model], pol, fmt.Sprintf("%s@n%d", model, n.id))
	n.insts[model] = in
	return in
}

// ensureHeadroom keeps one spare node's worth of capacity open, the
// standard autoscaling hedge against a full fleet. The spare is where
// proactive loading earns its name: its bring-up prefetch runs before any
// traffic lands on it, so by the time scale-out routes a request there
// the predicted objects are resident. Every arm shares this policy — they
// differ only in what (if anything) the spare preloads.
func (c *predCluster) ensureHeadroom() {
	free := 0
	for _, n := range c.nodes {
		if !n.gone {
			free += c.cfg.Slots - n.load
		}
	}
	if free <= 0 {
		c.newNode()
	}
}

// route picks the serving node for a request: a node with an idle warm
// instance of the model first, then any node with a free slot and no
// instance of the model yet, else a fresh node — the elastic scale-out
// whose cold starts this experiment measures.
func (c *predCluster) route(model string) *predNode {
	for _, n := range c.nodes {
		if !n.gone && n.load < c.cfg.Slots && n.insts[model] != nil && !n.busy[model] {
			return n
		}
	}
	for _, n := range c.nodes {
		if !n.gone && n.load < c.cfg.Slots && n.insts[model] == nil {
			return n
		}
	}
	return c.newNode()
}

// reap closes nodes idle longer than the keep-alive: their prefetchers
// stop, and the next arrival for their models pays a fresh node bring-up.
func (c *predCluster) reap(now time.Duration) {
	for _, n := range c.nodes {
		if !n.gone && n.load == 0 && len(n.insts) > 0 && now-n.idle > c.cfg.KeepAlive {
			n.gone = true
			if n.ppf != nil {
				n.ppf.Close()
			}
		}
	}
}

// serve dispatches one request onto node n in its own proc.
func (c *predCluster) serve(n *predNode, model string, i int) {
	n.load++
	n.busy[model] = true
	c.inflight++
	c.env.Spawn(fmt.Sprintf("serve-%d", i), func(p *sim.Proc) {
		t0 := p.Now()
		inst := n.insts[model]
		if inst == nil {
			inst = c.instance(n, model)
		}
		coldStart := !inst.Warm()
		_, err := inst.Serve(p)
		ttfi := p.Now() - t0
		if err != nil {
			c.cell.Failed++
		} else {
			c.cell.Served++
			c.lats = append(c.lats, ttfi)
			c.rec.Count("predictive_ttfi_ms", p.Now(), float64(ttfi)/float64(time.Millisecond))
			if coldStart {
				c.cell.ColdServes++
				c.coldSum += ttfi
			}
		}
		n.load--
		n.busy[model] = false
		n.idle = p.Now()
		c.inflight--
		c.freed.Fire()
	})
}

// prewarm spawns a node ahead of demand on the estimator's onset signal
// and primes instances for the predicted-hot models, so the flash crowd
// lands on warm capacity. Priming serves count as prewarm work, not as
// user traffic.
func (c *predCluster) prewarm() {
	c.prewarms++
	c.cell.Prewarmed++
	n := c.newNode()
	c.rec.Instant("serving", "predictive-prewarm", c.env.Now())
	for _, model := range c.hotModels(2) {
		model := model
		n.load++
		n.busy[model] = true
		c.inflight++
		c.env.Spawn(fmt.Sprintf("prewarm-n%d-%s", n.id, model), func(p *sim.Proc) {
			inst := c.instance(n, model)
			if _, err := inst.Serve(p); err != nil {
				c.cell.Failed++
			}
			n.load--
			n.busy[model] = false
			n.idle = p.Now()
			c.inflight--
			c.freed.Fire()
		})
	}
}

// dispatch is the arm's traffic thread: replay the arrival trace, then
// drain, stop every prefetcher and reconcile the accounting.
func (c *predCluster) dispatch(p *sim.Proc, arrivals []traffic.Request) {
	for i, r := range arrivals {
		p.SleepUntil(r.At)
		c.reap(p.Now())
		if c.arm == PredArmPredictive {
			c.est.Observe(r.At)
			if c.est.Onset() {
				c.onsetStreak++
			} else {
				c.onsetStreak = 0
			}
			// A single over-threshold window is as likely Poisson noise as
			// ramp; a real flash crowd keeps the estimator pinned, so act
			// only once the signal persists.
			if c.onsetStreak >= predOnsetStreak {
				// An onset ramp is the one moment demand is predictable:
				// bring spare capacity up before the peak (one node per
				// arrival up to the cap), and push the hot models to every
				// running node so the crowd's overflow lands on residency
				// loaded during the ramp, not during the peak. Prefetch
				// dedups per node, so repeating this every onset arrival
				// is free.
				if c.prewarms < predMaxPrewarms {
					c.prewarm()
				}
				hot := c.hotModels(2)
				for _, live := range c.nodes {
					if !live.gone && live.ppf != nil {
						live.ppf.Prefetch(hot...)
					}
				}
			}
			c.pred.Observe(r.Model)
		}
		n := c.route(r.Model)
		c.serve(n, r.Model, i)
		c.ensureHeadroom()
		if c.arm == PredArmPredictive && n.ppf != nil {
			// Cross-tenant follow-up: whatever tends to come after this
			// model gets prefetched on the node that just took the request,
			// ahead of the tenant that will need it.
			for _, f := range c.pred.Follow(r.Model) {
				n.ppf.Prefetch(f.Item)
			}
		}
	}
	for c.inflight > 0 {
		s := c.freed
		s.Wait(p)
		if c.freed == s {
			c.freed = sim.NewSignal(c.env)
		}
	}
	for _, n := range c.nodes {
		if n.ppf != nil {
			n.ppf.Close()
			n.ppf.Wait(p)
		}
		if n.pf != nil {
			n.pf.Wait(p)
		}
	}
	for _, n := range c.nodes {
		used := n.used.Paths()
		switch {
		case n.pf != nil:
			st := n.pf.Account(used, p.Now())
			c.addPrefetch(st)
		case n.ppf != nil:
			st := n.ppf.Account(used, p.Now())
			c.addPrefetch(st)
		default:
			// No prefetcher: every used object was a demand load.
			c.cell.PrefetchMisses += len(used)
		}
		n.host.Close()
	}
}

func (c *predCluster) addPrefetch(st warmup.ReplayStats) {
	c.cell.PrefetchLoaded += st.Loaded
	c.cell.PrefetchHits += st.Hits
	c.cell.PrefetchMisses += st.Misses
	c.cell.PrefetchWasted += st.Wasted
}

// finalize computes the cell's derived metrics.
func (c *predCluster) finalize() PredictiveCell {
	cell := c.cell
	msOf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if cell.ColdServes > 0 {
		cell.ColdMs = msOf(c.coldSum / time.Duration(cell.ColdServes))
	}
	if len(c.lats) > 0 {
		var sum time.Duration
		for _, l := range c.lats {
			sum += l
		}
		cell.MeanTTFIMs = msOf(sum / time.Duration(len(c.lats)))
		sorted := slices.Clone(c.lats)
		slices.Sort(sorted)
		cell.P95Ms = msOf(sorted[len(sorted)*95/100])
	}
	if denom := cell.PrefetchHits + cell.PrefetchMisses; denom > 0 {
		cell.HitRate = float64(cell.PrefetchHits) / float64(denom)
	}
	return cell
}

// runPredictiveArm serves the trace through one arm's elastic fleet.
func runPredictiveArm(cfg PredictiveConfig, prof device.Profile, setups map[string]*experiments.ModelSetup,
	manifests map[string]*warmup.Manifest, prior *warmup.Manifest,
	arrivals []traffic.Request, arm string, rec *trace.Recorder) (PredictiveCell, error) {
	env := sim.NewEnv()
	c := &predCluster{
		env: env, cfg: cfg, prof: prof, setups: setups, manifests: manifests,
		prior: prior, arm: arm, rec: rec,
		pred: predict.New(predict.Config{MinConfidence: cfg.Confidence, Budget: 2, DecayEvery: 32}),
		est:  traffic.NewRateEstimator(12, 96, 2.0),
	}
	c.cell = PredictiveCell{Arm: arm, Requests: len(arrivals)}
	c.freed = sim.NewSignal(env)
	env.Spawn("traffic", func(p *sim.Proc) { c.dispatch(p, arrivals) })
	if err := env.Run(); err != nil {
		return PredictiveCell{}, fmt.Errorf("predictive %s/%s: %w", prof.Name, arm, err)
	}
	cell := c.finalize()
	if rec != nil && arm == PredArmPredictive {
		at := env.Now()
		rec.Count("warmup_prefetch_hits", at, float64(cell.PrefetchHits))
		rec.Count("warmup_prefetch_misses", at, float64(cell.PrefetchMisses))
		rec.Count("warmup_prefetch_wasted", at, float64(cell.PrefetchWasted))
		rec.Count("predictive_nodes", at, float64(cell.Nodes))
		rec.Count("predictive_prewarms", at, float64(cell.Prewarmed))
	}
	return cell, nil
}

// Predictive runs the predictive proactive-loading experiment: an elastic
// fleet of shared-GPU nodes serves a shifting Zipfian trace (popularity
// re-ranked mid-run, flash crowd on the new head) under three arms — no
// prefetch, replay of a prior run's pre-shift profile at node bring-up,
// and online prediction (Markov chain + aged frequency sketch) with
// budgeted bring-up/follow-up prefetch plus onset-triggered prewarming.
// Per-node hit/miss/waste accounting lands on the shared
// warmup_prefetch_{hits,misses,wasted} scheme.
func Predictive(cfg PredictiveConfig) (*experiments.Table, *PredictiveBench, error) {
	cfg.fill()
	arrivals, shiftAt, err := predictiveArrivals(cfg)
	if err != nil {
		return nil, nil, err
	}
	table := &experiments.Table{
		ID: "Predictive",
		Title: fmt.Sprintf("predictive proactive loading: %v b%d, %d arrivals, re-rank at %.0fms + %gx crowd",
			cfg.Models, cfg.Batch, len(arrivals), float64(shiftAt)/float64(time.Millisecond), cfg.CrowdPeak),
		Headers: []string{"device", "arm", "nodes", "prewarm", "ttfi_ms", "p95_ms", "cold", "cold_ms",
			"pf_hits", "pf_miss", "pf_waste", "hit_rate", "failed"},
		Notes: []string{
			"ttfi_ms is mean arrival-to-completion over ALL served requests; cold/cold_ms break out serves that hit a fresh instance",
			"replay prefetches a prior (pre-shift) profile per node; predictive learns the live ranking online",
			fmt.Sprintf("prefetch budget %d entries/node, confidence %.2f, keep-alive %v, %d slots/node",
				cfg.Budget.Entries, cfg.Confidence, cfg.KeepAlive, cfg.Slots),
			fmt.Sprintf("seed=%d; the bench JSON is byte-identical across runs", cfg.Seed),
		},
	}
	bench := &PredictiveBench{
		Experiment: "predictive", Models: cfg.Models, Batch: cfg.Batch, Seed: cfg.Seed,
		Requests: len(arrivals), ShiftAtMs: float64(shiftAt) / float64(time.Millisecond),
	}

	for devIdx, prof := range device.Profiles() {
		setups, err := experiments.PrepareModelsShared(cfg.Models, cfg.Batch, prof)
		if err != nil {
			return nil, nil, err
		}
		manifests := make(map[string]*warmup.Manifest, len(cfg.Models))
		for _, m := range cfg.Models {
			ms := setups[m]
			man, err := warmup.FromModel(ms.Model, ms.Reg, ms.Store, prof)
			if err != nil {
				return nil, nil, err
			}
			manifests[m] = man
		}
		// The prior profile is what a pre-shift run recorded: the models
		// that were hot under the initial ranking (the top two; the Zipf
		// tail barely registers in a recorded profile), capped at the same
		// budget the predictive arm gets.
		prior := &warmup.Manifest{Version: warmup.Version, Model: "prior",
			Device: prof.Name, Arch: prof.Arch}
		for _, m := range cfg.Models[:min(2, len(cfg.Models))] {
			for _, e := range manifests[m].Entries {
				if len(prior.Entries) >= cfg.Budget.Entries {
					break
				}
				prior.Entries = append(prior.Entries, e)
			}
		}

		dr := PredictiveDeviceResult{Device: prof.Name}
		var rec *trace.Recorder
		if devIdx == 0 {
			rec = cfg.Rec
		}
		for _, arm := range PredictiveArms() {
			cell, err := runPredictiveArm(cfg, prof, setups, manifests, prior, arrivals, arm, rec)
			if err != nil {
				return nil, nil, err
			}
			dr.Cells = append(dr.Cells, cell)
			table.Rows = append(table.Rows, []string{
				prof.Name, arm, fmt.Sprintf("%d", cell.Nodes), fmt.Sprintf("%d", cell.Prewarmed),
				fmt.Sprintf("%.2f", cell.MeanTTFIMs), fmt.Sprintf("%.2f", cell.P95Ms),
				fmt.Sprintf("%d", cell.ColdServes), fmt.Sprintf("%.2f", cell.ColdMs),
				fmt.Sprintf("%d", cell.PrefetchHits), fmt.Sprintf("%d", cell.PrefetchMisses),
				fmt.Sprintf("%d", cell.PrefetchWasted), fmt.Sprintf("%.2f", cell.HitRate),
				fmt.Sprintf("%d", cell.Failed),
			})
		}
		bench.Devices = append(bench.Devices, dr)
	}
	return table, bench, nil
}
