package experiments

import (
	"fmt"

	"pask/internal/core"
	"pask/internal/device"
)

// This file registers the paper-figure experiments and the package's own
// single runs (coldstart, warmup) on the menu. Registration order is the
// -exp all order, which preserves the CLI's historical sweep: figures
// first, then the extensions; the serving-layer experiments (chaos,
// multitenant, overload, ...) register from internal/serving and append
// after these because that package's init runs later.

// modelsOrAll resolves an explicit model selection, defaulting to the full
// zoo.
func modelsOrAll(models []string) []string {
	if len(models) > 0 {
		return models
	}
	return AllModelAbbrs()
}

// convOnly filters the selection to the convolution-dominated models (the
// cache-statistics experiments omit transformers, as the paper does).
func convOnly(models []string) []string {
	conv := map[string]bool{}
	for _, m := range ConvModelAbbrs() {
		conv[m] = true
	}
	var out []string
	for _, m := range models {
		if conv[m] {
			out = append(out, m)
		}
	}
	return out
}

// firstModel picks the run's model from an explicit selection, else def.
func firstModel(models []string, def string) string {
	if len(models) > 0 {
		return models[0]
	}
	return def
}

// firstBatch picks the run's batch from an explicit selection, else 1.
func firstBatch(batches []int) int {
	if len(batches) > 0 {
		return batches[0]
	}
	return 1
}

// tables wraps tables into a Result, dropping trailing nils.
func tables(ts ...*Table) *Result {
	r := &Result{}
	for _, t := range ts {
		if t != nil {
			r.Tables = append(r.Tables, t)
		}
	}
	return r
}

func init() {
	Register(Experiment{
		Name: "fig1a", Description: "cold/hot overhead per model and device", InAll: true,
		Run: func(o Options) (*Result, error) {
			tbl, _, err := Fig1a(modelsOrAll(o.Models))
			return tables(tbl), err
		},
	})
	Register(Experiment{
		Name: "fig1b", Description: "cold-start time breakdown (loading vs execution)", InAll: true,
		Run: func(o Options) (*Result, error) {
			tbl, _, err := Fig1b(modelsOrAll(o.Models))
			return tables(tbl), err
		},
	})
	Register(Experiment{
		Name: "fig4", Description: "specialization ladder: specialized vs generic kernels", InAll: true,
		Run: func(o Options) (*Result, error) {
			tbl, err := Fig4()
			return tables(tbl), err
		},
	})
	Register(Experiment{
		Name: "fig6", Description: "end-to-end speedup and utilization across schemes", InAll: true,
		Run: func(o Options) (*Result, error) {
			ta, tb, _, err := Fig6(modelsOrAll(o.Models))
			return tables(ta, tb), err
		},
	})
	Register(Experiment{
		Name: "table2", Description: "speedup across batch sizes", InAll: true,
		Run: func(o Options) (*Result, error) {
			batches := o.Batches
			if len(batches) == 0 {
				batches = []int{1, 4, 16, 64, 128}
			}
			tbl, _, err := Table2(modelsOrAll(o.Models), batches)
			return tables(tbl), err
		},
	})
	Register(Experiment{
		Name: "fig7", Description: "PaSK cold-start breakdown (loading share, overhead)", InAll: true,
		Run: func(o Options) (*Result, error) {
			tbl, _, err := Fig7(modelsOrAll(o.Models))
			return tables(tbl), err
		},
	})
	Register(Experiment{
		Name: "fig8", Description: "PaSK-I / PaSK-R ablations vs full PaSK", InAll: true,
		Run: func(o Options) (*Result, error) {
			tbl, _, err := Fig8(modelsOrAll(o.Models))
			return tables(tbl), err
		},
	})
	Register(Experiment{
		Name: "fig9", Description: "solution-cache hit rate and lookups per hit", InAll: true,
		Run: func(o Options) (*Result, error) {
			ta, tb, _, err := Fig9(convOnly(modelsOrAll(o.Models)))
			return tables(ta, tb), err
		},
	})
	Register(Experiment{
		Name: "ext-blas", Description: "BLAS handle scope extension", InAll: true,
		Run: func(o Options) (*Result, error) {
			tbl, err := ExtBlasScope()
			return tables(tbl), err
		},
	})
	Register(Experiment{
		Name: "ext-precision", Description: "precision sweep extension", InAll: true,
		Run: func(o Options) (*Result, error) {
			tbl, err := ExtPrecision(convOnly(modelsOrAll(o.Models)))
			return tables(tbl), err
		},
	})
	Register(Experiment{
		Name: "ext-background", Description: "background-loading extension", InAll: true,
		Run: func(o Options) (*Result, error) {
			tbl, err := ExtBackground(convOnly(modelsOrAll(o.Models)))
			return tables(tbl), err
		},
	})
	Register(Experiment{
		Name: "ablations", Description: "implementation design ablations vs full PaSK", InAll: true,
		Run: func(o Options) (*Result, error) {
			tbl, _, err := Ablations(convOnly(modelsOrAll(o.Models)))
			return tables(tbl), err
		},
	})
	Register(Experiment{
		Name: "ext-crossmodel", Description: "cross-model kernel reuse in a warm process", InAll: true,
		Run: runExtCrossModel,
	})
	Register(Experiment{
		Name:        "coldstart",
		Description: "one PaSK cold start with a full exportable timeline",
		Run: func(o Options) (*Result, error) {
			return runColdstartExp(firstModel(o.Models, "res"), firstBatch(o.Batches), o)
		},
	})
	Register(Experiment{
		Name:        "warmup",
		Description: "cold vs recorded vs profile-replay cold starts per device",
		Bench:       true,
		Run: func(o Options) (*Result, error) {
			def := "res"
			if o.Quick {
				def = "alex"
			}
			tbl, bench, err := WarmupExperiment(firstModel(o.Models, def), firstBatch(o.Batches), o.Trace)
			if err != nil {
				return nil, err
			}
			return &Result{Tables: []*Table{tbl}, Bench: bench}, nil
		},
	})
}

// runExtCrossModel measures model B's cold start in a process warmed by
// model A, over a fixed pair set.
func runExtCrossModel(o Options) (*Result, error) {
	pairs := [][2]string{{"res", "vgg"}, {"alex", "res"}, {"reg", "eff"}}
	tbl := &Table{ID: "Ext-CrossModel",
		Title:   "Cross-model kernel reuse: model B cold start in a process warmed by model A (MI100)",
		Headers: []string{"A -> B", "fresh process", "warm process", "reuse hits"}}
	for _, pr := range pairs {
		res, err := CrossModelReuse(pr[0], pr[1], device.MI100())
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			pr[0] + " -> " + pr[1],
			fmt.Sprintf("%.1fms", res.FreshMs),
			fmt.Sprintf("%.1fms", res.SharedMs),
			fmt.Sprintf("%d", res.Hits)})
	}
	tbl.Notes = append(tbl.Notes,
		"benefit is bounded by problem-configuration overlap between the models; foreign specialists at the cache head can add lookups")
	return tables(tbl), nil
}

// runColdstartExp executes one PaSK cold start, recording the timeline
// into o.Trace when set.
func runColdstartExp(model string, batch int, o Options) (*Result, error) {
	ms, err := PrepareModel(model, batch, device.MI100())
	if err != nil {
		return nil, err
	}
	rep, res, err := ms.RunSchemeTraced(core.SchemePaSK, core.Options{}, o.Trace)
	if err != nil {
		return nil, err
	}
	tbl := &Table{ID: "ColdStart",
		Title:   fmt.Sprintf("PaSK cold start: %s on MI100 (batch %d)", model, batch),
		Headers: []string{"metric", "value"},
		Rows: [][]string{
			{"cold start", fmt.Sprintf("%.2fms", float64(rep.Total)/1e6)},
			{"GPU utilization", fmt.Sprintf("%.1f%%", 100*rep.Utilization())},
			{"code objects loaded", fmt.Sprintf("%d (%.1f MB)", rep.Loads, float64(rep.LoadedBytes)/1e6)},
			{"reuse", fmt.Sprintf("%d queries, %d hits, %d loads skipped", res.Cache.Queries, res.Cache.Hits, res.SkippedLoads)},
			{"milestone", fmt.Sprintf("%d", res.Milestone)},
		}}
	return tables(tbl), nil
}
