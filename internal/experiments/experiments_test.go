package experiments

import (
	"strings"
	"testing"

	"pask/internal/core"
	"pask/internal/device"
)

// These tests assert the *shape* of the paper's results on the simulated
// stack: who wins, by roughly what factor, and where the crossovers fall.
// EXPERIMENTS.md records the exact paper-vs-measured numbers.

var testModels = []string{"alex", "vgg", "res", "eff", "vit"}

func TestPrepareModelAllTwelve(t *testing.T) {
	for _, abbr := range AllModelAbbrs() {
		ms, err := PrepareModel(abbr, 1, device.MI100())
		if err != nil {
			t.Fatalf("%s: %v", abbr, err)
		}
		if ms.Model.NumInstructions() == 0 || ms.Store.Len() == 0 {
			t.Fatalf("%s: empty setup", abbr)
		}
	}
}

func TestFig1aShape(t *testing.T) {
	_, res, err := Fig1a(testModels)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 23.7x (MI100), 19.5x (A100), 31.3x (6900XT). Assert the band
	// and the device ordering: CUDA loads fastest, the consumer ROCm part
	// slowest.
	for dev, avg := range res.Average {
		if avg < 8 || avg > 60 {
			t.Errorf("%s average slowdown %.1fx outside [8, 60]", dev, avg)
		}
	}
	if !(res.Average["A100"] < res.Average["MI100"] && res.Average["MI100"] < res.Average["6900XT"]) {
		t.Errorf("device ordering violated: %+v", res.Average)
	}
	// Every model suffers a material cold start on every device.
	for dev, models := range res.Slowdown {
		for m, v := range models {
			if v < 3 {
				t.Errorf("%s on %s: slowdown %.1fx implausibly low", m, dev, v)
			}
		}
	}
}

func TestFig1bShape(t *testing.T) {
	_, res, err := Fig1b(testModels)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: loading 65.8%, execution 8.4%. Loading must dominate and
	// execution must be a small slice.
	if res.Avg["code loading"] < 0.40 || res.Avg["code loading"] > 0.85 {
		t.Errorf("loading share %.1f%% outside [40, 85]", 100*res.Avg["code loading"])
	}
	if res.Avg["GPU execution"] > 0.20 {
		t.Errorf("execution share %.1f%% too large", 100*res.Avg["GPU execution"])
	}
	if res.Avg["code loading"] < 4*res.Avg["GPU execution"] {
		t.Errorf("loading (%.1f%%) must dwarf execution (%.1f%%)",
			100*res.Avg["code loading"], 100*res.Avg["GPU execution"])
	}
}

func TestFig6Shape(t *testing.T) {
	_, _, res, err := Fig6(AllModelAbbrs())
	if err != nil {
		t.Fatal(err)
	}
	// Paper averages: NNV12 3.04x, PaSK 5.62x, Ideal 7.75x.
	nnv := res.AvgSpeedup[core.SchemeNNV12]
	pask := res.AvgSpeedup[core.SchemePaSK]
	ideal := res.AvgSpeedup[core.SchemeIdeal]
	if !(1 < nnv && nnv < pask && pask < ideal) {
		t.Fatalf("speedup ordering violated: NNV12=%.2f PaSK=%.2f Ideal=%.2f", nnv, pask, ideal)
	}
	if pask < 2.5 || pask > 9 {
		t.Errorf("PaSK average speedup %.2fx outside [2.5, 9]", pask)
	}
	if ideal < 5 || ideal > 16 {
		t.Errorf("Ideal average speedup %.2fx outside [5, 16]", ideal)
	}
	// Transformers benefit least (paper §V-A).
	for _, tr := range TransformerAbbrs() {
		if res.Speedup[tr][core.SchemePaSK] > 2 {
			t.Errorf("%s PaSK speedup %.2fx: transformers should benefit least",
				tr, res.Speedup[tr][core.SchemePaSK])
		}
	}
	// Convolution models benefit substantially.
	for _, cm := range []string{"res", "reg", "eff"} {
		if res.Speedup[cm][core.SchemePaSK] < 3 {
			t.Errorf("%s PaSK speedup %.2fx too small", cm, res.Speedup[cm][core.SchemePaSK])
		}
	}
	// Utilization ordering (paper Fig 6b): Baseline < NNV12 < PaSK < Ideal.
	base := avgOf(res.Utilization, AllModelAbbrs(), core.SchemeBaseline)
	nnvU := res.AvgUtil[core.SchemeNNV12]
	paskU := res.AvgUtil[core.SchemePaSK]
	idealU := res.AvgUtil[core.SchemeIdeal]
	if !(base < nnvU && nnvU < paskU && paskU < idealU) {
		t.Errorf("utilization ordering violated: base=%.3f nnv=%.3f pask=%.3f ideal=%.3f",
			base, nnvU, paskU, idealU)
	}
	if paskU < 0.10 || paskU > 0.45 {
		t.Errorf("PaSK utilization %.1f%% outside [10, 45]", 100*paskU)
	}
}

func avgOf(m map[string]map[core.Scheme]float64, models []string, sch core.Scheme) float64 {
	var sum float64
	for _, k := range models {
		sum += m[k][sch]
	}
	return sum / float64(len(models))
}

func TestTable2Shape(t *testing.T) {
	_, res, err := Table2(testModels, []int{1, 16, 128})
	if err != nil {
		t.Fatal(err)
	}
	// Speedups shrink monotonically with batch size for every scheme
	// (paper Table II), and PaSK stays between NNV12 and Ideal.
	for _, sch := range []core.Scheme{core.SchemeNNV12, core.SchemePaSK, core.SchemeIdeal} {
		if !(res.Speedup[1][sch] > res.Speedup[16][sch] && res.Speedup[16][sch] > res.Speedup[128][sch]) {
			t.Errorf("%s speedups not decreasing with batch: %.2f, %.2f, %.2f",
				sch, res.Speedup[1][sch], res.Speedup[16][sch], res.Speedup[128][sch])
		}
	}
	for _, b := range []int{1, 16, 128} {
		if !(res.Speedup[b][core.SchemeNNV12] < res.Speedup[b][core.SchemePaSK] &&
			res.Speedup[b][core.SchemePaSK] < res.Speedup[b][core.SchemeIdeal]) {
			t.Errorf("batch %d ordering violated: %+v", b, res.Speedup[b])
		}
	}
}

func TestFig7Shape(t *testing.T) {
	_, res, err := Fig7(testModels)
	if err != nil {
		t.Fatal(err)
	}
	// PASK overhead must be negligible (paper: 1.3%).
	if res.Avg["PASK overhead"] > 0.05 {
		t.Errorf("PASK overhead %.1f%% too large", 100*res.Avg["PASK overhead"])
	}
	// Under PaSK, loading no longer dominates the way it does in Fig 1b,
	// and transformers keep the largest loading share (paper §V-B).
	for _, cm := range []string{"alex", "vgg"} {
		if res.Shares[cm]["solution loading"] > 0.6 {
			t.Errorf("%s loading share %.1f%% still dominates under PaSK",
				cm, 100*res.Shares[cm]["solution loading"])
		}
	}
	if res.Shares["vit"]["solution loading"] < res.Shares["res"]["solution loading"] {
		t.Errorf("transformer loading share (%.1f%%) should exceed CNN share (%.1f%%)",
			100*res.Shares["vit"]["solution loading"], 100*res.Shares["res"]["solution loading"])
	}
}

func TestFig8Shape(t *testing.T) {
	_, res, err := Fig8(testModels)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range testModels {
		ni := res.Normalized[m][core.SchemePaSKI]
		nr := res.Normalized[m][core.SchemePaSKR]
		if ni > 1.001 || nr > 1.001 {
			t.Errorf("%s: ablation beats full PaSK (I=%.2f R=%.2f)", m, ni, nr)
		}
		if ni <= 0 || nr <= 0 {
			t.Errorf("%s: degenerate normalization (I=%.2f R=%.2f)", m, ni, nr)
		}
	}
	// Transformers show only nuances between PaSK and PaSK-I (paper §V-C).
	if res.Normalized["vit"][core.SchemePaSKI] < 0.95 {
		t.Errorf("vit PaSK-I = %.2f, should be ~1.0 (single primitive layer)",
			res.Normalized["vit"][core.SchemePaSKI])
	}
}

func TestFig9Shape(t *testing.T) {
	_, _, res, err := Fig9(ConvModelAbbrs())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 69.7% average hit rate; ours is optimistic (broader resident
	// generic coverage) but must stay high and non-trivial.
	if res.AvgHitRate < 0.6 {
		t.Errorf("average hit rate %.1f%% too low", 100*res.AvgHitRate)
	}
	// Categorical lookups per hit near 1 (paper: 1.22) and strictly better
	// than the naive exhaustive scan (paper: 1.89).
	if res.AvgCatLookups < 1 || res.AvgCatLookups > 2 {
		t.Errorf("categorical lookups/hit %.2f outside [1, 2]", res.AvgCatLookups)
	}
	for _, m := range ConvModelAbbrs() {
		if res.CatLookups[m] > res.NaiveLookups[m] {
			t.Errorf("%s: categorical (%.2f) worse than naive (%.2f)",
				m, res.CatLookups[m], res.NaiveLookups[m])
		}
	}
}

func TestFig4Ladder(t *testing.T) {
	tbl, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("ladder rows = %d", len(tbl.Rows))
	}
	// Generality shrinks down the ladder: the naive tier covers the wide
	// problem, the fixed specialist does not.
	if tbl.Rows[0][2] != "true" || tbl.Rows[2][2] != "false" {
		t.Errorf("generality shape wrong: %v", tbl.Rows)
	}
}

func TestExtensionsRun(t *testing.T) {
	if _, err := ExtBlasScope(); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtPrecision([]string{"alex"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtBackground([]string{"vgg"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchemeRejectsUnknown(t *testing.T) {
	ms, err := PrepareModel("alex", 1, device.MI100())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ms.RunScheme(core.Scheme("Bogus"), core.Options{}); err == nil {
		t.Fatal("unknown scheme must fail")
	}
}

func TestReportsAreSelfConsistent(t *testing.T) {
	ms, err := PrepareModel("res", 1, device.MI100())
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range core.Schemes() {
		rep, _, err := ms.RunScheme(sch, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Total <= 0 {
			t.Errorf("%s: non-positive total", sch)
		}
		if rep.GPUBusy > rep.Total {
			t.Errorf("%s: busy (%v) exceeds total (%v)", sch, rep.GPUBusy, rep.Total)
		}
		var sum int64
		for _, v := range rep.Breakdown {
			sum += int64(v)
		}
		if sum != int64(rep.Total) {
			t.Errorf("%s: breakdown sums to %d, total %d", sch, sum, rep.Total)
		}
	}
}

func TestAblationsShape(t *testing.T) {
	_, res, err := Ablations([]string{"alex", "res"})
	if err != nil {
		t.Fatal(err)
	}
	for m, r := range res {
		// Unseeded reuse must cost real time: the resident seed is a major
		// contributor to PaSK's result in this implementation.
		if r.NoSeed <= r.PaSK {
			t.Errorf("%s: unseeded (%.1fms) not slower than seeded (%.1fms)", m, r.NoSeed, r.PaSK)
		}
		// Fusion shrinks the baseline's loading work.
		if r.FusedBaseline > r.PlainBaseline {
			t.Errorf("%s: fused baseline (%.1fms) slower than plain (%.1fms)",
				m, r.FusedBaseline, r.PlainBaseline)
		}
		// PaSK beats both baselines.
		if r.PaSK >= r.FusedBaseline {
			t.Errorf("%s: PaSK (%.1fms) not faster than fused baseline (%.1fms)",
				m, r.PaSK, r.FusedBaseline)
		}
	}
}

// TestExperimentsDeterministic: the whole evaluation is virtual-time exact —
// running an experiment twice produces byte-identical tables.
func TestExperimentsDeterministic(t *testing.T) {
	a, au, _, err := Fig6([]string{"alex", "res", "vit"})
	if err != nil {
		t.Fatal(err)
	}
	b, bu, _, err := Fig6([]string{"alex", "res", "vit"})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() || au.String() != bu.String() {
		t.Fatalf("Fig6 not deterministic:\n%s\nvs\n%s", a, b)
	}
	c, _, err := Fig1a([]string{"alex"})
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := Fig1a([]string{"alex"})
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != d.String() {
		t.Fatal("Fig1a not deterministic")
	}
}

// TestTableRendering exercises the Table formatter.
func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Headers: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n1"}}
	out := tbl.String()
	for _, want := range []string{"X — demo", "a", "1", "note: n1"} {
		if !containsStr(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if tbl.CSV() == "" {
		t.Error("CSV output empty")
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

// TestCrossModelReuse: kernels loaded for one model are recycled when a
// second model cold-starts in the same process — the multi-tenant corollary
// of "PASK recycles existing loaded kernels".
func TestCrossModelReuse(t *testing.T) {
	res, err := CrossModelReuse("res", "vgg", device.MI100())
	if err != nil {
		t.Fatal(err)
	}
	// Reuse still resolves every layer; the net time benefit is bounded by
	// how much the two models' problem configurations overlap, and foreign
	// specialists at the MRU head can even add lookups. Assert the shared
	// start is at worst marginally slower and never re-loads shared objects.
	if res.SharedMs > res.FreshMs*1.05 {
		t.Fatalf("warm-process start (%.2fms) much slower than fresh (%.2fms)",
			res.SharedMs, res.FreshMs)
	}
	if res.Hits == 0 {
		t.Fatal("no cross-model reuse hits")
	}
}

func TestPrepareModelsSharedOneStore(t *testing.T) {
	setups, err := PrepareModelsShared([]string{"alex", "res"}, 1, device.MI100())
	if err != nil {
		t.Fatal(err)
	}
	if setups["alex"].Store != setups["res"].Store || setups["alex"].Reg != setups["res"].Reg {
		t.Fatal("shared setups must share the store and registry")
	}
}
