package experiments

import (
	"testing"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/trace"
	"pask/internal/warmup"
)

// TestWarmupBeatsColdOnAllDevices is the tentpole acceptance check: replaying
// a recorded load profile must put time-to-first-inference strictly below the
// cold arm on every device profile.
func TestWarmupBeatsColdOnAllDevices(t *testing.T) {
	for _, prof := range device.Profiles() {
		ms, err := PrepareModel("alex", 1, prof)
		if err != nil {
			t.Fatalf("%s: PrepareModel: %v", prof.Name, err)
		}
		cold, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, nil, true)
		if err != nil {
			t.Fatalf("%s: cold+record: %v", prof.Name, err)
		}
		if cold.Profile == nil || len(cold.Profile.Entries) == 0 {
			t.Fatalf("%s: recording produced no entries", prof.Name)
		}
		if cold.Profile.Device != prof.Name || cold.Profile.Model != "alex" {
			t.Fatalf("%s: profile header wrong: %+v", prof.Name, cold.Profile)
		}
		warmed, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, cold.Profile, false)
		if err != nil {
			t.Fatalf("%s: warmed: %v", prof.Name, err)
		}
		if warmed.TTFI >= cold.TTFI {
			t.Errorf("%s: warmed TTFI %v not below cold %v", prof.Name, warmed.TTFI, cold.TTFI)
		}
		if warmed.Replay.Loaded+warmed.Replay.Coalesced == 0 {
			t.Errorf("%s: replay prefetched nothing: %+v", prof.Name, warmed.Replay)
		}
		if warmed.Replay.Hits == 0 {
			t.Errorf("%s: no prefetch hits: %+v", prof.Name, warmed.Replay)
		}
		if warmed.Rep.WarmupHits != warmed.Replay.Hits || warmed.Rep.WarmupStale != warmed.Replay.Stale {
			t.Errorf("%s: report/replay mismatch: %+v vs %+v", prof.Name, warmed.Rep, warmed.Replay)
		}
	}
}

// TestWarmupStaleManifestDegradesToCold corrupts every entry's checksum: the
// run must still succeed (a plain cold start) with the entries counted stale.
func TestWarmupStaleManifestDegradesToCold(t *testing.T) {
	ms, err := PrepareModel("alex", 1, device.MI100())
	if err != nil {
		t.Fatalf("PrepareModel: %v", err)
	}
	rec, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, nil, true)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	man := rec.Profile
	for i := range man.Entries {
		man.Entries[i].Checksum++
	}
	man.Entries = append(man.Entries, warmup.Entry{Path: "no/such/object.pko", Checksum: 1})

	warmed, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, man, false)
	if err != nil {
		t.Fatalf("stale manifest must not fail the run: %v", err)
	}
	if warmed.Replay.Stale != len(man.Entries) {
		t.Fatalf("want %d stale entries, got %+v", len(man.Entries), warmed.Replay)
	}
	if warmed.Replay.Loaded != 0 || warmed.Replay.Hits != 0 {
		t.Fatalf("stale replay must prefetch nothing: %+v", warmed.Replay)
	}
	if warmed.Rep.WarmupStale != len(man.Entries) {
		t.Fatalf("Report.WarmupStale = %d, want %d", warmed.Rep.WarmupStale, len(man.Entries))
	}
}

// TestWarmupCountersInTrace asserts the prefetch counter series land in the
// recorded trace (and therefore in the Chrome export and /metrics).
func TestWarmupCountersInTrace(t *testing.T) {
	ms, err := PrepareModel("alex", 1, device.MI100())
	if err != nil {
		t.Fatalf("PrepareModel: %v", err)
	}
	rec, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, nil, true)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	tr := trace.New()
	if _, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, tr, rec.Profile, false); err != nil {
		t.Fatalf("warmed: %v", err)
	}
	want := map[string]bool{
		"warmup_prefetch_hits":   false,
		"warmup_prefetch_misses": false,
		"warmup_prefetch_wasted": false,
		"warmup_stale_entries":   false,
	}
	for _, c := range tr.Counters() {
		if _, ok := want[c.Name]; ok {
			want[c.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("counter series %q missing from trace", name)
		}
	}
	spans := 0
	for _, s := range tr.Spans() {
		if s.Thread == warmup.Track {
			spans++
		}
	}
	if spans == 0 {
		t.Error("no prefetch spans on the warmup track")
	}
}

// TestWarmupExperimentShape runs the full experiment at batch 1 and checks
// the bench payload the CI smoke uploads.
func TestWarmupExperimentShape(t *testing.T) {
	tbl, bench, err := WarmupExperiment("alex", 1, nil)
	if err != nil {
		t.Fatalf("WarmupExperiment: %v", err)
	}
	if len(tbl.Rows) != 3 || len(bench.Devices) != 3 {
		t.Fatalf("want 3 device rows, got %d/%d", len(tbl.Rows), len(bench.Devices))
	}
	for _, d := range bench.Devices {
		if d.WarmedMs >= d.ColdMs {
			t.Errorf("%s: warmed %.2fms not below cold %.2fms", d.Device, d.WarmedMs, d.ColdMs)
		}
		if d.Speedup <= 1 {
			t.Errorf("%s: speedup %.2f not above 1", d.Device, d.Speedup)
		}
		if d.ProfileEntries == 0 {
			t.Errorf("%s: empty profile", d.Device)
		}
	}
}
