package experiments

import (
	"fmt"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/graphx"
	"pask/internal/miopen"
	"pask/internal/onnx/zoo"
	"pask/internal/sim"
)

// Design-choice ablations beyond the paper's PaSK-I / PaSK-R (Fig 8): each
// toggles one mechanism of this implementation and measures its
// contribution to the PaSK cold start.

// AblationResult is one model's cold-start times under the toggles.
type AblationResult struct {
	PaSK          float64 // ms, full design
	NoElision     float64 // ms, without dynamic transform elision
	NoEager       float64 // ms, selective from the first layer (no milestone phase)
	NoSeed        float64 // ms, cache not seeded with resident kernels
	FusedBaseline float64 // ms, Baseline over a conv+relu-fused plan
	PlainBaseline float64 // ms, Baseline over the default plan
}

// Ablations measures the design toggles for each model and renders a table
// normalized to full PaSK (values < 1 mean the ablated variant is slower).
func Ablations(models []string) (*Table, map[string]*AblationResult, error) {
	res := map[string]*AblationResult{}
	tbl := &Table{
		ID:    "Ablations",
		Title: "Design-choice ablations, performance normalized to full PaSK (MI100, batch 1)",
		Headers: []string{"model", "no-elision", "no-eager-phase", "no-cache-seed",
			"baseline", "baseline+fusion"},
	}
	for _, abbr := range models {
		ms, err := PrepareModel(abbr, 1, device.MI100())
		if err != nil {
			return nil, nil, err
		}
		r := &AblationResult{}
		run := func(opts core.Options, seed bool) (float64, error) {
			return ms.runPaSKVariant(opts, seed)
		}
		if r.PaSK, err = run(core.Options{}, true); err != nil {
			return nil, nil, err
		}
		if r.NoElision, err = run(core.Options{NoTransformElision: true}, true); err != nil {
			return nil, nil, err
		}
		if r.NoEager, err = run(core.Options{NoEagerPhase: true}, true); err != nil {
			return nil, nil, err
		}
		if r.NoSeed, err = run(core.Options{}, false); err != nil {
			return nil, nil, err
		}
		base, _, err := ms.RunScheme(core.SchemeBaseline, core.Options{})
		if err != nil {
			return nil, nil, err
		}
		r.PlainBaseline = float64(base.Total) / 1e6

		fusedMS, err := prepareFused(abbr, ms)
		if err != nil {
			return nil, nil, err
		}
		fb, _, err := fusedMS.RunScheme(core.SchemeBaseline, core.Options{})
		if err != nil {
			return nil, nil, err
		}
		r.FusedBaseline = float64(fb.Total) / 1e6

		res[abbr] = r
		tbl.Rows = append(tbl.Rows, []string{abbr,
			f2(r.PaSK / r.NoElision),
			f2(r.PaSK / r.NoEager),
			f2(r.PaSK / r.NoSeed),
			f2(r.PaSK / r.PlainBaseline),
			f2(r.PaSK / r.FusedBaseline),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"no-cache-seed disables resident-kernel seeding (reuse must bootstrap from loads)",
		"baseline+fusion fuses conv+relu pairs offline (fewer activation objects to load)",
		"values > 1 for no-eager-phase show the milestone's unconditional loads cost time when the cache is pre-seeded; the milestone matters exactly when the cache starts empty (the paper's setting, cf. no-cache-seed)")
	return tbl, res, nil
}

// runPaSKVariant runs PaSK with the given options; seed controls resident
// seeding of the categorical cache. Returns the cold-start time in ms.
func (ms *ModelSetup) runPaSKVariant(opts core.Options, seed bool) (float64, error) {
	pr := ms.NewProcess()
	var total float64
	var runErr error
	pr.Env.Spawn("main", func(p *sim.Proc) {
		defer pr.GPU.CloseAll()
		pr.Runner.RT.InitContext(p)
		if runErr = pr.Runner.Lib.LoadResidents(p); runErr != nil {
			return
		}
		cache := core.NewCategoricalCache()
		if seed {
			core.SeedResidents(cache, pr.Runner.Lib)
		}
		t0 := p.Now()
		if _, err := core.RunInterleaved(p, pr.Runner, ms.Model, cache, true, opts); err != nil {
			runErr = err
			return
		}
		total = float64(p.Now()-t0) / 1e6
	})
	if err := pr.Env.Run(); err != nil {
		return 0, err
	}
	return total, runErr
}

// prepareFused compiles the model with the conv+activation fusion pass and
// materializes into the existing store.
func prepareFused(abbr string, base *ModelSetup) (*ModelSetup, error) {
	spec, err := zoo.ByAbbr(abbr)
	if err != nil {
		return nil, err
	}
	g, err := spec.Build(base.Batch)
	if err != nil {
		return nil, err
	}
	g.DType = base.Model.DType
	db := miopen.NewPerfDB(base.Reg)
	m, err := graphx.Compile(g, db, graphx.CompileOptions{FuseConvActivation: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: fused compile %s: %w", abbr, err)
	}
	m.Name = m.Name + "+fused"
	if err := graphx.MaterializeModel(base.Store, base.Reg, m); err != nil {
		return nil, err
	}
	clone := *base
	clone.Model = m
	clone.Uniform = m
	return &clone, nil
}

// CrossModelResult measures §II's multi-tenant implication: a process that
// already served model A holds loaded kernels that PASK recycles when model
// B cold-starts in the same process.
type CrossModelResult struct {
	FreshMs  float64 // model B cold start in a fresh process
	SharedMs float64 // model B cold start in the process warmed by model A
	Hits     int     // reuse hits during B's shared-process start
}

// CrossModelReuse serves model A cold, then model B in the same process
// (shared hip registry and PASK cache), and compares B's start against a
// fresh process.
func CrossModelReuse(a, b string, prof device.Profile) (*CrossModelResult, error) {
	setups, err := PrepareModelsShared([]string{a, b}, 1, prof)
	if err != nil {
		return nil, err
	}
	msA, msB := setups[a], setups[b]

	// Fresh process: B alone.
	fresh, err := msB.runPaSKVariant(core.Options{}, true)
	if err != nil {
		return nil, err
	}

	// Shared process: A first, then B with the same runner and cache.
	pr := msB.NewProcess()
	out := &CrossModelResult{FreshMs: fresh}
	var runErr error
	pr.Env.Spawn("main", func(p *sim.Proc) {
		defer pr.GPU.CloseAll()
		pr.Runner.RT.InitContext(p)
		if runErr = pr.Runner.Lib.LoadResidents(p); runErr != nil {
			return
		}
		cache := core.NewCategoricalCache()
		core.SeedResidents(cache, pr.Runner.Lib)
		if _, err := core.RunInterleaved(p, pr.Runner, msA.Model, cache, true, core.Options{}); err != nil {
			runErr = err
			return
		}
		t0 := p.Now()
		res, err := core.RunInterleaved(p, pr.Runner, msB.Model, cache, true, core.Options{})
		if err != nil {
			runErr = err
			return
		}
		out.SharedMs = float64(p.Now()-t0) / 1e6
		out.Hits = res.Cache.Hits
	})
	if err := pr.Env.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return out, nil
}
