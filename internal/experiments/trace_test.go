package experiments

import (
	"bytes"
	"testing"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/metrics"
	"pask/internal/trace"
)

// TestTracedRunAgreesWithReport is the observability acceptance check: a
// traced PaSK cold start of res exports a Chrome trace whose named tracks
// cover the pipeline and whose per-category span totals, recomputed over the
// marked run window, equal Report.Breakdown.
func TestTracedRunAgreesWithReport(t *testing.T) {
	ms, err := PrepareModel("res", 1, device.MI100())
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	rep, _, err := ms.RunSchemeTraced(core.SchemePaSK, core.Options{}, rec)
	if err != nil {
		t.Fatal(err)
	}

	// The run window is marked on the "run" track and spans Report.Total.
	t0, ok := rec.FindInstant("run", "run-start")
	if !ok {
		t.Fatal("no run-start instant")
	}
	t1, ok := rec.FindInstant("run", "run-end")
	if !ok {
		t.Fatal("no run-end instant")
	}
	if t1-t0 != rep.Total {
		t.Fatalf("marked window %v != Report.Total %v", t1-t0, rep.Total)
	}

	// Breakdown recomputed from the recorder's spans over the marked window
	// matches the report exactly: the recorder observed the same spans the
	// report's tracer attributed.
	bd := metrics.Breakdown(rec.Spans(), t0, t1, metrics.DefaultPriority())
	for cat, want := range rep.Breakdown {
		if got := bd[cat]; got != want {
			t.Errorf("category %s: trace total %v != report %v", cat, got, want)
		}
	}
	for cat, got := range bd {
		if _, ok := rep.Breakdown[cat]; !ok && got != 0 {
			t.Errorf("category %s: trace has %v, report has none", cat, got)
		}
	}

	// The pipeline's threads appear as named tracks (acceptance: >= 4).
	tracks := map[string]bool{}
	for _, name := range rec.Tracks() {
		tracks[name] = true
	}
	for _, want := range []string{"pask-parser", "pask-loader", "pask-issuer", "gpu"} {
		if !tracks[want] {
			t.Errorf("track %q missing (have %v)", want, rec.Tracks())
		}
	}
	if len(rec.Tracks()) < 4 {
		t.Fatalf("want >= 4 named tracks, got %v", rec.Tracks())
	}

	// Loading happened, so the residency gauge sampled a positive value.
	if v, ok := rec.CounterLast("hip_resident_bytes"); !ok || v <= 0 {
		t.Errorf("hip_resident_bytes: got %v, %v; want positive sample", v, ok)
	}
	if _, ok := rec.CounterLast("pask_cache_size"); !ok {
		t.Error("pask_cache_size counter never sampled")
	}

	// The exported Chrome file passes its own validator.
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := trace.ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if len(sum.Tracks) < 4 {
		t.Fatalf("exported trace has %d named tracks, want >= 4", len(sum.Tracks))
	}
}

// TestUntracedRunsUnchanged pins that attaching a recorder does not perturb
// the simulation: the traced and untraced runs report identical numbers.
func TestUntracedRunsUnchanged(t *testing.T) {
	ms, err := PrepareModel("alex", 1, device.MI100())
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := ms.RunScheme(core.SchemePaSK, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	traced, _, err := ms.RunSchemeTraced(core.SchemePaSK, core.Options{}, trace.New())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Total != traced.Total || plain.Loads != traced.Loads ||
		plain.ReuseHits != traced.ReuseHits || plain.GPUBusy != traced.GPUBusy {
		t.Fatalf("tracing perturbed the run: %+v vs %+v", plain, traced)
	}
}
