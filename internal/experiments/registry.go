package experiments

import (
	"fmt"
	"sort"

	"pask/internal/trace"
)

// Options is the uniform knob set every registered experiment accepts.
// Experiments read only what applies to them: a figure sweep honors Models
// and Batches, a fleet experiment honors Quick, a traced run records into
// Trace. Unknown-to-the-experiment fields are simply ignored, so one
// options struct can drive the whole menu.
type Options struct {
	// Quick shrinks the experiment to its CI smoke size.
	Quick bool
	// Trace, when non-nil, receives the run's timeline (experiments that
	// record pick their canonical sub-run, e.g. the first device).
	Trace *trace.Recorder
	// Out is the caller's bench-output path hint; runners never write files
	// themselves — the CLI resolves "" to DefaultOut for Bench experiments.
	Out string
	// Models restricts the model selection; empty means the experiment's
	// default (all twelve for figure sweeps, the experiment's own subset
	// otherwise).
	Models []string
	// Batches restricts the batch sweep; empty means the experiment's
	// default. Experiments that take a single batch use the first entry.
	Batches []int
}

// Result is what a registered experiment hands back: human-readable tables
// in print order, plus an optional machine-readable payload.
type Result struct {
	Tables []*Table `json:"tables,omitempty"`
	Bench  any      `json:"bench,omitempty"`
}

// EnvelopeSchema is the version stamped on every machine-readable result
// envelope; bump it only on breaking changes to the envelope shape.
const EnvelopeSchema = 1

// Envelope is the versioned wrapper around a machine-readable experiment
// result: {"schema": 1, "experiment": "...", "result": {...}}. Both the
// CLI's -out files and the HTTP API's /v1/experiments/{name} responses use
// it, so consumers parse one shape everywhere.
type Envelope struct {
	Schema     int    `json:"schema"`
	Experiment string `json:"experiment"`
	Result     any    `json:"result"`
}

// NewEnvelope wraps an experiment result in the current envelope version.
func NewEnvelope(experiment string, result any) Envelope {
	return Envelope{Schema: EnvelopeSchema, Experiment: experiment, Result: result}
}

// Experiment is one registered entry of the experiment menu.
type Experiment struct {
	// Name is the -exp / URL identifier (unique, stable).
	Name string
	// Description is the one-line menu text.
	Description string
	// InAll marks paper-figure experiments included in the -exp all sweep,
	// in registration order.
	InAll bool
	// Bench marks experiments with a machine-readable payload worth
	// persisting; the CLI defaults their -out to DefaultOut().
	Bench bool
	// Run executes the experiment with the uniform options.
	Run func(Options) (*Result, error)
}

// DefaultOut is the conventional bench-output filename, BENCH_<name>.json.
func (e *Experiment) DefaultOut() string { return "BENCH_" + e.Name + ".json" }

var (
	registry []*Experiment
	byName   = make(map[string]*Experiment)
)

// Register adds an experiment to the menu. It panics on an empty name, a
// duplicate, or a nil runner — registration happens in package init, where
// a broken menu should fail loudly at startup, not at dispatch.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("experiments: Register needs a name and a runner")
	}
	if _, dup := byName[e.Name]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration %q", e.Name))
	}
	cp := e
	registry = append(registry, &cp)
	byName[e.Name] = &cp
}

// Lookup resolves a registered experiment by name.
func Lookup(name string) (*Experiment, bool) {
	e, ok := byName[name]
	return e, ok
}

// All returns the menu in registration order (the order -exp all runs the
// InAll subset in).
func All() []*Experiment {
	out := make([]*Experiment, len(registry))
	copy(out, registry)
	return out
}

// Names returns every registered name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}
