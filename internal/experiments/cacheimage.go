package experiments

import (
	"fmt"

	"pask/internal/cacheimg"
	"pask/internal/core"
)

// BuildCacheImage runs one recorded PaSK cold start and seals the recorded
// load profile plus its code objects into a distributable cache image
// (DESIGN.md §14). The returned WarmupRun carries the recording arm's
// report — its TTFI is the "one node pays the cold discovery" cost the
// image amortizes across the fleet.
func (ms *ModelSetup) BuildCacheImage() (*cacheimg.Image, *WarmupRun, error) {
	wr, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, nil, true)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: record profile for image: %w", err)
	}
	img, err := cacheimg.Build(wr.Profile, ms.Store)
	if err != nil {
		return nil, nil, err
	}
	return img, wr, nil
}
