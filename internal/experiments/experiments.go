package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/kernels"
	"pask/internal/metrics"
	"pask/internal/miopen"
	"pask/internal/sim"
	"pask/internal/tensor"
)

// Table is one rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	return metrics.FormatCSV(t.Headers, t.Rows)
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	b.WriteString(metrics.FormatTable(t.Headers, t.Rows))
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func msStr(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Fig1aResult carries the cold/hot slowdowns per device and model.
type Fig1aResult struct {
	Slowdown map[string]map[string]float64 // device -> model -> cold/hot
	Average  map[string]float64            // device -> mean slowdown
}

// Fig1a reproduces Fig 1(a): cold vs hot execution-time ratios of every
// model on the three devices.
func Fig1a(models []string) (*Table, *Fig1aResult, error) {
	res := &Fig1aResult{Slowdown: map[string]map[string]float64{}, Average: map[string]float64{}}
	devs := device.Profiles()
	tbl := &Table{
		ID:      "Fig1a",
		Title:   "DNN model cold start overhead (cold/hot ratio per device)",
		Headers: append([]string{"model"}, devNames(devs)...),
	}
	for _, d := range devs {
		res.Slowdown[d.Name] = map[string]float64{}
	}
	for _, abbr := range models {
		row := []string{abbr}
		for _, d := range devs {
			ms, err := PrepareModel(abbr, 1, d)
			if err != nil {
				return nil, nil, err
			}
			cold, hot, _, err := ms.RunColdHot()
			if err != nil {
				return nil, nil, err
			}
			ratio := float64(cold) / float64(hot)
			res.Slowdown[d.Name][abbr] = ratio
			row = append(row, f2(ratio)+"x")
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	avgRow := []string{"average"}
	for _, d := range devs {
		var vs []float64
		for _, v := range res.Slowdown[d.Name] {
			vs = append(vs, v)
		}
		res.Average[d.Name] = mean(vs)
		avgRow = append(avgRow, f2(res.Average[d.Name])+"x")
	}
	tbl.Rows = append(tbl.Rows, avgRow)
	tbl.Notes = append(tbl.Notes, "paper: averages 23.7x (MI100), 19.5x (A100), 31.3x (6900XT)")
	return tbl, res, nil
}

func devNames(devs []device.Profile) []string {
	out := make([]string, len(devs))
	for i, d := range devs {
		out[i] = d.Name
	}
	return out
}

// Fig1bResult carries the average cold-start breakdown shares.
type Fig1bResult struct {
	// Shares per model: parse / load / launch / exec / other fractions.
	Shares map[string]map[string]float64
	Avg    map[string]float64
}

var fig1bCats = []string{"code loading", "GPU execution", "kernel launch", "model parse", "others"}

// Fig1b reproduces Fig 1(b): the cold-start time breakdown by execution
// phase, averaged over the three devices.
func Fig1b(models []string) (*Table, *Fig1bResult, error) {
	res := &Fig1bResult{Shares: map[string]map[string]float64{}, Avg: map[string]float64{}}
	devs := device.Profiles()
	tbl := &Table{
		ID:      "Fig1b",
		Title:   "Cold start breakdown (share of cold time, averaged over devices)",
		Headers: append([]string{"model"}, fig1bCats...),
	}
	for _, abbr := range models {
		shares := map[string]float64{}
		for _, d := range devs {
			ms, err := PrepareModel(abbr, 1, d)
			if err != nil {
				return nil, nil, err
			}
			cold, _, spans, err := ms.RunColdHot()
			if err != nil {
				return nil, nil, err
			}
			bd := metrics.Breakdown(spans, 0, cold, metrics.DefaultPriority())
			total := float64(cold)
			shares["code loading"] += float64(bd[metrics.CatLoad]+bd[metrics.CatTransform]) / total
			shares["GPU execution"] += float64(bd[metrics.CatExec]) / total
			shares["kernel launch"] += float64(bd[metrics.CatLaunch]) / total
			shares["model parse"] += float64(bd[metrics.CatParse]) / total
			shares["others"] += float64(bd[metrics.CatOther]+bd[metrics.CatCopy]+bd[metrics.CatSync]+bd[metrics.CatOverhead]) / total
		}
		row := []string{abbr}
		for _, c := range fig1bCats {
			shares[c] /= float64(len(devs))
			row = append(row, pct(shares[c]))
		}
		res.Shares[abbr] = shares
		tbl.Rows = append(tbl.Rows, row)
	}
	avgRow := []string{"average"}
	for _, c := range fig1bCats {
		var vs []float64
		for _, m := range models {
			vs = append(vs, res.Shares[m][c])
		}
		res.Avg[c] = mean(vs)
		avgRow = append(avgRow, pct(res.Avg[c]))
	}
	tbl.Rows = append(tbl.Rows, avgRow)
	tbl.Notes = append(tbl.Notes, "paper: code loading 65.8%, GPU execution 8.4% on average")
	return tbl, res, nil
}

// SchemeRun is one (model, scheme) measurement at a batch size.
type SchemeRun struct {
	Report *metrics.Report
	Result *core.Result
}

// Fig6Result carries speedups and utilizations for the evaluated schemes.
type Fig6Result struct {
	// Speedup[model][scheme] relative to Baseline.
	Speedup map[string]map[core.Scheme]float64
	// Utilization[model][scheme].
	Utilization map[string]map[core.Scheme]float64
	AvgSpeedup  map[core.Scheme]float64
	AvgUtil     map[core.Scheme]float64
}

var fig6Schemes = []core.Scheme{core.SchemeNNV12, core.SchemePaSK, core.SchemeIdeal}

// Fig6 reproduces Fig 6: end-to-end cold-start speedups (a) and GPU
// utilization during cold start (b) on the primary device at batch 1.
func Fig6(models []string) (*Table, *Table, *Fig6Result, error) {
	res := &Fig6Result{
		Speedup:     map[string]map[core.Scheme]float64{},
		Utilization: map[string]map[core.Scheme]float64{},
		AvgSpeedup:  map[core.Scheme]float64{},
		AvgUtil:     map[core.Scheme]float64{},
	}
	ta := &Table{ID: "Fig6a", Title: "End-to-end cold start speedup over Baseline (MI100, batch 1)",
		Headers: []string{"model", "NNV12", "PaSK", "Ideal"}}
	tb := &Table{ID: "Fig6b", Title: "GPU utilization during cold start (MI100, batch 1)",
		Headers: []string{"model", "Baseline", "NNV12", "PaSK", "Ideal"}}
	for _, abbr := range models {
		ms, err := PrepareModel(abbr, 1, device.MI100())
		if err != nil {
			return nil, nil, nil, err
		}
		base, _, err := ms.RunScheme(core.SchemeBaseline, core.Options{})
		if err != nil {
			return nil, nil, nil, err
		}
		res.Speedup[abbr] = map[core.Scheme]float64{}
		res.Utilization[abbr] = map[core.Scheme]float64{core.SchemeBaseline: base.Utilization()}
		rowA := []string{abbr}
		rowB := []string{abbr, pct(base.Utilization())}
		for _, sch := range fig6Schemes {
			rep, _, err := ms.RunScheme(sch, core.Options{})
			if err != nil {
				return nil, nil, nil, err
			}
			sp := float64(base.Total) / float64(rep.Total)
			res.Speedup[abbr][sch] = sp
			res.Utilization[abbr][sch] = rep.Utilization()
			rowA = append(rowA, f2(sp)+"x")
			rowB = append(rowB, pct(rep.Utilization()))
		}
		ta.Rows = append(ta.Rows, rowA)
		tb.Rows = append(tb.Rows, rowB)
	}
	rowA := []string{"average"}
	rowB := []string{"average", avgUtilCell(res, models, core.SchemeBaseline)}
	for _, sch := range fig6Schemes {
		var sps, uts []float64
		for _, m := range models {
			sps = append(sps, res.Speedup[m][sch])
			uts = append(uts, res.Utilization[m][sch])
		}
		res.AvgSpeedup[sch] = geomean(sps)
		res.AvgUtil[sch] = mean(uts)
		rowA = append(rowA, f2(res.AvgSpeedup[sch])+"x")
		rowB = append(rowB, pct(res.AvgUtil[sch]))
	}
	ta.Rows = append(ta.Rows, rowA)
	tb.Rows = append(tb.Rows, rowB)
	ta.Notes = append(ta.Notes, "paper: NNV12 3.04x, PaSK 5.62x, Ideal 7.75x on average")
	tb.Notes = append(tb.Notes, "paper: NNV12 8.2%, PaSK 25.9%, Ideal 68.5% on average")
	return ta, tb, res, nil
}

func avgUtilCell(res *Fig6Result, models []string, sch core.Scheme) string {
	var vs []float64
	for _, m := range models {
		vs = append(vs, res.Utilization[m][sch])
	}
	return pct(mean(vs))
}

// Table2Result carries speedups per batch size.
type Table2Result struct {
	Speedup map[int]map[core.Scheme]float64 // batch -> scheme -> geomean speedup
}

// Table2 reproduces Table II: cold-start speedups at growing batch sizes.
func Table2(models []string, batches []int) (*Table, *Table2Result, error) {
	res := &Table2Result{Speedup: map[int]map[core.Scheme]float64{}}
	tbl := &Table{ID: "Table2", Title: "Cold start speedup with varying inference batch sizes (MI100)",
		Headers: []string{"scheme"}}
	for _, b := range batches {
		tbl.Headers = append(tbl.Headers, fmt.Sprintf("batch %d", b))
		res.Speedup[b] = map[core.Scheme]float64{}
	}
	perScheme := map[core.Scheme][]string{}
	for _, b := range batches {
		sps := map[core.Scheme][]float64{}
		for _, abbr := range models {
			ms, err := PrepareModel(abbr, b, device.MI100())
			if err != nil {
				return nil, nil, err
			}
			base, _, err := ms.RunScheme(core.SchemeBaseline, core.Options{})
			if err != nil {
				return nil, nil, err
			}
			for _, sch := range fig6Schemes {
				rep, _, err := ms.RunScheme(sch, core.Options{})
				if err != nil {
					return nil, nil, err
				}
				sps[sch] = append(sps[sch], float64(base.Total)/float64(rep.Total))
			}
		}
		for _, sch := range fig6Schemes {
			res.Speedup[b][sch] = geomean(sps[sch])
			perScheme[sch] = append(perScheme[sch], f2(res.Speedup[b][sch])+"x")
		}
	}
	for _, sch := range fig6Schemes {
		tbl.Rows = append(tbl.Rows, append([]string{string(sch)}, perScheme[sch]...))
	}
	tbl.Notes = append(tbl.Notes,
		"paper (batch 1..128): NNV12 3.04->1.74x, PaSK 5.62->3.10x, Ideal 7.75->6.41x")
	return tbl, res, nil
}

// Fig7Result carries the PaSK-run breakdown shares.
type Fig7Result struct {
	Shares map[string]map[string]float64 // model -> category -> share
	Avg    map[string]float64
}

var fig7Cats = []string{"GPU computing", "solution loading", "PASK overhead", "others"}

// Fig7 reproduces Fig 7: where time goes during a PaSK cold start.
func Fig7(models []string) (*Table, *Fig7Result, error) {
	res := &Fig7Result{Shares: map[string]map[string]float64{}, Avg: map[string]float64{}}
	tbl := &Table{ID: "Fig7", Title: "Model cold start breakdown for PaSK (MI100, batch 1)",
		Headers: append([]string{"model"}, fig7Cats...)}
	for _, abbr := range models {
		ms, err := PrepareModel(abbr, 1, device.MI100())
		if err != nil {
			return nil, nil, err
		}
		rep, _, err := ms.RunScheme(core.SchemePaSK, core.Options{})
		if err != nil {
			return nil, nil, err
		}
		total := float64(rep.Total)
		bd := rep.Breakdown
		shares := map[string]float64{
			"GPU computing":    float64(bd[metrics.CatExec]) / total,
			"solution loading": float64(bd[metrics.CatLoad]+bd[metrics.CatTransform]) / total,
			"PASK overhead":    float64(bd[metrics.CatOverhead]) / total,
		}
		shares["others"] = 1 - shares["GPU computing"] - shares["solution loading"] - shares["PASK overhead"]
		res.Shares[abbr] = shares
		row := []string{abbr}
		for _, c := range fig7Cats {
			row = append(row, pct(shares[c]))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	avgRow := []string{"average"}
	for _, c := range fig7Cats {
		var vs []float64
		for _, m := range models {
			vs = append(vs, res.Shares[m][c])
		}
		res.Avg[c] = mean(vs)
		avgRow = append(avgRow, pct(res.Avg[c]))
	}
	tbl.Rows = append(tbl.Rows, avgRow)
	tbl.Notes = append(tbl.Notes, "paper: solution loading 11.2%, PASK overhead 1.3% on average")
	return tbl, res, nil
}

// Fig8Result carries ablation performance normalized to full PaSK.
type Fig8Result struct {
	// Normalized[model][scheme] = time(PaSK) / time(scheme); 1.0 == PaSK.
	Normalized map[string]map[core.Scheme]float64
}

// Fig8 reproduces Fig 8: PaSK-I and PaSK-R performance normalized to PaSK.
func Fig8(models []string) (*Table, *Fig8Result, error) {
	res := &Fig8Result{Normalized: map[string]map[core.Scheme]float64{}}
	tbl := &Table{ID: "Fig8", Title: "Ablation performance normalized to PaSK (MI100, batch 1)",
		Headers: []string{"model", "PaSK-I", "PaSK-R"}}
	for _, abbr := range models {
		ms, err := PrepareModel(abbr, 1, device.MI100())
		if err != nil {
			return nil, nil, err
		}
		pask, _, err := ms.RunScheme(core.SchemePaSK, core.Options{})
		if err != nil {
			return nil, nil, err
		}
		res.Normalized[abbr] = map[core.Scheme]float64{}
		row := []string{abbr}
		for _, sch := range []core.Scheme{core.SchemePaSKI, core.SchemePaSKR} {
			rep, _, err := ms.RunScheme(sch, core.Options{})
			if err != nil {
				return nil, nil, err
			}
			norm := float64(pask.Total) / float64(rep.Total)
			res.Normalized[abbr][sch] = norm
			row = append(row, f2(norm))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	tbl.Notes = append(tbl.Notes, "1.00 == full PaSK; lower is worse (paper Fig 8)")
	return tbl, res, nil
}

// Fig9Result carries the cache statistics.
type Fig9Result struct {
	HitRate       map[string]float64 // model -> categorical-cache hit rate
	AvgHitRate    float64
	CatLookups    map[string]float64 // model -> lookups per hit, categorical
	NaiveLookups  map[string]float64 // model -> lookups per hit, naive
	AvgCatLookups float64
	AvgNaive      float64
}

// Fig9 reproduces Fig 9: categorical-cache hit rates (a) and applicability
// lookups per hit for categorical vs naive organization (b). Transformer
// models are omitted as in the paper (a single primitive layer).
func Fig9(models []string) (*Table, *Table, *Fig9Result, error) {
	res := &Fig9Result{HitRate: map[string]float64{}, CatLookups: map[string]float64{}, NaiveLookups: map[string]float64{}}
	ta := &Table{ID: "Fig9a", Title: "Categorical cache hit rate (MI100, batch 1)",
		Headers: []string{"model", "queries", "hits", "hit rate"}}
	tb := &Table{ID: "Fig9b", Title: "Applicability lookups per hit: categorical vs naive",
		Headers: []string{"model", "categorical", "naive"}}
	for _, abbr := range models {
		ms, err := PrepareModel(abbr, 1, device.MI100())
		if err != nil {
			return nil, nil, nil, err
		}
		_, cat, err := ms.RunScheme(core.SchemePaSK, core.Options{})
		if err != nil {
			return nil, nil, nil, err
		}
		_, naive, err := ms.RunScheme(core.SchemePaSKR, core.Options{})
		if err != nil {
			return nil, nil, nil, err
		}
		hr := 0.0
		if cat.Cache.Queries > 0 {
			hr = float64(cat.Cache.Hits) / float64(cat.Cache.Queries)
		}
		res.HitRate[abbr] = hr
		cl, nl := 0.0, 0.0
		if cat.Cache.Hits > 0 {
			cl = float64(cat.Cache.Lookups) / float64(cat.Cache.Hits)
		}
		if naive.Cache.Hits > 0 {
			nl = float64(naive.Cache.Lookups) / float64(naive.Cache.Hits)
		}
		res.CatLookups[abbr] = cl
		res.NaiveLookups[abbr] = nl
		ta.Rows = append(ta.Rows, []string{abbr,
			fmt.Sprintf("%d", cat.Cache.Queries), fmt.Sprintf("%d", cat.Cache.Hits), pct(hr)})
		tb.Rows = append(tb.Rows, []string{abbr, f2(cl), f2(nl)})
	}
	var hrs, cls, nls []float64
	for _, m := range models {
		hrs = append(hrs, res.HitRate[m])
		cls = append(cls, res.CatLookups[m])
		nls = append(nls, res.NaiveLookups[m])
	}
	res.AvgHitRate = mean(hrs)
	res.AvgCatLookups = mean(cls)
	res.AvgNaive = mean(nls)
	ta.Rows = append(ta.Rows, []string{"average", "", "", pct(res.AvgHitRate)})
	tb.Rows = append(tb.Rows, []string{"average", f2(res.AvgCatLookups), f2(res.AvgNaive)})
	ta.Notes = append(ta.Notes, "paper: 69.7% on average")
	tb.Notes = append(tb.Notes, "paper: categorical 1.22 vs naive 1.89 lookups")
	return ta, tb, res, nil
}

// Fig4 reproduces the motivation figure: the generality-performance
// trade-off of the Winograd solution ladder on a sample problem.
func Fig4() (*Table, error) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	wide := miopen.NewConvProblem(tensor.Shape{N: 1, C: 64, H: 224, W: 224}, 64, 3, 3,
		kernels.Conv2DParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1}, 1, tensor.F32, tensor.NCHW)
	deep := miopen.NewConvProblem(tensor.Shape{N: 1, C: 256, H: 14, W: 14}, 256, 3, 3,
		kernels.Conv2DParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1}, 1, tensor.F32, tensor.NCHW)
	odd := miopen.NewConvProblem(tensor.Shape{N: 1, C: 6, H: 31, W: 31}, 10, 5, 5,
		kernels.Conv2DParams{StrideH: 1, StrideW: 1, PadH: 2, PadW: 2, DilH: 1, DilW: 1}, 3, tensor.F32, tensor.NCHW)
	tbl := &Table{ID: "Fig4", Title: "Generality vs performance of the Winograd ladder",
		Headers: []string{"solution", "specificity", "applicable(wide)", "applicable(deep)", "applicable(odd)", "est(deep)"}}
	for _, id := range []string{"ConvWinogradNaiveFwd", "ConvBinWinogradRxSFwd", "ConvBinWinogradFwdFixed"} {
		s, _ := reg.ByID(id)
		est := "n/a"
		if s.IsApplicable(reg.Ctx(), &deep) {
			est = msStr(miopen.EstimateTime(reg.Ctx().Dev, s, &deep))
		}
		tbl.Rows = append(tbl.Rows, []string{
			id, fmt.Sprintf("%d", s.Specificity()),
			fmt.Sprintf("%v", s.IsApplicable(reg.Ctx(), &wide)),
			fmt.Sprintf("%v", s.IsApplicable(reg.Ctx(), &deep)),
			fmt.Sprintf("%v", s.IsApplicable(reg.Ctx(), &odd)),
			est,
		})
	}
	tbl.Notes = append(tbl.Notes, "specialized solutions are faster but bind to narrower problems (paper Fig 4)")
	return tbl, nil
}

// ExtBlasScope evaluates the §VI library-supporting extension: PASK managing
// the BLAS library's kernels for transformer models.
func ExtBlasScope() (*Table, error) {
	tbl := &Table{ID: "Ext-BLAS", Title: "PaSK with BLAS-scope extension on transformers (MI100, batch 1)",
		Headers: []string{"model", "PaSK", "PaSK+BLAS", "blas loads skipped"}}
	for _, abbr := range TransformerAbbrs() {
		ms, err := PrepareModel(abbr, 1, device.MI100())
		if err != nil {
			return nil, err
		}
		base, _, err := ms.RunScheme(core.SchemeBaseline, core.Options{})
		if err != nil {
			return nil, err
		}
		plain, _, err := ms.RunScheme(core.SchemePaSK, core.Options{})
		if err != nil {
			return nil, err
		}
		scoped, res, err := ms.RunScheme(core.SchemePaSK, core.Options{BlasScope: true})
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{abbr,
			f2(float64(base.Total)/float64(plain.Total)) + "x",
			f2(float64(base.Total)/float64(scoped.Total)) + "x",
			fmt.Sprintf("%d", res.BlasSkipped)})
	}
	tbl.Notes = append(tbl.Notes, "paper §VI: extending PASK to hipBLAS recovers the transformer speedups")
	return tbl, nil
}

// ExtPrecision evaluates the §VI precision-preference extension on
// fp16-quantized CNNs: reusing resident fp32 kernels instead of loading
// absent low-precision specialists.
func ExtPrecision(models []string) (*Table, error) {
	tbl := &Table{ID: "Ext-Precision", Title: "Precision preference on int8-quantized models (MI100, batch 1)",
		Headers: []string{"model", "PaSK", "PaSK+prec", "fp32 fallbacks"}}
	for _, abbr := range models {
		ms, err := PrepareModel(abbr, 1, device.MI100())
		if err != nil {
			return nil, err
		}
		// Quantized deployment: the same architecture compiled at int8.
		f16, err := PrepareModelTyped(abbr, 1, device.MI100(), tensor.I8)
		if err != nil {
			return nil, err
		}
		_ = ms
		base, _, err := f16.RunScheme(core.SchemeBaseline, core.Options{})
		if err != nil {
			return nil, err
		}
		plain, _, err := f16.RunScheme(core.SchemePaSK, core.Options{})
		if err != nil {
			return nil, err
		}
		pref, res, err := f16.RunScheme(core.SchemePaSK, core.Options{PrecisionPreference: true})
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{abbr,
			f2(float64(base.Total)/float64(plain.Total)) + "x",
			f2(float64(base.Total)/float64(pref.Total)) + "x",
			fmt.Sprintf("%d", res.PrecisionFallbacks)})
	}
	return tbl, nil
}

// ExtBackground evaluates §VI inter-request background loading: the skipped
// solutions are loaded during the idle gap between requests.
func ExtBackground(models []string) (*Table, error) {
	tbl := &Table{ID: "Ext-Background", Title: "Inter-request background loading (MI100, batch 1)",
		Headers: []string{"model", "request 1", "request 2 (no bg)", "request 2 (bg)", "bg loads"}}
	for _, abbr := range models {
		ms, err := PrepareModel(abbr, 1, device.MI100())
		if err != nil {
			return nil, err
		}
		withBG, err := ms.runTwoRequests(true)
		if err != nil {
			return nil, err
		}
		noBG, err := ms.runTwoRequests(false)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{abbr,
			msStr(withBG.first), msStr(noBG.second), msStr(withBG.second),
			fmt.Sprintf("%d", withBG.loaded)})
	}
	tbl.Notes = append(tbl.Notes, "the idle interval between requests is long enough to load every skipped solution (§VI)")
	return tbl, nil
}

type twoRequestResult struct {
	first, second time.Duration
	loaded        int
}

func (ms *ModelSetup) runTwoRequests(background bool) (*twoRequestResult, error) {
	pr := ms.NewProcess()
	out := &twoRequestResult{}
	var runErr error
	pr.Env.Spawn("main", func(p *sim.Proc) {
		defer pr.GPU.CloseAll()
		pr.Runner.RT.InitContext(p)
		if runErr = pr.Runner.Lib.LoadResidents(p); runErr != nil {
			return
		}
		cache := core.NewCategoricalCache()
		core.SeedResidents(cache, pr.Runner.Lib)
		t0 := p.Now()
		res, err := core.RunInterleaved(p, pr.Runner, ms.Model, cache, true, core.Options{})
		if err != nil {
			runErr = err
			return
		}
		out.first = p.Now() - t0
		if background {
			out.loaded, err = core.BackgroundLoad(p, pr.Runner, cache, res.Skipped, 3*time.Second)
			if err != nil {
				runErr = err
				return
			}
			// The idle gap also covers the plan's remaining objects (layout
			// transforms the skipped specialists will need).
			if err := pr.Runner.PreloadAll(p, ms.Model); err != nil {
				runErr = err
				return
			}
		}
		t1 := p.Now()
		if _, err := core.RunInterleaved(p, pr.Runner, ms.Model, cache, true, core.Options{}); err != nil {
			runErr = err
			return
		}
		out.second = p.Now() - t1
	})
	if err := pr.Env.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return out, nil
}
