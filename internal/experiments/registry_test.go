package experiments

import (
	"encoding/json"
	"slices"
	"strings"
	"testing"
)

// TestRegistryMenu pins the registry's core contract: the paper figures
// register in the -exp all sweep order, lookups resolve, and Names is
// sorted.
func TestRegistryMenu(t *testing.T) {
	var inAll []string
	for _, e := range All() {
		if e.InAll {
			inAll = append(inAll, e.Name)
		}
	}
	wantPrefix := []string{"fig1a", "fig1b", "fig4", "fig6", "table2", "fig7", "fig8", "fig9",
		"ext-blas", "ext-precision", "ext-background", "ablations", "ext-crossmodel"}
	if len(inAll) < len(wantPrefix) || !slices.Equal(inAll[:len(wantPrefix)], wantPrefix) {
		t.Errorf("-exp all order = %v, want prefix %v", inAll, wantPrefix)
	}
	for _, name := range []string{"coldstart", "warmup"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if e.InAll {
			t.Errorf("%s is a single run and must not join -exp all", name)
		}
		if e.Description == "" {
			t.Errorf("%s has no menu description", name)
		}
	}
	names := Names()
	if !slices.IsSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if len(names) != len(All()) {
		t.Errorf("Names() has %d entries, registry %d", len(names), len(All()))
	}
}

// TestRegistryRegisterPanics pins Register's loud failure modes.
func TestRegistryRegisterPanics(t *testing.T) {
	mustPanic := func(name string, e Experiment) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(e)
	}
	run := func(Options) (*Result, error) { return &Result{}, nil }
	mustPanic("empty name", Experiment{Run: run})
	mustPanic("nil runner", Experiment{Name: "x-no-run"})
	mustPanic("duplicate", Experiment{Name: "fig1a", Run: run})
}

// TestRegistryRunColdstart runs the registered coldstart through the
// uniform options, recording a trace.
func TestRegistryRunColdstart(t *testing.T) {
	e, ok := Lookup("coldstart")
	if !ok {
		t.Fatal("coldstart not registered")
	}
	res, err := e.Run(Options{Models: []string{"alex"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || res.Tables[0].ID != "ColdStart" {
		t.Fatalf("tables: %+v", res.Tables)
	}
	if !strings.Contains(res.Tables[0].Title, "alex") {
		t.Errorf("model selection ignored: %q", res.Tables[0].Title)
	}
}

// TestEnvelope pins the versioned envelope shape byte-for-byte at the
// field level: schema 1, experiment name, result payload.
func TestEnvelope(t *testing.T) {
	env := NewEnvelope("warmup", &Result{Bench: map[string]int{"x": 1}})
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != float64(EnvelopeSchema) || m["experiment"] != "warmup" || m["result"] == nil {
		t.Fatalf("envelope = %s", data)
	}
}
