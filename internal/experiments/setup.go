// Package experiments reproduces every table and figure of the paper's
// evaluation (§IV–§V) plus the §VI extensions: each experiment builds the
// zoo models, runs them under the evaluated schemes on simulated devices,
// and reports the same quantities the paper plots.
//
// Paper anchor: the §IV–§V evaluation (Figs 1, 6–9, Tables I–II) plus the §VI extensions.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"pask/internal/backend"
	"pask/internal/blas"
	"pask/internal/codeobj"
	"pask/internal/core"
	"pask/internal/cuda"
	"pask/internal/device"
	"pask/internal/graphx"
	"pask/internal/hip"
	"pask/internal/metrics"
	"pask/internal/miopen"
	"pask/internal/onnx/zoo"
	"pask/internal/sim"
	"pask/internal/tensor"
	"pask/internal/trace"
)

// ModelSetup bundles one model compiled for one device and batch size,
// together with the shared code-object store all cold processes read from.
type ModelSetup struct {
	Spec    zoo.Spec
	Batch   int
	Profile device.Profile
	Reg     *miopen.Registry
	Store   *codeobj.Store
	Model   *graphx.CompiledModel // default (vendor) selection plan
	Uniform *graphx.CompiledModel // layout-uniform plan (NNV12 selection)
}

// PrepareModel compiles a zoo model for a device at a batch size and
// materializes every code object either plan can load.
func PrepareModel(abbr string, batch int, prof device.Profile) (*ModelSetup, error) {
	return PrepareModelTyped(abbr, batch, prof, tensor.F32)
}

// PrepareModelsShared compiles several models against ONE registry and ONE
// code-object store, so processes hosting more than one model share loaded
// kernels — the setting where PASK recycles kernels across models.
func PrepareModelsShared(abbrs []string, batch int, prof device.Profile) (map[string]*ModelSetup, error) {
	reg := miopen.NewRegistry(miopen.NewCtx(prof))
	db := miopen.NewPerfDB(reg)
	store := codeobj.NewStore()
	out := make(map[string]*ModelSetup, len(abbrs))
	for _, abbr := range abbrs {
		spec, err := zoo.ByAbbr(abbr)
		if err != nil {
			return nil, err
		}
		g, err := spec.Build(batch)
		if err != nil {
			return nil, err
		}
		m, err := graphx.Compile(g, db, graphx.CompileOptions{})
		if err != nil {
			return nil, fmt.Errorf("experiments: compile %s: %w", abbr, err)
		}
		if err := graphx.MaterializeModel(store, reg, m); err != nil {
			return nil, err
		}
		env := sim.NewEnv()
		rt := hip.NewRuntime(env, device.NewGPU(env, prof), device.DefaultHost(), store)
		if err := blas.NewLibrary(rt).Materialize(store, m.GemmProblems()); err != nil {
			return nil, err
		}
		out[abbr] = &ModelSetup{
			Spec: spec, Batch: batch, Profile: prof,
			Reg: reg, Store: store, Model: m, Uniform: m,
		}
	}
	return out, nil
}

// PrepareModelTyped is PrepareModel with an explicit element type (quantized
// deployments compile the same architecture at fp16).
func PrepareModelTyped(abbr string, batch int, prof device.Profile, dt tensor.DType) (*ModelSetup, error) {
	spec, err := zoo.ByAbbr(abbr)
	if err != nil {
		return nil, err
	}
	reg := miopen.NewRegistry(miopen.NewCtx(prof))
	db := miopen.NewPerfDB(reg)

	g, err := spec.Build(batch)
	if err != nil {
		return nil, err
	}
	g.DType = dt
	m, err := graphx.Compile(g, db, graphx.CompileOptions{})
	if err != nil {
		return nil, fmt.Errorf("experiments: compile %s: %w", abbr, err)
	}
	gu, err := spec.Build(batch)
	if err != nil {
		return nil, err
	}
	gu.DType = dt
	uniform, err := graphx.Compile(gu, db, graphx.CompileOptions{Mode: graphx.SelectUniformLayout, Uniform: tensor.NCHW})
	if err != nil {
		return nil, fmt.Errorf("experiments: compile %s (uniform): %w", abbr, err)
	}

	store := codeobj.NewStore()
	for _, cm := range []*graphx.CompiledModel{m, uniform} {
		if err := graphx.MaterializeModel(store, reg, cm); err != nil {
			return nil, err
		}
	}
	// BLAS objects (needs a runtime for device/arch resolution).
	env := sim.NewEnv()
	rt := hip.NewRuntime(env, device.NewGPU(env, prof), device.DefaultHost(), store)
	bl := blas.NewLibrary(rt)
	if err := bl.Materialize(store, m.GemmProblems()); err != nil {
		return nil, err
	}
	if err := bl.Materialize(store, uniform.GemmProblems()); err != nil {
		return nil, err
	}
	return &ModelSetup{Spec: spec, Batch: batch, Profile: prof, Reg: reg, Store: store, Model: m, Uniform: uniform}, nil
}

// Process is one cold OS process over the setup's shared object store: its
// own simulation environment, device, runtime and runner.
type Process struct {
	Env    *sim.Env
	GPU    *device.GPU
	RT     backend.Backend
	Runner *graphx.Runner
	Tracer *metrics.Tracer
	Rec    *trace.Recorder
}

// Record attaches rec to every observability seam of this process: the span
// tracer (so all spans stream into the recorder's tracks), the runtime's
// registry observer (evictions, coalesced waits, resident-bytes gauges), the
// runner's counter hook (queue depths, cache size) and the environment's
// dispatch hook (the "sim_event_queue" series). Passing nil detaches the
// runner/tracer hooks and turns recording off.
func (pr *Process) Record(rec *trace.Recorder) {
	pr.Rec = rec
	pr.Runner.Rec = rec
	if rec == nil {
		pr.Tracer.SetObserver(nil)
		pr.RT.SetObserver(nil)
		pr.Env.OnDispatch = nil
		return
	}
	pr.Tracer.SetObserver(rec)
	pr.RT.SetObserver(rec)
	pr.Env.OnDispatch = func(at time.Duration, proc string, queueLen int) {
		rec.Count("sim_event_queue", at, float64(queueLen))
	}
}

// NewProcess creates a fresh cold process with its own environment.
func (ms *ModelSetup) NewProcess() *Process {
	env := sim.NewEnv()
	return ms.NewProcessIn(env)
}

// NewProcessIn creates a fresh cold process inside an existing environment
// (multi-instance serving scenarios share one virtual clock).
func (ms *ModelSetup) NewProcessIn(env *sim.Env) *Process {
	gpu := device.NewGPU(env, ms.Profile)
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), ms.Store)
	tracer := &metrics.Tracer{}
	runner := graphx.NewRunner(rt, miopen.NewLibrary(ms.Reg, rt), blas.NewLibrary(rt), tracer)
	return &Process{Env: env, GPU: gpu, RT: rt, Runner: runner, Tracer: tracer}
}

// Tenancy is one physical GPU with its shared kernel runtime, onto which
// multiple model tenants attach. It is the multi-tenant counterpart of
// NewProcessIn: instead of every instance owning a device and runtime, all
// instances share one device, one module registry and one code-object store,
// so residency — and therefore cold-start cost — is a per-GPU property.
type Tenancy struct {
	Env  *sim.Env
	GPU  *device.GPU
	Root backend.Backend // root view; tenants attach refcounted views
}

// NewTenancy creates a cold shared GPU runtime over the given store.
func NewTenancy(env *sim.Env, prof device.Profile, store *codeobj.Store) *Tenancy {
	gpu := device.NewGPU(env, prof)
	return &Tenancy{Env: env, GPU: gpu, Root: hip.NewRuntime(env, gpu, device.DefaultHost(), store)}
}

// BackendFor creates a runtime of the flavor matching the device's ISA:
// sm_* architectures get the CUDA backend, everything else (gfx*) HIP —
// the vendor split of the paper's testbed (MI100/RX6900XT under ROCm, A100
// under CUDA).
func BackendFor(env *sim.Env, gpu *device.GPU, store *codeobj.Store) backend.Backend {
	if strings.HasPrefix(gpu.Profile.Arch, "sm_") {
		return cuda.NewRuntime(env, gpu, device.DefaultHost(), store)
	}
	return hip.NewRuntime(env, gpu, device.DefaultHost(), store)
}

// NewTenancyOn creates a cold shared runtime over an *existing* device —
// multi-GPU hosts own their devices, so the tenancy must not create one —
// selecting the backend flavor by the device's ISA.
func NewTenancyOn(env *sim.Env, gpu *device.GPU, store *codeobj.Store) *Tenancy {
	return &Tenancy{Env: env, GPU: gpu, Root: BackendFor(env, gpu, store)}
}

// AttachIn creates a tenant process for this model on the shared GPU: a
// refcounted view of the shared runtime plus a private stream (device
// streams are single-producer, so tenants must not share one). The model's
// setup must have been prepared against the tenancy's store
// (PrepareModelsShared); attaching a foreign store would desynchronize
// module residency from object bytes.
func (ms *ModelSetup) AttachIn(t *Tenancy, name string) *Process {
	if ms.Store != t.Root.Store() {
		panic("experiments: AttachIn requires the setup and tenancy to share one code-object store (use PrepareModelsShared)")
	}
	rt := t.Root.Attach(name)
	tracer := &metrics.Tracer{}
	runner := graphx.NewRunner(rt, miopen.NewLibrary(ms.Reg, rt), blas.NewLibrary(rt), tracer)
	runner.Stream = t.GPU.NewStream()
	return &Process{Env: t.Env, GPU: t.GPU, RT: rt, Runner: runner, Tracer: tracer}
}

// RunScheme executes the model once under the given scheme in a fresh cold
// process and reports the timed window. Process initialization (GPU context,
// library open with its resident kernels, and for Ideal the preloading) is
// excluded from the window, matching the paper's §V methodology where all
// schemes share the serving framework's startup.
func (ms *ModelSetup) RunScheme(scheme core.Scheme, opts core.Options) (*metrics.Report, *core.Result, error) {
	return ms.RunSchemeTraced(scheme, opts, nil)
}

// RunSchemeTraced is RunScheme with a trace recorder attached to the whole
// process (spans, registry events, counters). The timed window is marked
// with "run-start"/"run-end" instants on the "run" track so exporters and
// consumers can recover exactly the interval Report.Breakdown covers. A nil
// rec records nothing. The execution itself lives in RunSchemeWarm (the
// profile-warmup superset); this wrapper runs it without a manifest and
// without recording.
func (ms *ModelSetup) RunSchemeTraced(scheme core.Scheme, opts core.Options, rec *trace.Recorder) (*metrics.Report, *core.Result, error) {
	wr, err := ms.RunSchemeWarm(scheme, opts, rec, nil, false)
	if err != nil {
		return nil, nil, err
	}
	return wr.Rep, wr.Res, nil
}

// RunColdHot measures the paper's Fig 1 quantities on one device: the cold
// time of the *first* inference of a fresh process (including GPU context
// creation and library open, the full start-from-scratch path) and the hot
// time of a steady-state iteration in the same process.
func (ms *ModelSetup) RunColdHot() (cold, hot time.Duration, spans []metrics.Span, err error) {
	pr := ms.NewProcess()
	var runErr error
	pr.Env.Spawn("main", func(p *sim.Proc) {
		defer pr.GPU.CloseAll()
		t0 := p.Now()
		pr.Runner.RT.InitContext(p)
		if runErr = pr.Runner.Lib.LoadResidents(p); runErr != nil {
			return
		}
		if runErr = pr.Runner.RunBaseline(p, ms.Model); runErr != nil {
			return
		}
		cold = p.Now() - t0
		// Steady state: average over a few successive iterations.
		const iters = 3
		t1 := p.Now()
		for i := 0; i < iters; i++ {
			if runErr = pr.Runner.RunHot(p, ms.Model); runErr != nil {
				return
			}
		}
		hot = (p.Now() - t1) / iters
		spans = pr.Tracer.Spans()
	})
	if err := pr.Env.Run(); err != nil {
		return 0, 0, nil, err
	}
	if runErr != nil {
		return 0, 0, nil, fmt.Errorf("experiments: cold/hot %s on %s: %w", ms.Spec.Abbr, ms.Profile.Name, runErr)
	}
	return cold, hot, spans, nil
}

// AllModelAbbrs returns the zoo's model abbreviations in Table I order.
func AllModelAbbrs() []string {
	var out []string
	for _, s := range zoo.Models() {
		out = append(out, s.Abbr)
	}
	return out
}

// ConvModelAbbrs returns the nine convolution-dominated models (the paper
// omits the transformers from the cache statistics, Fig 9).
func ConvModelAbbrs() []string {
	return []string{"alex", "vgg", "res", "reg", "eff", "rcnn", "ssd", "fcn", "unet"}
}

// TransformerAbbrs returns the three vision-transformer models.
func TransformerAbbrs() []string { return []string{"vit", "swin", "swin2"} }
