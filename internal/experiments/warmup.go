package experiments

import (
	"fmt"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/metrics"
	"pask/internal/sim"
	"pask/internal/trace"
	"pask/internal/warmup"
)

// WarmupRun is one scheme execution with the profile-warmup machinery
// attached: the usual report and result plus the recorded profile (when
// recording) and the replay accounting (when a manifest was replayed).
type WarmupRun struct {
	Rep *metrics.Report
	Res *core.Result
	// TTFI is the time-to-first-inference measured from process start:
	// GPU context creation, library open and the full run, i.e. what a
	// serving user waits for on a cold instance. Report.Total, by
	// contrast, excludes process initialization (§V methodology).
	TTFI time.Duration
	// Profile is the load profile recorded from this run (nil unless
	// recording was requested).
	Profile *warmup.Manifest
	// Replay is the prefetcher's accounting (zero unless a manifest was
	// replayed).
	Replay warmup.ReplayStats
}

// RunSchemeWarm executes the model once in a fresh cold process with
// optional profile recording and optional manifest replay. When man is
// non-nil a prefetcher thread spawns at process start — its loads overlap
// GPU context creation and the parse, so the pipeline finds modules
// resident; singleflight coalescing in the runtime makes replay and demand
// loads converge. A stale or partial manifest degrades the run to (at
// worst) a plain cold start; it never fails it. When record is true (or a
// manifest is replayed, which needs the used-object set for accounting)
// the run's realized decisions are captured through core's ProfileObserver
// seam.
func (ms *ModelSetup) RunSchemeWarm(scheme core.Scheme, opts core.Options, rec *trace.Recorder, man *warmup.Manifest, record bool) (*WarmupRun, error) {
	pr := ms.NewProcess()
	pr.Record(rec)
	rep := &metrics.Report{Scheme: string(scheme), Model: ms.Spec.Abbr, Batch: ms.Batch}
	wr := &WarmupRun{Rep: rep}
	var res *core.Result
	var runErr error

	var wrec *warmup.Recorder
	if record || man != nil {
		wrec = warmup.NewRecorder()
		opts.Profile = wrec
	}
	var pf *warmup.Prefetcher
	if man != nil && len(man.Entries) > 0 {
		// Spawned before "main": replay begins at t=0 and overlaps context
		// init (the per-GPU daemon starts loading the moment the model is
		// placed, not when the framework finishes booting).
		pf = warmup.Start(pr.Env, pr.RT, man, rec)
	}

	pr.Env.Spawn("main", func(p *sim.Proc) {
		defer pr.GPU.CloseAll()
		pr.Runner.RT.InitContext(p)
		if err := pr.Runner.Lib.LoadResidents(p); err != nil {
			runErr = err
			return
		}
		model := ms.Model
		if scheme == core.SchemeNNV12 {
			model = ms.Uniform
		}
		if scheme == core.SchemeIdeal {
			if err := pr.Runner.PreloadAll(p, model); err != nil {
				runErr = err
				return
			}
		}
		loads0 := pr.RT.Stats()
		busy0 := pr.GPU.BusyTime()
		t0 := p.Now()
		rec.Instant("run", "run-start", t0,
			metrics.Attr{Key: "scheme", Value: string(scheme)},
			metrics.Attr{Key: "model", Value: ms.Spec.Abbr},
			metrics.Attr{Key: "batch", Value: fmt.Sprint(ms.Batch)})

		switch scheme {
		case core.SchemeBaseline:
			runErr = pr.Runner.RunBaseline(p, model)
		case core.SchemeIdeal:
			// Hot execution with every solution resident: the same engine,
			// nothing left to load.
			cache := core.NewCategoricalCache()
			_, runErr = core.RunInterleaved(p, pr.Runner, model, cache, false, core.Options{Profile: opts.Profile})
		case core.SchemeNNV12:
			cache := core.NewCategoricalCache() // unused: no reuse in NNV12
			_, runErr = core.RunInterleaved(p, pr.Runner, model, cache, false, core.Options{Profile: opts.Profile})
		case core.SchemePaSK:
			// PASK recycles *loaded* kernels: the cache starts with the
			// library's resident built-ins and grows with per-model loads.
			cache := core.NewCategoricalCache()
			core.SeedResidents(cache, pr.Runner.Lib)
			res, runErr = core.RunInterleaved(p, pr.Runner, model, cache, true, opts)
		case core.SchemePaSKI:
			cache := core.NewCategoricalCache()
			_, runErr = core.RunInterleaved(p, pr.Runner, model, cache, false, opts)
		case core.SchemePaSKR:
			cache := core.NewNaiveCache()
			core.SeedResidents(cache, pr.Runner.Lib)
			res, runErr = core.RunSequentialReuse(p, pr.Runner, model, cache)
		default:
			runErr = fmt.Errorf("experiments: unknown scheme %q", scheme)
		}

		t1 := p.Now()
		rec.Instant("run", "run-end", t1)
		wr.TTFI = t1
		rep.Total = t1 - t0
		rep.GPUBusy = pr.GPU.BusyTime() - busy0
		st := pr.RT.Stats()
		rep.Loads = st.ModuleLoads - loads0.ModuleLoads
		rep.LoadedBytes = st.BytesLoaded - loads0.BytesLoaded
		rep.Breakdown = metrics.Breakdown(pr.Tracer.Spans(), t0, t1, metrics.DefaultPriority())
		if res != nil {
			rep.ReuseQueries = res.Cache.Queries
			rep.ReuseHits = res.Cache.Hits
			rep.Lookups = res.Cache.Lookups
			rep.Milestone = res.Milestone
			rep.SkippedLoads = res.SkippedLoads
			rep.PressureReuse = res.PressureReuse
		}
	})
	if err := pr.Env.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", ms.Spec.Abbr, scheme, runErr)
	}
	wr.Res = res
	if record {
		wr.Profile = wrec.Manifest(ms.Store, ms.Spec.Abbr, ms.Batch, ms.Profile)
	}
	if pf != nil {
		wr.Replay = pf.Account(wrec.Paths(), pr.Env.Now())
		rep.WarmupEntries = wr.Replay.Entries
		rep.WarmupPrefetched = wr.Replay.Loaded + wr.Replay.Coalesced
		rep.WarmupHits = wr.Replay.Hits
		rep.WarmupMisses = wr.Replay.Misses
		rep.WarmupWasted = wr.Replay.Wasted
		rep.WarmupStale = wr.Replay.Stale
	}
	return wr, nil
}

// WarmupDeviceResult is one device's row of the warmup experiment.
type WarmupDeviceResult struct {
	Device string `json:"device"`
	// Time-to-first-inference per arm, milliseconds of virtual time.
	ColdMs     float64 `json:"cold_ms"`
	RecordedMs float64 `json:"recorded_ms"`
	WarmedMs   float64 `json:"warmed_ms"`
	// Speedup is cold/warmed TTFI.
	Speedup        float64            `json:"speedup"`
	ProfileEntries int                `json:"profile_entries"`
	Prefetch       warmup.ReplayStats `json:"prefetch"`
}

// WarmupBench is the machine-readable result the warmup experiment emits
// as BENCH_warmup.json — the repo's recorded perf trajectory for cold-start
// mitigation.
type WarmupBench struct {
	Experiment string               `json:"experiment"`
	Model      string               `json:"model"`
	Batch      int                  `json:"batch"`
	Devices    []WarmupDeviceResult `json:"devices"`
}

// WarmupExperiment compares three arms of a PaSK cold start on every device
// profile: cold (no profile), recorded (cold plus profile recording — the
// observer is host-side and free in virtual time, so this arm documents
// that recording costs nothing) and warmed (replaying the just-recorded
// profile in a fresh process). rec, when non-nil, captures the first
// device's warmed arm as a trace.
func WarmupExperiment(model string, batch int, rec *trace.Recorder) (*Table, *WarmupBench, error) {
	tbl := &Table{ID: "Warmup",
		Title:   fmt.Sprintf("Profile-guided warmup: PaSK time-to-first-inference, %s (batch %d)", model, batch),
		Headers: []string{"device", "cold", "recorded", "warmed", "speedup", "prefetched", "hits", "stale"}}
	bench := &WarmupBench{Experiment: "warmup", Model: model, Batch: batch}

	for i, prof := range device.Profiles() {
		ms, err := PrepareModel(model, batch, prof)
		if err != nil {
			return nil, nil, err
		}
		cold, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, nil, false)
		if err != nil {
			return nil, nil, fmt.Errorf("warmup cold arm on %s: %w", prof.Name, err)
		}
		recorded, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, nil, nil, true)
		if err != nil {
			return nil, nil, fmt.Errorf("warmup recorded arm on %s: %w", prof.Name, err)
		}
		var armRec *trace.Recorder
		if i == 0 {
			armRec = rec
		}
		warmed, err := ms.RunSchemeWarm(core.SchemePaSK, core.Options{}, armRec, recorded.Profile, false)
		if err != nil {
			return nil, nil, fmt.Errorf("warmup warmed arm on %s: %w", prof.Name, err)
		}

		dr := WarmupDeviceResult{
			Device:         prof.Name,
			ColdMs:         float64(cold.TTFI) / 1e6,
			RecordedMs:     float64(recorded.TTFI) / 1e6,
			WarmedMs:       float64(warmed.TTFI) / 1e6,
			ProfileEntries: len(recorded.Profile.Entries),
			Prefetch:       warmed.Replay,
		}
		if warmed.TTFI > 0 {
			dr.Speedup = float64(cold.TTFI) / float64(warmed.TTFI)
		}
		bench.Devices = append(bench.Devices, dr)
		tbl.Rows = append(tbl.Rows, []string{
			prof.Name,
			fmt.Sprintf("%.2fms", dr.ColdMs),
			fmt.Sprintf("%.2fms", dr.RecordedMs),
			fmt.Sprintf("%.2fms", dr.WarmedMs),
			fmt.Sprintf("%.2fx", dr.Speedup),
			fmt.Sprintf("%d/%d", dr.Prefetch.Loaded+dr.Prefetch.Coalesced, dr.Prefetch.Entries),
			fmt.Sprintf("%d", dr.Prefetch.Hits),
			fmt.Sprintf("%d", dr.Prefetch.Stale),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"times are time-to-first-inference from process start (context init + library open + run)",
		"recording is host-side and free in virtual time, so the recorded arm matches the cold arm",
		"the warmed arm replays the recorded manifest concurrently with context init")
	return tbl, bench, nil
}
