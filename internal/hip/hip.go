// Package hip implements the host GPU runtime of the simulated stack — the
// analogue of the HIP/CUDA driver API that the paper interposes on. It owns
// the per-GPU module registry with the *lazy loading* semantics that cause
// DNN cold start: a kernel's code object is read, validated and relocated
// only when something asks for it, and the calling process is charged the
// full load time (paper §II-A, Fig 3).
//
// Since the multi-tenant refactor the unit of kernel residency is the GPU,
// not the OS process: NewRuntime creates the *root view* of a shared module
// registry, and Attach hands out additional refcounted tenant views over the
// same state. Loaded modules, the in-flight load table (singleflight dedup),
// the negative cache and the retry policy are shared across views — a code
// object loaded for one tenant's model is immediately resident for every
// other tenant on the GPU, the cross-model sharing lever of §III-B/C.
// Per-view state is limited to attribution: which loads a view initiated and
// paid for, which it enjoyed for free, and which modules it has pinned
// against eviction.
package hip

import (
	"fmt"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/sim"
)

// Module is a loaded code object registered in device memory.
type Module struct {
	Path     string
	Object   *codeobj.Object
	LoadedAt time.Duration
	// lastUsed drives LRU eviction under device code-memory pressure.
	lastUsed time.Duration
	// resident modules live inside the library binary and are never evicted.
	resident bool
}

// Function is a resolved kernel symbol inside a loaded module.
type Function struct {
	Module *Module
	Kernel codeobj.Kernel
}

// Name returns the kernel's global symbol name.
func (f *Function) Name() string { return f.Kernel.Name }

// Stats aggregates the shared registry's loading activity across all views.
type Stats struct {
	ModuleLoads       int           // completed loads (cache misses)
	LoadHits          int           // ModuleLoad calls satisfied by the registry
	BytesLoaded       int64         // container bytes read and relocated
	LoadTimeTotal     time.Duration // virtual time spent inside loads
	FailedLoads       int
	Evictions         int // modules dropped under code-memory pressure
	TransientRetries  int // load attempts repeated after a retriable error
	PermanentFailures int // loads negatively cached (parse/arch/missing)
	NegativeHits      int // ModuleLoad calls answered from the negative cache
	CoalescedWaits    int // callers that waited on another view's in-flight load
}

// TenantStats attributes a shared runtime's loading activity to one view —
// the accounting multi-tenant serving reports per tenant. Loads counts the
// loads this view initiated and paid for; SharedHits the calls answered by a
// module already resident (loaded earlier, possibly by another tenant);
// CoalescedWaits the calls that blocked on another view's in-flight load of
// the same object and got the result without paying the load itself.
type TenantStats struct {
	Tenant         string
	Loads          int
	BytesLoaded    int64
	LoadTime       time.Duration
	SharedHits     int
	CoalescedWaits int
	FailedLoads    int
	NegativeHits   int
	Pinned         int // modules currently pinned by this view
}

// IsTransient reports whether a load error is retriable (a store I/O
// hiccup) rather than permanent (missing object, parse failure, arch
// mismatch). Only permanent errors are negatively cached.
func IsTransient(err error) bool { return codeobj.IsTransient(err) }

// RetryPolicy bounds the transient-error retry loop inside ModuleLoad.
type RetryPolicy struct {
	MaxRetries int           // extra attempts after the first; negative disables retry
	Backoff    time.Duration // virtual-time sleep before the first retry
	MaxBackoff time.Duration // cap for the doubling backoff
}

// DefaultRetryPolicy returns the policy a zero-valued retry config uses.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Backoff: 200 * time.Microsecond, MaxBackoff: time.Millisecond}
}

// LoadFaultInjector adds latency to module loads — the seam the faults
// package uses for load-time spikes and windowed slow-loader brownouts (the
// virtual start time of the load is passed so injectors can gate on it). A
// nil injector costs nothing.
type LoadFaultInjector interface {
	ExtraLoadLatency(now time.Duration, path string) time.Duration
}

// RegistryObserver receives the shared registry's notable moments — the seam
// the trace recorder implements. RegistryEvent marks instants (kind is one of
// "evict", "coalesced_wait", "negative_hit", "transient_retry", "unload",
// "reset"); RegistrySample carries gauge samples ("hip_resident_bytes",
// "hip_resident_modules"). Both are called with the registry's virtual time.
type RegistryObserver interface {
	RegistryEvent(kind, path string, at time.Duration)
	RegistrySample(name string, at time.Duration, value float64)
}

// shared is the per-GPU registry state every view of a Runtime aliases:
// module residency, singleflight load dedup, the negative cache, retry
// policy, the driver lock and the aggregate stats.
type shared struct {
	store      *codeobj.Store
	modules    map[string]*Module
	inflight   map[string]*loadState
	failed     map[string]error // negative cache: permanent failures only
	refs       map[string]int   // path -> live tenant pins (eviction guard)
	driverLock *sim.Resource
	ctxReady   bool
	stats      Stats
	retry      RetryPolicy
	loadFaults LoadFaultInjector
	obs        RegistryObserver
	views      []*Runtime // root first, then every Attach in order
}

// observe emits an instant event to the shared observer, if any.
func (sh *shared) observe(env *sim.Env, kind, path string) {
	if sh.obs != nil {
		sh.obs.RegistryEvent(kind, path, env.Now())
	}
}

// sampleResidency emits the resident-bytes/modules gauges after any change
// to the module map.
func (rt *Runtime) sampleResidency() {
	if rt.sh.obs == nil {
		return
	}
	now := rt.Env.Now()
	rt.sh.obs.RegistrySample("hip_resident_bytes", now, float64(rt.LoadedCodeBytes()))
	rt.sh.obs.RegistrySample("hip_resident_modules", now, float64(len(rt.sh.modules)))
}

// Runtime is one view of a GPU's shared module registry. NewRuntime returns
// the root view; Attach returns additional tenant views that pin the modules
// they reference so eviction cannot pull a live tenant's kernels out from
// under it. All views observe the same residency, negative cache and retry
// state; OnLoad and the tenant attribution stats are per view.
type Runtime struct {
	Env  *sim.Env
	GPU  *device.GPU
	Host device.HostProfile

	sh *shared

	tenant   string
	pinned   map[string]bool // nil for the root view: no pinning
	tstats   TenantStats
	detached bool

	// OnLoad, when set, observes every completed module load this view
	// initiated (for the metrics tracer). start/end are virtual times.
	OnLoad func(path string, start, end time.Duration, err error)
}

type loadState struct {
	done *sim.Signal
	mod  *Module
	err  error
}

// NewRuntime creates a cold runtime over the given device and code-object
// store and returns its root view.
func NewRuntime(env *sim.Env, gpu *device.GPU, host device.HostProfile, store *codeobj.Store) *Runtime {
	rt := &Runtime{
		Env:  env,
		GPU:  gpu,
		Host: host,
		sh: &shared{
			store:      store,
			modules:    make(map[string]*Module),
			inflight:   make(map[string]*loadState),
			failed:     make(map[string]error),
			refs:       make(map[string]int),
			driverLock: sim.NewResource(env, 1),
		},
	}
	rt.sh.views = []*Runtime{rt}
	return rt
}

// Attach creates a tenant view named name over this runtime's shared state.
// The view sees every module already resident, coalesces its loads with
// other views' in-flight loads, and pins each module it references so
// eviction under code-memory pressure cannot drop another tenant's live
// kernels. Detach releases the pins.
func (rt *Runtime) Attach(name string) *Runtime {
	v := &Runtime{
		Env:    rt.Env,
		GPU:    rt.GPU,
		Host:   rt.Host,
		sh:     rt.sh,
		tenant: name,
		pinned: make(map[string]bool),
	}
	v.tstats.Tenant = name
	rt.sh.views = append(rt.sh.views, v)
	return v
}

// Detach releases every module pin this view holds. Pinned modules stay
// resident (they are the warm cache the next tenant benefits from) but
// become evictable under memory pressure. Detaching never unloads a module
// another view still pins. Detach is idempotent.
func (rt *Runtime) Detach() {
	if rt.detached {
		return
	}
	for path := range rt.pinned {
		if rt.sh.refs[path]--; rt.sh.refs[path] <= 0 {
			delete(rt.sh.refs, path)
		}
	}
	rt.pinned = nil
	rt.tstats.Pinned = 0
	rt.detached = true
}

// Detached reports whether Detach has been called on this view.
func (rt *Runtime) Detached() bool { return rt.detached }

// Tenant returns the view's name ("" for the root view).
func (rt *Runtime) Tenant() string { return rt.tenant }

// pin records that this view references path, guarding the module against
// eviction. The root view does not pin (preserving the single-tenant LRU
// behavior); tenant views pin each path once.
func (rt *Runtime) pin(path string) {
	if rt.pinned == nil || rt.pinned[path] {
		return
	}
	rt.pinned[path] = true
	rt.sh.refs[path]++
	rt.tstats.Pinned++
}

// Refs returns the number of live tenant pins on path.
func (rt *Runtime) Refs(path string) int { return rt.sh.refs[path] }

// PinnedPaths returns the paths this view currently pins.
func (rt *Runtime) PinnedPaths() []string {
	out := make([]string, 0, len(rt.pinned))
	for p := range rt.pinned {
		out = append(out, p)
	}
	return out
}

// SetRetry sets the shared transient-retry policy (MaxRetries < 0 disables
// retrying; the zero value means DefaultRetryPolicy).
func (rt *Runtime) SetRetry(p RetryPolicy) { rt.sh.retry = p }

// SetLoadFaults installs (or with nil removes) the shared load-latency fault
// injector.
func (rt *Runtime) SetLoadFaults(inj LoadFaultInjector) { rt.sh.loadFaults = inj }

// SetObserver installs (or with nil removes) the shared registry observer.
// Like the retry policy it is registry-wide: every view's activity is
// reported to the same observer.
func (rt *Runtime) SetObserver(o RegistryObserver) { rt.sh.obs = o }

// retryPolicy resolves the effective retry policy.
func (rt *Runtime) retryPolicy() RetryPolicy {
	if rt.sh.retry.MaxRetries < 0 {
		return RetryPolicy{}
	}
	if rt.sh.retry == (RetryPolicy{}) {
		return DefaultRetryPolicy()
	}
	return rt.sh.retry
}

// Store returns the backing code-object store.
func (rt *Runtime) Store() *codeobj.Store { return rt.sh.store }

// Stats returns a snapshot of the shared loading statistics.
func (rt *Runtime) Stats() Stats { return rt.sh.stats }

// TenantStats returns this view's attribution counters.
func (rt *Runtime) TenantStats() TenantStats { return rt.tstats }

// AllTenantStats returns the attribution counters of every view, root first,
// in attach order (detached views included — their history still counts).
func (rt *Runtime) AllTenantStats() []TenantStats {
	out := make([]TenantStats, 0, len(rt.sh.views))
	for _, v := range rt.sh.views {
		out = append(out, v.tstats)
	}
	return out
}

// NumViews returns the number of views over the shared state (root
// included).
func (rt *Runtime) NumViews() int { return len(rt.sh.views) }

// ContextReady reports whether InitContext has completed.
func (rt *Runtime) ContextReady() bool { return rt.sh.ctxReady }

// InitContext creates the GPU context, charging the device's context
// initialization cost once per shared runtime. Tenants attaching to a warm
// runtime skip it — the per-GPU daemon already holds the context.
func (rt *Runtime) InitContext(p *sim.Proc) {
	if rt.sh.ctxReady {
		return
	}
	p.Sleep(rt.GPU.Profile.ContextInit)
	rt.sh.ctxReady = true
}

// Loaded reports whether the module at path is resident.
func (rt *Runtime) Loaded(path string) bool {
	_, ok := rt.sh.modules[path]
	return ok
}

// NumLoaded returns the number of resident modules.
func (rt *Runtime) NumLoaded() int { return len(rt.sh.modules) }

// ModuleLoad returns the module at path, loading it if absent. Loading reads
// the object from the store, validates it (real parse), resolves symbols and
// charges the device profile's load time. Concurrent loads of the same path
// coalesce — across views too, so two tenants requesting the same .pko pay
// exactly one load. Distinct loads serialize on the driver lock, as real
// drivers do.
//
// Transient store errors are retried with capped doubling backoff (see
// SetRetry); permanent errors (missing object, parse failure, arch mismatch)
// are negatively cached so repeat callers fail fast without re-reading a
// known-bad object.
func (rt *Runtime) ModuleLoad(p *sim.Proc, path string) (*Module, error) {
	sh := rt.sh
	if m, ok := sh.modules[path]; ok {
		sh.stats.LoadHits++
		rt.tstats.SharedHits++
		rt.pin(path)
		return m, nil
	}
	if err, ok := sh.failed[path]; ok {
		sh.stats.NegativeHits++
		rt.tstats.NegativeHits++
		sh.observe(rt.Env, "negative_hit", path)
		return nil, err
	}
	if st, ok := sh.inflight[path]; ok {
		sh.stats.CoalescedWaits++
		rt.tstats.CoalescedWaits++
		sh.observe(rt.Env, "coalesced_wait", path)
		st.done.Wait(p)
		if st.err == nil {
			rt.pin(path)
		}
		return st.mod, st.err
	}
	st := &loadState{done: sim.NewSignal(p.Env())}
	sh.inflight[path] = st

	start := p.Now()
	st.mod, st.err = rt.loadWithRetry(p, path)

	delete(sh.inflight, path)
	if st.err == nil {
		rt.evictForSpace(int64(st.mod.Object.Size()))
		sh.modules[path] = st.mod
		sh.stats.ModuleLoads++
		sh.stats.BytesLoaded += int64(st.mod.Object.Size())
		rt.tstats.Loads++
		rt.tstats.BytesLoaded += int64(st.mod.Object.Size())
		rt.pin(path)
	} else {
		sh.stats.FailedLoads++
		rt.tstats.FailedLoads++
		if !IsTransient(st.err) {
			sh.failed[path] = st.err
			sh.stats.PermanentFailures++
		}
	}
	sh.stats.LoadTimeTotal += p.Now() - start
	rt.tstats.LoadTime += p.Now() - start
	if st.err == nil {
		rt.sampleResidency()
	}
	if rt.OnLoad != nil {
		rt.OnLoad(path, start, p.Now(), st.err)
	}
	st.done.Fire()
	return st.mod, st.err
}

// loadWithRetry drives loadLocked through the retry policy, holding the
// driver lock only per attempt so backoff sleeps don't stall other loads.
func (rt *Runtime) loadWithRetry(p *sim.Proc, path string) (*Module, error) {
	pol := rt.retryPolicy()
	backoff := pol.Backoff
	for attempt := 0; ; attempt++ {
		rt.sh.driverLock.Acquire(p)
		m, err := rt.loadLocked(p, path)
		rt.sh.driverLock.Release()
		if err == nil || !IsTransient(err) || attempt >= pol.MaxRetries {
			return m, err
		}
		rt.sh.stats.TransientRetries++
		rt.sh.observe(rt.Env, "transient_retry", path)
		if backoff > 0 {
			p.Sleep(backoff)
			backoff *= 2
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
	}
}

// ForgetFailure drops path from the negative cache — operators repair
// objects in place and the next ModuleLoad should try again.
func (rt *Runtime) ForgetFailure(path string) bool {
	if _, ok := rt.sh.failed[path]; !ok {
		return false
	}
	delete(rt.sh.failed, path)
	return true
}

// ClearFailures empties the shared negative cache and returns how many
// entries it dropped. Tenant replacement uses it so a fresh tenant view
// starts with the same clean slate a fresh isolated process would have.
func (rt *Runtime) ClearFailures() int {
	n := len(rt.sh.failed)
	for path := range rt.sh.failed {
		delete(rt.sh.failed, path)
	}
	return n
}

// FailedPermanently reports whether path is negatively cached.
func (rt *Runtime) FailedPermanently(path string) bool {
	_, ok := rt.sh.failed[path]
	return ok
}

// loadLocked performs the actual read + validate + relocate under the driver
// lock, charging virtual time proportional to the object size and symbols.
func (rt *Runtime) loadLocked(p *sim.Proc, path string) (*Module, error) {
	data, err := rt.sh.store.Get(path)
	if err != nil {
		// A failed open still costs the fixed driver overhead.
		p.Sleep(rt.GPU.Profile.ModuleLoadFixed)
		return nil, fmt.Errorf("hip: ModuleLoad: %w", err)
	}
	if rt.sh.loadFaults != nil {
		if d := rt.sh.loadFaults.ExtraLoadLatency(p.Now(), path); d > 0 {
			p.Sleep(d)
		}
	}
	obj, perr := codeobj.Parse(data)
	if perr != nil {
		// The driver read and checksummed the file before rejecting it.
		p.Sleep(rt.GPU.Profile.LoadTime(int64(len(data)), 0))
		return nil, fmt.Errorf("hip: ModuleLoad %q: %w", path, perr)
	}
	if arch := rt.GPU.Profile.Arch; obj.Arch != arch {
		p.Sleep(rt.GPU.Profile.ModuleLoadFixed)
		return nil, fmt.Errorf("hip: ModuleLoad %q: object arch %q does not match device %q", path, obj.Arch, arch)
	}
	p.Sleep(rt.GPU.Profile.LoadTime(int64(obj.Size()), obj.NumSymbols()))
	return &Module{Path: path, Object: obj, LoadedAt: p.Now()}, nil
}

// evictForSpace drops least-recently-used non-resident modules until a new
// object of the given size fits into the device's code-memory budget — the
// memory pressure that forces edge devices to re-pay cold starts (paper §I).
// Modules pinned by a live tenant view are never victims: eviction may only
// touch modules no attached tenant references. When only resident or pinned
// modules remain the budget is allowed to overshoot.
func (rt *Runtime) evictForSpace(incoming int64) {
	budget := rt.GPU.Profile.CodeMemory
	if budget <= 0 {
		return
	}
	sh := rt.sh
	for rt.LoadedCodeBytes()+incoming > budget {
		var victim *Module
		for _, m := range sh.modules {
			if m.resident || sh.refs[m.Path] > 0 {
				continue
			}
			if victim == nil || m.lastUsed < victim.lastUsed ||
				(m.lastUsed == victim.lastUsed && m.Path < victim.Path) {
				victim = m
			}
		}
		if victim == nil {
			return // only resident or pinned modules remain
		}
		delete(sh.modules, victim.Path)
		sh.stats.Evictions++
		sh.observe(rt.Env, "evict", victim.Path)
	}
}

// ModuleGetFunction resolves a kernel symbol in a loaded module.
func (rt *Runtime) ModuleGetFunction(m *Module, name string) (*Function, error) {
	k, ok := m.Object.Symbol(name)
	if !ok {
		return nil, fmt.Errorf("hip: symbol %q not found in module %q", name, m.Path)
	}
	m.lastUsed = rt.Env.Now()
	return &Function{Module: m, Kernel: k}, nil
}

// GetFunction loads the module at path if needed (the lazy path the reactive
// baseline hits at launch time) and resolves the symbol.
func (rt *Runtime) GetFunction(p *sim.Proc, path, name string) (*Function, error) {
	m, err := rt.ModuleLoad(p, path)
	if err != nil {
		return nil, err
	}
	return rt.ModuleGetFunction(m, name)
}

// RegisterResident maps a code object that ships inside an already-open
// shared library: the bytes are parsed and the symbols registered, but only
// the cheap mapping cost is charged (no file read or relocation pass). A
// tenant attaching after another view already mapped the object pays
// nothing.
func (rt *Runtime) RegisterResident(p *sim.Proc, path string) (*Module, error) {
	if m, ok := rt.sh.modules[path]; ok {
		rt.pin(path)
		return m, nil
	}
	pol := rt.retryPolicy()
	backoff := pol.Backoff
	data, err := rt.sh.store.Get(path)
	for attempt := 0; err != nil && IsTransient(err) && attempt < pol.MaxRetries; attempt++ {
		rt.sh.stats.TransientRetries++
		if backoff > 0 {
			p.Sleep(backoff)
			backoff *= 2
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
		data, err = rt.sh.store.Get(path)
	}
	if err != nil {
		return nil, fmt.Errorf("hip: RegisterResident: %w", err)
	}
	obj, perr := codeobj.Parse(data)
	if perr != nil {
		return nil, fmt.Errorf("hip: RegisterResident %q: %w", path, perr)
	}
	p.Sleep(rt.Host.ResidentMap)
	m := &Module{Path: path, Object: obj, LoadedAt: p.Now(), resident: true}
	rt.sh.modules[path] = m
	rt.pin(path)
	rt.sampleResidency()
	return m, nil
}

// Unload evicts a module from the registry (edge/suspend scenarios). It
// ignores tenant pins — callers model forced device-side eviction.
func (rt *Runtime) Unload(path string) bool {
	if _, ok := rt.sh.modules[path]; !ok {
		return false
	}
	delete(rt.sh.modules, path)
	rt.sh.observe(rt.Env, "unload", path)
	rt.sampleResidency()
	return true
}

// UnloadAll evicts every non-resident module, modeling a device reset that
// keeps the process (and its mapped library binary) alive. Tenant pins
// survive the reset: they record intent, and the next ModuleLoad re-loads.
func (rt *Runtime) UnloadAll() {
	for path, m := range rt.sh.modules {
		if !m.resident {
			delete(rt.sh.modules, path)
		}
	}
	rt.sh.observe(rt.Env, "reset", "")
	rt.sampleResidency()
}

// Preload loads every listed module, stopping at the first error. Used to
// realize the paper's Ideal scheme (all solutions resident before timing
// starts).
func (rt *Runtime) Preload(p *sim.Proc, paths []string) error {
	for _, path := range paths {
		if _, err := rt.ModuleLoad(p, path); err != nil {
			return err
		}
	}
	return nil
}

// ModuleBytes returns the container size of the resident module at path
// (0 when the module is not resident).
func (rt *Runtime) ModuleBytes(path string) int64 {
	if m, ok := rt.sh.modules[path]; ok {
		return int64(m.Object.Size())
	}
	return 0
}

// LoadedCodeBytes returns the total container bytes of resident modules.
func (rt *Runtime) LoadedCodeBytes() int64 {
	var n int64
	for _, m := range rt.sh.modules {
		n += int64(m.Object.Size())
	}
	return n
}
