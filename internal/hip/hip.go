// Package hip is the ROCm/HIP flavor of the pluggable device backend — the
// analogue of the HIP driver API that the paper interposes on, and the first
// implementation extracted into the generic internal/backend registry. It
// keeps the per-GPU module registry with the *lazy loading* semantics that
// cause DNN cold start: a kernel's code object is read, validated and
// relocated only when something asks for it, and the calling process is
// charged the full load time (paper §II-A, Fig 3).
//
// HIP is an *eager* flavor: per-symbol resolution cost is charged inside the
// module load (SymbolResolve × NumSymbols), matching hipModuleLoad, which
// finalizes the whole code object up front. Since the multi-tenant refactor
// the unit of kernel residency is the GPU, not the OS process: NewRuntime
// creates the *root view* of a shared module registry and Attach hands out
// refcounted tenant views over the same state (§III-B/C). The registry
// mechanics — singleflight dedup, negative cache, retries, LRU eviction,
// tenant pinning, cache peering — live in internal/backend; this package
// contributes only the driver-specific surface: error texts shaped like HIP
// runtime errors and the default retry posture.
//
// Paper anchor: §II-A lazy loading (Fig 3) — the HIP driver API the paper interposes on.
package hip

import (
	"fmt"
	"time"

	"pask/internal/backend"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/sim"
)

// Aliases re-export the backend vocabulary under the historical hip names so
// existing call sites and tests keep reading naturally.
type (
	// Module is a loaded code object registered in device memory.
	Module = backend.Module
	// Function is a resolved kernel symbol inside a loaded module.
	Function = backend.Function
	// Stats aggregates the shared registry's loading activity.
	Stats = backend.Stats
	// TenantStats attributes a shared runtime's loading to one view.
	TenantStats = backend.TenantStats
	// RetryPolicy bounds the transient-error retry loop inside ModuleLoad.
	RetryPolicy = backend.RetryPolicy
	// LoadFaultInjector adds latency to module loads.
	LoadFaultInjector = backend.LoadFaultInjector
	// RegistryObserver receives the shared registry's notable moments.
	RegistryObserver = backend.RegistryObserver
	// Runtime is one view of a GPU's shared module registry.
	Runtime = backend.Registry
)

// IsTransient reports whether a load error is retriable (a store I/O
// hiccup) rather than permanent (missing object, parse failure, arch
// mismatch). Only permanent errors are negatively cached.
func IsTransient(err error) bool { return backend.IsTransient(err) }

// DefaultRetryPolicy returns the policy a zero-valued retry config uses.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Backoff: 200 * time.Microsecond, MaxBackoff: time.Millisecond}
}

// Flavor is the HIP driver surface plugged into the generic registry:
// hip-prefixed error strings (the shapes the recovery ladder and tests
// match on), eager symbol resolution, and a patient retry posture (ROCm
// tolerates slower distributed stores on the MI100-class training parks the
// paper profiles).
type Flavor struct{}

// Driver names the backend.
func (Flavor) Driver() string { return "hip" }

// DefaultRetry is the policy used when SetRetry was never called.
func (Flavor) DefaultRetry() backend.RetryPolicy { return DefaultRetryPolicy() }

// LazySymbols is false: hipModuleLoad finalizes every symbol up front.
func (Flavor) LazySymbols() bool { return false }

// LoadError decorates a store-read failure during ModuleLoad.
func (Flavor) LoadError(path string, cause error) error {
	return fmt.Errorf("hip: ModuleLoad: %w", cause)
}

// ParseError decorates a rejected container during ModuleLoad.
func (Flavor) ParseError(path string, cause error) error {
	return fmt.Errorf("hip: ModuleLoad %q: %w", path, cause)
}

// ArchError reports an object whose ISA does not match the device.
func (Flavor) ArchError(path, objArch, devArch string) error {
	return fmt.Errorf("hip: ModuleLoad %q: object arch %q does not match device %q", path, objArch, devArch)
}

// SymbolError reports a kernel symbol missing from a loaded module.
func (Flavor) SymbolError(name, module string) error {
	return fmt.Errorf("hip: symbol %q not found in module %q", name, module)
}

// ResidentLoadError decorates a store-read failure during RegisterResident.
func (Flavor) ResidentLoadError(path string, cause error) error {
	return fmt.Errorf("hip: RegisterResident: %w", cause)
}

// ResidentParseError decorates a rejected container during RegisterResident.
func (Flavor) ResidentParseError(path string, cause error) error {
	return fmt.Errorf("hip: RegisterResident %q: %w", path, cause)
}

// DeviceLostError is the HIP rendering of a dead device: every driver call
// on a lost GPU returns hipErrorDeviceLost.
func (Flavor) DeviceLostError() error {
	return fmt.Errorf("hip: hipErrorDeviceLost: %w", backend.ErrDeviceLost)
}

// NewRuntime creates a cold HIP-flavored runtime over the given device and
// code-object store and returns its root view.
func NewRuntime(env *sim.Env, gpu *device.GPU, host device.HostProfile, store *codeobj.Store) *Runtime {
	return backend.New(env, gpu, host, store, Flavor{})
}
