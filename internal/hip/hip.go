// Package hip implements the host GPU runtime of the simulated stack — the
// analogue of the HIP/CUDA driver API that the paper interposes on. It owns
// the per-process module registry with the *lazy loading* semantics that
// cause DNN cold start: a kernel's code object is read, validated and
// relocated only when something asks for it, and the calling process is
// charged the full load time (paper §II-A, Fig 3).
//
// A Runtime corresponds to one OS process: a fresh Runtime models a cold
// instance (spot migration, serverless scale-out, edge restart); reusing a
// Runtime across inferences models a warm instance.
package hip

import (
	"fmt"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/sim"
)

// Module is a loaded code object registered in host memory.
type Module struct {
	Path     string
	Object   *codeobj.Object
	LoadedAt time.Duration
	// lastUsed drives LRU eviction under device code-memory pressure.
	lastUsed time.Duration
	// resident modules live inside the library binary and are never evicted.
	resident bool
}

// Function is a resolved kernel symbol inside a loaded module.
type Function struct {
	Module *Module
	Kernel codeobj.Kernel
}

// Name returns the kernel's global symbol name.
func (f *Function) Name() string { return f.Kernel.Name }

// Stats aggregates the runtime's loading activity.
type Stats struct {
	ModuleLoads       int           // completed loads (cache misses)
	LoadHits          int           // ModuleLoad calls satisfied by the registry
	BytesLoaded       int64         // container bytes read and relocated
	LoadTimeTotal     time.Duration // virtual time spent inside loads
	FailedLoads       int
	Evictions         int // modules dropped under code-memory pressure
	TransientRetries  int // load attempts repeated after a retriable error
	PermanentFailures int // loads negatively cached (parse/arch/missing)
	NegativeHits      int // ModuleLoad calls answered from the negative cache
}

// IsTransient reports whether a load error is retriable (a store I/O
// hiccup) rather than permanent (missing object, parse failure, arch
// mismatch). Only permanent errors are negatively cached.
func IsTransient(err error) bool { return codeobj.IsTransient(err) }

// RetryPolicy bounds the transient-error retry loop inside ModuleLoad.
type RetryPolicy struct {
	MaxRetries int           // extra attempts after the first; negative disables retry
	Backoff    time.Duration // virtual-time sleep before the first retry
	MaxBackoff time.Duration // cap for the doubling backoff
}

// DefaultRetryPolicy returns the policy a zero-valued Runtime.Retry uses.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Backoff: 200 * time.Microsecond, MaxBackoff: time.Millisecond}
}

// LoadFaultInjector adds latency to module loads — the seam the faults
// package uses for load-time spikes. A nil injector costs nothing.
type LoadFaultInjector interface {
	ExtraLoadLatency(path string) time.Duration
}

// Runtime is the per-process host runtime.
type Runtime struct {
	Env  *sim.Env
	GPU  *device.GPU
	Host device.HostProfile

	store      *codeobj.Store
	modules    map[string]*Module
	inflight   map[string]*loadState
	failed     map[string]error // negative cache: permanent failures only
	driverLock *sim.Resource
	ctxReady   bool
	stats      Stats

	// Retry bounds transient-error retries; the zero value means
	// DefaultRetryPolicy, MaxRetries < 0 disables retrying.
	Retry RetryPolicy
	// LoadFaults, when set, injects extra load latency (fault plans).
	LoadFaults LoadFaultInjector

	// OnLoad, when set, observes every completed module load (for the
	// metrics tracer). start/end are virtual times.
	OnLoad func(path string, start, end time.Duration, err error)
}

type loadState struct {
	done *sim.Signal
	mod  *Module
	err  error
}

// NewRuntime creates a cold process runtime over the given device and
// code-object store.
func NewRuntime(env *sim.Env, gpu *device.GPU, host device.HostProfile, store *codeobj.Store) *Runtime {
	return &Runtime{
		Env:        env,
		GPU:        gpu,
		Host:       host,
		store:      store,
		modules:    make(map[string]*Module),
		inflight:   make(map[string]*loadState),
		failed:     make(map[string]error),
		driverLock: sim.NewResource(env, 1),
	}
}

// retryPolicy resolves the effective retry policy.
func (rt *Runtime) retryPolicy() RetryPolicy {
	if rt.Retry.MaxRetries < 0 {
		return RetryPolicy{}
	}
	if rt.Retry == (RetryPolicy{}) {
		return DefaultRetryPolicy()
	}
	return rt.Retry
}

// Store returns the backing code-object store.
func (rt *Runtime) Store() *codeobj.Store { return rt.store }

// Stats returns a snapshot of loading statistics.
func (rt *Runtime) Stats() Stats { return rt.stats }

// ContextReady reports whether InitContext has completed.
func (rt *Runtime) ContextReady() bool { return rt.ctxReady }

// InitContext creates the GPU context, charging the device's context
// initialization cost once per process.
func (rt *Runtime) InitContext(p *sim.Proc) {
	if rt.ctxReady {
		return
	}
	p.Sleep(rt.GPU.Profile.ContextInit)
	rt.ctxReady = true
}

// Loaded reports whether the module at path is resident.
func (rt *Runtime) Loaded(path string) bool {
	_, ok := rt.modules[path]
	return ok
}

// NumLoaded returns the number of resident modules.
func (rt *Runtime) NumLoaded() int { return len(rt.modules) }

// ModuleLoad returns the module at path, loading it if absent. Loading reads
// the object from the store, validates it (real parse), resolves symbols and
// charges the device profile's load time. Concurrent loads of the same path
// coalesce: later callers wait on the first. Distinct loads serialize on the
// driver lock, as real drivers do.
//
// Transient store errors are retried with capped doubling backoff (see
// Retry); permanent errors (missing object, parse failure, arch mismatch)
// are negatively cached so repeat callers fail fast without re-reading a
// known-bad object.
func (rt *Runtime) ModuleLoad(p *sim.Proc, path string) (*Module, error) {
	if m, ok := rt.modules[path]; ok {
		rt.stats.LoadHits++
		return m, nil
	}
	if err, ok := rt.failed[path]; ok {
		rt.stats.NegativeHits++
		return nil, err
	}
	if st, ok := rt.inflight[path]; ok {
		st.done.Wait(p)
		return st.mod, st.err
	}
	st := &loadState{done: sim.NewSignal(p.Env())}
	rt.inflight[path] = st

	start := p.Now()
	st.mod, st.err = rt.loadWithRetry(p, path)

	delete(rt.inflight, path)
	if st.err == nil {
		rt.evictForSpace(int64(st.mod.Object.Size()))
		rt.modules[path] = st.mod
		rt.stats.ModuleLoads++
		rt.stats.BytesLoaded += int64(st.mod.Object.Size())
	} else {
		rt.stats.FailedLoads++
		if !IsTransient(st.err) {
			rt.failed[path] = st.err
			rt.stats.PermanentFailures++
		}
	}
	rt.stats.LoadTimeTotal += p.Now() - start
	if rt.OnLoad != nil {
		rt.OnLoad(path, start, p.Now(), st.err)
	}
	st.done.Fire()
	return st.mod, st.err
}

// loadWithRetry drives loadLocked through the retry policy, holding the
// driver lock only per attempt so backoff sleeps don't stall other loads.
func (rt *Runtime) loadWithRetry(p *sim.Proc, path string) (*Module, error) {
	pol := rt.retryPolicy()
	backoff := pol.Backoff
	for attempt := 0; ; attempt++ {
		rt.driverLock.Acquire(p)
		m, err := rt.loadLocked(p, path)
		rt.driverLock.Release()
		if err == nil || !IsTransient(err) || attempt >= pol.MaxRetries {
			return m, err
		}
		rt.stats.TransientRetries++
		if backoff > 0 {
			p.Sleep(backoff)
			backoff *= 2
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
	}
}

// ForgetFailure drops path from the negative cache — operators repair
// objects in place and the next ModuleLoad should try again.
func (rt *Runtime) ForgetFailure(path string) bool {
	if _, ok := rt.failed[path]; !ok {
		return false
	}
	delete(rt.failed, path)
	return true
}

// FailedPermanently reports whether path is negatively cached.
func (rt *Runtime) FailedPermanently(path string) bool {
	_, ok := rt.failed[path]
	return ok
}

// loadLocked performs the actual read + validate + relocate under the driver
// lock, charging virtual time proportional to the object size and symbols.
func (rt *Runtime) loadLocked(p *sim.Proc, path string) (*Module, error) {
	data, err := rt.store.Get(path)
	if err != nil {
		// A failed open still costs the fixed driver overhead.
		p.Sleep(rt.GPU.Profile.ModuleLoadFixed)
		return nil, fmt.Errorf("hip: ModuleLoad: %w", err)
	}
	if rt.LoadFaults != nil {
		if d := rt.LoadFaults.ExtraLoadLatency(path); d > 0 {
			p.Sleep(d)
		}
	}
	obj, perr := codeobj.Parse(data)
	if perr != nil {
		// The driver read and checksummed the file before rejecting it.
		p.Sleep(rt.GPU.Profile.LoadTime(int64(len(data)), 0))
		return nil, fmt.Errorf("hip: ModuleLoad %q: %w", path, perr)
	}
	if arch := rt.GPU.Profile.Arch; obj.Arch != arch {
		p.Sleep(rt.GPU.Profile.ModuleLoadFixed)
		return nil, fmt.Errorf("hip: ModuleLoad %q: object arch %q does not match device %q", path, obj.Arch, arch)
	}
	p.Sleep(rt.GPU.Profile.LoadTime(int64(obj.Size()), obj.NumSymbols()))
	return &Module{Path: path, Object: obj, LoadedAt: p.Now()}, nil
}

// evictForSpace drops least-recently-used non-resident modules until a new
// object of the given size fits into the device's code-memory budget — the
// memory pressure that forces edge devices to re-pay cold starts (paper §I).
func (rt *Runtime) evictForSpace(incoming int64) {
	budget := rt.GPU.Profile.CodeMemory
	if budget <= 0 {
		return
	}
	for rt.LoadedCodeBytes()+incoming > budget {
		var victim *Module
		for _, m := range rt.modules {
			if m.resident {
				continue
			}
			if victim == nil || m.lastUsed < victim.lastUsed ||
				(m.lastUsed == victim.lastUsed && m.Path < victim.Path) {
				victim = m
			}
		}
		if victim == nil {
			return // only resident modules remain
		}
		delete(rt.modules, victim.Path)
		rt.stats.Evictions++
	}
}

// ModuleGetFunction resolves a kernel symbol in a loaded module.
func (rt *Runtime) ModuleGetFunction(m *Module, name string) (*Function, error) {
	k, ok := m.Object.Symbol(name)
	if !ok {
		return nil, fmt.Errorf("hip: symbol %q not found in module %q", name, m.Path)
	}
	m.lastUsed = rt.Env.Now()
	return &Function{Module: m, Kernel: k}, nil
}

// GetFunction loads the module at path if needed (the lazy path the reactive
// baseline hits at launch time) and resolves the symbol.
func (rt *Runtime) GetFunction(p *sim.Proc, path, name string) (*Function, error) {
	m, err := rt.ModuleLoad(p, path)
	if err != nil {
		return nil, err
	}
	return rt.ModuleGetFunction(m, name)
}

// RegisterResident maps a code object that ships inside an already-open
// shared library: the bytes are parsed and the symbols registered, but only
// the cheap mapping cost is charged (no file read or relocation pass).
func (rt *Runtime) RegisterResident(p *sim.Proc, path string) (*Module, error) {
	if m, ok := rt.modules[path]; ok {
		return m, nil
	}
	pol := rt.retryPolicy()
	backoff := pol.Backoff
	data, err := rt.store.Get(path)
	for attempt := 0; err != nil && IsTransient(err) && attempt < pol.MaxRetries; attempt++ {
		rt.stats.TransientRetries++
		if backoff > 0 {
			p.Sleep(backoff)
			backoff *= 2
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
		data, err = rt.store.Get(path)
	}
	if err != nil {
		return nil, fmt.Errorf("hip: RegisterResident: %w", err)
	}
	obj, perr := codeobj.Parse(data)
	if perr != nil {
		return nil, fmt.Errorf("hip: RegisterResident %q: %w", path, perr)
	}
	p.Sleep(rt.Host.ResidentMap)
	m := &Module{Path: path, Object: obj, LoadedAt: p.Now(), resident: true}
	rt.modules[path] = m
	return m, nil
}

// Unload evicts a module from the registry (edge/suspend scenarios).
func (rt *Runtime) Unload(path string) bool {
	if _, ok := rt.modules[path]; !ok {
		return false
	}
	delete(rt.modules, path)
	return true
}

// UnloadAll evicts every non-resident module, modeling a device reset that
// keeps the process (and its mapped library binary) alive.
func (rt *Runtime) UnloadAll() {
	for path, m := range rt.modules {
		if !m.resident {
			delete(rt.modules, path)
		}
	}
}

// Preload loads every listed module, stopping at the first error. Used to
// realize the paper's Ideal scheme (all solutions resident before timing
// starts).
func (rt *Runtime) Preload(p *sim.Proc, paths []string) error {
	for _, path := range paths {
		if _, err := rt.ModuleLoad(p, path); err != nil {
			return err
		}
	}
	return nil
}

// LoadedCodeBytes returns the total container bytes of resident modules.
func (rt *Runtime) LoadedCodeBytes() int64 {
	var n int64
	for _, m := range rt.modules {
		n += int64(m.Object.Size())
	}
	return n
}
