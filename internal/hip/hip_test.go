package hip

import (
	"strings"
	"testing"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/sim"
)

func testProfile() device.Profile {
	return device.Profile{
		Name: "test", Arch: "gfx908",
		PeakFlops: 1e12, MemBW: 1e11, PCIeBW: 1e10,
		LaunchLatency: 10 * time.Microsecond, KernelOverhead: 5 * time.Microsecond,
		ModuleLoadFixed: time.Millisecond, ModuleLoadBW: 1e8,
		SymbolResolve: 100 * time.Microsecond, ContextInit: 50 * time.Millisecond,
		CodeMemory: 1 << 30,
	}
}

func testStore(t *testing.T) *codeobj.Store {
	t.Helper()
	s := codeobj.NewStore()
	for _, spec := range []struct {
		path string
		ks   []codeobj.KernelSpec
	}{
		{"conv_a.pko", []codeobj.KernelSpec{
			{Name: "conv_a_main", Pattern: "Winograd", CodeSize: 100000},
			{Name: "conv_a_xform", Pattern: "Winograd", CodeSize: 20000},
		}},
		{"conv_b.pko", []codeobj.KernelSpec{
			{Name: "conv_b_main", Pattern: "GEMM", CodeSize: 50000},
		}},
	} {
		if err := s.PutBuilt(spec.path, "gfx908", spec.ks); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func newTestRuntime(t *testing.T) (*sim.Env, *Runtime) {
	t.Helper()
	env := sim.NewEnv()
	gpu := device.NewGPU(env, testProfile())
	rt := NewRuntime(env, gpu, device.DefaultHost(), testStore(t))
	return env, rt
}

func runHost(t *testing.T, env *sim.Env, rt *Runtime, fn func(p *sim.Proc)) {
	t.Helper()
	env.Spawn("host", func(p *sim.Proc) {
		defer rt.GPU().CloseAll()
		fn(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestModuleLoadChargesTime(t *testing.T) {
	env, rt := newTestRuntime(t)
	var elapsed time.Duration
	runHost(t, env, rt, func(p *sim.Proc) {
		start := p.Now()
		m, err := rt.ModuleLoad(p, "conv_a.pko")
		if err != nil {
			t.Error(err)
			return
		}
		elapsed = p.Now() - start
		if m.Path != "conv_a.pko" || m.Object.NumSymbols() != 2 {
			t.Errorf("module = %+v", m)
		}
	})
	// Expected: fixed 1ms + size/1e8 s + 2 symbols * 100us.
	size := int64(rt.Store().Size("conv_a.pko"))
	want := testProfile().LoadTime(size, 2)
	if elapsed != want {
		t.Fatalf("load took %v, want %v", elapsed, want)
	}
	st := rt.Stats()
	if st.ModuleLoads != 1 || st.BytesLoaded != size || st.LoadTimeTotal != want {
		t.Fatalf("stats = %+v", st)
	}
}

func TestModuleLoadSecondCallIsFree(t *testing.T) {
	env, rt := newTestRuntime(t)
	runHost(t, env, rt, func(p *sim.Proc) {
		rt.ModuleLoad(p, "conv_a.pko")
		before := p.Now()
		rt.ModuleLoad(p, "conv_a.pko")
		if p.Now() != before {
			t.Errorf("second load consumed %v", p.Now()-before)
		}
	})
	st := rt.Stats()
	if st.ModuleLoads != 1 || st.LoadHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentLoadsCoalesce(t *testing.T) {
	env, rt := newTestRuntime(t)
	gpuDone := make(chan struct{})
	_ = gpuDone
	var doneA, doneB time.Duration
	env.Spawn("loaderA", func(p *sim.Proc) {
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Error(err)
		}
		doneA = p.Now()
	})
	env.Spawn("loaderB", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Error(err)
		}
		doneB = p.Now()
		rt.GPU().CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if doneA != doneB {
		t.Fatalf("coalesced loads finished at different times: %v vs %v", doneA, doneB)
	}
	if rt.Stats().ModuleLoads != 1 {
		t.Fatalf("ModuleLoads = %d, want 1 (coalesced)", rt.Stats().ModuleLoads)
	}
}

func TestDistinctLoadsSerializeOnDriverLock(t *testing.T) {
	env, rt := newTestRuntime(t)
	var spans [][2]time.Duration
	rt.SetOnLoad(func(path string, start, end time.Duration, err error) {
		spans = append(spans, [2]time.Duration{start, end})
	})
	env.Spawn("loaderA", func(p *sim.Proc) {
		rt.ModuleLoad(p, "conv_a.pko")
	})
	env.Spawn("loaderB", func(p *sim.Proc) {
		rt.ModuleLoad(p, "conv_b.pko")
		rt.GPU().CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d load spans", len(spans))
	}
	// OnLoad spans include lock wait; actual driver work must not overlap:
	// second load ends no earlier than sum of both load durations.
	sizeA := int64(rt.Store().Size("conv_a.pko"))
	sizeB := int64(rt.Store().Size("conv_b.pko"))
	minEnd := testProfile().LoadTime(sizeA, 2) + testProfile().LoadTime(sizeB, 1)
	last := spans[1][1]
	if spans[0][1] > last {
		last = spans[0][1]
	}
	if last < minEnd {
		t.Fatalf("loads overlapped: last end %v < serialized %v", last, minEnd)
	}
}

func TestLoadMissingObject(t *testing.T) {
	env, rt := newTestRuntime(t)
	runHost(t, env, rt, func(p *sim.Proc) {
		start := p.Now()
		_, err := rt.ModuleLoad(p, "missing.pko")
		if err == nil {
			t.Error("expected error for missing object")
		}
		if p.Now()-start != testProfile().ModuleLoadFixed {
			t.Errorf("failed open cost %v", p.Now()-start)
		}
	})
	if rt.Stats().FailedLoads != 1 {
		t.Fatalf("FailedLoads = %d", rt.Stats().FailedLoads)
	}
}

func TestLoadCorruptObject(t *testing.T) {
	env, rt := newTestRuntime(t)
	if err := rt.Store().Corrupt("conv_b.pko", 20); err != nil {
		t.Fatal(err)
	}
	runHost(t, env, rt, func(p *sim.Proc) {
		_, err := rt.ModuleLoad(p, "conv_b.pko")
		if err == nil {
			t.Error("expected checksum error")
		} else if !strings.Contains(err.Error(), "checksum") {
			t.Errorf("err = %v, want checksum failure", err)
		}
		if rt.Loaded("conv_b.pko") {
			t.Error("corrupt module must not be registered")
		}
	})
}

func TestLoadArchMismatch(t *testing.T) {
	env := sim.NewEnv()
	prof := testProfile()
	prof.Arch = "sm_80" // device expects CUDA arch; store has gfx908 objects
	gpu := device.NewGPU(env, prof)
	rt := NewRuntime(env, gpu, device.DefaultHost(), testStore(t))
	runHost(t, env, rt, func(p *sim.Proc) {
		_, err := rt.ModuleLoad(p, "conv_a.pko")
		if err == nil || !strings.Contains(err.Error(), "arch") {
			t.Errorf("err = %v, want arch mismatch", err)
		}
	})
}

func TestGetFunctionLazyLoads(t *testing.T) {
	env, rt := newTestRuntime(t)
	runHost(t, env, rt, func(p *sim.Proc) {
		if rt.Loaded("conv_a.pko") {
			t.Error("module should not be loaded yet (lazy)")
		}
		f, err := rt.GetFunction(p, "conv_a.pko", "conv_a_main")
		if err != nil {
			t.Error(err)
			return
		}
		if f.Name() != "conv_a_main" || f.Kernel.Pattern != "Winograd" {
			t.Errorf("function = %+v", f)
		}
		if !rt.Loaded("conv_a.pko") {
			t.Error("GetFunction must load the module")
		}
		if _, err := rt.GetFunction(p, "conv_a.pko", "nope"); err == nil {
			t.Error("expected symbol-not-found error")
		}
	})
}

func TestInitContextOnce(t *testing.T) {
	env, rt := newTestRuntime(t)
	runHost(t, env, rt, func(p *sim.Proc) {
		rt.InitContext(p)
		if p.Now() != testProfile().ContextInit {
			t.Errorf("first init took %v", p.Now())
		}
		before := p.Now()
		rt.InitContext(p)
		if p.Now() != before {
			t.Error("second init must be free")
		}
		if !rt.ContextReady() {
			t.Error("context not ready")
		}
	})
}

func TestUnloadAndPreload(t *testing.T) {
	env, rt := newTestRuntime(t)
	runHost(t, env, rt, func(p *sim.Proc) {
		if err := rt.Preload(p, []string{"conv_a.pko", "conv_b.pko"}); err != nil {
			t.Error(err)
			return
		}
		if rt.NumLoaded() != 2 {
			t.Errorf("NumLoaded = %d", rt.NumLoaded())
		}
		if rt.LoadedCodeBytes() <= 0 {
			t.Error("LoadedCodeBytes should be positive")
		}
		if !rt.Unload("conv_a.pko") || rt.Unload("conv_a.pko") {
			t.Error("Unload semantics wrong")
		}
		rt.UnloadAll()
		if rt.NumLoaded() != 0 {
			t.Errorf("NumLoaded after UnloadAll = %d", rt.NumLoaded())
		}
		// Reload after eviction pays full cost again (cold restart).
		start := p.Now()
		if _, err := rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Error(err)
		}
		if p.Now() == start {
			t.Error("reload after eviction must charge time")
		}
	})
}

func TestPreloadStopsAtError(t *testing.T) {
	env, rt := newTestRuntime(t)
	runHost(t, env, rt, func(p *sim.Proc) {
		err := rt.Preload(p, []string{"conv_a.pko", "missing.pko", "conv_b.pko"})
		if err == nil {
			t.Error("expected preload error")
		}
		if rt.Loaded("conv_b.pko") {
			t.Error("preload must stop at first error")
		}
	})
}

func TestOnLoadHookObservesFailures(t *testing.T) {
	env, rt := newTestRuntime(t)
	var sawErr bool
	rt.SetOnLoad(func(path string, start, end time.Duration, err error) {
		if err != nil {
			sawErr = true
		}
	})
	runHost(t, env, rt, func(p *sim.Proc) {
		rt.ModuleLoad(p, "missing.pko")
	})
	if !sawErr {
		t.Fatal("OnLoad did not observe the failure")
	}
}

func TestCodeMemoryPressureEvictsLRU(t *testing.T) {
	env := sim.NewEnv()
	prof := testProfile()
	// Budget fits roughly one of the two conv objects at a time.
	prof.CodeMemory = 130000
	gpu := device.NewGPU(env, prof)
	rt := NewRuntime(env, gpu, device.DefaultHost(), testStore(t))
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Error(err)
			return
		}
		// Touch conv_a so it is recently used.
		if _, err := rt.GetFunction(p, "conv_a.pko", "conv_a_main"); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(time.Millisecond)
		if _, err := rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Error(err)
			return
		}
		if rt.Loaded("conv_a.pko") {
			t.Error("conv_a should have been evicted for space")
		}
		if !rt.Loaded("conv_b.pko") {
			t.Error("conv_b must be resident after its load")
		}
	})
	if rt.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded under memory pressure")
	}
}

func TestResidentModulesSurviveEviction(t *testing.T) {
	env := sim.NewEnv()
	prof := testProfile()
	prof.CodeMemory = 200000
	gpu := device.NewGPU(env, prof)
	rt := NewRuntime(env, gpu, device.DefaultHost(), testStore(t))
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := rt.RegisterResident(p, "conv_a.pko"); err != nil {
			t.Error(err)
			return
		}
		if _, err := rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Error(err)
			return
		}
		rt.UnloadAll()
		if !rt.Loaded("conv_a.pko") {
			t.Error("library-resident module must survive UnloadAll")
		}
		if rt.Loaded("conv_b.pko") {
			t.Error("dynamically loaded module must be dropped by UnloadAll")
		}
	})
}

func TestRegisterResidentIsCheap(t *testing.T) {
	env, rt := newTestRuntime(t)
	runHost(t, env, rt, func(p *sim.Proc) {
		start := p.Now()
		if _, err := rt.RegisterResident(p, "conv_a.pko"); err != nil {
			t.Error(err)
			return
		}
		mapCost := p.Now() - start
		if mapCost != rt.Host().ResidentMap {
			t.Errorf("resident map cost %v, want %v", mapCost, rt.Host().ResidentMap)
		}
		size := int64(rt.Store().Size("conv_a.pko"))
		if mapCost >= rt.GPU().Profile.LoadTime(size, 2) {
			t.Error("resident mapping should be far cheaper than a full load")
		}
		// Idempotent and free the second time.
		before := p.Now()
		rt.RegisterResident(p, "conv_a.pko")
		if p.Now() != before {
			t.Error("second registration must be free")
		}
	})
	if rt.Stats().ModuleLoads != 0 {
		t.Fatal("resident registration must not count as a module load")
	}
}

func TestRegisterResidentRejectsCorrupt(t *testing.T) {
	env, rt := newTestRuntime(t)
	rt.Store().Corrupt("conv_a.pko", 12)
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := rt.RegisterResident(p, "conv_a.pko"); err == nil {
			t.Error("corrupt resident object must be rejected")
		}
		if _, err := rt.RegisterResident(p, "nope.pko"); err == nil {
			t.Error("missing resident object must be rejected")
		}
	})
}
