package hip

import (
	"testing"

	"pask/internal/backend"
	"pask/internal/backend/conformancetest"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/sim"
)

// The HIP runtime must satisfy every invariant of the shared backend
// contract (DESIGN.md §15).
func TestBackendConformance(t *testing.T) {
	conformancetest.Run(t, func(env *sim.Env, gpu *device.GPU, host device.HostProfile, store *codeobj.Store) backend.Backend {
		return NewRuntime(env, gpu, host, store)
	})
}
