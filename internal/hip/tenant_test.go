package hip

import (
	"testing"
	"time"

	"pask/internal/device"
	"pask/internal/sim"
)

// Multi-tenant sharing: views created with Attach alias one module registry,
// coalesce loads, pin what they reference and release the pins on Detach.

func TestTenantSharesModulesAcrossViews(t *testing.T) {
	env, rt := newTestRuntime(t)
	a := rt.Attach("alpha")
	b := rt.Attach("beta")
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := a.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Fatal(err)
		}
		before := p.Now()
		if _, err := b.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Fatal(err)
		}
		if p.Now() != before {
			t.Errorf("second tenant's load of a shared module consumed %v", p.Now()-before)
		}
	})
	if st := rt.Stats(); st.ModuleLoads != 1 || st.LoadHits != 1 {
		t.Fatalf("shared stats = %+v", st)
	}
	if ts := a.TenantStats(); ts.Loads != 1 || ts.SharedHits != 0 || ts.Pinned != 1 {
		t.Fatalf("alpha stats = %+v", ts)
	}
	if ts := b.TenantStats(); ts.Loads != 0 || ts.SharedHits != 1 || ts.Pinned != 1 {
		t.Fatalf("beta stats = %+v", ts)
	}
	if rt.Refs("conv_a.pko") != 2 {
		t.Fatalf("refs = %d, want 2", rt.Refs("conv_a.pko"))
	}
}

func TestTenantConcurrentLoadsCoalesceAcrossViews(t *testing.T) {
	env, rt := newTestRuntime(t)
	a := rt.Attach("alpha")
	b := rt.Attach("beta")
	env.Spawn("tenantA", func(p *sim.Proc) {
		if _, err := a.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Error(err)
		}
	})
	env.Spawn("tenantB", func(p *sim.Proc) {
		p.Sleep(time.Microsecond) // arrive while A's load is in flight
		defer rt.GPU().CloseAll()
		if _, err := b.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.ModuleLoads != 1 {
		t.Fatalf("same .pko loaded %d times, want exactly 1 (stats %+v)", st.ModuleLoads, st)
	}
	if st.CoalescedWaits != 1 {
		t.Fatalf("CoalescedWaits = %d, want 1", st.CoalescedWaits)
	}
	if ts := a.TenantStats(); ts.Loads != 1 || ts.CoalescedWaits != 0 {
		t.Fatalf("alpha stats = %+v", ts)
	}
	if ts := b.TenantStats(); ts.Loads != 0 || ts.CoalescedWaits != 1 || ts.Pinned != 1 {
		t.Fatalf("beta stats = %+v", ts)
	}
}

func TestTenantPinBlocksEviction(t *testing.T) {
	env := sim.NewEnv()
	store := testStore(t)
	prof := testProfile()
	// Budget fits either object alone but not both: loading the second
	// forces the evictor to look for a victim.
	sizeA := int64(store.Size("conv_a.pko"))
	sizeB := int64(store.Size("conv_b.pko"))
	prof.CodeMemory = sizeA + sizeB - 1
	gpu := device.NewGPU(env, prof)
	rt := NewRuntime(env, gpu, device.DefaultHost(), store)
	a := rt.Attach("alpha")
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := a.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Fatal(err)
		}
		// The root view does not pin, so its load must not evict alpha's
		// module even under pressure: the budget overshoots instead.
		if _, err := rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Fatal(err)
		}
		if !rt.Loaded("conv_a.pko") {
			t.Fatal("pinned module was evicted under memory pressure")
		}
		if rt.Stats().Evictions != 0 {
			t.Fatalf("evictions = %d, want 0", rt.Stats().Evictions)
		}
		// After the pinning tenant detaches its module becomes a victim.
		a.Detach()
		rt.Unload("conv_b.pko")
		if _, err := rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Fatal(err)
		}
		if rt.Loaded("conv_a.pko") {
			t.Fatal("detached tenant's module survived eviction pressure")
		}
		if rt.Stats().Evictions != 1 {
			t.Fatalf("evictions = %d, want 1", rt.Stats().Evictions)
		}
	})
}

func TestTenantDetachIsIdempotent(t *testing.T) {
	env, rt := newTestRuntime(t)
	a := rt.Attach("alpha")
	b := rt.Attach("beta")
	runHost(t, env, rt, func(p *sim.Proc) {
		a.ModuleLoad(p, "conv_a.pko")
		b.ModuleLoad(p, "conv_a.pko")
	})
	a.Detach()
	a.Detach()
	if got := rt.Refs("conv_a.pko"); got != 1 {
		t.Fatalf("refs after double detach = %d, want 1 (beta's)", got)
	}
	if !a.Detached() || b.Detached() {
		t.Fatalf("detached flags: a=%v b=%v", a.Detached(), b.Detached())
	}
	b.Detach()
	if got := rt.Refs("conv_a.pko"); got != 0 {
		t.Fatalf("refs after both detach = %d, want 0", got)
	}
	if !rt.Loaded("conv_a.pko") {
		t.Fatal("detach must not unload the module")
	}
}

func TestClearFailuresEmptiesNegativeCache(t *testing.T) {
	env, rt := newTestRuntime(t)
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := rt.ModuleLoad(p, "missing.pko"); err == nil {
			t.Fatal("expected load failure")
		}
		if !rt.FailedPermanently("missing.pko") {
			t.Fatal("missing object should be negatively cached")
		}
		if n := rt.ClearFailures(); n != 1 {
			t.Fatalf("ClearFailures = %d, want 1", n)
		}
		if rt.FailedPermanently("missing.pko") {
			t.Fatal("negative cache entry survived ClearFailures")
		}
	})
}

func TestTenantSkipsContextInitAndResidentMap(t *testing.T) {
	env, rt := newTestRuntime(t)
	a := rt.Attach("alpha")
	b := rt.Attach("beta")
	runHost(t, env, rt, func(p *sim.Proc) {
		a.InitContext(p)
		if _, err := a.RegisterResident(p, "conv_b.pko"); err != nil {
			t.Fatal(err)
		}
		before := p.Now()
		b.InitContext(p)
		if _, err := b.RegisterResident(p, "conv_b.pko"); err != nil {
			t.Fatal(err)
		}
		if p.Now() != before {
			t.Errorf("second tenant paid %v for context+resident map, want 0", p.Now()-before)
		}
	})
	if rt.Refs("conv_b.pko") != 2 {
		t.Fatalf("resident refs = %d, want 2", rt.Refs("conv_b.pko"))
	}
}
