package hip

import (
	"errors"
	"testing"
	"time"

	"pask/internal/codeobj"
	"pask/internal/sim"
)

// flakyStore fails the first n reads of each path with a transient error.
type flakyStore struct{ failsLeft map[string]int }

func (h *flakyStore) StoreGet(path string, data []byte) ([]byte, error) {
	if h.failsLeft[path] > 0 {
		h.failsLeft[path]--
		return nil, codeobj.ErrIO
	}
	return data, nil
}

// corruptStore serves damaged copies of one path forever.
type corruptStore struct{ path string }

func (h *corruptStore) StoreGet(path string, data []byte) ([]byte, error) {
	if path != h.path {
		return data, nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	cp[len(cp)/2] ^= 0xff
	return cp, nil
}

// spikeOnce injects one latency spike on the first load of each path.
type spikeOnce struct {
	extra time.Duration
	seen  map[string]bool
}

func (h *spikeOnce) ExtraLoadLatency(_ time.Duration, path string) time.Duration {
	if h.seen == nil {
		h.seen = make(map[string]bool)
	}
	if h.seen[path] {
		return 0
	}
	h.seen[path] = true
	return h.extra
}

func TestModuleLoadRetriesTransientErrors(t *testing.T) {
	env, rt := newTestRuntime(t)
	rt.Store().SetFaultHook(&flakyStore{failsLeft: map[string]int{"conv_a.pko": 2}})
	runHost(t, env, rt, func(p *sim.Proc) {
		m, err := rt.ModuleLoad(p, "conv_a.pko")
		if err != nil {
			t.Errorf("load after transient faults: %v", err)
			return
		}
		if m == nil || m.Path != "conv_a.pko" {
			t.Errorf("module = %+v", m)
		}
	})
	st := rt.Stats()
	if st.TransientRetries != 2 {
		t.Errorf("TransientRetries = %d, want 2", st.TransientRetries)
	}
	if st.ModuleLoads != 1 || st.FailedLoads != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestModuleLoadExhaustedRetriesNotNegativelyCached(t *testing.T) {
	env, rt := newTestRuntime(t)
	// More consecutive failures than the default 3 retries allow.
	rt.Store().SetFaultHook(&flakyStore{failsLeft: map[string]int{"conv_a.pko": 10}})
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); !IsTransient(err) {
			t.Errorf("exhausted-retry error = %v, want transient", err)
		}
		if rt.FailedPermanently("conv_a.pko") {
			t.Error("transient failure was negatively cached")
		}
		// 10 - 4 attempts = 6 failures left; the next call's 4 attempts clear
		// 4 more, the one after succeeds on its 3rd attempt.
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); !IsTransient(err) {
			t.Errorf("second call error = %v, want transient", err)
		}
		if m, err := rt.ModuleLoad(p, "conv_a.pko"); err != nil || m == nil {
			t.Errorf("third call should recover, got %v", err)
		}
	})
	if st := rt.Stats(); st.NegativeHits != 0 {
		t.Errorf("NegativeHits = %d, want 0", st.NegativeHits)
	}
}

func TestPermanentFailureNegativelyCached(t *testing.T) {
	env, rt := newTestRuntime(t)
	rt.Store().SetFaultHook(&corruptStore{path: "conv_a.pko"})
	var firstErr, secondErr error
	var secondCost time.Duration
	runHost(t, env, rt, func(p *sim.Proc) {
		_, firstErr = rt.ModuleLoad(p, "conv_a.pko")
		start := p.Now()
		_, secondErr = rt.ModuleLoad(p, "conv_a.pko")
		secondCost = p.Now() - start
	})
	if firstErr == nil || !errors.Is(firstErr, codeobj.ErrChecksum) {
		t.Fatalf("first error = %v, want checksum failure", firstErr)
	}
	if secondErr != firstErr {
		t.Errorf("second error = %v, want cached %v", secondErr, firstErr)
	}
	if secondCost != 0 {
		t.Errorf("negative-cache hit cost %v, want 0", secondCost)
	}
	st := rt.Stats()
	if st.PermanentFailures != 1 || st.NegativeHits != 1 || st.FailedLoads != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !rt.FailedPermanently("conv_a.pko") {
		t.Error("FailedPermanently = false")
	}
}

func TestForgetFailureAllowsRepair(t *testing.T) {
	env, rt := newTestRuntime(t)
	hook := &corruptStore{path: "conv_a.pko"}
	rt.Store().SetFaultHook(hook)
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); err == nil {
			t.Error("corrupt load unexpectedly succeeded")
		}
		// Repair the object, then clear the negative entry.
		rt.Store().SetFaultHook(nil)
		if !rt.ForgetFailure("conv_a.pko") {
			t.Error("ForgetFailure found no entry")
		}
		if rt.ForgetFailure("conv_a.pko") {
			t.Error("ForgetFailure deleted twice")
		}
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Errorf("load after repair: %v", err)
		}
	})
}

func TestTransientRetryCostsBackoffTime(t *testing.T) {
	env, rt := newTestRuntime(t)
	rt.SetRetry(RetryPolicy{MaxRetries: 1, Backoff: 300 * time.Microsecond})
	rt.Store().SetFaultHook(&flakyStore{failsLeft: map[string]int{"conv_b.pko": 1}})
	var elapsed time.Duration
	runHost(t, env, rt, func(p *sim.Proc) {
		start := p.Now()
		if _, err := rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Error(err)
			return
		}
		elapsed = p.Now() - start
	})
	prof := testProfile()
	size := int64(rt.Store().Size("conv_b.pko"))
	want := prof.ModuleLoadFixed + // failed attempt
		300*time.Microsecond + // backoff
		prof.LoadTime(size, 1) // successful attempt
	if elapsed != want {
		t.Errorf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestRetryDisabled(t *testing.T) {
	env, rt := newTestRuntime(t)
	rt.SetRetry(RetryPolicy{MaxRetries: -1})
	rt.Store().SetFaultHook(&flakyStore{failsLeft: map[string]int{"conv_a.pko": 1}})
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); !IsTransient(err) {
			t.Errorf("error = %v, want transient failure with retry disabled", err)
		}
	})
	if st := rt.Stats(); st.TransientRetries != 0 {
		t.Errorf("TransientRetries = %d, want 0", st.TransientRetries)
	}
}

func TestLatencySpikeCharged(t *testing.T) {
	env, rt := newTestRuntime(t)
	const extra = 5 * time.Millisecond
	rt.SetLoadFaults(&spikeOnce{extra: extra})
	var first, second time.Duration
	runHost(t, env, rt, func(p *sim.Proc) {
		start := p.Now()
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Error(err)
			return
		}
		first = p.Now() - start
		rt.Unload("conv_a.pko")
		start = p.Now()
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Error(err)
			return
		}
		second = p.Now() - start
	})
	if first-second != extra {
		t.Errorf("spiked load %v vs clean load %v: delta %v, want %v", first, second, first-second, extra)
	}
}

func TestRegisterResidentRetriesTransient(t *testing.T) {
	env, rt := newTestRuntime(t)
	rt.Store().SetFaultHook(&flakyStore{failsLeft: map[string]int{"conv_a.pko": 2}})
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := rt.RegisterResident(p, "conv_a.pko"); err != nil {
			t.Errorf("RegisterResident after transient faults: %v", err)
		}
	})
	if st := rt.Stats(); st.TransientRetries != 2 {
		t.Errorf("TransientRetries = %d, want 2", st.TransientRetries)
	}
}

func TestDeviceResetKeepsNegativeCache(t *testing.T) {
	env, rt := newTestRuntime(t)
	rt.Store().SetFaultHook(&corruptStore{path: "conv_a.pko"})
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := rt.ModuleLoad(p, "conv_a.pko"); err == nil {
			t.Error("corrupt load unexpectedly succeeded")
		}
		rt.UnloadAll()
		// A reset clears modules, not the on-disk corruption.
		if !rt.FailedPermanently("conv_a.pko") {
			t.Error("reset dropped the negative cache")
		}
	})
}
