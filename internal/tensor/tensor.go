// Package tensor provides the minimal dense-tensor data plane used by the
// functional reference kernels: 4-D shapes, NCHW/NHWC memory layouts, the
// fp32/fp16/int8 element types that GPU solutions specialize on, and layout /
// precision transforms (the operations NNV12 eliminates and PASK's solutions
// bundle as extra kernels). Layout and precision are the generality axes the
// paper's §III-B reuse trades against performance.
//
// Simulated runs never touch tensor data; functional runs (tests, the
// `functional` example) use fp32 host buffers regardless of the declared
// DType, with fp16/int8 semantics applied by value quantization.
//
// Paper anchor: the §III-B generality axes (layout, precision) that reuse trades against performance.
package tensor

import (
	"fmt"
	"math"
)

// DType identifies the element type a kernel is specialized for.
type DType uint8

const (
	F32 DType = iota
	F16
	I8
)

var dtypeNames = [...]string{"f32", "f16", "i8"}

func (d DType) String() string {
	if int(d) < len(dtypeNames) {
		return dtypeNames[d]
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case F32:
		return 4
	case F16:
		return 2
	case I8:
		return 1
	}
	return 4
}

// ParseDType converts a string produced by DType.String back to a DType.
func ParseDType(s string) (DType, error) {
	for i, n := range dtypeNames {
		if n == s {
			return DType(i), nil
		}
	}
	return F32, fmt.Errorf("tensor: unknown dtype %q", s)
}

// Layout identifies the memory layout of a 4-D activation tensor.
type Layout uint8

const (
	NCHW Layout = iota
	NHWC
)

func (l Layout) String() string {
	switch l {
	case NCHW:
		return "NCHW"
	case NHWC:
		return "NHWC"
	}
	return fmt.Sprintf("layout(%d)", uint8(l))
}

// ParseLayout converts a string produced by Layout.String back to a Layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "NCHW":
		return NCHW, nil
	case "NHWC":
		return NHWC, nil
	}
	return NCHW, fmt.Errorf("tensor: unknown layout %q", s)
}

// Shape is a 4-D activation shape (batch, channels, height, width). Lower
// dimensional tensors set trailing spatial dims to 1.
type Shape struct {
	N, C, H, W int
}

// Elems returns the number of elements.
func (s Shape) Elems() int { return s.N * s.C * s.H * s.W }

// Bytes returns the storage size for the given element type.
func (s Shape) Bytes(d DType) int64 { return int64(s.Elems()) * int64(d.Size()) }

func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

// Tensor is a dense 4-D fp32 host tensor with an explicit layout tag. Data is
// always stored in the order implied by Layout.
type Tensor struct {
	Shape  Shape
	Layout Layout
	Data   []float32
}

// New allocates a zero tensor of the given shape and layout.
func New(s Shape, l Layout) *Tensor {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{Shape: s, Layout: l, Data: make([]float32, s.Elems())}
}

// index returns the flat offset of (n,c,h,w) honoring the layout.
func (t *Tensor) index(n, c, h, w int) int {
	s := t.Shape
	switch t.Layout {
	case NCHW:
		return ((n*s.C+c)*s.H+h)*s.W + w
	case NHWC:
		return ((n*s.H+h)*s.W+w)*s.C + c
	}
	panic("tensor: bad layout")
}

// At returns the element at (n,c,h,w).
func (t *Tensor) At(n, c, h, w int) float32 { return t.Data[t.index(n, c, h, w)] }

// Set stores v at (n,c,h,w).
func (t *Tensor) Set(n, c, h, w int, v float32) { t.Data[t.index(n, c, h, w)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: t.Shape, Layout: t.Layout, Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// ToLayout returns a copy of t converted to layout l (the data movement a
// layout-interchange kernel performs). Returns t itself if already in l.
func (t *Tensor) ToLayout(l Layout) *Tensor {
	if t.Layout == l {
		return t
	}
	out := New(t.Shape, l)
	s := t.Shape
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					out.Set(n, c, h, w, t.At(n, c, h, w))
				}
			}
		}
	}
	return out
}

// Fill sets every element using f(flat index).
func (t *Tensor) Fill(f func(i int) float32) {
	for i := range t.Data {
		t.Data[i] = f(i)
	}
}

// Quantize rounds every element through the value grid of dtype d, in place,
// emulating the precision loss of running a kernel specialized for d.
func (t *Tensor) Quantize(d DType) {
	switch d {
	case F32:
	case F16:
		for i, v := range t.Data {
			t.Data[i] = F16Round(v)
		}
	case I8:
		for i, v := range t.Data {
			q := math.Round(float64(v) * 127)
			if q > 127 {
				q = 127
			} else if q < -128 {
				q = -128
			}
			t.Data[i] = float32(q / 127)
		}
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// tensors of identical shape (layouts may differ; comparison is logical).
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.Shape != b.Shape {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	var m float64
	s := a.Shape
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					d := math.Abs(float64(a.At(n, c, h, w)) - float64(b.At(n, c, h, w)))
					if d > m {
						m = d
					}
				}
			}
		}
	}
	return m
}

// F16Round rounds an fp32 value to the nearest representable binary16 value
// (round-to-nearest-even), returning it as fp32. Infinities saturate.
func F16Round(v float32) float32 {
	return F16ToF32(F32ToF16(v))
}

// F32ToF16 converts fp32 to IEEE 754 binary16 bits with round-to-nearest-even.
func F32ToF16(v float32) uint16 {
	bits := math.Float32bits(v)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	man := bits & 0x7fffff
	switch {
	case int32(bits>>23&0xff) == 0xff: // Inf/NaN
		if man != 0 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // Inf
	case exp >= 0x1f: // overflow -> Inf
		return sign | 0x7c00
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign
		}
		man |= 0x800000
		shift := uint32(14 - exp)
		half := man >> shift
		rem := man & ((1 << shift) - 1)
		mid := uint32(1) << (shift - 1)
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return sign | uint16(half)
	default:
		half := uint32(exp)<<10 | man>>13
		rem := man & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++
		}
		return sign | uint16(half)
	}
}

// F16ToF32 converts IEEE 754 binary16 bits to fp32.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	case exp == 0x1f:
		if man == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7fc00000 | man<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | man<<13)
	}
}
