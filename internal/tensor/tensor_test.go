package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeElemsAndBytes(t *testing.T) {
	s := Shape{N: 2, C: 3, H: 4, W: 5}
	if s.Elems() != 120 {
		t.Fatalf("Elems = %d", s.Elems())
	}
	if s.Bytes(F32) != 480 || s.Bytes(F16) != 240 || s.Bytes(I8) != 120 {
		t.Fatalf("Bytes wrong: %d %d %d", s.Bytes(F32), s.Bytes(F16), s.Bytes(I8))
	}
}

func TestShapeValid(t *testing.T) {
	if !(Shape{1, 1, 1, 1}).Valid() {
		t.Fatal("1x1x1x1 should be valid")
	}
	for _, s := range []Shape{{0, 1, 1, 1}, {1, -1, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0}} {
		if s.Valid() {
			t.Fatalf("%v should be invalid", s)
		}
	}
}

func TestDTypeRoundTrip(t *testing.T) {
	for _, d := range []DType{F32, F16, I8} {
		got, err := ParseDType(d.String())
		if err != nil || got != d {
			t.Fatalf("ParseDType(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDType("f64"); err == nil {
		t.Fatal("expected error for unknown dtype")
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	for _, l := range []Layout{NCHW, NHWC} {
		got, err := ParseLayout(l.String())
		if err != nil || got != l {
			t.Fatalf("ParseLayout(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLayout("CHWN"); err == nil {
		t.Fatal("expected error for unknown layout")
	}
}

func TestIndexingNCHWvsNHWC(t *testing.T) {
	s := Shape{N: 2, C: 3, H: 4, W: 5}
	a := New(s, NCHW)
	b := New(s, NHWC)
	v := float32(0)
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					a.Set(n, c, h, w, v)
					b.Set(n, c, h, w, v)
					v++
				}
			}
		}
	}
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					if a.At(n, c, h, w) != b.At(n, c, h, w) {
						t.Fatalf("logical mismatch at %d,%d,%d,%d", n, c, h, w)
					}
				}
			}
		}
	}
	// NCHW flat order: last index moves fastest along W.
	if a.Data[1] != a.At(0, 0, 0, 1) {
		t.Fatal("NCHW flat order wrong")
	}
	// NHWC flat order: last index moves fastest along C.
	if b.Data[1] != b.At(0, 1, 0, 0) {
		t.Fatal("NHWC flat order wrong")
	}
}

func TestToLayoutRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Shape{N: rng.Intn(3) + 1, C: rng.Intn(5) + 1, H: rng.Intn(6) + 1, W: rng.Intn(6) + 1}
		a := New(s, NCHW)
		a.Fill(func(i int) float32 { return rng.Float32() })
		back := a.ToLayout(NHWC).ToLayout(NCHW)
		return MaxAbsDiff(a, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestToLayoutSameLayoutReturnsSelf(t *testing.T) {
	a := New(Shape{1, 1, 2, 2}, NCHW)
	if a.ToLayout(NCHW) != a {
		t.Fatal("ToLayout with same layout should return the receiver")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(Shape{1, 1, 1, 2}, NCHW)
	a.Data[0] = 5
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 5 {
		t.Fatal("Clone shares storage")
	}
}

func TestMaxAbsDiffAcrossLayouts(t *testing.T) {
	s := Shape{1, 2, 2, 2}
	a := New(s, NCHW)
	a.Fill(func(i int) float32 { return float32(i) })
	b := a.ToLayout(NHWC)
	if d := MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("diff across layouts = %v, want 0", d)
	}
	b.Set(0, 1, 1, 1, b.At(0, 1, 1, 1)+2.5)
	if d := MaxAbsDiff(a, b); d != 2.5 {
		t.Fatalf("diff = %v, want 2.5", d)
	}
}

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		in   float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-2, 0xc000},
		{0.5, 0x3800},
		{65504, 0x7bff},         // max finite f16
		{70000, 0x7c00},         // overflow -> +Inf
		{5.9604645e-08, 0x0001}, // smallest subnormal
	}
	for _, c := range cases {
		if got := F32ToF16(c.in); got != c.bits {
			t.Errorf("F32ToF16(%v) = %#04x, want %#04x", c.in, got, c.bits)
		}
	}
	if !math.IsInf(float64(F16ToF32(0x7c00)), 1) {
		t.Error("0x7c00 should decode to +Inf")
	}
	if !math.IsNaN(float64(F16ToF32(0x7e00))) {
		t.Error("0x7e00 should decode to NaN")
	}
}

func TestF16RoundIdempotentProperty(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) {
			return true
		}
		once := F16Round(v)
		return F16Round(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestF16RoundErrorBoundProperty(t *testing.T) {
	f := func(raw uint16) bool {
		v := float32(raw)/65535*4 - 2 // [-2,2]
		r := F16Round(v)
		// Relative error of binary16 in the normal range is <= 2^-11.
		return math.Abs(float64(r-v)) <= math.Max(math.Abs(float64(v))/2048, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeF16(t *testing.T) {
	a := New(Shape{1, 1, 1, 3}, NCHW)
	a.Data = []float32{1.0001, -3.14159, 0}
	b := a.Clone()
	b.Quantize(F16)
	for i := range a.Data {
		if b.Data[i] != F16Round(a.Data[i]) {
			t.Fatalf("Quantize(F16)[%d] = %v, want %v", i, b.Data[i], F16Round(a.Data[i]))
		}
	}
}

func TestQuantizeI8SaturatesAndGrids(t *testing.T) {
	a := New(Shape{1, 1, 1, 4}, NCHW)
	a.Data = []float32{2.0, -2.0, 0.5, 0}
	a.Quantize(I8)
	if a.Data[0] != 1 {
		t.Fatalf("positive saturation = %v, want 1", a.Data[0])
	}
	if a.Data[1] != -128.0/127 {
		t.Fatalf("negative saturation = %v, want %v", a.Data[1], -128.0/127)
	}
	if math.Abs(float64(a.Data[2]-64.0/127)) > 1e-6 {
		t.Fatalf("0.5 quantized = %v", a.Data[2])
	}
	if a.Data[3] != 0 {
		t.Fatalf("0 quantized = %v", a.Data[3])
	}
}

func TestQuantizeF32IsIdentity(t *testing.T) {
	a := New(Shape{1, 1, 1, 2}, NCHW)
	a.Data = []float32{1.23456789, -9.87654321}
	b := a.Clone()
	b.Quantize(F32)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("Quantize(F32) must be identity")
	}
}

func TestNewPanicsOnInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Shape{0, 1, 1, 1}, NCHW)
}
