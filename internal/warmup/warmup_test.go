package warmup

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/hip"
	"pask/internal/sim"
)

func sampleManifest() *Manifest {
	return &Manifest{
		Version: Version, Model: "alex", Batch: 4,
		Device: "MI100", Arch: "gfx908",
		Entries: []Entry{
			{Path: "a.pko", Checksum: 11, Bytes: 100, Kind: "solution"},
			{Path: "b.pko", Checksum: 22, Kind: "transform"},
		},
		Substitutions: []Substitution{
			{Layer: "conv1", Pattern: "ConvDirect", Selected: "a.pko", Chosen: "b.pko"},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Model != m.Model || got.Batch != m.Batch || got.Device != m.Device || got.Arch != m.Arch {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	if len(got.Entries) != 2 || got.Entries[0] != m.Entries[0] || got.Entries[1] != m.Entries[1] {
		t.Fatalf("entries mismatch: %+v", got.Entries)
	}
	if len(got.Substitutions) != 1 || got.Substitutions[0] != m.Substitutions[0] {
		t.Fatalf("substitutions mismatch: %+v", got.Substitutions)
	}
	// Encoding is deterministic.
	again, err := got.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if string(again) != string(data) {
		t.Fatalf("encoding not stable:\n%s\nvs\n%s", data, again)
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := WriteFile(path, sampleManifest()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Model != "alex" || len(got.Entries) != 2 {
		t.Fatalf("unexpected manifest: %+v", got)
	}
}

// TestForwardCompatGolden decodes a manifest written by a hypothetical newer
// minor revision (same version, extra fields) and checks the unknown fields
// survive a decode→encode→decode round trip untouched.
func TestForwardCompatGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "forward_compat.json"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	m, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode golden: %v", err)
	}
	if m.Model != "res" || len(m.Entries) != 2 || len(m.Substitutions) != 1 {
		t.Fatalf("known fields misparsed: %+v", m)
	}
	unknown := m.UnknownFields()
	if len(unknown) != 2 {
		t.Fatalf("want 2 unknown top-level fields, got %v", unknown)
	}
	reenc, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.Contains(string(reenc), `"recorded_by"`) || !strings.Contains(string(reenc), `"replay_window_ms"`) {
		t.Fatalf("unknown fields dropped on re-encode:\n%s", reenc)
	}
	m2, err := Decode(reenc)
	if err != nil {
		t.Fatalf("Decode re-encoded: %v", err)
	}
	var tuning struct {
		Strategy string `json:"strategy"`
	}
	if err := json.Unmarshal(m2.unknown["tuning"], &tuning); err != nil || tuning.Strategy != "eager" {
		t.Fatalf("nested unknown field mangled: %s err=%v", m2.unknown["tuning"], err)
	}
	// Unknown entry-level fields are dropped (entries are version-owned);
	// only top-level extensions are preserved. Document that here.
	if strings.Contains(string(reenc), "compression") {
		t.Fatalf("entry-level unknown fields are not meant to round-trip:\n%s", reenc)
	}
}

func TestVersionBumpRejected(t *testing.T) {
	_, err := Decode([]byte(`{"version": 2, "entries": []}`))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version error must not also be ErrCorrupt: %v", err)
	}
}

func TestCorruptManifestRejected(t *testing.T) {
	cases := []string{
		`{not json`,
		`[]`,
		`{"entries": []}`,                      // missing version
		`{"version": 0, "entries": []}`,        // invalid version
		`{"version": 1, "entries": [{}]}`,      // entry without path
		`{"version": 1, "entries": "nothing"}`, // wrong type
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("Decode(%q): want ErrCorrupt, got %v", c, err)
		}
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.ObserveObject("solution", "a.pko")
	r.ObserveObject("transform", "x.pko")
	r.ObserveObject("solution", "a.pko") // dedup keeps first-use order
	r.ObserveObject("builtin", "")       // empty path ignored
	r.ObserveDecision("conv1", "ConvDirect", "a.pko", "a.pko", false)
	r.ObserveDecision("conv2", "ConvDirect", "b.pko", "a.pko", true)
	if got := r.Paths(); len(got) != 2 || got[0] != "a.pko" || got[1] != "x.pko" {
		t.Fatalf("Paths: %v", got)
	}

	store := codeobj.NewStore()
	aData := buildObject(t, "a")
	store.Put("a.pko", aData)
	// x.pko unreadable: left out of the manifest.
	man := r.Manifest(store, "alex", 1, device.MI100())
	if len(man.Entries) != 1 || man.Entries[0].Path != "a.pko" {
		t.Fatalf("Entries: %+v", man.Entries)
	}
	if man.Entries[0].Checksum != Checksum(aData) || man.Entries[0].Bytes != len(aData) {
		t.Fatalf("checksum/bytes wrong: %+v", man.Entries[0])
	}
	if len(man.Substitutions) != 1 || man.Substitutions[0].Layer != "conv2" {
		t.Fatalf("Substitutions: %+v", man.Substitutions)
	}
	if man.Model != "alex" || man.Device != "MI100" || man.Version != Version {
		t.Fatalf("header: %+v", man)
	}
}

func buildObject(t *testing.T, name string) []byte {
	t.Helper()
	data, err := codeobj.Build(name, "gfx908", []codeobj.KernelSpec{
		{Name: name + "_k0", Pattern: "GEMM", CodeSize: 256},
	})
	if err != nil {
		t.Fatalf("Build %s: %v", name, err)
	}
	return data
}

// TestPrefetcherReplay replays a manifest with one healthy, one stale and
// one missing entry: the healthy object must end up resident, the other two
// must be skipped and counted, and the run must not fail.
func TestPrefetcherReplay(t *testing.T) {
	env := sim.NewEnv()
	store := codeobj.NewStore()
	good := buildObject(t, "good")
	stale := buildObject(t, "stale")
	store.Put("good.pko", good)
	store.Put("stale.pko", stale)
	rt := hip.NewRuntime(env, device.NewGPU(env, device.MI100()), device.DefaultHost(), store)

	man := &Manifest{Version: Version, Entries: []Entry{
		{Path: "good.pko", Checksum: Checksum(good)},
		{Path: "stale.pko", Checksum: Checksum(stale) + 1}, // mismatch
		{Path: "gone.pko", Checksum: 7},                    // unreadable
	}}
	pf := Start(env, rt, man, nil)
	env.Spawn("waiter", func(p *sim.Proc) { pf.Wait(p) })
	env.Run()

	st := pf.Stats()
	if st.Entries != 3 || st.Loaded != 1 || st.Stale != 2 || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if !rt.Loaded("good.pko") {
		t.Fatal("good.pko not resident after replay")
	}
	if !pf.Covered("good.pko") || pf.Covered("stale.pko") {
		t.Fatalf("coverage wrong: %+v", pf)
	}
	// Replay detaches its view: nothing stays pinned on its account, so
	// prefetched-but-unused modules remain evictable under memory pressure.
	if n := rt.Refs("good.pko"); n != 0 {
		t.Fatalf("warmup view left %d pins on good.pko", n)
	}

	got := pf.Account([]string{"good.pko", "other.pko"}, env.Now())
	if got.Hits != 1 || got.Misses != 1 || got.Wasted != 0 {
		t.Fatalf("accounting: %+v", got)
	}
}

// TestWriteFileAtomic pins the crash-safety contract: WriteFile lands via a
// same-directory temp file and rename, so path never holds a half-written
// manifest, and a truncated leftover (a simulated torn write) is rejected
// by ReadFile as corrupt rather than silently replayed.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profile.json")

	// Overwriting an existing manifest leaves no temp droppings behind.
	if err := WriteFile(path, sampleManifest()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	m2 := sampleManifest()
	m2.Model = "res"
	if err := WriteFile(path, m2); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0].Name() != "profile.json" {
		t.Fatalf("directory not clean after write: %v", names)
	}
	got, err := ReadFile(path)
	if err != nil || got.Model != "res" {
		t.Fatalf("ReadFile after overwrite: %+v, %v", got, err)
	}

	// A torn write — the old non-atomic failure mode — must not decode.
	full, err := sampleManifest().Encode()
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(torn); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated manifest: err = %v, want ErrCorrupt", err)
	}
}
