package warmup

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecode drives Decode with arbitrary bytes and enforces its contract:
// either the manifest parses (and re-encodes cleanly), or the error unwraps
// to exactly ErrCorrupt or ErrVersion. It must never panic — replay paths
// feed Decode bytes read off disk after crashes and torn writes.
func FuzzDecode(f *testing.F) {
	if data, err := os.ReadFile(filepath.Join("testdata", "forward_compat.json")); err == nil {
		f.Add(data)
	}
	if enc, err := sampleManifest().Encode(); err == nil {
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("null"))
	f.Add([]byte(`{"version":999}`))
	f.Add([]byte(`{"entries":[{"path":""}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("Decode error outside contract: %v", err)
			}
			return
		}
		reenc, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded manifest does not re-encode: %v", err)
		}
		if _, err := Decode(reenc); err != nil {
			t.Fatalf("re-encoded manifest does not decode: %v", err)
		}
	})
}
