// Package warmup implements profile-guided cold-start mitigation across
// process lifetimes — the cross-run extension of the paper's §III-A
// proactive loading. PASK's three-thread pipeline only overlaps loading
// with *this* run's parse; every process start is still cold because the
// runtime forgets which solutions a model actually used. This package
// closes that loop: a Recorder captures the executor's realized per-layer
// decisions (ordered solution keys, code-object ids with checksums, the
// observed pattern→solution substitutions), the result serializes to a
// versioned JSON Manifest, and on the next cold start a Prefetcher replays
// the manifest through the shared backend runtime before and during parse, so
// the pipeline finds its modules already resident. Singleflight load
// coalescing in the runtime makes replay and demand loads converge safely;
// stale manifest entries (checksum mismatch against the store) are skipped
// and counted, never failed on.
//
// Paper anchor: §III-A proactive loading extended across process lifetimes (DESIGN.md §12).
package warmup

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/graphx"
	"pask/internal/miopen"
)

// Version is the manifest format version this package writes and the
// newest it understands. Manifests from older writers decode as long as
// their fields parse; a larger version is rejected with ErrVersion.
const Version = 1

// ErrVersion marks a manifest written by a newer format version than this
// package understands.
var ErrVersion = errors.New("warmup: unsupported manifest version")

// ErrCorrupt marks a manifest that is not valid JSON or is structurally
// unusable. Callers on the cold-start path treat it as "no manifest" and
// proceed cold.
var ErrCorrupt = errors.New("warmup: corrupt manifest")

// Checksum is the integrity hash manifests store per code object (CRC-32,
// IEEE polynomial — the same family the PKO container uses).
func Checksum(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// Entry is one code object the profiled run loaded, in first-use order.
type Entry struct {
	// Path is the object's store path (solution key for primitives).
	Path string `json:"path"`
	// Checksum is the CRC-32 of the object's container bytes at record
	// time. A mismatch at replay time marks the entry stale.
	Checksum uint32 `json:"checksum"`
	// Bytes is the container size at record time (informational).
	Bytes int `json:"bytes,omitempty"`
	// Kind classifies the object: "solution", "transform", "builtin" or
	// "blas".
	Kind string `json:"kind,omitempty"`
}

// Substitution records one layer the profiled run served with a different
// solution than the statically selected one (a reuse hit or a degradation
// fallback) — the observed pattern→solution mapping.
type Substitution struct {
	Layer    string `json:"layer"`
	Pattern  string `json:"pattern"`
	Selected string `json:"selected"` // statically selected solution key
	Chosen   string `json:"chosen"`   // key of the instance that actually ran
}

// Manifest is a per-model load profile: everything a prefetcher needs to
// make the next cold start find its modules resident. Unknown top-level
// JSON fields survive a decode/encode round trip, so manifests written by
// newer minor revisions are not stripped by older tools.
type Manifest struct {
	Version int    `json:"version"`
	Model   string `json:"model,omitempty"`
	Batch   int    `json:"batch,omitempty"`
	Device  string `json:"device,omitempty"`
	Arch    string `json:"arch,omitempty"`

	Entries       []Entry        `json:"entries"`
	Substitutions []Substitution `json:"substitutions,omitempty"`

	// unknown preserves top-level fields this version does not understand.
	unknown map[string]json.RawMessage
}

// manifestJSON is the known-field shape (kept in sync with Manifest).
type manifestJSON struct {
	Version       int            `json:"version"`
	Model         string         `json:"model,omitempty"`
	Batch         int            `json:"batch,omitempty"`
	Device        string         `json:"device,omitempty"`
	Arch          string         `json:"arch,omitempty"`
	Entries       []Entry        `json:"entries"`
	Substitutions []Substitution `json:"substitutions,omitempty"`
}

// knownManifestKeys lists the top-level keys the current version owns.
var knownManifestKeys = []string{"version", "model", "batch", "device", "arch", "entries", "substitutions"}

// MarshalJSON writes the known fields plus any preserved unknown fields.
func (m *Manifest) MarshalJSON() ([]byte, error) {
	known, err := json.Marshal(manifestJSON{
		Version: m.Version, Model: m.Model, Batch: m.Batch,
		Device: m.Device, Arch: m.Arch,
		Entries: m.Entries, Substitutions: m.Substitutions,
	})
	if err != nil {
		return nil, err
	}
	if len(m.unknown) == 0 {
		return known, nil
	}
	merged := make(map[string]json.RawMessage, len(m.unknown)+len(knownManifestKeys))
	if err := json.Unmarshal(known, &merged); err != nil {
		return nil, err
	}
	for k, v := range m.unknown {
		if _, owned := merged[k]; !owned {
			merged[k] = v
		}
	}
	return json.Marshal(merged) // map keys marshal sorted: deterministic
}

// UnmarshalJSON parses a manifest, rejecting newer format versions with
// ErrVersion and preserving unknown top-level fields.
func (m *Manifest) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var mj manifestJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if mj.Version > Version {
		return fmt.Errorf("%w: manifest version %d, this build understands <= %d", ErrVersion, mj.Version, Version)
	}
	if mj.Version < 1 {
		return fmt.Errorf("%w: missing or invalid version field", ErrCorrupt)
	}
	m.Version = mj.Version
	m.Model, m.Batch = mj.Model, mj.Batch
	m.Device, m.Arch = mj.Device, mj.Arch
	m.Entries, m.Substitutions = mj.Entries, mj.Substitutions
	for _, k := range knownManifestKeys {
		delete(raw, k)
	}
	if len(raw) > 0 {
		m.unknown = raw
	} else {
		m.unknown = nil
	}
	return nil
}

// UnknownFields returns the preserved top-level keys this version did not
// understand (sorted by the encoder on write; order here is unspecified).
func (m *Manifest) UnknownFields() []string {
	out := make([]string, 0, len(m.unknown))
	for k := range m.unknown {
		out = append(out, k)
	}
	return out
}

// Encode serializes the manifest as indented JSON.
func (m *Manifest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("warmup: encode manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// Decode parses a manifest. Errors unwrap to ErrCorrupt (bad JSON or
// structure) or ErrVersion (newer format).
func Decode(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		// json syntax errors surface before UnmarshalJSON runs; fold them
		// into the corrupt class so callers have two sentinels, not three.
		if !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
			err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return nil, err
	}
	for i := range m.Entries {
		if m.Entries[i].Path == "" {
			return nil, fmt.Errorf("%w: entry %d has no path", ErrCorrupt, i)
		}
	}
	return &m, nil
}

// WriteFile serializes the manifest to path. The write is atomic — the
// bytes land in a temp file in the same directory which is then renamed
// over path — so a crash mid-write leaves either the old manifest or a
// stray temp file, never a truncated manifest at path.
func WriteFile(path string, m *Manifest) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("warmup: write manifest: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("warmup: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("warmup: write manifest: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("warmup: write manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("warmup: write manifest: %w", err)
	}
	return nil
}

// ReadFile loads and decodes the manifest at path.
func ReadFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("warmup: read manifest: %w", err)
	}
	return Decode(data)
}

// checksumEntry builds one entry from the store's current bytes; ok is
// false when the object cannot be read (it is then left out — a replay
// would only count it stale).
func checksumEntry(store *codeobj.Store, kind, path string) (Entry, bool) {
	data, err := store.Get(path)
	if err != nil {
		return Entry{}, false
	}
	return Entry{Path: path, Checksum: Checksum(data), Bytes: len(data), Kind: kind}, true
}

// FromModel builds a static-plan manifest from a compiled model: the code
// objects the statically selected plan would load, in program order. It is
// the bootstrap profile for models that have never run — weaker than a
// recorded profile (it cannot know which loads selective reuse will skip),
// but enough to hide most load time behind process bring-up.
func FromModel(m *graphx.CompiledModel, reg *miopen.Registry, store *codeobj.Store, prof device.Profile) (*Manifest, error) {
	paths, err := m.DistinctObjects(reg)
	if err != nil {
		return nil, fmt.Errorf("warmup: static profile for %s: %w", m.Name, err)
	}
	man := &Manifest{
		Version: Version, Model: m.Name, Batch: m.Batch,
		Device: prof.Name, Arch: prof.Arch,
	}
	for _, p := range paths {
		if e, ok := checksumEntry(store, "", p); ok {
			man.Entries = append(man.Entries, e)
		}
	}
	return man, nil
}
