package warmup

import (
	"time"

	"pask/internal/backend"
	"pask/internal/metrics"
	"pask/internal/sim"
	"pask/internal/trace"
)

// ReplayStats summarizes one manifest replay plus its post-run accounting.
// The replay-side fields (Entries..Failed) are final once the prefetcher's
// thread exits; the accounting fields (Hits/Misses/Wasted) are filled by
// Account once the run knows which objects it actually used.
type ReplayStats struct {
	Entries   int `json:"entries"`   // manifest entries considered
	Loaded    int `json:"loaded"`    // loads this replay initiated and paid for
	Resident  int `json:"resident"`  // already resident when replay reached them
	Coalesced int `json:"coalesced"` // converged with an in-flight demand load
	Stale     int `json:"stale"`     // checksum mismatch or unreadable: skipped
	Failed    int `json:"failed"`    // load errors absorbed (never fail the run)

	Hits   int `json:"hits"`   // objects the run used that replay made resident
	Misses int `json:"misses"` // objects the run used that replay did not cover
	Wasted int `json:"wasted"` // objects replay loaded that the run never used
}

// Prefetcher replays a load profile through a shared backend runtime on its own
// simulation thread, concurrently with (and ideally ahead of) the pipeline.
// It attaches its own refcounted runtime view so its loads are attributed
// to "warmup" in per-tenant stats, and detaches when the replay finishes so
// it holds no pins of its own — objects the run never touches stay evictable.
//
// Every failure mode is absorbed: stale entries are skipped and counted,
// load errors are counted, and a fully corrupt manifest simply never
// constructs a Prefetcher. Warmup can only ever add residency.
type Prefetcher struct {
	man    *Manifest
	view   backend.Backend
	rec    *trace.Recorder
	stats  ReplayStats
	loaded map[string]bool // paths resident because of (or confirmed by) replay
	done   *sim.Signal
}

// Track is the trace track prefetch spans and instants appear on.
const Track = "warmup"

// Start spawns the replay thread on env and returns immediately. The thread
// attaches its own view of rt, walks the manifest in recorded order and
// fires its done signal when finished. rec may be nil.
func Start(env *sim.Env, rt backend.Backend, man *Manifest, rec *trace.Recorder) *Prefetcher {
	pf := &Prefetcher{
		man:    man,
		view:   rt.Attach("warmup"),
		rec:    rec,
		loaded: make(map[string]bool),
		done:   sim.NewSignal(env),
	}
	env.Spawn("warmup-prefetch", pf.run)
	return pf
}

// run is the replay thread body.
func (pf *Prefetcher) run(p *sim.Proc) {
	defer pf.done.Fire()
	defer pf.view.Detach()
	for _, e := range pf.man.Entries {
		replayEntry(p, pf.view, e, &pf.stats, pf.loaded, pf.rec)
	}
	pf.rec.Instant(Track, "prefetch-done", p.Now())
}

// replayEntry loads one manifest entry through view, validating its
// checksum against the store, classifying the outcome into st and marking
// paths that became (or were confirmed) resident in loaded. It is the
// per-entry body shared by the replay and predictive prefetchers; every
// failure mode is absorbed into a counter.
func replayEntry(p *sim.Proc, view backend.Backend, e Entry, st *ReplayStats, loaded map[string]bool, rec *trace.Recorder) {
	st.Entries++
	data, err := view.Store().Get(e.Path)
	if err != nil || Checksum(data) != e.Checksum {
		st.Stale++
		rec.Instant(Track, "prefetch-stale", p.Now(), metrics.Attr{Key: "path", Value: e.Path})
		rec.Count("warmup_stale_entries", p.Now(), float64(st.Stale))
		return
	}
	if view.Loaded(e.Path) {
		st.Resident++
		loaded[e.Path] = true
		return
	}
	start := p.Now()
	before := view.TenantStats()
	_, err = view.ModuleLoad(p, e.Path)
	after := view.TenantStats()
	if err != nil {
		st.Failed++
		rec.Instant(Track, "prefetch-failed", p.Now(), metrics.Attr{Key: "path", Value: e.Path})
		return
	}
	loaded[e.Path] = true
	switch {
	case after.Loads > before.Loads:
		st.Loaded++
	case after.CoalescedWaits > before.CoalescedWaits:
		st.Coalesced++
	default: // became resident between the Loaded check and the call
		st.Resident++
	}
	rec.Span(Track, metrics.CatLoad, "prefetch:"+e.Path, start, p.Now())
}

// Wait blocks the calling proc until the replay thread has finished.
func (pf *Prefetcher) Wait(p *sim.Proc) { pf.done.Wait(p) }

// Done reports whether the replay thread has finished.
func (pf *Prefetcher) Done() bool { return pf.done.Fired() }

// Stats returns a snapshot of the replay counters.
func (pf *Prefetcher) Stats() ReplayStats { return pf.stats }

// Covered reports whether replay made (or found) path resident.
func (pf *Prefetcher) Covered(path string) bool { return pf.loaded[path] }

// Account reconciles the replay against the set of object paths the run
// actually used, filling Hits/Misses/Wasted, emitting the prefetch counter
// series at virtual time `at`, and returning the completed stats. Counters
// are emitted even when zero so dashboards always see the series.
func (pf *Prefetcher) Account(used []string, at time.Duration) ReplayStats {
	accountUsed(&pf.stats, pf.loaded, used, at, pf.rec)
	return pf.stats
}

// accountUsed is the Hits/Misses/Wasted reconciliation shared by the
// replay and predictive prefetchers, emitting the warmup_prefetch_*
// counter series (even when zero, so dashboards always see them).
func accountUsed(st *ReplayStats, loaded map[string]bool, used []string, at time.Duration, rec *trace.Recorder) {
	usedSet := make(map[string]bool, len(used))
	for _, path := range used {
		if usedSet[path] {
			continue
		}
		usedSet[path] = true
		if loaded[path] {
			st.Hits++
		} else {
			st.Misses++
		}
	}
	for path := range loaded {
		if !usedSet[path] {
			st.Wasted++
		}
	}
	rec.Count("warmup_prefetch_hits", at, float64(st.Hits))
	rec.Count("warmup_prefetch_misses", at, float64(st.Misses))
	rec.Count("warmup_prefetch_wasted", at, float64(st.Wasted))
	rec.Count("warmup_stale_entries", at, float64(st.Stale))
}
