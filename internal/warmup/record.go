package warmup

import (
	"pask/internal/codeobj"
	"pask/internal/device"
)

// Recorder captures one run's realized load profile. It implements the
// core executor's ProfileObserver seam: the loader thread reports each
// code object at the moment it commits to loading (or reusing past) it,
// and each per-layer decision where the chosen solution differs from the
// statically selected one. Order is preserved — replay wants first-use
// order so the prefetcher races ahead of the pipeline, not behind it.
//
// No locking: recording happens inside the cooperative simulation, where
// procs never preempt each other mid-call.
type Recorder struct {
	order []string          // first-use order of observed object paths
	kinds map[string]string // path -> kind at first observation
	seen  map[string]bool
	subs  []Substitution
}

// NewRecorder returns an empty profile recorder.
func NewRecorder() *Recorder {
	return &Recorder{kinds: make(map[string]string), seen: make(map[string]bool)}
}

// ObserveObject records a code object the executor decided to use, deduped
// to its first occurrence.
func (r *Recorder) ObserveObject(kind, path string) {
	if r == nil || path == "" || r.seen[path] {
		return
	}
	r.seen[path] = true
	r.order = append(r.order, path)
	r.kinds[path] = kind
}

// ObserveDecision records one layer's primitive decision. Only decisions
// where the executed instance differs from the statically selected one
// (substituted) persist in the manifest; the substitution list is the
// observed pattern→solution mapping of §III-C's selective reuse.
func (r *Recorder) ObserveDecision(layer, pattern, selected, chosen string, substituted bool) {
	if r == nil || !substituted {
		return
	}
	r.subs = append(r.subs, Substitution{Layer: layer, Pattern: pattern, Selected: selected, Chosen: chosen})
}

// Paths returns the observed object paths in first-use order.
func (r *Recorder) Paths() []string {
	if r == nil {
		return nil
	}
	return r.order
}

// Manifest freezes the recording into a manifest, checksumming each object
// against the store's current bytes. Objects the store cannot read are
// dropped (replaying them could only count stale).
func (r *Recorder) Manifest(store *codeobj.Store, model string, batch int, prof device.Profile) *Manifest {
	man := &Manifest{
		Version: Version, Model: model, Batch: batch,
		Device: prof.Name, Arch: prof.Arch,
	}
	if r == nil {
		return man
	}
	for _, path := range r.order {
		if e, ok := checksumEntry(store, r.kinds[path], path); ok {
			man.Entries = append(man.Entries, e)
		}
	}
	man.Substitutions = append(man.Substitutions, r.subs...)
	return man
}
