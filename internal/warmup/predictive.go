package warmup

import (
	"time"

	"pask/internal/backend"
	"pask/internal/sim"
	"pask/internal/trace"
)

// Budget bounds what a predictive prefetcher may load ahead of demand.
// Replay only ever pays for objects a prior run provably used; prediction
// can be wrong, so its spend must be capped — every budget entry burned on
// a bad prediction is a wasted load competing with demand traffic for the
// driver lock.
type Budget struct {
	// Entries caps manifest entries attempted per prefetcher (default 48).
	Entries int
	// Bytes, when positive, additionally caps the code bytes loaded.
	Bytes int64
}

func (b Budget) filled() Budget {
	if b.Entries <= 0 {
		b.Entries = 48
	}
	return b
}

// PredictivePrefetcher loads predicted-hot models' code objects through a
// shared backend runtime ahead of demand. Where the replay Prefetcher
// walks one recorded manifest for the instance that spawned it, the
// predictive prefetcher is fed model names over time — by whatever is
// watching the live request stream — and replays each model's manifest
// through its own "predict" tenant view, so prefetched residency is
// cross-tenant: an object loaded for a predicted model is immediately
// warm for the tenant that eventually serves it.
//
// It shares the replay prefetcher's accounting: per-entry classification
// into ReplayStats and the warmup_prefetch_{hits,misses,wasted} counters
// via Account.
type PredictivePrefetcher struct {
	view      backend.Backend
	manifests map[string]*Manifest
	budget    Budget
	rec       *trace.Recorder

	stats   ReplayStats
	loaded  map[string]bool
	queued  map[string]bool // models enqueued at least once
	q       *sim.Chan[string]
	done    *sim.Signal
	spent   int
	spentB  int64
	stopped bool
}

// predictiveQueueCap bounds the model queue; with per-model dedup the
// queue can never hold more distinct work than models exist, so this is a
// generous ceiling rather than a backpressure mechanism.
const predictiveQueueCap = 1024

// StartPredictive spawns the predictive prefetch thread on env and returns
// immediately. manifests maps model identifiers to the load profile to
// replay when that model is predicted (models without a manifest are
// ignored). rec may be nil.
func StartPredictive(env *sim.Env, rt backend.Backend, manifests map[string]*Manifest, b Budget, rec *trace.Recorder) *PredictivePrefetcher {
	pf := &PredictivePrefetcher{
		view:      rt.Attach("predict"),
		manifests: manifests,
		budget:    b.filled(),
		rec:       rec,
		loaded:    make(map[string]bool),
		queued:    make(map[string]bool),
		q:         sim.NewChan[string](env, predictiveQueueCap),
		done:      sim.NewSignal(env),
	}
	env.Spawn("predict-prefetch", pf.run)
	return pf
}

// Prefetch enqueues models for ahead-of-demand loading. Models already
// enqueued once, or without a manifest, are skipped; the call never
// blocks. Calls after Close are ignored.
func (pf *PredictivePrefetcher) Prefetch(models ...string) {
	for _, m := range models {
		if pf.stopped || pf.queued[m] || pf.manifests[m] == nil {
			continue
		}
		if pf.q.Len() >= predictiveQueueCap-1 {
			return // full queue: drop rather than block the caller
		}
		pf.queued[m] = true
		pf.q.Send(nil, m) // never blocks below capacity; no proc needed
	}
}

// run is the prefetch thread body: drain predicted models, replay each
// manifest within budget.
func (pf *PredictivePrefetcher) run(p *sim.Proc) {
	defer pf.done.Fire()
	defer pf.view.Detach()
	for {
		model, ok := pf.q.Recv(p)
		if !ok {
			pf.rec.Instant(Track, "predict-prefetch-done", p.Now())
			return
		}
		for _, e := range pf.manifests[model].Entries {
			if pf.loaded[e.Path] {
				continue // already covered by an earlier prediction
			}
			if pf.view.Loaded(e.Path) {
				// Resident (demand or a peer got there first): free, and
				// covered — the same classification the replay prefetcher
				// gives residents, so the arms account identically.
				pf.stats.Entries++
				pf.stats.Resident++
				pf.loaded[e.Path] = true
				continue
			}
			if pf.spent >= pf.budget.Entries ||
				(pf.budget.Bytes > 0 && pf.spentB+int64(e.Bytes) > pf.budget.Bytes) {
				pf.rec.Instant(Track, "predict-budget-exhausted", p.Now())
				return // budget gone: nothing further may load
			}
			pf.spent++
			pf.spentB += int64(e.Bytes)
			replayEntry(p, pf.view, e, &pf.stats, pf.loaded, pf.rec)
		}
	}
}

// Close stops the prefetcher: no further models are accepted, the queue
// drains, then the thread detaches its view and fires done. Idempotent.
func (pf *PredictivePrefetcher) Close() {
	if pf.stopped {
		return
	}
	pf.stopped = true
	pf.q.Close()
}

// Wait blocks the calling proc until the prefetch thread has exited.
// Callers must Close first or Wait never returns.
func (pf *PredictivePrefetcher) Wait(p *sim.Proc) { pf.done.Wait(p) }

// Done reports whether the prefetch thread has exited.
func (pf *PredictivePrefetcher) Done() bool { return pf.done.Fired() }

// Stats returns a snapshot of the replay counters.
func (pf *PredictivePrefetcher) Stats() ReplayStats { return pf.stats }

// Covered reports whether prediction made (or found) path resident.
func (pf *PredictivePrefetcher) Covered(path string) bool { return pf.loaded[path] }

// Spent returns the budget consumed so far (entries attempted, bytes).
func (pf *PredictivePrefetcher) Spent() (entries int, bytes int64) { return pf.spent, pf.spentB }

// Account reconciles the predictions against the object paths actually
// used, filling Hits/Misses/Wasted and emitting the warmup_prefetch_*
// counters at virtual time at — the same accounting the replay prefetcher
// feeds, so predictive and replay arms land on identical series.
func (pf *PredictivePrefetcher) Account(used []string, at time.Duration) ReplayStats {
	accountUsed(&pf.stats, pf.loaded, used, at, pf.rec)
	return pf.stats
}
