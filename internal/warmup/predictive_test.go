package warmup

import (
	"testing"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/hip"
	"pask/internal/sim"
)

// predictiveFixture builds a store with n objects per model and the
// matching manifests.
func predictiveFixture(t *testing.T, models []string, n int) (*codeobj.Store, map[string]*Manifest) {
	t.Helper()
	store := codeobj.NewStore()
	manifests := make(map[string]*Manifest)
	for _, m := range models {
		man := &Manifest{Version: Version, Model: m}
		for i := 0; i < n; i++ {
			path := m + "_" + string(rune('a'+i)) + ".pko"
			data := buildObject(t, m+"_obj"+string(rune('a'+i)))
			store.Put(path, data)
			man.Entries = append(man.Entries, Entry{Path: path, Checksum: Checksum(data), Bytes: len(data)})
		}
		manifests[m] = man
	}
	return store, manifests
}

// TestPredictivePrefetch checks the core loop: predicted models' objects
// become resident cross-tenant, unpredicted ones stay cold, the view
// detaches (no pins), and Account classifies hits, misses and waste on the
// shared warmup_prefetch_* scheme.
func TestPredictivePrefetch(t *testing.T) {
	env := sim.NewEnv()
	store, manifests := predictiveFixture(t, []string{"alex", "res", "vgg"}, 2)
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)

	pf := StartPredictive(env, rt, manifests, Budget{}, nil)
	env.Spawn("driver", func(p *sim.Proc) {
		pf.Prefetch("alex")
		p.Sleep(time.Millisecond)
		pf.Prefetch("res", "res", "nosuchmodel") // dedup + unknown model
		p.Sleep(time.Millisecond)
		pf.Close()
		pf.Wait(p)
		gpu.CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{"alex_a.pko", "alex_b.pko", "res_a.pko", "res_b.pko"} {
		if !rt.Loaded(path) {
			t.Fatalf("%s not resident after prediction", path)
		}
		if n := rt.Refs(path); n != 0 {
			t.Fatalf("predict view left %d pins on %s", n, path)
		}
	}
	if rt.Loaded("vgg_a.pko") {
		t.Fatal("unpredicted model loaded")
	}
	st := pf.Stats()
	if st.Loaded != 4 {
		t.Fatalf("loaded = %d, want 4: %+v", st.Loaded, st)
	}
	// The run used one alex object and one vgg object: one hit, one miss,
	// three wasted predictions (the other alex object and both res objects).
	got := pf.Account([]string{"alex_a.pko", "vgg_a.pko"}, env.Now())
	if got.Hits != 1 || got.Misses != 1 || got.Wasted != 3 {
		t.Fatalf("accounting: %+v", got)
	}
}

// TestPredictiveBudget pins the budget cap: entries beyond the budget are
// never attempted, bytes caps compose, and Spent reports the spend.
func TestPredictiveBudget(t *testing.T) {
	env := sim.NewEnv()
	store, manifests := predictiveFixture(t, []string{"alex", "res"}, 3)
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)

	pf := StartPredictive(env, rt, manifests, Budget{Entries: 4}, nil)
	env.Spawn("driver", func(p *sim.Proc) {
		pf.Prefetch("alex", "res")
		pf.Close()
		pf.Wait(p)
		gpu.CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	entries, bytes := pf.Spent()
	if entries != 4 || bytes <= 0 {
		t.Fatalf("spent %d entries / %d bytes, want exactly 4 entries", entries, bytes)
	}
	if st := pf.Stats(); st.Loaded != 4 {
		t.Fatalf("loaded %d, want 4 (budget)", st.Loaded)
	}
	if rt.Loaded("res_b.pko") || rt.Loaded("res_c.pko") {
		t.Fatal("loads continued past the budget")
	}
}

// TestPredictiveResidentIsFree already-resident objects must not consume
// budget: prediction only pays for new residency.
func TestPredictiveResidentIsFree(t *testing.T) {
	env := sim.NewEnv()
	store, manifests := predictiveFixture(t, []string{"alex"}, 2)
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)

	env.Spawn("warm", func(p *sim.Proc) {
		rt.InitContext(p)
		if _, err := rt.ModuleLoad(p, "alex_a.pko"); err != nil {
			t.Errorf("preload: %v", err)
		}
		pf := StartPredictive(env, rt, manifests, Budget{Entries: 10}, nil)
		pf.Prefetch("alex")
		pf.Close()
		pf.Wait(p)
		if entries, _ := pf.Spent(); entries != 1 {
			t.Errorf("spent %d entries, want 1 (resident object is free)", entries)
		}
		gpu.CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
