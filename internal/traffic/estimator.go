package traffic

import (
	"time"
)

// RateEstimator tracks an arrival stream's rate online with two sliding
// windows over the most recent arrivals: a fast window that follows the
// instantaneous rate and a slow window that serves as the baseline. When
// the fast rate exceeds the slow one by Factor, the stream is ramping —
// the onset of a flash crowd — which is the signal the predictive
// prefetcher uses to prewarm instances before the peak.
//
// Window sizes are in arrivals, not time: the rate over the last k
// arrivals is k divided by the span they cover, whose relative error
// shrinks as 1/sqrt(k). That keeps false onsets on a steady Poisson
// stream vanishingly rare while a real surge moves the fast window within
// a handful of crowd arrivals.
type RateEstimator struct {
	fastN, slowN int
	factor       float64

	times []time.Duration // ring buffer of the last slowN+1 arrival stamps
	head  int
	n     int
}

// NewRateEstimator returns an estimator with the given fast/slow window
// sizes (in arrivals) and onset factor. Non-positive values get defaults
// (32, 256, 2.0).
func NewRateEstimator(fastN, slowN int, factor float64) *RateEstimator {
	if fastN <= 0 {
		fastN = 32
	}
	if slowN <= fastN {
		slowN = 8 * fastN
	}
	if factor <= 1 {
		factor = 2
	}
	return &RateEstimator{fastN: fastN, slowN: slowN, factor: factor,
		times: make([]time.Duration, slowN+1)}
}

// Observe feeds one arrival timestamp. Timestamps must be non-decreasing.
func (e *RateEstimator) Observe(at time.Duration) {
	e.times[e.head] = at
	e.head = (e.head + 1) % len(e.times)
	e.n++
}

// rateOver returns the arrival rate (requests/second) over the last k
// inter-arrival spans, or 0 while fewer than k+1 arrivals were observed.
func (e *RateEstimator) rateOver(k int) float64 {
	if e.n < k+1 {
		return 0
	}
	newest := e.times[(e.head-1+len(e.times))%len(e.times)]
	oldest := e.times[(e.head-1-k+len(e.times))%len(e.times)]
	span := newest - oldest
	if span <= 0 {
		span = time.Nanosecond
	}
	return float64(k) / span.Seconds()
}

// Rate returns the fast (current) rate estimate in requests per second.
func (e *RateEstimator) Rate() float64 { return e.rateOver(e.fastN) }

// Baseline returns the slow (baseline) rate estimate. Until the slow
// window fills it covers whatever history exists beyond the fast window.
func (e *RateEstimator) Baseline() float64 {
	k := e.slowN
	if e.n <= k {
		k = e.n - 1
	}
	if k <= e.fastN {
		return 0
	}
	return e.rateOver(k)
}

// Observations returns the number of arrivals observed.
func (e *RateEstimator) Observations() int { return e.n }

// Onset reports whether the stream is ramping: the fast rate exceeds the
// baseline by the configured factor. It is a level signal; callers that
// want a single trigger should act on the rising edge.
func (e *RateEstimator) Onset() bool {
	base := e.Baseline()
	return base > 0 && e.Rate() >= e.factor*base
}
