package traffic

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

func mustNew(t *testing.T, cfg Config) *Generator {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDeterministicStream pins the byte-identical-streams contract: two
// generators with equal configs produce equal JSON encodings.
func TestDeterministicStream(t *testing.T) {
	cfg := Config{
		Models:   []string{"alex", "res", "vgg"},
		Rate:     500,
		Exponent: 1.2,
		Diurnal:  Diurnal{Period: 200 * time.Millisecond, Amplitude: 0.4},
		Crowds:   []FlashCrowd{{Onset: 50 * time.Millisecond, Ramp: 10 * time.Millisecond, Hold: 20 * time.Millisecond, Decay: 10 * time.Millisecond, Peak: 4, Model: "vgg"}},
		Shifts:   []Shift{{At: 40 * time.Millisecond, Rank: []int{2, 1, 0}}},
		Seed:     7,
	}
	a := mustNew(t, cfg).Generate(10_000)
	b := mustNew(t, cfg).Generate(10_000)
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("same seed produced different streams")
	}
	g2 := mustNew(t, Config{Models: cfg.Models, Rate: cfg.Rate, Seed: 8})
	if c := g2.Generate(3); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds produced the same stream prefix")
	}
}

// TestTimestampsMonotonic checks arrivals never go back in time, at a
// millions-of-requests scale (virtual time keeps this cheap).
func TestTimestampsMonotonic(t *testing.T) {
	g := mustNew(t, Config{Models: []string{"a", "b"}, Rate: 1e6, Seed: 3})
	prev := time.Duration(-1)
	for i := 0; i < 2_000_000; i++ {
		r := g.Next()
		if r.At < prev {
			t.Fatalf("arrival %d at %v before previous %v", i, r.At, prev)
		}
		prev = r.At
	}
}

// TestZipfExponent is the chi-squared sanity check: empirical model
// frequencies of a stationary stream must match the configured Zipf
// weights. With 200k samples over 8 categories the statistic is chi^2
// distributed with 7 degrees of freedom; 40 is far beyond any plausible
// quantile, so the test only fails if the sampler is actually wrong.
func TestZipfExponent(t *testing.T) {
	models := []string{"m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"}
	const s, n = 1.0, 200_000
	g := mustNew(t, Config{Models: models, Exponent: s, Rate: 1000, Seed: 11})
	counts := map[string]int{}
	for _, r := range g.Generate(n) {
		counts[r.Model]++
	}
	total := 0.0
	weights := make([]float64, len(models))
	for i := range models {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		total += weights[i]
	}
	chi2 := 0.0
	for i, m := range models {
		expected := float64(n) * weights[i] / total
		d := float64(counts[m]) - expected
		chi2 += d * d / expected
	}
	if chi2 > 40 {
		t.Fatalf("chi-squared %.1f over 7 dof: frequencies %v do not follow Zipf(%v)", chi2, counts, s)
	}
	// The ranking itself must be strictly Zipf-ordered at this sample size.
	for i := 1; i < len(models); i++ {
		if counts[models[i]] >= counts[models[i-1]] {
			t.Fatalf("rank %d (%d) not below rank %d (%d)", i, counts[models[i]], i-1, counts[models[i-1]])
		}
	}
}

// windowRate measures the empirical arrival rate (requests/sec) in [lo, hi).
func windowRate(reqs []Request, lo, hi time.Duration) float64 {
	n := 0
	for _, r := range reqs {
		if r.At >= lo && r.At < hi {
			n++
		}
	}
	return float64(n) / ((hi - lo).Seconds())
}

// TestFlashCrowdShape pins the surge shape: the rate before onset stays at
// baseline, the peak window runs near Peak times baseline, the ramp is
// bounded (the peak rate is reached within the configured ramp width), and
// after decay the stream returns to baseline.
func TestFlashCrowdShape(t *testing.T) {
	const base = 2000.0
	crowd := FlashCrowd{Onset: 300 * time.Millisecond, Ramp: 50 * time.Millisecond,
		Hold: 150 * time.Millisecond, Decay: 50 * time.Millisecond, Peak: 5, Model: "hot"}
	g := mustNew(t, Config{Models: []string{"cold", "hot"}, Rate: base, Crowds: []FlashCrowd{crowd}, Seed: 5})
	var reqs []Request
	for r := g.Next(); r.At < 900*time.Millisecond; r = g.Next() {
		reqs = append(reqs, r)
	}
	before := windowRate(reqs, 100*time.Millisecond, crowd.Onset)
	peak := windowRate(reqs, crowd.Onset+crowd.Ramp, crowd.Onset+crowd.Ramp+crowd.Hold)
	after := windowRate(reqs, crowd.Onset+crowd.Ramp+crowd.Hold+crowd.Decay+100*time.Millisecond, 900*time.Millisecond)
	if peak <= 3*before {
		t.Fatalf("peak rate %.0f not clearly above pre-onset rate %.0f", peak, before)
	}
	if before > 1.3*base || after > 1.3*base {
		t.Fatalf("baseline windows off: before=%.0f after=%.0f base=%.0f", before, after, base)
	}
	// Bounded ramp width: the window straddling the end of the ramp already
	// runs at >= 70% of the peak rate — the surge cannot take longer than
	// the configured ramp to arrive.
	early := windowRate(reqs, crowd.Onset+crowd.Ramp, crowd.Onset+crowd.Ramp+30*time.Millisecond)
	if early < 0.7*crowd.Peak*base {
		t.Fatalf("rate %.0f just after the ramp below 70%% of peak %.0f", early, crowd.Peak*base)
	}
	// Surge arrivals target the crowd model: "hot" must dominate the peak.
	hot := 0
	tot := 0
	for _, r := range reqs {
		if r.At >= crowd.Onset+crowd.Ramp && r.At < crowd.Onset+crowd.Ramp+crowd.Hold {
			tot++
			if r.Model == "hot" {
				hot++
			}
		}
	}
	if float64(hot) < 0.6*float64(tot) {
		t.Fatalf("crowd model got %d/%d peak arrivals", hot, tot)
	}
}

// TestShiftReRanks checks the mid-run popularity re-rank: the head of the
// Zipf curve moves to the newly ranked model after the shift.
func TestShiftReRanks(t *testing.T) {
	shiftAt := 500 * time.Millisecond
	g := mustNew(t, Config{
		Models: []string{"a", "b", "c"}, Exponent: 1.5, Rate: 2000, Seed: 9,
		Shifts: []Shift{{At: shiftAt, Rank: []int{2, 1, 0}}},
	})
	pre := map[string]int{}
	post := map[string]int{}
	for r := g.Next(); r.At < 1000*time.Millisecond; r = g.Next() {
		if r.At < shiftAt {
			pre[r.Model]++
		} else {
			post[r.Model]++
		}
	}
	if pre["a"] <= pre["c"] {
		t.Fatalf("pre-shift head should be a: %v", pre)
	}
	if post["c"] <= post["a"] {
		t.Fatalf("post-shift head should be c: %v", post)
	}
}

// TestRateEstimatorOnset drives the estimator with the generator: steady
// phase must not report onset, the crowd ramp must.
func TestRateEstimatorOnset(t *testing.T) {
	crowd := FlashCrowd{Onset: 400 * time.Millisecond, Ramp: 40 * time.Millisecond,
		Hold: 100 * time.Millisecond, Decay: 40 * time.Millisecond, Peak: 6, Model: "hot"}
	g := mustNew(t, Config{Models: []string{"cold", "hot"}, Rate: 1000, Crowds: []FlashCrowd{crowd}, Seed: 21})
	est := NewRateEstimator(24, 192, 2)
	firedAt := time.Duration(-1)
	for r := g.Next(); r.At < 700*time.Millisecond; r = g.Next() {
		est.Observe(r.At)
		if r.At < crowd.Onset && est.Onset() {
			t.Fatalf("onset reported at %v, before the crowd", r.At)
		}
		if firedAt < 0 && est.Onset() {
			firedAt = r.At
		}
	}
	if firedAt < 0 {
		t.Fatal("onset never reported")
	}
	if limit := crowd.Onset + crowd.Ramp + crowd.Hold; firedAt > limit {
		t.Fatalf("onset reported at %v, after the peak window ends (%v)", firedAt, limit)
	}
}

// TestConfigValidation exercises the error paths.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Models: []string{"a"}, Rank: []int{1}},
		{Models: []string{"a", "b"}, Shifts: []Shift{{Rank: []int{0, 0}}}},
		{Models: []string{"a"}, Crowds: []FlashCrowd{{Peak: 0.5, Ramp: time.Millisecond}}},
		{Models: []string{"a"}, Crowds: []FlashCrowd{{Peak: 2}}},
		{Models: []string{"a"}, Diurnal: Diurnal{Amplitude: 0.5}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
