// Package traffic generates seeded inference request streams in virtual
// time: Zipfian model popularity, diurnal rate cycles and flash crowds —
// the internet-scale arrival shapes the serving experiments replay against
// the fleet. Because time is virtual, generating millions of arrivals is a
// plain in-memory loop: no sleeping, no wall clock, and a fixed seed yields
// a byte-identical stream on every run. These generators are the stand-in
// for the production request traces the paper's testbed would face: the
// paper evaluates single cold starts (§IV–§V); this package supplies the
// beyond-paper traffic under which proactive loading (§III) must decide
// *what* to load, not just *when* (DESIGN.md §16).
//
// Paper anchor: beyond-paper arrival streams (Zipf, diurnal, flash crowds) under which §III proactive loading must choose *what* to load (DESIGN.md §16).
package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Request is one synthetic inference arrival.
type Request struct {
	At    time.Duration `json:"at"`
	Model string        `json:"model"`
}

// Diurnal modulates the base rate with a sinusoidal day/night cycle:
// rate(t) = base * (1 + Amplitude*sin(2*pi*t/Period)). The zero value
// disables the cycle.
type Diurnal struct {
	Period    time.Duration
	Amplitude float64 // 0 <= Amplitude < 1
}

// FlashCrowd is one rate surge: the multiplier ramps linearly from 1 at
// Onset to Peak over Ramp, holds Peak for Hold, and decays linearly back
// to 1 over Decay. Arrivals attributable to the surge (the excess over the
// baseline rate) target Model when it is set; otherwise they follow the
// ambient popularity distribution.
type FlashCrowd struct {
	Onset time.Duration
	Ramp  time.Duration
	Hold  time.Duration
	Decay time.Duration
	Peak  float64 // rate multiplier at the peak, >= 1
	Model string  // surge target; "" spreads the surge across all models
}

// multiplier returns the crowd's rate factor at t.
func (fc FlashCrowd) multiplier(t time.Duration) float64 {
	switch {
	case fc.Peak <= 1 || t < fc.Onset:
		return 1
	case t < fc.Onset+fc.Ramp:
		return 1 + (fc.Peak-1)*float64(t-fc.Onset)/float64(fc.Ramp)
	case t < fc.Onset+fc.Ramp+fc.Hold:
		return fc.Peak
	case t < fc.Onset+fc.Ramp+fc.Hold+fc.Decay:
		left := fc.Onset + fc.Ramp + fc.Hold + fc.Decay - t
		return 1 + (fc.Peak-1)*float64(left)/float64(fc.Decay)
	default:
		return 1
	}
}

// Shift re-ranks model popularity at a point in time: from At on, Rank[i]
// gives the index (into Config.Models) of the i-th most popular model.
// Shifts model the mid-run popularity churn real serving sees — a newly
// launched model taking over the head of the Zipf curve.
type Shift struct {
	At   time.Duration
	Rank []int
}

// Config parameterizes one generator. Models and Rate are required; the
// rest defaults to a plain stationary Zipfian stream.
type Config struct {
	// Models are the model identifiers arrivals draw from.
	Models []string
	// Exponent is the Zipf skew s: the i-th ranked model gets weight
	// 1/(i+1)^s (default 1.1).
	Exponent float64
	// Rank is the initial popularity order: Rank[i] indexes Models for the
	// i-th most popular model (default: Models order).
	Rank []int
	// Rate is the baseline mean arrival rate in requests per (virtual)
	// second (default 100).
	Rate float64
	// Diurnal, Crowds and Shifts shape the stream over time.
	Diurnal Diurnal
	Crowds  []FlashCrowd
	Shifts  []Shift
	// Seed drives every random draw; equal seeds yield byte-identical
	// streams.
	Seed int64
}

func (c *Config) fill() {
	if c.Exponent == 0 {
		c.Exponent = 1.1
	}
	if c.Rate == 0 {
		c.Rate = 100
	}
	if len(c.Rank) == 0 {
		c.Rank = make([]int, len(c.Models))
		for i := range c.Rank {
			c.Rank[i] = i
		}
	}
}

// validRank reports whether rank is a permutation of [0, n).
func validRank(rank []int, n int) bool {
	if len(rank) != n {
		return false
	}
	seen := make([]bool, n)
	for _, r := range rank {
		if r < 0 || r >= n || seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}

func (c *Config) validate() error {
	var errs []error
	if len(c.Models) == 0 {
		errs = append(errs, errors.New("traffic: no models"))
	}
	if c.Rate < 0 || c.Exponent < 0 {
		errs = append(errs, errors.New("traffic: negative rate or exponent"))
	}
	if c.Diurnal.Amplitude < 0 || c.Diurnal.Amplitude >= 1 {
		if c.Diurnal.Amplitude != 0 {
			errs = append(errs, fmt.Errorf("traffic: diurnal amplitude %v outside [0,1)", c.Diurnal.Amplitude))
		}
	}
	if c.Diurnal.Amplitude > 0 && c.Diurnal.Period <= 0 {
		errs = append(errs, errors.New("traffic: diurnal amplitude without period"))
	}
	if !validRank(c.Rank, len(c.Models)) {
		errs = append(errs, fmt.Errorf("traffic: rank %v is not a permutation of %d models", c.Rank, len(c.Models)))
	}
	for i, s := range c.Shifts {
		if !validRank(s.Rank, len(c.Models)) {
			errs = append(errs, fmt.Errorf("traffic: shift %d rank %v is not a permutation of %d models", i, s.Rank, len(c.Models)))
		}
		if i > 0 && s.At < c.Shifts[i-1].At {
			errs = append(errs, fmt.Errorf("traffic: shift %d out of time order", i))
		}
	}
	for i, fc := range c.Crowds {
		if fc.Peak < 1 {
			errs = append(errs, fmt.Errorf("traffic: crowd %d peak %v < 1", i, fc.Peak))
		}
		if fc.Ramp <= 0 {
			errs = append(errs, fmt.Errorf("traffic: crowd %d needs a positive ramp", i))
		}
	}
	return errors.Join(errs...)
}

// Generator produces one arrival stream. It is a non-homogeneous Poisson
// process realized by thinning: candidate arrivals are drawn at the peak
// rate and accepted with probability rate(t)/peak, which keeps the draw
// count (and therefore determinism) independent of how the rate curve is
// composed.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	now    time.Duration
	cum    []float64 // cumulative Zipf weights by rank position
	rank   []int     // current popularity permutation
	shifts int       // shifts already applied
	lamMax float64   // thinning envelope, requests/second
}

// New validates cfg and returns a deterministic generator.
func New(cfg Config) (*Generator, error) {
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), rank: cfg.Rank}
	g.cum = make([]float64, len(cfg.Models))
	sum := 0.0
	for i := range cfg.Models {
		sum += 1 / math.Pow(float64(i+1), cfg.Exponent)
		g.cum[i] = sum
	}
	g.lamMax = cfg.Rate * (1 + cfg.Diurnal.Amplitude)
	for _, fc := range cfg.Crowds {
		if fc.Peak > 1 {
			g.lamMax *= fc.Peak
		}
	}
	return g, nil
}

// baseRate is the diurnal-modulated baseline rate at t, before crowds.
func (g *Generator) baseRate(t time.Duration) float64 {
	r := g.cfg.Rate
	if d := g.cfg.Diurnal; d.Amplitude > 0 {
		r *= 1 + d.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(d.Period))
	}
	return r
}

// RateAt returns the instantaneous arrival rate (requests per virtual
// second) at t, with every crowd applied. Exposed so tests and experiment
// configs can reason about the curve the stream realizes.
func (g *Generator) RateAt(t time.Duration) float64 {
	r := g.baseRate(t)
	for _, fc := range g.cfg.Crowds {
		r *= fc.multiplier(t)
	}
	return r
}

// pickModel draws a model from the current Zipf ranking.
func (g *Generator) pickModel() string {
	u := g.rng.Float64() * g.cum[len(g.cum)-1]
	for pos, c := range g.cum {
		if u <= c {
			return g.cfg.Models[g.rank[pos]]
		}
	}
	return g.cfg.Models[g.rank[len(g.rank)-1]]
}

// Next returns the next arrival. Every call advances virtual time; the
// stream never ends.
func (g *Generator) Next() Request {
	for {
		// Exponential inter-arrival at the envelope rate.
		gap := g.rng.ExpFloat64() / g.lamMax
		g.now += time.Duration(gap * float64(time.Second))
		for g.shifts < len(g.cfg.Shifts) && g.now >= g.cfg.Shifts[g.shifts].At {
			g.rank = g.cfg.Shifts[g.shifts].Rank
			g.shifts++
		}
		base := g.baseRate(g.now)
		full := base
		var surge *FlashCrowd
		for i := range g.cfg.Crowds {
			m := g.cfg.Crowds[i].multiplier(g.now)
			full *= m
			if m > 1 && g.cfg.Crowds[i].Model != "" {
				surge = &g.cfg.Crowds[i]
			}
		}
		if g.rng.Float64()*g.lamMax > full {
			continue // thinned: the candidate fell above the rate curve
		}
		model := ""
		if surge != nil && g.rng.Float64() < (full-base)/full {
			// This arrival exists only because of the surge; it targets the
			// crowd's model.
			model = surge.Model
		} else {
			model = g.pickModel()
		}
		return Request{At: g.now, Model: model}
	}
}

// Generate returns the next n arrivals.
func (g *Generator) Generate(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
