package sim

// Chan is a single-producer single-consumer FIFO channel in virtual time,
// mirroring the SPSC channels PASK uses to join its parsing, loading and
// issuing host threads (paper §III-D). Send blocks while the buffer is full;
// Recv blocks while it is empty. Close releases a blocked receiver.
//
// Capacity 0 requests a rendezvous; it is modeled as capacity 1 plus the
// sender waiting until the item is taken, which has identical timing under
// the SPSC discipline.
type Chan[T any] struct {
	env      *Env
	buf      []T
	capacity int
	closed   bool

	sendWaiter *Proc // producer blocked on full buffer
	recvWaiter *Proc // consumer blocked on empty buffer
	rendezvous bool
}

// NewChan returns a channel with the given buffer capacity (>= 0).
func NewChan[T any](env *Env, capacity int) *Chan[T] {
	c := &Chan[T]{env: env, capacity: capacity}
	if capacity == 0 {
		c.capacity = 1
		c.rendezvous = true
	}
	return c
}

// Len returns the number of buffered items.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Send enqueues v, blocking p while the buffer is full. Sending on a closed
// channel panics, as with native Go channels.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.closed {
		panic("sim: send on closed Chan")
	}
	if len(c.buf) == c.capacity {
		if c.sendWaiter != nil {
			panic("sim: concurrent senders on SPSC Chan")
		}
		c.sendWaiter = p
		p.park()
		if c.closed {
			panic("sim: send on closed Chan")
		}
	}
	c.buf = append(c.buf, v)
	if c.recvWaiter != nil {
		w := c.recvWaiter
		c.recvWaiter = nil
		c.env.unpark(w)
	}
	if c.rendezvous {
		// Wait for the consumer to take the item, emulating an unbuffered
		// handoff.
		for len(c.buf) > 0 && !c.closed {
			if c.sendWaiter != nil {
				panic("sim: concurrent senders on SPSC Chan")
			}
			c.sendWaiter = p
			p.park()
		}
	}
}

// Recv dequeues the oldest item, blocking p while the buffer is empty. The
// second result is false when the channel is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (T, bool) {
	var zero T
	for len(c.buf) == 0 {
		if c.closed {
			return zero, false
		}
		if c.recvWaiter != nil {
			panic("sim: concurrent receivers on SPSC Chan")
		}
		c.recvWaiter = p
		p.park()
	}
	v := c.buf[0]
	c.buf = c.buf[1:]
	if c.sendWaiter != nil {
		w := c.sendWaiter
		c.sendWaiter = nil
		c.env.unpark(w)
	}
	return v, true
}

// TryRecv dequeues without blocking. ok is false if the buffer is empty.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	var zero T
	if len(c.buf) == 0 {
		return zero, false
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	if c.sendWaiter != nil {
		w := c.sendWaiter
		c.sendWaiter = nil
		c.env.unpark(w)
	}
	return v, true
}

// Close marks the channel closed and wakes a blocked receiver (which then
// observes the closed state) and a blocked rendezvous sender.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.recvWaiter != nil {
		w := c.recvWaiter
		c.recvWaiter = nil
		c.env.unpark(w)
	}
	if c.sendWaiter != nil {
		w := c.sendWaiter
		c.sendWaiter = nil
		c.env.unpark(w)
	}
}
