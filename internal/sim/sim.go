// Package sim implements a deterministic, cooperative, process-based
// discrete-event simulation engine in virtual time.
//
// The engine is the substrate for the whole PASK reproduction — the
// substitution that replaces the paper's ROCm testbed with virtual time: host
// threads (the §III-A parser / loader / issuer), the GPU command streams, the
// storage backend and the inference server are all sim processes. Exactly one goroutine (either
// the scheduler or the currently running process) executes at any instant, so
// runs are fully deterministic: events at equal timestamps are ordered by
// creation sequence.
//
// A process is an ordinary function receiving a *Proc handle. It advances
// virtual time with Proc.Sleep and synchronizes with other processes through
// Signal, Resource and Chan, all of which block in virtual time only.
//
// Paper anchor: the substitution for the paper's §IV ROCm testbed — every measured quantity becomes virtual time here.
package sim

import (
	"fmt"
	"runtime/debug"
	"slices"
	"time"
)

// event is a scheduled resumption of a process.
type event struct {
	at  time.Duration
	seq int64
	p   *Proc
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). The
// sift loops are written out instead of delegating to container/heap
// because heap.Push boxes each event into an interface — one heap
// allocation per Sleep, the single hottest allocation site of the whole
// simulator. (at, seq) is a strict total order (seq is unique), so pop
// order — and with it run determinism — is identical to the generic heap.
type eventHeap []event

func (h eventHeap) Len() int    { return len(h) }
func (h eventHeap) peek() event { return h[0] }

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) pushEvent(e event) {
	*h = append(*h, e)
	q := *h
	// Sift up.
	for j := len(q) - 1; j > 0; {
		i := (j - 1) / 2
		if !q.less(j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (h *eventHeap) popEvent() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	*h = q[:n]
	q = q[:n]
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && q.less(r, l) {
			j = r
		}
		if !q.less(j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	return top
}

// yieldMsg is the handoff from a process goroutine back to the scheduler.
type yieldMsg struct {
	p     *Proc
	done  bool
	panic any
	stack []byte
}

// Env is a simulation environment: a virtual clock plus an event calendar.
// The zero value is not usable; construct with NewEnv.
type Env struct {
	now     time.Duration
	seq     int64
	q       eventHeap
	yield   chan yieldMsg
	procs   map[*Proc]struct{}
	running bool
	stopped bool

	// OnDispatch, when set, observes every event-loop dispatch: the virtual
	// time, the process about to resume and the number of events still
	// queued. The tracing layer samples queue depth through it. It runs on
	// the scheduler goroutine and must not call back into the environment.
	OnDispatch func(at time.Duration, proc string, queueLen int)
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan yieldMsg),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// nextSeq hands out monotonically increasing sequence numbers used to break
// ties between events scheduled for the same instant.
func (e *Env) nextSeq() int64 {
	e.seq++
	return e.seq
}

// Proc is the handle a process uses to interact with the environment. A Proc
// is only valid inside the function it was passed to; sharing it with another
// process is a programming error.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	parked bool // blocked with no scheduled event; woken only by unpark
	dead   bool
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Spawn registers fn as a new process that starts at the current virtual
// time. It may be called before Run or from inside a running process.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt registers fn as a new process that starts at time t, which must not
// be in the past.
func (e *Env) SpawnAt(t time.Duration, name string, fn func(p *Proc)) *Proc {
	if t < e.now {
		panic(fmt.Sprintf("sim: SpawnAt(%v) in the past (now %v)", t, e.now))
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			m := yieldMsg{p: p, done: true}
			if r := recover(); r != nil {
				m.panic = r
				m.stack = debug.Stack()
			}
			e.yield <- m
		}()
		fn(p)
	}()
	e.q.pushEvent(event{at: t, seq: e.nextSeq(), p: p})
	return p
}

// yieldToScheduler transfers control from the running process back to the
// scheduler and blocks until the scheduler resumes this process.
func (p *Proc) yieldToScheduler() {
	p.env.yield <- yieldMsg{p: p}
	<-p.resume
}

// Sleep advances the process by d of virtual time. d must be non-negative;
// Sleep(0) yields to other processes scheduled at the same instant.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Sleep(%v) negative duration", d))
	}
	e := p.env
	e.q.pushEvent(event{at: e.now + d, seq: e.nextSeq(), p: p})
	p.yieldToScheduler()
}

// SleepUntil advances the process to absolute virtual time t (no-op if t is
// not after the current time).
func (p *Proc) SleepUntil(t time.Duration) {
	if t <= p.env.now {
		return
	}
	p.Sleep(t - p.env.now)
}

// park blocks the process until another process calls unpark on it. Used by
// the synchronization primitives in this package.
func (p *Proc) park() {
	p.parked = true
	p.yieldToScheduler()
}

// unpark schedules a parked process to resume at the current time. It must
// only be called for a process that is parked (or about to park in the same
// scheduling step, which cannot happen because execution is cooperative).
func (e *Env) unpark(p *Proc) {
	if !p.parked {
		panic("sim: unpark of process " + p.name + " that is not parked")
	}
	p.parked = false
	e.q.pushEvent(event{at: e.now, seq: e.nextSeq(), p: p})
}

// DeadlockError reports that the event calendar drained while processes were
// still blocked on synchronization primitives.
type DeadlockError struct {
	At      time.Duration
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: blocked processes %v", d.At, d.Blocked)
}

// PanicError wraps a panic raised inside a process.
type PanicError struct {
	Proc  string
	Value any
	Stack string
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v\n%s", p.Proc, p.Value, p.Stack)
}

// Run executes events until the calendar is empty. It returns a
// *DeadlockError if blocked processes remain, or a *PanicError if a process
// panicked.
func (e *Env) Run() error { return e.run(-1) }

// RunUntil executes events up to and including virtual time horizon, then
// advances the clock to horizon and returns. Processes scheduled later stay
// scheduled; a subsequent Run or RunUntil continues them.
func (e *Env) RunUntil(horizon time.Duration) error { return e.run(horizon) }

func (e *Env) run(horizon time.Duration) error {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.q.Len() > 0 {
		if horizon >= 0 && e.q.peek().at > horizon {
			e.now = horizon
			return nil
		}
		ev := e.q.popEvent()
		if ev.p.dead {
			continue
		}
		e.now = ev.at
		if e.OnDispatch != nil {
			e.OnDispatch(ev.at, ev.p.name, e.q.Len())
		}
		ev.p.resume <- struct{}{}
		m := <-e.yield
		if m.done {
			m.p.dead = true
			delete(e.procs, m.p)
			if m.panic != nil {
				return &PanicError{Proc: m.p.name, Value: m.panic, Stack: string(m.stack)}
			}
		}
	}
	if horizon >= 0 && horizon > e.now {
		e.now = horizon
	}
	if len(e.procs) > 0 {
		var blocked []string
		for p := range e.procs {
			blocked = append(blocked, p.name)
		}
		slices.Sort(blocked)
		return &DeadlockError{At: e.now, Blocked: blocked}
	}
	return nil
}
