package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv()
	var at time.Duration
	e.Spawn("p", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", at)
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("final clock %v, want 5ms", e.Now())
	}
}

func TestSleepZeroYields(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) { p.Sleep(-1) })
	err := e.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}

func TestDeterministicTieBreakBySpawnOrder(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		e := NewEnv()
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(time.Millisecond)
				order = append(order, i)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("trial %d: order = %v, want ascending", trial, order)
			}
		}
	}
}

func TestSpawnAtFuture(t *testing.T) {
	e := NewEnv()
	var at time.Duration
	e.SpawnAt(3*time.Second, "late", func(p *Proc) { at = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*time.Second {
		t.Fatalf("started at %v, want 3s", at)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEnv()
	var childAt time.Duration
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childAt = c.Now()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 2*time.Second {
		t.Fatalf("child finished at %v, want 2s", childAt)
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	e := NewEnv()
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Second)
			ticks++
		}
	})
	if err := e.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want 10s", e.Now())
	}
	// Continue to completion.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 100 {
		t.Fatalf("ticks after full run = %d, want 100", ticks)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEnv()
	if err := e.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if e.Now() != time.Minute {
		t.Fatalf("clock = %v, want 1m", e.Now())
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEnv()
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("boom")
	})
	err := e.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.Proc != "bad" || pe.Value != "boom" {
		t.Fatalf("PanicError = %+v", pe)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	e.Spawn("waiter", func(p *Proc) { s.Wait(p) })
	err := e.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "waiter" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestSignalWakesAllWaitersFIFO(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			s.Wait(p)
			order = append(order, name)
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(time.Second)
		s.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"w1", "w2", "w3"}) {
		t.Fatalf("wake order = %v", order)
	}
	if s.FiredAt() != time.Second {
		t.Fatalf("FiredAt = %v", s.FiredAt())
	}
}

func TestSignalWaitAfterFireReturnsImmediately(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	s.Fire()
	var waited time.Duration
	e.Spawn("late", func(p *Proc) {
		start := p.Now()
		s.Wait(p)
		waited = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waited != 0 {
		t.Fatalf("waited %v, want 0", waited)
	}
}

func TestSignalDoubleFireNoop(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	s.Fire()
	s.Fire()
	if !s.Fired() {
		t.Fatal("signal should be fired")
	}
}

func TestResourceSerializesCriticalSection(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	var spans [][2]time.Duration
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Acquire(p)
			start := p.Now()
			p.Sleep(10 * time.Millisecond)
			spans = append(spans, [2]time.Duration{start, p.Now()})
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 4 {
		t.Fatalf("got %d spans", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i][0] < spans[i-1][1] {
			t.Fatalf("spans overlap: %v", spans)
		}
	}
	if e.Now() != 40*time.Millisecond {
		t.Fatalf("total = %v, want 40ms", e.Now())
	}
}

func TestResourceCapacityTwoAllowsOverlap(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 2)
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * time.Millisecond)
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("total = %v, want 20ms with capacity 2", e.Now())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	var order []int
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(time.Second)
		r.Release()
	})
	for i := 0; i < 5; i++ {
		i := i
		e.SpawnAt(time.Duration(i+1)*time.Millisecond, fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) {
		t.Fatalf("order = %v, want FIFO", order)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEnv()
	r := NewResource(e, 1)
	r.Release()
}

func TestResourceUse(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	e.Spawn("u", func(p *Proc) {
		r.Use(p, func() {
			if r.InUse() != 1 {
				t.Errorf("InUse inside Use = %d", r.InUse())
			}
		})
		if r.InUse() != 0 {
			t.Errorf("InUse after Use = %d", r.InUse())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanFIFONoLoss(t *testing.T) {
	e := NewEnv()
	c := NewChan[int](e, 3)
	const n = 50
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(time.Duration(i%3) * time.Millisecond)
			c.Send(p, i)
		}
		c.Close()
	})
	e.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := c.Recv(p)
			if !ok {
				return
			}
			p.Sleep(2 * time.Millisecond)
			got = append(got, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestChanSendBlocksWhenFull(t *testing.T) {
	e := NewEnv()
	c := NewChan[int](e, 1)
	var sentSecondAt time.Duration
	e.Spawn("producer", func(p *Proc) {
		c.Send(p, 1)
		c.Send(p, 2) // must block until consumer takes item 1 at t=5ms
		sentSecondAt = p.Now()
	})
	e.Spawn("consumer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		c.Recv(p)
		p.Sleep(5 * time.Millisecond)
		c.Recv(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sentSecondAt != 5*time.Millisecond {
		t.Fatalf("second send completed at %v, want 5ms", sentSecondAt)
	}
}

func TestChanRecvBlocksWhenEmpty(t *testing.T) {
	e := NewEnv()
	c := NewChan[string](e, 4)
	var recvAt time.Duration
	e.Spawn("consumer", func(p *Proc) {
		c.Recv(p)
		recvAt = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		c.Send(p, "x")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != 7*time.Millisecond {
		t.Fatalf("recv completed at %v, want 7ms", recvAt)
	}
}

func TestChanCloseReleasesReceiver(t *testing.T) {
	e := NewEnv()
	c := NewChan[int](e, 2)
	var ok bool
	var done bool
	e.Spawn("consumer", func(p *Proc) {
		_, ok = c.Recv(p)
		done = true
	})
	e.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done || ok {
		t.Fatalf("done=%v ok=%v, want done and !ok", done, ok)
	}
}

func TestChanDrainAfterClose(t *testing.T) {
	e := NewEnv()
	c := NewChan[int](e, 4)
	var got []int
	e.Spawn("p", func(p *Proc) {
		c.Send(p, 1)
		c.Send(p, 2)
		c.Close()
		for {
			v, ok := c.Recv(p)
			if !ok {
				break
			}
			got = append(got, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestChanSendOnClosedPanics(t *testing.T) {
	e := NewEnv()
	c := NewChan[int](e, 1)
	c.Close()
	e.Spawn("p", func(p *Proc) { c.Send(p, 1) })
	err := e.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}

func TestChanRendezvous(t *testing.T) {
	e := NewEnv()
	c := NewChan[int](e, 0)
	var sendDone, recvDone time.Duration
	e.Spawn("producer", func(p *Proc) {
		c.Send(p, 42)
		sendDone = p.Now()
	})
	e.Spawn("consumer", func(p *Proc) {
		p.Sleep(9 * time.Millisecond)
		v, ok := c.Recv(p)
		if !ok || v != 42 {
			t.Errorf("recv = %d,%v", v, ok)
		}
		recvDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != 9*time.Millisecond || recvDone != 9*time.Millisecond {
		t.Fatalf("sendDone=%v recvDone=%v, want both 9ms", sendDone, recvDone)
	}
}

func TestChanTryRecv(t *testing.T) {
	e := NewEnv()
	c := NewChan[int](e, 2)
	e.Spawn("p", func(p *Proc) {
		if _, ok := c.TryRecv(); ok {
			t.Error("TryRecv on empty chan returned ok")
		}
		c.Send(p, 7)
		v, ok := c.TryRecv()
		if !ok || v != 7 {
			t.Errorf("TryRecv = %d,%v", v, ok)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineTiming models the paper's three-stage parse/load/issue pipeline
// and checks the makespan equals the analytic pipelined schedule rather than
// the serial sum, i.e. the engine really lets stages overlap.
func TestPipelineTiming(t *testing.T) {
	e := NewEnv()
	const n = 8
	parse, load, exec := 1*time.Millisecond, 10*time.Millisecond, 3*time.Millisecond
	parsed := NewChan[int](e, n)
	loaded := NewChan[int](e, n)
	e.Spawn("parser", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(parse)
			parsed.Send(p, i)
		}
		parsed.Close()
	})
	e.Spawn("loader", func(p *Proc) {
		for {
			v, ok := parsed.Recv(p)
			if !ok {
				loaded.Close()
				return
			}
			p.Sleep(load)
			loaded.Send(p, v)
		}
	})
	e.Spawn("issuer", func(p *Proc) {
		for {
			_, ok := loaded.Recv(p)
			if !ok {
				return
			}
			p.Sleep(exec)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Loader is the bottleneck: parse(1) + n*load + final exec.
	want := parse + time.Duration(n)*load + exec
	if e.Now() != want {
		t.Fatalf("makespan = %v, want %v", e.Now(), want)
	}
}

// Property: for any set of sleep durations, processes complete in
// (time, spawn-order) order and the final clock equals the max duration.
func TestCompletionOrderProperty(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		e := NewEnv()
		type done struct {
			at  time.Duration
			idx int
		}
		var finished []done
		var maxD time.Duration
		for i, r := range raw {
			d := time.Duration(r) * time.Microsecond
			if d > maxD {
				maxD = d
			}
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				finished = append(finished, done{p.Now(), i})
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		if e.Now() != maxD {
			return false
		}
		for i := 1; i < len(finished); i++ {
			a, b := finished[i-1], finished[i]
			if a.at > b.at {
				return false
			}
			if a.at == b.at && a.idx > b.idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a randomized producer/consumer pair over an SPSC Chan never
// reorders, drops or duplicates items, for any capacity and random delays.
func TestChanFIFOProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		n := int(nRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		pd := make([]time.Duration, n)
		cd := make([]time.Duration, n)
		for i := range pd {
			pd[i] = time.Duration(rng.Intn(1000)) * time.Microsecond
			cd[i] = time.Duration(rng.Intn(1000)) * time.Microsecond
		}
		e := NewEnv()
		c := NewChan[int](e, capacity)
		var got []int
		e.Spawn("producer", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(pd[i])
				c.Send(p, i)
			}
			c.Close()
		})
		e.Spawn("consumer", func(p *Proc) {
			for i := 0; ; i++ {
				v, ok := c.Recv(p)
				if !ok {
					return
				}
				p.Sleep(cd[i%n])
				got = append(got, v)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: two identical runs produce identical event timings (determinism).
func TestDeterminismProperty(t *testing.T) {
	run := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		e := NewEnv()
		r := NewResource(e, 2)
		c := NewChan[int](e, 3)
		var stamps []time.Duration
		for i := 0; i < 6; i++ {
			d := time.Duration(rng.Intn(500)) * time.Microsecond
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				r.Acquire(p)
				p.Sleep(d)
				r.Release()
				c.Send(p, 1)
				stamps = append(stamps, p.Now())
			})
		}
		e.Spawn("drain", func(p *Proc) {
			for i := 0; i < 6; i++ {
				c.Recv(p)
				p.Sleep(50 * time.Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			panic(err)
		}
		return stamps
	}
	f := func(seed int64) bool {
		return reflect.DeepEqual(run(seed), run(seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnAtPastPanics(t *testing.T) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) {
		p.Sleep(time.Second)
		defer func() {
			if recover() == nil {
				t.Error("expected panic for SpawnAt in the past")
			}
		}()
		e.SpawnAt(time.Millisecond, "late", func(*Proc) {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSleepUntilNoopInPast(t *testing.T) {
	e := NewEnv()
	var woke time.Duration
	e.Spawn("p", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.SleepUntil(5 * time.Millisecond) // already past: no-op
		woke = p.Now()
		p.SleepUntil(20 * time.Millisecond)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 20*time.Millisecond {
		t.Fatalf("woke at %v", woke)
	}
}

func TestProcNameAndEnvAccessors(t *testing.T) {
	e := NewEnv()
	e.Spawn("worker", func(p *Proc) {
		if p.Name() != "worker" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Env() != e {
			t.Error("Env accessor wrong")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: with a capacity-c resource and n unit-time jobs, the makespan is
// exactly ceil(n/c) time units — the engine implements an exact c-server
// queue.
func TestResourceMakespanProperty(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%20) + 1
		c := int(cRaw%4) + 1
		e := NewEnv()
		r := NewResource(e, c)
		for i := 0; i < n; i++ {
			e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
				r.Acquire(p)
				p.Sleep(time.Millisecond)
				r.Release()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		want := time.Duration((n+c-1)/c) * time.Millisecond
		return e.Now() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
