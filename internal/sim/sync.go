package sim

import "time"

// Signal is a one-shot broadcast event in virtual time. Processes block on
// Wait until Fire is called; waiters arriving after Fire return immediately.
// Signals are the completion notifications used throughout the stack (module
// load finished, kernel finished, stream drained).
type Signal struct {
	env     *Env
	fired   bool
	firedAt time.Duration
	waiters []*Proc
}

// NewSignal returns an unfired signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Fired reports whether the signal has been fired.
func (s *Signal) Fired() bool { return s.fired }

// FiredAt returns the virtual time Fire was called; zero if not fired.
func (s *Signal) FiredAt() time.Duration { return s.firedAt }

// Fire marks the signal fired and wakes all current waiters in FIFO order.
// Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	s.firedAt = s.env.now
	for _, w := range s.waiters {
		s.env.unpark(w)
	}
	s.waiters = nil
}

// Wait blocks p until the signal fires. Returns immediately if already fired.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// Resource is a counting FIFO resource (e.g. a driver lock with capacity 1 or
// a disk with limited parallelism). Acquire blocks in virtual time when the
// resource is exhausted; Release hands a slot to the longest waiter.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []*Proc
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, capacity: capacity}
}

// Capacity returns the total number of slots.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of slots currently held.
func (r *Resource) InUse() int { return r.inUse }

// Waiting returns the number of processes queued for a slot.
func (r *Resource) Waiting() int { return len(r.waiters) }

// Acquire takes one slot, blocking p in FIFO order while none is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
	// The releaser transferred its slot to us: inUse stays constant across
	// the handoff and was incremented on our behalf in Release.
}

// Release frees one slot. If processes are waiting the slot transfers
// directly to the head waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.env.unpark(w) // slot transfers: inUse unchanged
		return
	}
	r.inUse--
}

// Use runs fn while holding one slot of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}
