package cacheimg

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/warmup"
)

// fixture builds a code-object store with three objects and a recorded-style
// manifest referencing two of them.
func fixture(t *testing.T) (*codeobj.Store, *warmup.Manifest) {
	t.Helper()
	store := codeobj.NewStore()
	store.Put("conv/a.pko", []byte("kernel-a-bytes"))
	store.Put("conv/b.pko", []byte("kernel-b-bytes-longer"))
	store.Put("gemm/c.pko", []byte("kernel-c"))
	man := &warmup.Manifest{
		Version: warmup.Version, Model: "alex", Batch: 4,
		Device: "MI100", Arch: "gfx908",
	}
	for _, p := range []string{"conv/a.pko", "conv/b.pko"} {
		data, err := store.Get(p)
		if err != nil {
			t.Fatalf("fixture get %s: %v", p, err)
		}
		man.Entries = append(man.Entries, warmup.Entry{
			Path: p, Checksum: warmup.Checksum(data), Bytes: len(data), Kind: "solution",
		})
	}
	return store, man
}

func mi100() device.Profile { return device.MI100() }

func buildImage(t *testing.T) (*Image, *codeobj.Store) {
	t.Helper()
	store, man := fixture(t)
	img, err := Build(man, store)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return img, store
}

func TestBuildRoundTrip(t *testing.T) {
	img, store := buildImage(t)
	if len(img.Objects) != 2 {
		t.Fatalf("expected 2 objects, got %d", len(img.Objects))
	}
	if img.StoreFingerprint != store.Fingerprint() {
		t.Fatalf("fingerprint not sealed")
	}
	raw, err := img.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Model != "alex" || got.Device != "MI100" || got.Arch != "gfx908" || got.Batch != 4 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.StoreFingerprint != img.StoreFingerprint {
		t.Fatalf("fingerprint mismatch")
	}
	if len(got.Manifest.Entries) != 2 || got.Manifest.Entries[0].Path != "conv/a.pko" {
		t.Fatalf("manifest mismatch: %+v", got.Manifest)
	}
	if len(got.Objects) != 2 || string(got.Objects[0].Data) != "kernel-a-bytes" {
		t.Fatalf("objects mismatch: %+v", got.Objects)
	}
	// Canonical encoding: same image, same bytes, same content address.
	again, err := got.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if ID(raw) != ID(again) {
		t.Fatalf("content address not stable: %s vs %s", ID(raw), ID(again))
	}
}

func TestBuildRejectsDriftedStore(t *testing.T) {
	store, man := fixture(t)
	store.Put("conv/a.pko", []byte("mutated"))
	if _, err := Build(man, store); err == nil {
		t.Fatal("Build accepted an object that changed since the profile was recorded")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	img, _ := buildImage(t)
	raw, err := img.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"flipped body byte", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }},
		{"flipped trailer", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
	}
	for _, tc := range cases {
		cp := make([]byte, len(raw))
		copy(cp, raw)
		if _, err := Decode(tc.mut(cp)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", tc.name, err)
		}
	}
}

func TestDecodeRejectsNewerVersion(t *testing.T) {
	img, _ := buildImage(t)
	img.Version = Version + 1
	raw, err := img.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(raw); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestMatchesAndFingerprint(t *testing.T) {
	img, store := buildImage(t)
	if err := img.Matches(mi100()); err != nil {
		t.Fatalf("Matches(MI100): %v", err)
	}
	if err := img.Matches(device.A100()); !errors.Is(err, ErrProfileMismatch) {
		t.Fatalf("want ErrProfileMismatch, got %v", err)
	}
	if err := img.CheckFingerprint(store.Fingerprint()); err != nil {
		t.Fatalf("CheckFingerprint: %v", err)
	}
	if err := img.CheckFingerprint(store.Fingerprint() + 1); !errors.Is(err, ErrStale) {
		t.Fatalf("want ErrStale, got %v", err)
	}
}

func TestStorePublishAttach(t *testing.T) {
	img, costore := buildImage(t)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	id, err := s.Publish(img)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	infos, err := s.List()
	if err != nil || len(infos) != 1 || infos[0].ID != id {
		t.Fatalf("List: %v %+v", err, infos)
	}
	att, err := s.Attach("alex", mi100(), costore.Fingerprint())
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if att.ID != id || len(att.Image.Manifest.Entries) != 2 {
		t.Fatalf("unexpected attach: %+v", att)
	}
	if got := s.Stats(); got.AttachOK != 1 || got.Published != 1 {
		t.Fatalf("stats: %+v", got)
	}
}

func TestAttachLadder(t *testing.T) {
	img, costore := buildImage(t)
	fp := costore.Fingerprint()

	t.Run("no image", func(t *testing.T) {
		s, _ := Open(t.TempDir())
		if _, err := s.Attach("alex", mi100(), fp); !errors.Is(err, ErrNoImage) {
			t.Fatalf("want ErrNoImage, got %v", err)
		}
		if s.Stats().NoImage != 1 {
			t.Fatalf("stats: %+v", s.Stats())
		}
	})

	t.Run("other model skipped", func(t *testing.T) {
		s, _ := Open(t.TempDir())
		if _, err := s.Publish(img); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Attach("res", mi100(), fp); !errors.Is(err, ErrNoImage) {
			t.Fatalf("want ErrNoImage, got %v", err)
		}
	})

	t.Run("profile mismatch rejected", func(t *testing.T) {
		s, _ := Open(t.TempDir())
		if _, err := s.Publish(img); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Attach("alex", device.A100(), fp); !errors.Is(err, ErrProfileMismatch) {
			t.Fatalf("want ErrProfileMismatch, got %v", err)
		}
		if s.Stats().RejectedProfile != 1 {
			t.Fatalf("stats: %+v", s.Stats())
		}
	})

	t.Run("stale fingerprint", func(t *testing.T) {
		s, _ := Open(t.TempDir())
		if _, err := s.Publish(img); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Attach("alex", mi100(), fp+1); !errors.Is(err, ErrStale) {
			t.Fatalf("want ErrStale, got %v", err)
		}
		if s.Stats().Stale != 1 {
			t.Fatalf("stats: %+v", s.Stats())
		}
	})

	t.Run("corrupt bytes quarantined", func(t *testing.T) {
		s, _ := Open(t.TempDir())
		raw, _ := img.Encode()
		id := ID(raw)
		raw[len(raw)/2] ^= 0x01
		if err := s.PublishBytes(id, raw); err != nil {
			t.Fatalf("PublishBytes: %v", err)
		}
		if _, err := s.Attach("alex", mi100(), fp); !errors.Is(err, ErrNoImage) {
			t.Fatalf("want ErrNoImage after quarantine, got %v", err)
		}
		if s.Stats().Quarantined != 1 {
			t.Fatalf("stats: %+v", s.Stats())
		}
		// The damaged image was renamed aside: a second attach never sees it.
		if _, err := s.Attach("alex", mi100(), fp); !errors.Is(err, ErrNoImage) {
			t.Fatalf("second attach: %v", err)
		}
		if s.Stats().Quarantined != 1 {
			t.Fatalf("quarantined twice: %+v", s.Stats())
		}
		ents, _ := os.ReadDir(s.Dir())
		var q int
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), quarantineExt) {
				q++
			}
		}
		if q != 1 {
			t.Fatalf("expected 1 quarantined file, found %d", q)
		}
	})

	t.Run("misnamed image quarantined", func(t *testing.T) {
		s, _ := Open(t.TempDir())
		raw, _ := img.Encode()
		if err := s.PublishBytes("0123456789abcdef", raw); err != nil {
			t.Fatalf("PublishBytes: %v", err)
		}
		if _, err := s.Attach("alex", mi100(), fp); !errors.Is(err, ErrNoImage) {
			t.Fatalf("want ErrNoImage, got %v", err)
		}
		if s.Stats().Quarantined != 1 {
			t.Fatalf("stats: %+v", s.Stats())
		}
	})

	t.Run("corrupt alongside valid falls through to attach", func(t *testing.T) {
		s, _ := Open(t.TempDir())
		raw, _ := img.Encode()
		bad := make([]byte, len(raw))
		copy(bad, raw)
		bad[len(bad)-1] ^= 0x01
		if err := s.PublishBytes("00ffee0011223344", bad); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Publish(img); err != nil {
			t.Fatal(err)
		}
		att, err := s.Attach("alex", mi100(), fp)
		if err != nil {
			t.Fatalf("Attach: %v", err)
		}
		if att.Image.Model != "alex" {
			t.Fatalf("unexpected attach: %+v", att)
		}
		st := s.Stats()
		if st.Quarantined != 1 || st.AttachOK != 1 {
			t.Fatalf("stats: %+v", st)
		}
	})
}

func TestOpenSweepsTornTempFiles(t *testing.T) {
	dir := t.TempDir()
	torn := filepath.Join(dir, tmpPrefix+"12345")
	if err := os.WriteFile(torn, []byte("half an image"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s.Stats().TornCleaned != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn temp file survived Open: %v", err)
	}
}

func TestPublishRejectsPathTraversal(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.PublishBytes("../evil", []byte("x")); err == nil {
		t.Fatal("PublishBytes accepted a path-traversal id")
	}
}
