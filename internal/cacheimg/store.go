package cacheimg

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pask/internal/device"
)

// imageExt is the on-disk suffix of a published image; quarantined images
// are renamed to quarantineExt so a later attach scan never re-reads them.
const (
	imageExt      = ".pki"
	quarantineExt = ".quarantined"
	tmpPrefix     = ".tmp-"
)

// Stats counts every outcome the store has produced. All counters are
// monotonic; the serving layer and /metrics surface them directly.
type Stats struct {
	Published       int `json:"published"`        // images atomically published
	AttachOK        int `json:"attach_ok"`        // successful attaches
	RejectedProfile int `json:"rejected_profile"` // healthy image, wrong device
	Quarantined     int `json:"quarantined"`      // corrupt or misnamed, renamed aside
	Stale           int `json:"stale"`            // store fingerprint drifted
	NoImage         int `json:"no_image"`         // attach found no candidate
	TornCleaned     int `json:"torn_cleaned"`     // crash leftovers removed at open
}

// Info describes one published image without decoding its payload.
type Info struct {
	ID    string `json:"id"`
	Bytes int64  `json:"bytes"`
}

// Attached is a successful attach: the image plus the content address it
// was served under.
type Attached struct {
	ID    string
	Image *Image
}

// Store is a node-local cache-image directory. Publish is atomic (temp
// file in the same directory, then rename), so a reader can never observe
// a torn image under a published name; whatever a crash leaves behind is a
// tmpPrefix file that Open sweeps.
//
// No locking: in the simulation each node owns its store and procs are
// cooperative; outside it, the rename-based protocol is already safe
// against concurrent readers.
type Store struct {
	dir   string
	stats Stats
}

// Open creates (if needed) and opens the image directory, sweeping torn
// temp files left by a crash mid-publish.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cacheimg: open store: %w", err)
	}
	s := &Store{dir: dir}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cacheimg: open store: %w", err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			if os.Remove(filepath.Join(dir, e.Name())) == nil {
				s.stats.TornCleaned++
			}
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats { return s.stats }

// writeAtomic lands raw at path via a same-directory temp file + rename.
func (s *Store) writeAtomic(path string, raw []byte) error {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("cacheimg: publish: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("cacheimg: publish: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("cacheimg: publish: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("cacheimg: publish: %w", err)
	}
	return nil
}

// Publish encodes the image and lands it atomically under its content
// address, returning the ID.
func (s *Store) Publish(img *Image) (string, error) {
	raw, err := img.Encode()
	if err != nil {
		return "", err
	}
	id := ID(raw)
	if err := s.writeAtomic(filepath.Join(s.dir, id+imageExt), raw); err != nil {
		return "", err
	}
	s.stats.Published++
	return id, nil
}

// PublishBytes lands already-encoded bytes under an advertised ID without
// verifying them — the wire side of distribution. A transfer that corrupted
// the bytes still lands (atomically), and the damage is caught on attach,
// where the content address no longer matches the name.
func (s *Store) PublishBytes(id string, raw []byte) error {
	if id == "" || strings.ContainsAny(id, "/\\") {
		return fmt.Errorf("cacheimg: publish: invalid id %q", id)
	}
	if err := s.writeAtomic(filepath.Join(s.dir, id+imageExt), raw); err != nil {
		return err
	}
	s.stats.Published++
	return nil
}

// List returns the published images, sorted by ID.
func (s *Store) List() ([]Info, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("cacheimg: list: %w", err)
	}
	var out []Info
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, imageExt) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, Info{ID: strings.TrimSuffix(name, imageExt), Bytes: fi.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// quarantine renames a damaged image aside so no future attach re-reads it.
func (s *Store) quarantine(path string) {
	if os.Rename(path, path+quarantineExt) == nil {
		s.stats.Quarantined++
	}
}

// Attach scans the store for an image for model and walks each candidate
// down the validation ladder (DESIGN.md §14):
//
//  1. content address vs. filename, then structural decode and digests —
//     any mismatch quarantines the image and the scan continues;
//  2. model match — images for other models are skipped silently;
//  3. device profile — a mismatch is a typed reject (ErrProfileMismatch);
//  4. store fingerprint — drift is ErrStale;
//  5. otherwise the image attaches.
//
// When no candidate survives, the first typed rejection encountered is
// returned so callers can distinguish "wrong image" from "no image"
// (ErrNoImage). Every outcome increments a Stats counter.
func (s *Store) Attach(model string, prof device.Profile, liveFingerprint uint32) (*Attached, error) {
	infos, err := s.List()
	if err != nil {
		return nil, err
	}
	var firstReject error
	for _, info := range infos {
		path := filepath.Join(s.dir, info.ID+imageExt)
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if ID(raw) != info.ID {
			// The bytes do not match the name they were advertised under:
			// damaged in flight or renamed by hand. Same fate as corrupt.
			s.quarantine(path)
			continue
		}
		img, err := Decode(raw)
		if err != nil {
			s.quarantine(path)
			continue
		}
		if img.Model != model {
			continue
		}
		if err := img.Matches(prof); err != nil {
			s.stats.RejectedProfile++
			if firstReject == nil {
				firstReject = err
			}
			continue
		}
		if err := img.CheckFingerprint(liveFingerprint); err != nil {
			s.stats.Stale++
			if firstReject == nil {
				firstReject = err
			}
			continue
		}
		s.stats.AttachOK++
		return &Attached{ID: info.ID, Image: img}, nil
	}
	if firstReject != nil {
		return nil, firstReject
	}
	s.stats.NoImage++
	return nil, fmt.Errorf("%w: %s on %s", ErrNoImage, model, prof.Name)
}
