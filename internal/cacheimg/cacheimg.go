// Package cacheimg packages a warmup manifest together with its code
// objects into a distributable, verifiable "cache image" — the cluster-scale
// extension of the paper's cold-start mitigation (§I deployment scenarios,
// §III-A proactive loading). A warmup manifest (DESIGN.md §12) replays warm
// state within one host; a cache image makes that warm state a fleet
// artifact: one node records a load profile, seals it with its code-object
// bytes into a content-addressed image, and every other node attaches the
// image instead of paying its own cold discovery.
//
// A distributed artifact is only useful if every failure mode degrades to a
// correct cold start, so the format is defensive end to end: a versioned
// binary header (ErrVersion for newer writers, ErrCorrupt for structural
// damage, mirroring the warmup manifest contract), a CRC-32 per packaged
// object, a whole-image CRC trailer, and a content address (FNV-64a of the
// encoded bytes) that doubles as the distribution name — a transfer that
// damaged the bytes no longer matches its own name. Validation on attach is
// a ladder (DESIGN.md §14): wrong device profile → typed reject, any digest
// mismatch → quarantine, a store fingerprint that no longer matches the
// live code-object store → stale, plain cold start. The Store is the
// node-local image directory with atomic temp-file + rename publish, so a
// crash mid-transfer can never leave a torn image where attach would find
// it.
//
// Paper anchor: §I deployment scenarios + §III-A proactive loading, extended fleet-scale beyond the paper (DESIGN.md §14).
package cacheimg

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/warmup"
)

// Format constants.
const (
	// Magic identifies a PASK kernel-cache image.
	Magic = "PKI1"
	// Version is the image format version this package writes and the
	// newest it understands; larger versions are rejected with ErrVersion.
	Version = 1
	// maxStringLen bounds length-prefixed strings so corrupt headers cannot
	// drive huge allocations.
	maxStringLen = 1 << 16
	// maxObjects bounds the packaged object count for the same reason.
	maxObjects = 1 << 12
)

// Typed errors of the attach validation ladder. Every failure mode maps to
// exactly one sentinel so callers (and HTTP envelopes) can tell a reject
// from a quarantine from a plain miss.
var (
	// ErrVersion marks an image written by a newer format version.
	ErrVersion = errors.New("cacheimg: unsupported image version")
	// ErrCorrupt marks structural damage: bad magic, truncation, a
	// per-object CRC mismatch, a whole-image digest mismatch, or a content
	// address that does not match the bytes. Corrupt images are
	// quarantined, never attached.
	ErrCorrupt = errors.New("cacheimg: corrupt image")
	// ErrProfileMismatch marks an image built for a different device
	// profile — structurally healthy, but its load profile would warm the
	// wrong kernels. Rejected, not quarantined.
	ErrProfileMismatch = errors.New("cacheimg: image built for a different device profile")
	// ErrStale marks an image whose recorded store fingerprint no longer
	// matches the live code-object store: the artifacts changed underneath
	// it. The attach degrades to a cold start.
	ErrStale = errors.New("cacheimg: image is stale against the live code-object store")
	// ErrNoImage marks an attach that found no candidate image for the
	// model — the ordinary cold-start case, not a failure.
	ErrNoImage = errors.New("cacheimg: no image for model")
)

// Object is one packaged code object: the store path, the bytes, and their
// CRC-32 (IEEE — the same family the PKO container and warmup manifests
// use).
type Object struct {
	Path     string
	Checksum uint32
	Data     []byte
}

// Image is a decoded cache image: the warmup manifest a prefetcher replays,
// plus the code-object bytes that manifest refers to, keyed by the device
// profile it was recorded on and sealed against the code-object store it
// was built from.
type Image struct {
	Version int
	Model   string
	Device  string
	Arch    string
	Batch   int
	// StoreFingerprint is codeobj.Store.Fingerprint() at build time. An
	// attach against a store with a different fingerprint is stale: the
	// artifacts changed since the image was sealed.
	StoreFingerprint uint32
	Manifest         *warmup.Manifest
	Objects          []Object
}

// ID returns the content address of an encoded image: the FNV-64a hash of
// its bytes in hex. Distribution names images by ID, so bytes damaged in
// flight no longer match the name they were advertised under.
func ID(raw []byte) string {
	h := fnv.New64a()
	h.Write(raw)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Build seals a recorded manifest and its code objects into an image. Every
// manifest entry must be readable from the store and still match its
// recorded checksum — an image must never package bytes the profile did not
// see.
func Build(man *warmup.Manifest, store *codeobj.Store) (*Image, error) {
	if man == nil {
		return nil, errors.New("cacheimg: build: nil manifest")
	}
	img := &Image{
		Version: Version,
		Model:   man.Model, Device: man.Device, Arch: man.Arch, Batch: man.Batch,
		StoreFingerprint: store.Fingerprint(),
		Manifest:         man,
	}
	for _, e := range man.Entries {
		data, err := store.Get(e.Path)
		if err != nil {
			return nil, fmt.Errorf("cacheimg: build: object %q: %w", e.Path, err)
		}
		if warmup.Checksum(data) != e.Checksum {
			return nil, fmt.Errorf("cacheimg: build: object %q changed since the profile was recorded", e.Path)
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		img.Objects = append(img.Objects, Object{Path: e.Path, Checksum: e.Checksum, Data: cp})
	}
	return img, nil
}

func writeString(buf *bytes.Buffer, s string) {
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(s)))
	buf.Write(lenb[:])
	buf.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	var lenb [4]byte
	if _, err := readFull(r, lenb[:]); err != nil {
		return "", fmt.Errorf("%w: truncated string", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n > maxStringLen {
		return "", fmt.Errorf("%w: string length %d exceeds limit", ErrCorrupt, n)
	}
	b := make([]byte, n)
	if _, err := readFull(r, b); err != nil {
		return "", fmt.Errorf("%w: truncated string", ErrCorrupt)
	}
	return string(b), nil
}

func readFull(r *bytes.Reader, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := r.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Encode serializes the image. Encoding is canonical: the same image
// encodes to byte-identical output (the embedded manifest JSON sorts its
// keys), so the content address is stable.
func (img *Image) Encode() ([]byte, error) {
	if len(img.Objects) > maxObjects {
		return nil, fmt.Errorf("cacheimg: %d objects exceeds limit %d", len(img.Objects), maxObjects)
	}
	if img.Manifest == nil {
		return nil, errors.New("cacheimg: encode: image has no manifest")
	}
	manData, err := img.Manifest.Encode()
	if err != nil {
		return nil, fmt.Errorf("cacheimg: encode manifest: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(Magic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(img.Version))
	buf.Write(u16[:])
	writeString(&buf, img.Model)
	writeString(&buf, img.Device)
	writeString(&buf, img.Arch)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(img.Batch))
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], img.StoreFingerprint)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(manData)))
	buf.Write(u32[:])
	buf.Write(manData)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(manData))
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(img.Objects)))
	buf.Write(u32[:])
	for _, o := range img.Objects {
		writeString(&buf, o.Path)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(o.Data)))
		buf.Write(u32[:])
		buf.Write(o.Data)
		binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(o.Data))
		buf.Write(u32[:])
	}
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(u32[:])
	return buf.Bytes(), nil
}

// Decode validates and parses a serialized image. Every error unwraps to
// ErrCorrupt (structural damage, digest mismatch) or ErrVersion (newer
// format) — arbitrary bytes never panic and never produce an untyped error.
func Decode(raw []byte) (*Image, error) {
	if len(raw) < len(Magic)+2+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any image", ErrCorrupt, len(raw))
	}
	if string(raw[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: whole-image digest mismatch", ErrCorrupt)
	}
	r := bytes.NewReader(body[len(Magic):])
	var u16 [2]byte
	if _, err := readFull(r, u16[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	version := int(binary.LittleEndian.Uint16(u16[:]))
	if version > Version {
		return nil, fmt.Errorf("%w: image version %d, this build understands <= %d", ErrVersion, version, Version)
	}
	if version < 1 {
		return nil, fmt.Errorf("%w: invalid version %d", ErrCorrupt, version)
	}
	img := &Image{Version: version}
	var err error
	if img.Model, err = readString(r); err != nil {
		return nil, err
	}
	if img.Device, err = readString(r); err != nil {
		return nil, err
	}
	if img.Arch, err = readString(r); err != nil {
		return nil, err
	}
	var u32 [4]byte
	if _, err := readFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	img.Batch = int(binary.LittleEndian.Uint32(u32[:]))
	if _, err := readFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	img.StoreFingerprint = binary.LittleEndian.Uint32(u32[:])

	if _, err := readFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated manifest header", ErrCorrupt)
	}
	manLen := int(binary.LittleEndian.Uint32(u32[:]))
	if manLen > r.Len() {
		return nil, fmt.Errorf("%w: manifest length %d exceeds remaining %d bytes", ErrCorrupt, manLen, r.Len())
	}
	manData := make([]byte, manLen)
	if _, err := readFull(r, manData); err != nil {
		return nil, fmt.Errorf("%w: truncated manifest", ErrCorrupt)
	}
	if _, err := readFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated manifest digest", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(manData) != binary.LittleEndian.Uint32(u32[:]) {
		return nil, fmt.Errorf("%w: manifest digest mismatch", ErrCorrupt)
	}
	man, err := warmup.Decode(manData)
	if err != nil {
		// The embedded manifest carries its own version contract: surface a
		// newer manifest as ErrVersion, anything else as corruption.
		if errors.Is(err, warmup.ErrVersion) {
			return nil, fmt.Errorf("%w: embedded manifest: %v", ErrVersion, err)
		}
		return nil, fmt.Errorf("%w: embedded manifest: %v", ErrCorrupt, err)
	}
	img.Manifest = man

	if _, err := readFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated object count", ErrCorrupt)
	}
	no := binary.LittleEndian.Uint32(u32[:])
	if no > maxObjects {
		return nil, fmt.Errorf("%w: object count %d out of range", ErrCorrupt, no)
	}
	seen := make(map[string]bool, no)
	for i := 0; i < int(no); i++ {
		var o Object
		if o.Path, err = readString(r); err != nil {
			return nil, err
		}
		if o.Path == "" {
			return nil, fmt.Errorf("%w: object %d has no path", ErrCorrupt, i)
		}
		if seen[o.Path] {
			return nil, fmt.Errorf("%w: duplicate object %q", ErrCorrupt, o.Path)
		}
		seen[o.Path] = true
		if _, err := readFull(r, u32[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated object header", ErrCorrupt)
		}
		dataLen := int(binary.LittleEndian.Uint32(u32[:]))
		if dataLen > r.Len() {
			return nil, fmt.Errorf("%w: object %q length %d exceeds remaining %d bytes", ErrCorrupt, o.Path, dataLen, r.Len())
		}
		o.Data = make([]byte, dataLen)
		if _, err := readFull(r, o.Data); err != nil {
			return nil, fmt.Errorf("%w: truncated object %q", ErrCorrupt, o.Path)
		}
		if _, err := readFull(r, u32[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated object digest", ErrCorrupt)
		}
		o.Checksum = binary.LittleEndian.Uint32(u32[:])
		if crc32.ChecksumIEEE(o.Data) != o.Checksum {
			return nil, fmt.Errorf("%w: object %q digest mismatch", ErrCorrupt, o.Path)
		}
		img.Objects = append(img.Objects, o)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Len())
	}
	return img, nil
}

// Matches checks the image against a device profile — the first rung of the
// attach ladder after structural validation. A mismatch is a typed reject:
// the image is healthy, just not for this device.
func (img *Image) Matches(prof device.Profile) error {
	if img.Device != prof.Name || img.Arch != prof.Arch {
		return fmt.Errorf("%w: image is %s/%s, device is %s/%s",
			ErrProfileMismatch, img.Device, img.Arch, prof.Name, prof.Arch)
	}
	return nil
}

// CheckFingerprint checks the image's sealed store fingerprint against the
// live store's — the staleness rung of the attach ladder. A mismatch means
// the code objects changed since the image was built; replaying its
// manifest could only count stale entries, so the attach degrades to cold.
func (img *Image) CheckFingerprint(live uint32) error {
	if img.StoreFingerprint != live {
		return fmt.Errorf("%w: image sealed at %08x, live store is %08x", ErrStale, img.StoreFingerprint, live)
	}
	return nil
}

// TotalBytes returns the summed packaged-object payload size.
func (img *Image) TotalBytes() int64 {
	var n int64
	for _, o := range img.Objects {
		n += int64(len(o.Data))
	}
	return n
}
