package cacheimg

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata goldens")

// TestGoldenImage pins the wire format byte-for-byte: the fixture image
// must encode to exactly testdata/golden.pki, and the golden must decode.
// A diff here means the format changed — bump Version and regenerate with
// -update instead of shipping a silent break; published images embed these
// bytes and their content address.
func TestGoldenImage(t *testing.T) {
	img, _ := buildImage(t)
	raw, err := img.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	path := filepath.Join("testdata", "golden.pki")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(disk, raw) {
		t.Fatalf("wire format drifted from golden: %d bytes on disk, %d encoded", len(disk), len(raw))
	}
	dec, err := Decode(disk)
	if err != nil {
		t.Fatalf("golden does not decode: %v", err)
	}
	if dec.Model != img.Model || len(dec.Objects) != len(img.Objects) {
		t.Fatalf("golden decodes to a different image: %+v", dec)
	}
}

// FuzzDecode drives Decode with arbitrary bytes and enforces its contract:
// either a valid image comes back (and survives an encode/decode round
// trip), or the error unwraps to exactly ErrCorrupt or ErrVersion. It must
// never panic — attach feeds Decode whatever bytes survived a node crash
// or a faulted transfer.
func FuzzDecode(f *testing.F) {
	if golden, err := os.ReadFile(filepath.Join("testdata", "golden.pki")); err == nil {
		f.Add(golden)
		f.Add(golden[:len(golden)/2])
		mut := bytes.Clone(golden)
		mut[len(mut)/2] ^= 0x01
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte("PKI1\x02\x00"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		img, err := Decode(raw)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("Decode error outside contract: %v", err)
			}
			return
		}
		reenc, err := img.Encode()
		if err != nil {
			t.Fatalf("decoded image does not re-encode: %v", err)
		}
		if _, err := Decode(reenc); err != nil {
			t.Fatalf("re-encoded image does not decode: %v", err)
		}
	})
}
