package faults

import (
	"errors"
	"testing"
	"time"

	"pask/internal/codeobj"
	"pask/internal/sim"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	data := []byte{1, 2, 3}
	got, err := inj.StoreGet("a.pko", data)
	if err != nil || &got[0] != &data[0] {
		t.Fatalf("nil injector altered read: %v %v", got, err)
	}
	if inj.ExtraLoadLatency("a.pko") != 0 {
		t.Fatal("nil injector injected latency")
	}
	if inj.DisabledIDs([]string{"x"}) != nil {
		t.Fatal("nil injector disabled solutions")
	}
	if inj.PermanentlyCorrupt("a.pko") {
		t.Fatal("nil injector corrupted")
	}
	inj.Exempt("a.pko")
	if s := inj.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector stats %+v", s)
	}
}

func TestDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 7, TransientRate: 0.3, PermanentRate: 0.1, SpikeRate: 0.2}
	run := func() ([]bool, []bool, []bool) {
		inj := New(plan)
		data := []byte("payload-bytes")
		var ioFail, corrupt, spiked []bool
		for i := 0; i < 200; i++ {
			path := "obj" + string(rune('a'+i%7)) + ".pko"
			got, err := inj.StoreGet(path, data)
			ioFail = append(ioFail, err != nil)
			corrupt = append(corrupt, err == nil && got[len(got)/2] != data[len(data)/2])
			spiked = append(spiked, inj.ExtraLoadLatency(path) > 0)
		}
		return ioFail, corrupt, spiked
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] || c1[i] != c2[i] {
			t.Fatalf("replay diverged at access %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	mask := func(seed int64) (m uint64) {
		inj := New(Plan{Seed: seed, TransientRate: 0.5})
		for i := 0; i < 64; i++ {
			if _, err := inj.StoreGet("x.pko", []byte{0}); err != nil {
				m |= 1 << i
			}
		}
		return m
	}
	if mask(1) == mask(2) {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestTransientBurstCap(t *testing.T) {
	// TransientRate 1.0 would fail forever without the burst cap.
	inj := New(Plan{Seed: 1, TransientRate: 1.0, MaxTransientBurst: 2})
	fails := 0
	for i := 0; i < 9; i++ {
		_, err := inj.StoreGet("x.pko", []byte{0})
		if err != nil {
			if !codeobj.IsTransient(err) {
				t.Fatalf("injected error %v is not transient", err)
			}
			fails++
		} else {
			if fails != 2 {
				t.Fatalf("burst of %d before success, want 2", fails)
			}
			fails = 0
		}
	}
}

func TestPermanentCorruptionIsSticky(t *testing.T) {
	inj := New(Plan{Seed: 3, PermanentRate: 1.0})
	data := []byte("pristine-object-bytes")
	for i := 0; i < 3; i++ {
		got, err := inj.StoreGet("x.pko", data)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if &got[0] == &data[0] {
			t.Fatal("corrupted read aliases the stored bytes")
		}
		if got[len(got)/2] == data[len(data)/2] {
			t.Fatalf("read %d not corrupted", i)
		}
	}
	if string(data) != "pristine-object-bytes" {
		t.Fatal("injector mutated the shared store copy")
	}
	if !inj.PermanentlyCorrupt("x.pko") {
		t.Fatal("PermanentlyCorrupt disagrees with StoreGet")
	}
}

func TestExemptPathsAreUntouched(t *testing.T) {
	inj := New(Plan{Seed: 1, TransientRate: 1.0, PermanentRate: 1.0})
	inj.Exempt("safe.pko")
	data := []byte{9, 9, 9}
	for i := 0; i < 5; i++ {
		got, err := inj.StoreGet("safe.pko", data)
		if err != nil || &got[0] != &data[0] {
			t.Fatalf("exempt path faulted: %v %v", got, err)
		}
	}
	if inj.PermanentlyCorrupt("safe.pko") {
		t.Fatal("exempt path reported corrupt")
	}
}

func TestDisabledIDsSeededSubset(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"}
	inj := New(Plan{Seed: 5, DisableRate: 0.5})
	a := inj.DisabledIDs(ids)
	b := inj.DisabledIDs(ids)
	if len(a) == 0 || len(a) == len(ids) {
		t.Fatalf("disable subset size %d not a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic subset: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic subset: %v vs %v", a, b)
		}
	}
}

func TestArmResetFiresOnce(t *testing.T) {
	inj := New(Plan{Seed: 1, DeviceResetAt: 10 * time.Millisecond})
	env := sim.NewEnv()
	resets := 0
	inj.ArmReset(env, func() { resets++ })
	inj.ArmReset(env, func() { resets++ }) // second arm must be a no-op
	env.Spawn("work", func(p *sim.Proc) { p.Sleep(20 * time.Millisecond) })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resets != 1 {
		t.Fatalf("reset fired %d times, want 1", resets)
	}
	if inj.Stats().Resets != 1 {
		t.Fatalf("stats resets = %d", inj.Stats().Resets)
	}
}

func TestParsePlan(t *testing.T) {
	p, left, err := ParsePlan("transient=0.1, permanent=0.02,seed=7,burst=3,spike=0.05,spike_ms=3,reset_ms=40,disable=0.1,model=res,requests=50")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.TransientRate != 0.1 || p.PermanentRate != 0.02 || p.Seed != 7 ||
		p.MaxTransientBurst != 3 || p.SpikeRate != 0.05 ||
		p.SpikeExtra != 3*time.Millisecond || p.DeviceResetAt != 40*time.Millisecond ||
		p.DisableRate != 0.1 {
		t.Fatalf("plan mismatch: %+v", p)
	}
	if left["model"] != "res" || left["requests"] != "50" || len(left) != 2 {
		t.Fatalf("leftover mismatch: %v", left)
	}
	if _, _, err := ParsePlan("transient=2"); err == nil {
		t.Fatal("rate >1 accepted")
	}
	if _, _, err := ParsePlan("junk"); err == nil {
		t.Fatal("missing '=' accepted")
	}
	if p, left, err := ParsePlan(""); err != nil || len(left) != 0 || p != (Plan{}) {
		t.Fatalf("empty spec: %+v %v %v", p, left, err)
	}
}

func TestClampedRates(t *testing.T) {
	inj := New(Plan{TransientRate: -1, PermanentRate: 2})
	if pl := inj.Plan(); pl.TransientRate != 0 || pl.PermanentRate != 1 {
		t.Fatalf("rates not clamped: %+v", pl)
	}
}

func TestInjectedErrorsAreTyped(t *testing.T) {
	inj := New(Plan{Seed: 1, TransientRate: 1.0})
	_, err := inj.StoreGet("x.pko", []byte{0})
	if !errors.Is(err, codeobj.ErrIO) {
		t.Fatalf("injected error %v does not wrap codeobj.ErrIO", err)
	}
}
