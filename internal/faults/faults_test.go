package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pask/internal/codeobj"
	"pask/internal/sim"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	data := []byte{1, 2, 3}
	got, err := inj.StoreGet("a.pko", data)
	if err != nil || &got[0] != &data[0] {
		t.Fatalf("nil injector altered read: %v %v", got, err)
	}
	if inj.ExtraLoadLatency(0, "a.pko") != 0 {
		t.Fatal("nil injector injected latency")
	}
	if inj.DisabledIDs([]string{"x"}) != nil {
		t.Fatal("nil injector disabled solutions")
	}
	if inj.PermanentlyCorrupt("a.pko") {
		t.Fatal("nil injector corrupted")
	}
	inj.Exempt("a.pko")
	if s := inj.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector stats %+v", s)
	}
}

func TestDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 7, TransientRate: 0.3, PermanentRate: 0.1, SpikeRate: 0.2}
	run := func() ([]bool, []bool, []bool) {
		inj := New(plan)
		data := []byte("payload-bytes")
		var ioFail, corrupt, spiked []bool
		for i := 0; i < 200; i++ {
			path := "obj" + string(rune('a'+i%7)) + ".pko"
			got, err := inj.StoreGet(path, data)
			ioFail = append(ioFail, err != nil)
			corrupt = append(corrupt, err == nil && got[len(got)/2] != data[len(data)/2])
			spiked = append(spiked, inj.ExtraLoadLatency(0, path) > 0)
		}
		return ioFail, corrupt, spiked
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] || c1[i] != c2[i] {
			t.Fatalf("replay diverged at access %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	mask := func(seed int64) (m uint64) {
		inj := New(Plan{Seed: seed, TransientRate: 0.5})
		for i := 0; i < 64; i++ {
			if _, err := inj.StoreGet("x.pko", []byte{0}); err != nil {
				m |= 1 << i
			}
		}
		return m
	}
	if mask(1) == mask(2) {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestTransientBurstCap(t *testing.T) {
	// TransientRate 1.0 would fail forever without the burst cap.
	inj := New(Plan{Seed: 1, TransientRate: 1.0, MaxTransientBurst: 2})
	fails := 0
	for i := 0; i < 9; i++ {
		_, err := inj.StoreGet("x.pko", []byte{0})
		if err != nil {
			if !codeobj.IsTransient(err) {
				t.Fatalf("injected error %v is not transient", err)
			}
			fails++
		} else {
			if fails != 2 {
				t.Fatalf("burst of %d before success, want 2", fails)
			}
			fails = 0
		}
	}
}

func TestPermanentCorruptionIsSticky(t *testing.T) {
	inj := New(Plan{Seed: 3, PermanentRate: 1.0})
	data := []byte("pristine-object-bytes")
	for i := 0; i < 3; i++ {
		got, err := inj.StoreGet("x.pko", data)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if &got[0] == &data[0] {
			t.Fatal("corrupted read aliases the stored bytes")
		}
		if got[len(got)/2] == data[len(data)/2] {
			t.Fatalf("read %d not corrupted", i)
		}
	}
	if string(data) != "pristine-object-bytes" {
		t.Fatal("injector mutated the shared store copy")
	}
	if !inj.PermanentlyCorrupt("x.pko") {
		t.Fatal("PermanentlyCorrupt disagrees with StoreGet")
	}
}

func TestExemptPathsAreUntouched(t *testing.T) {
	inj := New(Plan{Seed: 1, TransientRate: 1.0, PermanentRate: 1.0})
	inj.Exempt("safe.pko")
	data := []byte{9, 9, 9}
	for i := 0; i < 5; i++ {
		got, err := inj.StoreGet("safe.pko", data)
		if err != nil || &got[0] != &data[0] {
			t.Fatalf("exempt path faulted: %v %v", got, err)
		}
	}
	if inj.PermanentlyCorrupt("safe.pko") {
		t.Fatal("exempt path reported corrupt")
	}
}

func TestDisabledIDsSeededSubset(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"}
	inj := New(Plan{Seed: 5, DisableRate: 0.5})
	a := inj.DisabledIDs(ids)
	b := inj.DisabledIDs(ids)
	if len(a) == 0 || len(a) == len(ids) {
		t.Fatalf("disable subset size %d not a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic subset: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic subset: %v vs %v", a, b)
		}
	}
}

func TestArmResetFiresOnce(t *testing.T) {
	inj := New(Plan{Seed: 1, DeviceResetAt: 10 * time.Millisecond})
	env := sim.NewEnv()
	resets := 0
	inj.ArmReset(env, func() { resets++ })
	inj.ArmReset(env, func() { resets++ }) // second arm must be a no-op
	env.Spawn("work", func(p *sim.Proc) { p.Sleep(20 * time.Millisecond) })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resets != 1 {
		t.Fatalf("reset fired %d times, want 1", resets)
	}
	if inj.Stats().Resets != 1 {
		t.Fatalf("stats resets = %d", inj.Stats().Resets)
	}
}

func TestParsePlan(t *testing.T) {
	p, left, err := ParsePlan("transient=0.1, permanent=0.02,seed=7,burst=3,spike=0.05,spike_ms=3,reset_ms=40,disable=0.1,model=res,requests=50")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.TransientRate != 0.1 || p.PermanentRate != 0.02 || p.Seed != 7 ||
		p.MaxTransientBurst != 3 || p.SpikeRate != 0.05 ||
		p.SpikeExtra != 3*time.Millisecond || p.DeviceResetAt != 40*time.Millisecond ||
		p.DisableRate != 0.1 {
		t.Fatalf("plan mismatch: %+v", p)
	}
	if left["model"] != "res" || left["requests"] != "50" || len(left) != 2 {
		t.Fatalf("leftover mismatch: %v", left)
	}
	if _, _, err := ParsePlan("transient=2"); err == nil {
		t.Fatal("rate >1 accepted")
	}
	if _, _, err := ParsePlan("junk"); err == nil {
		t.Fatal("missing '=' accepted")
	}
	if p, left, err := ParsePlan(""); err != nil || len(left) != 0 || p != (Plan{}) {
		t.Fatalf("empty spec: %+v %v %v", p, left, err)
	}
}

func TestClampedRates(t *testing.T) {
	inj := New(Plan{TransientRate: -1, PermanentRate: 2})
	if pl := inj.Plan(); pl.TransientRate != 0 || pl.PermanentRate != 1 {
		t.Fatalf("rates not clamped: %+v", pl)
	}
}

func TestInjectedErrorsAreTyped(t *testing.T) {
	inj := New(Plan{Seed: 1, TransientRate: 1.0})
	_, err := inj.StoreGet("x.pko", []byte{0})
	if !errors.Is(err, codeobj.ErrIO) {
		t.Fatalf("injected error %v does not wrap codeobj.ErrIO", err)
	}
}

func TestSlowLoaderWindow(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		now  time.Duration
		want time.Duration
	}{
		{"before window", Plan{SlowLoadExtra: 5 * time.Millisecond, SlowFrom: 10 * time.Millisecond, SlowUntil: 30 * time.Millisecond}, 9 * time.Millisecond, 0},
		{"at start (inclusive)", Plan{SlowLoadExtra: 5 * time.Millisecond, SlowFrom: 10 * time.Millisecond, SlowUntil: 30 * time.Millisecond}, 10 * time.Millisecond, 5 * time.Millisecond},
		{"inside", Plan{SlowLoadExtra: 5 * time.Millisecond, SlowFrom: 10 * time.Millisecond, SlowUntil: 30 * time.Millisecond}, 20 * time.Millisecond, 5 * time.Millisecond},
		{"at end (exclusive)", Plan{SlowLoadExtra: 5 * time.Millisecond, SlowFrom: 10 * time.Millisecond, SlowUntil: 30 * time.Millisecond}, 30 * time.Millisecond, 0},
		{"zero until means forever", Plan{SlowLoadExtra: 5 * time.Millisecond, SlowFrom: 10 * time.Millisecond}, time.Hour, 5 * time.Millisecond},
		{"no extra means disabled", Plan{SlowFrom: 0, SlowUntil: time.Hour}, time.Millisecond, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := New(tc.plan)
			if got := inj.ExtraLoadLatency(tc.now, "m.pko"); got != tc.want {
				t.Fatalf("ExtraLoadLatency(%v) = %v, want %v", tc.now, got, tc.want)
			}
			wantSlow := 0
			if tc.want > 0 {
				wantSlow = 1
			}
			if inj.Stats().SlowLoads != wantSlow {
				t.Fatalf("SlowLoads = %d, want %d", inj.Stats().SlowLoads, wantSlow)
			}
		})
	}
}

func TestSlowLoaderStacksWithSpike(t *testing.T) {
	// SpikeRate 1 fires on every load; inside the window a load pays both
	// the spike and the brownout extra.
	inj := New(Plan{Seed: 1, SlowLoadExtra: 4 * time.Millisecond,
		SpikeRate: 1, SpikeExtra: 3 * time.Millisecond})
	if got := inj.ExtraLoadLatency(0, "m.pko"); got != 7*time.Millisecond {
		t.Fatalf("stacked extra = %v, want 7ms", got)
	}
	st := inj.Stats()
	if st.SlowLoads != 1 || st.LatencySpikes != 1 {
		t.Fatalf("stats = %+v, want one slow load and one spike", st)
	}
}

func TestParsePlanOverloadKeys(t *testing.T) {
	p, left, err := ParsePlan("slow_ms=2,slow_from_ms=10,slow_until_ms=30,flood_n=20,flood_ms=5,flood_gap_ms=0.5")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.SlowLoadExtra != 2*time.Millisecond || p.SlowFrom != 10*time.Millisecond ||
		p.SlowUntil != 30*time.Millisecond {
		t.Fatalf("slow-loader fields mismatch: %+v", p)
	}
	if p.FloodN != 20 || p.FloodAt != 5*time.Millisecond || p.FloodGap != 500*time.Microsecond {
		t.Fatalf("flood fields mismatch: %+v", p)
	}
	if len(left) != 0 {
		t.Fatalf("unexpected leftovers: %v", left)
	}
	if _, _, err := ParsePlan("flood_n=-1"); err == nil {
		t.Fatal("negative flood_n accepted")
	}
	if _, _, err := ParsePlan("flood_n=2.5"); err == nil {
		t.Fatal("fractional flood_n accepted")
	}
}

func TestParsePlanImageKeys(t *testing.T) {
	p, left, err := ParsePlan("img_corrupt=0.2,img_truncate=0.3,img_kill=0.1")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.ImgCorruptRate != 0.2 || p.ImgTruncateRate != 0.3 || p.NodeKillRate != 0.1 {
		t.Fatalf("image fields mismatch: %+v", p)
	}
	if len(left) != 0 {
		t.Fatalf("unexpected leftovers: %v", left)
	}
	if _, _, err := ParsePlan("img_corrupt=1.5"); err == nil {
		t.Fatal("rate >1 accepted")
	}
}

func TestPullFaultDeterministicAndTyped(t *testing.T) {
	var nilInj *Injector
	if got := nilInj.PullFault("node-0", 0); got != PullOK {
		t.Fatalf("nil injector pull = %v, want ok", got)
	}

	plan := Plan{Seed: 11, ImgCorruptRate: 0.3, ImgTruncateRate: 0.3, NodeKillRate: 0.2}
	a, b := New(plan), New(plan)
	for node := 0; node < 10; node++ {
		for attempt := 0; attempt < 3; attempt++ {
			key := fmt.Sprintf("node-%d", node)
			if got, want := a.PullFault(key, attempt), b.PullFault(key, attempt); got != want {
				t.Fatalf("pull %s/%d not deterministic: %v vs %v", key, attempt, got, want)
			}
		}
	}
}

func TestPullFaultKillWinsAndCountsOnce(t *testing.T) {
	inj := New(Plan{Seed: 3, NodeKillRate: 1, ImgTruncateRate: 1})
	for attempt := 0; attempt < 3; attempt++ {
		if got := inj.PullFault("node-7", attempt); got != PullKilled {
			t.Fatalf("attempt %d: got %v, want killed", attempt, got)
		}
	}
	st := inj.Stats()
	if st.NodeKills != 1 {
		t.Fatalf("node killed %d times in stats, want 1", st.NodeKills)
	}
	if st.PullTruncates != 0 {
		t.Fatalf("truncates counted on a killed node: %+v", st)
	}
}

func TestPullFaultTruncateRetriesFreshOdds(t *testing.T) {
	// At a 50% truncate rate some attempt must eventually succeed — the
	// roll is per (node, attempt), so retries face fresh odds.
	inj := New(Plan{Seed: 5, ImgTruncateRate: 0.5})
	recovered := false
	for node := 0; node < 32 && !recovered; node++ {
		key := fmt.Sprintf("node-%d", node)
		if inj.PullFault(key, 0) != PullTruncated {
			continue
		}
		for attempt := 1; attempt < 8; attempt++ {
			if inj.PullFault(key, attempt) == PullOK {
				recovered = true
				break
			}
		}
	}
	if !recovered {
		t.Fatal("no truncated pull ever recovered on retry across 32 nodes x 8 attempts")
	}
	if inj.Stats().PullTruncates == 0 {
		t.Fatal("no truncations counted")
	}
}

func TestPullFaultCorruptCounted(t *testing.T) {
	inj := New(Plan{Seed: 1, ImgCorruptRate: 1})
	if got := inj.PullFault("node-0", 0); got != PullCorrupt {
		t.Fatalf("got %v, want corrupt", got)
	}
	if inj.Stats().PullCorrupts != 1 {
		t.Fatalf("stats: %+v", inj.Stats())
	}
}
