// Package faults is a deterministic, seeded fault injector for the PASK
// loading pipeline — this reproduction's extension beyond the paper's
// evaluation (fault taxonomy and seams in DESIGN.md §9): the §III-A pipeline
// touches storage, drivers and a vendor database, which is where production
// deployments see faults. A declarative Plan names the failure modes to exercise —
// transient store I/O errors, permanently corrupt code objects, load-latency
// spikes, solution-discovery outages, and a device reset at a chosen virtual
// time — and an Injector turns it into byte-level misbehaviour at the same
// seams real faults enter: codeobj.Store reads, hip module-load latency, and
// the MIOpen find path.
//
// Every decision is a pure hash of (seed, fault kind, path, access count),
// so a fixed plan replays identically across runs and across policies under
// test: the chaos experiment's fairness depends on each policy facing the
// same storm. A nil *Injector is inert, and a disabled rate costs nothing on
// the production path.
//
// # Plan spec grammar
//
// ParsePlan decodes a comma-separated "key=value" spec. Rates are floats in
// [0,1]; *_ms keys are non-negative millisecond counts (fractions allowed);
// GPU keys are non-negative host GPU indices. Unknown keys are returned to
// the caller untouched (command-line tools piggyback scenario keys on the
// same flag). The full key set:
//
//	seed=<int>              stream selector; same plan+seed => same faults
//	transient=<rate>        per-read retriable store I/O error
//	burst=<int>             cap on consecutive transient failures per path
//	permanent=<rate>        per-path always-corrupt object bytes
//	spike=<rate>            per-load latency spike probability
//	spike_ms=<ms>           spike magnitude (default 2ms)
//	disable=<rate>          per-solution find-path outage
//	reset_ms=<ms>           device reset (UnloadAll) at this virtual time
//	slow_ms=<ms>            sustained extra load latency inside the window
//	slow_from_ms=<ms>       slow-loader window start
//	slow_until_ms=<ms>      slow-loader window end (0 = forever)
//	flood_n=<int>           synthetic request flood size
//	flood_ms=<ms>           flood start time
//	flood_gap_ms=<ms>       flood inter-arrival gap (0 = simultaneous)
//	img_corrupt=<rate>      per-pull cache-image corruption
//	img_truncate=<rate>     per-attempt cache-image truncation
//	img_kill=<rate>         per-node death mid-pull
//	gpu_kill_ms=<ms>        scheduled device loss at this virtual time
//	gpu_kill=<gpu>          which host GPU index the scheduled loss hits
//	gpu_kill_rate=<rate>    per-GPU seeded (Poisson-style) device loss
//	gpu_kill_from_ms=<ms>   seeded-loss window start
//	gpu_kill_until_ms=<ms>  seeded-loss window end (default start+50ms)
//	degrade_factor=<f>      load-latency multiplier (>= 1) inside the window
//	degrade_transient=<rate> elevated per-read transient rate inside the window
//	degrade_from_ms=<ms>    degradation window start
//	degrade_until_ms=<ms>   degradation window end (0 = forever)
//	degrade_gpu=<gpu>       which host GPU index degrades
//	link_flap_from_ms=<ms>  link-flap window start
//	link_flap_until_ms=<ms> link-flap window end (0 = forever)
//	link_flap_gpu=<gpu>     GPU whose links flap (every link touching it)
//	link_flap_stall_ms=<ms> >0: transfers stall this long but complete;
//	                        0 (default): transfers fail outright
//
// A window whose end is positive but not after its start is rejected.
//
// Paper anchor: beyond-paper fault injection at the §III-A pipeline's storage/driver/find seams (DESIGN.md §9, §17).
package faults

import (
	"fmt"
	"hash/fnv"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"pask/internal/codeobj"
	"pask/internal/sim"
)

// Plan declares which faults to inject and how often. Rates are
// probabilities in [0,1] evaluated per store access (transient, spike) or
// per path/ID (permanent, disable).
type Plan struct {
	Seed int64 // stream selector; same plan+seed => same faults

	// TransientRate is the per-read probability of a retriable I/O error
	// (wrapping codeobj.ErrIO). Consecutive failures on one path are capped
	// by MaxTransientBurst so bounded retry can always win.
	TransientRate float64
	// MaxTransientBurst caps consecutive transient failures per path.
	// Zero means the default of 2.
	MaxTransientBurst int

	// PermanentRate is the per-path probability that an object's bytes are
	// corrupt on every read — the stored copy is damaged, not the wire.
	PermanentRate float64

	// SpikeRate is the per-load probability of an added latency spike of
	// SpikeExtra (default 2ms) on top of the modeled load time.
	SpikeRate  float64
	SpikeExtra time.Duration

	// DisableRate is the per-solution probability that the find path
	// reports the solution unavailable (a vendor-db outage stand-in).
	DisableRate float64

	// DeviceResetAt, when positive, unloads every module at that virtual
	// time — the driver-level device reset / preemption event.
	DeviceResetAt time.Duration

	// SlowLoadExtra models a sustained storage/driver brownout (an NFS or
	// registry slowdown rather than a per-load spike): every module load
	// whose start falls inside [SlowFrom, SlowUntil) pays this much extra.
	// SlowUntil of zero with a positive SlowLoadExtra means "until forever".
	SlowLoadExtra time.Duration
	SlowFrom      time.Duration
	SlowUntil     time.Duration

	// FloodN, when positive, describes a synthetic request flood the serving
	// layer splices into its arrival trace: FloodN extra requests starting at
	// FloodAt, spaced FloodGap apart (default 0 — a simultaneous burst). The
	// injector itself never sees requests; serving.ApplyFlood consumes these.
	FloodN   int
	FloodAt  time.Duration
	FloodGap time.Duration

	// Cache-image distribution faults (DESIGN.md §14). These fire on the
	// fleet seeder's image pulls, not on store reads: the wire is damaged,
	// the node's "disk" copy of everything else stays pristine.
	//
	// ImgCorruptRate is the per-pull probability that the transferred image
	// bytes land flipped — caught at attach, where the content address no
	// longer matches the advertised ID, and the image is quarantined.
	ImgCorruptRate float64
	// ImgTruncateRate is the per-pull-attempt probability that the transfer
	// dies partway: nothing lands, and the puller retries with backoff.
	ImgTruncateRate float64
	// NodeKillRate is the per-node probability that the node dies mid-pull
	// and never finishes seeding — it serves cold.
	NodeKillRate float64

	// Device failure domains (DESIGN.md §17). These target whole GPUs on a
	// multi-GPU host rather than individual loads, and are consumed by the
	// serving layer's health monitor and the backend's device-lost state.

	// GPUKillAt, when positive, kills host GPU GPUKillIdx at that virtual
	// time: the device drops off the bus and every subsequent driver call
	// fails with the flavor's device-lost error. Terminal — no reset revives.
	GPUKillAt  time.Duration
	GPUKillIdx int
	// GPUKillRate is the per-GPU seeded probability of an unscheduled device
	// loss; a condemned GPU dies at a seeded instant inside
	// [GPUKillFrom, GPUKillUntil) (default window: 50ms from GPUKillFrom).
	GPUKillRate  float64
	GPUKillFrom  time.Duration
	GPUKillUntil time.Duration

	// DegradeFactor (>= 1) multiplies modeled load latency on DegradeGPU
	// while the degradation window [DegradeFrom, DegradeUntil) is open —
	// the ECC-scrubbing / thermal-throttle brownout of a single device.
	// DegradeUntil of zero means "until forever".
	DegradeFactor float64
	// DegradeTransient is the elevated per-read transient error rate the
	// degraded GPU's loads face inside the window (capped by the same
	// consecutive-failure burst limit as TransientRate, so retry can win).
	DegradeTransient float64
	DegradeFrom      time.Duration
	DegradeUntil     time.Duration
	DegradeGPU       int

	// Link flap: every host link touching LinkFlapGPU misbehaves while
	// [LinkFlapFrom, LinkFlapUntil) is open. With LinkFlapStall zero the
	// peer transfer fails outright (the fetcher falls back to a local demand
	// load); with it positive the transfer stalls that long but completes.
	// LinkFlapUntil of zero means "until forever".
	LinkFlapFrom  time.Duration
	LinkFlapUntil time.Duration
	LinkFlapGPU   int
	LinkFlapStall time.Duration
}

func (p Plan) burst() int {
	if p.MaxTransientBurst > 0 {
		return p.MaxTransientBurst
	}
	return 2
}

func (p Plan) spike() time.Duration {
	if p.SpikeExtra > 0 {
		return p.SpikeExtra
	}
	return 2 * time.Millisecond
}

// Stats counts injected faults.
type Stats struct {
	TransientFaults int // reads failed with a retriable error
	CorruptReads    int // reads answered with corrupted bytes
	LatencySpikes   int // loads slowed by SpikeExtra
	SlowLoads       int // loads slowed inside the slow-loader window
	Resets          int // device resets fired
	PullCorrupts    int // image pulls landed with flipped bytes
	PullTruncates   int // image pull attempts that died partway
	NodeKills       int // nodes killed mid-pull
	GPULosses       int // GPUs lost to scheduled or seeded device death
	DegradedLoads   int // loads stretched by the degradation multiplier
	DegradedFaults  int // reads failed by the degradation transient rate
	LinkFaults      int // peer transfers failed or stalled by a link flap
}

// Injector implements the fault plan. It satisfies codeobj.FaultHook (store
// reads) and hip.LoadFaultInjector (latency spikes). A nil Injector is safe
// to call and injects nothing.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	exempt   map[string]bool
	readN    map[string]int  // store accesses per path
	burstN   map[string]int  // consecutive transient failures per path
	loadN    map[string]int  // latency-spike rolls per path
	killed   map[string]bool // nodes already counted dead (kill fires once)
	degN     map[string]int  // degraded-read rolls per (gpu, path)
	degBurst map[string]int  // consecutive degradation failures per (gpu, path)
	armed    bool
	armedGPU map[int]bool // GPU-death watchers already spawned, per GPU
	stats    Stats
}

// New builds an injector for the plan. Rates are clamped to [0,1].
func New(plan Plan) *Injector {
	clamp := func(r *float64) {
		if *r < 0 {
			*r = 0
		}
		if *r > 1 {
			*r = 1
		}
	}
	clamp(&plan.TransientRate)
	clamp(&plan.PermanentRate)
	clamp(&plan.SpikeRate)
	clamp(&plan.DisableRate)
	clamp(&plan.ImgCorruptRate)
	clamp(&plan.ImgTruncateRate)
	clamp(&plan.NodeKillRate)
	clamp(&plan.GPUKillRate)
	clamp(&plan.DegradeTransient)
	return &Injector{
		plan:     plan,
		exempt:   make(map[string]bool),
		readN:    make(map[string]int),
		burstN:   make(map[string]int),
		loadN:    make(map[string]int),
		killed:   make(map[string]bool),
		degN:     make(map[string]int),
		degBurst: make(map[string]int),
		armedGPU: make(map[int]bool),
	}
}

// Plan returns the (clamped) plan the injector runs.
func (inj *Injector) Plan() Plan { return inj.plan }

// Exempt shields paths from corruption and transient faults — used for
// objects that ship inside the engine binary and never cross storage.
func (inj *Injector) Exempt(paths ...string) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, p := range paths {
		inj.exempt[p] = true
	}
}

// roll maps (seed, kind, key, n) to a uniform float64 in [0,1).
func (inj *Injector) roll(kind, key string, n int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", inj.plan.Seed, kind, key, n)
	// FNV barely avalanches its final bytes: without extra mixing, two
	// inputs differing only in the trailing counter produce nearly equal
	// rolls, so "per-access" rates degenerate to per-path ones. Finalize
	// with a splitmix64-style mixer before mapping to [0,1).
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	// 53 bits of hash → uniform in [0,1).
	return float64(x>>11) / float64(1<<53)
}

// StoreGet implements codeobj.FaultHook. It never mutates data: corrupted
// reads return a damaged copy, because the store is shared across instances
// and the "disk" copy of an exempt-free path stays pristine.
func (inj *Injector) StoreGet(path string, data []byte) ([]byte, error) {
	if inj == nil {
		return data, nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.exempt[path] {
		return data, nil
	}
	n := inj.readN[path]
	inj.readN[path] = n + 1
	if inj.plan.TransientRate > 0 && inj.burstN[path] < inj.plan.burst() &&
		inj.roll("io", path, n) < inj.plan.TransientRate {
		inj.burstN[path]++
		inj.stats.TransientFaults++
		return nil, fmt.Errorf("faults: injected I/O error reading %q (access %d): %w", path, n, codeobj.ErrIO)
	}
	inj.burstN[path] = 0
	if inj.permanentLocked(path) {
		inj.stats.CorruptReads++
		cp := make([]byte, len(data))
		copy(cp, data)
		if len(cp) > 0 {
			cp[len(cp)/2] ^= 0xff
		}
		return cp, nil
	}
	return data, nil
}

func (inj *Injector) permanentLocked(path string) bool {
	return inj.plan.PermanentRate > 0 && inj.roll("perm", path, 0) < inj.plan.PermanentRate
}

// PermanentlyCorrupt reports whether the plan damages this path's bytes on
// every read — exposed so tests and experiments can predict outcomes.
func (inj *Injector) PermanentlyCorrupt(path string) bool {
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return !inj.exempt[path] && inj.permanentLocked(path)
}

// ExtraLoadLatency implements hip.LoadFaultInjector: the extra virtual time
// a module load starting at now spends. Seeded per-load spikes and the
// windowed slow-loader brownout stack — a spike during the window pays both.
func (inj *Injector) ExtraLoadLatency(now time.Duration, path string) time.Duration {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var extra time.Duration
	if inj.plan.SlowLoadExtra > 0 && now >= inj.plan.SlowFrom &&
		(inj.plan.SlowUntil <= 0 || now < inj.plan.SlowUntil) {
		inj.stats.SlowLoads++
		extra += inj.plan.SlowLoadExtra
	}
	if inj.plan.SpikeRate > 0 {
		n := inj.loadN[path]
		inj.loadN[path] = n + 1
		if inj.roll("spike", path, n) < inj.plan.SpikeRate {
			inj.stats.LatencySpikes++
			extra += inj.plan.spike()
		}
	}
	return extra
}

// DisabledIDs returns the seeded subset of solution IDs the find path must
// report unavailable. Callers copy the result into miopen's Ctx.Disabled.
func (inj *Injector) DisabledIDs(ids []string) []string {
	if inj == nil || inj.plan.DisableRate <= 0 {
		return nil
	}
	var out []string
	for _, id := range ids {
		if inj.roll("disable", id, 0) < inj.plan.DisableRate {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// PullOutcome is the fate of one cache-image pull attempt.
type PullOutcome int

const (
	// PullOK: the transfer completes and the bytes land intact.
	PullOK PullOutcome = iota
	// PullCorrupt: the transfer completes but the landed bytes are damaged.
	// The attach-side content address catches it.
	PullCorrupt
	// PullTruncated: the transfer dies partway; nothing lands and the
	// puller retries with backoff.
	PullTruncated
	// PullKilled: the node dies mid-pull and never seeds — it serves cold.
	PullKilled
)

// String names the outcome for traces and test failures.
func (o PullOutcome) String() string {
	switch o {
	case PullOK:
		return "ok"
	case PullCorrupt:
		return "corrupt"
	case PullTruncated:
		return "truncated"
	case PullKilled:
		return "killed"
	}
	return fmt.Sprintf("PullOutcome(%d)", int(o))
}

// PullFault rolls the image-distribution fate of one pull attempt by node.
// Node death is rolled once per node (attempt-independent) and wins over
// the transfer faults; truncation is rolled per attempt, so a retried pull
// faces fresh odds and bounded retry can win; corruption is rolled per
// attempt after truncation. Deterministic in (seed, node, attempt).
func (inj *Injector) PullFault(node string, attempt int) PullOutcome {
	if inj == nil {
		return PullOK
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.plan.NodeKillRate > 0 && inj.roll("img-kill", node, 0) < inj.plan.NodeKillRate {
		if !inj.killed[node] {
			inj.killed[node] = true
			inj.stats.NodeKills++
		}
		return PullKilled
	}
	if inj.plan.ImgTruncateRate > 0 && inj.roll("img-trunc", node, attempt) < inj.plan.ImgTruncateRate {
		inj.stats.PullTruncates++
		return PullTruncated
	}
	if inj.plan.ImgCorruptRate > 0 && inj.roll("img-corrupt", node, attempt) < inj.plan.ImgCorruptRate {
		inj.stats.PullCorrupts++
		return PullCorrupt
	}
	return PullOK
}

// ArmReset spawns a watcher that fires the plan's device reset (calling
// reset, typically Runtime.UnloadAll) at DeviceResetAt. Arming is
// idempotent: one watcher per injector regardless of instance churn.
func (inj *Injector) ArmReset(env *sim.Env, reset func()) {
	if inj == nil || inj.plan.DeviceResetAt <= 0 {
		return
	}
	inj.mu.Lock()
	if inj.armed {
		inj.mu.Unlock()
		return
	}
	inj.armed = true
	at := inj.plan.DeviceResetAt
	inj.mu.Unlock()
	env.Spawn("fault-reset", func(p *sim.Proc) {
		p.SleepUntil(at)
		inj.mu.Lock()
		inj.stats.Resets++
		inj.mu.Unlock()
		reset()
	})
}

// Stats returns a snapshot of injected-fault counts.
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// ParsePlan decodes a comma-separated fault spec such as
//
//	"transient=0.1,permanent=0.02,seed=7,burst=2,spike=0.05,spike_ms=3,reset_ms=40,disable=0.1,
//	 slow_ms=1,slow_from_ms=10,slow_until_ms=30,flood_n=20,flood_ms=5,flood_gap_ms=0.1,
//	 img_corrupt=0.2,img_truncate=0.2,img_kill=0.1"
//
// Keys the plan does not own are returned in leftover for the caller —
// command-line tools piggyback scenario keys (model=..., requests=...) on
// the same flag.
func ParsePlan(spec string) (Plan, map[string]string, error) {
	var p Plan
	leftover := make(map[string]string)
	if strings.TrimSpace(spec) == "" {
		return p, leftover, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return p, nil, fmt.Errorf("faults: bad spec element %q (want key=value)", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		rate := func() (float64, error) {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return 0, fmt.Errorf("faults: %s=%q is not a rate in [0,1]", key, val)
			}
			return f, nil
		}
		ms := func() (time.Duration, error) {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return 0, fmt.Errorf("faults: %s=%q is not a millisecond count", key, val)
			}
			return time.Duration(f * float64(time.Millisecond)), nil
		}
		gpuIdx := func() (int, error) {
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("faults: %s=%q is not a host GPU index", key, val)
			}
			return n, nil
		}
		var err error
		switch key {
		case "transient":
			p.TransientRate, err = rate()
		case "permanent":
			p.PermanentRate, err = rate()
		case "spike":
			p.SpikeRate, err = rate()
		case "disable":
			p.DisableRate, err = rate()
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("faults: seed=%q is not an integer", val)
			}
		case "burst":
			var b int
			b, err = strconv.Atoi(val)
			if err != nil || b < 0 {
				err = fmt.Errorf("faults: burst=%q is not a non-negative integer", val)
			}
			p.MaxTransientBurst = b
		case "spike_ms":
			p.SpikeExtra, err = ms()
		case "reset_ms":
			p.DeviceResetAt, err = ms()
		case "slow_ms":
			p.SlowLoadExtra, err = ms()
		case "slow_from_ms":
			p.SlowFrom, err = ms()
		case "slow_until_ms":
			p.SlowUntil, err = ms()
		case "flood_n":
			var n int
			n, err = strconv.Atoi(val)
			if err != nil || n < 0 {
				err = fmt.Errorf("faults: flood_n=%q is not a non-negative integer", val)
			}
			p.FloodN = n
		case "flood_ms":
			p.FloodAt, err = ms()
		case "flood_gap_ms":
			p.FloodGap, err = ms()
		case "img_corrupt":
			p.ImgCorruptRate, err = rate()
		case "img_truncate":
			p.ImgTruncateRate, err = rate()
		case "img_kill":
			p.NodeKillRate, err = rate()
		case "gpu_kill_ms":
			p.GPUKillAt, err = ms()
		case "gpu_kill":
			p.GPUKillIdx, err = gpuIdx()
		case "gpu_kill_rate":
			p.GPUKillRate, err = rate()
		case "gpu_kill_from_ms":
			p.GPUKillFrom, err = ms()
		case "gpu_kill_until_ms":
			p.GPUKillUntil, err = ms()
		case "degrade_factor":
			var f float64
			f, err = strconv.ParseFloat(val, 64)
			if err != nil || f < 1 {
				err = fmt.Errorf("faults: degrade_factor=%q is not a multiplier >= 1", val)
			}
			p.DegradeFactor = f
		case "degrade_transient":
			p.DegradeTransient, err = rate()
		case "degrade_from_ms":
			p.DegradeFrom, err = ms()
		case "degrade_until_ms":
			p.DegradeUntil, err = ms()
		case "degrade_gpu":
			p.DegradeGPU, err = gpuIdx()
		case "link_flap_from_ms":
			p.LinkFlapFrom, err = ms()
		case "link_flap_until_ms":
			p.LinkFlapUntil, err = ms()
		case "link_flap_gpu":
			p.LinkFlapGPU, err = gpuIdx()
		case "link_flap_stall_ms":
			p.LinkFlapStall, err = ms()
		default:
			leftover[key] = val
		}
		if err != nil {
			return p, nil, err
		}
	}
	for _, w := range []struct {
		name        string
		from, until time.Duration
	}{
		{"gpu_kill", p.GPUKillFrom, p.GPUKillUntil},
		{"degrade", p.DegradeFrom, p.DegradeUntil},
		{"link_flap", p.LinkFlapFrom, p.LinkFlapUntil},
	} {
		if w.until > 0 && w.until <= w.from {
			return p, nil, fmt.Errorf("faults: %s window [%v, %v) is empty", w.name, w.from, w.until)
		}
	}
	return p, leftover, nil
}
