package faults

import (
	"fmt"
	"time"

	"pask/internal/codeobj"
	"pask/internal/sim"
)

// defaultKillWindow bounds the seeded device-loss window when the plan sets
// a rate but no explicit [from, until) interval.
const defaultKillWindow = 50 * time.Millisecond

// DeviceLossAt reports whether host GPU idx is condemned to die, and when.
// A scheduled kill (GPUKillAt on GPUKillIdx) wins for its GPU; other GPUs
// roll the seeded GPUKillRate and, if condemned, die at a seeded instant
// inside [GPUKillFrom, GPUKillUntil). Deterministic in (seed, idx).
func (inj *Injector) DeviceLossAt(idx int) (time.Duration, bool) {
	if inj == nil {
		return 0, false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.plan.GPUKillAt > 0 && idx == inj.plan.GPUKillIdx {
		return inj.plan.GPUKillAt, true
	}
	if inj.plan.GPUKillRate <= 0 {
		return 0, false
	}
	key := fmt.Sprintf("gpu%d", idx)
	if inj.roll("gpu-kill", key, 0) >= inj.plan.GPUKillRate {
		return 0, false
	}
	window := inj.plan.GPUKillUntil - inj.plan.GPUKillFrom
	if window <= 0 {
		window = defaultKillWindow
	}
	frac := inj.roll("gpu-kill-at", key, 0)
	return inj.plan.GPUKillFrom + time.Duration(frac*float64(window)), true
}

// ArmGPUDeath spawns a watcher that kills host GPU idx (calling kill,
// typically Backend.MarkDeviceLost) at its condemned instant, if any.
// Arming is idempotent per GPU regardless of instance churn.
func (inj *Injector) ArmGPUDeath(env *sim.Env, idx int, kill func()) {
	at, ok := inj.DeviceLossAt(idx)
	if !ok {
		return
	}
	inj.mu.Lock()
	if inj.armedGPU[idx] {
		inj.mu.Unlock()
		return
	}
	inj.armedGPU[idx] = true
	inj.mu.Unlock()
	env.Spawn(fmt.Sprintf("fault-gpu-death-%d", idx), func(p *sim.Proc) {
		p.SleepUntil(at)
		inj.mu.Lock()
		inj.stats.GPULosses++
		inj.mu.Unlock()
		kill()
	})
}

// LinkFault rolls the fate of a peer transfer over the host link between
// GPUs i and j starting at now. While the flap window is open and the link
// touches LinkFlapGPU, the transfer either fails outright (down=true, after
// wasting stall detecting it) or — with LinkFlapStall set — stalls that
// long but completes (down=false, stall>0).
func (inj *Injector) LinkFault(now time.Duration, i, j int) (stall time.Duration, down bool) {
	if inj == nil {
		return 0, false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	p := inj.plan
	if p.LinkFlapFrom <= 0 && p.LinkFlapUntil <= 0 && p.LinkFlapStall <= 0 {
		return 0, false
	}
	if i != p.LinkFlapGPU && j != p.LinkFlapGPU {
		return 0, false
	}
	if now < p.LinkFlapFrom || (p.LinkFlapUntil > 0 && now >= p.LinkFlapUntil) {
		return 0, false
	}
	inj.stats.LinkFaults++
	if p.LinkFlapStall > 0 {
		return p.LinkFlapStall, false
	}
	return 0, true
}

func (inj *Injector) degradeActiveLocked(now time.Duration) bool {
	p := inj.plan
	if p.DegradeFactor <= 1 && p.DegradeTransient <= 0 {
		return false
	}
	return now >= p.DegradeFrom && (p.DegradeUntil <= 0 || now < p.DegradeUntil)
}

// GPUInjector is the per-GPU view of an Injector that the backend registry
// consumes: shared latency faults plus the device-scoped degradation
// effects, applied only on the configured GPU inside its window.
type GPUInjector struct {
	inj *Injector
	idx int
}

// GPUView returns the injector as seen from host GPU idx. The view shares
// the parent's seed, counters and stats; a nil parent yields a nil view,
// which is safe to install (the registry treats it as inert).
func (inj *Injector) GPUView(idx int) *GPUInjector {
	if inj == nil {
		return nil
	}
	return &GPUInjector{inj: inj, idx: idx}
}

// GPU returns the host GPU index this view scopes to.
func (v *GPUInjector) GPU() int { return v.idx }

// ExtraLoadLatency implements backend.LoadFaultInjector by delegating to
// the shared injector: spikes and the slow-loader brownout hit every GPU.
func (v *GPUInjector) ExtraLoadLatency(now time.Duration, path string) time.Duration {
	if v == nil {
		return 0
	}
	return v.inj.ExtraLoadLatency(now, path)
}

// LoadLatencyScale implements backend.LoadLatencyScaler: the multiplier
// applied to modeled load time on this GPU at now (1 when healthy).
func (v *GPUInjector) LoadLatencyScale(now time.Duration) float64 {
	if v == nil {
		return 1
	}
	inj := v.inj
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if v.idx != inj.plan.DegradeGPU || inj.plan.DegradeFactor <= 1 || !inj.degradeActiveLocked(now) {
		return 1
	}
	inj.stats.DegradedLoads++
	return inj.plan.DegradeFactor
}

// ExtraLoadError implements backend.LoadErrorInjector: the elevated
// transient error rate a degraded GPU's loads face inside the window.
// Consecutive failures per path are burst-capped so bounded retry wins.
func (v *GPUInjector) ExtraLoadError(now time.Duration, path string) error {
	if v == nil {
		return nil
	}
	inj := v.inj
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if v.idx != inj.plan.DegradeGPU || inj.plan.DegradeTransient <= 0 || !inj.degradeActiveLocked(now) {
		return nil
	}
	key := fmt.Sprintf("gpu%d|%s", v.idx, path)
	n := inj.degN[key]
	inj.degN[key] = n + 1
	if inj.degBurst[key] >= inj.plan.burst() {
		inj.degBurst[key] = 0
		return nil
	}
	if inj.roll("degrade", key, n) < inj.plan.DegradeTransient {
		inj.degBurst[key]++
		inj.stats.DegradedFaults++
		return fmt.Errorf("faults: injected ECC degradation reading %q on gpu%d (access %d): %w",
			path, v.idx, n, codeobj.ErrIO)
	}
	inj.degBurst[key] = 0
	return nil
}
