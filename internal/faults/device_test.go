package faults

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pask/internal/codeobj"
	"pask/internal/sim"
)

func TestParsePlanDeviceKeys(t *testing.T) {
	p, left, err := ParsePlan("gpu_kill_ms=25,gpu_kill=2,gpu_kill_rate=0.3,gpu_kill_from_ms=10,gpu_kill_until_ms=60," +
		"degrade_factor=4,degrade_transient=0.5,degrade_from_ms=5,degrade_until_ms=15,degrade_gpu=1," +
		"link_flap_from_ms=20,link_flap_until_ms=40,link_flap_gpu=3,link_flap_stall_ms=2")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.GPUKillAt != 25*time.Millisecond || p.GPUKillIdx != 2 || p.GPUKillRate != 0.3 ||
		p.GPUKillFrom != 10*time.Millisecond || p.GPUKillUntil != 60*time.Millisecond {
		t.Fatalf("gpu-kill fields mismatch: %+v", p)
	}
	if p.DegradeFactor != 4 || p.DegradeTransient != 0.5 || p.DegradeGPU != 1 ||
		p.DegradeFrom != 5*time.Millisecond || p.DegradeUntil != 15*time.Millisecond {
		t.Fatalf("degrade fields mismatch: %+v", p)
	}
	if p.LinkFlapFrom != 20*time.Millisecond || p.LinkFlapUntil != 40*time.Millisecond ||
		p.LinkFlapGPU != 3 || p.LinkFlapStall != 2*time.Millisecond {
		t.Fatalf("link-flap fields mismatch: %+v", p)
	}
	if len(left) != 0 {
		t.Fatalf("unexpected leftovers: %v", left)
	}
}

func TestParsePlanDeviceKeysMalformed(t *testing.T) {
	for _, spec := range []string{
		"gpu_kill_rate=1.5",            // rate out of range
		"gpu_kill=-1",                  // negative GPU index
		"gpu_kill=1.5",                 // fractional GPU index
		"gpu_kill_ms=-3",               // negative time
		"degrade_factor=0.5",           // multiplier below 1
		"degrade_factor=x",             // not a number
		"degrade_transient=-0.1",       // negative rate
		"degrade_gpu=one",              // not an index
		"link_flap_gpu=-2",             // negative GPU index
		"link_flap_stall_ms=-1",        // negative stall
		"gpu_kill_from_ms=30,gpu_kill_until_ms=30",   // empty window
		"degrade_from_ms=20,degrade_until_ms=10",     // inverted window
		"link_flap_from_ms=50,link_flap_until_ms=40", // inverted window
	} {
		if _, _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted a malformed spec", spec)
		}
	}
	// A zero until means "forever" and must stay legal.
	if _, _, err := ParsePlan("degrade_factor=2,degrade_from_ms=10"); err != nil {
		t.Fatalf("open-ended window rejected: %v", err)
	}
}

func TestDeviceLossAtScheduledAndSeeded(t *testing.T) {
	var nilInj *Injector
	if _, ok := nilInj.DeviceLossAt(0); ok {
		t.Fatal("nil injector condemned a GPU")
	}

	// Scheduled kill hits exactly its GPU at exactly its time.
	inj := New(Plan{GPUKillAt: 25 * time.Millisecond, GPUKillIdx: 1})
	if at, ok := inj.DeviceLossAt(1); !ok || at != 25*time.Millisecond {
		t.Fatalf("DeviceLossAt(1) = %v, %v", at, ok)
	}
	if _, ok := inj.DeviceLossAt(0); ok {
		t.Fatal("scheduled kill leaked onto another GPU")
	}

	// Seeded kills are deterministic in (seed, idx) and land inside the window.
	plan := Plan{Seed: 7, GPUKillRate: 0.5,
		GPUKillFrom: 10 * time.Millisecond, GPUKillUntil: 60 * time.Millisecond}
	a, b := New(plan), New(plan)
	var condemned int
	for idx := 0; idx < 32; idx++ {
		atA, okA := a.DeviceLossAt(idx)
		atB, okB := b.DeviceLossAt(idx)
		if okA != okB || atA != atB {
			t.Fatalf("gpu %d: replay diverged (%v,%v) vs (%v,%v)", idx, atA, okA, atB, okB)
		}
		if okA {
			condemned++
			if atA < plan.GPUKillFrom || atA >= plan.GPUKillUntil {
				t.Fatalf("gpu %d dies at %v, outside [%v, %v)", idx, atA, plan.GPUKillFrom, plan.GPUKillUntil)
			}
		}
	}
	if condemned == 0 || condemned == 32 {
		t.Fatalf("condemned %d of 32 GPUs at rate 0.5", condemned)
	}
}

func TestArmGPUDeathFiresOnceAndCounts(t *testing.T) {
	env := sim.NewEnv()
	inj := New(Plan{GPUKillAt: 5 * time.Millisecond, GPUKillIdx: 0})
	kills := 0
	inj.ArmGPUDeath(env, 0, func() { kills++ })
	inj.ArmGPUDeath(env, 0, func() { kills++ }) // idempotent per GPU
	inj.ArmGPUDeath(env, 1, func() { kills++ }) // not condemned: no watcher
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if kills != 1 {
		t.Fatalf("kill fired %d times, want 1", kills)
	}
	if env.Now() != 5*time.Millisecond {
		t.Fatalf("death fired at %v, want 5ms", env.Now())
	}
	if inj.Stats().GPULosses != 1 {
		t.Fatalf("GPULosses = %d, want 1", inj.Stats().GPULosses)
	}
}

func TestLinkFaultWindowAndTarget(t *testing.T) {
	var nilInj *Injector
	if _, down := nilInj.LinkFault(0, 0, 1); down {
		t.Fatal("nil injector flapped a link")
	}

	plan := Plan{LinkFlapFrom: 20 * time.Millisecond, LinkFlapUntil: 40 * time.Millisecond, LinkFlapGPU: 1}
	inj := New(plan)
	if _, down := inj.LinkFault(10*time.Millisecond, 0, 1); down {
		t.Fatal("flap fired before the window")
	}
	if _, down := inj.LinkFault(40*time.Millisecond, 0, 1); down {
		t.Fatal("flap fired at the exclusive window end")
	}
	if _, down := inj.LinkFault(30*time.Millisecond, 0, 2); down {
		t.Fatal("flap hit a link not touching the target GPU")
	}
	if stall, down := inj.LinkFault(20*time.Millisecond, 1, 3); !down || stall != 0 {
		t.Fatalf("in-window transfer on the flapping GPU = (%v, %v), want hard failure", stall, down)
	}
	if inj.Stats().LinkFaults != 1 {
		t.Fatalf("LinkFaults = %d, want 1", inj.Stats().LinkFaults)
	}

	// With a stall configured the transfer survives but pays the stall.
	slow := New(Plan{LinkFlapFrom: 20 * time.Millisecond, LinkFlapUntil: 40 * time.Millisecond,
		LinkFlapGPU: 1, LinkFlapStall: 3 * time.Millisecond})
	if stall, down := slow.LinkFault(25*time.Millisecond, 2, 1); down || stall != 3*time.Millisecond {
		t.Fatalf("stalled transfer = (%v, %v), want 3ms stall without failure", stall, down)
	}
}

func TestGPUViewScopesDegradation(t *testing.T) {
	var nilInj *Injector
	if v := nilInj.GPUView(0); v != nil {
		t.Fatal("nil injector produced a view")
	}
	var nilView *GPUInjector
	if nilView.LoadLatencyScale(0) != 1 || nilView.ExtraLoadError(0, "m.pko") != nil ||
		nilView.ExtraLoadLatency(0, "m.pko") != 0 {
		t.Fatal("nil view is not inert")
	}

	inj := New(Plan{Seed: 3, DegradeGPU: 1, DegradeFactor: 4, DegradeTransient: 1,
		DegradeFrom: 10 * time.Millisecond, DegradeUntil: 30 * time.Millisecond})
	sick, healthy := inj.GPUView(1), inj.GPUView(0)
	if sick.GPU() != 1 || healthy.GPU() != 0 {
		t.Fatalf("view indices = %d, %d", sick.GPU(), healthy.GPU())
	}

	// Scaling hits only the degraded GPU inside the window.
	if f := healthy.LoadLatencyScale(20 * time.Millisecond); f != 1 {
		t.Fatalf("healthy GPU scaled by %v", f)
	}
	if f := sick.LoadLatencyScale(5 * time.Millisecond); f != 1 {
		t.Fatalf("pre-window scale = %v", f)
	}
	if f := sick.LoadLatencyScale(20 * time.Millisecond); f != 4 {
		t.Fatalf("in-window scale = %v, want 4", f)
	}
	if f := sick.LoadLatencyScale(30 * time.Millisecond); f != 1 {
		t.Fatalf("post-window scale = %v", f)
	}

	// The elevated transient rate is typed, burst-capped, and scoped the
	// same way.
	if err := healthy.ExtraLoadError(20*time.Millisecond, "m.pko"); err != nil {
		t.Fatalf("healthy GPU saw degradation error %v", err)
	}
	err := sick.ExtraLoadError(20*time.Millisecond, "m.pko")
	if err == nil {
		t.Fatal("rate-1 degradation injected nothing")
	}
	if !errors.Is(err, codeobj.ErrIO) {
		t.Fatalf("degradation error %v does not wrap codeobj.ErrIO", err)
	}
	if !strings.Contains(err.Error(), "gpu1") {
		t.Errorf("degradation error %q does not name the GPU", err)
	}
	// Default burst cap is 2: the third consecutive roll passes.
	if err := sick.ExtraLoadError(20*time.Millisecond, "m.pko"); err == nil {
		t.Fatal("second consecutive fault should fire under the default burst cap")
	}
	if err := sick.ExtraLoadError(20*time.Millisecond, "m.pko"); err != nil {
		t.Fatalf("burst cap did not break the failure run: %v", err)
	}

	st := inj.Stats()
	if st.DegradedLoads != 1 || st.DegradedFaults != 2 {
		t.Fatalf("stats = %+v, want 1 degraded load and 2 degraded faults", st)
	}
}
