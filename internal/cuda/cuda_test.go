package cuda

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pask/internal/backend"
	"pask/internal/backend/conformancetest"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/sim"
)

// The CUDA runtime must satisfy every invariant of the shared backend
// contract (DESIGN.md §15) — same table the HIP flavor runs.
func TestBackendConformance(t *testing.T) {
	conformancetest.Run(t, func(env *sim.Env, gpu *device.GPU, host device.HostProfile, store *codeobj.Store) backend.Backend {
		return NewRuntime(env, gpu, host, store)
	})
}

func newTestRuntime(t *testing.T) (*sim.Env, *Runtime) {
	t.Helper()
	env := sim.NewEnv()
	prof := device.A100()
	gpu := device.NewGPU(env, prof)
	st := codeobj.NewStore()
	if err := st.PutBuilt("gemm.pko", prof.Arch, []codeobj.KernelSpec{
		{Name: "gemm_main", Pattern: "GEMM", CodeSize: 40000},
		{Name: "gemm_epilogue", Pattern: "GEMM", CodeSize: 8000},
	}); err != nil {
		t.Fatal(err)
	}
	return env, NewRuntime(env, gpu, device.DefaultHost(), st)
}

func runHost(t *testing.T, env *sim.Env, rt *Runtime, fn func(p *sim.Proc)) {
	t.Helper()
	env.Spawn("host", func(p *sim.Proc) {
		defer rt.GPU().CloseAll()
		fn(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// CUDA defers per-symbol resolution to first use (lazy module loading): the
// load itself charges only the fixed + bandwidth cost, and each symbol's
// SymbolResolve lands at its first cuModuleGetFunction.
func TestLazySymbolResolution(t *testing.T) {
	env, rt := newTestRuntime(t)
	prof := rt.GPU().Profile
	runHost(t, env, rt, func(p *sim.Proc) {
		start := p.Now()
		m, err := rt.ModuleLoad(p, "gemm.pko")
		if err != nil {
			t.Fatal(err)
		}
		loadCost := p.Now() - start
		if want := prof.LoadTime(int64(rt.Store().Size("gemm.pko")), 0); loadCost != want {
			t.Errorf("lazy load charged %v, want %v (no symbol cost)", loadCost, want)
		}
		before := p.Now()
		if _, err := rt.ModuleGetFunction(p, m, "gemm_main"); err != nil {
			t.Fatal(err)
		}
		if got := p.Now() - before; got != prof.SymbolResolve {
			t.Errorf("first lookup charged %v, want %v", got, prof.SymbolResolve)
		}
		before = p.Now()
		if _, err := rt.ModuleGetFunction(p, m, "gemm_main"); err != nil {
			t.Fatal(err)
		}
		if p.Now() != before {
			t.Errorf("repeat lookup charged %v", p.Now()-before)
		}
	})
}

// Error texts follow the CUDA driver-API style and keep their semantic
// wrappers (missing objects stay transient-checkable, codeobj causes stay
// unwrappable).
func TestCUDAErrorTexts(t *testing.T) {
	env, rt := newTestRuntime(t)
	rt.Store().Put("bad.pko", []byte("junk"))
	runHost(t, env, rt, func(p *sim.Proc) {
		_, err := rt.ModuleLoad(p, "missing.pko")
		if err == nil || !strings.Contains(err.Error(), "CUDA_ERROR_FILE_NOT_FOUND") {
			t.Errorf("missing object error = %v", err)
		}
		_, err = rt.ModuleLoad(p, "bad.pko")
		if err == nil || !strings.Contains(err.Error(), "CUDA_ERROR_INVALID_IMAGE") {
			t.Errorf("corrupt object error = %v", err)
		}
		if !errors.Is(err, codeobj.ErrBadMagic) && !errors.Is(err, codeobj.ErrTruncated) && !errors.Is(err, codeobj.ErrChecksum) {
			t.Errorf("parse cause not unwrappable: %v", err)
		}
		m, lerr := rt.ModuleLoad(p, "gemm.pko")
		if lerr != nil {
			t.Fatal(lerr)
		}
		_, err = rt.ModuleGetFunction(p, m, "nope")
		if err == nil || !strings.Contains(err.Error(), "CUDA_ERROR_NOT_FOUND") {
			t.Errorf("missing symbol error = %v", err)
		}
	})
}

// The CUDA flavor retries transient faults on its own, tighter default
// policy: two extra attempts, 100µs first backoff.
func TestCUDADefaultRetryPolicy(t *testing.T) {
	if got, want := DefaultRetryPolicy(), (backend.RetryPolicy{MaxRetries: 2, Backoff: 100 * time.Microsecond, MaxBackoff: 400 * time.Microsecond}); got != want {
		t.Fatalf("DefaultRetryPolicy() = %+v, want %+v", got, want)
	}
	env, rt := newTestRuntime(t)
	hook := &failFirstN{n: 2}
	rt.Store().SetFaultHook(hook)
	runHost(t, env, rt, func(p *sim.Proc) {
		if _, err := rt.ModuleLoad(p, "gemm.pko"); err != nil {
			t.Fatalf("default policy must absorb two transient faults: %v", err)
		}
	})
	if st := rt.Stats(); st.TransientRetries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

type failFirstN struct{ n int }

func (f *failFirstN) StoreGet(path string, data []byte) ([]byte, error) {
	if f.n > 0 {
		f.n--
		return nil, codeobj.ErrIO
	}
	return data, nil
}
