// Package cuda is the CUDA flavor of the pluggable device backend,
// modeling the NVIDIA driver the paper's A100 (sm_80) measurements run on
// (paper §II-A — the lazy-loading cold start is common to both vendor
// stacks, Fig 3). It plugs into the generic internal/backend registry with
// the same shared-residency semantics as the HIP flavor (§III-B/C) and
// differs only where the real drivers differ:
//
//   - Lazy module loading (CUDA_MODULE_LOADING=LAZY, the default since CUDA
//     12): cuModuleLoad maps the cubin but defers per-symbol finalization,
//     so the SymbolResolve cost lands on the first cuModuleGetFunction of
//     each kernel instead of inside the load. Total cost is unchanged; its
//     placement shifts from load to first use.
//   - CUDA_ERROR_*-styled error texts, the strings the driver API returns
//     for missing images, malformed cubins, ISA mismatches and unresolved
//     symbols.
//   - A tighter default retry posture: the datacenter A100 profile assumes
//     a nearby NVMe-backed store, so fewer, faster retries than the HIP
//     flavor's patient policy.
//
// Paper anchor: §II-A lazy loading (Fig 3) on the paper's A100/sm_80 testbed.
package cuda

import (
	"fmt"
	"time"

	"pask/internal/backend"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/sim"
)

// Runtime is one view of a GPU's shared module registry, CUDA-flavored.
type Runtime = backend.Registry

// DefaultRetryPolicy returns the CUDA flavor's retry posture: two quick
// retries with a tight backoff cap, tuned for a local NVMe store.
func DefaultRetryPolicy() backend.RetryPolicy {
	return backend.RetryPolicy{MaxRetries: 2, Backoff: 100 * time.Microsecond, MaxBackoff: 400 * time.Microsecond}
}

// Flavor is the CUDA driver surface plugged into the generic registry.
type Flavor struct{}

// Driver names the backend.
func (Flavor) Driver() string { return "cuda" }

// DefaultRetry is the policy used when SetRetry was never called.
func (Flavor) DefaultRetry() backend.RetryPolicy { return DefaultRetryPolicy() }

// LazySymbols is true: lazy module loading defers per-symbol finalization
// to the first cuModuleGetFunction of each kernel.
func (Flavor) LazySymbols() bool { return true }

// LoadError decorates a store-read failure during ModuleLoad.
func (Flavor) LoadError(path string, cause error) error {
	return fmt.Errorf("cuda: cuModuleLoad %q: CUDA_ERROR_FILE_NOT_FOUND: %w", path, cause)
}

// ParseError decorates a rejected container during ModuleLoad.
func (Flavor) ParseError(path string, cause error) error {
	return fmt.Errorf("cuda: cuModuleLoad %q: CUDA_ERROR_INVALID_IMAGE: %w", path, cause)
}

// ArchError reports an object whose ISA does not match the device.
func (Flavor) ArchError(path, objArch, devArch string) error {
	return fmt.Errorf("cuda: cuModuleLoad %q: CUDA_ERROR_NO_BINARY_FOR_GPU: object arch %q, device %q", path, objArch, devArch)
}

// SymbolError reports a kernel symbol missing from a loaded module.
func (Flavor) SymbolError(name, module string) error {
	return fmt.Errorf("cuda: cuModuleGetFunction %q in %q: CUDA_ERROR_NOT_FOUND", name, module)
}

// ResidentLoadError decorates a store-read failure during RegisterResident
// (the fatbin-registration path of statically linked kernels).
func (Flavor) ResidentLoadError(path string, cause error) error {
	return fmt.Errorf("cuda: RegisterFatBinary %q: %w", path, cause)
}

// ResidentParseError decorates a rejected container during RegisterResident.
func (Flavor) ResidentParseError(path string, cause error) error {
	return fmt.Errorf("cuda: RegisterFatBinary %q: CUDA_ERROR_INVALID_IMAGE: %w", path, cause)
}

// DeviceLostError is the CUDA rendering of a dead device: every driver call
// on a lost GPU returns CUDA_ERROR_DEVICE_LOST.
func (Flavor) DeviceLostError() error {
	return fmt.Errorf("cuda: CUDA_ERROR_DEVICE_LOST: %w", backend.ErrDeviceLost)
}

// NewRuntime creates a cold CUDA-flavored runtime over the given device and
// code-object store and returns its root view.
func NewRuntime(env *sim.Env, gpu *device.GPU, host device.HostProfile, store *codeobj.Store) *Runtime {
	return backend.New(env, gpu, host, store, Flavor{})
}
