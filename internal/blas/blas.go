// Package blas implements the GEMM library of the simulated stack — the
// hipBLAS stand-in that serves matrix multiplication for transformer models.
// It follows the same find-and-run discipline as the primitive library
// (paper Fig 3) but is a *separate* library with its own code objects, which
// is why PASK's default deployment cannot reuse kernels for GEMM-dominated
// models (paper §VI "Library supporting"). The SelectHook lets the §VI
// extension bring BLAS under PASK's management.
//
// Paper anchor: §VI "Library supporting" and the Fig 3 GEMM-library seam.
package blas

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"time"

	"pask/internal/backend"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/kernels"
	"pask/internal/sim"
	"pask/internal/tensor"
)

// Problem describes one (possibly batched) GEMM: C[M,N] = A[M,K] * B[K,N].
type Problem struct {
	M, N, K        int
	Batch          int
	TransA, TransB bool
	DType          tensor.DType
}

// Valid reports whether dimensions are positive.
func (p *Problem) Valid() bool {
	return p.M > 0 && p.N > 0 && p.K > 0 && p.Batch > 0
}

// Key returns the canonical identity used by the find cache.
func (p *Problem) Key() string {
	return fmt.Sprintf("gemm-m%dn%dk%d-b%d-t%v%v-%v", p.M, p.N, p.K, p.Batch, p.TransA, p.TransB, p.DType)
}

// Workload returns the arithmetic and traffic of the full batched GEMM.
func (p *Problem) Workload() kernels.Workload {
	w := kernels.GemmWorkload(p.M, p.N, p.K, p.DType)
	return kernels.Workload{Flops: w.Flops * int64(p.Batch), Bytes: w.Bytes * int64(p.Batch)}
}

// Kernel is one GEMM implementation tier.
type Kernel struct {
	ID      string
	Spec    int // specialization level, higher = faster + narrower
	effFn   func(p *Problem) float64
	appliFn func(dev device.Profile, p *Problem) bool
	bindFn  func(p *Problem) string
	size    int
}

// Binding returns the compile-time binding for p ("" when binding-free).
func (k *Kernel) Binding(p *Problem) string {
	if k.bindFn == nil {
		return ""
	}
	return k.bindFn(p)
}

// Applicable reports whether the kernel can run p on dev.
func (k *Kernel) Applicable(dev device.Profile, p *Problem) bool {
	return p.Valid() && k.appliFn(dev, p)
}

// Instance is a kernel at a concrete binding — the loadable unit.
type Instance struct {
	Kern    *Kernel
	Binding string
}

// Path returns the code-object store path.
func (i Instance) Path() string {
	if i.Binding == "" {
		return "blas_" + i.Kern.ID + ".pko"
	}
	return "blas_" + i.Kern.ID + "_" + i.Binding + ".pko"
}

// Symbol returns the launchable kernel symbol.
func (i Instance) Symbol() string {
	if i.Binding == "" {
		return i.Kern.ID + "_main"
	}
	return i.Kern.ID + "_" + i.Binding + "_main"
}

// Applicable reports whether this instance serves p (family constraints plus
// binding identity).
func (i Instance) Applicable(dev device.Profile, p *Problem) bool {
	return i.Kern.Applicable(dev, p) && i.Kern.Binding(p) == i.Binding
}

// ObjectSpec returns the kernels compiled into the instance's code object.
func (i Instance) ObjectSpec() []codeobj.KernelSpec {
	return []codeobj.KernelSpec{{
		Name:     i.Symbol(),
		Pattern:  "BLAS",
		CodeSize: i.Kern.size,
		Meta:     map[string]string{"kernel": i.Kern.ID, "binding": i.Binding},
	}}
}

// gemmOccupancy models device fill from the output tile count.
func gemmOccupancy(p *Problem) float64 {
	items := int64(p.Batch) * int64(p.M) * int64(p.N)
	o := 0.05 + float64(items)/150000
	if o > 1 {
		return 1
	}
	return o
}

func mnBucket(v int) int {
	b := 32
	for b*2 <= v && b < 1024 {
		b *= 2
	}
	return b
}

// Kernels returns the library's GEMM ladder.
func Kernels() []*Kernel {
	return []*Kernel{
		{
			ID: "GemmNaive", Spec: 1,
			effFn:   func(p *Problem) float64 { return 0.08 },
			appliFn: func(dev device.Profile, p *Problem) bool { return true },
			size:    240 << 10,
		},
		{
			ID: "GemmTiled", Spec: 2,
			effFn: func(p *Problem) float64 { return 0.30 },
			appliFn: func(dev device.Profile, p *Problem) bool {
				return p.M >= 16 && p.N >= 16 && p.K >= 16 && !p.TransA
			},
			bindFn: func(p *Problem) string { return fmt.Sprintf("n%d_%s", mnBucket(p.N), p.DType) },
			size:   420 << 10,
		},
		{
			ID: "GemmXdlopsTiled", Spec: 3,
			effFn: func(p *Problem) float64 { return 0.62 },
			appliFn: func(dev device.Profile, p *Problem) bool {
				arch := dev.Arch
				hasMatrix := (len(arch) >= 4 && arch[:4] == "gfx9") || (len(arch) >= 3 && arch[:3] == "sm_")
				return hasMatrix && !p.TransA && !p.TransB && // matrix pipes need packed operands
					p.M%16 == 0 && p.N%16 == 0 && p.K%16 == 0 &&
					(p.DType == tensor.F32 || p.DType == tensor.F16)
			},
			bindFn: func(p *Problem) string {
				return fmt.Sprintf("m%dn%d_%s", mnBucket(p.M), mnBucket(p.N), p.DType)
			},
			size: 760 << 10,
		},
	}
}

// Ranked is an applicable instance with its time estimate.
type Ranked struct {
	Inst Instance
	Est  time.Duration
}

// SelectHook lets a middleware substitute the chosen instance before the
// library loads it (the PASK-for-BLAS extension). It returns the instance to
// run, which must be applicable to p.
type SelectHook func(proc *sim.Proc, p *Problem, chosen Instance) Instance

// CoreObjectPath is the shared kernel library every GEMM depends on — the
// stand-in for the vendor BLAS's bulk kernel archive whose first-touch load
// dominates transformer cold starts.
const CoreObjectPath = "blas_core.pko"

// ErrNotApplicable marks a request for an instance that cannot serve the
// problem — a programming error the degradation ladder must not absorb.
var ErrNotApplicable = errors.New("blas: instance not applicable")

const coreObjectKernels = 24

// Library is the per-process GEMM library handle.
type Library struct {
	RT   backend.Backend
	Hook SelectHook

	kernels   []*Kernel
	find      map[string][]Ranked
	runs      int
	fallbacks int
}

// NewLibrary binds the GEMM ladder to a process runtime.
func NewLibrary(rt backend.Backend) *Library {
	return &Library{RT: rt, kernels: Kernels(), find: make(map[string][]Ranked)}
}

// Find returns the applicable instances for p ranked fastest-first,
// memoized per problem key.
func (l *Library) Find(p *Problem) []Ranked {
	if r, ok := l.find[p.Key()]; ok {
		return r
	}
	var out []Ranked
	occ := gemmOccupancy(p)
	for _, k := range l.kernels {
		if !k.Applicable(l.RT.GPU().Profile, p) {
			continue
		}
		eff := k.effFn(p) * occ
		if eff < 0.01 {
			eff = 0.01
		}
		inst := Instance{Kern: k, Binding: k.Binding(p)}
		out = append(out, Ranked{Inst: inst, Est: l.RT.GPU().Profile.KernelTime(p.Workload(), eff)})
	}
	slices.SortFunc(out, func(a, b Ranked) int {
		if a.Est != b.Est {
			return cmp.Compare(a.Est, b.Est)
		}
		return cmp.Compare(a.Inst.Path(), b.Inst.Path())
	})
	l.find[p.Key()] = out
	return out
}

// Runs returns the number of Run invocations.
func (l *Library) Runs() int { return l.runs }

// Fallbacks returns how many GEMMs ran on a lower-ranked instance after the
// chosen one failed.
func (l *Library) Fallbacks() int { return l.fallbacks }

// Materialize builds the code objects of every instance that could serve the
// given problems into the store (offline compilation), plus the shared core
// kernel archive.
func (l *Library) Materialize(store *codeobj.Store, problems []Problem) error {
	if len(problems) > 0 && !store.Has(CoreObjectPath) {
		specs := make([]codeobj.KernelSpec, coreObjectKernels)
		for i := range specs {
			specs[i] = codeobj.KernelSpec{
				Name:     fmt.Sprintf("blas_core_k%d", i),
				Pattern:  "BLAS",
				CodeSize: 256 << 10, // 24 x 256 KiB: a 6 MiB kernel archive
			}
		}
		if err := store.PutBuilt(CoreObjectPath, l.RT.GPU().Profile.Arch, specs); err != nil {
			return fmt.Errorf("blas: materialize core: %w", err)
		}
	}
	for i := range problems {
		for _, r := range l.Find(&problems[i]) {
			path := r.Inst.Path()
			if store.Has(path) {
				continue
			}
			if err := store.PutBuilt(path, l.RT.GPU().Profile.Arch, r.Inst.ObjectSpec()); err != nil {
				return fmt.Errorf("blas: materialize %s: %w", path, err)
			}
		}
	}
	return nil
}

// Run executes p on the stream: find the best instance, let the hook
// substitute it, lazily load its code object (the reactive cold-start path),
// and launch. When the chosen instance cannot run — typically its code
// object fails to load — Run degrades down the ranked ladder to the next
// applicable instance instead of failing the request, mirroring the
// primitive library's recovery ladder. Returns the completion signal.
func (l *Library) Run(proc *sim.Proc, stream *device.Stream, p *Problem) (*sim.Signal, error) {
	ranked := l.Find(p)
	if len(ranked) == 0 {
		return nil, fmt.Errorf("blas: no kernel for %s", p.Key())
	}
	chosen := ranked[0].Inst
	if l.Hook != nil {
		chosen = l.Hook(proc, p, chosen)
	}
	sig, err := l.RunInstance(proc, stream, p, chosen)
	if err == nil {
		return sig, nil
	}
	if errors.Is(err, ErrNotApplicable) {
		// A bad hook substitution is a programming error, not a fault the
		// ladder should paper over.
		return nil, err
	}
	for _, r := range ranked {
		if r.Inst.Path() == chosen.Path() {
			continue
		}
		if sig, ferr := l.RunInstance(proc, stream, p, r.Inst); ferr == nil {
			l.fallbacks++
			return sig, nil
		}
	}
	return nil, err
}

// EnsureCore loads the shared kernel archive if absent — charged on the
// first GEMM of a cold process (or proactively by the PASK extension).
func (l *Library) EnsureCore(proc *sim.Proc) error {
	_, err := l.RT.ModuleLoad(proc, CoreObjectPath)
	return err
}

// RunInstance executes p with a specific kernel instance (used directly by
// the PASK-for-BLAS extension), lazily loading the shared archive and the
// instance's own code object.
func (l *Library) RunInstance(proc *sim.Proc, stream *device.Stream, p *Problem, inst Instance) (*sim.Signal, error) {
	if !inst.Applicable(l.RT.GPU().Profile, p) {
		return nil, fmt.Errorf("%w: %s to %s", ErrNotApplicable, inst.Path(), p.Key())
	}
	if err := l.EnsureCore(proc); err != nil {
		return nil, err
	}
	fn, err := l.RT.GetFunction(proc, inst.Path(), inst.Symbol())
	if err != nil {
		return nil, err
	}
	eff := inst.Kern.effFn(p) * gemmOccupancy(p)
	if eff < 0.01 {
		eff = 0.01
	}
	l.runs++
	return stream.LaunchWorkload(proc, fn.Name(), p.Workload(), eff), nil
}

// RunFunctional computes C = op(A)*op(B) on host buffers for tests.
func RunFunctional(p *Problem, a, b, c []float32) error {
	if !p.Valid() {
		return fmt.Errorf("blas: invalid problem %s", p.Key())
	}
	return kernels.Gemm(p.TransA, p.TransB, p.M, p.N, p.K, 1, a, b, 0, c)
}
