package blas

import (
	"testing"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/hip"
	"pask/internal/sim"
	"pask/internal/tensor"
)

func newTestLib(t *testing.T) (*sim.Env, *Library) {
	t.Helper()
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), codeobj.NewStore())
	return env, NewLibrary(rt)
}

func attnProblem() Problem {
	return Problem{M: 197, N: 768, K: 768, Batch: 1, DType: tensor.F32}
}

func TestProblemKeyAndWorkload(t *testing.T) {
	p := Problem{M: 64, N: 64, K: 64, Batch: 2, DType: tensor.F16}
	q := p
	q.TransB = true
	if p.Key() == q.Key() {
		t.Fatal("transpose must be in key")
	}
	w := p.Workload()
	if w.Flops != 2*2*64*64*64 {
		t.Fatalf("flops = %d", w.Flops)
	}
	bad := Problem{}
	if bad.Valid() {
		t.Fatal("zero problem must be invalid")
	}
}

func TestFindRanking(t *testing.T) {
	_, lib := newTestLib(t)
	// Aligned problem: Xdlops fastest.
	p := Problem{M: 256, N: 768, K: 768, Batch: 1, DType: tensor.F32}
	ranked := lib.Find(&p)
	if len(ranked) != 3 {
		t.Fatalf("got %d kernels", len(ranked))
	}
	if ranked[0].Inst.Kern.ID != "GemmXdlopsTiled" {
		t.Fatalf("best = %s", ranked[0].Inst.Kern.ID)
	}
	// Misaligned K: Xdlops out.
	p2 := Problem{M: 197, N: 768, K: 763, Batch: 1, DType: tensor.F32}
	for _, r := range lib.Find(&p2) {
		if r.Inst.Kern.ID == "GemmXdlopsTiled" {
			t.Fatal("Xdlops must reject misaligned K")
		}
	}
	// Naive is always available.
	p3 := Problem{M: 1, N: 3, K: 5, Batch: 1, TransA: true, DType: tensor.I8}
	ranked = lib.Find(&p3)
	if len(ranked) != 1 || ranked[0].Inst.Kern.ID != "GemmNaive" {
		t.Fatalf("fallback ranking = %+v", ranked)
	}
}

func TestNoMatrixPipesOnNavi(t *testing.T) {
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.RX6900XT())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), codeobj.NewStore())
	lib := NewLibrary(rt)
	p := Problem{M: 256, N: 256, K: 256, Batch: 1, DType: tensor.F32}
	for _, r := range lib.Find(&p) {
		if r.Inst.Kern.ID == "GemmXdlopsTiled" {
			t.Fatal("Xdlops must be rejected on gfx1030")
		}
	}
}

func TestInstancePathsAndBindings(t *testing.T) {
	p := Problem{M: 256, N: 768, K: 768, Batch: 1, DType: tensor.F16}
	for _, k := range Kernels() {
		inst := Instance{Kern: k, Binding: k.Binding(&p)}
		if k.ID == "GemmNaive" && inst.Path() != "blas_GemmNaive.pko" {
			t.Fatalf("naive path = %s", inst.Path())
		}
		if k.ID == "GemmXdlopsTiled" && inst.Path() != "blas_GemmXdlopsTiled_m256n512_f16.pko" {
			t.Fatalf("xdlops path = %s", inst.Path())
		}
	}
	// Binding identity gates instance applicability.
	xd := Kernels()[2]
	inst := Instance{Kern: xd, Binding: xd.Binding(&p)}
	other := Problem{M: 32, N: 32, K: 32, Batch: 1, DType: tensor.F16}
	if inst.Applicable(device.MI100(), &other) {
		t.Fatal("different bucket must not reuse the instance")
	}
}

func TestRunLazyLoadsAndLaunches(t *testing.T) {
	env, lib := newTestLib(t)
	p := attnProblem()
	if err := lib.Materialize(lib.RT.Store(), []Problem{p}); err != nil {
		t.Fatal(err)
	}
	var loadedDuringRun bool
	var execTime time.Duration
	env.Spawn("host", func(proc *sim.Proc) {
		defer lib.RT.GPU().CloseAll()
		start := proc.Now()
		sig, err := lib.Run(proc, lib.RT.GPU().DefaultStream(), &p)
		if err != nil {
			t.Error(err)
			return
		}
		loadedDuringRun = lib.RT.Stats().ModuleLoads == 2 && lib.RT.Loaded(CoreObjectPath)
		sig.Wait(proc)
		execTime = proc.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !loadedDuringRun {
		t.Fatal("Run must lazily load the core archive and the kernel object")
	}
	if execTime <= 0 {
		t.Fatal("no time elapsed")
	}
	if lib.Runs() != 1 {
		t.Fatalf("Runs = %d", lib.Runs())
	}
}

func TestRunSecondCallSkipsLoad(t *testing.T) {
	env, lib := newTestLib(t)
	p := attnProblem()
	if err := lib.Materialize(lib.RT.Store(), []Problem{p}); err != nil {
		t.Fatal(err)
	}
	var firstDur, secondDur time.Duration
	env.Spawn("host", func(proc *sim.Proc) {
		defer lib.RT.GPU().CloseAll()
		t0 := proc.Now()
		sig, err := lib.Run(proc, lib.RT.GPU().DefaultStream(), &p)
		if err != nil {
			t.Error(err)
			return
		}
		sig.Wait(proc)
		firstDur = proc.Now() - t0
		t1 := proc.Now()
		sig, err = lib.Run(proc, lib.RT.GPU().DefaultStream(), &p)
		if err != nil {
			t.Error(err)
			return
		}
		sig.Wait(proc)
		secondDur = proc.Now() - t1
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if secondDur >= firstDur {
		t.Fatalf("warm run (%v) not faster than cold run (%v)", secondDur, firstDur)
	}
}

func TestSelectHookSubstitutes(t *testing.T) {
	env, lib := newTestLib(t)
	p := Problem{M: 256, N: 768, K: 768, Batch: 1, DType: tensor.F32}
	if err := lib.Materialize(lib.RT.Store(), []Problem{p}); err != nil {
		t.Fatal(err)
	}
	naive := Instance{Kern: Kernels()[0]}
	lib.Hook = func(proc *sim.Proc, prob *Problem, chosen Instance) Instance {
		return naive // force the generic kernel
	}
	env.Spawn("host", func(proc *sim.Proc) {
		defer lib.RT.GPU().CloseAll()
		if _, err := lib.Run(proc, lib.RT.GPU().DefaultStream(), &p); err != nil {
			t.Error(err)
			return
		}
		if !lib.RT.Loaded("blas_GemmNaive.pko") {
			t.Error("hook substitution must load the substitute's object")
		}
		if lib.RT.Loaded("blas_GemmXdlopsTiled_m256n512_f32.pko") {
			t.Error("original specialist must not be loaded when substituted")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHookReturningInapplicableFails(t *testing.T) {
	env, lib := newTestLib(t)
	p := Problem{M: 256, N: 768, K: 768, Batch: 1, DType: tensor.F32}
	if err := lib.Materialize(lib.RT.Store(), []Problem{p}); err != nil {
		t.Fatal(err)
	}
	xd := Kernels()[2]
	lib.Hook = func(proc *sim.Proc, prob *Problem, chosen Instance) Instance {
		return Instance{Kern: xd, Binding: "m32n32_f16"} // wrong binding
	}
	env.Spawn("host", func(proc *sim.Proc) {
		defer lib.RT.GPU().CloseAll()
		if _, err := lib.Run(proc, lib.RT.GPU().DefaultStream(), &p); err == nil {
			t.Error("expected error for inapplicable substitution")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunFunctionalMatchesGemm(t *testing.T) {
	p := Problem{M: 2, N: 2, K: 2, Batch: 1, DType: tensor.F32}
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	if err := RunFunctional(&p, a, b, c); err != nil {
		t.Fatal(err)
	}
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
	bad := Problem{}
	if err := RunFunctional(&bad, nil, nil, nil); err == nil {
		t.Fatal("invalid problem must error")
	}
}

func TestRunFallsBackOnLoadFailure(t *testing.T) {
	env, lib := newTestLib(t)
	// Aligned problem: three ranked kernels, room to degrade.
	p := Problem{M: 256, N: 768, K: 768, Batch: 1, DType: tensor.F32}
	if err := lib.Materialize(lib.RT.Store(), []Problem{p}); err != nil {
		t.Fatal(err)
	}
	ranked := lib.Find(&p)
	if len(ranked) < 2 {
		t.Fatalf("need at least two kernels, got %d", len(ranked))
	}
	if err := lib.RT.Store().Truncate(ranked[0].Inst.Path(), 4); err != nil {
		t.Fatal(err)
	}
	env.Spawn("host", func(proc *sim.Proc) {
		defer lib.RT.GPU().CloseAll()
		sig, err := lib.Run(proc, lib.RT.GPU().DefaultStream(), &p)
		if err != nil {
			t.Errorf("Run did not degrade past the broken object: %v", err)
			return
		}
		sig.Wait(proc)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if lib.Fallbacks() != 1 {
		t.Fatalf("Fallbacks = %d, want 1", lib.Fallbacks())
	}
	if !lib.RT.FailedPermanently(ranked[0].Inst.Path()) {
		t.Fatal("broken object must be negatively cached")
	}
}

func TestRunFailsWhenLadderExhausted(t *testing.T) {
	env, lib := newTestLib(t)
	// Odd int8 problem: only the naive kernel applies.
	p := Problem{M: 1, N: 3, K: 5, Batch: 1, TransA: true, DType: tensor.I8}
	if err := lib.Materialize(lib.RT.Store(), []Problem{p}); err != nil {
		t.Fatal(err)
	}
	ranked := lib.Find(&p)
	if len(ranked) != 1 {
		t.Fatalf("want a single-kernel ladder, got %d", len(ranked))
	}
	if err := lib.RT.Store().Truncate(ranked[0].Inst.Path(), 4); err != nil {
		t.Fatal(err)
	}
	env.Spawn("host", func(proc *sim.Proc) {
		defer lib.RT.GPU().CloseAll()
		if _, err := lib.Run(proc, lib.RT.GPU().DefaultStream(), &p); err == nil {
			t.Error("Run succeeded with every applicable object broken")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
