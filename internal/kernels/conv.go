// Package kernels implements functional CPU reference implementations of the
// GPU kernels the simulated stack schedules: convolution by three genuinely
// different algorithms (direct, im2col+GEMM, Winograd F(2x2,3x3)), pooling,
// activations and GEMM, plus the FLOP/byte accounting the roofline timing
// model consumes.
//
// The different convolution algorithms matter: PASK's central claim (§III-B)
// is that a layer can be *re-implemented* by a substitute solution of the
// same pattern and still compute the same function. The tests in this package
// prove that equivalence numerically — the substitution rationale for running
// the data plane on the CPU.
//
// Paper anchor: §III-B substitution legality, proven numerically — the stand-in rationale for a CPU data plane.
package kernels

import (
	"fmt"

	"pask/internal/tensor"
)

// Conv2DParams describes a 2-D cross-correlation (the DL convention).
type Conv2DParams struct {
	StrideH, StrideW int
	PadH, PadW       int
	DilH, DilW       int
}

// Default1x1 returns stride-1, pad-0, dilation-1 parameters.
func Default1x1() Conv2DParams {
	return Conv2DParams{StrideH: 1, StrideW: 1, DilH: 1, DilW: 1}
}

// Valid reports whether the parameters are well formed.
func (p Conv2DParams) Valid() bool {
	return p.StrideH > 0 && p.StrideW > 0 && p.PadH >= 0 && p.PadW >= 0 && p.DilH > 0 && p.DilW > 0
}

// OutSize returns the convolution output spatial size for input size (h, w)
// and filter size (r, s). A filter larger than the padded input yields a
// non-positive size (Go's truncated division would otherwise mask it).
func (p Conv2DParams) OutSize(h, w, r, s int) (oh, ow int) {
	effR := (r-1)*p.DilH + 1
	effS := (s-1)*p.DilW + 1
	nh := h + 2*p.PadH - effR
	nw := w + 2*p.PadW - effS
	if nh < 0 || nw < 0 {
		return 0, 0
	}
	return nh/p.StrideH + 1, nw/p.StrideW + 1
}

// ConvOutShape returns the output tensor shape for input shape in and a
// weight tensor of shape (K, C/groups, R, S). groups=1 for dense conv and
// groups=C for depthwise conv.
func ConvOutShape(in tensor.Shape, k, r, s int, p Conv2DParams) tensor.Shape {
	oh, ow := p.OutSize(in.H, in.W, r, s)
	return tensor.Shape{N: in.N, C: k, H: oh, W: ow}
}

func checkConvArgs(in, weight, out *tensor.Tensor, p Conv2DParams, groups int) error {
	if !p.Valid() {
		return fmt.Errorf("kernels: invalid conv params %+v", p)
	}
	if groups < 1 || in.Shape.C%groups != 0 || weight.Shape.N%groups != 0 {
		return fmt.Errorf("kernels: invalid groups %d for C=%d K=%d", groups, in.Shape.C, weight.Shape.N)
	}
	if weight.Shape.C != in.Shape.C/groups {
		return fmt.Errorf("kernels: weight channels %d != C/groups %d", weight.Shape.C, in.Shape.C/groups)
	}
	want := ConvOutShape(in.Shape, weight.Shape.N, weight.Shape.H, weight.Shape.W, p)
	if out.Shape != want {
		return fmt.Errorf("kernels: out shape %v, want %v", out.Shape, want)
	}
	if want.H <= 0 || want.W <= 0 {
		return fmt.Errorf("kernels: non-positive output size %v", want)
	}
	return nil
}

// ConvDirect computes a grouped 2-D convolution with the naive seven-loop
// algorithm. weight has shape (K, C/groups, R, S); bias may be nil.
func ConvDirect(in, weight, bias, out *tensor.Tensor, p Conv2DParams, groups int) error {
	if err := checkConvArgs(in, weight, out, p, groups); err != nil {
		return err
	}
	s := in.Shape
	k := weight.Shape.N
	r, q := weight.Shape.H, weight.Shape.W
	cPerG := s.C / groups
	kPerG := k / groups
	oh, ow := p.OutSize(s.H, s.W, r, q)
	for n := 0; n < s.N; n++ {
		for ko := 0; ko < k; ko++ {
			g := ko / kPerG
			var b float32
			if bias != nil {
				b = bias.Data[ko]
			}
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					acc := b
					for c := 0; c < cPerG; c++ {
						ci := g*cPerG + c
						for fy := 0; fy < r; fy++ {
							iy := y*p.StrideH - p.PadH + fy*p.DilH
							if iy < 0 || iy >= s.H {
								continue
							}
							for fx := 0; fx < q; fx++ {
								ix := x*p.StrideW - p.PadW + fx*p.DilW
								if ix < 0 || ix >= s.W {
									continue
								}
								acc += in.At(n, ci, iy, ix) * weight.At(ko, c, fy, fx)
							}
						}
					}
					out.Set(n, ko, y, x, acc)
				}
			}
		}
	}
	return nil
}

// ConvIm2col computes the same convolution by lowering the input to a column
// matrix and calling GEMM — the "GEMM pattern" solution family.
func ConvIm2col(in, weight, bias, out *tensor.Tensor, p Conv2DParams, groups int) error {
	if err := checkConvArgs(in, weight, out, p, groups); err != nil {
		return err
	}
	s := in.Shape
	k := weight.Shape.N
	r, q := weight.Shape.H, weight.Shape.W
	cPerG := s.C / groups
	kPerG := k / groups
	oh, ow := p.OutSize(s.H, s.W, r, q)
	colRows := cPerG * r * q
	colCols := oh * ow
	col := make([]float32, colRows*colCols)
	res := make([]float32, kPerG*colCols)
	for n := 0; n < s.N; n++ {
		for g := 0; g < groups; g++ {
			// im2col for this group
			for c := 0; c < cPerG; c++ {
				ci := g*cPerG + c
				for fy := 0; fy < r; fy++ {
					for fx := 0; fx < q; fx++ {
						row := (c*r+fy)*q + fx
						for y := 0; y < oh; y++ {
							iy := y*p.StrideH - p.PadH + fy*p.DilH
							for x := 0; x < ow; x++ {
								ix := x*p.StrideW - p.PadW + fx*p.DilW
								var v float32
								if iy >= 0 && iy < s.H && ix >= 0 && ix < s.W {
									v = in.At(n, ci, iy, ix)
								}
								col[row*colCols+y*ow+x] = v
							}
						}
					}
				}
			}
			// res[kPerG x colCols] = W[kPerG x colRows] * col
			wBase := g * kPerG
			for ko := 0; ko < kPerG; ko++ {
				wRow := make([]float32, colRows)
				for c := 0; c < cPerG; c++ {
					for fy := 0; fy < r; fy++ {
						for fx := 0; fx < q; fx++ {
							wRow[(c*r+fy)*q+fx] = weight.At(wBase+ko, c, fy, fx)
						}
					}
				}
				for j := 0; j < colCols; j++ {
					var acc float32
					for i := 0; i < colRows; i++ {
						acc += wRow[i] * col[i*colCols+j]
					}
					res[ko*colCols+j] = acc
				}
			}
			for ko := 0; ko < kPerG; ko++ {
				var b float32
				if bias != nil {
					b = bias.Data[wBase+ko]
				}
				for y := 0; y < oh; y++ {
					for x := 0; x < ow; x++ {
						out.Set(n, wBase+ko, y, x, res[ko*colCols+y*ow+x]+b)
					}
				}
			}
		}
	}
	return nil
}

// winograd F(2x2, 3x3) transform matrices.
var (
	wgG = [4][3]float32{
		{1, 0, 0},
		{0.5, 0.5, 0.5},
		{0.5, -0.5, 0.5},
		{0, 0, 1},
	}
	wgBT = [4][4]float32{
		{1, 0, -1, 0},
		{0, 1, 1, 0},
		{0, -1, 1, 0},
		{0, 1, 0, -1},
	}
	wgAT = [2][4]float32{
		{1, 1, 1, 0},
		{0, 1, -1, -1},
	}
)

// ConvWinograd computes a dense (groups=1) 3x3 stride-1 dilation-1
// convolution with the Winograd F(2x2,3x3) fast algorithm. It returns an
// error for unsupported geometry; callers fall back to another algorithm.
func ConvWinograd(in, weight, bias, out *tensor.Tensor, p Conv2DParams) error {
	if err := checkConvArgs(in, weight, out, p, 1); err != nil {
		return err
	}
	if weight.Shape.H != 3 || weight.Shape.W != 3 || p.StrideH != 1 || p.StrideW != 1 || p.DilH != 1 || p.DilW != 1 {
		return fmt.Errorf("kernels: winograd F(2x2,3x3) requires 3x3 stride-1 dilation-1, got %dx%d s%d,%d d%d,%d",
			weight.Shape.H, weight.Shape.W, p.StrideH, p.StrideW, p.DilH, p.DilW)
	}
	s := in.Shape
	k := weight.Shape.N
	oh, ow := p.OutSize(s.H, s.W, 3, 3)
	tilesY := (oh + 1) / 2
	tilesX := (ow + 1) / 2

	// U[k][c] = G g G^T (4x4), precomputed per filter.
	u := make([][4][4]float32, k*s.C)
	for ko := 0; ko < k; ko++ {
		for c := 0; c < s.C; c++ {
			var g [3][3]float32
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					g[i][j] = weight.At(ko, c, i, j)
				}
			}
			var gg [4][3]float32
			for i := 0; i < 4; i++ {
				for j := 0; j < 3; j++ {
					for t := 0; t < 3; t++ {
						gg[i][j] += wgG[i][t] * g[t][j]
					}
				}
			}
			var uu [4][4]float32
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					for t := 0; t < 3; t++ {
						uu[i][j] += gg[i][t] * wgG[j][t]
					}
				}
			}
			u[ko*s.C+c] = uu
		}
	}

	fetch := func(n, c, y, x int) float32 {
		if y < 0 || y >= s.H || x < 0 || x >= s.W {
			return 0
		}
		return in.At(n, c, y, x)
	}

	m := make([][4][4]float32, k)
	for n := 0; n < s.N; n++ {
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				for ko := range m {
					m[ko] = [4][4]float32{}
				}
				baseY := ty*2 - p.PadH
				baseX := tx*2 - p.PadW
				for c := 0; c < s.C; c++ {
					var d [4][4]float32
					for i := 0; i < 4; i++ {
						for j := 0; j < 4; j++ {
							d[i][j] = fetch(n, c, baseY+i, baseX+j)
						}
					}
					// V = B^T d B
					var bd [4][4]float32
					for i := 0; i < 4; i++ {
						for j := 0; j < 4; j++ {
							for t := 0; t < 4; t++ {
								bd[i][j] += wgBT[i][t] * d[t][j]
							}
						}
					}
					var v [4][4]float32
					for i := 0; i < 4; i++ {
						for j := 0; j < 4; j++ {
							for t := 0; t < 4; t++ {
								v[i][j] += bd[i][t] * wgBT[j][t]
							}
						}
					}
					for ko := 0; ko < k; ko++ {
						uu := &u[ko*s.C+c]
						for i := 0; i < 4; i++ {
							for j := 0; j < 4; j++ {
								m[ko][i][j] += uu[i][j] * v[i][j]
							}
						}
					}
				}
				for ko := 0; ko < k; ko++ {
					// Y = A^T M A (2x2)
					var am [2][4]float32
					for i := 0; i < 2; i++ {
						for j := 0; j < 4; j++ {
							for t := 0; t < 4; t++ {
								am[i][j] += wgAT[i][t] * m[ko][t][j]
							}
						}
					}
					var b float32
					if bias != nil {
						b = bias.Data[ko]
					}
					for i := 0; i < 2; i++ {
						oy := ty*2 + i
						if oy >= oh {
							continue
						}
						for j := 0; j < 2; j++ {
							ox := tx*2 + j
							if ox >= ow {
								continue
							}
							var y float32
							for t := 0; t < 4; t++ {
								y += am[i][t] * wgAT[j][t]
							}
							out.Set(n, ko, oy, ox, y+b)
						}
					}
				}
			}
		}
	}
	return nil
}
