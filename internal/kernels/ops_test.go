package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pask/internal/tensor"
)

func TestMaxPoolKnownValues(t *testing.T) {
	in := tensor.New(sh(1, 1, 4, 4), tensor.NCHW)
	in.Data = []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	p := Pool2DParams{WinH: 2, WinW: 2, StrideH: 2, StrideW: 2}
	out := tensor.New(PoolOutShape(in.Shape, p), tensor.NCHW)
	if err := Pool2D(in, out, p, MaxPool); err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("max pool out[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestAvgPoolExcludesPadding(t *testing.T) {
	in := tensor.New(sh(1, 1, 2, 2), tensor.NCHW)
	in.Data = []float32{4, 4, 4, 4}
	p := Pool2DParams{WinH: 2, WinW: 2, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	out := tensor.New(PoolOutShape(in.Shape, p), tensor.NCHW)
	if err := Pool2D(in, out, p, AvgPool); err != nil {
		t.Fatal(err)
	}
	// Corner windows see exactly one real element: average must be 4, not 1.
	if out.At(0, 0, 0, 0) != 4 {
		t.Fatalf("corner avg = %v, want 4 (padding excluded)", out.At(0, 0, 0, 0))
	}
	if out.At(0, 0, 1, 1) != 4 {
		t.Fatalf("center avg = %v, want 4", out.At(0, 0, 1, 1))
	}
}

func TestPoolShapeError(t *testing.T) {
	in := tensor.New(sh(1, 1, 4, 4), tensor.NCHW)
	out := tensor.New(sh(1, 1, 4, 4), tensor.NCHW)
	p := Pool2DParams{WinH: 2, WinW: 2, StrideH: 2, StrideW: 2}
	if err := Pool2D(in, out, p, MaxPool); err == nil {
		t.Fatal("expected shape error")
	}
}

// Property: max pooling with a 1x1 window and stride 1 is the identity.
func TestPoolIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randTensor(rng, sh(1, rng.Intn(3)+1, rng.Intn(6)+1, rng.Intn(6)+1))
		p := Pool2DParams{WinH: 1, WinW: 1, StrideH: 1, StrideW: 1}
		out := tensor.New(PoolOutShape(in.Shape, p), tensor.NCHW)
		if err := Pool2D(in, out, p, MaxPool); err != nil {
			return false
		}
		return tensor.MaxAbsDiff(in, out) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestActivations(t *testing.T) {
	cases := []struct {
		kind ActKind
		in   float32
		want float64
		tol  float64
	}{
		{ReLU, -1, 0, 0},
		{ReLU, 2, 2, 0},
		{LeakyReLU, -2, -0.2, 1e-6},
		{LeakyReLU, 3, 3, 0},
		{Sigmoid, 0, 0.5, 1e-6},
		{Tanh, 0, 0, 0},
		{Tanh, 1, math.Tanh(1), 1e-6},
		{GELU, 0, 0, 0},
		{GELU, 10, 10, 1e-3}, // saturates to identity for large x
	}
	for _, c := range cases {
		got := float64(c.kind.Apply(c.in, 0.1))
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%v(%v) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestActivationTensor(t *testing.T) {
	in := tensor.New(sh(1, 1, 1, 4), tensor.NCHW)
	in.Data = []float32{-2, -1, 0, 3}
	out := tensor.New(in.Shape, tensor.NCHW)
	if err := Activation(in, out, ReLU, 0); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 0, 3}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("relu[%d] = %v", i, out.Data[i])
		}
	}
	bad := tensor.New(sh(1, 1, 1, 5), tensor.NCHW)
	if err := Activation(in, bad, ReLU, 0); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestGemmIdentity(t *testing.T) {
	// A * I = A
	a := []float32{1, 2, 3, 4, 5, 6} // 2x3
	id := []float32{1, 0, 0, 0, 1, 0, 0, 0, 1}
	c := make([]float32, 6)
	if err := Gemm(false, false, 2, 3, 3, 1, a, id, 0, c); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("c[%d] = %v", i, c[i])
		}
	}
}

func TestGemmTransposeAndAccumulate(t *testing.T) {
	// C = 2*A^T*B + 3*C
	a := []float32{1, 2, 3, 4} // 2x2, A^T = [[1,3],[2,4]]
	b := []float32{1, 0, 0, 1}
	c := []float32{1, 1, 1, 1}
	if err := Gemm(true, false, 2, 2, 2, 2, a, b, 3, c); err != nil {
		t.Fatal(err)
	}
	want := []float32{2*1 + 3, 2*3 + 3, 2*2 + 3, 2*4 + 3}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestGemmBufferTooSmall(t *testing.T) {
	if err := Gemm(false, false, 2, 2, 2, 1, make([]float32, 3), make([]float32, 4), 0, make([]float32, 4)); err == nil {
		t.Fatal("expected buffer error")
	}
}

// Property: (A*B)^T == B^T * A^T via the transpose flags.
func TestGemmTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(5)+1
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = rng.Float32()
		}
		for i := range b {
			b[i] = rng.Float32()
		}
		ab := make([]float32, m*n)
		if err := Gemm(false, false, m, n, k, 1, a, b, 0, ab); err != nil {
			return false
		}
		// B^T(n x k) * A^T(k x m) using trans flags on row-major b, a.
		ba := make([]float32, n*m)
		if err := Gemm(true, true, n, m, k, 1, b, a, 0, ba); err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(float64(ab[i*n+j]-ba[j*m+i])) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 4, 7
	data := make([]float32, m*n)
	for i := range data {
		data[i] = rng.Float32()*20 - 10
	}
	if err := Softmax(data, m, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			v := data[i*n+j]
			if v < 0 || v > 1 {
				t.Fatalf("softmax value out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	data := []float32{1000, 1001}
	if err := Softmax(data, 1, 2); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(float64(data[0])) || math.IsNaN(float64(data[1])) {
		t.Fatal("softmax produced NaN for large inputs")
	}
}

func TestWorkloadAccounting(t *testing.T) {
	in := sh(1, 64, 56, 56)
	p := Conv2DParams{1, 1, 1, 1, 1, 1}
	w := ConvWorkload(in, 64, 3, 3, p, 1, tensor.F32)
	// 2*1*64*56*56*64*3*3
	wantFlops := int64(2 * 64 * 56 * 56 * 64 * 9)
	if w.Flops != wantFlops {
		t.Fatalf("conv flops = %d, want %d", w.Flops, wantFlops)
	}
	if w.Bytes <= 0 {
		t.Fatal("conv bytes must be positive")
	}

	g := GemmWorkload(128, 256, 512, tensor.F16)
	if g.Flops != 2*128*256*512 {
		t.Fatalf("gemm flops = %d", g.Flops)
	}
	if g.Bytes != 2*(128*512+512*256+128*256) {
		t.Fatalf("gemm bytes = %d", g.Bytes)
	}

	sum := w.Add(g)
	if sum.Flops != w.Flops+g.Flops || sum.Bytes != w.Bytes+g.Bytes {
		t.Fatal("Add wrong")
	}
	half := g.Scale(0.5)
	if half.Flops != g.Flops/2 {
		t.Fatalf("Scale flops = %d", half.Flops)
	}
}

func TestPoolAndActWorkloads(t *testing.T) {
	in := sh(1, 8, 16, 16)
	pw := PoolWorkload(in, Pool2DParams{WinH: 2, WinW: 2, StrideH: 2, StrideW: 2}, tensor.F32)
	if pw.Flops != int64(8*8*8*4) {
		t.Fatalf("pool flops = %d", pw.Flops)
	}
	aw := ActWorkload(in, tensor.F32)
	if aw.Bytes != 2*in.Bytes(tensor.F32) {
		t.Fatalf("act bytes = %d", aw.Bytes)
	}
	tw := TransformWorkload(in, tensor.F16)
	if tw.Bytes != 2*in.Bytes(tensor.F16) {
		t.Fatalf("transform bytes = %d", tw.Bytes)
	}
}
