package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pask/internal/tensor"
)

func randTensor(rng *rand.Rand, s tensor.Shape) *tensor.Tensor {
	t := tensor.New(s, tensor.NCHW)
	t.Fill(func(int) float32 { return rng.Float32()*2 - 1 })
	return t
}

func TestConvDirectKnownValues(t *testing.T) {
	// 1x1x3x3 input, single 2x2 filter of ones, stride 1, no pad:
	// output elements are the 2x2 window sums.
	in := tensor.New(sh(1, 1, 3, 3), tensor.NCHW)
	in.Data = []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	w := tensor.New(sh(1, 1, 2, 2), tensor.NCHW)
	w.Data = []float32{1, 1, 1, 1}
	p := Default1x1()
	out := tensor.New(ConvOutShape(in.Shape, 1, 2, 2, p), tensor.NCHW)
	if err := ConvDirect(in, w, nil, out, p, 1); err != nil {
		t.Fatal(err)
	}
	want := []float32{12, 16, 24, 28}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestConvDirectWithBiasAndPadding(t *testing.T) {
	in := tensor.New(sh(1, 1, 2, 2), tensor.NCHW)
	in.Data = []float32{1, 2, 3, 4}
	w := tensor.New(sh(1, 1, 3, 3), tensor.NCHW)
	for i := range w.Data {
		w.Data[i] = 1
	}
	bias := tensor.New(sh(1, 1, 1, 1), tensor.NCHW)
	bias.Data[0] = 10
	p := Conv2DParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1}
	out := tensor.New(ConvOutShape(in.Shape, 1, 3, 3, p), tensor.NCHW)
	if err := ConvDirect(in, w, bias, out, p, 1); err != nil {
		t.Fatal(err)
	}
	// Center output (0,0): window covers all four inputs -> 10 + 10 = 20.
	if out.At(0, 0, 0, 0) != 20 {
		t.Fatalf("out(0,0) = %v, want 20", out.At(0, 0, 0, 0))
	}
}

func TestConvOutShape(t *testing.T) {
	cases := []struct {
		in      tensor.Shape
		k, r, s int
		p       Conv2DParams
		want    tensor.Shape
	}{
		{sh(1, 3, 224, 224), 64, 7, 7, Conv2DParams{2, 2, 3, 3, 1, 1}, sh(1, 64, 112, 112)},
		{sh(1, 64, 56, 56), 64, 3, 3, Conv2DParams{1, 1, 1, 1, 1, 1}, sh(1, 64, 56, 56)},
		{sh(2, 16, 32, 32), 8, 1, 1, Default1x1(), sh(2, 8, 32, 32)},
		{sh(1, 8, 16, 16), 8, 3, 3, Conv2DParams{1, 1, 2, 2, 2, 2}, sh(1, 8, 16, 16)},
	}
	for _, c := range cases {
		if got := ConvOutShape(c.in, c.k, c.r, c.s, c.p); got != c.want {
			t.Errorf("ConvOutShape(%v,k=%d,%dx%d,%+v) = %v, want %v", c.in, c.k, c.r, c.s, c.p, got, c.want)
		}
	}
}

func TestConvShapeMismatchError(t *testing.T) {
	in := tensor.New(sh(1, 2, 4, 4), tensor.NCHW)
	w := tensor.New(sh(3, 2, 3, 3), tensor.NCHW)
	out := tensor.New(sh(1, 3, 4, 4), tensor.NCHW) // wrong: should be 2x2
	if err := ConvDirect(in, w, nil, out, Default1x1(), 1); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestConvBadGroupsError(t *testing.T) {
	in := tensor.New(sh(1, 3, 4, 4), tensor.NCHW)
	w := tensor.New(sh(3, 3, 1, 1), tensor.NCHW)
	out := tensor.New(sh(1, 3, 4, 4), tensor.NCHW)
	if err := ConvDirect(in, w, nil, out, Default1x1(), 2); err == nil {
		t.Fatal("expected groups error: 3 % 2 != 0")
	}
}

func TestConvDepthwiseEqualsPerChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randTensor(rng, sh(1, 4, 8, 8))
	w := randTensor(rng, sh(4, 1, 3, 3))
	p := Conv2DParams{1, 1, 1, 1, 1, 1}
	out := tensor.New(ConvOutShape(in.Shape, 4, 3, 3, p), tensor.NCHW)
	if err := ConvDirect(in, w, nil, out, p, 4); err != nil {
		t.Fatal(err)
	}
	// Each channel convolved independently.
	for c := 0; c < 4; c++ {
		sub := tensor.New(sh(1, 1, 8, 8), tensor.NCHW)
		for h := 0; h < 8; h++ {
			for x := 0; x < 8; x++ {
				sub.Set(0, 0, h, x, in.At(0, c, h, x))
			}
		}
		subW := tensor.New(sh(1, 1, 3, 3), tensor.NCHW)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				subW.Set(0, 0, i, j, w.At(c, 0, i, j))
			}
		}
		subOut := tensor.New(sh(1, 1, 8, 8), tensor.NCHW)
		if err := ConvDirect(sub, subW, nil, subOut, p, 1); err != nil {
			t.Fatal(err)
		}
		for h := 0; h < 8; h++ {
			for x := 0; x < 8; x++ {
				if math.Abs(float64(subOut.At(0, 0, h, x)-out.At(0, c, h, x))) > 1e-5 {
					t.Fatalf("depthwise channel %d differs at (%d,%d)", c, h, x)
				}
			}
		}
	}
}

// Property: im2col+GEMM convolution computes the same function as direct
// convolution for random geometry, including strides, padding and groups.
func TestIm2colEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := []int{1, 1, 1, 2}[rng.Intn(4)]
		cPerG := rng.Intn(3) + 1
		kPerG := rng.Intn(3) + 1
		in := randTensor(rng, sh(rng.Intn(2)+1, groups*cPerG, rng.Intn(8)+4, rng.Intn(8)+4))
		r := rng.Intn(3) + 1
		s := rng.Intn(3) + 1
		p := Conv2DParams{
			StrideH: rng.Intn(2) + 1, StrideW: rng.Intn(2) + 1,
			PadH: rng.Intn(2), PadW: rng.Intn(2),
			DilH: 1, DilW: 1,
		}
		oh, ow := p.OutSize(in.Shape.H, in.Shape.W, r, s)
		if oh <= 0 || ow <= 0 {
			return true
		}
		w := randTensor(rng, sh(groups*kPerG, cPerG, r, s))
		bias := randTensor(rng, sh(groups*kPerG, 1, 1, 1))
		outShape := ConvOutShape(in.Shape, w.Shape.N, r, s, p)
		a := tensor.New(outShape, tensor.NCHW)
		b := tensor.New(outShape, tensor.NCHW)
		if err := ConvDirect(in, w, bias, a, p, groups); err != nil {
			return false
		}
		if err := ConvIm2col(in, w, bias, b, p, groups); err != nil {
			return false
		}
		return tensor.MaxAbsDiff(a, b) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Winograd F(2x2,3x3) matches direct convolution on its supported
// geometry (3x3, stride 1, dilation 1, any padding, odd/even outputs).
func TestWinogradEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randTensor(rng, sh(rng.Intn(2)+1, rng.Intn(4)+1, rng.Intn(10)+3, rng.Intn(10)+3))
		k := rng.Intn(4) + 1
		p := Conv2DParams{StrideH: 1, StrideW: 1, PadH: rng.Intn(2), PadW: rng.Intn(2), DilH: 1, DilW: 1}
		oh, ow := p.OutSize(in.Shape.H, in.Shape.W, 3, 3)
		if oh <= 0 || ow <= 0 {
			return true
		}
		w := randTensor(rng, sh(k, in.Shape.C, 3, 3))
		bias := randTensor(rng, sh(k, 1, 1, 1))
		outShape := ConvOutShape(in.Shape, k, 3, 3, p)
		a := tensor.New(outShape, tensor.NCHW)
		b := tensor.New(outShape, tensor.NCHW)
		if err := ConvDirect(in, w, bias, a, p, 1); err != nil {
			return false
		}
		if err := ConvWinograd(in, w, bias, b, p); err != nil {
			return false
		}
		return tensor.MaxAbsDiff(a, b) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWinogradRejectsUnsupported(t *testing.T) {
	in := tensor.New(sh(1, 1, 8, 8), tensor.NCHW)
	w5 := tensor.New(sh(1, 1, 5, 5), tensor.NCHW)
	p := Default1x1()
	out := tensor.New(ConvOutShape(in.Shape, 1, 5, 5, p), tensor.NCHW)
	if err := ConvWinograd(in, w5, nil, out, p); err == nil {
		t.Fatal("expected error for 5x5 filter")
	}
	w3 := tensor.New(sh(1, 1, 3, 3), tensor.NCHW)
	p2 := Conv2DParams{StrideH: 2, StrideW: 2, DilH: 1, DilW: 1}
	out2 := tensor.New(ConvOutShape(in.Shape, 1, 3, 3, p2), tensor.NCHW)
	if err := ConvWinograd(in, w3, nil, out2, p2); err == nil {
		t.Fatal("expected error for stride 2")
	}
}

func TestConvDilated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randTensor(rng, sh(1, 2, 9, 9))
	w := randTensor(rng, sh(3, 2, 3, 3))
	p := Conv2DParams{StrideH: 1, StrideW: 1, PadH: 2, PadW: 2, DilH: 2, DilW: 2}
	outShape := ConvOutShape(in.Shape, 3, 3, 3, p)
	if outShape.H != 9 || outShape.W != 9 {
		t.Fatalf("dilated same-conv shape = %v", outShape)
	}
	a := tensor.New(outShape, tensor.NCHW)
	b := tensor.New(outShape, tensor.NCHW)
	if err := ConvDirect(in, w, nil, a, p, 1); err != nil {
		t.Fatal(err)
	}
	if err := ConvIm2col(in, w, nil, b, p, 1); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(a, b); d > 1e-4 {
		t.Fatalf("dilated conv mismatch: %v", d)
	}
}

// sh builds a Shape without repeating field names in every literal.
func sh(n, c, h, w int) tensor.Shape { return tensor.Shape{N: n, C: c, H: h, W: w} }
