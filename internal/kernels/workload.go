package kernels

import "pask/internal/tensor"

// Workload is the arithmetic and memory traffic a kernel performs; the
// device roofline model converts it into a duration.
type Workload struct {
	Flops int64 // multiply-adds counted as 2 flops
	Bytes int64 // global memory traffic
}

// Add returns the element-wise sum of two workloads.
func (w Workload) Add(o Workload) Workload {
	return Workload{Flops: w.Flops + o.Flops, Bytes: w.Bytes + o.Bytes}
}

// Scale returns the workload multiplied by f (used for algorithmic
// reductions such as Winograd's multiply savings).
func (w Workload) Scale(f float64) Workload {
	return Workload{Flops: int64(float64(w.Flops) * f), Bytes: int64(float64(w.Bytes) * f)}
}

// ConvWorkload returns the direct-algorithm workload of a grouped conv:
// 2*N*K*OH*OW*(C/g)*R*S flops and input+weight+output traffic.
func ConvWorkload(in tensor.Shape, k, r, s int, p Conv2DParams, groups int, dt tensor.DType) Workload {
	oh, ow := p.OutSize(in.H, in.W, r, s)
	if oh <= 0 || ow <= 0 {
		return Workload{}
	}
	cPerG := in.C / groups
	flops := 2 * int64(in.N) * int64(k) * int64(oh) * int64(ow) * int64(cPerG) * int64(r) * int64(s)
	bytes := in.Bytes(dt) +
		tensor.Shape{N: k, C: cPerG, H: r, W: s}.Bytes(dt) +
		tensor.Shape{N: in.N, C: k, H: oh, W: ow}.Bytes(dt)
	return Workload{Flops: flops, Bytes: bytes}
}

// WinogradFlopScale is the multiply reduction of F(2x2,3x3): a 2x2 output
// tile costs 16 multiplies instead of 36.
const WinogradFlopScale = 16.0 / 36.0

// PoolWorkload returns the workload of 2-D pooling (1 op per window element).
func PoolWorkload(in tensor.Shape, p Pool2DParams, dt tensor.DType) Workload {
	oh, ow := p.OutSize(in.H, in.W)
	if oh <= 0 || ow <= 0 {
		return Workload{}
	}
	flops := int64(in.N) * int64(in.C) * int64(oh) * int64(ow) * int64(p.WinH) * int64(p.WinW)
	bytes := in.Bytes(dt) + tensor.Shape{N: in.N, C: in.C, H: oh, W: ow}.Bytes(dt)
	return Workload{Flops: flops, Bytes: bytes}
}

// ActWorkload returns the workload of an elementwise activation.
func ActWorkload(in tensor.Shape, dt tensor.DType) Workload {
	return Workload{Flops: int64(in.Elems()) * 4, Bytes: 2 * in.Bytes(dt)}
}

// GemmWorkload returns the workload of an m x n x k GEMM.
func GemmWorkload(m, n, k int, dt tensor.DType) Workload {
	es := int64(dt.Size())
	return Workload{
		Flops: 2 * int64(m) * int64(n) * int64(k),
		Bytes: es * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)),
	}
}

// TransformWorkload returns the workload of a layout/precision interchange
// kernel over shape s: pure memory traffic, read+write.
func TransformWorkload(s tensor.Shape, dt tensor.DType) Workload {
	return Workload{Flops: int64(s.Elems()), Bytes: 2 * s.Bytes(dt)}
}
