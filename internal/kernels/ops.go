package kernels

import (
	"fmt"
	"math"

	"pask/internal/tensor"
)

// Pool2DParams describes a 2-D pooling window.
type Pool2DParams struct {
	WinH, WinW       int
	StrideH, StrideW int
	PadH, PadW       int
}

// Valid reports whether the parameters are well formed.
func (p Pool2DParams) Valid() bool {
	return p.WinH > 0 && p.WinW > 0 && p.StrideH > 0 && p.StrideW > 0 && p.PadH >= 0 && p.PadW >= 0
}

// OutSize returns the pooled spatial size for input (h, w). A window larger
// than the padded input yields a non-positive size.
func (p Pool2DParams) OutSize(h, w int) (oh, ow int) {
	nh := h + 2*p.PadH - p.WinH
	nw := w + 2*p.PadW - p.WinW
	if nh < 0 || nw < 0 {
		return 0, 0
	}
	return nh/p.StrideH + 1, nw/p.StrideW + 1
}

// PoolOutShape returns the output shape of pooling over in.
func PoolOutShape(in tensor.Shape, p Pool2DParams) tensor.Shape {
	oh, ow := p.OutSize(in.H, in.W)
	return tensor.Shape{N: in.N, C: in.C, H: oh, W: ow}
}

// PoolMode selects the pooling reduction.
type PoolMode uint8

const (
	MaxPool PoolMode = iota
	AvgPool
)

func (m PoolMode) String() string {
	if m == MaxPool {
		return "max"
	}
	return "avg"
}

// Pool2D applies 2-D pooling. Average pooling counts padded positions as
// excluded (count_include_pad=false, the PyTorch default for model-zoo nets).
func Pool2D(in, out *tensor.Tensor, p Pool2DParams, mode PoolMode) error {
	if !p.Valid() {
		return fmt.Errorf("kernels: invalid pool params %+v", p)
	}
	want := PoolOutShape(in.Shape, p)
	if out.Shape != want {
		return fmt.Errorf("kernels: pool out shape %v, want %v", out.Shape, want)
	}
	s := in.Shape
	oh, ow := p.OutSize(s.H, s.W)
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var acc float32
					count := 0
					if mode == MaxPool {
						acc = float32(math.Inf(-1))
					}
					for fy := 0; fy < p.WinH; fy++ {
						iy := y*p.StrideH - p.PadH + fy
						if iy < 0 || iy >= s.H {
							continue
						}
						for fx := 0; fx < p.WinW; fx++ {
							ix := x*p.StrideW - p.PadW + fx
							if ix < 0 || ix >= s.W {
								continue
							}
							v := in.At(n, c, iy, ix)
							if mode == MaxPool {
								if v > acc {
									acc = v
								}
							} else {
								acc += v
							}
							count++
						}
					}
					if mode == AvgPool {
						if count > 0 {
							acc /= float32(count)
						}
					} else if count == 0 {
						acc = 0
					}
					out.Set(n, c, y, x, acc)
				}
			}
		}
	}
	return nil
}

// ActKind selects an elementwise activation function.
type ActKind uint8

const (
	ReLU ActKind = iota
	LeakyReLU
	Sigmoid
	Tanh
	GELU
)

var actNames = [...]string{"relu", "leakyrelu", "sigmoid", "tanh", "gelu"}

func (a ActKind) String() string {
	if int(a) < len(actNames) {
		return actNames[a]
	}
	return fmt.Sprintf("act(%d)", uint8(a))
}

// Apply evaluates the activation at v. alpha is the LeakyReLU slope and is
// ignored by other kinds.
func (a ActKind) Apply(v, alpha float32) float32 {
	switch a {
	case ReLU:
		if v < 0 {
			return 0
		}
		return v
	case LeakyReLU:
		if v < 0 {
			return alpha * v
		}
		return v
	case Sigmoid:
		return float32(1 / (1 + math.Exp(-float64(v))))
	case Tanh:
		return float32(math.Tanh(float64(v)))
	case GELU:
		// tanh approximation, as used by model zoos.
		x := float64(v)
		return float32(0.5 * x * (1 + math.Tanh(math.Sqrt(2/math.Pi)*(x+0.044715*x*x*x))))
	}
	return v
}

// Activation applies an elementwise activation from in to out (same shape).
func Activation(in, out *tensor.Tensor, kind ActKind, alpha float32) error {
	if in.Shape != out.Shape {
		return fmt.Errorf("kernels: activation shape mismatch %v vs %v", in.Shape, out.Shape)
	}
	if in.Layout != out.Layout {
		return fmt.Errorf("kernels: activation layout mismatch %v vs %v", in.Layout, out.Layout)
	}
	for i, v := range in.Data {
		out.Data[i] = kind.Apply(v, alpha)
	}
	return nil
}

// Gemm computes C = alpha*op(A)*op(B) + beta*C for row-major matrices.
// A is m x k (or k x m when transA), B is k x n (or n x k when transB),
// C is m x n.
func Gemm(transA, transB bool, m, n, k int, alpha float32, a []float32, b []float32, beta float32, c []float32) error {
	if m < 0 || n < 0 || k < 0 {
		return fmt.Errorf("kernels: negative gemm dims m=%d n=%d k=%d", m, n, k)
	}
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		return fmt.Errorf("kernels: gemm buffer too small: |A|=%d |B|=%d |C|=%d for m=%d n=%d k=%d",
			len(a), len(b), len(c), m, n, k)
	}
	at := func(i, j int) float32 {
		if transA {
			return a[j*m+i]
		}
		return a[i*k+j]
	}
	bt := func(i, j int) float32 {
		if transB {
			return b[j*k+i]
		}
		return b[i*n+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for t := 0; t < k; t++ {
				acc += at(i, t) * bt(t, j)
			}
			c[i*n+j] = alpha*acc + beta*c[i*n+j]
		}
	}
	return nil
}

// Softmax applies a numerically stable softmax over the last axis of a
// row-major m x n matrix, in place.
func Softmax(data []float32, m, n int) error {
	if len(data) < m*n {
		return fmt.Errorf("kernels: softmax buffer %d < %d", len(data), m*n)
	}
	for i := 0; i < m; i++ {
		row := data[i*n : (i+1)*n]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			row[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
	return nil
}
