package predict

import (
	"testing"
)

// TestMarkovLearnsTransitions checks confidence is the row-relative
// transition frequency and the threshold suppresses weak signals.
func TestMarkovLearnsTransitions(t *testing.T) {
	m := NewMarkov()
	for i := 0; i < 3; i++ {
		m.Observe("a", "b")
	}
	m.Observe("a", "c")
	got := m.Next("a", 4, 0.5)
	if len(got) != 1 || got[0].Item != "b" {
		t.Fatalf("Next(a) = %v, want only b above 0.5", got)
	}
	if got[0].Confidence != 0.75 {
		t.Fatalf("confidence = %v, want 0.75", got[0].Confidence)
	}
	all := m.Next("a", 4, 0)
	if len(all) != 2 || all[0].Item != "b" || all[1].Item != "c" {
		t.Fatalf("Next(a, minConf=0) = %v", all)
	}
	if m.Next("zzz", 4, 0) != nil {
		t.Fatal("unknown state should predict nothing")
	}
}

// TestMarkovDeterministicTieBreak pins the by-name ordering for equal
// confidence.
func TestMarkovDeterministicTieBreak(t *testing.T) {
	m := NewMarkov()
	m.Observe("x", "b")
	m.Observe("x", "a")
	got := m.Next("x", 2, 0)
	if got[0].Item != "a" || got[1].Item != "b" {
		t.Fatalf("tie not broken by name: %v", got)
	}
}

// TestSketchRanksFrequency checks estimates track observation counts.
func TestSketchRanksFrequency(t *testing.T) {
	s := NewSketch(4, 512, 1<<30)
	for i := 0; i < 90; i++ {
		s.Observe("hot")
	}
	for i := 0; i < 10; i++ {
		s.Observe("cold")
	}
	if h, c := s.Estimate("hot"), s.Estimate("cold"); h < c || h < 90 {
		t.Fatalf("estimates hot=%d cold=%d", h, c)
	}
	if s.Estimate("never") > 0 {
		t.Fatal("unseen item estimated above zero (collision in a near-empty sketch)")
	}
}

// TestSketchAgingAdaptsToShift is the point of the decay: after a
// popularity re-rank the new head overtakes the old one within a few
// decay periods even though the all-time counts say otherwise.
func TestSketchAgingAdaptsToShift(t *testing.T) {
	s := NewSketch(4, 512, 32)
	for i := 0; i < 200; i++ {
		s.Observe("old")
	}
	for i := 0; i < 100; i++ {
		s.Observe("new")
	}
	if o, n := s.Estimate("old"), s.Estimate("new"); n <= o {
		t.Fatalf("aged sketch still ranks old (%d) over new (%d) after the shift", o, n)
	}
}

// TestPredictorFuses drives the full predictor over a synthetic access
// stream with a mid-stream popularity shift.
func TestPredictorFuses(t *testing.T) {
	p := New(Config{MinConfidence: 0.3, Budget: 2, DecayEvery: 16})
	// Phase 1: a dominates, b follows a.
	for i := 0; i < 40; i++ {
		p.Observe("a")
		p.Observe("b")
	}
	if hot := p.Hot(2); len(hot) == 0 || (hot[0].Item != "a" && hot[0].Item != "b") {
		t.Fatalf("phase-1 hot = %v", hot)
	}
	if f := p.Follow("a"); len(f) == 0 || f[0].Item != "b" {
		t.Fatalf("Follow(a) = %v, want b", f)
	}
	// Phase 2: c takes over.
	for i := 0; i < 80; i++ {
		p.Observe("c")
	}
	hot := p.Hot(1)
	if len(hot) != 1 || hot[0].Item != "c" {
		t.Fatalf("post-shift hot = %v, want c", hot)
	}
	if f := p.Follow("c"); len(f) == 0 || f[0].Item != "c" {
		t.Fatalf("Follow(c) = %v", f)
	}
	if p.Observations() != 160 {
		t.Fatalf("observations = %d", p.Observations())
	}
}

// TestPredictorBudget caps predictions at the configured budget.
func TestPredictorBudget(t *testing.T) {
	p := New(Config{MinConfidence: 0.01, Budget: 2})
	seq := []string{"a", "b", "a", "c", "a", "d", "a", "e"}
	for _, it := range seq {
		p.Observe(it)
	}
	if f := p.Follow("a"); len(f) > 2 {
		t.Fatalf("budget 2 returned %d predictions: %v", len(f), f)
	}
	if h := p.Hot(10); len(h) > 10 {
		t.Fatalf("Hot(10) returned %d", len(h))
	}
}
