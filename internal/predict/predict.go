// Package predict learns kernel/model access order online and predicts
// what a serving fleet will need next: a first-order Markov chain over the
// observed access sequence (what tends to follow what) fused with a
// count-min frequency sketch with aging (what is hot right now). The
// predictive prefetcher consumes both — sequence predictions above a
// confidence threshold drive cross-tenant prefetches, popularity ranking
// drives bring-up prefetch on fresh nodes — always capped by a prefetch
// budget, because a wrong prediction is paid for in wasted loads. This is
// a beyond-paper extension of §III's proactive loading: the paper prefetches
// the kernels a known model will need; under multi-model traffic the model
// itself must be predicted first, so this package supplies that missing
// policy layer (DESIGN.md §16, ProMoE-style prediction from PAPERS.md).
//
// Paper anchor: beyond-paper policy layer for §III proactive loading — predicts *which* model under multi-model traffic (DESIGN.md §16; ProMoE-style, PAPERS.md).
package predict

import (
	"hash/fnv"
	"slices"
	"strings"
)

// Prediction is one predicted item with the predictor's confidence in it
// (a probability: transition frequency for sequence predictions, traffic
// share for popularity predictions).
type Prediction struct {
	Item       string
	Confidence float64
}

// sortPredictions orders by descending confidence, breaking ties by item
// name so output is deterministic.
func sortPredictions(ps []Prediction) {
	slices.SortFunc(ps, func(a, b Prediction) int {
		switch {
		case a.Confidence > b.Confidence:
			return -1
		case a.Confidence < b.Confidence:
			return 1
		default:
			return strings.Compare(a.Item, b.Item)
		}
	})
}

// Markov is a first-order Markov chain over an observed item sequence.
// Rows are transition counts; confidence is the row-relative frequency.
type Markov struct {
	counts map[string]map[string]int
	totals map[string]int
}

// NewMarkov returns an empty chain.
func NewMarkov() *Markov {
	return &Markov{counts: make(map[string]map[string]int), totals: make(map[string]int)}
}

// Observe records one observed transition from -> to.
func (m *Markov) Observe(from, to string) {
	if from == "" || to == "" {
		return
	}
	row := m.counts[from]
	if row == nil {
		row = make(map[string]int)
		m.counts[from] = row
	}
	row[to]++
	m.totals[from]++
}

// Next returns up to k successors of from whose transition frequency is at
// least minConf, most confident first.
func (m *Markov) Next(from string, k int, minConf float64) []Prediction {
	total := m.totals[from]
	if total == 0 || k <= 0 {
		return nil
	}
	var out []Prediction
	for item, n := range m.counts[from] {
		conf := float64(n) / float64(total)
		if conf >= minConf {
			out = append(out, Prediction{Item: item, Confidence: conf})
		}
	}
	sortPredictions(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Sketch is a count-min frequency sketch with aging: every DecayEvery
// observations all counters halve, so the estimate tracks the live
// distribution instead of the all-time one — a popularity re-rank mid-run
// overtakes the old head within a few decay periods.
type Sketch struct {
	rows, cols int
	cnt        [][]uint32
	decayEvery int
	obs        int
	total      uint64 // decayed observation mass, for share estimates
}

// NewSketch returns a sketch with the given dimensions. Non-positive
// values get defaults (4 rows, 512 columns, decay every 64 observations).
func NewSketch(rows, cols, decayEvery int) *Sketch {
	if rows <= 0 {
		rows = 4
	}
	if cols <= 0 {
		cols = 512
	}
	if decayEvery <= 0 {
		decayEvery = 64
	}
	s := &Sketch{rows: rows, cols: cols, decayEvery: decayEvery}
	s.cnt = make([][]uint32, rows)
	for i := range s.cnt {
		s.cnt[i] = make([]uint32, cols)
	}
	return s
}

// splitmix64 finalizes a hash so per-row variants avalanche (the same
// finalizer the fault injector uses for per-access streams).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *Sketch) index(item string, row int) int {
	h := fnv.New64a()
	h.Write([]byte(item))
	return int(splitmix64(h.Sum64()+uint64(row)) % uint64(s.cols))
}

// Observe counts one occurrence of item, aging the sketch when due.
func (s *Sketch) Observe(item string) {
	for r := 0; r < s.rows; r++ {
		s.cnt[r][s.index(item, r)]++
	}
	s.total++
	s.obs++
	if s.obs%s.decayEvery == 0 {
		for r := range s.cnt {
			for c := range s.cnt[r] {
				s.cnt[r][c] /= 2
			}
		}
		s.total /= 2
	}
}

// Estimate returns the (aged) occurrence estimate for item: the minimum
// across rows, the usual count-min upper bound.
func (s *Sketch) Estimate(item string) uint32 {
	est := uint32(0)
	for r := 0; r < s.rows; r++ {
		c := s.cnt[r][s.index(item, r)]
		if r == 0 || c < est {
			est = c
		}
	}
	return est
}

// Mass returns the total decayed observation mass (the denominator for
// traffic-share estimates).
func (s *Sketch) Mass() uint64 { return s.total }

// Config parameterizes a Predictor. The zero value gets usable defaults.
type Config struct {
	// MinConfidence is the threshold below which sequence predictions are
	// suppressed (default 0.25): prefetching on a weak signal wastes the
	// budget.
	MinConfidence float64
	// Budget caps predictions returned per query (default 2): it is the
	// prediction-side half of the prefetch budget.
	Budget int
	// SketchRows/SketchCols/DecayEvery size the frequency sketch.
	SketchRows, SketchCols, DecayEvery int
}

func (c *Config) fill() {
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.25
	}
	if c.Budget <= 0 {
		c.Budget = 2
	}
}

// Predictor fuses the Markov chain and the frequency sketch over one
// observed access stream. It is deliberately model-agnostic: items are
// opaque strings (model abbreviations in the serving experiments, but any
// kernel or object identifier works).
type Predictor struct {
	cfg    Config
	markov *Markov
	sketch *Sketch
	last   string
	seen   map[string]bool
	items  []string // first-seen order, for deterministic ranking
	n      int
}

// New returns an empty predictor.
func New(cfg Config) *Predictor {
	cfg.fill()
	return &Predictor{
		cfg:    cfg,
		markov: NewMarkov(),
		sketch: NewSketch(cfg.SketchRows, cfg.SketchCols, cfg.DecayEvery),
		seen:   make(map[string]bool),
	}
}

// Observe feeds one access: it counts toward popularity and records the
// transition from the previous access.
func (p *Predictor) Observe(item string) {
	if item == "" {
		return
	}
	p.sketch.Observe(item)
	p.markov.Observe(p.last, item)
	p.last = item
	p.n++
	if !p.seen[item] {
		p.seen[item] = true
		p.items = append(p.items, item)
	}
}

// Observations returns the number of accesses observed.
func (p *Predictor) Observations() int { return p.n }

// Follow predicts what tends to come after item, budget-capped and
// confidence-thresholded.
func (p *Predictor) Follow(item string) []Prediction {
	return p.markov.Next(item, p.cfg.Budget, p.cfg.MinConfidence)
}

// Hot returns the k currently hottest observed items by aged sketch
// estimate, most popular first, with confidence as estimated traffic
// share. Items below the confidence threshold are dropped: a fresh node
// should not spend bring-up budget on the cold tail.
func (p *Predictor) Hot(k int) []Prediction {
	mass := p.sketch.Mass()
	if mass == 0 || k <= 0 {
		return nil
	}
	var out []Prediction
	for _, item := range p.items {
		share := float64(p.sketch.Estimate(item)) / float64(mass)
		if share >= p.cfg.MinConfidence {
			out = append(out, Prediction{Item: item, Confidence: share})
		}
	}
	sortPredictions(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}
