package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
	"strings"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event format. Timestamps and
// durations are microseconds; ph selects the event kind: "M" metadata, "X"
// complete span, "i" instant, "C" counter.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

const chromePid = 1

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChrome exports the recording as Chrome trace_event JSON, loadable in
// chrome://tracing and https://ui.perfetto.dev. The output is deterministic
// for a given recording: tracks are ordered lexicographically and events are
// sorted by timestamp with stable tie-breaks, so golden files are meaningful.
func (r *Recorder) WriteChrome(w io.Writer) error {
	if r == nil {
		return errors.New("trace: nil recorder")
	}
	spans := r.Spans()
	instants := r.Instants()
	counters := r.Counters()

	tracks := r.Tracks()
	slices.Sort(tracks)
	tid := make(map[string]int, len(tracks))
	for i, name := range tracks {
		tid[name] = i + 1
	}

	events := make([]chromeEvent, 0, 2+len(tracks)+len(spans)+len(instants))
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "pask"},
	})
	for _, name := range tracks {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid[name],
			Args: map[string]any{"name": name},
		})
		events = append(events, chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: chromePid, Tid: tid[name],
			Args: map[string]any{"sort_index": tid[name]},
		})
	}

	body := make([]chromeEvent, 0, len(spans)+len(instants))
	for _, s := range spans {
		dur := usec(s.End - s.Start)
		ev := chromeEvent{
			Name: s.Name, Ph: "X", Cat: string(s.Cat),
			Ts: usec(s.Start), Dur: &dur,
			Pid: chromePid, Tid: tid[s.Thread],
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		body = append(body, ev)
	}
	for _, in := range instants {
		ev := chromeEvent{
			Name: in.Name, Ph: "i",
			Ts:  usec(in.At),
			Pid: chromePid, Tid: tid[in.Track], S: "t",
		}
		if len(in.Attrs) > 0 {
			ev.Args = make(map[string]any, len(in.Attrs))
			for _, a := range in.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		body = append(body, ev)
	}
	slices.SortStableFunc(body, func(a, b chromeEvent) int {
		if a.Ts != b.Ts {
			if a.Ts < b.Ts {
				return -1
			}
			return 1
		}
		if a.Tid != b.Tid {
			return a.Tid - b.Tid
		}
		return strings.Compare(a.Name, b.Name)
	})
	events = append(events, body...)

	// Counter events last, grouped by series then time, so the numeric
	// tracks render under the thread tracks.
	for _, c := range counters {
		for _, s := range c.Samples {
			events = append(events, chromeEvent{
				Name: c.Name, Ph: "C",
				Ts:  usec(s.At),
				Pid: chromePid, Tid: 0,
				Args: map[string]any{"value": s.Value},
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{DisplayTimeUnit: "ms", TraceEvents: events})
}

// ChromeSummary reports what a validated trace contains.
type ChromeSummary struct {
	Events   int      // total trace events
	Spans    int      // "X" complete events
	Counters int      // distinct counter series
	Tracks   []string // named threads, in tid order
	MaxTs    float64  // latest timestamp seen (microseconds)
}

// ValidateChrome parses Chrome trace_event JSON produced by WriteChrome and
// checks the structural invariants golden consumers rely on: valid JSON, a
// non-empty event list, named threads, non-negative durations, and
// monotonically non-decreasing timestamps per event kind.
func ValidateChrome(data []byte) (ChromeSummary, error) {
	var sum ChromeSummary
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return sum, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return sum, errors.New("trace: no traceEvents")
	}
	sum.Events = len(f.TraceEvents)
	counterNames := map[string]bool{}
	lastTs := map[string]float64{} // per-ph monotonicity
	for i, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				name, _ := ev.Args["name"].(string)
				if name == "" {
					return sum, fmt.Errorf("trace: event %d: thread_name without a name", i)
				}
				sum.Tracks = append(sum.Tracks, name)
			}
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return sum, fmt.Errorf("trace: event %d (%q): missing or negative dur", i, ev.Name)
			}
			if ev.Ts < 0 {
				return sum, fmt.Errorf("trace: event %d (%q): negative ts", i, ev.Name)
			}
			if ev.Ts < lastTs["X"] {
				return sum, fmt.Errorf("trace: event %d (%q): ts %v before previous span ts %v", i, ev.Name, ev.Ts, lastTs["X"])
			}
			lastTs["X"] = ev.Ts
			sum.Spans++
		case "i":
			if ev.Ts < lastTs["i"] {
				return sum, fmt.Errorf("trace: event %d (%q): instant ts regressed", i, ev.Name)
			}
			lastTs["i"] = ev.Ts
		case "C":
			if _, ok := ev.Args["value"]; !ok {
				return sum, fmt.Errorf("trace: event %d (%q): counter without value", i, ev.Name)
			}
			counterNames[ev.Name] = true
		default:
			return sum, fmt.Errorf("trace: event %d (%q): unknown ph %q", i, ev.Name, ev.Ph)
		}
		if ev.Ts > sum.MaxTs {
			sum.MaxTs = ev.Ts
		}
	}
	if len(sum.Tracks) == 0 {
		return sum, errors.New("trace: no thread_name metadata")
	}
	sum.Counters = len(counterNames)
	return sum, nil
}
