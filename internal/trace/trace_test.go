package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pask/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

const ms = time.Millisecond

// sampleRecorder builds a small deterministic timeline exercising every
// recording path: spans via both entry points, instants, counters with
// dedup, and registry events.
func sampleRecorder() *Recorder {
	r := New()
	r.ObserveSpan(metrics.Span{
		Cat: metrics.CatParse, Name: "parse:conv1", Thread: "pask-parser",
		Start: 0, End: 2 * ms,
	})
	r.Span("pask-loader", metrics.CatLoad, "load:conv1.hsaco", 1*ms, 4*ms,
		metrics.Attr{Key: "bytes", Value: "1048576"})
	r.Span("gpu", metrics.CatExec, "conv1", 4*ms, 9*ms,
		metrics.Attr{Key: "solution", Value: "ConvAsm1x1U"})
	r.Instant("run", "run-start", 0,
		metrics.Attr{Key: "scheme", Value: "PaSK"},
		metrics.Attr{Key: "model", Value: "res"})
	r.Instant("run", "run-end", 9*ms)
	r.Count("pask_parsed_queue", 0, 0)
	r.Count("pask_parsed_queue", 1*ms, 1)
	r.Count("pask_parsed_queue", 2*ms, 1) // dedup: same value, dropped
	r.Count("pask_parsed_queue", 3*ms, 0)
	r.RegistryEvent("evict", "lib/conv0.hsaco", 5*ms)
	r.RegistrySample("hip_resident_bytes", 5*ms, 2097152)
	return r
}

func TestRecorderAccessors(t *testing.T) {
	r := sampleRecorder()
	if got := len(r.Spans()); got != 3 {
		t.Fatalf("Spans: got %d, want 3", got)
	}
	// Tracks are reported in first-seen order.
	want := []string{"pask-parser", "pask-loader", "gpu", "run", "registry"}
	got := r.Tracks()
	if len(got) != len(want) {
		t.Fatalf("Tracks: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tracks[%d]: got %q, want %q", i, got[i], want[i])
		}
	}
	if v, ok := r.CounterLast("hip_resident_bytes"); !ok || v != 2097152 {
		t.Fatalf("CounterLast(hip_resident_bytes): got %v, %v", v, ok)
	}
	// Consecutive duplicate counter values collapse.
	for _, c := range r.Counters() {
		if c.Name != "pask_parsed_queue" {
			continue
		}
		if len(c.Samples) != 3 {
			t.Fatalf("pask_parsed_queue samples: got %d, want 3 (dedup)", len(c.Samples))
		}
	}
	if d := r.CategoryTotal(metrics.CatLoad); d != 3*ms {
		t.Fatalf("CategoryTotal(load): got %v, want 3ms", d)
	}
	if at, ok := r.FindInstant("run", "run-end"); !ok || at != 9*ms {
		t.Fatalf("FindInstant(run-end): got %v, %v", at, ok)
	}
	if t0, t1 := r.Window(); t0 != 0 || t1 != 9*ms {
		t.Fatalf("Window: got [%v, %v], want [0, 9ms]", t0, t1)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.ObserveSpan(metrics.Span{Cat: metrics.CatExec, Start: 0, End: ms})
	r.Span("t", metrics.CatExec, "n", 0, ms)
	r.Instant("t", "n", 0)
	r.Count("c", 0, 1)
	r.RegistryEvent("evict", "p", 0)
	r.RegistrySample("s", 0, 1)
	if r.Spans() != nil || r.Tracks() != nil || r.Counters() != nil {
		t.Fatal("nil recorder must report empty state")
	}
	if _, ok := r.CounterLast("c"); ok {
		t.Fatal("nil recorder must have no counters")
	}
}

// TestChromeGolden pins the exporter's byte-exact output: stable track/tid
// assignment, stable event ordering, stable JSON shape. Regenerate with
// go test ./internal/trace -run TestChromeGolden -update.
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome export drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestChromeExportValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateChrome rejected our own export: %v", err)
	}
	if sum.Spans != 3 {
		t.Fatalf("summary spans: got %d, want 3", sum.Spans)
	}
	if sum.Counters != 2 {
		t.Fatalf("summary counter series: got %d, want 2", sum.Counters)
	}
	if len(sum.Tracks) != 5 {
		t.Fatalf("summary tracks: got %v, want 5 names", sum.Tracks)
	}
	if sum.MaxTs != 9000 { // run-end at 9ms = 9000us
		t.Fatalf("summary MaxTs: got %v, want 9000", sum.MaxTs)
	}
}

func TestValidateChromeRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"invalid json", "{", "invalid JSON"},
		{"empty", `{"traceEvents":[]}`, "no traceEvents"},
		{"unknown ph", `{"traceEvents":[{"name":"t","ph":"Z","ts":0,"pid":1,"tid":1}]}`, "unknown ph"},
		{"missing dur", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"t"}},
			{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}`, "missing or negative dur"},
		{"negative dur", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"t"}},
			{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`, "missing or negative dur"},
		{"non-monotonic", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"t"}},
			{"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":1},
			{"name":"b","ph":"X","ts":4,"dur":1,"pid":1,"tid":1}]}`, "before previous"},
		{"no threads", `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`, "no thread_name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateChrome([]byte(tc.data))
			if err == nil {
				t.Fatalf("ValidateChrome accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRecorderConcurrency exercises the recorder from many goroutines; run
// with -race to assert the locking holds.
func TestRecorderConcurrency(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			track := []string{"pask-parser", "pask-loader", "pask-issuer", "gpu"}[g%4]
			for i := 0; i < 200; i++ {
				at := time.Duration(i) * time.Microsecond
				r.Span(track, metrics.CatExec, "k", at, at+time.Microsecond)
				r.Count("q", at, float64(i%3))
				r.Instant(track, "tick", at)
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Spans()); got != 8*200 {
		t.Fatalf("spans: got %d, want %d", got, 8*200)
	}
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("concurrent-built trace invalid: %v", err)
	}
}

func TestPrometheusOutput(t *testing.T) {
	r := sampleRecorder()
	// Per-model counter series like breaker_state:res must flatten their
	// colon (reserved for recording rules) to an underscore.
	r.Count("breaker_state:res", 1*ms, 1)
	p := NewPromWriter()
	r.AppendPrometheus(p)
	ReportMetrics(p, &metrics.Report{
		Scheme: "PaSK", Model: "res", Batch: 1,
		Total: 9 * ms, GPUBusy: 5 * ms,
		Loads: 1, LoadedBytes: 1048576,
		ReuseQueries: 46, ReuseHits: 46, SkippedLoads: 46,
	})
	var buf bytes.Buffer
	if err := p.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pask_span_seconds_total counter",
		`pask_span_seconds_total{track="pask-loader",category="load"} 0.003`,
		`pask_spans_total{track="gpu",category="exec"} 1`,
		`pask_events_total{track="registry",name="evict"} 1`,
		"pask_hip_resident_bytes 2097152",
		`pask_run_loads{scheme="PaSK",model="res"} 1`,
		`pask_run_loaded_bytes{scheme="PaSK",model="res"} 1048576`,
		`pask_run_reuse_hits{scheme="PaSK",model="res"} 46`,
		`pask_run_total_seconds{scheme="PaSK",model="res"} 0.009`,
		"pask_breaker_state_res 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q\n---\n%s", want, out)
		}
	}
	// Text-format invariant: every # HELP is immediately followed by # TYPE,
	// and samples for a metric follow its header block.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i, ln := range lines {
		if strings.HasPrefix(ln, "# HELP") {
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE") {
				t.Fatalf("HELP line %d not followed by TYPE:\n%s", i, out)
			}
		}
	}
}

func TestPromWriterSortsAndEscapes(t *testing.T) {
	p := NewPromWriter()
	p.Declare("zeta", "gauge", "last")
	p.Sample("zeta", 1)
	p.Declare("alpha", "gauge", "first")
	p.Sample("alpha", 2.5, [2]string{"path", `a"b\c` + "\n"})
	var buf bytes.Buffer
	if err := p.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatalf("metrics not sorted by name:\n%s", out)
	}
	if !strings.Contains(out, `alpha{path="a\"b\\c\n"} 2.5`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
}
