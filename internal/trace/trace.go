// Package trace is the observability layer of the simulated stack: a
// virtual-time-aware recorder that turns a run's activity into an
// inspectable timeline instead of three scalar columns — the paper's §III-A
// three-thread pipeline rendered as parallel tracks, per Fig 5.
//
// A Recorder organizes events hierarchically: per-thread *tracks* (the
// parser / loader / issuer host threads, the GPU streams, the serving loop)
// carry *spans* (timed activities with key/value attributes: pattern,
// solution, tenant, byte counts) and *instants* (zero-duration marks such as
// evictions or the parse milestone), while *counter series* sample scalar
// state (resident bytes, cache size, queue depths) at event granularity.
//
// Recording is cheap and race-safe: all mutators take one mutex, a nil
// *Recorder ignores every call (so instrumentation sites need no guards),
// and counter series collapse runs of identical values. Two exporters turn
// a recording into standard tooling formats: WriteChrome emits Chrome
// trace_event JSON loadable in chrome://tracing and Perfetto, and
// WritePrometheus emits a Prometheus text-format snapshot.
//
// Paper anchor: the §III-A three-thread pipeline rendered as a timeline, per Fig 5.
package trace

import (
	"sync"
	"time"

	"pask/internal/metrics"
)

// Instant is a zero-duration mark on a track (an eviction, the parse
// milestone, a device reset).
type Instant struct {
	Track string
	Name  string
	At    time.Duration
	Attrs []metrics.Attr
}

// Sample is one counter observation.
type Sample struct {
	At    time.Duration
	Value float64
}

// Counter is one named scalar series sampled at event granularity.
type Counter struct {
	Name    string
	Samples []Sample
}

// Recorder accumulates one run's (or one server's) observable activity.
// The zero value is ready to use; a nil *Recorder ignores every call.
type Recorder struct {
	mu       sync.Mutex
	spans    []metrics.Span
	instants []Instant
	tracks   []string
	trackSet map[string]bool
	counters map[string]*Counter
	names    []string // counter names in first-seen order
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

func (r *Recorder) noteTrack(name string) {
	if name == "" {
		return
	}
	if r.trackSet == nil {
		r.trackSet = make(map[string]bool)
	}
	if !r.trackSet[name] {
		r.trackSet[name] = true
		r.tracks = append(r.tracks, name)
	}
}

// ObserveSpan implements metrics.SpanObserver: every span a wired Tracer
// records lands here, its Thread becoming the track.
func (r *Recorder) ObserveSpan(s metrics.Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteTrack(s.Thread)
	r.spans = append(r.spans, s)
}

// Span records a timed activity directly (instrumentation sites that do not
// go through a metrics.Tracer).
func (r *Recorder) Span(track string, cat metrics.Category, name string, start, end time.Duration, attrs ...metrics.Attr) {
	if r == nil {
		return
	}
	r.ObserveSpan(metrics.Span{Cat: cat, Name: name, Thread: track, Start: start, End: end, Attrs: attrs})
}

// Instant records a zero-duration mark on a track.
func (r *Recorder) Instant(track, name string, at time.Duration, attrs ...metrics.Attr) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteTrack(track)
	r.instants = append(r.instants, Instant{Track: track, Name: name, At: at, Attrs: attrs})
}

// Count records a sample of the named scalar series. Consecutive samples
// with an unchanged value are collapsed: the series keeps only the edges, so
// high-frequency sites (the event loop, per-decision cache sizes) stay
// cheap.
func (r *Recorder) Count(name string, at time.Duration, value float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{Name: name}
		r.counters[name] = c
		r.names = append(r.names, name)
	}
	if n := len(c.Samples); n > 0 && c.Samples[n-1].Value == value {
		return
	}
	c.Samples = append(c.Samples, Sample{At: at, Value: value})
}

// RegistryEvent implements the hip registry observer: evictions, coalesced
// waits and negative-cache hits arrive as instants on the "registry" track.
func (r *Recorder) RegistryEvent(kind, path string, at time.Duration) {
	r.Instant("registry", kind, at, metrics.Attr{Key: "path", Value: path})
}

// RegistrySample implements the hip registry observer's counter side.
func (r *Recorder) RegistrySample(name string, at time.Duration, value float64) {
	r.Count(name, at, value)
}

// Spans returns a copy of the recorded spans in recording order.
func (r *Recorder) Spans() []metrics.Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]metrics.Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Instants returns a copy of the recorded instants in recording order.
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Instant, len(r.instants))
	copy(out, r.instants)
	return out
}

// Tracks returns the track names in first-seen order.
func (r *Recorder) Tracks() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.tracks))
	copy(out, r.tracks)
	return out
}

// Counters returns copies of the counter series in first-seen order.
func (r *Recorder) Counters() []Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Counter, 0, len(r.names))
	for _, name := range r.names {
		c := r.counters[name]
		samples := make([]Sample, len(c.Samples))
		copy(samples, c.Samples)
		out = append(out, Counter{Name: name, Samples: samples})
	}
	return out
}

// CounterLast returns the final value of the named series (0, false when the
// series does not exist or is empty).
func (r *Recorder) CounterLast(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok || len(c.Samples) == 0 {
		return 0, false
	}
	return c.Samples[len(c.Samples)-1].Value, true
}

// CategoryTotal sums the raw (possibly overlapping) span time per category.
func (r *Recorder) CategoryTotal(cat metrics.Category) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total time.Duration
	for _, s := range r.spans {
		if s.Cat == cat {
			total += s.End - s.Start
		}
	}
	return total
}

// FindInstant returns the time of the first instant with the given track and
// name.
func (r *Recorder) FindInstant(track, name string) (time.Duration, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, in := range r.instants {
		if in.Track == track && in.Name == name {
			return in.At, true
		}
	}
	return 0, false
}

// Window returns the earliest span/instant start and the latest end observed.
func (r *Recorder) Window() (t0, t1 time.Duration) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	first := true
	grow := func(lo, hi time.Duration) {
		if first {
			t0, t1 = lo, hi
			first = false
			return
		}
		if lo < t0 {
			t0 = lo
		}
		if hi > t1 {
			t1 = hi
		}
	}
	for _, s := range r.spans {
		grow(s.Start, s.End)
	}
	for _, in := range r.instants {
		grow(in.At, in.At)
	}
	return t0, t1
}
