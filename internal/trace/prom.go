package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pask/internal/metrics"
)

// PromWriter builds a Prometheus text-format (version 0.0.4) exposition:
// one # HELP / # TYPE header per metric followed by its samples. Callers add
// metrics in any order; Flush renders them sorted by metric name and label
// signature so output is deterministic.
type PromWriter struct {
	metrics map[string]*promMetric
	names   []string
}

type promMetric struct {
	help, typ string
	samples   []promSample
}

type promSample struct {
	labels string // pre-rendered {k="v",...} or ""
	value  float64
}

// NewPromWriter returns an empty exposition builder.
func NewPromWriter() *PromWriter {
	return &PromWriter{metrics: make(map[string]*promMetric)}
}

// Declare registers a metric's HELP and TYPE ("gauge" or "counter"). It must
// be called before Sample for that name; repeat calls are no-ops.
func (p *PromWriter) Declare(name, typ, help string) {
	if _, ok := p.metrics[name]; ok {
		return
	}
	p.metrics[name] = &promMetric{help: help, typ: typ}
	p.names = append(p.names, name)
}

// Sample adds one sample. Labels are key/value pairs; values are escaped.
func (p *PromWriter) Sample(name string, value float64, labels ...[2]string) {
	m, ok := p.metrics[name]
	if !ok {
		m = &promMetric{typ: "gauge"}
		p.metrics[name] = m
		p.names = append(p.names, name)
	}
	var ls string
	if len(labels) > 0 {
		parts := make([]string, len(labels))
		for i, kv := range labels {
			parts[i] = kv[0] + `="` + escapeLabel(kv[1]) + `"`
		}
		ls = "{" + strings.Join(parts, ",") + "}"
	}
	m.samples = append(m.samples, promSample{labels: ls, value: value})
}

// escapeLabel applies the text-format label escapes: backslash, double
// quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// Flush writes the exposition to w.
func (p *PromWriter) Flush(w io.Writer) error {
	names := make([]string, len(p.names))
	copy(names, p.names)
	sort.Strings(names)
	for _, name := range names {
		m := p.metrics[name]
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, m.help); err != nil {
				return err
			}
		}
		typ := m.typ
		if typ == "" {
			typ = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		samples := make([]promSample, len(m.samples))
		copy(samples, m.samples)
		sort.SliceStable(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatPromValue(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// sanitizeMetricName maps a counter-series name onto the Prometheus metric
// charset [a-zA-Z0-9_:].
func sanitizeMetricName(name string) string {
	// Colons, though syntactically legal, are reserved by convention for
	// recording rules — counter series like "breaker_state:res" flatten to
	// underscores instead.
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus exports a snapshot of the recording in Prometheus text
// format: per-track/category span totals and counts, every counter series'
// last value, and instant-event totals.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	p := NewPromWriter()
	r.AppendPrometheus(p)
	return p.Flush(w)
}

// AppendPrometheus adds the recording's snapshot metrics to an existing
// exposition, so servers can merge several recorders plus their own gauges
// into one /metrics page.
func (r *Recorder) AppendPrometheus(p *PromWriter) {
	if r == nil {
		return
	}
	p.Declare("pask_span_seconds_total", "counter", "Total virtual-time seconds spent in spans, by track and category.")
	p.Declare("pask_spans_total", "counter", "Number of recorded spans, by track and category.")
	type key struct{ track, cat string }
	secs := map[key]time.Duration{}
	counts := map[key]int{}
	for _, s := range r.Spans() {
		k := key{s.Thread, string(s.Cat)}
		secs[k] += s.End - s.Start
		counts[k]++
	}
	keys := make([]key, 0, len(secs))
	for k := range secs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].track != keys[j].track {
			return keys[i].track < keys[j].track
		}
		return keys[i].cat < keys[j].cat
	})
	for _, k := range keys {
		labels := [][2]string{{"track", k.track}, {"category", k.cat}}
		p.Sample("pask_span_seconds_total", secs[k].Seconds(), labels...)
		p.Sample("pask_spans_total", float64(counts[k]), labels...)
	}

	p.Declare("pask_events_total", "counter", "Number of recorded instant events, by track and name.")
	evCounts := map[key]int{}
	for _, in := range r.Instants() {
		evCounts[key{in.Track, in.Name}]++
	}
	evKeys := make([]key, 0, len(evCounts))
	for k := range evCounts {
		evKeys = append(evKeys, k)
	}
	sort.Slice(evKeys, func(i, j int) bool {
		if evKeys[i].track != evKeys[j].track {
			return evKeys[i].track < evKeys[j].track
		}
		return evKeys[i].cat < evKeys[j].cat
	})
	for _, k := range evKeys {
		p.Sample("pask_events_total", float64(evCounts[k]), [2]string{"track", k.track}, [2]string{"name", k.cat})
	}

	for _, c := range r.Counters() {
		if len(c.Samples) == 0 {
			continue
		}
		name := "pask_" + sanitizeMetricName(c.Name)
		p.Declare(name, "gauge", "Last sampled value of the "+c.Name+" series.")
		p.Sample(name, c.Samples[len(c.Samples)-1].Value)
	}
}

// ReportMetrics adds one run Report's headline numbers to an exposition,
// labelled by scheme and model. Used by the HTTP /metrics endpoint to expose
// load counts, reuse hits and bytes for every run the server has executed.
func ReportMetrics(p *PromWriter, rep *metrics.Report) {
	if rep == nil {
		return
	}
	labels := [][2]string{{"scheme", rep.Scheme}, {"model", rep.Model}}
	p.Declare("pask_run_total_seconds", "gauge", "End-to-end virtual wall time of the most recent run.")
	p.Sample("pask_run_total_seconds", rep.Total.Seconds(), labels...)
	p.Declare("pask_run_gpu_busy_seconds", "gauge", "Union of GPU-active intervals in the most recent run.")
	p.Sample("pask_run_gpu_busy_seconds", rep.GPUBusy.Seconds(), labels...)
	p.Declare("pask_run_loads", "gauge", "Code objects loaded in the most recent run.")
	p.Sample("pask_run_loads", float64(rep.Loads), labels...)
	p.Declare("pask_run_loaded_bytes", "gauge", "Container bytes loaded in the most recent run.")
	p.Sample("pask_run_loaded_bytes", float64(rep.LoadedBytes), labels...)
	p.Declare("pask_run_reuse_queries", "gauge", "Cache queries (GetSubSolution calls) in the most recent run.")
	p.Sample("pask_run_reuse_queries", float64(rep.ReuseQueries), labels...)
	p.Declare("pask_run_reuse_hits", "gauge", "Cache queries answered with a resident instance.")
	p.Sample("pask_run_reuse_hits", float64(rep.ReuseHits), labels...)
	p.Declare("pask_run_skipped_loads", "gauge", "Loads avoided via selective reuse.")
	p.Sample("pask_run_skipped_loads", float64(rep.SkippedLoads), labels...)
	if rep.WarmupEntries > 0 {
		// Warmup gauges appear only for profile-warmed runs, keeping the
		// exposition byte-identical for everything else.
		p.Declare("pask_run_warmup_prefetched", "gauge", "Objects made resident by manifest replay before first use.")
		p.Sample("pask_run_warmup_prefetched", float64(rep.WarmupPrefetched), labels...)
		p.Declare("pask_run_warmup_hits", "gauge", "Objects the run used that the warmup replay covered.")
		p.Sample("pask_run_warmup_hits", float64(rep.WarmupHits), labels...)
		p.Declare("pask_run_warmup_misses", "gauge", "Objects the run used that the warmup replay did not cover.")
		p.Sample("pask_run_warmup_misses", float64(rep.WarmupMisses), labels...)
		p.Declare("pask_run_warmup_wasted", "gauge", "Objects the warmup replay loaded that the run never used.")
		p.Sample("pask_run_warmup_wasted", float64(rep.WarmupWasted), labels...)
		p.Declare("pask_run_warmup_stale_entries", "gauge", "Manifest entries skipped for checksum mismatch or read error.")
		p.Sample("pask_run_warmup_stale_entries", float64(rep.WarmupStale), labels...)
	}
}
