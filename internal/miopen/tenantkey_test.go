package miopen

import (
	"testing"

	"pask/internal/device"
	"pask/internal/kernels"
	"pask/internal/tensor"
)

// The per-GPU shared cache and cross-tenant module reuse both rest on one
// invariant: an Instance's identity (Key/Path) and its cache category
// (CacheKey) are functions of the solution and problem configuration only —
// no model name, registry identity or tenant leaks in. Two tenants serving
// different models that bind the same solution to the same configuration
// must produce byte-identical store paths and land in the same cache list.
func TestInstanceKeysAreModelIndependent(t *testing.T) {
	prob := NewConvProblem(tensor.Shape{N: 1, C: 64, H: 28, W: 28}, 64, 3, 3,
		kernels.Conv2DParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1},
		1, tensor.F32, tensor.NCHW)

	// Two registries standing in for two tenants' model stacks.
	regA := NewRegistry(NewCtx(device.MI100()))
	regB := NewRegistry(NewCtx(device.MI100()))

	for _, id := range []string{"ConvWinogradNaiveFwd", "ConvBinWinogradRxSFwd", "ConvBinWinogradFwdFixed"} {
		solA, okA := regA.ByID(id)
		solB, okB := regB.ByID(id)
		if !okA || !okB {
			t.Fatalf("solution %s missing from a registry", id)
		}
		instA := Bind(solA, &prob)
		instB := Bind(solB, &prob)
		if instA.Key() != instB.Key() {
			t.Errorf("%s: keys differ across registries: %q vs %q", id, instA.Key(), instB.Key())
		}
		if instA.Path() != instB.Path() {
			t.Errorf("%s: store paths differ across registries: %q vs %q", id, instA.Path(), instB.Path())
		}
		if instA.CacheKey() != instB.CacheKey() {
			t.Errorf("%s: cache keys differ across registries: %q vs %q", id, instA.CacheKey(), instB.CacheKey())
		}
	}
}
