package miopen

import (
	"fmt"

	"pask/internal/backend"
	"pask/internal/device"
	"pask/internal/sim"
)

// Library is the runtime handle of the primitive library inside one process:
// it binds the solution registry to that process's device backend, charges the
// host cost of applicability checks, and runs solutions by launching their
// kernels (miopenRunSolution in the paper).
type Library struct {
	Reg *Registry
	RT  backend.Backend

	checks int // IsApplicable invocations charged so far

	// memo caches IsApplicable outcomes. The verdict is a pure function of
	// (solution, binding, problem, workspace limit) within one kill-switch
	// generation, so repeat queries skip re-deriving binding keys and
	// predicate walks — only the host-side CPU work; the virtual-time charge
	// and the checks counter are untouched.
	memo    map[applicKey]bool
	memoGen uint64
}

// applicKey identifies one memoized applicability verdict. Every field is
// comparable; WorkspaceLimit is part of the key (rather than a generation
// bump) because tests mutate it directly on the Ctx.
type applicKey struct {
	sol     Solution
	binding string
	prob    Problem
	wsLimit int64
}

// NewLibrary binds a registry to a process runtime.
func NewLibrary(reg *Registry, rt backend.Backend) *Library {
	return &Library{Reg: reg, RT: rt}
}

// LoadResidents maps the library's built-in generic kernels into the module
// registry — the part of opening the library binary (dlopen) that happens at
// process initialization, before any inference request is timed.
func (l *Library) LoadResidents(proc *sim.Proc) error {
	for _, inst := range l.Reg.Residents() {
		if _, err := l.RT.RegisterResident(proc, inst.Path()); err != nil {
			return err
		}
	}
	return nil
}

// ApplicabilityChecks returns the number of charged IsApplicable calls.
func (l *Library) ApplicabilityChecks() int { return l.checks }

// CheckApplicable evaluates inst.IsApplicable(p) and charges the host-side
// cost of the check — the expensive validation PASK's categorical cache
// minimizes (paper §II-B).
func (l *Library) CheckApplicable(proc *sim.Proc, inst Instance, p *Problem) bool {
	proc.Sleep(l.RT.Host().ApplicabilityCheck)
	l.checks++
	ctx := l.Reg.ctx
	if l.memo == nil || l.memoGen != ctx.Generation() {
		l.memo = make(map[applicKey]bool, 64)
		l.memoGen = ctx.Generation()
	}
	k := applicKey{sol: inst.Sol, binding: inst.Binding, prob: *p, wsLimit: ctx.WorkspaceLimit}
	if v, ok := l.memo[k]; ok {
		return v
	}
	v := inst.IsApplicable(ctx, p)
	l.memo[k] = v
	return v
}

// IsLoaded reports whether the instance's code object is resident.
func (l *Library) IsLoaded(inst Instance) bool {
	return l.RT.Loaded(inst.Path())
}

// EnsureLoaded loads the instance's code object if absent, charging load
// time to the calling process.
func (l *Library) EnsureLoaded(proc *sim.Proc, inst Instance) error {
	_, err := l.RT.ModuleLoad(proc, inst.Path())
	return err
}

// RunSolution launches the instance's kernels for p on the stream and
// returns the completion signal of the last kernel. If the code object is
// absent it is loaded lazily here — the reactive behavior whose cost the
// paper attributes cold start to.
func (l *Library) RunSolution(proc *sim.Proc, stream *device.Stream, inst Instance, p *Problem) (*sim.Signal, error) {
	calls := inst.Sol.KernelCalls(p)
	if len(calls) == 0 {
		return nil, fmt.Errorf("miopen: solution %s produced no kernels for %s", inst.Key(), p.Key())
	}
	var last *sim.Signal
	for _, c := range calls {
		fn, err := l.RT.GetFunction(proc, inst.Path(), c.Symbol)
		if err != nil {
			return nil, fmt.Errorf("miopen: RunSolution %s: %w", inst.Key(), err)
		}
		last = stream.LaunchWorkload(proc, fn.Name(), c.Work, c.Eff)
	}
	return last, nil
}
