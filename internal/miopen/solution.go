package miopen

import (
	"sync"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/kernels"
	"pask/internal/tensor"
)

// Pattern is the algorithmic family of a solution. The categorical cache of
// PASK groups loaded solutions by this tag (paper §III-C).
type Pattern string

const (
	PatternWinograd     Pattern = "Winograd"
	PatternGEMM         Pattern = "GEMM"
	PatternDirect       Pattern = "DirectConv"
	PatternImplicitGEMM Pattern = "ImplicitGEMM"
	PatternPooling      Pattern = "Pooling"
	PatternActivation   Pattern = "Activation"
)

// Patterns lists all known patterns in stable order.
func Patterns() []Pattern {
	return []Pattern{
		PatternWinograd, PatternGEMM, PatternDirect,
		PatternImplicitGEMM, PatternPooling, PatternActivation,
	}
}

// Ctx carries the environment a solution validates against: device
// capabilities, the workspace limit, and solution kill switches (the
// "environment variable validation" of paper §II-B).
//
// Mutate the kill switches through Disable/Enable, not the Disabled map
// directly: the methods bump the generation counter that invalidates
// memoized applicability results.
type Ctx struct {
	Dev            device.Profile
	WorkspaceLimit int64
	Disabled       map[string]bool // solution ID -> disabled
	gen            uint64          // bumped on every kill-switch change
}

// NewCtx returns a context for the given device with a 64 MiB workspace —
// the default scratch budget the framework grants the library.
func NewCtx(dev device.Profile) *Ctx {
	return &Ctx{Dev: dev, WorkspaceLimit: 64 << 20, Disabled: make(map[string]bool)}
}

// Disable switches a solution off by ID (fault injection, kill switches).
func (c *Ctx) Disable(id string) {
	if !c.Disabled[id] {
		c.Disabled[id] = true
		c.gen++
	}
}

// Enable re-enables a previously disabled solution.
func (c *Ctx) Enable(id string) {
	if c.Disabled[id] {
		delete(c.Disabled, id)
		c.gen++
	}
}

// Generation returns the kill-switch generation; memoized applicability
// results are valid only within one generation.
func (c *Ctx) Generation() uint64 { return c.gen }

// KernelCall is one kernel invocation a solution issues: a symbol in the
// solution's code object plus its roofline inputs.
type KernelCall struct {
	Symbol string
	Work   kernels.Workload
	Eff    float64
}

// Solution is one algorithm implementation in the library. A Solution is a
// *family*: specialized families bind template parameters per problem
// (BindingKey), and each binding is a separate compiled code object.
type Solution interface {
	// ID returns the solution's stable name, e.g. "ConvBinWinogradRxSFwd".
	ID() string
	// Pattern returns the algorithmic family.
	Pattern() Pattern
	// Primitive returns the layer type the solution implements.
	Primitive() Primitive
	// Specificity orders the generality ladder: higher values are more
	// specialized (paper Fig 4).
	Specificity() int
	// IsApplicable reports whether the solution can solve p under ctx
	// without constraint violations. This is the expensive check PASK's
	// categorical cache minimizes; time is charged by the caller.
	IsApplicable(ctx *Ctx, p *Problem) bool
	// BindingKey returns the compile-time template binding for p ("" for
	// binding-free solutions). A loaded instance only serves problems with
	// an identical binding.
	BindingKey(p *Problem) string
	// WorkspaceSize returns the scratch memory the solution needs for p.
	WorkspaceSize(p *Problem) int64
	// Efficiency returns the roofline efficiency in (0,1] achieved on p.
	Efficiency(p *Problem) float64
	// KernelCalls returns the kernel invocations that realize p.
	KernelCalls(p *Problem) []KernelCall
	// ObjectSpec returns the kernels compiled into the code object for the
	// given binding.
	ObjectSpec(binding string) []codeobj.KernelSpec
	// PreferredLayout returns the data layout the solution's kernels want;
	// agnostic is true when any layout works in place.
	PreferredLayout(p *Problem) (layout tensor.Layout, agnostic bool)
	// RunFunctional computes the layer on host tensors (tests and the
	// functional example). w and bias are nil for non-conv primitives.
	RunFunctional(p *Problem, in, w, bias, out *tensor.Tensor) error
}

// Instance is a loaded (or loadable) realization of a solution family at a
// concrete binding — the unit PASK caches and reuses.
type Instance struct {
	Sol     Solution
	Binding string
}

// Bind materializes the instance implementing p with solution s.
func Bind(s Solution, p *Problem) Instance {
	return Instance{Sol: s, Binding: s.BindingKey(p)}
}

// pathIntern caches the store path per (solution ID, binding) so the hot
// cache-query and residency-probe loops stop concatenating strings on every
// call. The set of distinct instances is small and fixed per run, so the
// map only ever holds the working set.
var pathIntern = struct {
	sync.RWMutex
	m map[pathKey]string
}{m: make(map[pathKey]string)}

type pathKey struct{ id, binding string }

// Path returns the code-object store path of the instance. The string is
// interned: repeated calls for the same instance return the same allocation.
func (i Instance) Path() string {
	k := pathKey{i.Sol.ID(), i.Binding}
	pathIntern.RLock()
	p, ok := pathIntern.m[k]
	pathIntern.RUnlock()
	if ok {
		return p
	}
	if k.binding == "" {
		p = k.id + ".pko"
	} else {
		p = k.id + "_" + k.binding + ".pko"
	}
	pathIntern.Lock()
	pathIntern.m[k] = p
	pathIntern.Unlock()
	return p
}

// Key returns a unique identity for the instance.
func (i Instance) Key() string { return i.Path() }

// CacheKey returns the category the loaded-solution cache groups this
// instance under. The key is the solution's algorithmic pattern and nothing
// else: no model name, registry identity or tenant enters it, so two models
// (or two tenants on a shared GPU) whose layers bind the same solution fall
// into the same category and can substitute for each other. Cross-model
// reuse (paper §III-B/C) and the per-GPU SharedCache both depend on this
// invariant — keep model-specific state out of Pattern and BindingKey.
func (i Instance) CacheKey() Pattern { return i.Sol.Pattern() }

// IsApplicable reports whether this loaded instance can solve p: the family
// constraints must hold and p must bind to the same template parameters.
func (i Instance) IsApplicable(ctx *Ctx, p *Problem) bool {
	if !i.Sol.IsApplicable(ctx, p) {
		return false
	}
	return i.Sol.BindingKey(p) == i.Binding
}

// EstimateTime predicts the GPU time of running p with solution s on dev —
// the quantity the performance database ranks by.
func EstimateTime(dev device.Profile, s Solution, p *Problem) time.Duration {
	var total time.Duration
	for _, c := range s.KernelCalls(p) {
		total += dev.KernelTime(c.Work, c.Eff)
	}
	return total
}

// clampEff bounds an efficiency into (0, 1].
func clampEff(e float64) float64 {
	if e < 0.01 {
		return 0.01
	}
	if e > 1 {
		return 1
	}
	return e
}
