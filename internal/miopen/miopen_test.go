package miopen

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/kernels"
	"pask/internal/tensor"
)

func testCtx() *Ctx { return NewCtx(device.MI100()) }

func sh(n, c, h, w int) tensor.Shape { return tensor.Shape{N: n, C: c, H: h, W: w} }

func conv3x3(c, k, hw int) Problem {
	return NewConvProblem(sh(1, c, hw, hw), k, 3, 3,
		kernels.Conv2DParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1},
		1, tensor.F32, tensor.NCHW)
}

func TestProblemKeyDistinguishes(t *testing.T) {
	a := conv3x3(64, 64, 56)
	b := conv3x3(64, 128, 56)
	c := a
	if a.Key() == b.Key() {
		t.Fatal("different problems share a key")
	}
	if a.Key() != c.Key() {
		t.Fatal("identical problems have different keys")
	}
	d := a
	d.DType = tensor.F16
	if a.Key() == d.Key() {
		t.Fatal("dtype must be part of the key")
	}
}

func TestProblemValidation(t *testing.T) {
	good := conv3x3(8, 8, 16)
	if !good.Valid() {
		t.Fatal("valid problem rejected")
	}
	bad := good
	bad.Groups = 3 // 8 % 3 != 0
	if bad.Valid() {
		t.Fatal("invalid groups accepted")
	}
	neg := good
	neg.K = 0
	if neg.Valid() {
		t.Fatal("zero filters accepted")
	}
	shrunk := good
	shrunk.In.H = 1
	shrunk.Conv.PadH = 0
	if shrunk.Valid() {
		t.Fatal("non-positive output accepted")
	}
}

func TestProblemOutShapeAndWeights(t *testing.T) {
	p := NewConvProblem(sh(2, 16, 32, 32), 8, 3, 3,
		kernels.Conv2DParams{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, DilH: 1, DilW: 1},
		1, tensor.F32, tensor.NCHW)
	if got := p.OutShape(); got != sh(2, 8, 16, 16) {
		t.Fatalf("OutShape = %v", got)
	}
	if got := p.WeightShape(); got != sh(8, 16, 3, 3) {
		t.Fatalf("WeightShape = %v", got)
	}
	if p.WeightBytes() != 8*16*9*4 {
		t.Fatalf("WeightBytes = %d", p.WeightBytes())
	}
	pool := NewPoolProblem(sh(1, 8, 8, 8), kernels.Pool2DParams{WinH: 2, WinW: 2, StrideH: 2, StrideW: 2}, kernels.MaxPool, tensor.F32, tensor.NCHW)
	if got := pool.OutShape(); got != sh(1, 8, 4, 4) {
		t.Fatalf("pool OutShape = %v", got)
	}
	act := NewActProblem(sh(1, 8, 8, 8), kernels.ReLU, 0, tensor.F32, tensor.NCHW)
	if got := act.OutShape(); got != act.In {
		t.Fatalf("act OutShape = %v", got)
	}
	if act.WeightBytes() != 0 {
		t.Fatal("activation has no weights")
	}
}

func TestEveryConvProblemHasFallback(t *testing.T) {
	reg := NewRegistry(testCtx())
	// Awkward geometries that defeat every specialist.
	problems := []Problem{
		NewConvProblem(sh(1, 3, 7, 7), 5, 4, 2, kernels.Conv2DParams{StrideH: 3, StrideW: 1, PadH: 2, PadW: 0, DilH: 2, DilW: 1}, 1, tensor.I8, tensor.NHWC),
		NewConvProblem(sh(1, 6, 9, 9), 6, 3, 3, kernels.Conv2DParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1}, 3, tensor.F16, tensor.NCHW),
		NewConvProblem(sh(1, 1, 224, 1), 2, 5, 1, kernels.Conv2DParams{StrideH: 2, StrideW: 1, PadH: 0, PadW: 0, DilH: 1, DilW: 1}, 1, tensor.F32, tensor.NCHW),
	}
	for _, p := range problems {
		if _, err := reg.FindBest(&p); err != nil {
			t.Errorf("no solution for %s: %v", p.Key(), err)
		}
	}
}

func TestFindRanksSpecialistsFirstInSweetSpot(t *testing.T) {
	reg := NewRegistry(testCtx())
	p := conv3x3(256, 256, 28) // deep-layer sweet spot
	ranked := reg.Find(&p)
	if len(ranked) < 3 {
		t.Fatalf("expected several applicable solutions, got %d", len(ranked))
	}
	if got := ranked[0].Inst.Sol.ID(); got != "ConvBinWinogradFwdFixed" {
		t.Fatalf("best = %s, want ConvBinWinogradFwdFixed", got)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Est < ranked[i-1].Est {
			t.Fatal("ranking not sorted by estimate")
		}
	}
}

func TestFirstLayerPicksDirectTiled(t *testing.T) {
	reg := NewRegistry(testCtx())
	p := NewConvProblem(sh(1, 3, 224, 224), 64, 7, 7,
		kernels.Conv2DParams{StrideH: 2, StrideW: 2, PadH: 3, PadW: 3, DilH: 1, DilW: 1},
		1, tensor.F32, tensor.NCHW)
	best, err := reg.FindBest(&p)
	if err != nil {
		t.Fatal(err)
	}
	if best.Inst.Sol.ID() != "ConvDirectTiledFwd" {
		t.Fatalf("best = %s, want ConvDirectTiledFwd", best.Inst.Sol.ID())
	}
}

func TestLargeSpatial3x3PicksMidTierWinograd(t *testing.T) {
	reg := NewRegistry(testCtx())
	p := conv3x3(64, 64, 224) // too big for the fixed specialist
	best, err := reg.FindBest(&p)
	if err != nil {
		t.Fatal(err)
	}
	if best.Inst.Sol.ID() != "ConvBinWinogradRxSFwd" {
		t.Fatalf("best = %s, want ConvBinWinogradRxSFwd", best.Inst.Sol.ID())
	}
	if best.Inst.Binding != "f32" {
		t.Fatalf("binding = %q", best.Inst.Binding)
	}
}

func TestSpecializationLadderMonotonicity(t *testing.T) {
	// A problem inside every Winograd tier's envelope: the more specialized
	// the solution, the faster the estimate (paper Fig 4).
	reg := NewRegistry(testCtx())
	p := conv3x3(64, 64, 28)
	ids := []string{"ConvWinogradNaiveFwd", "ConvBinWinogradRxSFwd", "ConvBinWinogradFwdFixed"}
	var prev time.Duration
	for i, id := range ids {
		s, ok := reg.ByID(id)
		if !ok {
			t.Fatalf("missing solution %s", id)
		}
		if !s.IsApplicable(reg.Ctx(), &p) {
			t.Fatalf("%s should be applicable to %s", id, p.Key())
		}
		est := EstimateTime(reg.Ctx().Dev, s, &p)
		if i > 0 && est >= prev {
			t.Fatalf("%s (%v) not faster than previous tier (%v)", id, est, prev)
		}
		prev = est
	}
}

func TestBindingRestrictsInstanceReuse(t *testing.T) {
	reg := NewRegistry(testCtx())
	ctx := reg.Ctx()
	fixed, _ := reg.ByID("ConvBinWinogradFwdFixed")
	p1 := conv3x3(64, 64, 28)
	p2 := conv3x3(256, 256, 14) // different problem configuration
	p1dup := conv3x3(64, 64, 28)
	inst := Bind(fixed, &p1)
	if !inst.IsApplicable(ctx, &p1) {
		t.Fatal("instance must serve its own problem")
	}
	if inst.IsApplicable(ctx, &p2) {
		t.Fatal("instance must not serve a different binding")
	}
	if !inst.IsApplicable(ctx, &p1dup) {
		t.Fatal("instance must serve a repeat of its own problem")
	}
	// A binding-free mid-tier serves all of them.
	rxs, _ := reg.ByID("ConvBinWinogradRxSFwd")
	mid := Bind(rxs, &p1)
	for _, p := range []*Problem{&p1, &p2, &p1dup} {
		if !mid.IsApplicable(ctx, p) {
			t.Fatalf("mid-tier should serve %s", p.Key())
		}
	}
}

func TestInstancePathIncludesBinding(t *testing.T) {
	reg := NewRegistry(testCtx())
	fixed, _ := reg.ByID("ConvBinWinogradFwdFixed")
	naive, _ := reg.ByID("ConvDirectNaiveFwd")
	p := conv3x3(64, 64, 28)
	if got := Bind(fixed, &p).Path(); got != "ConvBinWinogradFwdFixed_r3s3_c64k64h28_f32.pko" {
		t.Fatalf("specialized path = %q", got)
	}
	if got := Bind(naive, &p).Path(); got != "ConvDirectNaiveFwd.pko" {
		t.Fatalf("generic path = %q", got)
	}
}

func TestWorkspaceLimitDisqualifies(t *testing.T) {
	ctx := testCtx()
	ctx.WorkspaceLimit = 1 // nothing fits
	reg := NewRegistry(ctx)
	p := conv3x3(64, 64, 56)
	for _, r := range reg.Find(&p) {
		if r.Inst.Sol.ID() == "ConvGemmNaiveFwd" || r.Inst.Sol.ID() == "ConvGemmStridedBatchedFwd" {
			t.Fatalf("%s needs workspace and must be excluded", r.Inst.Sol.ID())
		}
	}
}

func TestDisabledSolutionExcluded(t *testing.T) {
	ctx := testCtx()
	ctx.Disable("ConvBinWinogradFwdFixed")
	reg := NewRegistry(ctx)
	p := conv3x3(128, 128, 28)
	best, err := reg.FindBest(&p)
	if err != nil {
		t.Fatal(err)
	}
	if best.Inst.Sol.ID() == "ConvBinWinogradFwdFixed" {
		t.Fatal("disabled solution selected")
	}
}

func TestXdlopsRequiresMatrixHardware(t *testing.T) {
	p := NewConvProblem(sh(1, 64, 14, 14), 64, 1, 1, kernels.Default1x1(), 1, tensor.F32, tensor.NHWC)
	mi := NewRegistry(NewCtx(device.MI100()))
	xd, _ := mi.ByID("ConvImplicitGemmXdlopsFwd")
	if !xd.IsApplicable(mi.Ctx(), &p) {
		t.Fatal("Xdlops should be applicable on MI100 (gfx908)")
	}
	navi := NewRegistry(NewCtx(device.RX6900XT()))
	xdN, _ := navi.ByID("ConvImplicitGemmXdlopsFwd")
	if xdN.IsApplicable(navi.Ctx(), &p) {
		t.Fatal("Xdlops must be rejected on gfx1030 (no matrix pipes)")
	}
}

func TestPoolAndActLadders(t *testing.T) {
	reg := NewRegistry(testCtx())
	pool := NewPoolProblem(sh(1, 64, 56, 56), kernels.Pool2DParams{WinH: 2, WinW: 2, StrideH: 2, StrideW: 2}, kernels.MaxPool, tensor.F32, tensor.NCHW)
	best, err := reg.FindBest(&pool)
	if err != nil {
		t.Fatal(err)
	}
	if best.Inst.Sol.ID() != "PoolingTiled2DFwd" {
		t.Fatalf("pool best = %s", best.Inst.Sol.ID())
	}
	global := NewPoolProblem(sh(1, 512, 7, 7), kernels.Pool2DParams{WinH: 7, WinW: 7, StrideH: 7, StrideW: 7}, kernels.AvgPool, tensor.F32, tensor.NCHW)
	best, err = reg.FindBest(&global)
	if err != nil {
		t.Fatal(err)
	}
	if best.Inst.Sol.ID() != "PoolingNaiveFwd" {
		t.Fatalf("global pool best = %s", best.Inst.Sol.ID())
	}
	relu := NewActProblem(sh(1, 64, 56, 56), kernels.ReLU, 0, tensor.F32, tensor.NCHW)
	best, err = reg.FindBest(&relu)
	if err != nil {
		t.Fatal(err)
	}
	if best.Inst.Sol.ID() != "ActivationPackedFwd" {
		t.Fatalf("relu best = %s", best.Inst.Sol.ID())
	}
	gelu := NewActProblem(sh(1, 1, 1, 3), kernels.GELU, 0, tensor.F32, tensor.NCHW)
	best, err = reg.FindBest(&gelu)
	if err != nil {
		t.Fatal(err)
	}
	if best.Inst.Sol.ID() != "ActivationNaiveFwd" {
		t.Fatalf("gelu best = %s", best.Inst.Sol.ID())
	}
}

func TestPerfDBMemoizes(t *testing.T) {
	reg := NewRegistry(testCtx())
	db := NewPerfDB(reg)
	p := conv3x3(64, 64, 56)
	a := db.Find(&p)
	b := db.Find(&p)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("find results differ: %d vs %d", len(a), len(b))
	}
	if db.Entries() != 1 {
		t.Fatalf("Entries = %d", db.Entries())
	}
	if db.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", db.HitRate())
	}
}

// TestObjectSymbolsCoverKernelCalls materializes every solution's object for
// a set of representative problems and checks that each KernelCall symbol
// resolves — the consistency contract between the cost model and the loader.
func TestObjectSymbolsCoverKernelCalls(t *testing.T) {
	reg := NewRegistry(testCtx())
	problems := []Problem{
		conv3x3(64, 64, 56),
		conv3x3(3, 64, 224),
		conv3x3(128, 256, 14),
		NewConvProblem(sh(1, 64, 56, 56), 128, 1, 1, kernels.Default1x1(), 1, tensor.F32, tensor.NHWC),
		NewConvProblem(sh(1, 32, 28, 28), 32, 3, 3, kernels.Conv2DParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1}, 32, tensor.F32, tensor.NCHW),
		NewConvProblem(sh(1, 3, 224, 224), 96, 11, 11, kernels.Conv2DParams{StrideH: 4, StrideW: 4, PadH: 2, PadW: 2, DilH: 1, DilW: 1}, 1, tensor.F32, tensor.NCHW),
		NewPoolProblem(sh(1, 64, 56, 56), kernels.Pool2DParams{WinH: 3, WinW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}, kernels.MaxPool, tensor.F32, tensor.NCHW),
		NewActProblem(sh(1, 64, 56, 56), kernels.ReLU, 0, tensor.F32, tensor.NCHW),
		NewActProblem(sh(1, 64, 56, 56), kernels.Sigmoid, 0, tensor.F16, tensor.NCHW),
	}
	store := codeobj.NewStore()
	for pi := range problems {
		p := &problems[pi]
		for _, r := range reg.Find(p) {
			inst := r.Inst
			if err := MaterializeObjects(store, reg.Ctx().Dev.Arch, []Instance{inst}); err != nil {
				t.Fatalf("materialize %s: %v", inst.Key(), err)
			}
			data, err := store.Get(inst.Path())
			if err != nil {
				t.Fatal(err)
			}
			obj, err := codeobj.Parse(data)
			if err != nil {
				t.Fatalf("parse %s: %v", inst.Path(), err)
			}
			for _, call := range inst.Sol.KernelCalls(p) {
				if _, ok := obj.Symbol(call.Symbol); !ok {
					t.Fatalf("symbol %q of %s missing from object %s", call.Symbol, inst.Key(), inst.Path())
				}
				if call.Work.Flops < 0 || call.Work.Bytes <= 0 {
					t.Fatalf("degenerate workload for %s: %+v", call.Symbol, call.Work)
				}
			}
		}
	}
}

// Property: every applicable solution computes the same function — the
// correctness premise of PASK's reuse (substituting a loaded solution never
// changes results).
func TestApplicableSolutionsAgreeProperty(t *testing.T) {
	reg := NewRegistry(testCtx())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var p Problem
		switch rng.Intn(3) {
		case 0:
			c := []int{3, 4, 8, 16}[rng.Intn(4)]
			k := []int{8, 16, 32}[rng.Intn(3)]
			r := []int{1, 3, 5}[rng.Intn(3)]
			hw := rng.Intn(12) + r
			st := rng.Intn(2) + 1
			p = NewConvProblem(sh(1, c, hw, hw), k, r, r,
				kernels.Conv2DParams{StrideH: st, StrideW: st, PadH: r / 2, PadW: r / 2, DilH: 1, DilW: 1},
				1, tensor.F32, tensor.NCHW)
		case 1:
			c := rng.Intn(8) + 1
			hw := rng.Intn(10) + 4
			p = NewPoolProblem(sh(1, c, hw, hw),
				kernels.Pool2DParams{WinH: rng.Intn(3) + 1, WinW: rng.Intn(3) + 1, StrideH: rng.Intn(2) + 1, StrideW: rng.Intn(2) + 1},
				kernels.PoolMode(rng.Intn(2)), tensor.F32, tensor.NCHW)
		default:
			c := rng.Intn(8) + 1
			hw := rng.Intn(10) + 2
			p = NewActProblem(sh(1, c, hw, hw), kernels.ActKind(rng.Intn(5)), 0.1, tensor.F32, tensor.NCHW)
		}
		if !p.Valid() {
			return true
		}
		in := tensor.New(p.In, tensor.NCHW)
		in.Fill(func(int) float32 { return rng.Float32()*2 - 1 })
		var w, bias *tensor.Tensor
		if p.Primitive == Convolution {
			w = tensor.New(p.WeightShape(), tensor.NCHW)
			w.Fill(func(int) float32 { return rng.Float32()*2 - 1 })
			bias = tensor.New(sh(p.K, 1, 1, 1), tensor.NCHW)
			bias.Fill(func(int) float32 { return rng.Float32() })
		}
		ranked := reg.Find(&p)
		if len(ranked) == 0 {
			return false
		}
		var ref *tensor.Tensor
		for _, r := range ranked {
			out := tensor.New(p.OutShape(), tensor.NCHW)
			if err := r.Inst.Sol.RunFunctional(&p, in, w, bias, out); err != nil {
				return false
			}
			if ref == nil {
				ref = out
				continue
			}
			if tensor.MaxAbsDiff(ref, out) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Find never returns an inapplicable instance, and the instance's
// binding always matches the problem.
func TestFindSoundnessProperty(t *testing.T) {
	reg := NewRegistry(testCtx())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := rng.Intn(512) + 1
		k := rng.Intn(512) + 1
		r := rng.Intn(7) + 1
		hw := rng.Intn(200) + r
		st := rng.Intn(3) + 1
		p := NewConvProblem(sh(rng.Intn(4)+1, c, hw, hw), k, r, r,
			kernels.Conv2DParams{StrideH: st, StrideW: st, PadH: rng.Intn(3), PadW: rng.Intn(3), DilH: 1, DilW: 1},
			1, tensor.DType(rng.Intn(3)), tensor.Layout(rng.Intn(2)))
		if !p.Valid() {
			return true
		}
		for _, ranked := range reg.Find(&p) {
			if !ranked.Inst.IsApplicable(reg.Ctx(), &p) {
				return false
			}
			if ranked.Inst.Binding != ranked.Inst.Sol.BindingKey(&p) {
				return false
			}
			if ranked.Est <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyCurve(t *testing.T) {
	if occupancy(1000) >= occupancy(10000) || occupancy(10000) >= occupancy(400000) {
		t.Fatal("occupancy must grow with parallel work")
	}
	if occupancy(400000) != 1 || occupancy(1<<30) != 1 {
		t.Fatal("occupancy must saturate at 1")
	}
	if occupancy(0) < 0.03 {
		t.Fatal("occupancy floor too low")
	}
}

func TestPow2Bucket(t *testing.T) {
	cases := map[int]int{1: 16, 16: 16, 17: 16, 64: 64, 100: 64, 512: 512, 2048: 512}
	for in, want := range cases {
		if got := pow2Bucket(in); got != want {
			t.Errorf("pow2Bucket(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPerfDBExportImportRoundTrip(t *testing.T) {
	reg := NewRegistry(testCtx())
	db := NewPerfDB(reg)
	problems := []Problem{
		conv3x3(64, 64, 56),
		conv3x3(256, 256, 14),
		NewPoolProblem(sh(1, 64, 56, 56), kernels.Pool2DParams{WinH: 2, WinW: 2, StrideH: 2, StrideW: 2}, kernels.MaxPool, tensor.F32, tensor.NCHW),
	}
	for i := range problems {
		db.Find(&problems[i])
	}
	data, err := db.Export()
	if err != nil {
		t.Fatal(err)
	}
	// A fresh database imports the tuned results and serves them without
	// recomputing.
	db2 := NewPerfDB(reg)
	if err := db2.Import(data); err != nil {
		t.Fatal(err)
	}
	if db2.Entries() != db.Entries() {
		t.Fatalf("entries = %d, want %d", db2.Entries(), db.Entries())
	}
	for i := range problems {
		a := db.Find(&problems[i])
		b := db2.Find(&problems[i])
		if len(a) != len(b) {
			t.Fatalf("ranked lengths differ: %d vs %d", len(a), len(b))
		}
		for j := range a {
			if a[j].Inst.Key() != b[j].Inst.Key() || a[j].Est != b[j].Est {
				t.Fatalf("entry %d differs: %v vs %v", j, a[j], b[j])
			}
		}
	}
	// Imports are cache hits, not recomputation.
	if db2.HitRate() == 0 {
		t.Fatal("imported entries should serve as hits")
	}
}

func TestPerfDBImportValidation(t *testing.T) {
	reg := NewRegistry(testCtx())
	db := NewPerfDB(reg)
	if err := db.Import([]byte("{")); err == nil {
		t.Fatal("malformed JSON must fail")
	}
	if err := db.Import([]byte(`{"arch":"sm_80","entries":[]}`)); err == nil {
		t.Fatal("arch mismatch must fail")
	}
	if err := db.Import([]byte(`{"arch":"gfx908","entries":[{"problem":"p","solutions":[{"solution":"Nope","binding":"","time_ns":5}]}]}`)); err == nil {
		t.Fatal("unknown solution must fail")
	}
	if err := db.Import([]byte(`{"arch":"gfx908","entries":[{"problem":"p","solutions":[{"solution":"ConvDirectNaiveFwd","binding":"","time_ns":0}]}]}`)); err == nil {
		t.Fatal("non-positive time must fail")
	}
}

func TestPerfDBExportDeterministic(t *testing.T) {
	reg := NewRegistry(testCtx())
	db := NewPerfDB(reg)
	p1 := conv3x3(64, 64, 56)
	p2 := conv3x3(128, 128, 28)
	db.Find(&p2)
	db.Find(&p1)
	a, err := db.Export()
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Export()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("export not deterministic")
	}
}
