package miopen

import (
	"testing"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/hip"
	"pask/internal/sim"
)

// newLibRuntime builds a library over a store materialized for the given
// problems.
func newLibRuntime(t *testing.T, problems []*Problem) (*sim.Env, *Library) {
	t.Helper()
	reg := NewRegistry(testCtx())
	store := codeobj.NewStore()
	for _, p := range problems {
		for _, r := range reg.Find(p) {
			if err := MaterializeObjects(store, reg.Ctx().Dev.Arch, []Instance{r.Inst}); err != nil {
				t.Fatal(err)
			}
		}
	}
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)
	return env, NewLibrary(reg, rt)
}

func TestRunSolutionLazyLoadsAndExecutes(t *testing.T) {
	p := conv3x3(64, 64, 28)
	env, lib := newLibRuntime(t, []*Problem{&p})
	best, err := lib.Reg.FindBest(&p)
	if err != nil {
		t.Fatal(err)
	}
	var coldDur, warmDur time.Duration
	env.Spawn("host", func(proc *sim.Proc) {
		defer lib.RT.GPU().CloseAll()
		t0 := proc.Now()
		sig, err := lib.RunSolution(proc, lib.RT.GPU().DefaultStream(), best.Inst, &p)
		if err != nil {
			t.Error(err)
			return
		}
		sig.Wait(proc)
		coldDur = proc.Now() - t0
		t1 := proc.Now()
		sig, err = lib.RunSolution(proc, lib.RT.GPU().DefaultStream(), best.Inst, &p)
		if err != nil {
			t.Error(err)
			return
		}
		sig.Wait(proc)
		warmDur = proc.Now() - t1
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if lib.RT.Stats().ModuleLoads != 1 {
		t.Fatalf("loads = %d, want 1 (lazy, then cached)", lib.RT.Stats().ModuleLoads)
	}
	if warmDur >= coldDur {
		t.Fatalf("warm run (%v) not faster than cold (%v)", warmDur, coldDur)
	}
	// The warm run is close to the pure estimate.
	est := EstimateTime(lib.Reg.Ctx().Dev, best.Inst.Sol, &p)
	if warmDur < est {
		t.Fatalf("warm run (%v) faster than the physics estimate (%v)", warmDur, est)
	}
}

func TestCheckApplicableChargesAndCounts(t *testing.T) {
	p := conv3x3(64, 64, 28)
	env, lib := newLibRuntime(t, []*Problem{&p})
	rxs, _ := lib.Reg.ByID("ConvBinWinogradRxSFwd")
	inst := Bind(rxs, &p)
	env.Spawn("host", func(proc *sim.Proc) {
		defer lib.RT.GPU().CloseAll()
		start := proc.Now()
		if !lib.CheckApplicable(proc, inst, &p) {
			t.Error("RxS should be applicable")
		}
		if got := proc.Now() - start; got != lib.RT.Host().ApplicabilityCheck {
			t.Errorf("check cost %v, want %v", got, lib.RT.Host().ApplicabilityCheck)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if lib.ApplicabilityChecks() != 1 {
		t.Fatalf("checks = %d", lib.ApplicabilityChecks())
	}
}

func TestRunSolutionMissingObjectFails(t *testing.T) {
	p := conv3x3(64, 64, 28)
	reg := NewRegistry(testCtx())
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), codeobj.NewStore()) // empty store
	lib := NewLibrary(reg, rt)
	best, err := reg.FindBest(&p)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("host", func(proc *sim.Proc) {
		defer gpu.CloseAll()
		if _, err := lib.RunSolution(proc, gpu.DefaultStream(), best.Inst, &p); err == nil {
			t.Error("expected missing-object error")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadResidentsRegistersAllResidents(t *testing.T) {
	reg := NewRegistry(testCtx())
	store := codeobj.NewStore()
	if err := MaterializeObjects(store, reg.Ctx().Dev.Arch, reg.Residents()); err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)
	lib := NewLibrary(reg, rt)
	env.Spawn("host", func(proc *sim.Proc) {
		defer gpu.CloseAll()
		if err := lib.LoadResidents(proc); err != nil {
			t.Error(err)
			return
		}
		for _, inst := range reg.Residents() {
			if !lib.IsLoaded(inst) {
				t.Errorf("resident %s not loaded", inst.Key())
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().ModuleLoads != 0 {
		t.Fatalf("residents must not count as loads, got %d", rt.Stats().ModuleLoads)
	}
}

func TestResidentsContainGenericsAndBinKernels(t *testing.T) {
	reg := NewRegistry(testCtx())
	res := reg.Residents()
	byKey := map[string]bool{}
	for _, inst := range res {
		byKey[inst.Key()] = true
	}
	for _, want := range []string{
		"ConvGemmNaiveFwd.pko",
		"ConvDirectNaiveFwd.pko",
		"ConvWinogradNaiveFwd.pko",
		"PoolingNaiveFwd.pko",
		"ActivationNaiveFwd.pko",
		"ConvBinWinogradRxSFwd_f32.pko",
		"ConvImplicitGemmV4R1Fwd_f16.pko",
	} {
		if !byKey[want] {
			t.Errorf("missing resident %s", want)
		}
	}
	// Per-problem specialists are never resident.
	for k := range byKey {
		if k == "ConvBinWinogradFwdFixed.pko" {
			t.Error("per-problem specialist must not be resident")
		}
	}
}
