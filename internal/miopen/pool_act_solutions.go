package miopen

import (
	"fmt"

	"pask/internal/kernels"
	"pask/internal/tensor"
)

// PoolSolutions returns the pooling ladder: a fully generic kernel and a
// tiled specialist for the small windows CNN backbones use.
func PoolSolutions() []Solution {
	anyLayout := func(p *Problem) (tensor.Layout, bool) { return p.Layout, true }
	nchw := func(p *Problem) (tensor.Layout, bool) { return tensor.NCHW, false }

	naive := &family{
		id: "PoolingNaiveFwd", pattern: PatternPooling, primitive: Pooling, spec: 1,
		applicable:   func(ctx *Ctx, p *Problem) bool { return true },
		eff:          func(p *Problem) float64 { return 0.30 },
		calls:        func(f *family, p *Problem) []KernelCall { return singleCall(f, p, 1) },
		layout:       anyLayout,
		run:          runPool,
		mainCodeSize: 130 << 10,
	}

	tiled := &family{
		id: "PoolingTiled2DFwd", pattern: PatternPooling, primitive: Pooling, spec: 2,
		applicable: func(ctx *Ctx, p *Problem) bool {
			return p.Pool.WinH <= 3 && p.Pool.WinW <= 3 &&
				p.Pool.StrideH <= 2 && p.Pool.StrideW <= 2 &&
				p.In.H > 1 && p.In.W > 1
		},
		binding: func(p *Problem) string {
			// Compiled per problem configuration, like MIOpen's binary cache.
			return fmt.Sprintf("w%dx%d_c%dh%d_%s", p.Pool.WinH, p.Pool.WinW, p.In.C, p.In.H, dt(p))
		},
		eff:          func(p *Problem) float64 { return 0.55 },
		calls:        func(f *family, p *Problem) []KernelCall { return singleCall(f, p, 1) },
		layout:       nchw,
		run:          runPool,
		mainCodeSize: 260 << 10,
	}

	return []Solution{naive, tiled}
}

// ActSolutions returns the activation ladder: a generic any-function kernel
// and a vectorized specialist for ReLU-family activations.
func ActSolutions() []Solution {
	anyLayout := func(p *Problem) (tensor.Layout, bool) { return p.Layout, true }

	naive := &family{
		id: "ActivationNaiveFwd", pattern: PatternActivation, primitive: Activation, spec: 1,
		applicable: func(ctx *Ctx, p *Problem) bool {
			// The reference kernel computes in floating point; int8 ReLU
			// variants ship only as packed per-width specializations.
			if p.DType == tensor.I8 && (p.Act == kernels.ReLU || p.Act == kernels.LeakyReLU) {
				return false
			}
			return true
		},
		eff:          func(p *Problem) float64 { return 0.50 },
		calls:        func(f *family, p *Problem) []KernelCall { return singleCall(f, p, 1) },
		layout:       anyLayout,
		run:          runAct,
		mainCodeSize: 90 << 10,
	}

	packed := &family{
		id: "ActivationPackedFwd", pattern: PatternActivation, primitive: Activation, spec: 2,
		applicable: func(ctx *Ctx, p *Problem) bool {
			if p.Act != kernels.ReLU && p.Act != kernels.LeakyReLU {
				return false
			}
			return p.In.Elems()%4 == 0 // packed vectorization, all element types
		},
		binding:      func(p *Problem) string { return fmt.Sprintf("c%d_%s", pow2Bucket(p.In.C), dt(p)) },
		eff:          func(p *Problem) float64 { return 0.85 },
		calls:        func(f *family, p *Problem) []KernelCall { return singleCall(f, p, 1) },
		layout:       anyLayout,
		run:          runAct,
		mainCodeSize: 200 << 10,
	}

	return []Solution{naive, packed}
}

// runPool executes pooling functionally; w and bias are unused.
func runPool(p *Problem, in, _, _, out *tensor.Tensor) error {
	return kernels.Pool2D(in, out, p.Pool, p.PoolMode)
}

// runAct executes the activation functionally; w and bias are unused.
func runAct(p *Problem, in, _, _, out *tensor.Tensor) error {
	return kernels.Activation(in, out, p.Act, p.ActAlpha)
}
