package miopen

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"pask/internal/codeobj"
)

// Ranked is one applicable instance with its predicted GPU time.
type Ranked struct {
	Inst Instance
	Est  time.Duration
}

// Registry holds every solution the library ships and answers Find queries.
type Registry struct {
	ctx  *Ctx
	sols []Solution
	byID map[string]Solution
}

// NewRegistry builds the full library (conv + pooling + activation ladders)
// for the given context.
func NewRegistry(ctx *Ctx) *Registry {
	r := &Registry{ctx: ctx, byID: make(map[string]Solution)}
	for _, set := range [][]Solution{ConvSolutions(), PoolSolutions(), ActSolutions()} {
		for _, s := range set {
			if _, dup := r.byID[s.ID()]; dup {
				panic("miopen: duplicate solution id " + s.ID())
			}
			r.sols = append(r.sols, s)
			r.byID[s.ID()] = s
		}
	}
	return r
}

// Ctx returns the registry's validation context.
func (r *Registry) Ctx() *Ctx { return r.ctx }

// Solutions returns all registered solutions.
func (r *Registry) Solutions() []Solution { return r.sols }

// ByID looks up a solution by its stable name.
func (r *Registry) ByID(id string) (Solution, bool) {
	s, ok := r.byID[id]
	return s, ok
}

// Find returns every applicable instance for p ranked fastest-first — the
// library's find step (paper Fig 3). Ties break toward higher specificity,
// then lexical ID, keeping compilation deterministic.
func (r *Registry) Find(p *Problem) []Ranked {
	var out []Ranked
	for _, s := range r.sols {
		if !s.IsApplicable(r.ctx, p) {
			continue
		}
		out = append(out, Ranked{Inst: Bind(s, p), Est: EstimateTime(r.ctx.Dev, s, p)})
	}
	slices.SortFunc(out, func(a, b Ranked) int {
		if a.Est != b.Est {
			return cmp.Compare(a.Est, b.Est)
		}
		if sa, sb := a.Inst.Sol.Specificity(), b.Inst.Sol.Specificity(); sa != sb {
			return cmp.Compare(sb, sa)
		}
		return cmp.Compare(a.Inst.Key(), b.Inst.Key())
	})
	return out
}

// FindBest returns the fastest applicable instance for p.
func (r *Registry) FindBest(p *Problem) (Ranked, error) {
	ranked := r.Find(p)
	if len(ranked) == 0 {
		return Ranked{}, fmt.Errorf("miopen: no applicable solution for %s", p.Key())
	}
	return ranked[0], nil
}

// PerfDB memoizes Find results per problem key — the integrated performance
// database the serving framework queries during lowering (paper §II-A).
type PerfDB struct {
	reg    *Registry
	m      map[string][]Ranked
	hits   int
	misses int
}

// NewPerfDB returns an empty database over the registry.
func NewPerfDB(reg *Registry) *PerfDB {
	return &PerfDB{reg: reg, m: make(map[string][]Ranked)}
}

// Find returns the ranked applicable instances for p, computing and caching
// them on first use.
func (db *PerfDB) Find(p *Problem) []Ranked {
	key := p.Key()
	if r, ok := db.m[key]; ok {
		db.hits++
		return r
	}
	db.misses++
	r := db.reg.Find(p)
	db.m[key] = r
	return r
}

// Entries returns the number of memoized problems.
func (db *PerfDB) Entries() int { return len(db.m) }

// HitRate returns the fraction of Find calls served from the cache.
func (db *PerfDB) HitRate() float64 {
	total := db.hits + db.misses
	if total == 0 {
		return 0
	}
	return float64(db.hits) / float64(total)
}

// Residents returns the instances whose kernels ship precompiled inside the
// library binary: the naive generic solutions (specificity 1) and the
// binary-shipped mid-tier solvers (the "Bin" kernels, one precompiled
// variant per supported element type). After the library is opened they are
// resident without any per-model load, which is what makes them the
// universal reuse fallback PASK's cache holds. Per-problem compiled
// specialists are never resident — they are what the cold start loads.
func (r *Registry) Residents() []Instance {
	var out []Instance
	for _, s := range r.sols {
		if s.Specificity() == 1 {
			out = append(out, Instance{Sol: s})
			continue
		}
		if f, ok := s.(*family); ok {
			for _, b := range f.residentBindings {
				out = append(out, Instance{Sol: s, Binding: b})
			}
		}
	}
	return out
}

// MaterializeObjects compiles (builds and stores) the code object of every
// instance that is not yet in the store — the offline preparation step that
// populates the on-disk kernel registry.
func MaterializeObjects(store *codeobj.Store, arch string, insts []Instance) error {
	for _, inst := range insts {
		path := inst.Path()
		if store.Has(path) {
			continue
		}
		if err := store.PutBuilt(path, arch, inst.Sol.ObjectSpec(inst.Binding)); err != nil {
			return fmt.Errorf("miopen: materialize %s: %w", path, err)
		}
	}
	return nil
}
