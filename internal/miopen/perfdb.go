package miopen

import (
	"encoding/json"
	"fmt"
	"slices"
	"time"
)

// The performance database is persisted alongside the library (the paper's
// "integrated database [52]" that records the anticipated performance of
// each solution on a problem), so a serving framework can ship tuned
// find-results instead of re-ranking at deploy time.

// perfDBFile is the serialized form of one database.
type perfDBFile struct {
	Arch    string         `json:"arch"`
	Entries []perfDBRecord `json:"entries"`
}

type perfDBRecord struct {
	Problem   string        `json:"problem"`
	Solutions []perfDBEntry `json:"solutions"`
}

type perfDBEntry struct {
	Solution string        `json:"solution"`
	Binding  string        `json:"binding"`
	Time     time.Duration `json:"time_ns"`
}

// Export serializes the memoized find-results, sorted by problem key for
// deterministic output.
func (db *PerfDB) Export() ([]byte, error) {
	file := perfDBFile{Arch: db.reg.ctx.Dev.Arch}
	keys := make([]string, 0, len(db.m))
	for k := range db.m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		rec := perfDBRecord{Problem: k}
		for _, r := range db.m[k] {
			rec.Solutions = append(rec.Solutions, perfDBEntry{
				Solution: r.Inst.Sol.ID(),
				Binding:  r.Inst.Binding,
				Time:     r.Est,
			})
		}
		file.Entries = append(file.Entries, rec)
	}
	return json.MarshalIndent(file, "", " ")
}

// Import merges serialized find-results into the database. Records for an
// unknown solution or a mismatched architecture are rejected.
func (db *PerfDB) Import(data []byte) error {
	var file perfDBFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("miopen: perfdb: %w", err)
	}
	if file.Arch != db.reg.ctx.Dev.Arch {
		return fmt.Errorf("miopen: perfdb for arch %q does not match device %q",
			file.Arch, db.reg.ctx.Dev.Arch)
	}
	for _, rec := range file.Entries {
		var ranked []Ranked
		for _, e := range rec.Solutions {
			sol, ok := db.reg.ByID(e.Solution)
			if !ok {
				return fmt.Errorf("miopen: perfdb references unknown solution %q", e.Solution)
			}
			if e.Time <= 0 {
				return fmt.Errorf("miopen: perfdb entry for %q has non-positive time", rec.Problem)
			}
			ranked = append(ranked, Ranked{Inst: Instance{Sol: sol, Binding: e.Binding}, Est: e.Time})
		}
		db.m[rec.Problem] = ranked
	}
	return nil
}
