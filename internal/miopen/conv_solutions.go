package miopen

import (
	"fmt"

	"pask/internal/codeobj"
	"pask/internal/kernels"
	"pask/internal/tensor"
)

// family is a declarative Solution implementation: constructors below fill
// in the constraint, efficiency, binding and kernel hooks for each library
// solution. Keeping solutions declarative makes the generality ladder of
// paper Fig 4 auditable in one place.
type family struct {
	id        string
	pattern   Pattern
	primitive Primitive
	spec      int

	applicable func(ctx *Ctx, p *Problem) bool
	binding    func(p *Problem) string
	workspace  func(p *Problem) int64
	eff        func(p *Problem) float64
	calls      func(f *family, p *Problem) []KernelCall
	layout     func(p *Problem) (tensor.Layout, bool)
	objSpec    func(f *family, binding string) []codeobj.KernelSpec
	run        func(p *Problem, in, w, bias, out *tensor.Tensor) error

	// code-object sizing
	mainCodeSize   int
	helperSyms     int // extra kernels bundled in the object
	helperCodeSize int

	// residentBindings lists bindings whose kernels ship precompiled inside
	// the library binary (the "Bin" solvers and naive fallbacks): they are
	// mapped when the library is opened, never loaded per model.
	residentBindings []string
}

func (f *family) ID() string           { return f.id }
func (f *family) Pattern() Pattern     { return f.pattern }
func (f *family) Primitive() Primitive { return f.primitive }
func (f *family) Specificity() int     { return f.spec }

func (f *family) IsApplicable(ctx *Ctx, p *Problem) bool {
	if ctx.Disabled[f.id] {
		return false
	}
	if p.Primitive != f.primitive || !p.Valid() {
		return false
	}
	if f.workspace != nil && f.workspace(p) > ctx.WorkspaceLimit {
		return false
	}
	return f.applicable(ctx, p)
}

func (f *family) BindingKey(p *Problem) string {
	if f.binding == nil {
		return ""
	}
	return f.binding(p)
}

func (f *family) WorkspaceSize(p *Problem) int64 {
	if f.workspace == nil {
		return 0
	}
	return f.workspace(p)
}

func (f *family) Efficiency(p *Problem) float64 {
	return clampEff(f.eff(p) * occupancy(p.Parallelism()))
}

func (f *family) KernelCalls(p *Problem) []KernelCall {
	return f.calls(f, p)
}

func (f *family) PreferredLayout(p *Problem) (tensor.Layout, bool) {
	if f.layout == nil {
		return tensor.NCHW, true
	}
	return f.layout(p)
}

func (f *family) ObjectSpec(binding string) []codeobj.KernelSpec {
	if f.objSpec != nil {
		return f.objSpec(f, binding)
	}
	return defaultObjSpec(f, binding)
}

func (f *family) RunFunctional(p *Problem, in, w, bias, out *tensor.Tensor) error {
	return f.run(p, in, w, bias, out)
}

// occupancy models how well a kernel's parallel work fills the device:
// deep layers at batch 1 expose few work items and leave most compute units
// idle, which is why GPU execution is such a small share of cold start
// (paper Fig 1b) and why cold-start speedups shrink as batches grow and
// execution time catches up (paper Table II).
func occupancy(workItems int64) float64 {
	o := 0.035 + float64(workItems)/400000
	if o > 1 {
		return 1
	}
	return o
}

// mainSymbol returns the primary kernel symbol for a binding of f.
func mainSymbol(f *family, binding string) string {
	if binding == "" {
		return f.id + "_main"
	}
	return f.id + "_" + binding + "_main"
}

// defaultObjSpec builds the object layout: one main kernel plus bundled
// helper kernels (tensor repack, epilogue reduction — paper footnote 2).
func defaultObjSpec(f *family, binding string) []codeobj.KernelSpec {
	specs := []codeobj.KernelSpec{{
		Name:     mainSymbol(f, binding),
		Pattern:  string(f.pattern),
		CodeSize: f.mainCodeSize,
		Meta:     map[string]string{"solution": f.id, "binding": binding},
	}}
	for i := 0; i < f.helperSyms; i++ {
		specs = append(specs, codeobj.KernelSpec{
			Name:     fmt.Sprintf("%s_helper%d", mainSymbol(f, binding), i),
			Pattern:  string(f.pattern),
			CodeSize: f.helperCodeSize,
		})
	}
	return specs
}

// singleCall issues the main kernel with the problem's workload scaled by
// algoScale at the family's efficiency.
func singleCall(f *family, p *Problem, algoScale float64) []KernelCall {
	w := p.Workload()
	if algoScale != 1 {
		w = kernels.Workload{Flops: int64(float64(w.Flops) * algoScale), Bytes: w.Bytes}
	}
	return []KernelCall{{
		Symbol: mainSymbol(f, p.bindingOf(f)),
		Work:   w,
		Eff:    f.Efficiency(p),
	}}
}

// bindingOf is a small helper so call-sites can ask the problem for its
// binding under a family.
func (p *Problem) bindingOf(f *family) string { return f.BindingKey(p) }

// pow2Bucket floors v to a power of two clamped into [16, 512] — the tile
// bucketing specialized kernels template on.
func pow2Bucket(v int) int {
	b := 16
	for b*2 <= v && b < 512 {
		b *= 2
	}
	return b
}

// dt returns the short dtype tag used in bindings.
func dt(p *Problem) string { return p.DType.String() }

// Functional runners shared by conv families.

func runConvDirect(p *Problem, in, w, bias, out *tensor.Tensor) error {
	return kernels.ConvDirect(in, w, bias, out, p.Conv, p.Groups)
}

func runConvIm2col(p *Problem, in, w, bias, out *tensor.Tensor) error {
	return kernels.ConvIm2col(in, w, bias, out, p.Conv, p.Groups)
}

func runConvWinograd(p *Problem, in, w, bias, out *tensor.Tensor) error {
	if p.R == 3 && p.S == 3 && p.Conv.StrideH == 1 && p.Conv.StrideW == 1 &&
		p.Conv.DilH == 1 && p.Conv.DilW == 1 && p.Groups == 1 {
		return kernels.ConvWinograd(in, w, bias, out, p.Conv)
	}
	// Non-3x3 Winograd tiles fall back to the direct reference; the
	// numerical function is identical either way.
	return kernels.ConvDirect(in, w, bias, out, p.Conv, p.Groups)
}

// im2colWorkspace is the column-buffer size of GEMM-pattern solutions.
func im2colWorkspace(p *Problem) int64 {
	oh, ow := p.Conv.OutSize(p.In.H, p.In.W, p.R, p.S)
	cols := int64(p.In.C/p.Groups) * int64(p.R) * int64(p.S) * int64(oh) * int64(ow)
	return cols * int64(p.DType.Size())
}

// winogradScale returns the multiply-reduction factor of the Winograd
// algorithm for the problem's filter size.
func winogradScale(p *Problem) float64 {
	if p.R == 3 && p.S == 3 {
		return kernels.WinogradFlopScale
	}
	return 0.6 // larger tiles save less after transform overhead
}

// isPlainConv reports the common fast-path constraints: dense (groups=1),
// no dilation.
func isPlainConv(p *Problem) bool {
	return p.Groups == 1 && p.Conv.DilH == 1 && p.Conv.DilW == 1
}

func stride1(p *Problem) bool { return p.Conv.StrideH == 1 && p.Conv.StrideW == 1 }

// ConvSolutions returns the library's convolution ladder, from fully generic
// naive solutions to narrowly bound specialists (paper Fig 4).
func ConvSolutions() []Solution {
	anyLayout := func(p *Problem) (tensor.Layout, bool) { return p.Layout, true }
	nchw := func(p *Problem) (tensor.Layout, bool) { return tensor.NCHW, false }
	nhwc := func(p *Problem) (tensor.Layout, bool) { return tensor.NHWC, false }

	gemmNaive := &family{
		id: "ConvGemmNaiveFwd", pattern: PatternGEMM, primitive: Convolution, spec: 1,
		applicable: func(ctx *Ctx, p *Problem) bool { return true },
		workspace:  im2colWorkspace,
		eff: func(p *Problem) float64 {
			if p.Groups > 1 {
				return 0.09
			}
			return 0.14
		},
		calls:          func(f *family, p *Problem) []KernelCall { return gemmConvCalls(f, p) },
		layout:         anyLayout,
		run:            runConvIm2col,
		mainCodeSize:   300 << 10,
		helperSyms:     2, // im2col + epilogue, all dtypes in one object
		helperCodeSize: 60 << 10,
	}

	directNaive := &family{
		id: "ConvDirectNaiveFwd", pattern: PatternDirect, primitive: Convolution, spec: 1,
		applicable:   func(ctx *Ctx, p *Problem) bool { return true },
		eff:          func(p *Problem) float64 { return 0.10 },
		calls:        func(f *family, p *Problem) []KernelCall { return singleCall(f, p, 1) },
		layout:       anyLayout,
		run:          runConvDirect,
		mainCodeSize: 220 << 10,
	}

	winogradNaive := &family{
		id: "ConvWinogradNaiveFwd", pattern: PatternWinograd, primitive: Convolution, spec: 1,
		applicable: func(ctx *Ctx, p *Problem) bool {
			return isPlainConv(p) && stride1(p) && p.R == p.S && p.R <= 7 && p.R%2 == 1 && p.R >= 3 &&
				p.DType != tensor.I8 // reference kernels compute in floating point
		},
		eff:            func(p *Problem) float64 { return 0.16 },
		calls:          func(f *family, p *Problem) []KernelCall { return winogradCalls(f, p) },
		layout:         anyLayout,
		run:            runConvWinograd,
		mainCodeSize:   340 << 10,
		helperSyms:     2, // input/filter transform kernels
		helperCodeSize: 70 << 10,
	}

	winogradRxS := &family{
		id: "ConvBinWinogradRxSFwd", pattern: PatternWinograd, primitive: Convolution, spec: 2,
		applicable: func(ctx *Ctx, p *Problem) bool {
			return isPlainConv(p) && stride1(p) &&
				p.R <= 7 && p.S <= 7 && p.In.C >= 4 && p.K >= 8 &&
				p.In.H > 1 && p.In.W > 1 &&
				(p.DType == tensor.F32 || p.DType == tensor.F16)
		},
		binding:          func(p *Problem) string { return dt(p) },
		residentBindings: []string{"f32", "f16"},
		eff:              func(p *Problem) float64 { return 0.22 },
		calls:            func(f *family, p *Problem) []KernelCall { return winogradCalls(f, p) },
		layout:           nchw,
		run:              runConvWinograd,
		mainCodeSize:     420 << 10,
		helperSyms:       1,
		helperCodeSize:   90 << 10,
	}

	winogradFixed := &family{
		id: "ConvBinWinogradFwdFixed", pattern: PatternWinograd, primitive: Convolution, spec: 4,
		applicable: func(ctx *Ctx, p *Problem) bool {
			return isPlainConv(p) && stride1(p) &&
				p.R == p.S && (p.R == 3 || p.R == 5) &&
				p.In.C >= 16 && p.K >= 16 &&
				p.In.H*p.In.W <= 28*28 && // LDS tiling bound
				(p.DType == tensor.F32 || p.DType == tensor.F16)
		},
		binding: func(p *Problem) string {
			// Compiled per problem configuration, like MIOpen's binary cache.
			return fmt.Sprintf("r%ds%d_c%dk%dh%d_%s", p.R, p.S, p.In.C, p.K, p.In.H, dt(p))
		},
		eff: func(p *Problem) float64 {
			if p.R == 3 {
				return 0.40
			}
			return 0.20 // F(2,5) transform overhead: the RxS kernel wins
		},
		calls:          func(f *family, p *Problem) []KernelCall { return winogradCalls(f, p) },
		layout:         nchw,
		run:            runConvWinograd,
		mainCodeSize:   650 << 10,
		helperSyms:     1,
		helperCodeSize: 80 << 10,
	}

	gemm1x1 := &family{
		id: "ConvGemmFwd1x1", pattern: PatternGEMM, primitive: Convolution, spec: 3,
		applicable: func(ctx *Ctx, p *Problem) bool {
			return isPlainConv(p) && stride1(p) && p.R == 1 && p.S == 1 &&
				p.Conv.PadH == 0 && p.Conv.PadW == 0 &&
				p.In.C >= 8 && p.K >= 8 &&
				p.In.H*p.In.W <= 28*28 // tuned tiling holds only for small maps
		},
		binding: func(p *Problem) string {
			// Compiled per problem configuration, like MIOpen's binary cache.
			return fmt.Sprintf("c%dk%d_%s", p.In.C, p.K, dt(p))
		},
		eff:          func(p *Problem) float64 { return 0.45 },
		calls:        func(f *family, p *Problem) []KernelCall { return singleCall(f, p, 1) },
		layout:       nhwc,
		run:          runConvIm2col,
		mainCodeSize: 420 << 10,
	}

	gemmStrided := &family{
		id: "ConvGemmStridedBatchedFwd", pattern: PatternGEMM, primitive: Convolution, spec: 2,
		applicable: func(ctx *Ctx, p *Problem) bool {
			return isPlainConv(p) && p.Conv.StrideH <= 3 && p.Conv.StrideW <= 3 &&
				p.In.H > 1 && p.In.W > 1
		},
		binding:          func(p *Problem) string { return dt(p) },
		residentBindings: []string{"f32", "f16", "i8"},
		workspace:        im2colWorkspace,
		eff:              func(p *Problem) float64 { return 0.17 },
		calls:            func(f *family, p *Problem) []KernelCall { return gemmConvCalls(f, p) },
		layout:           anyLayout,
		run:              runConvIm2col,
		mainCodeSize:     360 << 10,
		helperSyms:       1,
		helperCodeSize:   70 << 10,
	}

	directTiled := &family{
		id: "ConvDirectTiledFwd", pattern: PatternDirect, primitive: Convolution, spec: 2,
		applicable: func(ctx *Ctx, p *Problem) bool {
			return p.Groups == 1 && p.Conv.DilH == 1 && p.Conv.DilW == 1 &&
				p.In.C <= 16 && p.R <= 11 && p.S <= 11 &&
				p.Conv.StrideH <= 4 && p.Conv.StrideW <= 4
		},
		binding:          func(p *Problem) string { return dt(p) },
		residentBindings: []string{"f32", "f16"},
		eff:              func(p *Problem) float64 { return 0.30 },
		calls:            func(f *family, p *Problem) []KernelCall { return singleCall(f, p, 1) },
		layout:           nchw,
		run:              runConvDirect,
		mainCodeSize:     450 << 10,
	}

	directDepthwise := &family{
		id: "ConvDirectDepthwiseFwd", pattern: PatternDirect, primitive: Convolution, spec: 3,
		applicable: func(ctx *Ctx, p *Problem) bool {
			return p.Depthwise() && p.R == p.S && (p.R == 3 || p.R == 5 || p.R == 7) &&
				p.Conv.StrideH <= 2 && p.Conv.StrideW <= 2 &&
				p.Conv.DilH == 1 && p.Conv.DilW == 1
		},
		binding: func(p *Problem) string {
			return fmt.Sprintf("r%d_c%dh%d_%s", p.R, p.In.C, p.In.H, dt(p))
		},
		eff:          func(p *Problem) float64 { return 0.35 },
		calls:        func(f *family, p *Problem) []KernelCall { return singleCall(f, p, 1) },
		layout:       nchw,
		run:          runConvDirect,
		mainCodeSize: 430 << 10,
	}

	igemmV4 := &family{
		id: "ConvImplicitGemmV4R1Fwd", pattern: PatternImplicitGEMM, primitive: Convolution, spec: 2,
		applicable: func(ctx *Ctx, p *Problem) bool {
			return isPlainConv(p) && p.Conv.StrideH <= 2 && p.Conv.StrideW <= 2 &&
				p.In.C%8 == 0 && p.K%8 == 0 &&
				p.In.H > 1 && p.In.W > 1
		},
		binding:          func(p *Problem) string { return dt(p) },
		residentBindings: []string{"f32", "f16"},
		eff:              func(p *Problem) float64 { return 0.32 },
		calls:            func(f *family, p *Problem) []KernelCall { return singleCall(f, p, 1) },
		layout:           anyLayout,
		run:              runConvDirect,
		mainCodeSize:     560 << 10,
		helperSyms:       1,
		helperCodeSize:   110 << 10,
	}

	igemmXdlops := &family{
		id: "ConvImplicitGemmXdlopsFwd", pattern: PatternImplicitGEMM, primitive: Convolution, spec: 4,
		applicable: func(ctx *Ctx, p *Problem) bool {
			// XDLOPS matrix pipes exist on CDNA (gfx9) only: the hardware
			// capability validation of paper §II-B.
			arch := ctx.Dev.Arch
			hasMatrixPipes := (len(arch) >= 4 && arch[:4] == "gfx9") ||
				(len(arch) >= 3 && arch[:3] == "sm_") // tensor cores on NVIDIA
			if !hasMatrixPipes {
				return false
			}
			return isPlainConv(p) && p.R == 1 && p.S == 1 &&
				p.Conv.StrideH <= 2 && p.Conv.StrideW <= 2 &&
				p.In.C%16 == 0 && p.K%16 == 0 &&
				p.In.H*p.In.W >= 4 && p.In.H*p.In.W <= 28*28 && // spatial igemm, not plain GEMM
				(p.DType == tensor.F32 || p.DType == tensor.F16)
		},
		binding: func(p *Problem) string {
			// Compiled per problem configuration, like MIOpen's binary cache.
			return fmt.Sprintf("c%dk%dh%dst%d_%s", p.In.C, p.K, p.In.H, p.Conv.StrideH, dt(p))
		},
		eff:            func(p *Problem) float64 { return 0.55 },
		calls:          func(f *family, p *Problem) []KernelCall { return singleCall(f, p, 1) },
		layout:         nhwc,
		run:            runConvDirect,
		mainCodeSize:   700 << 10,
		helperSyms:     1,
		helperCodeSize: 120 << 10,
	}

	return []Solution{
		gemmNaive, directNaive, winogradNaive,
		winogradRxS, winogradFixed,
		gemm1x1, gemmStrided,
		directTiled, directDepthwise,
		igemmV4, igemmXdlops,
	}
}

// winogradCalls issues filter/input transform kernels plus the batched GEMM
// main kernel, with the Winograd multiply reduction applied.
func winogradCalls(f *family, p *Problem) []KernelCall {
	eff := f.Efficiency(p)
	main := singleCall(f, p, winogradScale(p))[0]
	xform := kernels.TransformWorkload(p.In, p.DType)
	return []KernelCall{
		{Symbol: mainSymbol(f, p.bindingOf(f)) + "_helper0", Work: xform, Eff: clampEff(eff * 1.5)},
		main,
	}
}

// gemmConvCalls issues im2col lowering plus the GEMM main kernel.
func gemmConvCalls(f *family, p *Problem) []KernelCall {
	eff := f.Efficiency(p)
	im2col := kernels.Workload{
		Flops: 0,
		Bytes: p.In.Bytes(p.DType) + f.WorkspaceSize(p),
	}
	main := singleCall(f, p, 1)[0]
	return []KernelCall{
		{Symbol: mainSymbol(f, p.bindingOf(f)) + "_helper0", Work: im2col, Eff: clampEff(eff * 1.5)},
		main,
	}
}
