// Package miopen reimplements the find-and-run interface of a DL primitive
// library (MIOpen/cuDNN style) on top of the simulated HIP runtime: problems
// describe one layer's computation, solutions implement it with a specific
// algorithm *pattern* at a specific *specialization* level, and the library
// selects the fastest applicable solution per problem (paper §II-B, Fig 4).
//
// The specialization ladder is the substrate PASK exploits: highly
// specialized solutions are fastest but bind to narrow problem classes (and
// each binding is its own code object), while generic solutions cover broad
// classes from a single already-loadable object.
//
// Paper anchor: §II-B find-and-run primitive library (Fig 4) and the specialization ladder §III-B exploits.
package miopen

import (
	"fmt"

	"pask/internal/kernels"
	"pask/internal/tensor"
)

// Primitive identifies the layer types the library accelerates.
type Primitive uint8

const (
	Convolution Primitive = iota
	Pooling
	Activation
)

var primitiveNames = [...]string{"conv", "pool", "act"}

func (pr Primitive) String() string {
	if int(pr) < len(primitiveNames) {
		return primitiveNames[pr]
	}
	return fmt.Sprintf("primitive(%d)", uint8(pr))
}

// Problem is the full descriptor the framework hands to the library for one
// layer: geometry, parameters, element type and the current data layout.
type Problem struct {
	Primitive Primitive

	In     tensor.Shape
	DType  tensor.DType
	Layout tensor.Layout

	// Convolution fields.
	K, R, S int
	Conv    kernels.Conv2DParams
	Groups  int

	// Pooling fields.
	Pool     kernels.Pool2DParams
	PoolMode kernels.PoolMode

	// Activation fields.
	Act      kernels.ActKind
	ActAlpha float32
}

// NewConvProblem builds a convolution problem descriptor.
func NewConvProblem(in tensor.Shape, k, r, s int, conv kernels.Conv2DParams, groups int, dt tensor.DType, layout tensor.Layout) Problem {
	return Problem{
		Primitive: Convolution,
		In:        in, DType: dt, Layout: layout,
		K: k, R: r, S: s, Conv: conv, Groups: groups,
	}
}

// NewPoolProblem builds a pooling problem descriptor.
func NewPoolProblem(in tensor.Shape, pool kernels.Pool2DParams, mode kernels.PoolMode, dt tensor.DType, layout tensor.Layout) Problem {
	return Problem{
		Primitive: Pooling,
		In:        in, DType: dt, Layout: layout,
		Pool: pool, PoolMode: mode,
	}
}

// NewActProblem builds an activation problem descriptor.
func NewActProblem(in tensor.Shape, act kernels.ActKind, alpha float32, dt tensor.DType, layout tensor.Layout) Problem {
	return Problem{
		Primitive: Activation,
		In:        in, DType: dt, Layout: layout,
		Act: act, ActAlpha: alpha,
	}
}

// Valid reports whether the descriptor is internally consistent.
func (p *Problem) Valid() bool {
	if !p.In.Valid() {
		return false
	}
	switch p.Primitive {
	case Convolution:
		if p.K <= 0 || p.R <= 0 || p.S <= 0 || p.Groups <= 0 || !p.Conv.Valid() {
			return false
		}
		if p.In.C%p.Groups != 0 || p.K%p.Groups != 0 {
			return false
		}
		oh, ow := p.Conv.OutSize(p.In.H, p.In.W, p.R, p.S)
		return oh > 0 && ow > 0
	case Pooling:
		if !p.Pool.Valid() {
			return false
		}
		oh, ow := p.Pool.OutSize(p.In.H, p.In.W)
		return oh > 0 && ow > 0
	case Activation:
		return true
	}
	return false
}

// OutShape returns the layer's output tensor shape.
func (p *Problem) OutShape() tensor.Shape {
	switch p.Primitive {
	case Convolution:
		return kernels.ConvOutShape(p.In, p.K, p.R, p.S, p.Conv)
	case Pooling:
		return kernels.PoolOutShape(p.In, p.Pool)
	default:
		return p.In
	}
}

// Key returns a canonical string identity for the problem, used by the
// performance database.
func (p *Problem) Key() string {
	switch p.Primitive {
	case Convolution:
		return fmt.Sprintf("conv-%v-k%d-r%ds%d-st%d.%d-pd%d.%d-dl%d.%d-g%d-%v-%v",
			p.In, p.K, p.R, p.S,
			p.Conv.StrideH, p.Conv.StrideW, p.Conv.PadH, p.Conv.PadW,
			p.Conv.DilH, p.Conv.DilW, p.Groups, p.DType, p.Layout)
	case Pooling:
		return fmt.Sprintf("pool-%v-%v-w%dx%d-st%d.%d-pd%d.%d-%v-%v",
			p.In, p.PoolMode, p.Pool.WinH, p.Pool.WinW,
			p.Pool.StrideH, p.Pool.StrideW, p.Pool.PadH, p.Pool.PadW, p.DType, p.Layout)
	case Activation:
		return fmt.Sprintf("act-%v-%v-a%.3f-%v-%v", p.In, p.Act, p.ActAlpha, p.DType, p.Layout)
	}
	return "invalid"
}

// Depthwise reports whether the convolution is depthwise (groups == C == K).
func (p *Problem) Depthwise() bool {
	return p.Primitive == Convolution && p.Groups > 1 && p.Groups == p.In.C && p.K == p.In.C
}

// Workload returns the direct-algorithm workload of the problem.
func (p *Problem) Workload() kernels.Workload {
	switch p.Primitive {
	case Convolution:
		return kernels.ConvWorkload(p.In, p.K, p.R, p.S, p.Conv, p.Groups, p.DType)
	case Pooling:
		return kernels.PoolWorkload(p.In, p.Pool, p.DType)
	case Activation:
		return kernels.ActWorkload(p.In, p.DType)
	}
	return kernels.Workload{}
}

// Parallelism returns the number of independent output work items the
// layer's kernels can spread across compute units — the occupancy driver.
func (p *Problem) Parallelism() int64 {
	out := p.OutShape()
	return int64(out.N) * int64(out.C) * int64(out.H) * int64(out.W)
}

// WeightShape returns the filter tensor shape for convolutions and the zero
// shape otherwise.
func (p *Problem) WeightShape() tensor.Shape {
	if p.Primitive != Convolution {
		return tensor.Shape{}
	}
	return tensor.Shape{N: p.K, C: p.In.C / p.Groups, H: p.R, W: p.S}
}

// WeightBytes returns the filter parameter bytes the executor copies to the
// device before running the layer.
func (p *Problem) WeightBytes() int64 {
	if p.Primitive != Convolution {
		return 0
	}
	ws := p.WeightShape()
	return ws.Bytes(p.DType)
}
