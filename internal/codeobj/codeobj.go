// Package codeobj implements PKO, the code-object container format of the
// simulated GPU stack — the stand-in for the ELF .hsaco/.cubin files whose
// loading dominates DNN cold start (paper Fig 1b). A PKO file carries one or
// more compiled kernels: a symbol table plus per-kernel pseudo-ISA payload.
//
// The loader really parses bytes (magic, header, symbols, CRC), so failure
// injection (truncation, corruption, missing symbols) exercises real code
// paths; the *time* a load takes is charged separately by the hip runtime
// from the sizes this package reports.
//
// Paper anchor: Fig 1b code-object loading; PKO is the stand-in for the ELF .hsaco/.cubin containers.
package codeobj

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"slices"
)

// Format constants.
const (
	Magic = "PKO1"
	// Version 2 added the per-kernel payload checksum byte that follows each
	// payload, letting the loader localize corruption to a kernel even when
	// the container CRC has been re-sealed.
	Version = 2
	// maxStringLen bounds length-prefixed strings to catch corrupt headers
	// before huge allocations.
	maxStringLen = 1 << 16
	// maxKernels bounds the kernel count for the same reason.
	maxKernels = 1 << 12
)

// ErrCorrupt is the umbrella sentinel for structural decode failures: bad
// magic, truncation and checksum mismatches all unwrap to it, so callers
// that only care about "this container is damaged" can match one error.
// ErrVersion deliberately does not unwrap to it — a well-formed object from
// a newer toolchain is not damage.
var ErrCorrupt = errors.New("codeobj: corrupt object")

// Errors returned by Parse. errors.Is(err, ErrCorrupt) matches the first,
// third and fourth.
var (
	ErrBadMagic  error = &corruptError{"codeobj: bad magic"}
	ErrVersion         = errors.New("codeobj: unsupported version")
	ErrTruncated error = &corruptError{"codeobj: truncated object"}
	ErrChecksum  error = &corruptError{"codeobj: checksum mismatch"}
)

// corruptError keeps the legacy sentinel texts while chaining every
// structural failure to ErrCorrupt.
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return e.msg }
func (e *corruptError) Unwrap() error { return ErrCorrupt }

// KernelSpec describes one kernel to embed when building an object.
type KernelSpec struct {
	Name     string            // global symbol name
	Pattern  string            // solution pattern tag (Winograd, GEMM, ...)
	CodeSize int               // pseudo-ISA payload size in bytes
	Meta     map[string]string // free-form attributes (dtype, tile, ...)
}

// Kernel is a parsed kernel entry.
type Kernel struct {
	Name     string
	Pattern  string
	CodeSize int
	Meta     map[string]string
}

// Object is a parsed code object.
type Object struct {
	Name    string
	Arch    string
	Kernels []Kernel
	symbols map[string]int // name -> index into Kernels
	size    int            // full container size in bytes
}

// Symbol returns the kernel with the given global name.
func (o *Object) Symbol(name string) (Kernel, bool) {
	i, ok := o.symbols[name]
	if !ok {
		return Kernel{}, false
	}
	return o.Kernels[i], true
}

// NumSymbols returns the number of kernels in the object.
func (o *Object) NumSymbols() int { return len(o.Kernels) }

// Size returns the container size in bytes (header + payload + trailer).
func (o *Object) Size() int { return o.size }

// CodeSize returns the summed pseudo-ISA payload size.
func (o *Object) CodeSize() int64 {
	var n int64
	for _, k := range o.Kernels {
		n += int64(k.CodeSize)
	}
	return n
}

func writeString(buf *bytes.Buffer, s string) {
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(s)))
	buf.Write(lenb[:])
	buf.WriteString(s)
}

// cursor walks a byte slice without copying: take aliases sections in place,
// so Parse allocates only for the strings and kernel entries it keeps. Every
// take validates the remaining length first — a truncated object yields
// ErrTruncated, never an out-of-range slice.
type cursor struct {
	data []byte
	off  int
}

func (c *cursor) rem() int { return len(c.data) - c.off }

// take returns the next n bytes, aliased into the underlying buffer.
func (c *cursor) take(n int) ([]byte, bool) {
	if n < 0 || c.rem() < n {
		return nil, false
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, true
}

func (c *cursor) u32() (uint32, bool) {
	b, ok := c.take(4)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b), true
}

// str decodes one length-prefixed string with a single allocation (the
// string copy itself — no intermediate byte slice).
func (c *cursor) str() (string, error) {
	n, ok := c.u32()
	if !ok {
		return "", ErrTruncated
	}
	if n > maxStringLen {
		return "", fmt.Errorf("codeobj: string length %d exceeds limit: %w", n, ErrTruncated)
	}
	b, ok := c.take(int(n))
	if !ok {
		return "", ErrTruncated
	}
	return string(b), nil
}

// xorChecksum folds the payload eight bytes at a time; XOR is associative,
// so the result equals the byte-at-a-time walk the builder performs.
func xorChecksum(b []byte) byte {
	var acc uint64
	for len(b) >= 8 {
		acc ^= binary.LittleEndian.Uint64(b)
		b = b[8:]
	}
	acc ^= acc >> 32
	acc ^= acc >> 16
	acc ^= acc >> 8
	ck := byte(acc)
	for _, x := range b {
		ck ^= x
	}
	return ck
}

// Build serializes a code object. Payload bytes are generated
// deterministically from each kernel's name, so two builds of the same spec
// are byte-identical.
func Build(name, arch string, kernels []KernelSpec) ([]byte, error) {
	if len(kernels) == 0 {
		return nil, errors.New("codeobj: object must contain at least one kernel")
	}
	if len(kernels) > maxKernels {
		return nil, fmt.Errorf("codeobj: %d kernels exceeds limit %d", len(kernels), maxKernels)
	}
	seen := make(map[string]bool, len(kernels))
	for _, k := range kernels {
		if k.Name == "" {
			return nil, errors.New("codeobj: kernel with empty name")
		}
		if k.CodeSize <= 0 {
			return nil, fmt.Errorf("codeobj: kernel %q has non-positive code size %d", k.Name, k.CodeSize)
		}
		if seen[k.Name] {
			return nil, fmt.Errorf("codeobj: duplicate kernel symbol %q", k.Name)
		}
		seen[k.Name] = true
	}

	var buf bytes.Buffer
	buf.WriteString(Magic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], Version)
	buf.Write(u16[:])
	writeString(&buf, name)
	writeString(&buf, arch)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(kernels)))
	buf.Write(u32[:])
	for _, k := range kernels {
		writeString(&buf, k.Name)
		writeString(&buf, k.Pattern)
		binary.LittleEndian.PutUint32(u32[:], uint32(k.CodeSize))
		buf.Write(u32[:])
		keys := make([]string, 0, len(k.Meta))
		for key := range k.Meta {
			keys = append(keys, key)
		}
		slices.Sort(keys)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(keys)))
		buf.Write(u32[:])
		for _, key := range keys {
			writeString(&buf, key)
			writeString(&buf, k.Meta[key])
		}
		start := buf.Len()
		writePayload(&buf, k.Name, k.CodeSize)
		buf.WriteByte(xorChecksum(buf.Bytes()[start:]))
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	binary.LittleEndian.PutUint32(u32[:], sum)
	buf.Write(u32[:])
	return buf.Bytes(), nil
}

// writePayload appends size bytes of deterministic pseudo-ISA derived from
// the kernel name.
func writePayload(buf *bytes.Buffer, name string, size int) {
	h := fnv.New64a()
	h.Write([]byte(name))
	state := h.Sum64()
	for i := 0; i < size; i++ {
		// xorshift64 keeps generation cheap and reproducible.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		buf.WriteByte(byte(state))
	}
}

// Parse validates and decodes a serialized code object. It never copies
// section bytes: payloads are checksum-walked through aliased slices, so
// the only allocations are the Object itself, its kernel table and the
// strings it retains. Every section length is validated against the bytes
// remaining before any slice is taken, so a truncated or size-corrupted
// object fails with an error unwrapping to ErrCorrupt rather than slicing
// out of range.
func Parse(data []byte) (*Object, error) {
	if len(data) < len(Magic)+2+4 {
		return nil, ErrTruncated
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrChecksum
	}
	c := &cursor{data: body, off: len(Magic)}
	ver, ok := c.take(2)
	if !ok {
		return nil, ErrTruncated
	}
	if binary.LittleEndian.Uint16(ver) != Version {
		return nil, ErrVersion
	}
	name, err := c.str()
	if err != nil {
		return nil, err
	}
	arch, err := c.str()
	if err != nil {
		return nil, err
	}
	nk, ok := c.u32()
	if !ok {
		return nil, ErrTruncated
	}
	if nk == 0 || nk > maxKernels {
		return nil, fmt.Errorf("codeobj: kernel count %d out of range: %w", nk, ErrTruncated)
	}
	// Each kernel entry occupies at least its fixed-width fields plus the
	// checksum byte; capping the table capacity by that floor keeps a corrupt
	// count field from driving a large allocation.
	maxFit := c.rem()/13 + 1
	tableCap := int(nk)
	if tableCap > maxFit {
		tableCap = maxFit
	}
	o := &Object{
		Name:    name,
		Arch:    arch,
		Kernels: make([]Kernel, 0, tableCap),
		symbols: make(map[string]int, tableCap),
		size:    len(data),
	}
	for i := 0; i < int(nk); i++ {
		var k Kernel
		if k.Name, err = c.str(); err != nil {
			return nil, err
		}
		if k.Pattern, err = c.str(); err != nil {
			return nil, err
		}
		size, ok := c.u32()
		if !ok {
			return nil, ErrTruncated
		}
		k.CodeSize = int(size)
		if k.CodeSize > c.rem() {
			// A corrupt size field must not alias past the buffer below.
			return nil, fmt.Errorf("codeobj: kernel %q code size %d exceeds remaining %d bytes: %w", k.Name, k.CodeSize, c.rem(), ErrTruncated)
		}
		nMeta, ok := c.u32()
		if !ok {
			return nil, ErrTruncated
		}
		if nMeta > 0 {
			if nMeta > maxStringLen {
				return nil, ErrTruncated
			}
			k.Meta = make(map[string]string, nMeta)
			for j := 0; j < int(nMeta); j++ {
				key, err := c.str()
				if err != nil {
					return nil, err
				}
				val, err := c.str()
				if err != nil {
					return nil, err
				}
				k.Meta[key] = val
			}
		}
		// "Relocate": walk the payload like a loader patching addresses,
		// verifying the per-kernel checksum byte stored after it. The slice
		// aliases the input; nothing is copied.
		payload, ok := c.take(k.CodeSize)
		if !ok {
			return nil, ErrTruncated
		}
		want, ok := c.take(1)
		if !ok {
			return nil, ErrTruncated
		}
		if xorChecksum(payload) != want[0] {
			return nil, fmt.Errorf("codeobj: kernel %q payload checksum mismatch: %w", k.Name, ErrChecksum)
		}
		if _, dup := o.symbols[k.Name]; dup {
			return nil, fmt.Errorf("codeobj: duplicate symbol %q in object %q: %w", k.Name, name, ErrCorrupt)
		}
		o.symbols[k.Name] = len(o.Kernels)
		o.Kernels = append(o.Kernels, k)
	}
	if c.rem() != 0 {
		return nil, fmt.Errorf("codeobj: %d trailing bytes: %w", c.rem(), ErrTruncated)
	}
	return o, nil
}
