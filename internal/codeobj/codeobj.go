// Package codeobj implements PKO, the code-object container format of the
// simulated GPU stack — the stand-in for the ELF .hsaco/.cubin files whose
// loading dominates DNN cold start (paper Fig 1b). A PKO file carries one or
// more compiled kernels: a symbol table plus per-kernel pseudo-ISA payload.
//
// The loader really parses bytes (magic, header, symbols, CRC), so failure
// injection (truncation, corruption, missing symbols) exercises real code
// paths; the *time* a load takes is charged separately by the hip runtime
// from the sizes this package reports.
package codeobj

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"slices"
)

// Format constants.
const (
	Magic = "PKO1"
	// Version 2 added the per-kernel payload checksum byte that follows each
	// payload, letting the loader localize corruption to a kernel even when
	// the container CRC has been re-sealed.
	Version = 2
	// maxStringLen bounds length-prefixed strings to catch corrupt headers
	// before huge allocations.
	maxStringLen = 1 << 16
	// maxKernels bounds the kernel count for the same reason.
	maxKernels = 1 << 12
)

// Errors returned by Parse.
var (
	ErrBadMagic  = errors.New("codeobj: bad magic")
	ErrVersion   = errors.New("codeobj: unsupported version")
	ErrTruncated = errors.New("codeobj: truncated object")
	ErrChecksum  = errors.New("codeobj: checksum mismatch")
)

// KernelSpec describes one kernel to embed when building an object.
type KernelSpec struct {
	Name     string            // global symbol name
	Pattern  string            // solution pattern tag (Winograd, GEMM, ...)
	CodeSize int               // pseudo-ISA payload size in bytes
	Meta     map[string]string // free-form attributes (dtype, tile, ...)
}

// Kernel is a parsed kernel entry.
type Kernel struct {
	Name     string
	Pattern  string
	CodeSize int
	Meta     map[string]string
}

// Object is a parsed code object.
type Object struct {
	Name    string
	Arch    string
	Kernels []Kernel
	symbols map[string]int // name -> index into Kernels
	size    int            // full container size in bytes
}

// Symbol returns the kernel with the given global name.
func (o *Object) Symbol(name string) (Kernel, bool) {
	i, ok := o.symbols[name]
	if !ok {
		return Kernel{}, false
	}
	return o.Kernels[i], true
}

// NumSymbols returns the number of kernels in the object.
func (o *Object) NumSymbols() int { return len(o.Kernels) }

// Size returns the container size in bytes (header + payload + trailer).
func (o *Object) Size() int { return o.size }

// CodeSize returns the summed pseudo-ISA payload size.
func (o *Object) CodeSize() int64 {
	var n int64
	for _, k := range o.Kernels {
		n += int64(k.CodeSize)
	}
	return n
}

func writeString(buf *bytes.Buffer, s string) {
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(s)))
	buf.Write(lenb[:])
	buf.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	var lenb [4]byte
	if _, err := r.Read(lenb[:]); err != nil {
		return "", ErrTruncated
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n > maxStringLen {
		return "", fmt.Errorf("codeobj: string length %d exceeds limit: %w", n, ErrTruncated)
	}
	b := make([]byte, n)
	if _, err := readFull(r, b); err != nil {
		return "", ErrTruncated
	}
	return string(b), nil
}

func readFull(r *bytes.Reader, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := r.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Build serializes a code object. Payload bytes are generated
// deterministically from each kernel's name, so two builds of the same spec
// are byte-identical.
func Build(name, arch string, kernels []KernelSpec) ([]byte, error) {
	if len(kernels) == 0 {
		return nil, errors.New("codeobj: object must contain at least one kernel")
	}
	if len(kernels) > maxKernels {
		return nil, fmt.Errorf("codeobj: %d kernels exceeds limit %d", len(kernels), maxKernels)
	}
	seen := make(map[string]bool, len(kernels))
	for _, k := range kernels {
		if k.Name == "" {
			return nil, errors.New("codeobj: kernel with empty name")
		}
		if k.CodeSize <= 0 {
			return nil, fmt.Errorf("codeobj: kernel %q has non-positive code size %d", k.Name, k.CodeSize)
		}
		if seen[k.Name] {
			return nil, fmt.Errorf("codeobj: duplicate kernel symbol %q", k.Name)
		}
		seen[k.Name] = true
	}

	var buf bytes.Buffer
	buf.WriteString(Magic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], Version)
	buf.Write(u16[:])
	writeString(&buf, name)
	writeString(&buf, arch)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(kernels)))
	buf.Write(u32[:])
	for _, k := range kernels {
		writeString(&buf, k.Name)
		writeString(&buf, k.Pattern)
		binary.LittleEndian.PutUint32(u32[:], uint32(k.CodeSize))
		buf.Write(u32[:])
		keys := make([]string, 0, len(k.Meta))
		for key := range k.Meta {
			keys = append(keys, key)
		}
		slices.Sort(keys)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(keys)))
		buf.Write(u32[:])
		for _, key := range keys {
			writeString(&buf, key)
			writeString(&buf, k.Meta[key])
		}
		start := buf.Len()
		writePayload(&buf, k.Name, k.CodeSize)
		var checksum byte
		for _, b := range buf.Bytes()[start:] {
			checksum ^= b
		}
		buf.WriteByte(checksum)
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	binary.LittleEndian.PutUint32(u32[:], sum)
	buf.Write(u32[:])
	return buf.Bytes(), nil
}

// writePayload appends size bytes of deterministic pseudo-ISA derived from
// the kernel name.
func writePayload(buf *bytes.Buffer, name string, size int) {
	h := fnv.New64a()
	h.Write([]byte(name))
	state := h.Sum64()
	for i := 0; i < size; i++ {
		// xorshift64 keeps generation cheap and reproducible.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		buf.WriteByte(byte(state))
	}
}

// Parse validates and decodes a serialized code object.
func Parse(data []byte) (*Object, error) {
	if len(data) < len(Magic)+2+4 {
		return nil, ErrTruncated
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrChecksum
	}
	r := bytes.NewReader(body[len(Magic):])
	var u16 [2]byte
	if _, err := readFull(r, u16[:]); err != nil {
		return nil, ErrTruncated
	}
	if binary.LittleEndian.Uint16(u16[:]) != Version {
		return nil, ErrVersion
	}
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	arch, err := readString(r)
	if err != nil {
		return nil, err
	}
	var u32 [4]byte
	if _, err := readFull(r, u32[:]); err != nil {
		return nil, ErrTruncated
	}
	nk := binary.LittleEndian.Uint32(u32[:])
	if nk == 0 || nk > maxKernels {
		return nil, fmt.Errorf("codeobj: kernel count %d out of range: %w", nk, ErrTruncated)
	}
	o := &Object{Name: name, Arch: arch, symbols: make(map[string]int, nk), size: len(data)}
	for i := 0; i < int(nk); i++ {
		var k Kernel
		if k.Name, err = readString(r); err != nil {
			return nil, err
		}
		if k.Pattern, err = readString(r); err != nil {
			return nil, err
		}
		if _, err := readFull(r, u32[:]); err != nil {
			return nil, ErrTruncated
		}
		k.CodeSize = int(binary.LittleEndian.Uint32(u32[:]))
		if k.CodeSize > r.Len() {
			// A corrupt size field must not drive a huge allocation below.
			return nil, fmt.Errorf("codeobj: kernel %q code size %d exceeds remaining %d bytes: %w", k.Name, k.CodeSize, r.Len(), ErrTruncated)
		}
		if _, err := readFull(r, u32[:]); err != nil {
			return nil, ErrTruncated
		}
		nMeta := int(binary.LittleEndian.Uint32(u32[:]))
		if nMeta > 0 {
			if nMeta > maxStringLen {
				return nil, ErrTruncated
			}
			k.Meta = make(map[string]string, nMeta)
			for j := 0; j < nMeta; j++ {
				key, err := readString(r)
				if err != nil {
					return nil, err
				}
				val, err := readString(r)
				if err != nil {
					return nil, err
				}
				k.Meta[key] = val
			}
		}
		// "Relocate": walk the payload like a loader patching addresses,
		// verifying the per-kernel checksum byte stored after it.
		payload := make([]byte, k.CodeSize)
		if _, err := readFull(r, payload); err != nil {
			return nil, ErrTruncated
		}
		var checksum byte
		for _, b := range payload {
			checksum ^= b
		}
		want, err := r.ReadByte()
		if err != nil {
			return nil, ErrTruncated
		}
		if checksum != want {
			return nil, fmt.Errorf("codeobj: kernel %q payload checksum mismatch: %w", k.Name, ErrChecksum)
		}
		if _, dup := o.symbols[k.Name]; dup {
			return nil, fmt.Errorf("codeobj: duplicate symbol %q in object %q", k.Name, name)
		}
		o.symbols[k.Name] = len(o.Kernels)
		o.Kernels = append(o.Kernels, k)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("codeobj: %d trailing bytes: %w", r.Len(), ErrTruncated)
	}
	return o, nil
}
