package codeobj

import "testing"

// TestParseAllocsBounded pins the allocation budget of the zero-copy parse:
// a model-shaped object (two 256 KB kernels) must parse in well under the
// ~39 allocations the old copying parser paid — the payload and symbol
// bytes alias the input, so the only allocations left are the Object, its
// tables and the symbol-name strings.
func TestParseAllocsBounded(t *testing.T) {
	specs := []KernelSpec{
		{Name: "alloc_main", Pattern: "GEMM", CodeSize: 256 << 10},
		{Name: "alloc_helper", Pattern: "GEMM", CodeSize: 256 << 10},
	}
	data, err := Build("alloc-test", "gfx908", specs)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := Parse(data); err != nil {
			t.Error(err)
		}
	})
	// Measured 22 today; 30 leaves slack for runtime changes while still
	// failing loudly if payload copying creeps back in.
	if avg > 30 {
		t.Errorf("Parse allocates %.1f objects/op, want <= 30", avg)
	}
}
