package codeobj

import (
	"errors"
	"strings"
	"testing"
)

// buildSmall returns a sealed two-kernel object for checksum tests.
func buildSmall(t *testing.T) []byte {
	t.Helper()
	data, err := Build("obj", "gfx908", []KernelSpec{
		{Name: "k0", Pattern: "GEMM", CodeSize: 64},
		{Name: "k1", Pattern: "Winograd", CodeSize: 32},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return data
}

func TestPerKernelChecksumRoundTrip(t *testing.T) {
	o, err := Parse(buildSmall(t))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if o.NumSymbols() != 2 {
		t.Fatalf("got %d symbols, want 2", o.NumSymbols())
	}
}

// TestPerKernelChecksumCatchesSealedCorruption flips payload bytes while
// re-sealing the container CRC: only the per-kernel checksum can notice.
func TestPerKernelChecksumCatchesSealedCorruption(t *testing.T) {
	data := buildSmall(t)
	st := NewStore()
	st.Put("obj.pko", data)

	// The container CRC would mask nothing after re-sealing, so a plain
	// Corrupt+Parse comparison establishes the baseline expectation first.
	if _, err := Parse(data); err != nil {
		t.Fatalf("pristine object must parse: %v", err)
	}

	hits := 0
	for off := 0; off < len(data)-4; off++ {
		if err := st.CorruptSealed("obj.pko", off); err != nil {
			t.Fatalf("CorruptSealed(%d): %v", off, err)
		}
		mutated, err := st.Get("obj.pko")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if _, perr := Parse(mutated); perr != nil {
			hits++
			// Payload corruption specifically must blame the kernel checksum.
			if strings.Contains(perr.Error(), "payload checksum") && !errors.Is(perr, ErrChecksum) {
				t.Fatalf("offset %d: payload checksum error not wrapping ErrChecksum: %v", off, perr)
			}
		}
		// Undo: flipping the same byte again restores the original object.
		if err := st.CorruptSealed("obj.pko", off); err != nil {
			t.Fatalf("CorruptSealed undo(%d): %v", off, err)
		}
	}
	if hits == 0 {
		t.Fatal("no sealed corruption was ever detected")
	}
}

func TestCorruptSealedRejectsTrailerOffsets(t *testing.T) {
	data := buildSmall(t)
	st := NewStore()
	st.Put("obj.pko", data)
	if err := st.CorruptSealed("obj.pko", len(data)-4); err == nil {
		t.Fatal("expected error for trailer offset")
	}
	if err := st.CorruptSealed("missing.pko", 0); err == nil {
		t.Fatal("expected error for missing object")
	}
}

func TestErrNotFoundTyped(t *testing.T) {
	st := NewStore()
	_, err := st.Get("nope.pko")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get error %v does not wrap ErrNotFound", err)
	}
	if IsTransient(err) {
		t.Fatal("not-found must not classify as transient")
	}
	if !IsTransient(ErrIO) {
		t.Fatal("ErrIO must classify as transient")
	}
}

type flakyHook struct{ fails int }

func (h *flakyHook) StoreGet(path string, data []byte) ([]byte, error) {
	if h.fails > 0 {
		h.fails--
		return nil, ErrIO
	}
	return data, nil
}

func TestStoreFaultHook(t *testing.T) {
	st := NewStore()
	st.Put("obj.pko", buildSmall(t))
	h := &flakyHook{fails: 1}
	st.SetFaultHook(h)
	if _, err := st.Get("obj.pko"); !IsTransient(err) {
		t.Fatalf("hooked Get error %v, want transient", err)
	}
	if _, err := st.Get("obj.pko"); err != nil {
		t.Fatalf("second Get: %v", err)
	}
	st.SetFaultHook(nil)
	if _, err := st.Get("obj.pko"); err != nil {
		t.Fatalf("unhooked Get: %v", err)
	}
}
