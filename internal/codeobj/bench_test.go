package codeobj

import (
	"fmt"
	"testing"
)

// benchSpecs builds a kernel layout shaped like the library's real objects:
// one main kernel plus bundled helpers, with metadata like the solution
// families attach.
func benchSpecs(kernels, codeSize int) []KernelSpec {
	specs := make([]KernelSpec, kernels)
	for i := range specs {
		specs[i] = KernelSpec{
			Name:     fmt.Sprintf("bench_kernel_%d", i),
			Pattern:  "Winograd",
			CodeSize: codeSize,
			Meta:     map[string]string{"dtype": "f32", "tile": "16x16"},
		}
	}
	return specs
}

func benchObject(b *testing.B, kernels, codeSize int) []byte {
	b.Helper()
	data, err := Build("bench.pko", "gfx908", benchSpecs(kernels, codeSize))
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkParse measures the code-object decode path the module registry
// pays on every load miss. The "small" shape is a helper-sized object, the
// "model" shape matches a specialized conv solution's container (one large
// main kernel plus a helper, ~0.5 MB) — the dominant real input.
func BenchmarkParse(b *testing.B) {
	shapes := []struct {
		name     string
		kernels  int
		codeSize int
	}{
		{"small_4x2KB", 4, 2 << 10},
		{"model_2x256KB", 2, 256 << 10},
	}
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			data := benchObject(b, s.kernels, s.codeSize)
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Parse(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParseSymbolLookup pins the post-parse symbol resolution cost the
// registry pays per ModuleGetFunction.
func BenchmarkParseSymbolLookup(b *testing.B) {
	data := benchObject(b, 8, 1<<10)
	obj, err := Parse(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := obj.Symbol("bench_kernel_7"); !ok {
			b.Fatal("symbol missing")
		}
	}
}
