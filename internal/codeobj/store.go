package codeobj

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"slices"
)

// Store error classification: loaders retry transient errors and treat the
// rest (missing objects, parse failures) as permanent.
var (
	// ErrIO marks a transient read failure — the storage hiccup a loader
	// should retry rather than memoize.
	ErrIO = errors.New("codeobj: transient I/O error")
	// ErrNotFound marks an object absent from the store (permanent).
	ErrNotFound = errors.New("not found in store")
)

// IsTransient reports whether a store/load error is worth retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrIO) }

// FaultHook intercepts Store reads for failure injection. It may pass the
// bytes through, substitute corrupted ones, or fail the read outright
// (wrapping ErrIO for transient faults). A nil hook costs nothing.
type FaultHook interface {
	StoreGet(path string, data []byte) ([]byte, error)
}

// Store is the simulated on-disk registry of compiled code objects — the
// directory of shared libraries and binary blobs the primitive library loads
// from at runtime. It is a passive byte store; read latency and bandwidth
// are charged by the hip runtime when a load happens.
type Store struct {
	objects map[string][]byte
	fault   FaultHook
}

// SetFaultHook installs (or, with nil, removes) the read interceptor.
func (s *Store) SetFaultHook(h FaultHook) { s.fault = h }

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{objects: make(map[string][]byte)}
}

// Put registers object bytes under path, overwriting any previous content.
func (s *Store) Put(path string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.objects[path] = cp
}

// PutBuilt builds a code object from specs and stores it under path.
func (s *Store) PutBuilt(path, arch string, kernels []KernelSpec) error {
	data, err := Build(path, arch, kernels)
	if err != nil {
		return err
	}
	s.objects[path] = data
	return nil
}

// Get returns the bytes stored under path. When a fault hook is installed
// the read goes through it, so injected failures surface exactly where real
// storage errors would.
func (s *Store) Get(path string) ([]byte, error) {
	data, ok := s.objects[path]
	if !ok {
		return nil, fmt.Errorf("codeobj: object %q %w", path, ErrNotFound)
	}
	if s.fault != nil {
		return s.fault.StoreGet(path, data)
	}
	return data, nil
}

// Has reports whether path exists.
func (s *Store) Has(path string) bool {
	_, ok := s.objects[path]
	return ok
}

// Size returns the byte size of the object at path, or 0 if absent.
func (s *Store) Size(path string) int {
	return len(s.objects[path])
}

// Len returns the number of stored objects.
func (s *Store) Len() int { return len(s.objects) }

// TotalBytes returns the summed size of all stored objects.
func (s *Store) TotalBytes() int64 {
	var n int64
	for _, d := range s.objects {
		n += int64(len(d))
	}
	return n
}

// Paths returns all stored paths in sorted order.
func (s *Store) Paths() []string {
	out := make([]string, 0, len(s.objects))
	for p := range s.objects {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// Fingerprint returns a checksum over every stored path and its bytes, in
// sorted path order. Two stores (or one store at two points in time) with
// byte-identical contents produce equal fingerprints — the multitenant
// experiment uses this to prove that shared and isolated serving read the
// same store and that neither mutated it.
func (s *Store) Fingerprint() uint32 {
	h := crc32.NewIEEE()
	var sep [1]byte
	for _, p := range s.Paths() {
		h.Write([]byte(p))
		h.Write(sep[:])
		h.Write(s.objects[p])
		h.Write(sep[:])
	}
	return h.Sum32()
}

// Corrupt flips one byte of the stored object at the given offset — a
// failure-injection hook for loader tests.
func (s *Store) Corrupt(path string, offset int) error {
	data, ok := s.objects[path]
	if !ok {
		return fmt.Errorf("codeobj: object %q not found in store", path)
	}
	if offset < 0 || offset >= len(data) {
		return fmt.Errorf("codeobj: offset %d out of range for %q (%d bytes)", offset, path, len(data))
	}
	data[offset] ^= 0xff
	return nil
}

// CorruptSealed flips one byte of the stored object and re-seals the
// container CRC trailer, so the damage is only detectable by the per-kernel
// payload checksum. Offsets inside the 4-byte trailer are rejected.
func (s *Store) CorruptSealed(path string, offset int) error {
	data, ok := s.objects[path]
	if !ok {
		return fmt.Errorf("codeobj: object %q not found in store", path)
	}
	if len(data) < 4 {
		return fmt.Errorf("codeobj: object %q too short to re-seal", path)
	}
	if offset < 0 || offset >= len(data)-4 {
		return fmt.Errorf("codeobj: offset %d out of sealed range for %q (%d bytes)", offset, path, len(data))
	}
	data[offset] ^= 0xff
	crc := crc32.ChecksumIEEE(data[:len(data)-4])
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc)
	return nil
}

// Truncate shortens the stored object to n bytes — a failure-injection hook.
func (s *Store) Truncate(path string, n int) error {
	data, ok := s.objects[path]
	if !ok {
		return fmt.Errorf("codeobj: object %q not found in store", path)
	}
	if n < 0 || n > len(data) {
		return fmt.Errorf("codeobj: truncate length %d out of range for %q", n, path)
	}
	s.objects[path] = data[:n]
	return nil
}
