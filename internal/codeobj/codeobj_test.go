package codeobj

import (
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleSpecs() []KernelSpec {
	return []KernelSpec{
		{Name: "ConvWinogradNaiveFwd_main", Pattern: "Winograd", CodeSize: 1024,
			Meta: map[string]string{"dtype": "f32", "arch": "gfx908"}},
		{Name: "ConvWinogradNaiveFwd_xform_in", Pattern: "Winograd", CodeSize: 300},
		{Name: "ConvWinogradNaiveFwd_xform_out", Pattern: "Winograd", CodeSize: 280},
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	data, err := Build("winograd_naive.pko", "gfx908", sampleSpecs())
	if err != nil {
		t.Fatal(err)
	}
	o, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "winograd_naive.pko" || o.Arch != "gfx908" {
		t.Fatalf("name/arch = %q/%q", o.Name, o.Arch)
	}
	if o.NumSymbols() != 3 {
		t.Fatalf("NumSymbols = %d", o.NumSymbols())
	}
	k, ok := o.Symbol("ConvWinogradNaiveFwd_main")
	if !ok {
		t.Fatal("main symbol missing")
	}
	if k.CodeSize != 1024 || k.Pattern != "Winograd" || k.Meta["dtype"] != "f32" {
		t.Fatalf("kernel = %+v", k)
	}
	if _, ok := o.Symbol("nonexistent"); ok {
		t.Fatal("found nonexistent symbol")
	}
	if o.Size() != len(data) {
		t.Fatalf("Size = %d, want %d", o.Size(), len(data))
	}
	if o.CodeSize() != 1024+300+280 {
		t.Fatalf("CodeSize = %d", o.CodeSize())
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build("x.pko", "gfx908", sampleSpecs())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("x.pko", "gfx908", sampleSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two builds of the same spec differ")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build("e.pko", "gfx908", nil); err == nil {
		t.Fatal("empty object should fail")
	}
	if _, err := Build("e.pko", "gfx908", []KernelSpec{{Name: "", CodeSize: 4}}); err == nil {
		t.Fatal("empty kernel name should fail")
	}
	if _, err := Build("e.pko", "gfx908", []KernelSpec{{Name: "k", CodeSize: 0}}); err == nil {
		t.Fatal("zero code size should fail")
	}
	if _, err := Build("e.pko", "gfx908", []KernelSpec{
		{Name: "k", CodeSize: 4}, {Name: "k", CodeSize: 4},
	}); err == nil {
		t.Fatal("duplicate symbols should fail")
	}
}

func TestParseBadMagic(t *testing.T) {
	data, _ := Build("x.pko", "gfx908", sampleSpecs())
	data[0] = 'Q'
	if _, err := Parse(data); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestParseChecksumMismatch(t *testing.T) {
	data, _ := Build("x.pko", "gfx908", sampleSpecs())
	data[len(data)/2] ^= 0xff
	if _, err := Parse(data); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestParseTruncated(t *testing.T) {
	data, _ := Build("x.pko", "gfx908", sampleSpecs())
	for _, n := range []int{0, 3, len(data) / 2} {
		if _, err := Parse(data[:n]); err == nil {
			t.Fatalf("Parse of %d-byte prefix should fail", n)
		}
	}
}

func TestParseVersionMismatch(t *testing.T) {
	data, _ := Build("x.pko", "gfx908", sampleSpecs())
	// Version field is right after magic; bump it and fix the CRC by
	// rebuilding the trailer.
	data[4] = 99
	// CRC now mismatches, which is also an acceptable error; force the CRC
	// to match so we exercise the version check.
	body := data[:len(data)-4]
	sum := crc32Checksum(body)
	data[len(data)-4] = byte(sum)
	data[len(data)-3] = byte(sum >> 8)
	data[len(data)-2] = byte(sum >> 16)
	data[len(data)-1] = byte(sum >> 24)
	if _, err := Parse(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 1
		specs := make([]KernelSpec, n)
		for i := range specs {
			specs[i] = KernelSpec{
				Name:     randName(rng, i),
				Pattern:  []string{"Winograd", "GEMM", "DirectConv", "ImplicitGEMM"}[rng.Intn(4)],
				CodeSize: rng.Intn(4096) + 1,
			}
			if rng.Intn(2) == 0 {
				specs[i].Meta = map[string]string{"dtype": "f16", "tile": "64x64"}
			}
		}
		data, err := Build("obj.pko", "gfx908", specs)
		if err != nil {
			return false
		}
		o, err := Parse(data)
		if err != nil {
			return false
		}
		if o.NumSymbols() != n {
			return false
		}
		for i, s := range specs {
			k, ok := o.Symbol(s.Name)
			if !ok || k.CodeSize != s.CodeSize || k.Pattern != s.Pattern {
				return false
			}
			if len(s.Meta) != len(k.Meta) {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte corruption is detected (CRC or structural error).
func TestCorruptionAlwaysDetectedProperty(t *testing.T) {
	data, err := Build("x.pko", "gfx908", sampleSpecs())
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16) bool {
		i := int(pos) % len(data)
		cp := make([]byte, len(data))
		copy(cp, data)
		cp[i] ^= 0x5a
		_, err := Parse(cp)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if s.Has("a.pko") || s.Len() != 0 {
		t.Fatal("new store should be empty")
	}
	if err := s.PutBuilt("a.pko", "gfx908", sampleSpecs()); err != nil {
		t.Fatal(err)
	}
	if !s.Has("a.pko") || s.Len() != 1 {
		t.Fatal("stored object not visible")
	}
	data, err := s.Get("a.pko")
	if err != nil {
		t.Fatal(err)
	}
	if s.Size("a.pko") != len(data) {
		t.Fatalf("Size = %d, want %d", s.Size("a.pko"), len(data))
	}
	if s.TotalBytes() != int64(len(data)) {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
	if _, err := s.Get("missing.pko"); err == nil {
		t.Fatal("Get of missing path should fail")
	}
	if got := s.Paths(); len(got) != 1 || got[0] != "a.pko" {
		t.Fatalf("Paths = %v", got)
	}
}

func TestStorePutIsolatesCaller(t *testing.T) {
	s := NewStore()
	buf := []byte{1, 2, 3}
	s.Put("b.pko", buf)
	buf[0] = 9
	got, _ := s.Get("b.pko")
	if got[0] != 1 {
		t.Fatal("Put must copy caller's bytes")
	}
}

func TestStoreFailureInjection(t *testing.T) {
	s := NewStore()
	if err := s.PutBuilt("a.pko", "gfx908", sampleSpecs()); err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt("a.pko", 10); err != nil {
		t.Fatal(err)
	}
	data, _ := s.Get("a.pko")
	if _, err := Parse(data); err == nil {
		t.Fatal("corrupted object should fail to parse")
	}
	if err := s.Corrupt("missing", 0); err == nil {
		t.Fatal("Corrupt of missing path should fail")
	}
	if err := s.Corrupt("a.pko", -1); err == nil {
		t.Fatal("Corrupt with bad offset should fail")
	}
	if err := s.Truncate("a.pko", 8); err != nil {
		t.Fatal(err)
	}
	if s.Size("a.pko") != 8 {
		t.Fatalf("Size after truncate = %d", s.Size("a.pko"))
	}
	if err := s.Truncate("a.pko", 100); err == nil {
		t.Fatal("Truncate beyond size should fail")
	}
}

func randName(rng *rand.Rand, i int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, rng.Intn(12)+1)
	for j := range b {
		b[j] = letters[rng.Intn(len(letters))]
	}
	return string(b) + "_" + string(rune('0'+i))
}

func crc32Checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// Property: Parse never panics on arbitrary bytes — it must fail cleanly on
// anything that is not a well-formed object.
func TestParseArbitraryBytesNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		obj, err := Parse(data)
		// Either a clean error, or a genuinely valid object.
		return err != nil || obj != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse never panics on a valid prefix with garbage appended.
func TestParseTrailingGarbageFails(t *testing.T) {
	data, err := Build("x.pko", "gfx908", sampleSpecs())
	if err != nil {
		t.Fatal(err)
	}
	f := func(tail []byte) bool {
		if len(tail) == 0 {
			return true
		}
		_, err := Parse(append(append([]byte{}, data...), tail...))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintGolden pins the fingerprint algorithm to a known value.
// Cache images embed the fingerprint of the store they were built from and
// reject attachment when the live store drifts, so a silent change to the
// hash (input framing, separator, ordering) would invalidate every image
// already published. If this test fails, the format changed: bump the
// cache-image version rather than updating the constant casually.
func TestFingerprintGolden(t *testing.T) {
	s := NewStore()
	s.Put("b.pko", []byte("bravo"))
	s.Put("a.pko", []byte("alpha"))
	s.Put("c.pko", []byte{0x00, 0xff, 0x10})
	const golden = 0x16e37c0a
	if got := s.Fingerprint(); got != golden {
		t.Fatalf("Fingerprint = %#08x, want %#08x", got, golden)
	}
}

// TestFingerprintOrderIndependent checks insertion order does not leak into
// the fingerprint: equal contents hash equal, any content change does not.
func TestFingerprintOrderIndependent(t *testing.T) {
	paths := []string{"a.pko", "b.pko", "c.pko", "d.pko"}
	bodies := map[string][]byte{
		"a.pko": []byte("alpha"), "b.pko": []byte("bravo"),
		"c.pko": []byte("charlie"), "d.pko": []byte("delta"),
	}
	fwd := NewStore()
	for _, p := range paths {
		fwd.Put(p, bodies[p])
	}
	rev := NewStore()
	for i := len(paths) - 1; i >= 0; i-- {
		rev.Put(paths[i], bodies[paths[i]])
	}
	if fwd.Fingerprint() != rev.Fingerprint() {
		t.Fatalf("insertion order changed fingerprint: %#08x vs %#08x",
			fwd.Fingerprint(), rev.Fingerprint())
	}
	rev.Put("d.pko", []byte("delta!"))
	if fwd.Fingerprint() == rev.Fingerprint() {
		t.Fatal("content change did not change fingerprint")
	}
}
