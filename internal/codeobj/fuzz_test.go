package codeobj

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// truncatedResealed returns a valid object cut mid-payload with its
// container CRC re-sealed, so decoding reaches the section walk instead of
// failing at the trailer check — the shape that must hit the bounds
// validation, not an out-of-range slice.
func truncatedResealed(t testing.TB) []byte {
	t.Helper()
	data, err := Build("trunc.pko", "gfx908", []KernelSpec{
		{Name: "k_main", Pattern: "Winograd", CodeSize: 4096, Meta: map[string]string{"dtype": "f32"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cut := data[:len(data)-4-2048] // drop trailer + payload tail
	sealed := make([]byte, len(cut)+4)
	copy(sealed, cut)
	binary.LittleEndian.PutUint32(sealed[len(cut):], crc32.ChecksumIEEE(cut))
	return sealed
}

func TestParseTruncatedPayloadResealed(t *testing.T) {
	_, err := Parse(truncatedResealed(t))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt via unwrap", err)
	}
}

func TestStructuralErrorsUnwrapToCorrupt(t *testing.T) {
	for _, err := range []error{ErrBadMagic, ErrTruncated, ErrChecksum} {
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%v does not unwrap to ErrCorrupt", err)
		}
	}
	if errors.Is(ErrVersion, ErrCorrupt) {
		t.Error("ErrVersion must not unwrap to ErrCorrupt: newer-format objects are not damage")
	}
}

// FuzzParse asserts Parse never panics and classifies every failure as
// either ErrCorrupt (structural damage) or ErrVersion; round-trips of
// accepted inputs must be self-consistent.
func FuzzParse(f *testing.F) {
	good, err := Build("fuzz.pko", "gfx908", []KernelSpec{
		{Name: "k0", Pattern: "GEMM", CodeSize: 64, Meta: map[string]string{"tile": "8x8"}},
		{Name: "k1", Pattern: "Winograd", CodeSize: 32},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(truncatedResealed(f))
	f.Add([]byte("PKO1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := Parse(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("unclassified parse error: %v", err)
			}
			return
		}
		if o.Size() != len(data) {
			t.Fatalf("Size() = %d, want %d", o.Size(), len(data))
		}
		if o.NumSymbols() == 0 {
			t.Fatal("accepted object with zero kernels")
		}
		for _, k := range o.Kernels {
			got, ok := o.Symbol(k.Name)
			if !ok || got.Name != k.Name {
				t.Fatalf("symbol table inconsistent for %q", k.Name)
			}
		}
	})
}
